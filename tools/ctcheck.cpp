// ctcheck — determinism checker CLI: happens-before race analysis plus
// DPOR-style DES ordering exploration (src/check) over a job grid.
//
// For every (algorithm × r × K) the one live thread-harness run is
// executed with transport capture armed (memoized in a RunCache) and
// its send/post/match stream analyzed for matching races; for every
// (… × topology × discipline × order) cell the shuffle log's flow
// replay is explored through alternative event orderings — no-outage
// plus one cell per --outages spec — asserting byte conservation,
// no-lost-flow and bitwise tie invariance.
//
// Exit status is nonzero when any race or invariant violation is
// found, or when an outage cell explored fewer than --min-orderings
// alternative schedules (a vacuity guard for CI).
//
// Usage: ctcheck [--flags]
//   --algos=terasort,coded     registry names to check
//   --redundancies=2           r axis (ignored by plain TeraSort)
//   --nodes=8                  comma list of cluster sizes K
//   --records=40000            executed workload per run
//   --seed=2017
//   --topologies=flat,4:4      "R:F[:U:D][:aware]" (job/parse.h);
//                              "flat" = single rack
//   --disciplines=half,full    serial | half | full
//   --orders=log,per-sender    log | per-sender
//   --outages=0:0.25:0.25      NODE:STARTFRAC:DURFRAC list; fractions
//                              of the cell's no-outage makespan
//   --budget=150               ordering-exploration budget per cell
//   --min-orderings=0          fail outage cells exploring fewer
//   --json=PATH                bench-schema JSON artifact
//   --quiet                    suppress the text table
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "check/check.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "job/job.h"
#include "job/parse.h"
#include "tools/flag_parser.h"

namespace {

using namespace cts;
using cts::tools::Flags;

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream in(s);
  while (std::getline(in, field, ',')) out.push_back(field);
  return out;
}

std::vector<int> ParseIntList(const std::string& s, const char* what) {
  std::vector<int> out;
  for (const std::string& f : SplitCommas(s)) {
    try {
      std::size_t pos = 0;
      const int v = std::stoi(f, &pos);
      if (pos != f.size() || v < 0) throw std::invalid_argument(f);
      out.push_back(v);
    } catch (const std::exception&) {
      Flags::Fail(std::string("bad ") + what + " entry '" + f + "'");
    }
  }
  return out;
}

check::OutageSpec ParseOutage(const std::string& spec) {
  std::vector<std::string> parts;
  std::string field;
  std::istringstream in(spec);
  while (std::getline(in, field, ':')) parts.push_back(field);
  if (parts.size() != 3) {
    Flags::Fail("outage expects NODE:STARTFRAC:DURFRAC: '" + spec + "'");
  }
  check::OutageSpec o;
  try {
    o.node = std::stoi(parts[0]);
    o.start_frac = std::stod(parts[1]);
    o.dur_frac = std::stod(parts[2]);
  } catch (const std::exception&) {
    Flags::Fail("bad outage numbers in '" + spec + "'");
  }
  if (o.node < 0 || o.start_frac < 0 || o.dur_frac <= 0) {
    Flags::Fail("outage '" + spec +
                "' needs node >= 0, start >= 0, duration > 0");
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, "ctcheck");

  const auto algos = SplitCommas(flags.Get("algos", "terasort,coded"));
  const auto redundancies =
      ParseIntList(flags.Get("redundancies", "2"), "redundancy");
  const auto nodes = ParseIntList(flags.Get("nodes", "8"), "node count");
  const std::uint64_t records = flags.GetU64("records", 40000);
  const std::uint64_t seed = flags.GetU64("seed", 2017);
  auto topologies = SplitCommas(flags.Get("topologies", "flat,4:4"));
  for (std::string& t : topologies) {
    if (t == "flat") t.clear();  // the single-rack default
  }
  const auto disciplines = SplitCommas(flags.Get("disciplines", "half,full"));
  const auto orders = SplitCommas(flags.Get("orders", "log,per-sender"));

  check::CheckOptions copts;
  for (const std::string& spec :
       SplitCommas(flags.Get("outages", "0:0.25:0.25"))) {
    copts.outages.push_back(ParseOutage(spec));
  }
  copts.ordering_budget = flags.GetU64("budget", 150);
  const std::uint64_t min_orderings = flags.GetU64("min-orderings", 0);

  const std::string json = flags.Get("json", "");
  const bool quiet = flags.GetBool("quiet");
  flags.CheckAllConsumed();

  Stopwatch watch;
  job::RunCache cache;
  TextTable table("ctcheck");
  table.set_header({"algorithm", "r", "K", "topology", "disc", "order",
                    "cell", "decisions", "explored", "pruned", "status"});

  std::size_t cells = 0;
  std::size_t races = 0;
  std::size_t violations = 0;
  std::size_t explored = 0;
  std::size_t decision_points = 0;
  std::size_t pruned = 0;
  bool vacuous = false;
  bool failed = false;

  for (const std::string& algo : algos) {
    for (const int r : redundancies) {
      for (const int k : nodes) {
        job::JobSpec spec;
        spec.algorithm = algo;
        spec.config.num_nodes = k;
        spec.config.redundancy = r;
        spec.config.num_records = records;
        spec.config.seed = seed;
        // One transport analysis per live run: the captured stream is
        // a property of (algorithm, r, K), not of the replay network.
        bool first_combo = true;
        for (const std::string& topo_spec : topologies) {
          for (const std::string& disc_spec : disciplines) {
            for (const std::string& order_spec : orders) {
              std::string err;
              simscen::Scenario scenario =
                  simscen::Scenario::Baseline(k);
              const auto topo = job::ParseTopology(topo_spec, k, &err);
              if (!topo) Flags::Fail(err);
              scenario.topology = *topo;
              const auto disc = job::ParseDiscipline(disc_spec, &err);
              if (!disc) Flags::Fail(err);
              scenario.discipline = *disc;
              const auto ord = job::ParseOrder(order_spec, &err);
              if (!ord) Flags::Fail(err);
              scenario.order = *ord;
              spec.scenario = scenario;

              check::CheckOptions cell_opts = copts;
              cell_opts.analyze_transport = first_combo;
              const check::CheckReport rep =
                  check::CheckJob(spec, cache, cell_opts);
              if (first_combo) {
                races += rep.races.races.size();
                if (!rep.races.races.empty()) {
                  failed = true;
                  std::cerr << check::Summarize(rep.races) << "\n";
                }
                first_combo = false;
              }
              for (const auto& cell : rep.cells) {
                ++cells;
                explored += cell.explore.orderings_explored;
                decision_points += cell.explore.decision_points;
                pruned += cell.explore.branches_pruned;
                violations += cell.explore.violations.size();
                std::string status = "certified";
                if (!cell.explore.certified()) {
                  failed = true;
                  status = cell.explore.violations.front().invariant;
                  std::cerr << rep.algorithm << " " << cell.label << ": "
                            << cell.explore.violations.front().detail
                            << "\n";
                  for (const std::string& line :
                       cell.explore.violations.front().schedule) {
                    std::cerr << "  " << line << "\n";
                  }
                } else if (cell.label != "no-outage" &&
                           cell.explore.orderings_explored <
                               min_orderings) {
                  vacuous = true;
                  status = "VACUOUS";
                }
                table.add_row(
                    {rep.algorithm, std::to_string(r), std::to_string(k),
                     topo_spec.empty() ? "flat" : topo_spec, disc_spec,
                     order_spec, cell.label,
                     std::to_string(cell.explore.decision_points),
                     std::to_string(cell.explore.orderings_explored),
                     std::to_string(cell.explore.branches_pruned),
                     status});
              }
            }
          }
        }
      }
    }
  }
  const double total_s = watch.elapsed();

  if (!quiet) {
    table.render(std::cout);
    std::cout << "ctcheck: " << cells << " cells, " << races
              << " race(s), " << violations << " violation(s), "
              << explored << " orderings explored off "
              << cache.executions() << " live run(s)\n";
  }
  if (vacuous) {
    std::cerr << "ctcheck: an outage cell explored fewer than "
              << min_orderings
              << " orderings (--min-orderings) — the check is vacuous "
                 "at this budget\n";
  }

  bench::JsonReport report("ctcheck", json);
  report.add("check/cells", static_cast<double>(cells));
  report.add("check/races_found", static_cast<double>(races));
  report.add("check/invariant_violations", static_cast<double>(violations));
  report.add("check/orderings_explored", static_cast<double>(explored));
  report.add("check/decision_points", static_cast<double>(decision_points));
  report.add("check/orderings_pruned", static_cast<double>(pruned));
  report.add("check/total_s", total_s);
  report.write();
  return (failed || vacuous) ? 1 : 0;
}
