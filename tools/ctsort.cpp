// ctsort — command-line driver for the coded-terasort library.
//
// Runs TeraSort and/or CodedTeraSort on a simulated cluster with any
// configuration, verifies the output, and reports executed wall times,
// transport traffic, and (optionally) the EC2-calibrated paper-scale
// projection.
//
//   ctsort --algo=both --nodes=16 --redundancy=3 --records=1200000
//   ctsort --algo=coded --nodes=20 --redundancy=5 --codegen=batched
//   ctsort --algo=both --schedule=parallel-full --paper-records=120000000
//
// Flags (all optional):
//   --algo=terasort|coded|both        what to run            [both]
//   --nodes=K                         worker count           [8]
//   --redundancy=r                    computation load       [3]
//   --records=N                       records to sort        [200000]
//   --seed=S                          workload seed          [2017]
//   --dist=uniform|sorted|reverse|skewed|fewdistinct|balanced [uniform]
//   --partitioner=range|sampled       key partitioner        [range]
//   --codegen=split|batched           group creation mode    [split]
//   --schedule=serial|parallel-full|parallel-half            [serial]
//   --paper-records=N                 report at this scale   [=records]
//   --no-verify                       skip output validation
//
// Transmission-log replay (simnet::ReplayMakespan; prints the shuffle
// makespan of the measured log under a network discipline):
//   --discipline=serial|half|full     replay discipline
//   --order=log|per-sender            initiation-order constraint [log]
//
// Scenario replay (src/simscen; discrete-event replay of the whole run
// under a cluster profile and topology):
//   --scenario                        enable the scenario projection
//   --topology=R:F                    R nodes per rack behind a core
//                                     oversubscribed F:1  [single rack]
//   --straggler=slow:NODE:FACTOR      one node FACTOR x slower
//   --straggler=exp:SHIFT:MEAN[:SEED] shifted-exp factor per node/stage
//   --straggler=failstop:T:REC[:NODE] node offline [T, T+REC); during
//                                     the window the node's links are
//                                     frozen and its in-flight shuffle
//                                     transfers re-queue
// The scenario network uses --discipline/--order (default serial/log).
//
// Straggler mitigation (src/mitigate):
//   --mitigate=none|spec[:Q:T]|coded  policy: speculative re-execution
//                                     (backups once a node runs past
//                                     T x the Q-quantile completion;
//                                     default 0.5:1.5) or K-of-N coded
//                                     Map completion (exploits the r-
//                                     replicated placement)
//   --inject-delay=STAGE:NODE:SEC     live fault injection: that node
//                                     really sleeps SEC inside STAGE
// --mitigate evaluates the policy on the measured run's recorded stage
// boundaries (the live StageRunner path) and, with --scenario, inside
// the scenario replay — the same policy arithmetic either way.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analytics/report.h"
#include "codedterasort/coded_terasort.h"
#include "common/table.h"
#include "common/units.h"
#include "keyvalue/recordio.h"
#include "keyvalue/teragen.h"
#include "keyvalue/teravalidate.h"
#include "mitigate/policy.h"
#include "simscen/engine.h"
#include "terasort/terasort.h"

namespace {

using namespace cts;

// Minimal --key=value parser; unknown flags are fatal (a typo should
// not silently run the wrong experiment).
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        Fail("positional arguments are not supported: " + arg);
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "true";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) {
    consumed_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::uint64_t GetU64(const std::string& key, std::uint64_t fallback) {
    const std::string v = Get(key, std::to_string(fallback));
    return static_cast<std::uint64_t>(std::strtoull(v.c_str(), nullptr, 10));
  }

  bool GetBool(const std::string& key) { return Get(key, "") == "true"; }

  void CheckAllConsumed() const {
    for (const auto& [key, value] : values_) {
      if (!consumed_.count(key)) Fail("unknown flag --" + key);
    }
  }

  [[noreturn]] static void Fail(const std::string& msg) {
    std::cerr << "ctsort: " << msg << " (see header comment for usage)\n";
    std::exit(2);
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
};

KeyDistribution ParseDist(const std::string& name) {
  if (name == "uniform") return KeyDistribution::kUniform;
  if (name == "sorted") return KeyDistribution::kSorted;
  if (name == "reverse") return KeyDistribution::kReverseSorted;
  if (name == "skewed") return KeyDistribution::kSkewed;
  if (name == "fewdistinct") return KeyDistribution::kFewDistinct;
  if (name == "balanced") return KeyDistribution::kBalanced;
  Flags::Fail("unknown --dist=" + name);
}

ShuffleSchedule ParseSchedule(const std::string& name) {
  if (name == "serial") return ShuffleSchedule::kSerial;
  if (name == "parallel-full") return ShuffleSchedule::kParallelFullDuplex;
  if (name == "parallel-half") return ShuffleSchedule::kParallelHalfDuplex;
  Flags::Fail("unknown --schedule=" + name);
}

simnet::Discipline ParseDiscipline(const std::string& name) {
  if (name == "serial") return simnet::Discipline::kSerial;
  if (name == "half") return simnet::Discipline::kParallelHalfDuplex;
  if (name == "full") return simnet::Discipline::kParallelFullDuplex;
  Flags::Fail("unknown --discipline=" + name);
}

simnet::ReplayOrder ParseOrder(const std::string& name) {
  if (name == "log") return simnet::ReplayOrder::kLogOrder;
  if (name == "per-sender") return simnet::ReplayOrder::kPerSender;
  Flags::Fail("unknown --order=" + name);
}

// Splits "a:b:c" into fields.
std::vector<std::string> SplitColons(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t colon = s.find(':', pos);
    if (colon == std::string::npos) {
      out.push_back(s.substr(pos));
      return out;
    }
    out.push_back(s.substr(pos, colon - pos));
    pos = colon + 1;
  }
}

double ParseDouble(const std::string& s, const std::string& flag) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || s.empty()) {
    Flags::Fail("bad number '" + s + "' in --" + flag);
  }
  return v;
}

// Like ParseDouble, but the field must be a whole non-negative number
// (node ids, rack sizes): 1.9 must not silently become 1.
int ParseIndex(const std::string& s, const std::string& flag) {
  const double v = ParseDouble(s, flag);
  const int i = static_cast<int>(v);
  if (v < 0 || static_cast<double>(i) != v) {
    Flags::Fail("bad integer '" + s + "' in --" + flag);
  }
  return i;
}

simscen::Topology ParseTopology(const std::string& spec, int num_nodes) {
  if (spec.empty()) return simscen::Topology::SingleRack(num_nodes);
  const auto fields = SplitColons(spec);
  if (fields.size() != 2) {
    Flags::Fail("--topology expects R:F (nodes-per-rack:oversubscription)");
  }
  const int per_rack = ParseIndex(fields[0], "topology");
  const double factor = ParseDouble(fields[1], "topology");
  if (per_rack < 1) Flags::Fail("--topology needs >= 1 node per rack");
  if (factor <= 0) Flags::Fail("--topology oversubscription must be > 0");
  return simscen::Topology::Oversubscribed(num_nodes, per_rack, factor);
}

simscen::StragglerModel ParseStraggler(const std::string& spec) {
  simscen::StragglerModel m;
  if (spec.empty() || spec == "none") return m;
  const auto fields = SplitColons(spec);
  const std::string& kind = fields[0];
  if (kind == "slow" && fields.size() == 3) {
    m.kind = simscen::StragglerKind::kSlowNode;
    m.node = ParseIndex(fields[1], "straggler");
    m.slowdown = ParseDouble(fields[2], "straggler");
    if (m.slowdown < 1.0) Flags::Fail("--straggler slowdown must be >= 1");
  } else if (kind == "exp" && (fields.size() == 3 || fields.size() == 4)) {
    m.kind = simscen::StragglerKind::kShiftedExp;
    m.shift = ParseDouble(fields[1], "straggler");
    m.mean = ParseDouble(fields[2], "straggler");
    if (m.shift < 0 || m.mean < 0) {
      Flags::Fail("--straggler exp shift/mean must be >= 0");
    }
    if (fields.size() == 4) {
      m.seed = static_cast<std::uint64_t>(
          ParseIndex(fields[3], "straggler"));
    }
  } else if (kind == "failstop" &&
             (fields.size() == 3 || fields.size() == 4)) {
    m.kind = simscen::StragglerKind::kFailStop;
    m.fail_at = ParseDouble(fields[1], "straggler");
    m.recovery = ParseDouble(fields[2], "straggler");
    if (m.fail_at < 0 || m.recovery < 0) {
      Flags::Fail("--straggler failstop times must be >= 0");
    }
    if (fields.size() == 4) {
      m.node = ParseIndex(fields[3], "straggler");
    }
  } else {
    Flags::Fail("unknown --straggler=" + spec +
                " (slow:NODE:FACTOR | exp:SHIFT:MEAN[:SEED] | "
                "failstop:T:REC[:NODE] | none)");
  }
  return m;
}

InjectedDelay ParseInjectDelay(const std::string& spec) {
  const auto fields = SplitColons(spec);
  if (fields.size() != 3) {
    Flags::Fail("--inject-delay expects STAGE:NODE:SECONDS");
  }
  InjectedDelay d;
  d.stage = fields[0];
  d.node = ParseIndex(fields[1], "inject-delay");
  d.seconds = ParseDouble(fields[2], "inject-delay");
  // StageRunner matches the stage by exact name; a typo would silently
  // inject nothing and invalidate the experiment.
  const std::vector<std::string> known = {
      stage::kCodeGen, stage::kMap,    stage::kPack,   stage::kEncode,
      stage::kShuffle, stage::kUnpack, stage::kDecode, stage::kReduce};
  if (std::find(known.begin(), known.end(), d.stage) == known.end()) {
    std::string names;
    for (const auto& n : known) names += (names.empty() ? "" : "|") + n;
    Flags::Fail("--inject-delay stage '" + d.stage + "' is not one of " +
                names);
  }
  if (d.seconds < 0) {
    Flags::Fail("--inject-delay SECONDS must be >= 0");
  }
  return d;
}

// TeraValidate: global order + order-insensitive multiset checksum
// against the generated input.
ValidationReport Verify(const AlgorithmResult& result) {
  const RecordChecksum expected = ChecksumOfInput(
      TeraGen(result.config.seed, result.config.distribution),
      result.config.num_records);
  return ValidatePartitions(result.partitions, expected);
}

void Report(const AlgorithmResult& result, bool verify) {
  std::cout << "--- " << result.algorithm << " ---\n";
  if (verify) {
    const ValidationReport report = Verify(result);
    std::cout << "teravalidate: "
              << (report.valid ? "OK" : "FAILED — " + report.error) << "\n";
    if (!report.valid) std::exit(1);
  }
  TextTable wall(result.algorithm + " executed wall times");
  wall.set_header({"stage", "seconds"});
  for (const auto& [name, sec] : result.wall_seconds) {
    wall.add_row({name, HumanSeconds(sec)});
  }
  wall.render(std::cout);
  const auto shuffle = result.traffic.at(stage::kShuffle);
  std::cout << "shuffle: "
            << HumanBytes(static_cast<double>(shuffle.transmitted_bytes()))
            << " transmitted (" << shuffle.unicast_msgs << " unicasts, "
            << shuffle.mcast_msgs << " multicasts)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  SortConfig config;
  config.num_nodes = static_cast<int>(flags.GetU64("nodes", 8));
  config.redundancy = static_cast<int>(flags.GetU64("redundancy", 3));
  config.num_records = flags.GetU64("records", 200000);
  config.seed = flags.GetU64("seed", 2017);
  config.distribution = ParseDist(flags.Get("dist", "uniform"));
  config.partitioner = flags.Get("partitioner", "range") == "sampled"
                           ? PartitionerKind::kSampled
                           : PartitionerKind::kRange;
  config.codegen_mode = flags.Get("codegen", "split") == "batched"
                            ? CodeGenMode::kBatched
                            : CodeGenMode::kCommSplit;
  const std::string algo = flags.Get("algo", "both");
  const ShuffleSchedule schedule =
      ParseSchedule(flags.Get("schedule", "serial"));
  const std::uint64_t paper_records =
      flags.GetU64("paper-records", config.num_records);
  const bool verify = !flags.GetBool("no-verify");
  const std::string inject_spec = flags.Get("inject-delay", "");
  if (!inject_spec.empty()) {
    InjectedDelay d = ParseInjectDelay(inject_spec);
    if (d.node < 0 || d.node >= config.num_nodes) {
      Flags::Fail("--inject-delay node out of range for --nodes=" +
                  std::to_string(config.num_nodes));
    }
    config.injected_delays.push_back(std::move(d));
  }
  const std::string mitigate_spec = flags.Get("mitigate", "none");
  const std::optional<mitigate::MitigationPolicy> mitigation =
      mitigate::ParsePolicy(mitigate_spec);
  if (!mitigation.has_value()) {
    Flags::Fail("unknown --mitigate=" + mitigate_spec +
                " (none | spec[:QUANTILE:TRIGGER] | coded)");
  }

  // Replay / scenario options.
  const std::string discipline_spec = flags.Get("discipline", "");
  const std::string order_spec = flags.Get("order", "");
  const simnet::Discipline discipline =
      ParseDiscipline(discipline_spec.empty() ? "serial" : discipline_spec);
  const simnet::ReplayOrder order =
      ParseOrder(order_spec.empty() ? "log" : order_spec);
  const bool scenario_enabled = flags.GetBool("scenario");
  const std::string topology_spec = flags.Get("topology", "");
  const std::string straggler_spec = flags.Get("straggler", "none");
  if (!topology_spec.empty() && !scenario_enabled) {
    Flags::Fail("--topology requires --scenario");
  }
  if (straggler_spec != "none" && !scenario_enabled) {
    Flags::Fail("--straggler requires --scenario");
  }
  std::optional<simscen::Scenario> scenario;
  if (scenario_enabled) {
    simscen::Scenario s;
    s.cluster = simscen::ClusterProfile::Homogeneous(config.num_nodes);
    s.cluster.straggler = ParseStraggler(straggler_spec);
    const auto kind = s.cluster.straggler.kind;
    if ((kind == simscen::StragglerKind::kSlowNode ||
         kind == simscen::StragglerKind::kFailStop) &&
        (s.cluster.straggler.node < 0 ||
         s.cluster.straggler.node >= config.num_nodes)) {
      Flags::Fail("--straggler node " +
                  std::to_string(s.cluster.straggler.node) +
                  " out of range for --nodes=" +
                  std::to_string(config.num_nodes));
    }
    s.topology = ParseTopology(topology_spec, config.num_nodes);
    s.discipline = discipline;
    s.order = order;
    s.mitigation = *mitigation;
    scenario = s;
  }
  flags.CheckAllConsumed();

  std::cout << "ctsort: K=" << config.num_nodes << " r=" << config.redundancy
            << " records=" << config.num_records << " ("
            << HumanBytes(static_cast<double>(config.total_bytes()))
            << ")\n\n";

  const CostModel model;
  const RunScale scale = PaperScale(config.num_records, paper_records);
  std::vector<AlgorithmResult> results;

  if (algo == "terasort" || algo == "both") {
    results.push_back(RunTeraSort(config));
  }
  if (algo == "coded" || algo == "both") {
    results.push_back(RunCodedTeraSort(config));
  }
  if (results.empty()) Flags::Fail("unknown --algo=" + algo);

  std::vector<StageBreakdown> rows;
  for (AlgorithmResult& result : results) {
    Report(result, verify);
    rows.push_back(SimulateRun(result, model, scale, schedule));
    // The replay/scenario sections below only need counters and logs;
    // drop the sorted data so --algo=both doesn't hold two full
    // datasets through the reporting phase.
    result.partitions.clear();
    result.partitions.shrink_to_fit();
  }

  BreakdownTable("EC2-calibrated projection at " +
                     HumanBytes(static_cast<double>(paper_records) *
                                kRecordBytes) +
                     " (100 Mbps)",
                 rows)
      .render(std::cout);

  // ---- Transmission-log replay (--discipline/--order) ----
  if (!discipline_spec.empty() || !order_spec.empty()) {
    ShuffleSchedule replay_schedule = ShuffleSchedule::kSerial;
    switch (discipline) {
      case simnet::Discipline::kSerial:
        replay_schedule = ShuffleSchedule::kSerial;
        break;
      case simnet::Discipline::kParallelHalfDuplex:
        replay_schedule = ShuffleSchedule::kParallelHalfDuplex;
        break;
      case simnet::Discipline::kParallelFullDuplex:
        replay_schedule = ShuffleSchedule::kParallelFullDuplex;
        break;
    }
    TextTable replay("shuffle makespan: discrete-event replay of the "
                     "measured log (simnet::ReplayMakespan)");
    replay.set_header({"Algorithm", "discipline", "order", "seconds"});
    for (const AlgorithmResult& result : results) {
      replay.add_row(
          {result.algorithm,
           discipline_spec.empty() ? "serial" : discipline_spec,
           order_spec.empty() ? "log" : order_spec,
           TextTable::Num(ReplayShuffleSeconds(result, model, scale,
                                               replay_schedule, order))});
    }
    std::cout << '\n';
    replay.render(std::cout);
  }

  // ---- Scenario replay (--scenario) ----
  if (scenario.has_value()) {
    std::vector<StageBreakdown> scenario_rows;
    TextTable spans("scenario makespans");
    spans.set_header({"Algorithm", "makespan (s)"});
    for (const AlgorithmResult& result : results) {
      const simscen::ScenarioOutcome out =
          simscen::ReplayScenario(result, model, scale, *scenario);
      scenario_rows.push_back(out.breakdown());
      spans.add_row({out.algorithm, TextTable::Num(out.makespan)});
    }
    std::cout << '\n';
    std::string title = "scenario projection (topology=" +
                        (topology_spec.empty() ? "single-rack"
                                               : topology_spec) +
                        ", straggler=" + straggler_spec +
                        ", mitigate=" + mitigate_spec + ")";
    BreakdownTable(title, scenario_rows).render(std::cout);
    spans.render(std::cout);
  }

  // ---- Mitigation on the measured run (--mitigate) ----
  // The live StageRunner path: the recorded per-node stage boundaries
  // (ComputeEvents, at executed scale — including any --inject-delay
  // straggler that really ran) feed the same ReplayScenario + policy
  // arithmetic the synthetic sweeps use.
  if (mitigation->kind != mitigate::PolicyKind::kNone) {
    TextTable t("mitigation on the measured run (executed scale, policy=" +
                mitigate_spec + ")");
    t.set_header({"Algorithm", "unmitigated (s)", "mitigated (s)",
                  "wasted (s)", "backups", "abandoned"});
    for (const AlgorithmResult& result : results) {
      const simscen::ScenarioRun run = simscen::BuildScenarioRunFromEvents(
          result.algorithm, config.num_nodes, result.stage_order,
          result.compute_events, result.shuffle_log,
          result.config.redundancy);
      simscen::Scenario live;
      live.cluster = simscen::ClusterProfile::Homogeneous(config.num_nodes);
      live.topology = simscen::Topology::SingleRack(config.num_nodes);
      live.discipline = discipline;
      live.order = order;
      const simscen::ScenarioOutcome plain =
          simscen::ReplayScenario(run, live);
      live.mitigation = *mitigation;
      const simscen::ScenarioOutcome mitigated =
          simscen::ReplayScenario(run, live);
      int copies = 0;
      int abandoned = 0;
      for (const auto& span : mitigated.spans) {
        copies += span.speculative_copies;
        abandoned += span.abandoned_nodes;
      }
      t.add_row({result.algorithm, TextTable::Num(plain.makespan, 3),
                 TextTable::Num(mitigated.makespan, 3),
                 TextTable::Num(mitigated.wasted_seconds, 3),
                 std::to_string(copies), std::to_string(abandoned)});
    }
    std::cout << '\n';
    t.render(std::cout);
  }
  return 0;
}
