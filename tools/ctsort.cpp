// ctsort — command-line driver for the coded-terasort library.
//
// A thin shell over the unified Job API (src/job): every invocation
// builds JobSpecs — algorithm registry name × SortConfig × evaluation
// backend × optional scenario — runs them through one RunCache (each
// algorithm executes on the simulated cluster exactly once, every
// other view is a replay of that measured run), verifies the output,
// and reports executed wall times, transport traffic and the
// EC2-calibrated paper-scale projection.
//
//   ctsort --algo=both --nodes=16 --redundancy=3 --records=1200000
//   ctsort --algo=coded --nodes=20 --redundancy=5 --codegen=batched
//   ctsort --algo=each --scenario --straggler=slow:0:4 --json
//   ctsort --list-algos
//
// Flags (all optional):
//   --algo=NAME|both|each             registry name, or: both =
//                                     terasort+coded, each = every
//                                     registered algorithm     [both]
//   --backend=live|priced|simulated   live executes on the thread
//                                     harness; priced is live whose
//                                     --trace comes from the paper-
//                                     scale DES replay instead of the
//                                     measured run; simulated
//                                     synthesizes the counters
//                                     arithmetically
//                                     (Backend::kSimulated) — no
//                                     execution, so K can reach ~1000;
//                                     prints the projection only [live]
//   --list-algos                      print the registry and exit
//   --nodes=K                         worker count           [8]
//   --redundancy=r                    computation load       [3]
//   --records=N                       records to sort        [200000]
//   --seed=S                          workload seed          [2017]
//   --dist=uniform|sorted|reverse|skewed|fewdistinct|balanced [uniform]
//   --partitioner=range|sampled       key partitioner        [range]
//   --codegen=split|batched           group creation mode    [split]
//   --schedule=serial|parallel-full|parallel-half            [serial]
//   --paper-records=N                 report at this scale   [=records]
//   --no-verify                       skip output validation
//   --json[=path]                     bench-schema JSON of every job's
//                                     metrics [off; default path
//                                     BENCH_ctsort.json]
//   --ledger[=path]                   append one run-ledger entry
//                                     (obs/ledger.h) per evaluated
//                                     algorithm — fingerprinted by the
//                                     RunCache key plus the backend and
//                                     scenario axes, queried by
//                                     tools/ctstat [off; default path
//                                     LEDGER_ctsort.jsonl]
//
// Observability (src/obs):
//   --trace=FILE                      write a Chrome trace_event JSON
//                                     of the run (load in Perfetto /
//                                     chrome://tracing): one process
//                                     per algorithm, one track per
//                                     node, shuffle slices + flow
//                                     arrows, outage/speculation
//                                     marks. --backend=live traces the
//                                     measured run; --backend=priced
//                                     traces the DES scenario replay
//                                     (baseline scenario when
//                                     --scenario is absent). Rejected
//                                     under --backend=simulated
//                                     (nothing executes).
//   --metrics                         print the process-wide
//                                     MetricRegistry snapshot after
//                                     the run
//
// Transmission-log replay (simnet::ReplayMakespan; prints the shuffle
// makespan of the measured log under a network discipline):
//   --discipline=serial|half|full     replay discipline
//   --order=log|per-sender            initiation-order constraint [log]
//
// Scenario replay (src/simscen; discrete-event replay of the whole run
// under a cluster profile and topology — flag syntax is shared with
// the bench sweeps via job::ParseScenario):
//   --scenario                        enable the scenario projection
//   --topology=R:F                    R nodes per rack behind a core
//                                     oversubscribed F:1  [single rack]
//   --straggler=slow:NODE:FACTOR      one node FACTOR x slower
//   --straggler=exp:SHIFT:MEAN[:SEED] shifted-exp factor per node/stage
//   --straggler=failstop:T:REC[:NODE] node offline [T, T+REC); during
//                                     the window the node's links are
//                                     frozen and its in-flight shuffle
//                                     transfers re-queue
// The scenario network uses --discipline/--order (default serial/log).
//
// Straggler mitigation (src/mitigate):
//   --mitigate=none|spec[:Q:T]|coded  policy: speculative re-execution
//                                     (backups once a node runs past
//                                     T x the Q-quantile completion;
//                                     default 0.5:1.5) or K-of-N coded
//                                     Map completion (exploits the r-
//                                     replicated placement)
//   --inject-delay=STAGE:NODE:SEC     live fault injection: that node
//                                     really sleeps SEC inside STAGE
// --mitigate evaluates the policy on the measured run's recorded stage
// boundaries (a kLive job replayed under the baseline scenario) and,
// with --scenario, inside the scenario replay — the same policy
// arithmetic either way.
#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analytics/report.h"
#include "bench/bench_common.h"
#include "common/table.h"
#include "common/units.h"
#include "job/job.h"
#include "job/parse.h"
#include "job/registry.h"
#include "keyvalue/teragen.h"
#include "keyvalue/teravalidate.h"
#include "mitigate/policy.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "tools/flag_parser.h"

namespace {

using namespace cts;

using cts::tools::Flags;

KeyDistribution ParseDist(const std::string& name) {
  if (name == "uniform") return KeyDistribution::kUniform;
  if (name == "sorted") return KeyDistribution::kSorted;
  if (name == "reverse") return KeyDistribution::kReverseSorted;
  if (name == "skewed") return KeyDistribution::kSkewed;
  if (name == "fewdistinct") return KeyDistribution::kFewDistinct;
  if (name == "balanced") return KeyDistribution::kBalanced;
  Flags::Fail("unknown --dist=" + name);
}

ShuffleSchedule ParseSchedule(const std::string& name) {
  if (name == "serial") return ShuffleSchedule::kSerial;
  if (name == "parallel-full") return ShuffleSchedule::kParallelFullDuplex;
  if (name == "parallel-half") return ShuffleSchedule::kParallelHalfDuplex;
  Flags::Fail("unknown --schedule=" + name);
}

// The registry printout behind --list-algos.
void ListAlgorithms() {
  TextTable table("registered algorithms (ctsort --algo=NAME)");
  table.set_header({"name", "priced", "sorts", "knobs", "description"});
  for (const std::string& name : job::Names()) {
    const job::AlgorithmInfo* info = job::Find(name);
    std::string knobs;
    for (const std::string& knob : info->knobs) {
      knobs += (knobs.empty() ? "" : ",") + knob;
    }
    table.add_row({name, info->priced ? "yes" : "no",
                   info->sorts ? "yes" : "no", knobs, info->description});
  }
  table.render(std::cout);
}

// Resolves --algo into registry names; dies with a did-you-mean
// suggestion on an unknown name.
std::vector<std::string> ResolveAlgos(const std::string& spec) {
  if (spec == "both") return {"terasort", "coded"};
  if (spec == "each") {
    // The registry is alphabetical; the report tables compute speedup
    // against their first row, so keep the paper's baseline first:
    // terasort, then the other priced sorters, then unpriced engines.
    std::vector<std::string> names = job::Names();
    std::stable_sort(names.begin(), names.end(),
                     [](const std::string& a, const std::string& b) {
                       const auto rank = [](const std::string& n) {
                         if (n == "terasort") return 0;
                         return job::Find(n)->priced ? 1 : 2;
                       };
                       return rank(a) < rank(b);
                     });
    return names;
  }
  if (job::Find(spec) != nullptr) return {spec};
  std::string msg = "unknown --algo=" + spec;
  const std::string suggestion = job::SuggestName(spec);
  if (!suggestion.empty()) {
    msg += " (did you mean --algo=" + suggestion + "?)";
  } else {
    msg += " (see --list-algos)";
  }
  Flags::Fail(msg);
}

// TeraValidate: global order + order-insensitive multiset checksum
// against the generated input.
ValidationReport Verify(const AlgorithmResult& result) {
  const RecordChecksum expected = ChecksumOfInput(
      TeraGen(result.config.seed, result.config.distribution),
      result.config.num_records);
  return ValidatePartitions(result.partitions, expected);
}

void Report(const AlgorithmResult& result, bool verify) {
  std::cout << "--- " << result.algorithm << " ---\n";
  if (verify) {
    const ValidationReport report = Verify(result);
    std::cout << "teravalidate: "
              << (report.valid ? "OK" : "FAILED — " + report.error) << "\n";
    if (!report.valid) std::exit(1);
  }
  TextTable wall(result.algorithm + " executed wall times");
  wall.set_header({"stage", "seconds"});
  for (const auto& [name, sec] : result.wall_seconds) {
    wall.add_row({name, HumanSeconds(sec)});
  }
  wall.render(std::cout);
  const auto it = result.traffic.find(stage::kShuffle);
  if (it != result.traffic.end()) {
    std::cout << "shuffle: "
              << HumanBytes(static_cast<double>(it->second.transmitted_bytes()))
              << " transmitted (" << it->second.unicast_msgs << " unicasts, "
              << it->second.mcast_msgs << " multicasts)\n";
  }
  std::cout << "\n";
}

// --ledger: one run-ledger entry per evaluated algorithm view. The
// fingerprint hashes the RunCache key plus the evaluation axes, so
// the same cell fingerprints identically across invocations (and
// tools): appending two builds' runs to one ledger makes
// `ctstat --check` a regression gate over this exact spec.
void RecordLedger(const std::string& path, const std::string& run_name,
                  const job::JobResult& result,
                  const std::map<std::string, std::string>& extra_axes) {
  if (path.empty()) return;
  obs::LedgerEntry entry;
  entry.bench = "ctsort";
  entry.run = run_name;
  entry.code_version = obs::CodeVersion();
  const job::JobSpec& spec = result.spec;
  entry.axes["algo"] = spec.algorithm;
  entry.axes["K"] = std::to_string(spec.config.num_nodes);
  entry.axes["r"] = std::to_string(spec.config.redundancy);
  entry.axes["records"] = std::to_string(spec.config.num_records);
  entry.axes["seed"] = std::to_string(spec.config.seed);
  entry.axes["backend"] = job::BackendName(spec.backend);
  for (const auto& [key, value] : extra_axes) entry.axes[key] = value;
  std::string identity =
      job::RunCache::Key(spec.algorithm, spec.config) +
      "|backend=" + job::BackendName(spec.backend) +
      "|paper=" + std::to_string(spec.paper_records);
  for (const auto& [key, value] : entry.axes) {
    identity += "|" + key + "=" + value;
  }
  entry.fingerprint = obs::HexDigest(obs::Fingerprint64(identity));
  entry.values = result.metrics(run_name);
  obs::DigestTimeline(result.timeline, entry);
  if (!obs::AppendEntry(path, entry)) {
    std::cerr << "ctsort: cannot append to ledger " << path << "\n";
    std::exit(1);
  }
  std::cout << "appended ledger entry " << entry.fingerprint << " ("
            << run_name << ") to " << path << "\n";
}

// --metrics: the process-wide obs::MetricRegistry, one row per entry
// (the same snapshot --json embeds under its "metrics" key).
void PrintRegistrySnapshot() {
  const std::map<std::string, double> snapshot =
      obs::MetricRegistry::Global().Snapshot();
  std::cout << '\n';
  TextTable table("metric registry (" + std::to_string(snapshot.size()) +
                  " entries)");
  table.set_header({"metric", "value"});
  for (const auto& [key, value] : snapshot) {
    table.add_row({key, TextTable::Num(value)});
  }
  table.render(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, "ctsort");

  if (flags.GetBool("list-algos")) {
    flags.CheckAllConsumed();
    ListAlgorithms();
    return 0;
  }

  SortConfig config;
  config.num_nodes = static_cast<int>(flags.GetU64("nodes", 8));
  config.redundancy = static_cast<int>(flags.GetU64("redundancy", 3));
  config.num_records = flags.GetU64("records", 200000);
  config.seed = flags.GetU64("seed", 2017);
  config.distribution = ParseDist(flags.Get("dist", "uniform"));
  config.partitioner = flags.Get("partitioner", "range") == "sampled"
                           ? PartitionerKind::kSampled
                           : PartitionerKind::kRange;
  config.codegen_mode = flags.Get("codegen", "split") == "batched"
                            ? CodeGenMode::kBatched
                            : CodeGenMode::kCommSplit;
  const std::vector<std::string> algos =
      ResolveAlgos(flags.Get("algo", "both"));
  const ShuffleSchedule schedule =
      ParseSchedule(flags.Get("schedule", "serial"));
  const std::uint64_t paper_records =
      flags.GetU64("paper-records", config.num_records);
  const bool verify = !flags.GetBool("no-verify");
  std::string parse_error;
  const std::string inject_spec = flags.Get("inject-delay", "");
  if (!inject_spec.empty()) {
    const auto delay =
        job::ParseInjectDelay(inject_spec, config.num_nodes, &parse_error);
    if (!delay.has_value()) Flags::Fail(parse_error);
    config.injected_delays.push_back(*delay);
  }
  const std::string mitigate_spec = flags.Get("mitigate", "none");
  const std::optional<mitigate::MitigationPolicy> mitigation =
      mitigate::ParsePolicy(mitigate_spec);
  if (!mitigation.has_value()) {
    Flags::Fail("unknown --mitigate=" + mitigate_spec +
                " (none | spec[:QUANTILE:TRIGGER] | coded)");
  }

  // Replay / scenario options (the spec strings feed the shared
  // job::ParseScenario, so they mean the same experiment here and in
  // the bench sweeps).
  job::ScenarioSpec scenario_spec;
  scenario_spec.discipline = flags.Get("discipline", "");
  scenario_spec.order = flags.Get("order", "");
  scenario_spec.topology = flags.Get("topology", "");
  scenario_spec.straggler = flags.Get("straggler", "none");
  scenario_spec.mitigate = mitigate_spec;
  const bool scenario_enabled = flags.GetBool("scenario");
  if (!scenario_spec.topology.empty() && !scenario_enabled) {
    Flags::Fail("--topology requires --scenario");
  }
  if (scenario_spec.straggler != "none" && !scenario_enabled) {
    Flags::Fail("--straggler requires --scenario");
  }
  std::optional<simscen::Scenario> scenario;
  if (scenario_enabled) {
    const auto parsed =
        job::ParseScenario(scenario_spec, config.num_nodes, &parse_error);
    if (!parsed.has_value()) Flags::Fail(parse_error);
    scenario = *parsed;
  }
  const auto discipline_parsed =
      job::ParseDiscipline(scenario_spec.discipline, &parse_error);
  if (!discipline_parsed.has_value()) Flags::Fail(parse_error);
  const simnet::Discipline discipline = *discipline_parsed;
  const auto order_parsed = job::ParseOrder(scenario_spec.order, &parse_error);
  if (!order_parsed.has_value()) Flags::Fail(parse_error);
  const simnet::ReplayOrder order = *order_parsed;
  std::string json_path = flags.Get("json", "");
  if (json_path == "true") json_path = "BENCH_ctsort.json";
  std::string ledger_path = flags.Get("ledger", "");
  if (ledger_path == "true") ledger_path = "LEDGER_ctsort.jsonl";
  const std::string backend_name = flags.Get("backend", "live");
  if (backend_name != "live" && backend_name != "priced" &&
      backend_name != "simulated") {
    Flags::Fail("unknown --backend=" + backend_name +
                " (live | priced | simulated)");
  }
  const bool simulated = backend_name == "simulated";
  const bool priced_trace = backend_name == "priced";
  const std::string trace_path = flags.Get("trace", "");
  if (trace_path == "true") Flags::Fail("--trace needs a path: --trace=FILE");
  if (!trace_path.empty() && simulated) {
    Flags::Fail(
        "--backend=simulated never executes, so there is nothing to "
        "trace — use --backend=live or --backend=priced");
  }
  const bool print_metrics = flags.GetBool("metrics");
  flags.CheckAllConsumed();

  std::cout << "ctsort: K=" << config.num_nodes << " r=" << config.redundancy
            << " records=" << config.num_records << " ("
            << HumanBytes(static_cast<double>(config.total_bytes()))
            << ")\n\n";

  // One cache for every view below: each algorithm hits the simulated
  // cluster exactly once.
  job::RunCache cache;
  bench::JsonReport json("ctsort", json_path);

  // Ledger axes beyond the SortConfig: what the scenario flags add to
  // a cell's identity (all entries of one invocation share them).
  std::map<std::string, std::string> ledger_axes;
  if (scenario_enabled) {
    ledger_axes["straggler"] = scenario_spec.straggler;
    ledger_axes["topology"] =
        scenario_spec.topology.empty() ? "flat" : scenario_spec.topology;
    ledger_axes["mitigate"] = mitigate_spec;
  }

  // ---- Synthesized backend (--backend=simulated) ----
  // Closed forms only: no execution means nothing to verify, no
  // transmission log to replay, no measured events to run a scenario
  // or mitigation policy over.
  if (simulated) {
    if (scenario_enabled || !scenario_spec.discipline.empty() ||
        !scenario_spec.order.empty() ||
        mitigation->kind != mitigate::PolicyKind::kNone ||
        !config.injected_delays.empty()) {
      Flags::Fail(
          "--backend=simulated prices closed forms only — scenario, "
          "replay, mitigation and fault-injection flags need "
          "--backend=live");
    }
    std::vector<StageBreakdown> rows;
    for (const std::string& name : algos) {
      job::JobSpec spec;
      spec.algorithm = name;
      spec.config = config;
      spec.backend = job::Backend::kSimulated;
      spec.paper_records = paper_records;
      spec.schedule = schedule;
      const job::JobResult sim = job::RunJob(spec, cache);
      if (!sim.error.empty()) {
        std::cout << "--- " << name << " ---\nsimulated: skipped — "
                  << sim.error << "\n\n";
        continue;
      }
      rows.push_back(sim.breakdown);
      if (json.enabled()) {
        json.add_all(sim.metrics(name));
        json.add_timeline(name, sim.timeline);
      }
      RecordLedger(ledger_path, name, sim, ledger_axes);
    }
    if (!rows.empty()) {
      BreakdownTable("synthesized EC2-calibrated projection at " +
                         HumanBytes(static_cast<double>(paper_records) *
                                    kRecordBytes) +
                         " (100 Mbps)",
                     rows)
          .render(std::cout);
    }
    json.write();
    if (print_metrics) PrintRegistrySnapshot();
    return rows.empty() ? 1 : 0;
  }

  struct AlgoRun {
    std::string name;  // registry name
    job::JobResult live;
  };
  std::vector<AlgoRun> runs;
  for (const std::string& name : algos) {
    job::JobSpec spec;
    spec.algorithm = name;
    spec.config = config;
    spec.backend = job::Backend::kLive;
    runs.push_back({name, job::RunJob(spec, cache)});
    const job::AlgorithmInfo* info = job::Find(name);
    Report(*runs.back().live.execution, verify && info->sorts);
    // The sections below only need counters, logs and events; drop the
    // sorted data so --algo=each doesn't hold every dataset through
    // the reporting phase.
    cache.ReleasePartitions(name, config);
  }

  // ---- EC2-calibrated projection (priced algorithms) ----
  std::vector<StageBreakdown> rows;
  for (const AlgoRun& run : runs) {
    if (!job::Find(run.name)->priced) continue;
    job::JobSpec spec;
    spec.algorithm = run.name;
    spec.config = config;
    spec.backend = job::Backend::kPriced;
    spec.paper_records = paper_records;
    spec.schedule = schedule;
    const job::JobResult priced = job::RunJob(spec, cache);
    rows.push_back(priced.breakdown);
    if (!scenario.has_value()) {
      if (json.enabled()) {
        json.add_all(priced.metrics(run.name));
        json.add_timeline(run.name, priced.timeline);
      }
      RecordLedger(ledger_path, run.name, priced, ledger_axes);
    }
  }
  if (!rows.empty()) {
    BreakdownTable("EC2-calibrated projection at " +
                       HumanBytes(static_cast<double>(paper_records) *
                                  kRecordBytes) +
                       " (100 Mbps)",
                   rows)
        .render(std::cout);
  }
  // Unpriced algorithms (no NodeWork counters) report executed-scale
  // walls in the JSON instead of a paper-scale projection.
  if (!scenario.has_value()) {
    for (const AlgoRun& run : runs) {
      if (!job::Find(run.name)->priced) {
        if (json.enabled()) {
          json.add_all(run.live.metrics(run.name));
          json.add_timeline(run.name, run.live.timeline);
        }
        RecordLedger(ledger_path, run.name, run.live, ledger_axes);
      }
    }
  }

  // ---- Transmission-log replay (--discipline/--order) ----
  if (!scenario_spec.discipline.empty() || !scenario_spec.order.empty()) {
    const bench::BenchPricing pricing =
        bench::PaperPricing(config, paper_records);
    TextTable replay("shuffle makespan: discrete-event replay of the "
                     "measured log (simnet::ReplayMakespan)");
    replay.set_header({"Algorithm", "discipline", "order", "seconds"});
    for (const AlgoRun& run : runs) {
      if (!job::Find(run.name)->priced) continue;
      replay.add_row(
          {run.live.algorithm,
           scenario_spec.discipline.empty() ? "serial"
                                            : scenario_spec.discipline,
           scenario_spec.order.empty() ? "log" : scenario_spec.order,
           TextTable::Num(ReplayShuffleSeconds(
               *run.live.execution, pricing.model, pricing.scale,
               discipline, order))});
    }
    std::cout << '\n';
    replay.render(std::cout);
  }

  // ---- Scenario replay (--scenario) ----
  // Priced algorithms replay at paper scale; unpriced engines (CMR)
  // replay their measured ComputeEvents at executed scale. The two are
  // different units, so they get separate tables rather than a shared
  // speedup baseline.
  if (scenario.has_value()) {
    std::vector<StageBreakdown> scenario_rows;
    std::vector<StageBreakdown> executed_rows;
    TextTable spans("scenario makespans (paper scale)");
    spans.set_header({"Algorithm", "makespan (s)"});
    for (const AlgoRun& run : runs) {
      job::JobSpec spec;
      spec.algorithm = run.name;
      spec.config = config;
      spec.backend = job::Backend::kReplay;
      spec.paper_records = paper_records;
      spec.scenario = scenario;
      const job::JobResult replayed = job::RunJob(spec, cache);
      if (replayed.priced) {
        scenario_rows.push_back(replayed.breakdown);
        spans.add_row({replayed.algorithm,
                       TextTable::Num(replayed.makespan)});
      } else {
        executed_rows.push_back(replayed.breakdown);
      }
      if (json.enabled()) {
        json.add_all(replayed.metrics(run.name));
        json.add_timeline(run.name, replayed.timeline);
      }
      RecordLedger(ledger_path, run.name, replayed, ledger_axes);
    }
    std::cout << '\n';
    const std::string knobs = "topology=" +
                              (scenario_spec.topology.empty()
                                   ? "single-rack"
                                   : scenario_spec.topology) +
                              ", straggler=" + scenario_spec.straggler +
                              ", mitigate=" + mitigate_spec;
    if (!scenario_rows.empty()) {
      BreakdownTable("scenario projection (" + knobs + ")", scenario_rows)
          .render(std::cout);
      spans.render(std::cout);
    }
    if (!executed_rows.empty()) {
      BreakdownTable("scenario replay of measured events, executed scale (" +
                         knobs + ")",
                     executed_rows)
          .render(std::cout);
    }
  }

  // ---- Mitigation on the measured run (--mitigate) ----
  // The live path: the recorded per-node stage boundaries
  // (ComputeEvents, at executed scale — including any --inject-delay
  // straggler that really ran) replayed under the baseline scenario
  // with and without the policy — the same ReplayScenario + policy
  // arithmetic the synthetic sweeps use.
  if (mitigation->kind != mitigate::PolicyKind::kNone) {
    TextTable t("mitigation on the measured run (executed scale, policy=" +
                mitigate_spec + ")");
    t.set_header({"Algorithm", "unmitigated (s)", "mitigated (s)",
                  "wasted (s)", "backups", "abandoned"});
    for (const AlgoRun& run : runs) {
      simscen::Scenario live = simscen::Scenario::Baseline(config.num_nodes);
      live.discipline = discipline;
      live.order = order;
      job::JobSpec spec;
      spec.algorithm = run.name;
      spec.config = config;
      spec.backend = job::Backend::kLive;
      spec.scenario = live;
      const job::JobResult plain = job::RunJob(spec, cache);
      spec.scenario->mitigation = *mitigation;
      const job::JobResult mitigated = job::RunJob(spec, cache);
      t.add_row({run.live.algorithm, TextTable::Num(plain.makespan, 3),
                 TextTable::Num(mitigated.makespan, 3),
                 TextTable::Num(mitigated.wasted_seconds, 3),
                 std::to_string(mitigated.speculative_copies),
                 std::to_string(mitigated.abandoned_nodes)});
    }
    std::cout << '\n';
    t.render(std::cout);
  }

  // ---- Chrome trace export (--trace=FILE) ----
  // One process (pid) per traced algorithm in a single merged file.
  // Each pid's otherData entry records the execution's measured
  // shuffle payload so checkers (tools/trace_check.py, obs_test) can
  // verify byte conservation: the summed "bytes" args of the trace's
  // shuffle slices must equal these totals exactly.
  if (!trace_path.empty()) {
    obs::Trace trace;
    int pid = 0;
    for (const AlgoRun& run : runs) {
      const AlgorithmResult& exec = *run.live.execution;
      // The flight-recorder counter track rides along on tid K+1 of
      // each algorithm's process: the live virtual-time series always,
      // plus the DES series when the priced scenario replay runs.
      const int counter_tid = config.num_nodes + 1;
      if (!priced_trace) {
        trace.Merge(obs::BuildLiveTrace(exec, pid, run.name));
        obs::AppendTimelineCounters(run.live.timeline, trace, pid,
                                    counter_tid);
      } else {
        if (!job::Find(run.name)->priced) {
          std::cout << "trace: skipping " << run.name
                    << " (unpriced — no paper-scale DES replay)\n";
          continue;
        }
        // The DES view: the paper-scale replay under the requested
        // scenario, or the baseline cluster with the CLI's network
        // discipline and mitigation policy when --scenario is absent.
        simscen::Scenario replay_scenario;
        if (scenario.has_value()) {
          replay_scenario = *scenario;
        } else {
          replay_scenario = simscen::Scenario::Baseline(config.num_nodes);
          replay_scenario.discipline = discipline;
          replay_scenario.order = order;
          replay_scenario.mitigation = *mitigation;
        }
        const auto scenario_run = cache.GetScenarioRun(
            run.name, config, paper_records, /*from_events=*/false);
        obs::Timeline timeline = obs::BuildLiveTimeline(exec);
        const simscen::ScenarioOutcome outcome =
            simscen::ReplayScenario(*scenario_run, replay_scenario,
                                    &timeline);
        trace.Merge(obs::BuildScenarioTrace(*scenario_run, outcome,
                                            replay_scenario, pid,
                                            run.name + " (scenario)"));
        obs::AppendTimelineCounters(timeline, trace, pid, counter_tid);
      }
      const auto it = exec.traffic.find(stage::kShuffle);
      trace.set_meta(run.name + "/shuffle_payload_bytes",
                     it == exec.traffic.end()
                         ? 0.0
                         : static_cast<double>(it->second.transmitted_bytes()));
      ++pid;
    }
    const std::string invalid = obs::ValidateTrace(trace);
    if (!invalid.empty()) {
      std::cerr << "ctsort: internal error — built an invalid trace: "
                << invalid << "\n";
      return 1;
    }
    std::ofstream out(trace_path);
    if (!out) Flags::Fail("cannot write --trace=" + trace_path);
    trace.WriteJson(out);
    std::cout << "\nwrote " << trace_path << " (" << trace.events().size()
              << " events, " << pid << " algorithm tracks) — load in "
              << "Perfetto or chrome://tracing\n";
  }

  json.write();
  if (print_metrics) PrintRegistrySnapshot();
  return 0;
}
