// ctsort — command-line driver for the coded-terasort library.
//
// Runs TeraSort and/or CodedTeraSort on a simulated cluster with any
// configuration, verifies the output, and reports executed wall times,
// transport traffic, and (optionally) the EC2-calibrated paper-scale
// projection.
//
//   ctsort --algo=both --nodes=16 --redundancy=3 --records=1200000
//   ctsort --algo=coded --nodes=20 --redundancy=5 --codegen=batched
//   ctsort --algo=both --schedule=parallel-full --paper-records=120000000
//
// Flags (all optional):
//   --algo=terasort|coded|both        what to run            [both]
//   --nodes=K                         worker count           [8]
//   --redundancy=r                    computation load       [3]
//   --records=N                       records to sort        [200000]
//   --seed=S                          workload seed          [2017]
//   --dist=uniform|sorted|reverse|skewed|fewdistinct|balanced [uniform]
//   --partitioner=range|sampled       key partitioner        [range]
//   --codegen=split|batched           group creation mode    [split]
//   --schedule=serial|parallel-full|parallel-half            [serial]
//   --paper-records=N                 report at this scale   [=records]
//   --no-verify                       skip output validation
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <string>

#include "analytics/report.h"
#include "codedterasort/coded_terasort.h"
#include "common/table.h"
#include "common/units.h"
#include "keyvalue/recordio.h"
#include "keyvalue/teragen.h"
#include "keyvalue/teravalidate.h"
#include "terasort/terasort.h"

namespace {

using namespace cts;

// Minimal --key=value parser; unknown flags are fatal (a typo should
// not silently run the wrong experiment).
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        Fail("positional arguments are not supported: " + arg);
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "true";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) {
    consumed_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::uint64_t GetU64(const std::string& key, std::uint64_t fallback) {
    const std::string v = Get(key, std::to_string(fallback));
    return static_cast<std::uint64_t>(std::strtoull(v.c_str(), nullptr, 10));
  }

  bool GetBool(const std::string& key) { return Get(key, "") == "true"; }

  void CheckAllConsumed() const {
    for (const auto& [key, value] : values_) {
      if (!consumed_.count(key)) Fail("unknown flag --" + key);
    }
  }

  [[noreturn]] static void Fail(const std::string& msg) {
    std::cerr << "ctsort: " << msg << " (see header comment for usage)\n";
    std::exit(2);
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
};

KeyDistribution ParseDist(const std::string& name) {
  if (name == "uniform") return KeyDistribution::kUniform;
  if (name == "sorted") return KeyDistribution::kSorted;
  if (name == "reverse") return KeyDistribution::kReverseSorted;
  if (name == "skewed") return KeyDistribution::kSkewed;
  if (name == "fewdistinct") return KeyDistribution::kFewDistinct;
  if (name == "balanced") return KeyDistribution::kBalanced;
  Flags::Fail("unknown --dist=" + name);
}

ShuffleSchedule ParseSchedule(const std::string& name) {
  if (name == "serial") return ShuffleSchedule::kSerial;
  if (name == "parallel-full") return ShuffleSchedule::kParallelFullDuplex;
  if (name == "parallel-half") return ShuffleSchedule::kParallelHalfDuplex;
  Flags::Fail("unknown --schedule=" + name);
}

// TeraValidate: global order + order-insensitive multiset checksum
// against the generated input.
ValidationReport Verify(const AlgorithmResult& result) {
  const RecordChecksum expected = ChecksumOfInput(
      TeraGen(result.config.seed, result.config.distribution),
      result.config.num_records);
  return ValidatePartitions(result.partitions, expected);
}

void Report(const AlgorithmResult& result, bool verify) {
  std::cout << "--- " << result.algorithm << " ---\n";
  if (verify) {
    const ValidationReport report = Verify(result);
    std::cout << "teravalidate: "
              << (report.valid ? "OK" : "FAILED — " + report.error) << "\n";
    if (!report.valid) std::exit(1);
  }
  TextTable wall(result.algorithm + " executed wall times");
  wall.set_header({"stage", "seconds"});
  for (const auto& [name, sec] : result.wall_seconds) {
    wall.add_row({name, HumanSeconds(sec)});
  }
  wall.render(std::cout);
  const auto shuffle = result.traffic.at(stage::kShuffle);
  std::cout << "shuffle: "
            << HumanBytes(static_cast<double>(shuffle.transmitted_bytes()))
            << " transmitted (" << shuffle.unicast_msgs << " unicasts, "
            << shuffle.mcast_msgs << " multicasts)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  SortConfig config;
  config.num_nodes = static_cast<int>(flags.GetU64("nodes", 8));
  config.redundancy = static_cast<int>(flags.GetU64("redundancy", 3));
  config.num_records = flags.GetU64("records", 200000);
  config.seed = flags.GetU64("seed", 2017);
  config.distribution = ParseDist(flags.Get("dist", "uniform"));
  config.partitioner = flags.Get("partitioner", "range") == "sampled"
                           ? PartitionerKind::kSampled
                           : PartitionerKind::kRange;
  config.codegen_mode = flags.Get("codegen", "split") == "batched"
                            ? CodeGenMode::kBatched
                            : CodeGenMode::kCommSplit;
  const std::string algo = flags.Get("algo", "both");
  const ShuffleSchedule schedule =
      ParseSchedule(flags.Get("schedule", "serial"));
  const std::uint64_t paper_records =
      flags.GetU64("paper-records", config.num_records);
  const bool verify = !flags.GetBool("no-verify");
  flags.CheckAllConsumed();

  std::cout << "ctsort: K=" << config.num_nodes << " r=" << config.redundancy
            << " records=" << config.num_records << " ("
            << HumanBytes(static_cast<double>(config.total_bytes()))
            << ")\n\n";

  const CostModel model;
  const RunScale scale = PaperScale(config.num_records, paper_records);
  std::vector<StageBreakdown> rows;

  if (algo == "terasort" || algo == "both") {
    const AlgorithmResult result = RunTeraSort(config);
    Report(result, verify);
    rows.push_back(SimulateRun(result, model, scale, schedule));
  }
  if (algo == "coded" || algo == "both") {
    const AlgorithmResult result = RunCodedTeraSort(config);
    Report(result, verify);
    rows.push_back(SimulateRun(result, model, scale, schedule));
  }
  if (algo != "terasort" && algo != "coded" && algo != "both") {
    Flags::Fail("unknown --algo=" + algo);
  }

  BreakdownTable("EC2-calibrated projection at " +
                     HumanBytes(static_cast<double>(paper_records) *
                                kRecordBytes) +
                     " (100 Mbps)",
                 rows)
      .render(std::cout);
  return 0;
}
