// ctstat — trend queries over run ledgers (obs/ledger.h): the query
// half of the flight recorder. ctsort and the bench binaries append
// one JSONL entry per evaluated run behind --ledger=FILE; ctstat
// lists, filters, diffs and gates those entries so CI (and a human
// with two ledgers) can answer "did this cell move?" without
// replaying anything.
//
// Usage: ctstat --ledger=FILE [--flags]
//   --ledger=FILE           the ledger to query (required)
//   --filter=K=V,...        keep entries matching every K=V; K is an
//                           axis name or one of the pseudo-axes
//                           bench, run, fingerprint, code_version
//                           (fingerprint matches by prefix)
//   --metric=KEY            value column of the list view (default:
//                           the entry's first key ending in the gate
//                           suffix)
//   --compare=FPA,FPB       per-metric deltas between the latest
//                           entry of each fingerprint (prefixes ok),
//                           including timeline digest drift
//   --check                 gate: per fingerprint with >= 2 entries,
//                           compare latest vs first on every key
//                           ending in --suffix; growth beyond
//                           --threshold exits 1 (the CI ledger-smoke
//                           step runs this)
//   --suffix=total_s        gating key suffix
//   --threshold=0.15        allowed relative growth
//   --re-emit               print each kept entry's canonical
//                           serialization — byte-identical to the
//                           file for well-formed ledgers, which
//                           ledger_test pins as the exactness check
//   --csv[=PATH]            long-form CSV (one row per entry value)
//                           to stdout (bare) or PATH
//   --json=PATH             bench-schema JSON summary (ctstat/entries,
//                           ctstat/regressions, ...)
//   --quiet                 suppress the text tables
//
// Exit status: 0 clean, 1 gate failure (--check only), 2 usage or
// ledger parse error.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "obs/ledger.h"
#include "tools/flag_parser.h"

namespace {

using namespace cts;
using cts::tools::Flags;
using obs::LedgerEntry;

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream in(s);
  while (std::getline(in, field, ',')) out.push_back(field);
  return out;
}

// A --filter clause: axis (or pseudo-axis) name -> required value.
struct Filter {
  std::string key;
  std::string value;
};

bool Matches(const LedgerEntry& e, const Filter& f) {
  if (f.key == "bench") return e.bench == f.value;
  if (f.key == "run") return e.run == f.value;
  if (f.key == "code_version") return e.code_version == f.value;
  if (f.key == "fingerprint") {
    return e.fingerprint.rfind(f.value, 0) == 0;  // prefix match
  }
  const auto it = e.axes.find(f.key);
  return it != e.axes.end() && it->second == f.value;
}

// Ends-with match for gating keys ("coded/total_s" gates under suffix
// "total_s"; a bare key equal to the suffix gates too).
bool GatedKey(const std::string& key, const std::string& suffix) {
  if (key == suffix) return true;
  return key.size() > suffix.size() &&
         key.compare(key.size() - suffix.size(), suffix.size(), suffix) ==
             0 &&
         (key[key.size() - suffix.size() - 1] == '/' ||
          key[key.size() - suffix.size() - 1] == '_');
}

// Relative growth new vs old; a vanished baseline counts as infinite
// growth (same convention as tools/bench_trend.py).
double Growth(double oldv, double newv) {
  if (oldv == 0) return newv == 0 ? 0 : std::numeric_limits<double>::infinity();
  return (newv - oldv) / oldv;
}

// The latest entry whose fingerprint starts with `prefix`, or null.
const LedgerEntry* FindByFingerprint(const std::vector<LedgerEntry>& entries,
                                     const std::string& prefix) {
  const LedgerEntry* found = nullptr;
  for (const LedgerEntry& e : entries) {
    if (e.fingerprint.rfind(prefix, 0) == 0) found = &e;
  }
  return found;
}

std::string Short(const std::string& fingerprint) {
  return fingerprint.size() > 8 ? fingerprint.substr(0, 8) : fingerprint;
}

// One gate comparison: latest vs first entry of a fingerprint group.
struct GateRow {
  std::string fingerprint;
  std::string run;
  std::string key;
  double base = 0;
  double latest = 0;
  double growth = 0;
  bool regressed = false;
};

std::vector<GateRow> GateFingerprints(const std::vector<LedgerEntry>& entries,
                                      const std::string& suffix,
                                      double threshold) {
  // Group in file order: first entry is the baseline, last the
  // candidate — the append-only discipline makes file order time
  // order.
  std::vector<std::string> order;
  std::map<std::string, std::pair<const LedgerEntry*, const LedgerEntry*>>
      groups;
  for (const LedgerEntry& e : entries) {
    auto [it, fresh] = groups.try_emplace(e.fingerprint, &e, &e);
    if (fresh) {
      order.push_back(e.fingerprint);
    } else {
      it->second.second = &e;
    }
  }
  std::vector<GateRow> rows;
  for (const std::string& fp : order) {
    const auto& [base, latest] = groups[fp];
    if (base == latest) continue;  // single entry: nothing to gate
    for (const auto& [key, oldv] : base->values) {
      if (!GatedKey(key, suffix)) continue;
      const auto it = latest->values.find(key);
      if (it == latest->values.end()) continue;
      GateRow row;
      row.fingerprint = fp;
      row.run = latest->run;
      row.key = key;
      row.base = oldv;
      row.latest = it->second;
      row.growth = Growth(oldv, it->second);
      row.regressed = row.growth > threshold;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

void WriteCsv(const std::vector<LedgerEntry>& entries, std::ostream& out) {
  out << "bench,run,fingerprint,code_version,key,value\n";
  for (const LedgerEntry& e : entries) {
    for (const auto& [key, value] : e.values) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", value);
      out << e.bench << ',' << e.run << ',' << e.fingerprint << ','
          << e.code_version << ',' << key << ',' << buf << '\n';
    }
  }
}

// The list view's value column: --metric if given, else the entry's
// first key ending in the gate suffix.
std::string MetricCell(const LedgerEntry& e, const std::string& metric,
                       const std::string& suffix) {
  if (!metric.empty()) {
    const auto it = e.values.find(metric);
    return it == e.values.end() ? "-" : TextTable::Num(it->second, 4);
  }
  for (const auto& [key, value] : e.values) {
    if (GatedKey(key, suffix)) {
      return key + "=" + TextTable::Num(value, 4);
    }
  }
  return "-";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, "ctstat");

  const std::string ledger = flags.Get("ledger", "");
  std::vector<Filter> filters;
  for (const std::string& clause : SplitCommas(flags.Get("filter", ""))) {
    if (clause.empty()) continue;
    const auto eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      Flags::Fail("--filter clause '" + clause + "' is not K=V");
    }
    filters.push_back({clause.substr(0, eq), clause.substr(eq + 1)});
  }
  const std::string metric = flags.Get("metric", "");
  const std::string compare = flags.Get("compare", "");
  const bool check = flags.GetBool("check");
  const std::string suffix = flags.Get("suffix", "total_s");
  const double threshold = flags.GetDouble("threshold", 0.15);
  const bool re_emit = flags.GetBool("re-emit");
  const std::string csv = flags.Get("csv", "");
  const std::string json = flags.Get("json", "");
  const bool quiet = flags.GetBool("quiet");
  flags.CheckAllConsumed();
  if (ledger.empty()) Flags::Fail("--ledger=FILE is required");

  std::string error;
  std::vector<LedgerEntry> all = obs::ReadLedger(ledger, &error);
  if (!error.empty()) Flags::Fail(error);

  std::vector<LedgerEntry> entries;
  for (LedgerEntry& e : all) {
    bool keep = true;
    for (const Filter& f : filters) keep = keep && Matches(e, f);
    if (keep) entries.push_back(std::move(e));
  }

  if (re_emit) {
    for (const LedgerEntry& e : entries) {
      std::cout << obs::SerializeEntry(e) << '\n';
    }
  }

  if (!quiet && !re_emit && compare.empty() && !check) {
    TextTable table("ctstat — " + ledger + ": " +
                    std::to_string(entries.size()) + " of " +
                    std::to_string(all.size()) + " entries");
    table.set_header({"bench", "run", "fingerprint", "code", "values",
                      "series", "metric"});
    for (const LedgerEntry& e : entries) {
      table.add_row({e.bench, e.run, Short(e.fingerprint),
                     Short(e.code_version),
                     std::to_string(e.values.size()),
                     std::to_string(e.timeline.size()),
                     MetricCell(e, metric, suffix)});
    }
    table.render(std::cout);
  }

  if (!compare.empty()) {
    const std::vector<std::string> fps = SplitCommas(compare);
    if (fps.size() != 2) Flags::Fail("--compare expects FPA,FPB");
    const LedgerEntry* a = FindByFingerprint(entries, fps[0]);
    const LedgerEntry* b = FindByFingerprint(entries, fps[1]);
    if (a == nullptr) Flags::Fail("no entry matches fingerprint " + fps[0]);
    if (b == nullptr) Flags::Fail("no entry matches fingerprint " + fps[1]);
    if (!quiet) {
      TextTable table("ctstat compare — " + a->run + " (" +
                      Short(a->fingerprint) + ") vs " + b->run + " (" +
                      Short(b->fingerprint) + ")");
      table.set_header({"metric", "a", "b", "delta", "growth"});
      for (const auto& [key, av] : a->values) {
        const auto it = b->values.find(key);
        if (it == b->values.end()) {
          table.add_row({key, TextTable::Num(av, 4), "-", "-", "-"});
          continue;
        }
        const double g = Growth(av, it->second);
        table.add_row({key, TextTable::Num(av, 4),
                       TextTable::Num(it->second, 4),
                       TextTable::Num(it->second - av, 4),
                       std::isfinite(g)
                           ? TextTable::Num(g * 100, 1) + "%"
                           : "inf"});
      }
      for (const auto& [key, bv] : b->values) {
        if (!a->values.count(key)) {
          table.add_row({key, "-", TextTable::Num(bv, 4), "-", "-"});
        }
      }
      // Timeline drift: digest equality per series — a drifted digest
      // means the flight recorder saw a different run, even if the
      // scalar metrics agree.
      for (const auto& [key, da] : a->timeline) {
        const auto it = b->timeline.find(key);
        const std::string verdict =
            it == b->timeline.end() ? "missing"
            : it->second == da      ? "same"
                                    : "drift";
        table.add_row({"timeline " + key, Short(da),
                       it == b->timeline.end() ? "-" : Short(it->second),
                       verdict, "-"});
      }
      table.render(std::cout);
    }
  }

  int regressions = 0;
  double max_growth = 0;
  if (check) {
    const std::vector<GateRow> rows =
        GateFingerprints(entries, suffix, threshold);
    if (!quiet) {
      TextTable table("ctstat check — suffix " + suffix + ", threshold " +
                      TextTable::Num(threshold * 100, 0) + "%");
      table.set_header({"fingerprint", "run", "metric", "first", "latest",
                        "growth", "status"});
      for (const GateRow& row : rows) {
        table.add_row({Short(row.fingerprint), row.run, row.key,
                       TextTable::Num(row.base, 4),
                       TextTable::Num(row.latest, 4),
                       std::isfinite(row.growth)
                           ? TextTable::Num(row.growth * 100, 1) + "%"
                           : "inf",
                       row.regressed ? "REGRESSION" : "ok"});
      }
      table.render(std::cout);
    }
    for (const GateRow& row : rows) {
      if (row.regressed) ++regressions;
      if (std::isfinite(row.growth)) {
        max_growth = std::max(max_growth, row.growth);
      }
    }
    if (regressions > 0) {
      std::cerr << "ctstat: " << regressions << " metric(s) grew beyond "
                << TextTable::Num(threshold * 100, 0) << "% in " << ledger
                << "\n";
    }
  }

  if (!csv.empty()) {
    if (csv == "true") {  // bare --csv
      WriteCsv(entries, std::cout);
    } else {
      std::ofstream out(csv);
      if (!out) Flags::Fail("cannot write " + csv);
      WriteCsv(entries, out);
    }
  }

  bench::JsonReport report("ctstat", json);
  report.add("ctstat/entries", static_cast<double>(entries.size()));
  report.add("ctstat/filtered_out",
             static_cast<double>(all.size() - entries.size()));
  if (check) {
    report.add("ctstat/regressions", regressions);
    report.add("ctstat/max_growth", max_growth);
  }
  report.write();

  return check && regressions > 0 ? 1 : 0;
}
