// ctplan — fleet planner CLI: dollar-priced architecture search with
// SLOs (src/plan/planner.h over the Job API's memoized matrix).
//
// Expands (algorithm × r × K × topology × mitigation policy × instance
// profile) architectures, replays every cell of the straggler scenario
// set off at most one live execution per (algorithm, SortConfig), and
// answers "cheapest configuration whose q-quantile makespan meets the
// SLO" — with the full candidate list as a sortable/filterable CSV and
// a bench-schema JSON artifact for CI trend gating.
//
// Usage: ctplan [--flags]
//   --algos=terasort,coded     registry names to search
//   --redundancies=1,3,5       r axis (ignored by algorithms without
//                              the redundancy knob)
//   --nodes=16                 comma list of cluster sizes K
//   --topologies=SPEC,...      "R:F[:U:D][:aware]" rack topologies
//                              (job/parse.h); "flat" = single rack
//   --stragglers=SPEC,...      the SLO scenario set: "none" |
//                              "slow:NODE:FACTOR" |
//                              "exp:SHIFT:MEAN[:SEED]" |
//                              "failstop:T:REC[:NODE]"
//   --policies=none,spec,coded mitigation axis
//   --instances=NAME:SPEED:USD machine types, e.g.
//                              "m3.large:1:0.133,c3.xlarge:1.9:0.21"
//   --records=200000           executed workload per run
//   --paper-records=N          report at this paper scale (0 = executed)
//   --seed=2017
//   --discipline=serial        serial | half | full (netsim replay)
//   --order=log                log | per-sender
//   --egress-usd-per-gb=0.02   cross-rack transfer rate
//   --slo=SECONDS              the SLO (default: everything meets)
//   --quantile=0.99            tail quantile the SLO constrains
//   --sort=usd                 row order: usd | makespan | egress
//   --max-usd=X                drop candidates dearer than X
//   --meets-only               keep only rows meeting the SLO
//   --csv[=PATH]               CSV to stdout (bare) or PATH
//   --json=PATH                bench-schema JSON (plan/total_s is the
//                              trend-gated planner wall time)
//   --quiet                    suppress the text table
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "job/job.h"
#include "plan/planner.h"
#include "tools/flag_parser.h"

namespace {

using namespace cts;
using cts::tools::Flags;

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream in(s);
  while (std::getline(in, field, ',')) out.push_back(field);
  return out;
}

std::vector<int> ParseIntList(const std::string& s, const char* what) {
  std::vector<int> out;
  for (const std::string& f : SplitCommas(s)) {
    try {
      std::size_t pos = 0;
      const int v = std::stoi(f, &pos);
      if (pos != f.size() || v < 0) throw std::invalid_argument(f);
      out.push_back(v);
    } catch (const std::exception&) {
      Flags::Fail(std::string("bad ") + what + " entry '" + f + "'");
    }
  }
  return out;
}

plan::InstanceProfile ParseInstance(const std::string& spec) {
  plan::InstanceProfile p;
  std::istringstream in(spec);
  std::string field;
  std::vector<std::string> parts;
  while (std::getline(in, field, ':')) parts.push_back(field);
  if (parts.empty() || parts.size() > 3 || parts[0].empty()) {
    Flags::Fail("instance expects NAME[:SPEED[:USD_PER_HOUR]]: '" + spec +
                "'");
  }
  p.name = parts[0];
  try {
    if (parts.size() >= 2) p.speed = std::stod(parts[1]);
    if (parts.size() >= 3) p.usd_per_hour = std::stod(parts[2]);
  } catch (const std::exception&) {
    Flags::Fail("bad instance numbers in '" + spec + "'");
  }
  if (p.speed <= 0 || p.usd_per_hour < 0) {
    Flags::Fail("instance '" + spec +
                "' needs speed > 0 and a non-negative rate");
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, "ctplan");

  plan::PlanAxes axes;
  axes.algorithms = SplitCommas(flags.Get("algos", "terasort,coded"));
  axes.redundancies = ParseIntList(flags.Get("redundancies", "3"),
                                   "redundancy");
  axes.node_counts = ParseIntList(flags.Get("nodes", "16"), "node count");
  for (std::string& spec : axes.topologies = SplitCommas(
           flags.Get("topologies", "flat"))) {
    if (spec == "flat") spec.clear();  // the single-rack default
  }
  axes.stragglers = SplitCommas(flags.Get("stragglers", "none"));
  axes.policies = SplitCommas(flags.Get("policies", "none"));
  for (const std::string& spec :
       SplitCommas(flags.Get("instances", "m3.large:1:0.133"))) {
    axes.instances.push_back(ParseInstance(spec));
  }
  axes.records = flags.GetU64("records", 200000);
  axes.paper_records = flags.GetU64("paper-records", 0);
  axes.seed = flags.GetU64("seed", 2017);
  axes.discipline = flags.Get("discipline", "serial");
  axes.order = flags.Get("order", "log");
  axes.cost.cross_rack_usd_per_gb =
      flags.GetDouble("egress-usd-per-gb", axes.cost.cross_rack_usd_per_gb);

  plan::PlanQuery query;
  query.slo_seconds = flags.GetDouble("slo", query.slo_seconds);
  query.quantile = flags.GetDouble("quantile", query.quantile);
  query.sort_key = flags.Get("sort", query.sort_key);
  query.max_usd = flags.GetDouble("max-usd", query.max_usd);
  query.meets_only = flags.GetBool("meets-only");

  const std::string csv = flags.Get("csv", "");
  const std::string json = flags.Get("json", "");
  const bool quiet = flags.GetBool("quiet");
  flags.CheckAllConsumed();

  Stopwatch watch;
  job::RunCache cache;
  const plan::PlanResult result = plan::RunPlan(axes, query, cache);
  const double total_s = watch.elapsed();
  if (!result.error.empty()) Flags::Fail(result.error);

  if (!quiet) {
    TextTable table("ctplan — " + std::to_string(result.rows.size()) +
                    " architectures, " + std::to_string(result.cells) +
                    " cells, " + std::to_string(result.executions) +
                    " live runs");
    table.set_header({"algorithm", "K", "topology", "policy", "instance",
                      "mean_s",
                      "q" + TextTable::Num(query.quantile * 100, 0) + "_s",
                      "$compute", "$egress", "$total", "SLO"});
    for (const plan::PlanRow& row : result.rows) {
      table.add_row({row.algorithm, std::to_string(row.num_nodes),
                     row.topology, row.policy, row.instance,
                     TextTable::Num(row.mean_makespan),
                     TextTable::Num(row.quantile_makespan),
                     TextTable::Num(row.usd_compute, 4),
                     TextTable::Num(row.usd_egress, 4),
                     TextTable::Num(row.usd, 4),
                     row.meets_slo ? "meets" : "misses"});
    }
    table.render(std::cout);
    if (const plan::PlanRow* winner = result.winner_row()) {
      std::cout << "cheapest meeting the SLO: " << winner->label() << " at $"
                << TextTable::Num(winner->usd, 4) << " (q"
                << TextTable::Num(query.quantile * 100, 0) << " makespan "
                << TextTable::Num(winner->quantile_makespan) << " s)\n";
    } else {
      std::cout << "no architecture meets the SLO\n";
    }
  }

  if (!csv.empty()) {
    if (csv == "true") {  // bare --csv: the cloud_calc-style stdout dump
      plan::WriteCsv(result, std::cout);
    } else {
      std::ofstream out(csv);
      if (!out) Flags::Fail("cannot write " + csv);
      plan::WriteCsv(result, out);
    }
  }

  bench::JsonReport report("ctplan", json);
  report.add_all(plan::PlanMetrics(result));
  report.add("plan/total_s", total_s);
  report.write();
  return 0;
}
