#!/usr/bin/env python3
"""Validator for the Chrome trace_event JSON files ctsort --trace emits.

Mirrors obs::ValidateTrace (src/obs/trace.cc) in Python so CI can
check the artifacts a build actually wrote, plus the byte-conservation
invariant the C++ side can only check in-process: for every
"<algo>/shuffle_payload_bytes" entry in otherData, the summed "bytes"
args of that algorithm's shuffle slices must equal it exactly (the
tracer copies Transmission::bytes through untouched, so any drift
means a tracer bug, not rounding).

Usage:
  trace_check.py FILE [FILE ...]
  trace_check.py --smoke CTSORT_BINARY [--workdir DIR]
  trace_check.py --self-test

--smoke runs CTSORT_BINARY twice — a live K=16 run and a priced DES
scenario replay — and validates both traces end to end; the CI
trace-smoke step and the trace_smoke ctest both drive it.

Exit status: 0 ok, 1 validation failure, 2 usage/parse error.
"""

import argparse
import json
import math
import os
import re
import subprocess
import sys
import tempfile

# Metadata ('M') events carry no timestamp; every other phase must.
REQUIRED_EVENT_KEYS = ("name", "ph", "pid", "tid")

# Counter ('C') series are flight-recorder timelines; their names obey
# the timeline key grammar <subsystem>/<name>[/unit]
# (src/obs/timeline.h — lowercase subsystem, 1-2 further segments).
TIMELINE_KEY_RE = re.compile(r"[a-z][a-z0-9_]*(/[A-Za-z0-9_.+-]+){1,2}\Z")


def fail(path, msg):
    print(f"trace_check: {path}: {msg}", file=sys.stderr)
    return [msg]


def check_structure(data, path):
    """Top-level shape + per-event required keys. Returns error list."""
    errors = []
    if not isinstance(data, dict):
        return fail(path, "top level is not a JSON object")
    if not isinstance(data.get("traceEvents"), list):
        return fail(path, 'missing "traceEvents" array')
    if not isinstance(data.get("otherData"), dict):
        return fail(path, 'missing "otherData" object')
    for i, e in enumerate(data["traceEvents"]):
        if not isinstance(e, dict):
            errors.append(f"traceEvents[{i}] is not an object")
            continue
        for key in REQUIRED_EVENT_KEYS:
            if key not in e:
                errors.append(f"traceEvents[{i}] lacks {key!r}")
                break
        else:
            ph = e["ph"]
            if ph not in ("X", "i", "s", "f", "M", "C"):
                errors.append(f"traceEvents[{i}] has unknown phase {ph!r}")
                continue
            if ph != "M" and not (isinstance(e.get("ts"), (int, float))
                                  and math.isfinite(e["ts"])):
                errors.append(f"traceEvents[{i}] has missing/non-finite ts")
            if ph == "X":
                dur = e.get("dur")
                if not (isinstance(dur, (int, float)) and math.isfinite(dur)
                        and dur >= 0):
                    errors.append(f"traceEvents[{i}] span has bad dur {dur!r}")
            if ph in ("s", "f") and "id" not in e:
                errors.append(f"traceEvents[{i}] flow event lacks 'id'")
    for err in errors:
        print(f"trace_check: {path}: {err}", file=sys.stderr)
    return errors


def check_nesting(events, path):
    """Complete events must form a stack discipline per (pid, tid):
    sorted by (ts asc, dur desc), every span fits inside the innermost
    still-open span. Same epsilon policy as obs::ValidateTrace."""
    spans = {}
    max_ts = 1.0
    for e in events:
        if e.get("ph") == "X":
            spans.setdefault((e["pid"], e["tid"]), []).append(e)
            max_ts = max(max_ts, abs(e["ts"]) + e["dur"])
    eps = 1e-9 * max_ts
    errors = []
    for (pid, tid), track in spans.items():
        track.sort(key=lambda e: (e["ts"], -e["dur"]))
        open_ends = []
        for e in track:
            start, end = e["ts"], e["ts"] + e["dur"]
            while open_ends and start >= open_ends[-1] - eps:
                open_ends.pop()
            if open_ends and end > open_ends[-1] + eps:
                errors.append(f"overlapping spans on pid {pid} tid {tid} "
                              f"at span {e['name']!r} (ts={start})")
                break
            open_ends.append(end)
    for err in errors:
        print(f"trace_check: {path}: {err}", file=sys.stderr)
    return errors


def check_flows(events, path):
    """Every flow id must appear as exactly one 's'/'f' pair with
    start <= finish."""
    flows = {}
    max_ts = max([1.0] + [abs(e["ts"]) + e.get("dur", 0)
                          for e in events if e.get("ph") == "X"])
    eps = 1e-9 * max_ts
    for e in events:
        if e.get("ph") in ("s", "f"):
            rec = flows.setdefault(e["id"], {"s": [], "f": []})
            rec[e["ph"]].append(e["ts"])
    errors = []
    for fid, rec in flows.items():
        if len(rec["s"]) != 1 or len(rec["f"]) != 1:
            errors.append(f"flow id {fid} has {len(rec['s'])} starts / "
                          f"{len(rec['f'])} finishes")
        elif rec["s"][0] > rec["f"][0] + eps:
            errors.append(f"flow id {fid} finishes before it starts")
    for err in errors:
        print(f"trace_check: {path}: {err}", file=sys.stderr)
    return errors


def check_counters(events, path):
    """Counter ('C') events — the exported flight-recorder timelines.
    Per (pid, tid, name) series: the name obeys the timeline key
    grammar, every sample carries a non-empty args object of finite
    numbers, and timestamps never go backwards (virtual time is
    nondecreasing; same epsilon policy as the other checks)."""
    max_ts = max([1.0] + [abs(e["ts"]) + e.get("dur", 0)
                          for e in events if e.get("ph") in ("X", "C")])
    eps = 1e-9 * max_ts
    errors = []
    last_ts = {}
    bad_names = set()
    for i, e in enumerate(events):
        if e.get("ph") != "C":
            continue
        name = e["name"]
        if name not in bad_names and not TIMELINE_KEY_RE.fullmatch(name):
            errors.append(f"counter series {name!r} violates "
                          "<subsystem>/<name>[/unit]")
            bad_names.add(name)
        args = e.get("args")
        if not isinstance(args, dict) or not args:
            errors.append(f"traceEvents[{i}] counter sample of {name!r} "
                          "carries no args")
        else:
            for k, v in args.items():
                if not (isinstance(v, (int, float))
                        and not isinstance(v, bool) and math.isfinite(v)):
                    errors.append(f"traceEvents[{i}] counter {name!r} arg "
                                  f"{k!r} is not a finite number")
        key = (e["pid"], e["tid"], name)
        if key in last_ts and e["ts"] < last_ts[key] - eps:
            errors.append(f"counter series {name!r} time went backwards "
                          f"at ts={e['ts']}")
        last_ts[key] = max(e["ts"], last_ts.get(key, e["ts"]))
    for err in errors:
        print(f"trace_check: {path}: {err}", file=sys.stderr)
    return errors


def check_byte_conservation(data, path):
    """otherData's "<algo>/shuffle_payload_bytes" entries vs the traced
    shuffle slices. The algo is matched to its pid via the process_name
    metadata (a DES trace names the process "<algo> (scenario)")."""
    suffix = "/shuffle_payload_bytes"
    expected = {k[:-len(suffix)]: v for k, v in data["otherData"].items()
                if k.endswith(suffix)}
    if not expected:
        return []  # not a ctsort trace; structural checks still apply
    process_names = {}
    traced = {}
    for e in data["traceEvents"]:
        if e.get("ph") == "M" and e.get("name") == "process_name":
            name = e.get("args", {}).get("name", "")
            if name.endswith(" (scenario)"):
                name = name[:-len(" (scenario)")]
            process_names[name] = e["pid"]
        if e.get("ph") == "X" and e.get("cat") == "shuffle":
            traced[e["pid"]] = traced.get(e["pid"], 0.0) \
                + e.get("args", {}).get("bytes", 0.0)
    errors = []
    for algo, total in expected.items():
        pid = process_names.get(algo)
        if pid is None:
            errors.append(f"otherData names {algo!r} but no process track "
                          "carries that name")
            continue
        got = traced.get(pid, 0.0)
        # Byte counts are integers held exactly in doubles: exact
        # equality, not a tolerance, is the invariant.
        if got != total:
            errors.append(f"{algo!r}: traced shuffle bytes {got:.0f} != "
                          f"otherData total {total:.0f}")
    for err in errors:
        print(f"trace_check: {path}: {err}", file=sys.stderr)
    return errors


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trace_check: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    errors = check_structure(data, path)
    if not errors:
        events = data["traceEvents"]
        errors += check_nesting(events, path)
        errors += check_flows(events, path)
        errors += check_counters(events, path)
        errors += check_byte_conservation(data, path)
    if not errors:
        n = len(data["traceEvents"])
        print(f"trace_check: {path}: {n} events — OK")
    return not errors


def run_smoke(ctsort, workdir):
    """Runs ctsort twice (live + priced DES scenario) and validates the
    traces it wrote — the end-to-end acceptance path."""
    invocations = [
        ("live_trace.json",
         ["--algo=both", "--nodes=16", "--records=40000", "--no-verify",
          "--backend=live"]),
        ("des_trace.json",
         ["--algo=both", "--nodes=8", "--records=40000", "--no-verify",
          "--backend=priced", "--scenario",
          "--straggler=failstop:0.05:0.1:2", "--mitigate=spec"]),
    ]
    ok = True
    for name, args in invocations:
        trace = os.path.join(workdir, name)
        cmd = [ctsort] + args + [f"--trace={trace}"]
        print(f"trace_check: running {' '.join(cmd)}")
        proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
        if proc.returncode != 0:
            print(f"trace_check: ctsort exited {proc.returncode}",
                  file=sys.stderr)
            ok = False
            continue
        ok = check_file(trace) and ok
    return 0 if ok else 1


def self_test():
    """Exercises the checkers on hand-built traces, valid and broken."""
    def base(events, other=None):
        return {"traceEvents": events, "otherData": other or {}}

    meta = {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
            "args": {"name": "terasort"}}
    good = base([
        meta,
        {"name": "Map", "cat": "stage", "ph": "X", "pid": 0, "tid": 0,
         "ts": 0, "dur": 100},
        {"name": "tx", "cat": "shuffle", "ph": "X", "pid": 0, "tid": 0,
         "ts": 10, "dur": 20, "args": {"bytes": 64}},
        {"name": "shuffle", "cat": "flow", "ph": "s", "pid": 0, "tid": 0,
         "ts": 10, "id": 1},
        {"name": "shuffle", "cat": "flow", "ph": "f", "pid": 0, "tid": 1,
         "ts": 30, "id": 1, "bp": "e"},
        {"name": "m", "cat": "mark", "ph": "i", "pid": 0, "tid": 0,
         "ts": 5, "s": "t"},
        {"name": "des/inflight_flows", "cat": "counter", "ph": "C",
         "pid": 0, "tid": 9, "ts": 0, "args": {"value": 1}},
        {"name": "des/inflight_flows", "cat": "counter", "ph": "C",
         "pid": 0, "tid": 9, "ts": 10, "args": {"value": 0}},
    ], {"terasort/shuffle_payload_bytes": 64})
    assert not check_structure(good, "<good>")
    assert not check_nesting(good["traceEvents"], "<good>")
    assert not check_flows(good["traceEvents"], "<good>")
    assert not check_counters(good["traceEvents"], "<good>")
    assert not check_byte_conservation(good, "<good>")

    # Overlapping siblings on one track are a nesting violation.
    bad_nest = [
        {"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": 10},
        {"name": "b", "ph": "X", "pid": 0, "tid": 0, "ts": 5, "dur": 10},
    ]
    assert check_nesting(bad_nest, "<bad-nest>")
    # The same spans on different tracks are fine.
    ok_tracks = [dict(bad_nest[0]), dict(bad_nest[1], tid=1)]
    assert not check_nesting(ok_tracks, "<ok-tracks>")

    # A flow with two starts, and one finishing before it starts.
    assert check_flows([
        {"ph": "s", "pid": 0, "tid": 0, "ts": 0, "id": 7, "name": "x"},
        {"ph": "s", "pid": 0, "tid": 1, "ts": 1, "id": 7, "name": "x"},
        {"ph": "f", "pid": 0, "tid": 2, "ts": 2, "id": 7, "name": "x"},
    ], "<bad-flow>")
    assert check_flows([
        {"ph": "s", "pid": 0, "tid": 0, "ts": 5, "id": 1, "name": "x"},
        {"ph": "f", "pid": 0, "tid": 1, "ts": 1, "id": 1, "name": "x"},
    ], "<backwards-flow>")

    # One byte of drift fails conservation; scenario naming resolves.
    off = json.loads(json.dumps(good))
    off["otherData"]["terasort/shuffle_payload_bytes"] = 65
    assert check_byte_conservation(off, "<off-by-one>")
    des = json.loads(json.dumps(good))
    des["traceEvents"][0]["args"]["name"] = "terasort (scenario)"
    assert not check_byte_conservation(des, "<des-names>")
    orphan = json.loads(json.dumps(good))
    orphan["otherData"] = {"coded/shuffle_payload_bytes": 1}
    assert check_byte_conservation(orphan, "<orphan-total>")

    # Counter series: a name off the key grammar, a non-numeric arg, a
    # missing args object, and time running backwards all fail; the
    # same series name on another track keeps its own clock.
    def counter(ts, name="des/x", tid=9, args=None):
        return {"name": name, "cat": "counter", "ph": "C", "pid": 0,
                "tid": tid, "ts": ts,
                "args": {"value": 1} if args is None else args}
    assert check_counters([counter(0, name="NotAKey")], "<bad-counter-key>")
    assert check_counters([counter(0, name="a/b/c/d")], "<deep-counter-key>")
    assert check_counters([counter(0, args={"value": "high"})],
                          "<string-counter>")
    assert check_counters([counter(0, args={})], "<argless-counter>")
    assert check_counters([counter(10), counter(0)], "<backwards-counter>")
    assert not check_counters([counter(10), counter(0, tid=3)],
                              "<per-track-clocks>")

    # Structural failures: missing keys, bad phase, negative duration.
    assert check_structure(base([{"ph": "X"}]), "<missing-keys>")
    assert check_structure(base([
        {"name": "x", "ph": "Q", "pid": 0, "tid": 0, "ts": 0}]), "<bad-ph>")
    assert check_structure(base([
        {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": -1}]),
        "<neg-dur>")

    print("trace_check: self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="trace JSON files")
    parser.add_argument("--smoke", metavar="CTSORT",
                        help="run this ctsort binary and validate the "
                             "traces it writes")
    parser.add_argument("--workdir", default=None,
                        help="where --smoke writes its traces "
                             "(default: a temp dir)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded self-test and exit")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if args.smoke:
        if args.workdir:
            os.makedirs(args.workdir, exist_ok=True)
            sys.exit(run_smoke(args.smoke, args.workdir))
        with tempfile.TemporaryDirectory() as workdir:
            sys.exit(run_smoke(args.smoke, workdir))
    if not args.files:
        parser.error("pass trace files, --smoke CTSORT, or --self-test")
    ok = all([check_file(path) for path in args.files])
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
