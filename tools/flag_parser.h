// Minimal --key=value flag parser shared by the CLI tools (ctsort,
// ctplan). Unknown flags are fatal — a typo must not silently run the
// wrong experiment — and every tool gets the same surface: bare flags
// are booleans, `--key=value` everything else, CheckAllConsumed()
// after parsing.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <string>

namespace cts::tools {

class Flags {
 public:
  Flags(int argc, char** argv, const std::string& program) {
    program_ = program;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        Fail("positional arguments are not supported: " + arg);
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "true";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) {
    consumed_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::uint64_t GetU64(const std::string& key, std::uint64_t fallback) {
    const std::string v = Get(key, "");
    if (v.empty()) return fallback;
    errno = 0;
    char* end = nullptr;
    const std::uint64_t parsed = std::strtoull(v.c_str(), &end, 10);
    // strtoull silently clamps overflow to 2^64-1 (ERANGE) and accepts
    // a leading '-' by wrapping; both would run a wildly different
    // experiment than the flag says.
    if (end == v.c_str() || *end != '\0' || errno == ERANGE || v[0] == '-') {
      Fail("bad number '" + v + "' in --" + key);
    }
    return parsed;
  }

  double GetDouble(const std::string& key, double fallback) {
    const std::string v = Get(key, "");
    if (v.empty()) return fallback;
    char* end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0') {
      Fail("bad number '" + v + "' in --" + key);
    }
    return parsed;
  }

  // Boolean flags are passed bare (--scenario); "--scenario=yes" must
  // not silently mean false.
  bool GetBool(const std::string& key) {
    const std::string v = Get(key, "false");
    if (v == "true") return true;
    if (v == "false") return false;
    Fail("--" + key + " is a boolean flag — pass it bare, without a value");
  }

  void CheckAllConsumed() const {
    for (const auto& [key, value] : values_) {
      if (!consumed_.count(key)) Fail("unknown flag --" + key);
    }
  }

  [[noreturn]] static void Fail(const std::string& msg) {
    std::cerr << program_ << ": " << msg
              << " (see header comment for usage)\n";
    std::exit(2);
  }

 private:
  inline static std::string program_ = "tool";
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
};

}  // namespace cts::tools
