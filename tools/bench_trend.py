#!/usr/bin/env python3
"""Perf-trend checker for the bench --json artifacts.

Diffs two consecutive BENCH_*.json files (the flat metric -> value
objects every bench binary emits; see bench/bench_common.h) and fails
when a makespan metric regresses beyond the threshold, so CI catches a
perf regression in the scenario sweep the same way it catches a test
failure.

Usage:
  bench_trend.py OLD.json NEW.json [--threshold 0.15] [--suffix total_s]
  bench_trend.py --check FILE [FILE ...]
  bench_trend.py --self-test

--check validates that each FILE is a well-formed bench artifact (the
schema load_metrics enforces: a flat object with a "bench" string and
finite-or-null numeric metrics) without comparing anything — the CI
job-smoke step runs it over freshly emitted JSONs so an API-level
output regression fails the build even on the first run, when there
is no previous artifact to diff against.

Google Benchmark artifacts (bench_micro via --benchmark_out=FILE
--benchmark_out_format=json) are auto-detected and flattened into the
same shape: one "<benchmark>/real_time_s" and "<benchmark>/cpu_time_s"
key per (non-aggregate) benchmark, times converted to seconds, bench
name "gbench:<executable basename>". Gate those with
`--suffix cpu_time_s` and a loose threshold — shared CI runners are
noisy at the microbenchmark scale.

Only keys ending in the suffix (default "total_s", the makespan
metrics) gate the exit status; other shared numeric keys are reported
informationally. Keys present in only one file are listed but never
fail the check — sweeps are allowed to grow. Exit status: 0 ok,
1 regression, 2 usage/parse error.
"""

import argparse
import json
import math
import os
import sys

# Key suffixes that may gate a schema --check: the sweep makespans and
# the flattened microbenchmark timings.
GATING_SUFFIXES = ("total_s", "cpu_time_s")


def flatten_gbench(data, path):
    """Google Benchmark JSON -> (bench_name, flat metrics in seconds)."""
    unit_s = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}
    metrics = {}
    for b in data["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue  # repetitions: keep the raw runs, skip mean/median
        name = b.get("name")
        scale = unit_s.get(b.get("time_unit", "ns"))
        if not isinstance(name, str) or scale is None:
            print(f"bench_trend: {path}: malformed Google Benchmark entry "
                  f"{b!r}", file=sys.stderr)
            sys.exit(2)
        for field in ("real_time", "cpu_time"):
            value = b.get(field)
            if isinstance(value, (int, float)) and not isinstance(value, bool) \
                    and math.isfinite(value):
                metrics[f"{name}/{field}_s"] = float(value) * scale
    executable = data.get("context", {}).get("executable", "bench")
    return "gbench:" + os.path.basename(executable), metrics


def flatten_bench(data, path):
    """Flat bench JSON -> metrics dict. The one nesting exception is
    the "metrics" key: JsonReport embeds the obs::MetricRegistry
    snapshot there as a flat numeric object, flattened here into
    "metrics/<name>" keys so observability counters show up in diffs
    (informational only — registry names never end in a gating suffix).
    """
    metrics = {}
    for key, value in data.items():
        if key == "bench":
            continue
        if key == "metrics" and isinstance(value, dict):
            for mkey, mvalue in value.items():
                if mvalue is None:
                    continue  # non-finite registry value, serialized null
                if not isinstance(mvalue, (int, float)) \
                        or isinstance(mvalue, bool):
                    print(f"bench_trend: {path}: registry metric "
                          f"{mkey!r} is not numeric", file=sys.stderr)
                    sys.exit(2)
                metrics[f"metrics/{mkey}"] = float(mvalue)
            continue
        if value is None:
            continue  # non-finite metric, serialized as null
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            print(f"bench_trend: {path}: metric {key!r} is not numeric",
                  file=sys.stderr)
            sys.exit(2)
        metrics[key] = float(value)
    return metrics


def load_metrics(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_trend: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if isinstance(data, dict) and isinstance(data.get("benchmarks"), list):
        return flatten_gbench(data, path)
    if not isinstance(data, dict) or not isinstance(data.get("bench"), str):
        print(f"bench_trend: {path} is not a bench JSON artifact "
              "(flat object with a \"bench\" string, or Google Benchmark "
              "--benchmark_out JSON)", file=sys.stderr)
        sys.exit(2)
    return data["bench"], flatten_bench(data, path)


def compare(old, new, threshold, suffix):
    """Returns (regressions, report_lines) for two metric dicts."""
    regressions = []
    lines = []
    shared = sorted(set(old) & set(new))
    for key in shared:
        o, n = old[key], new[key]
        if math.isclose(o, n, rel_tol=1e-12, abs_tol=1e-12):
            delta = 0.0
        elif o <= 0:
            # A non-positive baseline has no meaningful relative delta,
            # but a gating metric growing from 0 to positive is still a
            # regression (a makespan that used to be free now costs
            # real time); flag it as infinite growth instead of
            # silently passing. Shrinking from 0 stays unchanged.
            delta = math.inf if n > o else 0.0
        else:
            delta = (n - o) / o
        gating = key.endswith(suffix)
        flag = ""
        if gating and delta > threshold:
            regressions.append((key, o, n, delta))
            flag = "  <-- REGRESSION"
        elif not gating:
            flag = "  (informational)"
        lines.append(f"  {key}: {o:.6g} -> {n:.6g} ({delta:+.1%}){flag}")
    for key in sorted(set(new) - set(old)):
        lines.append(f"  {key}: (new metric, {new[key]:.6g})")
    for key in sorted(set(old) - set(new)):
        lines.append(f"  {key}: (removed)")
    return regressions, lines


def run_check(old_path, new_path, threshold, suffix):
    old_name, old = load_metrics(old_path)
    new_name, new = load_metrics(new_path)
    if old_name != new_name:
        print(f"bench_trend: comparing different benches "
              f"({old_name!r} vs {new_name!r})", file=sys.stderr)
        sys.exit(2)
    regressions, lines = compare(old, new, threshold, suffix)
    print(f"bench_trend: {old_name}: {len(lines)} metrics compared "
          f"(threshold {threshold:.0%} on *{suffix})")
    for line in lines:
        print(line)
    if regressions:
        print(f"bench_trend: {len(regressions)} makespan regression(s) "
              f"beyond {threshold:.0%}:", file=sys.stderr)
        for key, o, n, delta in regressions:
            print(f"  {key}: {o:.6g} -> {n:.6g} ({delta:+.1%})",
                  file=sys.stderr)
        return 1
    print("bench_trend: OK")
    return 0


def run_schema_check(paths):
    """Validates each artifact's schema; exits 2 via load_metrics on a
    malformed file. Also rejects artifacts that could not gate
    anything: no finite *total_s makespan, or a makespan serialized as
    null (JsonReport writes null for NaN/Inf) — either means the bench
    silently stopped producing the numbers this gate exists to watch.
    """
    failed = False
    for path in paths:
        name, metrics = load_metrics(path)
        with open(path, "r", encoding="utf-8") as f:
            raw = json.load(f)
        # Google Benchmark artifacts serialize non-finite values inside
        # the benchmarks list, which flatten_gbench already drops; the
        # null scan only applies to the flat schema.
        is_gbench = isinstance(raw.get("benchmarks"), list)
        null_makespans = [] if is_gbench else sorted(
            k for k, v in raw.items() if k.endswith("total_s") and v is None)
        gating = [k for k in metrics
                  if any(k.endswith(s) for s in GATING_SUFFIXES)]
        if null_makespans:
            print(f"bench_trend: {path}: null (non-finite) makespan "
                  f"metric(s): {', '.join(null_makespans)}", file=sys.stderr)
            failed = True
        elif not gating:
            print(f"bench_trend: {path}: no gating metric (*total_s or "
                  "*cpu_time_s) — the artifact cannot gate regressions",
                  file=sys.stderr)
            failed = True
        else:
            print(f"bench_trend: {path}: bench {name!r}, "
                  f"{len(metrics)} finite metrics "
                  f"({len(gating)} makespans) — schema OK")
    return 1 if failed else 0


def self_test():
    """Exercises the comparison logic without touching the filesystem."""
    old = {"a/total_s": 10.0, "b/total_s": 10.0, "c/wasted_s": 1.0}

    # Within threshold: ok (14% < 15%).
    regs, _ = compare(old, {"a/total_s": 11.4, "b/total_s": 10.0,
                            "c/wasted_s": 1.0}, 0.15, "total_s")
    assert not regs, regs

    # Beyond threshold on a gating key: regression.
    regs, _ = compare(old, {"a/total_s": 11.6, "b/total_s": 10.0,
                            "c/wasted_s": 1.0}, 0.15, "total_s")
    assert [r[0] for r in regs] == ["a/total_s"], regs

    # Non-gating keys never fail, however large the delta.
    regs, _ = compare(old, {"a/total_s": 10.0, "b/total_s": 10.0,
                            "c/wasted_s": 100.0}, 0.15, "total_s")
    assert not regs, regs

    # Improvements never fail.
    regs, _ = compare(old, {"a/total_s": 1.0, "b/total_s": 10.0,
                            "c/wasted_s": 1.0}, 0.15, "total_s")
    assert not regs, regs

    # Added/removed keys never fail.
    regs, lines = compare(old, {"a/total_s": 10.0, "d/total_s": 99.0},
                          0.15, "total_s")
    assert not regs, regs
    assert any("new metric" in l for l in lines), lines
    assert any("removed" in l for l in lines), lines

    # A gating metric growing from a zero baseline is a regression
    # (infinite relative growth), not a silent pass — the historical
    # bug let a makespan appear from nowhere without tripping the gate.
    regs, lines = compare({"z/total_s": 0.0}, {"z/total_s": 5.0},
                          0.15, "total_s")
    assert [r[0] for r in regs] == ["z/total_s"], regs
    assert regs[0][3] == math.inf, regs
    assert any("REGRESSION" in l for l in lines), lines

    # An exactly-zero baseline staying zero is unchanged (no division
    # blow-up), and zero baselines on non-gating keys stay
    # informational however they move.
    regs, _ = compare({"z/total_s": 0.0}, {"z/total_s": 0.0},
                      0.15, "total_s")
    assert not regs, regs
    regs, _ = compare({"c/wasted_s": 0.0}, {"c/wasted_s": 5.0},
                      0.15, "total_s")
    assert not regs, regs

    # Google Benchmark artifacts flatten to seconds, aggregates
    # (mean/median of repetitions) are dropped.
    name, metrics = flatten_gbench({
        "context": {"executable": "/build/bench_micro"},
        "benchmarks": [
            {"name": "BM_Pack", "run_type": "iteration", "time_unit": "ns",
             "real_time": 250.0, "cpu_time": 200.0},
            {"name": "BM_Pack_mean", "run_type": "aggregate",
             "time_unit": "ns", "real_time": 1.0, "cpu_time": 1.0},
            {"name": "BM_Sort", "run_type": "iteration", "time_unit": "ms",
             "real_time": 2.0, "cpu_time": 1.5},
        ],
    }, "<self-test>")
    assert name == "gbench:bench_micro", name
    assert sorted(metrics) == ["BM_Pack/cpu_time_s", "BM_Pack/real_time_s",
                               "BM_Sort/cpu_time_s",
                               "BM_Sort/real_time_s"], metrics
    assert math.isclose(metrics["BM_Pack/cpu_time_s"], 200e-9), metrics
    assert math.isclose(metrics["BM_Sort/cpu_time_s"], 1.5e-3), metrics

    # The nested "metrics" registry snapshot flattens to metrics/<name>
    # keys; null registry entries are dropped like flat nulls.
    flat = flatten_bench({
        "bench": "demo",
        "terasort/total_s": 1.5,
        "metrics": {"simmpi/Shuffle/unicast_bytes": 4096.0,
                    "job/cache_hits": 16, "bad": None},
    }, "<self-test>")
    assert flat == {"terasort/total_s": 1.5,
                    "metrics/simmpi/Shuffle/unicast_bytes": 4096.0,
                    "metrics/job/cache_hits": 16.0}, flat
    # Registry keys never gate (no key ends in a gating suffix).
    assert not any(k.endswith(s) for s in GATING_SUFFIXES
                   for k in flat if k.startswith("metrics/")), flat

    print("bench_trend: self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", nargs="?", help="previous BENCH_*.json")
    parser.add_argument("new", nargs="?", help="current BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max allowed relative makespan growth "
                             "(default 0.15)")
    parser.add_argument("--suffix", default="total_s",
                        help="metric-key suffix that gates the check "
                             "(default total_s)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded self-test and exit")
    parser.add_argument("--check", nargs="+", metavar="FILE",
                        help="validate the schema of each FILE and exit "
                             "(no comparison)")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if args.check:
        sys.exit(run_schema_check(args.check))
    if args.old is None or args.new is None:
        parser.error("OLD and NEW artifacts are required")
    sys.exit(run_check(args.old, args.new, args.threshold, args.suffix))


if __name__ == "__main__":
    main()
