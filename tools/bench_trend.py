#!/usr/bin/env python3
"""Perf-trend checker for the bench --json artifacts.

Diffs two consecutive BENCH_*.json files (the flat metric -> value
objects every bench binary emits; see bench/bench_common.h) and fails
when a makespan metric regresses beyond the threshold, so CI catches a
perf regression in the scenario sweep the same way it catches a test
failure.

Usage:
  bench_trend.py OLD.json NEW.json [--threshold 0.15] [--suffix total_s]
  bench_trend.py --baseline-ledger LEDGER.jsonl NEW.json [...]
  bench_trend.py --check FILE [FILE ...]
  bench_trend.py --self-test

--baseline-ledger takes the baseline from a run ledger (the JSONL
files ctsort/benches append behind --ledger; see src/obs/ledger.h)
instead of a previous BENCH_*.json: the latest ledger entry per run
label, restricted to entries whose "bench" matches the NEW artifact,
merged into one flat baseline. Ledger values are exact hex floats
(float.fromhex), so the baseline carries the producer's doubles bit
for bit.

--check validates that each FILE is a well-formed bench artifact (the
schema load_metrics enforces: a flat object with a "bench" string and
finite-or-null numeric metrics) without comparing anything — the CI
job-smoke step runs it over freshly emitted JSONs so an API-level
output regression fails the build even on the first run, when there
is no previous artifact to diff against.

Google Benchmark artifacts (bench_micro via --benchmark_out=FILE
--benchmark_out_format=json) are auto-detected and flattened into the
same shape: one "<benchmark>/real_time_s" and "<benchmark>/cpu_time_s"
key per (non-aggregate) benchmark, times converted to seconds, bench
name "gbench:<executable basename>". Gate those with
`--suffix cpu_time_s` and a loose threshold — shared CI runners are
noisy at the microbenchmark scale.

Only keys ending in the suffix (default "total_s", the makespan
metrics) gate the exit status; other shared numeric keys are reported
informationally. Keys present in only one file are listed but never
fail the check — sweeps are allowed to grow. Exit status: 0 ok,
1 regression, 2 usage/parse error.
"""

import argparse
import json
import math
import os
import sys

# Key suffixes that may gate a schema --check: the sweep makespans and
# the flattened microbenchmark timings.
GATING_SUFFIXES = ("total_s", "cpu_time_s")


def flatten_gbench(data, path):
    """Google Benchmark JSON -> (bench_name, flat metrics in seconds)."""
    unit_s = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}
    metrics = {}
    for b in data["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue  # repetitions: keep the raw runs, skip mean/median
        name = b.get("name")
        scale = unit_s.get(b.get("time_unit", "ns"))
        if not isinstance(name, str) or scale is None:
            print(f"bench_trend: {path}: malformed Google Benchmark entry "
                  f"{b!r}", file=sys.stderr)
            sys.exit(2)
        for field in ("real_time", "cpu_time"):
            value = b.get(field)
            if isinstance(value, (int, float)) and not isinstance(value, bool) \
                    and math.isfinite(value):
                metrics[f"{name}/{field}_s"] = float(value) * scale
    executable = data.get("context", {}).get("executable", "bench")
    return "gbench:" + os.path.basename(executable), metrics


def flatten_bench(data, path):
    """Flat bench JSON -> metrics dict. The two nesting exceptions are
    the "metrics" key (JsonReport embeds the obs::MetricRegistry
    snapshot there) and the "timeline" key (per-series sample counts,
    final values, and digests from the flight recorder); both are flat
    numeric objects, flattened here into "metrics/<name>" and
    "timeline/<name>" keys so observability counters show up in diffs
    (informational only — neither namespace ends in a gating suffix).
    """
    metrics = {}
    for key, value in data.items():
        if key == "bench":
            continue
        if key in ("metrics", "timeline") and isinstance(value, dict):
            for mkey, mvalue in value.items():
                if mvalue is None:
                    continue  # non-finite registry value, serialized null
                if not isinstance(mvalue, (int, float)) \
                        or isinstance(mvalue, bool):
                    print(f"bench_trend: {path}: {key} entry "
                          f"{mkey!r} is not numeric", file=sys.stderr)
                    sys.exit(2)
                metrics[f"{key}/{mkey}"] = float(mvalue)
            continue
        if value is None:
            continue  # non-finite metric, serialized as null
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            print(f"bench_trend: {path}: metric {key!r} is not numeric",
                  file=sys.stderr)
            sys.exit(2)
        metrics[key] = float(value)
    return metrics


def load_metrics(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_trend: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if isinstance(data, dict) and isinstance(data.get("benchmarks"), list):
        return flatten_gbench(data, path)
    if not isinstance(data, dict) or not isinstance(data.get("bench"), str):
        print(f"bench_trend: {path} is not a bench JSON artifact "
              "(flat object with a \"bench\" string, or Google Benchmark "
              "--benchmark_out JSON)", file=sys.stderr)
        sys.exit(2)
    return data["bench"], flatten_bench(data, path)


def ledger_value(raw, path, key):
    """One ledger value -> float. The ledger serializes doubles as
    exact hex-float strings (C's %a); float.fromhex reverses that bit
    for bit and also accepts the inf/nan spellings. Plain numbers are
    tolerated for hand-written fixtures."""
    if isinstance(raw, (int, float)) and not isinstance(raw, bool):
        return float(raw)
    if isinstance(raw, str):
        try:
            return float.fromhex(raw)
        except ValueError:
            try:
                return float(raw)
            except ValueError:
                pass
    print(f"bench_trend: {path}: ledger value {key!r} = {raw!r} is not "
          "a number or hex-float string", file=sys.stderr)
    sys.exit(2)


def ledger_baseline(entries, bench_name, path):
    """Parsed ledger entries -> flat baseline metrics for one bench:
    the latest entry (file order) per run label among entries whose
    "bench" matches, merged. Non-finite values are dropped the way
    load_metrics drops nulls, so they never poison a comparison."""
    latest = {}
    for entry in entries:
        if not isinstance(entry, dict):
            continue
        if entry.get("bench") == bench_name:
            latest[str(entry.get("run", ""))] = entry
    if not latest:
        print(f"bench_trend: {path}: no ledger entry for bench "
              f"{bench_name!r}", file=sys.stderr)
        sys.exit(2)
    metrics = {}
    for run in sorted(latest):
        values = latest[run].get("values")
        if not isinstance(values, dict):
            continue
        for key, raw in values.items():
            value = ledger_value(raw, path, key)
            if math.isfinite(value):
                metrics[key] = value
    return metrics


def load_ledger(path):
    """Ledger JSONL -> list of entry dicts (blank lines skipped)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"bench_trend: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    entries = []
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as e:
            print(f"bench_trend: {path}:{lineno}: not JSON: {e}",
                  file=sys.stderr)
            sys.exit(2)
        if not isinstance(entry, dict):
            print(f"bench_trend: {path}:{lineno}: ledger line is not an "
                  "object", file=sys.stderr)
            sys.exit(2)
        entries.append(entry)
    return entries


def compare(old, new, threshold, suffix):
    """Returns (regressions, report_lines) for two metric dicts."""
    regressions = []
    lines = []
    shared = sorted(set(old) & set(new))
    for key in shared:
        o, n = old[key], new[key]
        if math.isclose(o, n, rel_tol=1e-12, abs_tol=1e-12):
            delta = 0.0
        elif o <= 0:
            # A non-positive baseline has no meaningful relative delta,
            # but a gating metric growing from 0 to positive is still a
            # regression (a makespan that used to be free now costs
            # real time); flag it as infinite growth instead of
            # silently passing. Shrinking from 0 stays unchanged.
            delta = math.inf if n > o else 0.0
        else:
            delta = (n - o) / o
        gating = key.endswith(suffix)
        flag = ""
        if gating and delta > threshold:
            regressions.append((key, o, n, delta))
            flag = "  <-- REGRESSION"
        elif not gating:
            flag = "  (informational)"
        lines.append(f"  {key}: {o:.6g} -> {n:.6g} ({delta:+.1%}){flag}")
    for key in sorted(set(new) - set(old)):
        lines.append(f"  {key}: (new metric, {new[key]:.6g})")
    for key in sorted(set(old) - set(new)):
        lines.append(f"  {key}: (removed)")
    return regressions, lines


def run_check(old_path, new_path, threshold, suffix):
    old_name, old = load_metrics(old_path)
    new_name, new = load_metrics(new_path)
    if old_name != new_name:
        print(f"bench_trend: comparing different benches "
              f"({old_name!r} vs {new_name!r})", file=sys.stderr)
        sys.exit(2)
    regressions, lines = compare(old, new, threshold, suffix)
    print(f"bench_trend: {old_name}: {len(lines)} metrics compared "
          f"(threshold {threshold:.0%} on *{suffix})")
    for line in lines:
        print(line)
    if regressions:
        print(f"bench_trend: {len(regressions)} makespan regression(s) "
              f"beyond {threshold:.0%}:", file=sys.stderr)
        for key, o, n, delta in regressions:
            print(f"  {key}: {o:.6g} -> {n:.6g} ({delta:+.1%})",
                  file=sys.stderr)
        return 1
    print("bench_trend: OK")
    return 0


def run_ledger_check(ledger_path, new_path, threshold, suffix):
    """Like run_check, but the baseline is assembled from a ledger."""
    new_name, new = load_metrics(new_path)
    old = ledger_baseline(load_ledger(ledger_path), new_name, ledger_path)
    regressions, lines = compare(old, new, threshold, suffix)
    print(f"bench_trend: {new_name} vs ledger {ledger_path}: "
          f"{len(lines)} metrics compared "
          f"(threshold {threshold:.0%} on *{suffix})")
    for line in lines:
        print(line)
    if regressions:
        print(f"bench_trend: {len(regressions)} makespan regression(s) "
              f"beyond {threshold:.0%}:", file=sys.stderr)
        for key, o, n, delta in regressions:
            print(f"  {key}: {o:.6g} -> {n:.6g} ({delta:+.1%})",
                  file=sys.stderr)
        return 1
    print("bench_trend: OK")
    return 0


def run_schema_check(paths):
    """Validates each artifact's schema; exits 2 via load_metrics on a
    malformed file. Also rejects artifacts that could not gate
    anything: no finite *total_s makespan, or a makespan serialized as
    null (JsonReport writes null for NaN/Inf) — either means the bench
    silently stopped producing the numbers this gate exists to watch.
    """
    failed = False
    for path in paths:
        name, metrics = load_metrics(path)
        with open(path, "r", encoding="utf-8") as f:
            raw = json.load(f)
        # Google Benchmark artifacts serialize non-finite values inside
        # the benchmarks list, which flatten_gbench already drops; the
        # null scan only applies to the flat schema.
        is_gbench = isinstance(raw.get("benchmarks"), list)
        null_makespans = [] if is_gbench else sorted(
            k for k, v in raw.items() if k.endswith("total_s") and v is None)
        gating = [k for k in metrics
                  if any(k.endswith(s) for s in GATING_SUFFIXES)]
        if null_makespans:
            print(f"bench_trend: {path}: null (non-finite) makespan "
                  f"metric(s): {', '.join(null_makespans)}", file=sys.stderr)
            failed = True
        elif not gating:
            print(f"bench_trend: {path}: no gating metric (*total_s or "
                  "*cpu_time_s) — the artifact cannot gate regressions",
                  file=sys.stderr)
            failed = True
        else:
            print(f"bench_trend: {path}: bench {name!r}, "
                  f"{len(metrics)} finite metrics "
                  f"({len(gating)} makespans) — schema OK")
    return 1 if failed else 0


def self_test():
    """Exercises the comparison logic without touching the filesystem."""
    old = {"a/total_s": 10.0, "b/total_s": 10.0, "c/wasted_s": 1.0}

    # Within threshold: ok (14% < 15%).
    regs, _ = compare(old, {"a/total_s": 11.4, "b/total_s": 10.0,
                            "c/wasted_s": 1.0}, 0.15, "total_s")
    assert not regs, regs

    # Beyond threshold on a gating key: regression.
    regs, _ = compare(old, {"a/total_s": 11.6, "b/total_s": 10.0,
                            "c/wasted_s": 1.0}, 0.15, "total_s")
    assert [r[0] for r in regs] == ["a/total_s"], regs

    # Non-gating keys never fail, however large the delta.
    regs, _ = compare(old, {"a/total_s": 10.0, "b/total_s": 10.0,
                            "c/wasted_s": 100.0}, 0.15, "total_s")
    assert not regs, regs

    # Improvements never fail.
    regs, _ = compare(old, {"a/total_s": 1.0, "b/total_s": 10.0,
                            "c/wasted_s": 1.0}, 0.15, "total_s")
    assert not regs, regs

    # Added/removed keys never fail.
    regs, lines = compare(old, {"a/total_s": 10.0, "d/total_s": 99.0},
                          0.15, "total_s")
    assert not regs, regs
    assert any("new metric" in l for l in lines), lines
    assert any("removed" in l for l in lines), lines

    # A gating metric growing from a zero baseline is a regression
    # (infinite relative growth), not a silent pass — the historical
    # bug let a makespan appear from nowhere without tripping the gate.
    regs, lines = compare({"z/total_s": 0.0}, {"z/total_s": 5.0},
                          0.15, "total_s")
    assert [r[0] for r in regs] == ["z/total_s"], regs
    assert regs[0][3] == math.inf, regs
    assert any("REGRESSION" in l for l in lines), lines

    # An exactly-zero baseline staying zero is unchanged (no division
    # blow-up), and zero baselines on non-gating keys stay
    # informational however they move.
    regs, _ = compare({"z/total_s": 0.0}, {"z/total_s": 0.0},
                      0.15, "total_s")
    assert not regs, regs
    regs, _ = compare({"c/wasted_s": 0.0}, {"c/wasted_s": 5.0},
                      0.15, "total_s")
    assert not regs, regs

    # Google Benchmark artifacts flatten to seconds, aggregates
    # (mean/median of repetitions) are dropped.
    name, metrics = flatten_gbench({
        "context": {"executable": "/build/bench_micro"},
        "benchmarks": [
            {"name": "BM_Pack", "run_type": "iteration", "time_unit": "ns",
             "real_time": 250.0, "cpu_time": 200.0},
            {"name": "BM_Pack_mean", "run_type": "aggregate",
             "time_unit": "ns", "real_time": 1.0, "cpu_time": 1.0},
            {"name": "BM_Sort", "run_type": "iteration", "time_unit": "ms",
             "real_time": 2.0, "cpu_time": 1.5},
        ],
    }, "<self-test>")
    assert name == "gbench:bench_micro", name
    assert sorted(metrics) == ["BM_Pack/cpu_time_s", "BM_Pack/real_time_s",
                               "BM_Sort/cpu_time_s",
                               "BM_Sort/real_time_s"], metrics
    assert math.isclose(metrics["BM_Pack/cpu_time_s"], 200e-9), metrics
    assert math.isclose(metrics["BM_Sort/cpu_time_s"], 1.5e-3), metrics

    # The nested "metrics" registry snapshot and "timeline" block both
    # flatten to namespaced keys; null entries are dropped like flat
    # nulls.
    flat = flatten_bench({
        "bench": "demo",
        "terasort/total_s": 1.5,
        "metrics": {"simmpi/Shuffle/unicast_bytes": 4096.0,
                    "job/cache_hits": 16, "bad": None},
        "timeline": {"terasort/des/inflight_flows/samples": 12,
                     "terasort/des/inflight_flows/final": 0.0,
                     "terasort/des/inflight_flows/digest": 3133078222},
    }, "<self-test>")
    assert flat == {"terasort/total_s": 1.5,
                    "metrics/simmpi/Shuffle/unicast_bytes": 4096.0,
                    "metrics/job/cache_hits": 16.0,
                    "timeline/terasort/des/inflight_flows/samples": 12.0,
                    "timeline/terasort/des/inflight_flows/final": 0.0,
                    "timeline/terasort/des/inflight_flows/digest":
                        3133078222.0}, flat
    # Registry and timeline keys never gate (no gating suffix).
    assert not any(k.endswith(s) for s in GATING_SUFFIXES
                   for k in flat
                   if k.startswith(("metrics/", "timeline/"))), flat

    # Ledger baseline: latest entry per run wins, other benches are
    # filtered out, and hex-float strings decode bit for bit.
    third = 1.0 / 3.0
    entries = [
        {"bench": "ctsort", "run": "terasort",
         "values": {"terasort/total_s": (100.0).hex()}},
        {"bench": "other", "run": "terasort",
         "values": {"terasort/total_s": (1.0).hex()}},
        {"bench": "ctsort", "run": "terasort",
         "values": {"terasort/total_s": third.hex(),
                    "terasort/skipme": float("inf").hex()}},
        {"bench": "ctsort", "run": "coded",
         "values": {"coded/total_s": 0.25}},
    ]
    base = ledger_baseline(entries, "ctsort", "<self-test>")
    assert base == {"terasort/total_s": third,
                    "coded/total_s": 0.25}, base
    assert base["terasort/total_s"].hex() == third.hex(), base
    regs, _ = compare(base, {"terasort/total_s": third * 1.5,
                             "coded/total_s": 0.25}, 0.15, "total_s")
    assert [r[0] for r in regs] == ["terasort/total_s"], regs

    print("bench_trend: self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", nargs="?", help="previous BENCH_*.json")
    parser.add_argument("new", nargs="?", help="current BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max allowed relative makespan growth "
                             "(default 0.15)")
    parser.add_argument("--suffix", default="total_s",
                        help="metric-key suffix that gates the check "
                             "(default total_s)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded self-test and exit")
    parser.add_argument("--check", nargs="+", metavar="FILE",
                        help="validate the schema of each FILE and exit "
                             "(no comparison)")
    parser.add_argument("--baseline-ledger", metavar="LEDGER",
                        help="take the baseline from a run-ledger JSONL "
                             "instead of an OLD artifact (pass only NEW)")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if args.check:
        sys.exit(run_schema_check(args.check))
    if args.baseline_ledger:
        if args.new is not None:
            parser.error("--baseline-ledger replaces OLD; pass only the "
                         "NEW artifact")
        if args.old is None:
            parser.error("a NEW artifact is required with "
                         "--baseline-ledger")
        sys.exit(run_ledger_check(args.baseline_ledger, args.old,
                                  args.threshold, args.suffix))
    if args.old is None or args.new is None:
        parser.error("OLD and NEW artifacts are required")
    sys.exit(run_check(args.old, args.new, args.threshold, args.suffix))


if __name__ == "__main__":
    main()
