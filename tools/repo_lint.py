#!/usr/bin/env python3
"""Repo-local determinism lint.

Every result this repo produces is supposed to be a pure function of
its inputs; these rules fence off the C++ constructs that historically
break that promise. Rules:

  rand       libc rand()/srand() and std::random_device in result
             paths (src/, bench/, tools/) — seeded engines from
             common/random.h only.
  wallclock  time(NULL)/time(nullptr) in result paths — wall-clock
             reads belong in Stopwatch timings, never in results.
  unordered  std::unordered_map / std::unordered_set anywhere in src/:
             iteration order is implementation-defined, and sooner or
             later somebody iterates. std::map/std::set are ordered.
  mutex      a naked std::mutex in src/simmpi (the transport hot
             path): locks there must be striped (LockStripe) or carry
             a `repo-lint: allow(mutex): <reason>` annotation within
             the two lines above the declaration explaining why this
             one is not a scalability hazard.
  benchkey   string keys fed to bench::JsonReport::add(...) or to the
             obs::MetricRegistry (counter/gauge/histogram) must be
             schema-clean: [A-Za-z0-9_/.:+%-]+, not the reserved
             top-level keys "bench"/"metrics"/"timeline", and registry
             metric names must not end in `_s` (seconds belong to
             JsonReport timing keys, registry counters are
             dimensionless).
  timelinekey  string keys fed to obs::Timeline::Sample(...) must
             match the flight-recorder grammar
             <subsystem>/<name>[/unit] — lowercase [a-z][a-z0-9_]*
             subsystem, then one or two [A-Za-z0-9_.+-]+ segments
             (src/obs/timeline.h; tools/trace_check.py enforces the
             same grammar on exported counter tracks).

Any rule is suppressed for a line by `repo-lint: allow(<rule>)` on the
line itself or within the two lines above it.

Usage: repo_lint.py [--root DIR] [--self-test]
Exit status 0 when clean, 1 on findings (or self-test failure).
"""

import argparse
import pathlib
import re
import sys

CPP_GLOBS = ("*.h", "*.cc", "*.cpp")

ALLOW_RE = re.compile(r"repo-lint:\s*allow\((\w+)\)")

RAND_RE = re.compile(r"\b(?:srand|rand)\s*\(|std::random_device")
WALLCLOCK_RE = re.compile(r"\btime\s*\(\s*(?:NULL|nullptr)\s*\)")
UNORDERED_RE = re.compile(r"std::unordered_(?:map|set)\b")
MUTEX_RE = re.compile(r"\bstd::mutex\b")
ADD_KEY_RE = re.compile(r"\.add\(\s*\"([^\"]*)\"")
REGISTRY_KEY_RE = re.compile(
    r"\b(?:counter|gauge|histogram)\(\s*\"([^\"]*)\"")
KEY_OK_RE = re.compile(r"[A-Za-z0-9_/.:+%-]+\Z")
RESERVED_KEYS = {"bench", "metrics", "timeline"}
SAMPLE_KEY_RE = re.compile(r"(?:\.|->)Sample\(\s*\"([^\"]*)\"")
TIMELINE_KEY_RE = re.compile(r"[a-z][a-z0-9_]*(/[A-Za-z0-9_.+-]+){1,2}\Z")


def allowed(lines, i, rule):
    """True when line i (0-based) carries or inherits an allow marker."""
    for j in range(max(0, i - 2), i + 1):
        m = ALLOW_RE.search(lines[j])
        if m and m.group(1) == rule:
            return True
    return False


def lint_lines(relpath, lines):
    """Lints one file's lines; yields (line_number, rule, message)."""
    path = relpath.replace("\\", "/")
    in_src = path.startswith("src/")
    in_simmpi = path.startswith("src/simmpi/")
    for i, line in enumerate(lines):
        # Comments still count for key rules (they would be copied),
        # but pure comment lines are a poor place to flag rand: strip
        # nothing — the repo treats a forbidden token in a comment as
        # a forbidden example. Keep the scan literal and predictable.
        if RAND_RE.search(line) and not allowed(lines, i, "rand"):
            yield (i + 1, "rand",
                   "libc rand()/std::random_device in a result path; "
                   "use the seeded engines in common/random.h")
        if WALLCLOCK_RE.search(line) and not allowed(lines, i, "wallclock"):
            yield (i + 1, "wallclock",
                   "wall-clock read in a result path; results must be "
                   "pure functions of their inputs")
        if in_src and UNORDERED_RE.search(line) \
                and not allowed(lines, i, "unordered"):
            yield (i + 1, "unordered",
                   "unordered container in src/: iteration order is "
                   "implementation-defined; use std::map/std::set")
        if in_simmpi and MUTEX_RE.search(line) \
                and not allowed(lines, i, "mutex"):
            yield (i + 1, "mutex",
                   "naked std::mutex in src/simmpi: stripe it "
                   "(LockStripe) or annotate "
                   "`repo-lint: allow(mutex): <reason>` within the two "
                   "lines above")
        for m in ADD_KEY_RE.finditer(line):
            key = m.group(1)
            if (not KEY_OK_RE.fullmatch(key) or key in RESERVED_KEYS) \
                    and not allowed(lines, i, "benchkey"):
                yield (i + 1, "benchkey",
                       "bench JSON key %r is not schema-clean" % key)
        for m in REGISTRY_KEY_RE.finditer(line):
            key = m.group(1)
            bad = (not KEY_OK_RE.fullmatch(key) or key in RESERVED_KEYS
                   or key.endswith("_s"))
            if bad and not allowed(lines, i, "benchkey"):
                yield (i + 1, "benchkey",
                       "registry metric name %r is not schema-clean "
                       "(charset, reserved, or a `_s` seconds suffix)"
                       % key)
        for m in SAMPLE_KEY_RE.finditer(line):
            key = m.group(1)
            if not TIMELINE_KEY_RE.fullmatch(key) \
                    and not allowed(lines, i, "timelinekey"):
                yield (i + 1, "timelinekey",
                       "timeline series key %r violates "
                       "<subsystem>/<name>[/unit]" % key)


def iter_files(root):
    for top in ("src", "bench", "tools"):
        base = root / top
        if not base.is_dir():
            continue
        for glob in CPP_GLOBS:
            yield from sorted(base.rglob(glob))


def run(root):
    findings = []
    for path in iter_files(root):
        rel = path.relative_to(root).as_posix()
        lines = path.read_text(encoding="utf-8").splitlines()
        for lineno, rule, msg in lint_lines(rel, lines):
            findings.append("%s:%d: [%s] %s" % (rel, lineno, rule, msg))
    return findings


# ---- self-test ----

def expect(name, relpath, text, rules):
    got = sorted({rule for _, rule, _ in
                  lint_lines(relpath, text.splitlines())})
    want = sorted(rules)
    if got != want:
        print("self-test %s: expected %s, got %s" % (name, want, got))
        return False
    return True


def self_test():
    ok = True
    ok &= expect("clean", "src/x.cc",
                 'std::map<int, int> m;\nreg.counter("a/b").add(1);\n',
                 [])
    ok &= expect("rand", "src/x.cc", "int x = rand();", ["rand"])
    ok &= expect("rand-named-fn-ok", "src/x.cc",
                 "int quickrand2 = myrand(3);", [])
    ok &= expect("random-device", "bench/x.cpp",
                 "std::random_device rd;", ["rand"])
    ok &= expect("wallclock", "tools/x.cpp",
                 "auto t = time(NULL);", ["wallclock"])
    ok &= expect("unordered", "src/x.h",
                 "std::unordered_map<int, int> m;", ["unordered"])
    ok &= expect("unordered-outside-src-ok", "tools/x.cpp",
                 "std::unordered_map<int, int> m;", [])
    ok &= expect("mutex", "src/simmpi/x.h",
                 "std::mutex mu_;", ["mutex"])
    ok &= expect("mutex-annotated-ok", "src/simmpi/x.h",
                 "// repo-lint: allow(mutex): cold path\n"
                 "std::mutex mu_;", [])
    ok &= expect("mutex-outside-simmpi-ok", "src/driver/x.h",
                 "std::mutex mu_;", [])
    ok &= expect("benchkey-space", "bench/x.cpp",
                 'report.add("total s", 1.0);', ["benchkey"])
    ok &= expect("benchkey-reserved", "bench/x.cpp",
                 'report.add("bench", 1.0);', ["benchkey"])
    ok &= expect("benchkey-ok", "bench/x.cpp",
                 'report.add("check/total_s", 1.0);', [])
    ok &= expect("registry-seconds", "src/x.cc",
                 'reg.counter("job/wait_s").add(1);', ["benchkey"])
    ok &= expect("benchkey-timeline-reserved", "bench/x.cpp",
                 'report.add("timeline", 1.0);', ["benchkey"])
    ok &= expect("timelinekey-ok", "src/x.cc",
                 'tl.Sample("des/inflight_flows", t, v);\n'
                 'probe.timeline->Sample("live/shuffle_bytes/bytes", t, v);',
                 [])
    ok &= expect("timelinekey-no-subsystem", "src/x.cc",
                 'tl.Sample("inflight", t, v);', ["timelinekey"])
    ok &= expect("timelinekey-upper-subsystem", "src/x.cc",
                 'tl.Sample("DES/inflight", t, v);', ["timelinekey"])
    ok &= expect("timelinekey-too-deep", "src/x.cc",
                 'tl.Sample("a/b/c/d", t, v);', ["timelinekey"])
    ok &= expect("timelinekey-allow", "src/x.cc",
                 "// repo-lint: allow(timelinekey)\n"
                 'tl.Sample("LEGACY", t, v);', [])
    ok &= expect("allow-suppresses", "src/x.cc",
                 "// repo-lint: allow(rand)\nint x = rand();", [])
    ok &= expect("allow-wrong-rule", "src/x.cc",
                 "// repo-lint: allow(mutex)\nint x = rand();", ["rand"])
    print("repo_lint self-test: %s" % ("PASS" if ok else "FAIL"))
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: this script's parent)")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    root = pathlib.Path(args.root) if args.root \
        else pathlib.Path(__file__).resolve().parent.parent
    findings = run(root)
    for f in findings:
        print(f)
    if findings:
        print("repo_lint: %d finding(s)" % len(findings))
        return 1
    print("repo_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
