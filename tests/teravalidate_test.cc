// Tests for the TeraValidate module: checksums and partitioned-output
// validation, including on real sort outputs.
#include <gtest/gtest.h>

#include <algorithm>

#include "codedterasort/coded_terasort.h"
#include "keyvalue/teravalidate.h"
#include "terasort/terasort.h"

namespace cts {
namespace {

TEST(Checksum, OrderInsensitive) {
  const TeraGen gen(1);
  auto recs = gen.generate(0, 500);
  const RecordChecksum forward = ChecksumOfRecords(recs);
  std::reverse(recs.begin(), recs.end());
  EXPECT_EQ(ChecksumOfRecords(recs), forward);
}

TEST(Checksum, SplitInsensitiveViaMerge) {
  const TeraGen gen(2);
  const auto recs = gen.generate(0, 100);
  RecordChecksum split = ChecksumOfRecords({recs.data(), 40});
  split.merge(ChecksumOfRecords({recs.data() + 40, 60}));
  EXPECT_EQ(split, ChecksumOfRecords(recs));
}

TEST(Checksum, DetectsContentChange) {
  const TeraGen gen(3);
  auto recs = gen.generate(0, 100);
  const RecordChecksum original = ChecksumOfRecords(recs);
  recs[50].value[10] ^= 1;
  EXPECT_FALSE(ChecksumOfRecords(recs) == original);
}

TEST(Checksum, DetectsDuplicationEvenWhenXorCancels) {
  // Replacing a record with a duplicate of another changes the XOR
  // accumulator; duplicating a PAIR cancels in XOR but not in SUM.
  const TeraGen gen(4);
  auto recs = gen.generate(0, 100);
  const RecordChecksum original = ChecksumOfRecords(recs);
  recs[1] = recs[0];
  recs[3] = recs[2];
  auto doubled = recs;
  EXPECT_FALSE(ChecksumOfRecords(doubled) == original);
}

TEST(Checksum, MatchesInputStreamHelper) {
  const TeraGen gen(5);
  EXPECT_EQ(ChecksumOfInput(gen, 256),
            ChecksumOfRecords(gen.generate(0, 256)));
}

TEST(Validate, AcceptsCorrectPartitionedOutput) {
  const TeraGen gen(6);
  auto recs = gen.generate(0, 300);
  const RecordChecksum expected = ChecksumOfRecords(recs);
  std::sort(recs.begin(), recs.end(), RecordLess);
  const std::vector<std::vector<Record>> partitions = {
      {recs.begin(), recs.begin() + 100},
      {recs.begin() + 100, recs.begin() + 250},
      {recs.begin() + 250, recs.end()},
  };
  const ValidationReport report = ValidatePartitions(partitions, expected);
  EXPECT_TRUE(report.valid) << report.error;
}

TEST(Validate, AcceptsEmptyPartitions) {
  const TeraGen gen(6);
  auto recs = gen.generate(0, 10);
  const RecordChecksum expected = ChecksumOfRecords(recs);
  std::sort(recs.begin(), recs.end(), RecordLess);
  const std::vector<std::vector<Record>> partitions = {{}, recs, {}};
  EXPECT_TRUE(ValidatePartitions(partitions, expected).valid);
}

TEST(Validate, RejectsIntraPartitionDisorder) {
  const TeraGen gen(7);
  auto recs = gen.generate(0, 100);
  const RecordChecksum expected = ChecksumOfRecords(recs);
  // Unsorted partition.
  const std::vector<std::vector<Record>> partitions = {recs};
  const ValidationReport report = ValidatePartitions(partitions, expected);
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.error.find("order violation"), std::string::npos);
}

TEST(Validate, RejectsCrossPartitionDisorder) {
  const TeraGen gen(8);
  auto recs = gen.generate(0, 100);
  const RecordChecksum expected = ChecksumOfRecords(recs);
  std::sort(recs.begin(), recs.end(), RecordLess);
  // Swap the halves: each is sorted, but the boundary is inverted.
  const std::vector<std::vector<Record>> partitions = {
      {recs.begin() + 50, recs.end()},
      {recs.begin(), recs.begin() + 50},
  };
  EXPECT_FALSE(ValidatePartitions(partitions, expected).valid);
}

TEST(Validate, RejectsMissingRecords) {
  const TeraGen gen(9);
  auto recs = gen.generate(0, 100);
  const RecordChecksum expected = ChecksumOfRecords(recs);
  std::sort(recs.begin(), recs.end(), RecordLess);
  recs.pop_back();
  const std::vector<std::vector<Record>> partitions = {recs};
  const ValidationReport report = ValidatePartitions(partitions, expected);
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.error.find("count mismatch"), std::string::npos);
}

TEST(Validate, RejectsSubstitutedRecords) {
  const TeraGen gen(10);
  auto recs = gen.generate(0, 100);
  const RecordChecksum expected = ChecksumOfRecords(recs);
  std::sort(recs.begin(), recs.end(), RecordLess);
  recs[30].value[0] ^= 0x55;  // same count, altered content
  const std::vector<std::vector<Record>> partitions = {recs};
  const ValidationReport report = ValidatePartitions(partitions, expected);
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.error.find("checksum"), std::string::npos);
}

TEST(Validate, RealTeraSortOutputValidates) {
  SortConfig config;
  config.num_nodes = 5;
  config.num_records = 5000;
  const AlgorithmResult result = RunTeraSort(config);
  const RecordChecksum expected = ChecksumOfInput(
      TeraGen(config.seed, config.distribution), config.num_records);
  const ValidationReport report =
      ValidatePartitions(result.partitions, expected);
  EXPECT_TRUE(report.valid) << report.error;
}

TEST(Validate, RealCodedTeraSortOutputValidates) {
  SortConfig config;
  config.num_nodes = 5;
  config.redundancy = 3;
  config.num_records = 5000;
  const AlgorithmResult result = RunCodedTeraSort(config);
  const RecordChecksum expected = ChecksumOfInput(
      TeraGen(config.seed, config.distribution), config.num_records);
  const ValidationReport report =
      ValidatePartitions(result.partitions, expected);
  EXPECT_TRUE(report.valid) << report.error;
}

}  // namespace
}  // namespace cts
