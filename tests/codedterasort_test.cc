// End-to-end tests of CodedTeraSort: correctness across a (K, r)
// sweep, equality with TeraSort, traffic identities of paper eq. (2),
// and stage/counter bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>

#include "analytics/loads.h"
#include "codedterasort/coded_terasort.h"
#include "keyvalue/recordio.h"
#include "keyvalue/teragen.h"
#include "terasort/terasort.h"

namespace cts {
namespace {

std::vector<Record> Concatenate(const AlgorithmResult& result) {
  std::vector<Record> all;
  for (const auto& p : result.partitions) {
    all.insert(all.end(), p.begin(), p.end());
  }
  return all;
}

std::vector<Record> ExpectedSorted(const SortConfig& config) {
  auto recs =
      TeraGen(config.seed, config.distribution).generate(0, config.num_records);
  std::sort(recs.begin(), recs.end(), RecordLess);
  return recs;
}

// ---- Correctness sweep over (K, r) ----

class CodedSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CodedSweep, OutputEqualsStdSortOfInput) {
  const auto [K, r] = GetParam();
  SortConfig config;
  config.num_nodes = K;
  config.redundancy = r;
  config.num_records = 3000;
  const AlgorithmResult result = RunCodedTeraSort(config);
  EXPECT_EQ(result.algorithm, "CodedTeraSort");
  EXPECT_EQ(Concatenate(result), ExpectedSorted(config));
}

TEST_P(CodedSweep, OutputEqualsTeraSortOutput) {
  const auto [K, r] = GetParam();
  SortConfig config;
  config.num_nodes = K;
  config.redundancy = r;
  config.num_records = 2000;
  const AlgorithmResult coded = RunCodedTeraSort(config);
  const AlgorithmResult plain = RunTeraSort(config);
  ASSERT_EQ(coded.partitions.size(), plain.partitions.size());
  for (std::size_t k = 0; k < coded.partitions.size(); ++k) {
    EXPECT_EQ(coded.partitions[k], plain.partitions[k]) << "partition " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodedSweep,
    ::testing::Values(std::pair{2, 1}, std::pair{3, 2}, std::pair{4, 2},
                      std::pair{4, 3}, std::pair{5, 2}, std::pair{5, 3},
                      std::pair{5, 4}, std::pair{6, 2}, std::pair{6, 3},
                      std::pair{6, 5}, std::pair{7, 3}, std::pair{8, 2},
                      std::pair{4, 4}, std::pair{5, 1}),
    [](const auto& info) {
      return "K" + std::to_string(info.param.first) + "r" +
             std::to_string(info.param.second);
    });

// ---- Traffic identities ----

TEST(CodedTeraSort, MulticastCountsMatchCombinatorics) {
  SortConfig config;
  config.num_nodes = 6;
  config.redundancy = 2;
  config.num_records = 6000;
  const AlgorithmResult result = RunCodedTeraSort(config);
  const auto shuffle = result.traffic.at(stage::kShuffle);
  // Every member of every (r+1)-group multicasts exactly one packet.
  EXPECT_EQ(shuffle.mcast_msgs, Binomial(6, 3) * 3);
  EXPECT_EQ(shuffle.unicast_msgs, 0u);
  // CodeGen creates exactly C(K, r+1) communicators.
  EXPECT_EQ(result.traffic.at(stage::kCodeGen).comm_creations,
            Binomial(6, 3));
}

TEST(CodedTeraSort, ShuffleBytesMatchCodedLoadFormula) {
  // Transmitted payload ≈ (1/r)(1 - r/K) of the dataset (eq. (2)).
  // The balanced key stream makes every intermediate value the same
  // size (no multinomial sampling noise), so only packet headers and
  // ±1-record rounding separate measured from theory.
  SortConfig config;
  config.num_nodes = 8;
  config.redundancy = 3;
  config.num_records = 24000;
  config.distribution = KeyDistribution::kBalanced;
  const AlgorithmResult result = RunCodedTeraSort(config);
  const auto shuffle = result.traffic.at(stage::kShuffle);
  const double measured =
      static_cast<double>(shuffle.transmitted_bytes()) /
      static_cast<double>(config.total_bytes());
  EXPECT_NEAR(measured, CodedLoad(8, 3), 0.015);
}

TEST(CodedTeraSort, RecipientBytesEqualUncodedDemand) {
  // Each multicast serves r receivers, so delivered (recipient) bytes
  // equal the full uncoded demand 1 - r/K while transmitted bytes are
  // r times smaller — the heart of the coding gain.
  SortConfig config;
  config.num_nodes = 6;
  config.redundancy = 2;
  config.num_records = 12000;
  const AlgorithmResult result = RunCodedTeraSort(config);
  const auto shuffle = result.traffic.at(stage::kShuffle);
  const double delivered =
      static_cast<double>(shuffle.mcast_recipient_bytes) /
      static_cast<double>(config.total_bytes());
  EXPECT_NEAR(delivered, UncodedLoad(6, 2), 0.03);
  EXPECT_NEAR(static_cast<double>(shuffle.mcast_recipient_bytes) /
                  static_cast<double>(shuffle.mcast_bytes),
              2.0, 1e-9);
}

TEST(CodedTeraSort, CodingGainVersusTeraSortTraffic) {
  // Transmitted bytes of CodedTeraSort vs TeraSort on the same
  // workload: ratio should approach L_coded / L_terasort.
  SortConfig config;
  config.num_nodes = 6;
  config.redundancy = 3;
  config.num_records = 18000;
  const AlgorithmResult coded = RunCodedTeraSort(config);
  const AlgorithmResult plain = RunTeraSort(config);
  const double coded_bytes = static_cast<double>(
      coded.traffic.at(stage::kShuffle).transmitted_bytes());
  const double plain_bytes = static_cast<double>(
      plain.traffic.at(stage::kShuffle).transmitted_bytes());
  const double expected_ratio = CodedLoad(6, 3) / TeraSortLoad(6);
  EXPECT_NEAR(coded_bytes / plain_bytes, expected_ratio,
              expected_ratio * 0.1);
}

// ---- Work counters ----

TEST(CodedTeraSort, MapWorkIsRTimesInput) {
  SortConfig config;
  config.num_nodes = 5;
  config.redundancy = 3;
  config.num_records = 5000;
  const AlgorithmResult result = RunCodedTeraSort(config);
  const NodeWork total = result.total_work();
  // Every record hashed r times across the cluster.
  EXPECT_EQ(total.map_bytes, config.total_bytes() * 3);
  // Every node processes C(K-1, r-1) files.
  EXPECT_EQ(total.map_files, 5 * Binomial(4, 2));
  // Reduce still sorts the dataset exactly once in aggregate.
  EXPECT_EQ(total.reduce_bytes, config.total_bytes());
}

TEST(CodedTeraSort, CodecCountersMatchCombinatorics) {
  SortConfig config;
  config.num_nodes = 6;
  config.redundancy = 2;
  config.num_records = 6000;
  const AlgorithmResult result = RunCodedTeraSort(config);
  const NodeWork total = result.total_work();
  // One packet encoded per (group, member); r packets decoded per
  // (group, member).
  const std::uint64_t groups = Binomial(6, 3);
  EXPECT_EQ(total.codec.packets_encoded, groups * 3);
  EXPECT_EQ(total.codec.packets_decoded, groups * 3 * 2);
  // Decoded useful bytes = all values delivered = (1 - r/K) of the
  // serialized data (plus per-IV record-count headers).
  const double fraction =
      static_cast<double>(total.codec.decoded_bytes) /
      static_cast<double>(config.total_bytes());
  EXPECT_NEAR(fraction, UncodedLoad(6, 2), 0.05);
}

TEST(CodedTeraSort, StagesRecorded) {
  SortConfig config;
  config.num_nodes = 4;
  config.redundancy = 2;
  config.num_records = 1200;
  const AlgorithmResult result = RunCodedTeraSort(config);
  for (const char* s : {stage::kCodeGen, stage::kMap, stage::kEncode,
                        stage::kShuffle, stage::kDecode, stage::kReduce}) {
    ASSERT_TRUE(result.wall_seconds.count(s)) << s;
  }
  EXPECT_FALSE(result.wall_seconds.count(stage::kPack));
}

// ---- Degenerate and edge configurations ----

TEST(CodedTeraSort, RedundancyEqualsKNeedsNoShuffle) {
  SortConfig config;
  config.num_nodes = 4;
  config.redundancy = 4;
  config.num_records = 2000;
  const AlgorithmResult result = RunCodedTeraSort(config);
  EXPECT_EQ(Concatenate(result), ExpectedSorted(config));
  const auto shuffle = result.traffic.at(stage::kShuffle);
  EXPECT_EQ(shuffle.transmitted_bytes(), 0u);
  EXPECT_EQ(result.traffic.at(stage::kCodeGen).comm_creations, 0u);
}

TEST(CodedTeraSort, RedundancyOneStillSortsViaPairGroups) {
  SortConfig config;
  config.num_nodes = 5;
  config.redundancy = 1;
  config.num_records = 2500;
  const AlgorithmResult result = RunCodedTeraSort(config);
  EXPECT_EQ(Concatenate(result), ExpectedSorted(config));
  // Pair groups: C(K, 2) communicators, each member sends one packet.
  EXPECT_EQ(result.traffic.at(stage::kShuffle).mcast_msgs,
            Binomial(5, 2) * 2);
}

TEST(CodedTeraSort, TinyInputManyFiles) {
  // Fewer records than files: most files are empty — the codec must
  // handle zero-length IVs and still deliver everything.
  SortConfig config;
  config.num_nodes = 6;
  config.redundancy = 3;  // 20 files
  config.num_records = 9;
  const AlgorithmResult result = RunCodedTeraSort(config);
  EXPECT_EQ(Concatenate(result), ExpectedSorted(config));
}

TEST(CodedTeraSort, EmptyInput) {
  SortConfig config;
  config.num_nodes = 4;
  config.redundancy = 2;
  config.num_records = 0;
  const AlgorithmResult result = RunCodedTeraSort(config);
  EXPECT_EQ(result.total_output_records(), 0u);
}

TEST(CodedTeraSort, DeterministicAcrossRuns) {
  SortConfig config;
  config.num_nodes = 5;
  config.redundancy = 2;
  config.num_records = 2000;
  const AlgorithmResult a = RunCodedTeraSort(config);
  const AlgorithmResult b = RunCodedTeraSort(config);
  EXPECT_EQ(Concatenate(a), Concatenate(b));
  EXPECT_EQ(a.traffic.at(stage::kShuffle).mcast_bytes,
            b.traffic.at(stage::kShuffle).mcast_bytes);
}

TEST(CodedTeraSort, SkewedDataWithSampledPartitioner) {
  SortConfig config;
  config.num_nodes = 5;
  config.redundancy = 2;
  config.num_records = 5000;
  config.distribution = KeyDistribution::kSkewed;
  config.partitioner = PartitionerKind::kSampled;
  const AlgorithmResult result = RunCodedTeraSort(config);
  EXPECT_EQ(Concatenate(result), ExpectedSorted(config));
}

TEST(CodedTeraSort, RejectsInvalidRedundancy) {
  SortConfig config;
  config.num_nodes = 4;
  config.num_records = 100;
  config.redundancy = 0;
  EXPECT_THROW(RunCodedTeraSort(config), CheckError);
  config.redundancy = 5;
  EXPECT_THROW(RunCodedTeraSort(config), CheckError);
}

}  // namespace
}  // namespace cts
