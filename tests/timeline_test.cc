// The flight recorder's determinism invariants (src/obs/timeline.h):
// the key grammar, bitwise series digests, and the two sampling paths
// — the live virtual-time series derived from a cached execution and
// the DES series sampled along scenario time — must reproduce bit for
// bit across reruns and across host threads. The Chrome-trace counter
// export must round-trip through ValidateTrace.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "job/job.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "simscen/engine.h"

namespace cts::obs {
namespace {

SortConfig SmallConfig(int r = 1) {
  SortConfig config;
  config.num_nodes = 4;
  config.redundancy = r;
  config.num_records = 20000;
  config.seed = 2017;
  return config;
}

TEST(TimelineKey, Grammar) {
  EXPECT_TRUE(ValidTimelineKey("des/inflight_flows"));
  EXPECT_TRUE(ValidTimelineKey("live/shuffle_bytes/bytes"));
  EXPECT_TRUE(ValidTimelineKey("sim9/p99-lat/ms"));
  EXPECT_FALSE(ValidTimelineKey(""));
  EXPECT_FALSE(ValidTimelineKey("no_subsystem"));
  EXPECT_FALSE(ValidTimelineKey("Upper/name"));
  EXPECT_FALSE(ValidTimelineKey("des/"));
  EXPECT_FALSE(ValidTimelineKey("des//unit"));
  EXPECT_FALSE(ValidTimelineKey("a/b/c/d"));
  EXPECT_FALSE(ValidTimelineKey("des/spa ce"));
  EXPECT_FALSE(ValidTimelineKey("des:colon/x"));
}

TEST(Timeline, DigestIsBitwise) {
  Timeline a, b;
  a.Sample("t/x", 0, 0.0);
  b.Sample("t/x", 0, -0.0);  // numerically equal, different bits
  EXPECT_NE(a.SeriesDigest("t/x"), b.SeriesDigest("t/x"));
  EXPECT_FALSE(a == b);

  Timeline c;
  c.Sample("t/x", 0, 0.0);
  EXPECT_EQ(a.SeriesDigest("t/x"), c.SeriesDigest("t/x"));
  EXPECT_EQ(a.Digest(), c.Digest());
  EXPECT_TRUE(a == c);

  // The digest of an absent series is the digest of the bare key:
  // stable, and distinct per key.
  EXPECT_NE(a.SeriesDigest("t/absent"), a.SeriesDigest("t/other"));
}

TEST(Timeline, ValidateCatchesViolations) {
  Timeline ok;
  ok.Sample("des/inflight_flows", 0, 1);
  ok.Sample("des/inflight_flows", 0.5, 2);
  EXPECT_EQ(ok.Validate(), "");

  Timeline bad_key;
  bad_key.Sample("NotASubsystem/x", 0, 1);
  EXPECT_NE(bad_key.Validate(), "");

  Timeline backwards;
  backwards.Sample("des/x", 1.0, 1);
  backwards.Sample("des/x", 0.5, 2);
  EXPECT_NE(backwards.Validate(), "");

  Timeline nonfinite;
  nonfinite.Sample("des/x", 0, std::numeric_limits<double>::infinity());
  EXPECT_NE(nonfinite.Validate(), "");
}

TEST(Timeline, MergeConcatenatesSeries) {
  Timeline a, b;
  a.Sample("live/x", 0, 1);
  b.Sample("live/x", 1, 2);
  b.Sample("des/y", 0, 3);
  a.Merge(b);
  EXPECT_EQ(a.series().at("live/x").size(), 2u);
  EXPECT_EQ(a.series().at("des/y").size(), 1u);
  EXPECT_EQ(a.Validate(), "");
}

// The ctest invariant the ISSUE names: the same JobSpec evaluated
// twice through the same cache yields a bitwise-identical timeline.
TEST(Timeline, LiveSeriesReproduceBitwise) {
  job::JobSpec spec;
  spec.algorithm = "terasort";
  spec.config = SmallConfig();
  spec.backend = job::Backend::kLive;

  job::RunCache cache;
  const job::JobResult first = job::RunJob(spec, cache);
  const job::JobResult second = job::RunJob(spec, cache);

  ASSERT_FALSE(first.timeline.empty());
  EXPECT_EQ(first.timeline.Validate(), "");
  EXPECT_TRUE(first.timeline == second.timeline);
  EXPECT_EQ(first.timeline.Digest(), second.timeline.Digest());
  EXPECT_TRUE(first.timeline.series().count("live/stage_bytes/bytes"));
  EXPECT_TRUE(first.timeline.series().count("live/shuffle_bytes/bytes"));
  EXPECT_TRUE(first.timeline.series().count("live/stripe_contention"));
}

// The DES series are a pure function of (run, scenario): replaying on
// the main thread and on a freshly spawned host thread — and under
// both network disciplines — must produce identical bits. The DES
// itself is single-threaded; this pins that no thread-local or clock
// state leaks into the samples.
TEST(Timeline, ReplaySeriesReproduceAcrossHostThreads) {
  job::RunCache cache;
  const SortConfig config = SmallConfig();
  const auto run = cache.GetScenarioRun("terasort", config,
                                        /*paper_records=*/0,
                                        /*from_events=*/false);

  for (const simnet::Discipline discipline :
       {simnet::Discipline::kSerial,
        simnet::Discipline::kParallelFullDuplex}) {
    simscen::Scenario scenario =
        simscen::Scenario::Baseline(config.num_nodes);
    scenario.discipline = discipline;

    Timeline main_thread;
    simscen::ReplayScenario(*run, scenario, &main_thread);
    ASSERT_FALSE(main_thread.empty());
    EXPECT_EQ(main_thread.Validate(), "");
    EXPECT_TRUE(main_thread.series().count("des/inflight_flows"));
    EXPECT_TRUE(main_thread.series().count("des/requeue_depth"));
    EXPECT_TRUE(main_thread.series().count("des/link_utilization"));

    Timeline other_thread;
    std::thread worker([&] {
      simscen::ReplayScenario(*run, scenario, &other_thread);
    });
    worker.join();
    EXPECT_TRUE(main_thread == other_thread);
    EXPECT_EQ(main_thread.Digest(), other_thread.Digest());
  }
}

// A kReplay job embeds both the live series and the DES series in one
// timeline, and two evaluations through one cache agree bit for bit.
TEST(Timeline, ReplayJobEmbedsBothSubsystems) {
  job::JobSpec spec;
  spec.algorithm = "coded";
  spec.config = SmallConfig(/*r=*/3);
  spec.backend = job::Backend::kReplay;

  job::RunCache cache;
  const job::JobResult first = job::RunJob(spec, cache);
  const job::JobResult second = job::RunJob(spec, cache);

  EXPECT_EQ(first.timeline.Validate(), "");
  EXPECT_TRUE(first.timeline.series().count("live/stage_bytes/bytes"));
  EXPECT_TRUE(first.timeline.series().count("des/inflight_flows"));
  EXPECT_TRUE(first.timeline == second.timeline);
}

TEST(Trace, CounterExportRoundTrips) {
  Timeline tl;
  tl.Sample("des/inflight_flows", 0, 1);
  tl.Sample("des/inflight_flows", 0.25, 3);
  tl.Sample("live/arena_hit_rate", 0.5, 0.75);

  Trace trace;
  AppendTimelineCounters(tl, trace, /*pid=*/0, /*tid=*/5);
  EXPECT_EQ(ValidateTrace(trace), "");
  std::size_t counters = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.phase == 'C') ++counters;
  }
  EXPECT_EQ(counters, tl.total_samples());

  // A counter series violating the key grammar must fail validation.
  Trace bad;
  bad.add_counter(0, 5, "NotAKey", 0.0, 1.0);
  EXPECT_NE(ValidateTrace(bad), "");

  // Time going backwards within one series must fail validation.
  Trace backwards;
  backwards.add_counter(0, 5, "des/x", 1.0, 1.0);
  backwards.add_counter(0, 5, "des/x", 0.0, 2.0);
  EXPECT_NE(ValidateTrace(backwards), "");
}

}  // namespace
}  // namespace cts::obs
