// Cross-module integration tests: the paper's worked examples end to
// end, extension paths (batched CodeGen, parallel shuffle pricing,
// per-node traffic), and whole-pipeline invariants that no single
// module test covers.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "analytics/loads.h"
#include "analytics/report.h"
#include "codedterasort/coded_terasort.h"
#include "keyvalue/recordio.h"
#include "keyvalue/teragen.h"
#include "simmpi/comm.h"
#include "terasort/terasort.h"

namespace cts {
namespace {

std::vector<Record> Concatenate(const AlgorithmResult& result) {
  std::vector<Record> all;
  for (const auto& p : result.partitions) {
    all.insert(all.end(), p.begin(), p.end());
  }
  return all;
}

// ---- Extension: batched CodeGen ----

TEST(BatchedCodeGen, OutputMatchesCommSplitMode) {
  SortConfig config;
  config.num_nodes = 6;
  config.redundancy = 3;
  config.num_records = 3000;
  config.codegen_mode = CodeGenMode::kCommSplit;
  const AlgorithmResult split = RunCodedTeraSort(config);
  config.codegen_mode = CodeGenMode::kBatched;
  const AlgorithmResult batched = RunCodedTeraSort(config);
  EXPECT_EQ(split.partitions, batched.partitions);
  // Identical shuffle traffic: the modes differ only in group setup.
  EXPECT_EQ(split.traffic.at(stage::kShuffle).mcast_bytes,
            batched.traffic.at(stage::kShuffle).mcast_bytes);
  // Both account one comm creation per multicast group.
  EXPECT_EQ(split.traffic.at(stage::kCodeGen).comm_creations,
            batched.traffic.at(stage::kCodeGen).comm_creations);
}

TEST(BatchedCodeGen, SweepMatchesStdSort) {
  for (const auto& [K, r] :
       std::vector<std::pair<int, int>>{{4, 2}, {5, 3}, {6, 2}, {5, 4}}) {
    SortConfig config;
    config.num_nodes = K;
    config.redundancy = r;
    config.num_records = 1500;
    config.codegen_mode = CodeGenMode::kBatched;
    const AlgorithmResult result = RunCodedTeraSort(config);
    auto expected = TeraGen(config.seed, config.distribution)
                        .generate(0, config.num_records);
    std::sort(expected.begin(), expected.end(), RecordLess);
    EXPECT_EQ(Concatenate(result), expected) << "K=" << K << " r=" << r;
  }
}

TEST(BatchedCodeGen, PricedCheaperThanCommSplit) {
  SortConfig config;
  config.num_nodes = 8;
  config.redundancy = 3;
  config.num_records = 4000;
  config.codegen_mode = CodeGenMode::kCommSplit;
  const auto split =
      SimulateRun(RunCodedTeraSort(config), CostModel{}, RunScale{1.0});
  config.codegen_mode = CodeGenMode::kBatched;
  const auto batched =
      SimulateRun(RunCodedTeraSort(config), CostModel{}, RunScale{1.0});
  EXPECT_LT(batched.stage(stage::kCodeGen),
            split.stage(stage::kCodeGen) / 10.0);
  // Everything else prices identically (same measured run shape).
  EXPECT_NEAR(batched.shuffle(), split.shuffle(), split.shuffle() * 0.01);
}

// ---- simmpi::Comm::create_groups ----

TEST(CreateGroups, MatchesSplitSemantics) {
  simmpi::World world(5);
  RunRecorder recorder(5);
  const std::vector<NodeMask> groups = AllSubsets(5, 3);
  RunOnCluster(world, recorder, [&](simmpi::Comm& comm, RunRecorder&) {
    auto mine = comm.create_groups(groups);
    EXPECT_EQ(mine.size(), Binomial(4, 2));
    for (auto& [mask, gc] : mine) {
      EXPECT_TRUE(Contains(mask, comm.my_global()));
      EXPECT_EQ(gc.size(), 3);
      // Ranks ascend with node id, and intra-group bcast works.
      EXPECT_EQ(gc.global(gc.rank()), comm.my_global());
      Buffer payload;
      if (gc.rank() == 0) payload.write_u32(mask);
      gc.bcast(0, payload);
      payload.rewind();
      EXPECT_EQ(payload.read_u32(), mask);
    }
  });
  EXPECT_EQ(world.pending_messages(), 0u);
}

TEST(CreateGroups, RejectsNonMemberMasks) {
  simmpi::World world(3);
  RunRecorder recorder(3);
  EXPECT_THROW(
      RunOnCluster(world, recorder,
                   [&](simmpi::Comm& comm, RunRecorder&) {
                     // Node 7 does not exist in a 3-node world; every
                     // node fails the same check after the id bcast.
                     (void)comm.create_groups({NodesToMask({0, 7})});
                   }),
      CheckError);
}

// ---- Per-node traffic and parallel-schedule pricing ----

TEST(NodeTraffic, TeraSortShuffleIsSymmetricUnderBalancedKeys) {
  SortConfig config;
  config.num_nodes = 4;
  config.num_records = 8000;
  config.distribution = KeyDistribution::kBalanced;
  const AlgorithmResult result = RunTeraSort(config);
  ASSERT_EQ(result.shuffle_node_traffic.size(), 4u);
  std::uint64_t tx_total = 0, rx_total = 0;
  for (const auto& nt : result.shuffle_node_traffic) {
    tx_total += nt.tx_bytes;
    rx_total += nt.rx_bytes;
    // Balanced keys: every node sends and receives ~(K-1)/K of its
    // file share.
    EXPECT_NEAR(static_cast<double>(nt.tx_bytes),
                static_cast<double>(nt.rx_bytes),
                static_cast<double>(nt.tx_bytes) * 0.02);
  }
  EXPECT_EQ(tx_total, result.traffic.at(stage::kShuffle).unicast_bytes);
  EXPECT_EQ(rx_total, tx_total);  // every unicast is received once
}

TEST(NodeTraffic, CodedMulticastRxIsRTimesTx) {
  SortConfig config;
  config.num_nodes = 6;
  config.redundancy = 2;
  config.num_records = 6000;
  config.distribution = KeyDistribution::kBalanced;
  const AlgorithmResult result = RunCodedTeraSort(config);
  std::uint64_t tx = 0, rx = 0;
  for (const auto& nt : result.shuffle_node_traffic) {
    tx += nt.tx_bytes;
    rx += nt.rx_bytes;
  }
  // Each multicast transmission is delivered to r receivers.
  EXPECT_EQ(rx, tx * 2);
  EXPECT_EQ(tx, result.traffic.at(stage::kShuffle).mcast_bytes);
}

TEST(ParallelSchedule, FullDuplexIsFastestSerialSlowest) {
  SortConfig config;
  config.num_nodes = 8;
  config.num_records = 8000;
  const AlgorithmResult result = RunTeraSort(config);
  const CostModel model;
  const RunScale scale{1.0};
  const double serial =
      SimulateRun(result, model, scale, ShuffleSchedule::kSerial).shuffle();
  const double half =
      SimulateRun(result, model, scale, ShuffleSchedule::kParallelHalfDuplex)
          .shuffle();
  const double full =
      SimulateRun(result, model, scale, ShuffleSchedule::kParallelFullDuplex)
          .shuffle();
  EXPECT_LT(full, half);
  EXPECT_LT(half, serial);
  // Parallel full duplex approaches serial / K for symmetric traffic.
  EXPECT_NEAR(full, serial / 8, serial / 8 * 0.25);
}

TEST(ParallelSchedule, CodingGainShrinksWhenLinksRunInParallel) {
  // The asynchronous-execution insight: receivers still take delivery
  // of their full demand, so parallel schedules cap the coded gain.
  SortConfig config;
  config.num_nodes = 8;
  config.num_records = 16000;
  config.distribution = KeyDistribution::kBalanced;
  const AlgorithmResult plain = RunTeraSort(config);
  config.redundancy = 3;
  const AlgorithmResult coded = RunCodedTeraSort(config);
  const CostModel model;
  const RunScale scale{1.0};
  const double serial_gain =
      SimulateRun(plain, model, scale).shuffle() /
      SimulateRun(coded, model, scale).shuffle();
  const double parallel_gain =
      SimulateRun(plain, model, scale, ShuffleSchedule::kParallelFullDuplex)
          .shuffle() /
      SimulateRun(coded, model, scale, ShuffleSchedule::kParallelFullDuplex)
          .shuffle();
  EXPECT_GT(serial_gain, 2.0);       // near r on the shared medium
  EXPECT_LT(parallel_gain, 1.5);     // rx-bound once links parallelize
}

// ---- Paper worked examples, end to end ----

TEST(PaperExamples, Fig1LoadsOnTheEngine) {
  // Fig. 1: K = 3 nodes, 6 files, 3 functions. Uncoded r=1 moves 12
  // values, uncoded r=2 moves 6, coded r=2 moves "3" packets (each
  // half-value segments XORed — 3 value-equivalents of transmission
  // load: (1/2)(1-2/3)*18 = 3).
  SortConfig config;
  config.num_nodes = 3;
  config.num_records = 18000;
  config.distribution = KeyDistribution::kBalanced;

  const AlgorithmResult uncoded = RunTeraSort(config);
  const double uncoded_frac =
      static_cast<double>(
          uncoded.traffic.at(stage::kShuffle).transmitted_bytes()) /
      static_cast<double>(config.total_bytes());
  EXPECT_NEAR(uncoded_frac, 12.0 / 18.0, 0.01);

  config.redundancy = 2;
  const AlgorithmResult coded = RunCodedTeraSort(config);
  const double coded_frac =
      static_cast<double>(
          coded.traffic.at(stage::kShuffle).transmitted_bytes()) /
      static_cast<double>(config.total_bytes());
  EXPECT_NEAR(coded_frac, 3.0 / 18.0, 0.01);
}

TEST(PaperExamples, Fig4PlacementDrivesTheRealRun) {
  // K=4, r=2: 6 files, each node maps 3, every record of the paper's
  // Fig. 4 layout ends up in exactly one sorted partition.
  SortConfig config;
  config.num_nodes = 4;
  config.redundancy = 2;
  config.num_records = 600;
  const AlgorithmResult result = RunCodedTeraSort(config);
  const NodeWork total = result.total_work();
  EXPECT_EQ(total.map_files, 4u * 3u);
  EXPECT_EQ(total.map_bytes, config.total_bytes() * 2);
  EXPECT_EQ(result.total_output_records(), config.num_records);
}

TEST(PaperExamples, SerialMulticastPacketOrderIsFig9b) {
  // Groups are visited in colex order and members broadcast in
  // ascending order within each group; with K=3, r=1 the groups are
  // {0,1}, {0,2}, {1,2} and message counts per node follow.
  SortConfig config;
  config.num_nodes = 3;
  config.redundancy = 1;
  config.num_records = 300;
  const AlgorithmResult result = RunCodedTeraSort(config);
  const auto shuffle = result.traffic.at(stage::kShuffle);
  EXPECT_EQ(shuffle.mcast_msgs, 6u);  // 3 groups x 2 members
  std::uint64_t tx = 0;
  for (const auto& nt : result.shuffle_node_traffic) tx += nt.tx_bytes;
  EXPECT_EQ(tx, shuffle.mcast_bytes);
}

// ---- Whole-pipeline invariants ----

TEST(Pipeline, EveryRecordLandsInExactlyOnePartition) {
  SortConfig config;
  config.num_nodes = 5;
  config.redundancy = 3;
  config.num_records = 5000;
  const AlgorithmResult result = RunCodedTeraSort(config);
  auto all = Concatenate(result);
  const auto input = TeraGen(config.seed, config.distribution)
                         .generate(0, config.num_records);
  EXPECT_TRUE(IsSortedPermutationOf(input, all));
}

TEST(Pipeline, SeedChangesDataButNotInvariants) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 31337ULL}) {
    SortConfig config;
    config.num_nodes = 4;
    config.redundancy = 2;
    config.num_records = 1200;
    config.seed = seed;
    const AlgorithmResult coded = RunCodedTeraSort(config);
    const AlgorithmResult plain = RunTeraSort(config);
    EXPECT_EQ(coded.partitions, plain.partitions) << "seed=" << seed;
  }
}

TEST(Pipeline, SimulatedTablesPreserveOrdering) {
  // The priced coded run must beat the priced baseline at the paper's
  // operating points — the qualitative claim of the whole paper.
  SortConfig config;
  config.num_nodes = 8;
  config.num_records = 16000;
  config.distribution = KeyDistribution::kBalanced;
  const auto baseline =
      SimulateRun(RunTeraSort(config), CostModel{},
                  PaperScale(config.num_records, 120'000'000));
  config.redundancy = 3;
  const auto coded =
      SimulateRun(RunCodedTeraSort(config), CostModel{},
                  PaperScale(config.num_records, 120'000'000));
  EXPECT_LT(coded.total(), baseline.total());
  EXPECT_GT(baseline.total() / coded.total(), 1.5);
}

}  // namespace
}  // namespace cts
