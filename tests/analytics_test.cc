// Tests for the analytics layer: load formulas, time model (paper
// eqs. 3-5), cost model calibration against the paper's tables, and
// report assembly.
#include <gtest/gtest.h>

#include "analytics/cost_model.h"
#include "analytics/loads.h"
#include "analytics/report.h"
#include "analytics/time_model.h"

namespace cts {
namespace {

// Paper Table I: 12 GB, K=16, 100 Mbps.
const MapReduceTimes kTable1{.map = 1.86, .shuffle = 945.72, .reduce = 10.47};

TEST(Loads, Formulas) {
  EXPECT_DOUBLE_EQ(TeraSortLoad(4), 0.75);
  EXPECT_DOUBLE_EQ(UncodedLoad(4, 2), 0.5);
  EXPECT_DOUBLE_EQ(CodedLoad(4, 2), 0.25);
  EXPECT_DOUBLE_EQ(CodingGain(4, 2), 2.0);
}

TEST(Loads, Fig1ExampleCounts) {
  // Paper Fig. 1: Q = 3 functions, N = 6 files, K = 3 nodes.
  // Uncoded (r=1): each node needs 4 values -> total 12 = Q*N*(1-1/K).
  // Redundant uncoded (r=2): 6 = Q*N*(1-2/3).
  // Coded (r=2): 3 = Q*N*(1/2)(1-2/3).
  const double QN = 3 * 6;
  EXPECT_DOUBLE_EQ(QN * UncodedLoad(3, 1), 12.0);
  EXPECT_DOUBLE_EQ(QN * UncodedLoad(3, 2), 6.0);
  EXPECT_DOUBLE_EQ(QN * CodedLoad(3, 2), 3.0);
}

TEST(Loads, CodedIsRTimesSmallerThanUncoded) {
  for (int K : {5, 10, 16, 20}) {
    for (int r = 1; r <= K; ++r) {
      EXPECT_NEAR(UncodedLoad(K, r),
                  CodedLoad(K, r) * static_cast<double>(r), 1e-12);
    }
  }
}

TEST(Loads, MonotoneDecreasingInR) {
  for (int r = 1; r < 16; ++r) {
    EXPECT_GT(CodedLoad(16, r), CodedLoad(16, r + 1));
    EXPECT_GT(UncodedLoad(16, r), UncodedLoad(16, r + 1));
  }
  EXPECT_DOUBLE_EQ(CodedLoad(16, 16), 0.0);
}

TEST(TimeModel, PaperSection3BAnalysis) {
  // "98.4% of the total execution time was spent in data shuffling,
  // which is 508.5x of the time spent in the Map stage."
  EXPECT_NEAR(kTable1.shuffle / kTable1.map, 508.5, 0.5);
  // "r* = ceil(sqrt(Tshuffle/Tmap)) = 23"
  EXPECT_EQ(static_cast<int>(std::ceil(std::sqrt(kTable1.shuffle /
                                                 kTable1.map))),
            23);
  // "we could theoretically save the total execution time by
  // approximately 10x" (with K large enough to allow r = 23).
  const double promised =
      kTable1.total() / PredictOptimalCodedTotal(kTable1);
  EXPECT_GT(promised, 9.0);
  EXPECT_LT(promised, 11.0);
}

TEST(TimeModel, OptimalRedundancyPicksBetterNeighbor) {
  const MapReduceTimes t{.map = 10, .shuffle = 160, .reduce = 5};
  // sqrt(16) = 4 exactly.
  EXPECT_EQ(OptimalRedundancy(t, 16), 4);
  // Clamped by K.
  EXPECT_EQ(OptimalRedundancy(t, 2), 2);
  // Free map work -> max redundancy.
  EXPECT_EQ(OptimalRedundancy({.map = 0, .shuffle = 100, .reduce = 1}, 8), 8);
}

TEST(TimeModel, PredictedTotalMatchesEq4) {
  const MapReduceTimes t{.map = 2, .shuffle = 100, .reduce = 7};
  EXPECT_DOUBLE_EQ(PredictCodedTotal(t, 5), 5 * 2 + 100.0 / 5 + 7);
  EXPECT_DOUBLE_EQ(PredictSpeedup(t, 5), 109.0 / 37.0);
}

TEST(TimeModel, Eq5IsLowerEnvelopeOfEq4) {
  const MapReduceTimes t{.map = 3, .shuffle = 300, .reduce = 4};
  const double best = PredictOptimalCodedTotal(t);
  for (int r = 1; r <= 30; ++r) {
    EXPECT_GE(PredictCodedTotal(t, r) + 1e-9, best);
  }
}

// ---- Cost model calibration: reproduce Table I from first
// principles (counters computed analytically, not measured) ----

TEST(CostModel, TableOneShuffleFromFirstPrinciples) {
  const CostModel model;
  // 12 GB over K=16: each node unicasts (15/16)*750 MB; serial total
  // is 11.25 GB.
  const double bytes = 12e9 * (15.0 / 16.0);
  const double t = model.unicast_seconds(bytes);
  EXPECT_NEAR(t, 945.72, 950 * 0.02);  // within 2%
}

TEST(CostModel, TableOneMapFromFirstPrinciples) {
  const CostModel model;
  NodeWork w;
  w.map_bytes = 750'000'000;  // per node
  w.map_files = 1;
  EXPECT_NEAR(model.map_seconds(w, RunScale{1.0}), 1.86, 0.05);
}

TEST(CostModel, TableOneReduceFromFirstPrinciples) {
  const CostModel model;
  NodeWork w;
  w.reduce_bytes = 750'000'000;
  EXPECT_NEAR(model.reduce_seconds(w, RunScale{1.0}, /*r=*/1), 10.47, 0.1);
}

TEST(CostModel, CodeGenMatchesTableGroups) {
  const CostModel model;
  // K=16: r=3 -> 1820 groups ~ 6.06 s; r=5 -> 8008 ~ 23.47 s.
  EXPECT_NEAR(model.codegen_seconds(1820), 6.06, 1.5);
  EXPECT_NEAR(model.codegen_seconds(8008), 23.47, 6.0);
  // K=20: r=5 -> 38760 ~ 140.91 s.
  EXPECT_NEAR(model.codegen_seconds(38760), 140.91, 20.0);
}

TEST(CostModel, MulticastPenaltyGrowsLogarithmically) {
  const CostModel model;
  const double base = model.unicast_seconds(1e9);
  EXPECT_DOUBLE_EQ(model.multicast_seconds(1e9, 1.0), base);
  const double at3 = model.multicast_seconds(1e9, 3.0);
  const double at5 = model.multicast_seconds(1e9, 5.0);
  const double at9 = model.multicast_seconds(1e9, 9.0);
  EXPECT_GT(at3, base);
  EXPECT_GT(at5, at3);
  // Logarithmic: tripling the fan-out (1 -> 3 -> 9) adds the same
  // penalty both times.
  EXPECT_NEAR(at9 - at3, at3 - base, base * 1e-9);
  // And the penalty magnitude matches the calibrated coefficient.
  EXPECT_NEAR(at3 / base, 1.0 + model.multicast_log_coeff * std::log2(3.0),
              1e-12);
}

TEST(CostModel, ScaleDividesByteTermsOnly) {
  const CostModel model;
  NodeWork w;
  w.map_bytes = 1'000'000;
  w.map_files = 10;
  const double full = model.map_seconds(w, RunScale{1.0});
  const double hundredth = model.map_seconds(w, RunScale{0.01});
  // Byte term scales 100x; the per-file term is unchanged.
  const double file_term = 10 * model.map_file_overhead_sec;
  EXPECT_NEAR(hundredth - file_term, (full - file_term) * 100.0, 1e-9);
}

TEST(CostModel, ShuffleSecondsUsesFanoutFromCounters) {
  const CostModel model;
  simmpi::ChannelCounters c;
  c.mcast_msgs = 10;
  c.mcast_bytes = 1'000'000;
  c.mcast_recipient_bytes = 3'000'000;  // fanout 3
  const double t = model.shuffle_seconds(c, RunScale{1.0});
  EXPECT_NEAR(t, model.multicast_seconds(1e6, 3.0), 1e-12);
  // Unicast-only counters take the plain path.
  simmpi::ChannelCounters u;
  u.unicast_bytes = 1'000'000;
  EXPECT_NEAR(model.shuffle_seconds(u, RunScale{1.0}),
              model.unicast_seconds(1e6), 1e-12);
}

TEST(Report, PaperScaleFraction) {
  const RunScale s = PaperScale(1'200'000, 120'000'000);
  EXPECT_DOUBLE_EQ(s.fraction, 0.01);
  EXPECT_DOUBLE_EQ(s.bytes(100), 10000.0);
  EXPECT_THROW(PaperScale(0, 1), CheckError);
}

TEST(Report, BreakdownAggregates) {
  StageBreakdown b;
  b.algorithm = "X";
  b.stages = {{stage::kCodeGen, 1},   {stage::kMap, 2},
              {stage::kPack, 3},      {stage::kEncode, 4},
              {stage::kShuffle, 5},   {stage::kUnpack, 6},
              {stage::kDecode, 7},    {stage::kReduce, 8}};
  EXPECT_DOUBLE_EQ(b.total(), 36);
  EXPECT_DOUBLE_EQ(b.pack_or_encode(), 7);
  EXPECT_DOUBLE_EQ(b.unpack_or_decode(), 13);
  EXPECT_DOUBLE_EQ(b.shuffle(), 5);
  EXPECT_DOUBLE_EQ(b.stage("nope"), 0);
}

TEST(Report, SimulateRunPricesAllStages) {
  // Hand-built result resembling a small uncoded run.
  AlgorithmResult result;
  result.algorithm = "TeraSort";
  result.config.num_nodes = 2;
  result.config.redundancy = 1;
  NodeWork w;
  w.map_bytes = 1000;
  w.map_files = 1;
  w.pack_bytes = 500;
  w.unpack_bytes = 500;
  w.reduce_bytes = 1000;
  result.work = {w, w};
  simmpi::ChannelCounters shuffle;
  shuffle.unicast_bytes = 1000;
  shuffle.unicast_msgs = 2;
  result.traffic[stage::kShuffle] = shuffle;

  const CostModel model;
  const StageBreakdown b = SimulateRun(result, model, RunScale{1.0});
  EXPECT_GT(b.stage(stage::kMap), 0);
  EXPECT_GT(b.stage(stage::kPack), 0);
  EXPECT_GT(b.shuffle(), 0);
  EXPECT_GT(b.stage(stage::kReduce), 0);
  EXPECT_DOUBLE_EQ(b.stage(stage::kEncode), 0);
  EXPECT_DOUBLE_EQ(b.stage(stage::kCodeGen), 0);
  EXPECT_NEAR(b.shuffle(), model.unicast_seconds(1000), 1e-12);
}

TEST(Report, TablePrintsSpeedupAgainstFirstRow) {
  StageBreakdown a;
  a.algorithm = "TeraSort";
  a.stages = {{stage::kShuffle, 100}};
  StageBreakdown b;
  b.algorithm = "CodedTeraSort";
  b.stages = {{stage::kShuffle, 50}};
  const TextTable t = BreakdownTable("demo", {a, b});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("2.00x"), std::string::npos);
  EXPECT_NE(s.find("TeraSort"), std::string::npos);
}

}  // namespace
}  // namespace cts
