// Tests for the synthesized pricing backend (src/simulate +
// job::Backend::kSimulated).
//
// The load-bearing property is EXACTNESS: for every configuration both
// backends can evaluate, kSimulated must price byte-identically to
// kPriced — same counters in, same doubles out, same JSON bytes out.
// The identity is asserted at three levels per cell: raw synthesized
// counters vs the live run's, the priced StageBreakdown doubles, and
// the serialized bench-JSON files compared byte-for-byte.

#include "simulate/simulate.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "gtest/gtest.h"
#include "job/job.h"

namespace cts {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Serializes a JobResult's flat metrics exactly the way the bench
// harnesses and ctsort do.
std::string MetricsJson(const job::JobResult& result,
                        const std::string& file_tag) {
  const std::string path =
      ::testing::TempDir() + "simulate_identity_" + file_tag + ".json";
  bench::JsonReport report("simulate_identity", path);
  report.add_all(result.metrics("cell"));
  EXPECT_TRUE(report.write());
  return Slurp(path);
}

void ExpectSameCounters(const AlgorithmResult& live,
                        const AlgorithmResult& synth) {
  EXPECT_EQ(live.algorithm, synth.algorithm);
  EXPECT_EQ(live.config.redundancy, synth.config.redundancy);
  ASSERT_EQ(live.work.size(), synth.work.size());
  for (std::size_t k = 0; k < live.work.size(); ++k) {
    SCOPED_TRACE("node " + std::to_string(k));
    const NodeWork& a = live.work[k];
    const NodeWork& b = synth.work[k];
    EXPECT_EQ(a.map_bytes, b.map_bytes);
    EXPECT_EQ(a.map_files, b.map_files);
    EXPECT_EQ(a.pack_bytes, b.pack_bytes);
    EXPECT_EQ(a.unpack_bytes, b.unpack_bytes);
    EXPECT_EQ(a.reduce_bytes, b.reduce_bytes);
    EXPECT_EQ(a.codec.packets_encoded, b.codec.packets_encoded);
    EXPECT_EQ(a.codec.encode_xor_bytes, b.codec.encode_xor_bytes);
    EXPECT_EQ(a.codec.encode_payload_bytes, b.codec.encode_payload_bytes);
    EXPECT_EQ(a.codec.packets_decoded, b.codec.packets_decoded);
    EXPECT_EQ(a.codec.decode_xor_bytes, b.codec.decode_xor_bytes);
    EXPECT_EQ(a.codec.decoded_bytes, b.codec.decoded_bytes);
  }
  const auto shuffle = [](const AlgorithmResult& r) {
    const auto it = r.traffic.find(stage::kShuffle);
    return it == r.traffic.end() ? simmpi::ChannelCounters{} : it->second;
  };
  const simmpi::ChannelCounters a = shuffle(live);
  const simmpi::ChannelCounters b = shuffle(synth);
  EXPECT_EQ(a.unicast_msgs, b.unicast_msgs);
  EXPECT_EQ(a.unicast_bytes, b.unicast_bytes);
  EXPECT_EQ(a.mcast_msgs, b.mcast_msgs);
  EXPECT_EQ(a.mcast_bytes, b.mcast_bytes);
  EXPECT_EQ(a.mcast_recipient_bytes, b.mcast_recipient_bytes);
  // CodeGen: the pricing reads only the communicator count (the
  // kBatched id-base broadcast's 4 wire bytes are not modeled).
  const auto creations = [](const AlgorithmResult& r) {
    const auto it = r.traffic.find(stage::kCodeGen);
    return it == r.traffic.end() ? std::uint64_t{0}
                                 : it->second.comm_creations;
  };
  EXPECT_EQ(creations(live), creations(synth));
  ASSERT_EQ(live.shuffle_node_traffic.size(),
            synth.shuffle_node_traffic.size());
  for (std::size_t k = 0; k < live.shuffle_node_traffic.size(); ++k) {
    EXPECT_EQ(live.shuffle_node_traffic[k].tx_bytes,
              synth.shuffle_node_traffic[k].tx_bytes)
        << "node " << k;
    EXPECT_EQ(live.shuffle_node_traffic[k].rx_bytes,
              synth.shuffle_node_traffic[k].rx_bytes)
        << "node " << k;
  }
}

struct Cell {
  std::string name;
  std::string algorithm;
  SortConfig config;
  ShuffleSchedule schedule = ShuffleSchedule::kSerial;
};

std::vector<Cell> IdentityCells() {
  std::vector<Cell> cells;
  const auto add = [&](std::string name, std::string algorithm,
                       auto mutate,
                       ShuffleSchedule schedule = ShuffleSchedule::kSerial) {
    Cell cell;
    cell.name = std::move(name);
    cell.algorithm = std::move(algorithm);
    cell.config.num_records = 6000;
    mutate(cell.config);
    cell.schedule = schedule;
    cells.push_back(std::move(cell));
  };
  add("terasort_k4", "terasort", [](SortConfig& c) { c.num_nodes = 4; });
  add("terasort_k7_sampled_overlapped", "terasort", [](SortConfig& c) {
    c.num_nodes = 7;
    c.partitioner = PartitionerKind::kSampled;
    c.shuffle_sync = ShuffleSync::kOverlapped;
  });
  add(
      "terasort_k16_parallel", "terasort",
      [](SortConfig& c) { c.num_nodes = 16; },
      ShuffleSchedule::kParallelFullDuplex);
  add("coded_k4_r2", "coded", [](SortConfig& c) {
    c.num_nodes = 4;
    c.redundancy = 2;
  });
  add("coded_k5_r3_batched_balanced", "coded", [](SortConfig& c) {
    c.num_nodes = 5;
    c.redundancy = 3;
    c.codegen_mode = CodeGenMode::kBatched;
    c.distribution = KeyDistribution::kBalanced;
  });
  add("coded_k6_r5_overlapped", "coded", [](SortConfig& c) {
    c.num_nodes = 6;
    c.redundancy = 5;
    c.shuffle_sync = ShuffleSync::kOverlapped;
  });
  // r == K: degenerate fully-replicated placement, shuffle-free.
  add("coded_k5_r5", "coded", [](SortConfig& c) {
    c.num_nodes = 5;
    c.redundancy = 5;
  });
  add(
      "coded_k16_r3_parallel", "coded",
      [](SortConfig& c) {
        c.num_nodes = 16;
        c.redundancy = 3;
        c.codegen_mode = CodeGenMode::kBatched;
      },
      ShuffleSchedule::kParallelHalfDuplex);
  return cells;
}

TEST(SimulatedBackend, ByteIdenticalToPricedAcrossCells) {
  for (const Cell& cell : IdentityCells()) {
    SCOPED_TRACE(cell.name);
    job::JobSpec spec;
    spec.algorithm = cell.algorithm;
    spec.config = cell.config;
    spec.schedule = cell.schedule;

    spec.backend = job::Backend::kPriced;
    const job::JobResult priced = job::RunJob(spec);
    spec.backend = job::Backend::kSimulated;
    const job::JobResult simulated = job::RunJob(spec);

    ASSERT_TRUE(simulated.error.empty()) << simulated.error;
    ASSERT_TRUE(priced.priced);
    ASSERT_TRUE(simulated.priced);
    ExpectSameCounters(*priced.execution, *simulated.execution);
    EXPECT_EQ(priced.metrics("cell"), simulated.metrics("cell"));
    EXPECT_EQ(MetricsJson(priced, cell.name + "_priced"),
              MetricsJson(simulated, cell.name + "_simulated"));
  }
}

// The mask-width boundary: K = 63 and 64 are the widest placements the
// live engine can enumerate, so the synthesized path must agree there
// too (regression for the old 32-bit NodeMask cap).
TEST(SimulatedBackend, MatchesLiveAtMaskWidthBoundary) {
  for (const int K : {63, 64}) {
    SCOPED_TRACE(K);
    job::JobSpec spec;
    spec.algorithm = "coded";
    spec.config.num_nodes = K;
    spec.config.redundancy = 1;
    spec.config.num_records = 3000;
    spec.config.codegen_mode = CodeGenMode::kBatched;

    spec.backend = job::Backend::kPriced;
    const job::JobResult priced = job::RunJob(spec);
    spec.backend = job::Backend::kSimulated;
    const job::JobResult simulated = job::RunJob(spec);

    ASSERT_TRUE(simulated.error.empty()) << simulated.error;
    ExpectSameCounters(*priced.execution, *simulated.execution);
    EXPECT_EQ(priced.metrics("cell"), simulated.metrics("cell"));
  }
}

// K ~ 1000: far past NodeMask width and thread-harness reach. Checks
// conservation laws instead of a live twin.
TEST(SimulatedBackend, PricesCodedRunAtK1000) {
  job::JobSpec spec;
  spec.algorithm = "coded";
  spec.backend = job::Backend::kSimulated;
  spec.config.num_nodes = 1000;
  spec.config.redundancy = 3;
  spec.config.num_records = 20000;
  const job::JobResult result = job::RunJob(spec);
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_TRUE(result.priced);
  EXPECT_GT(result.makespan, 0.0);

  const AlgorithmResult& run = *result.execution;
  const int K = spec.config.num_nodes;
  const int r = spec.config.redundancy;
  // Every record is mapped r times and reduced once.
  std::uint64_t map_bytes = 0;
  std::uint64_t reduce_bytes = 0;
  for (const NodeWork& w : run.work) {
    map_bytes += w.map_bytes;
    reduce_bytes += w.reduce_bytes;
  }
  EXPECT_EQ(map_bytes, spec.config.num_records * kRecordBytes *
                           static_cast<std::uint64_t>(r));
  EXPECT_EQ(reduce_bytes, spec.config.num_records * kRecordBytes);
  // C(1000, 4) groups, r+1 multicasts each; one communicator per group.
  const std::uint64_t groups = Binomial(K, r + 1);
  const simmpi::ChannelCounters shuffle = run.traffic.at(stage::kShuffle);
  EXPECT_EQ(shuffle.mcast_msgs,
            groups * static_cast<std::uint64_t>(r + 1));
  EXPECT_EQ(shuffle.mcast_recipient_bytes,
            shuffle.mcast_bytes * static_cast<std::uint64_t>(r));
  EXPECT_EQ(run.traffic.at(stage::kCodeGen).comm_creations, groups);
  // Per-node uplink bytes sum to the multicast wire bytes.
  std::uint64_t tx = 0;
  ASSERT_EQ(run.shuffle_node_traffic.size(), static_cast<std::size_t>(K));
  for (const simmpi::NodeTraffic& t : run.shuffle_node_traffic) {
    tx += t.tx_bytes;
  }
  EXPECT_EQ(tx, shuffle.mcast_bytes);
}

// Structured errors, never aborts (the BinomialOr contract end-to-end).
TEST(SimulatedBackend, OverflowAndUnsupportedSpecsReturnErrors) {
  job::JobSpec spec;
  spec.backend = job::Backend::kSimulated;

  // C(1000, 8) > 2^64: placement arithmetic cannot be represented.
  spec.algorithm = "coded";
  spec.config.num_nodes = 1000;
  spec.config.redundancy = 8;
  const job::JobResult overflow = job::RunJob(spec);
  EXPECT_NE(overflow.error.find("overflows 64 bits"), std::string::npos)
      << overflow.error;
  EXPECT_FALSE(overflow.priced);
  EXPECT_EQ(overflow.makespan, 0.0);
  EXPECT_EQ(overflow.execution, nullptr);

  // CMR has no synthesized pricing.
  spec.algorithm = "cmr";
  spec.config = SortConfig{};
  EXPECT_FALSE(job::RunJob(spec).error.empty());

  // Distributed sampling needs the live collective.
  spec.algorithm = "terasort";
  spec.config = SortConfig{};
  spec.config.partitioner = PartitionerKind::kDistributedSampled;
  const job::JobResult sampled = job::RunJob(spec);
  EXPECT_NE(sampled.error.find("kDistributedSampled"), std::string::npos)
      << sampled.error;

  // Redundancy outside 1 <= r <= K.
  spec.algorithm = "coded";
  spec.config = SortConfig{};
  spec.config.redundancy = spec.config.num_nodes + 1;
  EXPECT_FALSE(job::RunJob(spec).error.empty());
}

}  // namespace
}  // namespace cts
