// Fleet planner tests (src/plan): the acceptance sweep — an SLO query
// answered over a 200+ cell architecture matrix with at most one live
// execution per (algorithm, r, K) — plus the quantile helper, CSV /
// metric shapes, and axis validation.
#include "plan/planner.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "job/job.h"

namespace cts::plan {
namespace {

TEST(SampleQuantileTest, NearestRank) {
  const std::vector<double> v = {10, 1, 9, 2, 8, 3, 7, 4, 6, 5};
  EXPECT_DOUBLE_EQ(SampleQuantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(SampleQuantile(v, 0.99), 10.0);
  EXPECT_DOUBLE_EQ(SampleQuantile(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(SampleQuantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(SampleQuantile(v, 0.1), 1.0);
  EXPECT_DOUBLE_EQ(SampleQuantile(v, 0.11), 2.0);
  // Out-of-range q clamps instead of indexing out of bounds.
  EXPECT_DOUBLE_EQ(SampleQuantile(v, -3.0), 1.0);
  EXPECT_DOUBLE_EQ(SampleQuantile(v, 7.0), 10.0);
  EXPECT_DOUBLE_EQ(SampleQuantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(SampleQuantile({42.0}, 0.99), 42.0);
}

// The fixed-seed acceptance grid: 2 algorithms × 4 topologies ×
// 4 stragglers × 2 policies × 2 instances × 2 cluster sizes.
PlanAxes AcceptanceAxes() {
  PlanAxes axes;
  axes.algorithms = {"terasort", "coded"};
  axes.redundancies = {3};
  axes.node_counts = {8, 16};
  axes.topologies = {"", "4:4", "4:2:2:2", "4:4:0:0:aware"};
  axes.stragglers = {"none", "slow:0:2", "slow:1:3", "exp:0.5:1:7"};
  axes.policies = {"none", "spec"};
  axes.instances = {{"m3.large", 1.0, 0.133}, {"c3.2xlarge", 2.0, 0.42}};
  axes.records = 20000;
  axes.seed = 2017;
  return axes;
}

TEST(PlannerTest, AnswersSloQueryOverLargeMatrixWithMinimalExecutions) {
  const PlanAxes axes = AcceptanceAxes();
  PlanQuery query;  // infinite SLO: everything meets, winner = cheapest
  job::RunCache cache;
  const PlanResult result = RunPlan(axes, query, cache);
  ASSERT_TRUE(result.error.empty()) << result.error;

  // The acceptance floor: a 200+ cell matrix answered from one live
  // execution per (algorithm, r, K) — 2 algo-axis entries × 2 Ks.
  EXPECT_GE(result.cells, 200);
  EXPECT_EQ(cache.executions(), 4);
  EXPECT_EQ(result.executions, 4);

  // 2 algos × 4 topologies × 2 policies × 2 instances × 2 Ks.
  ASSERT_EQ(result.rows.size(), 64u);
  for (const PlanRow& row : result.rows) {
    EXPECT_EQ(row.scenarios, 4) << row.label();
    EXPECT_GT(row.quantile_makespan, 0.0) << row.label();
    EXPECT_GE(row.quantile_makespan, row.mean_makespan) << row.label();
    EXPECT_GE(row.worst_makespan, row.quantile_makespan) << row.label();
    EXPECT_GT(row.usd_compute, 0.0) << row.label();
    EXPECT_NEAR(row.usd, row.usd_compute + row.usd_egress, 1e-12);
    EXPECT_TRUE(row.meets_slo) << row.label();
    // Cross-rack egress prices locality: zero on the single-rack
    // topology, positive whenever the shuffle crosses racks.
    if (row.topology == "flat") {
      EXPECT_DOUBLE_EQ(row.usd_egress, 0.0) << row.label();
    } else {
      EXPECT_GT(row.usd_egress, 0.0) << row.label();
    }
  }

  // Rows arrive sorted by the query key (usd, ties by label).
  for (std::size_t i = 1; i < result.rows.size(); ++i) {
    EXPECT_LE(result.rows[i - 1].usd, result.rows[i].usd);
  }

  // Rack-aware multicast must never pay more cross-rack egress than
  // the rack-oblivious broadcast of the same architecture.
  std::set<std::string> seen;
  for (const PlanRow& row : result.rows) {
    if (row.topology != "4:4") continue;
    for (const PlanRow& aware : result.rows) {
      if (aware.topology == "4:4:0:0:aware" &&
          aware.algorithm == row.algorithm &&
          aware.num_nodes == row.num_nodes && aware.policy == row.policy &&
          aware.instance == row.instance) {
        EXPECT_LE(aware.usd_egress, row.usd_egress + 1e-12) << row.label();
        seen.insert(row.label());
      }
    }
  }
  EXPECT_EQ(seen.size(), 16u);  // every "4:4" row had its aware twin

  // The winner is pinned on this fixed seed grid: the cheapest row
  // overall (the SLO is infinite), deterministic across runs.
  ASSERT_NE(result.winner, -1);
  const PlanRow* winner = result.winner_row();
  ASSERT_NE(winner, nullptr);
  EXPECT_EQ(winner->label(), result.rows.front().label());
  // Speculative re-execution trims the straggler tail, so the
  // q99-priced cost beats the unmitigated rows; m3.large's rate beats
  // the 2x-speed instance whose makespan does not halve.
  EXPECT_EQ(winner->label(), "terasort@K8/flat/spec/m3.large");

  // An unmeetable SLO finds no winner — and, answered off the same
  // cache, costs zero further executions.
  PlanQuery strict;
  strict.slo_seconds = 1e-9;
  const PlanResult none = RunPlan(axes, strict, cache);
  ASSERT_TRUE(none.error.empty()) << none.error;
  EXPECT_EQ(none.winner, -1);
  EXPECT_EQ(none.winner_row(), nullptr);
  EXPECT_EQ(cache.executions(), 4);
  for (const PlanRow& row : none.rows) EXPECT_FALSE(row.meets_slo);
}

TEST(PlannerTest, MeetsOnlyAndMaxUsdFilterRows) {
  PlanAxes axes;
  axes.algorithms = {"terasort"};
  axes.node_counts = {8};
  axes.stragglers = {"none", "slow:0:4"};
  axes.records = 20000;
  job::RunCache cache;

  PlanQuery all;
  const PlanResult everything = RunPlan(axes, all, cache);
  ASSERT_TRUE(everything.error.empty()) << everything.error;
  ASSERT_EQ(everything.rows.size(), 1u);
  const double usd = everything.rows[0].usd;
  const double makespan = everything.rows[0].quantile_makespan;

  PlanQuery strict;
  strict.slo_seconds = makespan / 2;
  strict.meets_only = true;
  EXPECT_TRUE(RunPlan(axes, strict, cache).rows.empty());

  PlanQuery cheap;
  cheap.max_usd = usd / 2;
  EXPECT_TRUE(RunPlan(axes, cheap, cache).rows.empty());

  // The whole triple of queries ran off one execution.
  EXPECT_EQ(cache.executions(), 1);
}

TEST(PlannerTest, CsvAndMetricsCarryEveryRow) {
  PlanAxes axes;
  axes.algorithms = {"terasort", "coded"};
  axes.redundancies = {3};
  axes.node_counts = {8};
  axes.records = 20000;
  job::RunCache cache;
  const PlanResult result = RunPlan(axes, PlanQuery{}, cache);
  ASSERT_TRUE(result.error.empty()) << result.error;
  ASSERT_EQ(result.rows.size(), 2u);

  std::ostringstream csv;
  WriteCsv(result, csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("algorithm,r,K,topology,policy,instance,scenarios,"
                      "mean_s,q99_s,worst_s,node_hours,usd_compute,"
                      "usd_egress,usd,cross_rack_gb,meets_slo"),
            std::string::npos);
  int lines = 0;
  for (const char c : text) lines += (c == '\n');
  EXPECT_EQ(lines, 3);  // header + one line per row

  const std::map<std::string, double> metrics = PlanMetrics(result);
  EXPECT_EQ(metrics.at("plan/executions"), 2);
  EXPECT_GT(metrics.at("plan/cells"), 0);
  EXPECT_EQ(metrics.at("plan/rows"), 2);
  ASSERT_NE(result.winner_row(), nullptr);
  EXPECT_EQ(metrics.at("winner/usd"), result.winner_row()->usd);
  for (const PlanRow& row : result.rows) {
    EXPECT_EQ(metrics.at(row.label() + "/usd"), row.usd);
    EXPECT_EQ(metrics.at(row.label() + "/makespan"), row.quantile_makespan);
  }
}

TEST(PlannerTest, RedundancyAxisSkipsAlgorithmsWithoutTheKnob) {
  PlanAxes axes;
  axes.algorithms = {"terasort", "coded"};
  axes.redundancies = {1, 3};
  axes.node_counts = {6};
  axes.records = 20000;
  job::RunCache cache;
  const PlanResult result = RunPlan(axes, PlanQuery{}, cache);
  ASSERT_TRUE(result.error.empty()) << result.error;
  // terasort has no redundancy knob: one row regardless of the r list;
  // coded expands per r.
  std::set<std::string> algos;
  for (const PlanRow& row : result.rows) algos.insert(row.algorithm);
  EXPECT_EQ(algos,
            (std::set<std::string>{"terasort", "coded_r1", "coded_r3"}));
  EXPECT_EQ(cache.executions(), 3);
}

TEST(PlannerTest, RejectsBadAxes) {
  job::RunCache cache;
  PlanAxes axes;
  axes.algorithms.clear();
  EXPECT_FALSE(RunPlan(axes, PlanQuery{}, cache).error.empty());

  axes = PlanAxes{};
  axes.node_counts = {1};
  EXPECT_FALSE(RunPlan(axes, PlanQuery{}, cache).error.empty());

  axes = PlanAxes{};
  axes.topologies = {"not-a-topology"};
  EXPECT_FALSE(RunPlan(axes, PlanQuery{}, cache).error.empty());

  axes = PlanAxes{};
  axes.stragglers = {"slow:999:2"};  // node out of range
  EXPECT_FALSE(RunPlan(axes, PlanQuery{}, cache).error.empty());

  axes = PlanAxes{};
  axes.policies = {"wat"};
  EXPECT_FALSE(RunPlan(axes, PlanQuery{}, cache).error.empty());

  axes = PlanAxes{};
  axes.instances = {{"free-lunch", -1.0, 0.1}};
  EXPECT_FALSE(RunPlan(axes, PlanQuery{}, cache).error.empty());

  axes = PlanAxes{};
  axes.node_counts = {4};
  axes.redundancies = {9};  // r > K - 1 for every algorithm with the knob
  axes.algorithms = {"coded"};
  EXPECT_FALSE(RunPlan(axes, PlanQuery{}, cache).error.empty());

  axes = PlanAxes{};
  PlanQuery query;
  query.sort_key = "vibes";
  EXPECT_FALSE(RunPlan(axes, query, cache).error.empty());

  // None of the rejected axes reached an execution.
  EXPECT_EQ(cache.executions(), 0);
}

}  // namespace
}  // namespace cts::plan
