// The run ledger (src/obs/ledger.h): exact hex-float round-trips —
// write -> parse -> re-emit must reproduce every double bit for bit
// and every line byte for byte — plus the ctstat regression gate: an
// injected >15% makespan growth on a fingerprint must make
// `ctstat --check` exit nonzero (driven through the real binary via
// CTSTAT_BIN, which CMake points at the built ctstat).
#include <sys/wait.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/ledger.h"
#include "obs/timeline.h"

namespace cts::obs {
namespace {

LedgerEntry SampleEntry() {
  LedgerEntry e;
  e.bench = "ctsort";
  e.run = "terasort";
  e.fingerprint = "00c0ffee00c0ffee";
  e.code_version = "deadbee";
  e.axes = {{"K", "4"}, {"backend", "priced"}};
  e.values = {{"terasort/total_s", 123.456}};
  e.timeline = {{"des/inflight_flows", "0123456789abcdef"}};
  return e;
}

TEST(Ledger, HexFloatIsExact) {
  const std::vector<double> nasty = {
      0.0,
      -0.0,
      1.0 / 3.0,
      0.1,
      3.141592653589793,
      1e308,
      -1.7976931348623157e308,   // -DBL_MAX
      2.2250738585072014e-308,   // DBL_MIN
      4.9406564584124654e-324,   // smallest denormal
      -4.9406564584124654e-324,
      std::numeric_limits<double>::infinity(),
  };
  for (const double v : nasty) {
    const std::string text = HexFloat(v);
    char* end = nullptr;
    const double back = std::strtod(text.c_str(), &end);
    ASSERT_NE(end, text.c_str()) << text;
    EXPECT_EQ(*end, '\0') << text;
    std::uint64_t vb = 0, bb = 0;
    std::memcpy(&vb, &v, 8);
    std::memcpy(&bb, &back, 8);
    EXPECT_EQ(vb, bb) << text;  // bitwise, so -0.0 stays -0.0
  }
}

TEST(Ledger, SerializeParseRoundTripsBytes) {
  LedgerEntry e = SampleEntry();
  e.values["nasty/third"] = 1.0 / 3.0;
  e.values["nasty/neg_zero"] = -0.0;
  e.values["nasty/denormal"] = 4.9406564584124654e-324;
  e.axes["quote\"and\\slash"] = "tab\there";

  const std::string line = SerializeEntry(e);
  LedgerEntry parsed;
  std::string error;
  ASSERT_TRUE(ParseEntry(line, &parsed, &error)) << error;
  EXPECT_TRUE(parsed == e);
  EXPECT_EQ(SerializeEntry(parsed), line);

  // -0.0 must survive as -0.0, not 0.0: map equality uses ==, which
  // aliases the two, so check the sign bit explicitly.
  EXPECT_TRUE(std::signbit(parsed.values.at("nasty/neg_zero")));
}

TEST(Ledger, ParseRejectsMalformedLines) {
  LedgerEntry out;
  std::string error;
  EXPECT_FALSE(ParseEntry("", &out, &error));
  EXPECT_FALSE(ParseEntry("{}", &out, &error));
  EXPECT_FALSE(ParseEntry("{\"unknown\":\"x\"}", &out, &error));
  EXPECT_FALSE(ParseEntry("{\"bench\":\"b\"} trailing", &out, &error));
  EXPECT_FALSE(
      ParseEntry("{\"values\":{\"k\":\"not-a-number\"}}", &out, &error));
  EXPECT_FALSE(
      ParseEntry("{\"axes\":{\"k\":\"a\",\"k\":\"b\"}}", &out, &error));
}

TEST(Ledger, AppendAndReadBack) {
  const std::string path = "ledger_test_appends.jsonl";
  std::remove(path.c_str());
  LedgerEntry first = SampleEntry();
  LedgerEntry second = SampleEntry();
  second.run = "coded";
  second.values["coded/total_s"] = 0.25;
  ASSERT_TRUE(AppendEntry(path, first));
  ASSERT_TRUE(AppendEntry(path, second));

  std::string error;
  const std::vector<LedgerEntry> entries = ReadLedger(path, &error);
  EXPECT_EQ(error, "");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0] == first);
  EXPECT_TRUE(entries[1] == second);
  std::remove(path.c_str());
}

TEST(Ledger, DigestTimelineFillsSeriesDigests) {
  Timeline tl;
  tl.Sample("des/inflight_flows", 0, 1);
  tl.Sample("live/arena_hit_rate", 0, 0.5);
  LedgerEntry e;
  DigestTimeline(tl, e);
  ASSERT_EQ(e.timeline.size(), 2u);
  EXPECT_EQ(e.timeline.at("des/inflight_flows"),
            HexDigest(tl.SeriesDigest("des/inflight_flows")));
  EXPECT_EQ(e.timeline.at("des/inflight_flows").size(), 16u);
}

TEST(Ledger, FingerprintIsStable) {
  EXPECT_EQ(Fingerprint64("abc"), Fingerprint64("abc"));
  EXPECT_NE(Fingerprint64("abc"), Fingerprint64("abd"));
  EXPECT_EQ(HexDigest(0).size(), 16u);
  EXPECT_EQ(HexDigest(0xdeadbeefULL),
            "00000000deadbeef");
}

// ---- The built ctstat binary, end to end ----

class CtstatGate : public ::testing::Test {
 protected:
  void SetUp() override {
    bin_ = std::getenv("CTSTAT_BIN");
    if (bin_ == nullptr || *bin_ == '\0') {
      GTEST_SKIP() << "CTSTAT_BIN not set (run through ctest)";
    }
  }

  int Run(const std::string& args) {
    const std::string cmd = std::string(bin_) + " " + args;
    const int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  // Two entries per fingerprint: baseline 100 s, candidate
  // 100 * (1 + growth) s.
  static void WriteGateLedger(const std::string& path, double growth) {
    std::remove(path.c_str());
    LedgerEntry base = SampleEntry();
    base.values = {{"terasort/total_s", 100.0}};
    LedgerEntry candidate = base;
    candidate.values = {{"terasort/total_s", 100.0 * (1.0 + growth)}};
    ASSERT_TRUE(AppendEntry(path, base));
    ASSERT_TRUE(AppendEntry(path, candidate));
  }

  const char* bin_ = nullptr;
};

TEST_F(CtstatGate, CheckFailsOnInjectedRegression) {
  const std::string path = "ledger_test_regressed.jsonl";
  WriteGateLedger(path, /*growth=*/0.20);  // 20% > the 15% threshold
  EXPECT_EQ(Run("--ledger=" + path + " --check --quiet > /dev/null 2>&1"),
            1);
  std::remove(path.c_str());
}

TEST_F(CtstatGate, CheckPassesWithinThreshold) {
  const std::string path = "ledger_test_clean.jsonl";
  WriteGateLedger(path, /*growth=*/0.05);
  EXPECT_EQ(Run("--ledger=" + path + " --check --quiet > /dev/null 2>&1"),
            0);
  std::remove(path.c_str());
}

TEST_F(CtstatGate, UsageErrorsExitTwo) {
  EXPECT_EQ(Run("--check --quiet > /dev/null 2>&1"), 2);  // no --ledger
  EXPECT_EQ(Run("--ledger=ledger_test_does_not_exist.jsonl --quiet "
                "> /dev/null 2>&1"),
            2);
}

// `ctstat --re-emit` must reproduce a well-formed ledger byte for
// byte — the end-to-end form of the exactness rule.
TEST_F(CtstatGate, ReEmitIsByteIdentical) {
  const std::string path = "ledger_test_reemit.jsonl";
  const std::string out_path = "ledger_test_reemit.out";
  std::remove(path.c_str());
  LedgerEntry e = SampleEntry();
  e.values["nasty/third"] = 1.0 / 3.0;
  e.values["nasty/denormal"] = 4.9406564584124654e-324;
  ASSERT_TRUE(AppendEntry(path, e));
  e.run = "coded";
  e.values["nasty/third"] = -1.0 / 3.0;
  ASSERT_TRUE(AppendEntry(path, e));

  ASSERT_EQ(Run("--ledger=" + path + " --re-emit --quiet > " + out_path),
            0);
  const auto slurp = [](const std::string& p) {
    std::ifstream in(p);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  EXPECT_EQ(slurp(out_path), slurp(path));
  std::remove(path.c_str());
  std::remove(out_path.c_str());
}

}  // namespace
}  // namespace cts::obs
