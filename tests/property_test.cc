// Randomized (seeded, reproducible) property sweep over the
// configuration space: random K, r, record counts, seeds,
// distributions, partitioners and codegen modes. Every sampled
// configuration must satisfy the full battery of whole-system
// invariants. This catches interaction bugs that the hand-picked
// parameterized sweeps can miss (e.g. skew x tiny files x batched
// codegen).
#include <gtest/gtest.h>

#include <algorithm>

#include "analytics/loads.h"
#include "cmr/cmr.h"
#include "codedterasort/coded_terasort.h"
#include "common/random.h"
#include "keyvalue/teravalidate.h"
#include "terasort/terasort.h"

namespace cts {
namespace {

struct RandomConfig {
  SortConfig sort;
  bool compare_with_plain;  // partitioner identical across algorithms?
};

RandomConfig Draw(Xoshiro256& rng) {
  RandomConfig rc;
  SortConfig& c = rc.sort;
  c.num_nodes = 2 + static_cast<int>(rng.below(7));           // 2..8
  c.redundancy = 1 + static_cast<int>(
                         rng.below(static_cast<std::uint64_t>(c.num_nodes)));
  c.num_records = rng.below(3000);  // includes 0 and < K cases
  c.seed = rng();
  switch (rng.below(6)) {
    case 0: c.distribution = KeyDistribution::kUniform; break;
    case 1: c.distribution = KeyDistribution::kSorted; break;
    case 2: c.distribution = KeyDistribution::kReverseSorted; break;
    case 3: c.distribution = KeyDistribution::kSkewed; break;
    case 4: c.distribution = KeyDistribution::kFewDistinct; break;
    default: c.distribution = KeyDistribution::kBalanced; break;
  }
  switch (rng.below(3)) {
    case 0:
      c.partitioner = PartitionerKind::kRange;
      rc.compare_with_plain = true;
      break;
    case 1:
      c.partitioner = PartitionerKind::kSampled;
      c.sample_size = 1 + rng.below(500);
      rc.compare_with_plain = true;
      break;
    default:
      // Distributed sampling derives different splitters for different
      // placements, so partition contents differ between algorithms
      // (the flattened output must still agree).
      c.partitioner = PartitionerKind::kDistributedSampled;
      c.sample_size = 1 + rng.below(500);
      rc.compare_with_plain = false;
      break;
  }
  c.codegen_mode =
      rng.below(2) == 0 ? CodeGenMode::kCommSplit : CodeGenMode::kBatched;
  // Half the sweep exercises the overlapped (nonblocking) shuffle;
  // every invariant below must hold identically for it.
  c.shuffle_sync =
      rng.below(2) == 0 ? ShuffleSync::kBarrier : ShuffleSync::kOverlapped;
  return rc;
}

std::vector<Record> Flatten(const AlgorithmResult& r) {
  std::vector<Record> all;
  for (const auto& p : r.partitions) {
    all.insert(all.end(), p.begin(), p.end());
  }
  return all;
}

class RandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomSweep, AllInvariantsHold) {
  Xoshiro256 rng(0xC0DED + static_cast<std::uint64_t>(GetParam()));
  const RandomConfig rc = Draw(rng);
  const SortConfig& config = rc.sort;
  SCOPED_TRACE(::testing::Message()
               << "K=" << config.num_nodes << " r=" << config.redundancy
               << " records=" << config.num_records
               << " dist=" << static_cast<int>(config.distribution)
               << " part=" << static_cast<int>(config.partitioner)
               << " codegen=" << static_cast<int>(config.codegen_mode)
               << " sync=" << static_cast<int>(config.shuffle_sync)
               << " seed=" << config.seed);

  const AlgorithmResult coded = RunCodedTeraSort(config);
  const AlgorithmResult plain = RunTeraSort(config);

  // 1. Conservation.
  ASSERT_EQ(coded.total_output_records(), config.num_records);
  ASSERT_EQ(plain.total_output_records(), config.num_records);

  // 2. Sorted permutation, via TeraValidate.
  const RecordChecksum expected = ChecksumOfInput(
      TeraGen(config.seed, config.distribution), config.num_records);
  const ValidationReport coded_report =
      ValidatePartitions(coded.partitions, expected);
  EXPECT_TRUE(coded_report.valid) << coded_report.error;
  const ValidationReport plain_report =
      ValidatePartitions(plain.partitions, expected);
  EXPECT_TRUE(plain_report.valid) << plain_report.error;

  // 3. Algorithm agreement.
  if (rc.compare_with_plain) {
    EXPECT_EQ(coded.partitions, plain.partitions);
  } else {
    EXPECT_EQ(Flatten(coded), Flatten(plain));
  }

  // 4. Combinatorial traffic identities.
  const int K = config.num_nodes;
  const int r = config.redundancy;
  const auto shuffle = coded.traffic.at(stage::kShuffle);
  if (r < K) {
    EXPECT_EQ(shuffle.mcast_msgs, Binomial(K, r + 1) *
                                      static_cast<std::uint64_t>(r + 1));
    EXPECT_EQ(coded.traffic.at(stage::kCodeGen).comm_creations,
              Binomial(K, r + 1));
  } else {
    EXPECT_EQ(shuffle.transmitted_bytes(), 0u);
  }
  EXPECT_EQ(shuffle.unicast_msgs, 0u);
  EXPECT_EQ(plain.traffic.at(stage::kShuffle).unicast_msgs,
            static_cast<std::uint64_t>(K) * (K - 1));

  // 5. Work identities.
  const NodeWork coded_work = coded.total_work();
  EXPECT_EQ(coded_work.map_bytes,
            config.total_bytes() * static_cast<std::uint64_t>(r));
  EXPECT_EQ(coded_work.reduce_bytes, config.total_bytes());
  EXPECT_EQ(coded_work.map_files,
            static_cast<std::uint64_t>(K) * Binomial(K - 1, r - 1));
  if (r < K) {
    EXPECT_EQ(coded_work.codec.packets_encoded,
              Binomial(K, r + 1) * static_cast<std::uint64_t>(r + 1));
    EXPECT_EQ(coded_work.codec.packets_decoded,
              coded_work.codec.packets_encoded *
                  static_cast<std::uint64_t>(r));
  }

  // 6. Transport hygiene: nothing left in flight.
  // (Checked inside Run*TeraSort; reaching here means it held.)
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSweep, ::testing::Range(0, 30));

// ---- Eq. (2) exactness on the generic CMR engine ----
//
// With intermediate values of one fixed size s divisible by r, the
// measured payload loads are EXACTLY the paper's eq. (2) — no routing
// variance, no ragged-segment padding:
//   uncoded: N*(K-r)*s / (N*K*s)              = 1 - r/K
//   coded:   C(K,r+1)*(r+1)*(s/r) / (N*K*s)   = (1/r)*(1 - r/K)
// And overlap must not change a single byte on the wire: the
// barrier-synchronous and overlapped shuffles of the same
// configuration move identical payloads and identical wire traffic.

// Deterministic app emitting exactly `iv_bytes` per (file, reducer).
class FixedSizeIvApp final : public cmr::CmrApp {
 public:
  explicit FixedSizeIvApp(std::size_t iv_bytes) : iv_bytes_(iv_bytes) {}

  std::string name() const override { return "FixedSizeIv"; }

  std::vector<std::string> make_file(FileId file,
                                     std::uint64_t /*seed*/) const override {
    return {std::to_string(file)};
  }

  std::vector<std::vector<std::uint8_t>> map(
      const std::vector<std::string>& records,
      int num_reducers) const override {
    const auto file = static_cast<std::uint8_t>(std::stoi(records.at(0)));
    std::vector<std::vector<std::uint8_t>> out;
    out.reserve(static_cast<std::size_t>(num_reducers));
    for (int q = 0; q < num_reducers; ++q) {
      std::vector<std::uint8_t> iv(iv_bytes_);
      for (std::size_t i = 0; i < iv.size(); ++i) {
        iv[i] = static_cast<std::uint8_t>(file * 31 + q * 7 + i);
      }
      out.push_back(std::move(iv));
    }
    return out;
  }

  std::string reduce(
      int reducer,
      const std::vector<std::vector<std::uint8_t>>& values) const override {
    std::uint64_t checksum = 0;
    for (const auto& v : values) {
      for (const std::uint8_t b : v) checksum = checksum * 131 + b;
    }
    return std::to_string(reducer) + ":" + std::to_string(checksum);
  }

 private:
  std::size_t iv_bytes_;
};

class CmrLoadIdentity
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CmrLoadIdentity, PayloadLoadsMatchEquation2UnderBothSyncs) {
  const auto [K, r] = GetParam();
  // 720 is divisible by every r in the sweep, so coded segments are
  // perfectly even and the identities hold exactly.
  const FixedSizeIvApp app(720);
  ASSERT_EQ(720 % r, 0);

  cmr::CmrConfig config;
  config.num_nodes = K;
  config.redundancy = r;

  for (const cmr::ShuffleMode mode :
       {cmr::ShuffleMode::kUncoded, cmr::ShuffleMode::kCoded}) {
    config.mode = mode;
    config.sync = ShuffleSync::kBarrier;
    const cmr::CmrResult barrier = RunCmr(app, config);
    config.sync = ShuffleSync::kOverlapped;
    const cmr::CmrResult overlapped = RunCmr(app, config);

    const double expected = mode == cmr::ShuffleMode::kCoded
                                ? CodedLoad(K, r)
                                : UncodedLoad(K, r);
    EXPECT_DOUBLE_EQ(barrier.measured_payload_load(), expected)
        << "mode=" << static_cast<int>(mode);
    EXPECT_DOUBLE_EQ(overlapped.measured_payload_load(), expected)
        << "mode=" << static_cast<int>(mode);

    // Overlap changes WHEN bytes move, never how many or which:
    // payloads, wire traffic, message counts, per-transmission logs
    // (up to initiation order) and outputs are all identical.
    EXPECT_EQ(barrier.shuffled_payload_bytes,
              overlapped.shuffled_payload_bytes);
    EXPECT_EQ(barrier.total_iv_bytes, overlapped.total_iv_bytes);
    const auto& bt = barrier.traffic.at(stage::kShuffle);
    const auto& ot = overlapped.traffic.at(stage::kShuffle);
    EXPECT_EQ(bt.transmitted_bytes(), ot.transmitted_bytes());
    EXPECT_EQ(bt.unicast_msgs, ot.unicast_msgs);
    EXPECT_EQ(bt.mcast_msgs, ot.mcast_msgs);
    EXPECT_EQ(bt.mcast_recipient_bytes, ot.mcast_recipient_bytes);
    EXPECT_EQ(barrier.shuffle_log.size(), overlapped.shuffle_log.size());
    EXPECT_EQ(barrier.outputs, overlapped.outputs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CmrLoadIdentity,
    ::testing::Values(std::pair{2, 1}, std::pair{4, 1}, std::pair{4, 2},
                      std::pair{6, 2}, std::pair{6, 3}, std::pair{8, 2},
                      std::pair{8, 4}, std::pair{9, 3}, std::pair{10, 5},
                      std::pair{6, 6}),
    [](const auto& info) {
      return "K" + std::to_string(info.param.first) + "r" +
             std::to_string(info.param.second);
    });

}  // namespace
}  // namespace cts
