// Randomized (seeded, reproducible) property sweep over the
// configuration space: random K, r, record counts, seeds,
// distributions, partitioners and codegen modes. Every sampled
// configuration must satisfy the full battery of whole-system
// invariants. This catches interaction bugs that the hand-picked
// parameterized sweeps can miss (e.g. skew x tiny files x batched
// codegen).
#include <gtest/gtest.h>

#include <algorithm>

#include "analytics/loads.h"
#include "codedterasort/coded_terasort.h"
#include "common/random.h"
#include "keyvalue/teravalidate.h"
#include "terasort/terasort.h"

namespace cts {
namespace {

struct RandomConfig {
  SortConfig sort;
  bool compare_with_plain;  // partitioner identical across algorithms?
};

RandomConfig Draw(Xoshiro256& rng) {
  RandomConfig rc;
  SortConfig& c = rc.sort;
  c.num_nodes = 2 + static_cast<int>(rng.below(7));           // 2..8
  c.redundancy = 1 + static_cast<int>(
                         rng.below(static_cast<std::uint64_t>(c.num_nodes)));
  c.num_records = rng.below(3000);  // includes 0 and < K cases
  c.seed = rng();
  switch (rng.below(6)) {
    case 0: c.distribution = KeyDistribution::kUniform; break;
    case 1: c.distribution = KeyDistribution::kSorted; break;
    case 2: c.distribution = KeyDistribution::kReverseSorted; break;
    case 3: c.distribution = KeyDistribution::kSkewed; break;
    case 4: c.distribution = KeyDistribution::kFewDistinct; break;
    default: c.distribution = KeyDistribution::kBalanced; break;
  }
  switch (rng.below(3)) {
    case 0:
      c.partitioner = PartitionerKind::kRange;
      rc.compare_with_plain = true;
      break;
    case 1:
      c.partitioner = PartitionerKind::kSampled;
      c.sample_size = 1 + rng.below(500);
      rc.compare_with_plain = true;
      break;
    default:
      // Distributed sampling derives different splitters for different
      // placements, so partition contents differ between algorithms
      // (the flattened output must still agree).
      c.partitioner = PartitionerKind::kDistributedSampled;
      c.sample_size = 1 + rng.below(500);
      rc.compare_with_plain = false;
      break;
  }
  c.codegen_mode =
      rng.below(2) == 0 ? CodeGenMode::kCommSplit : CodeGenMode::kBatched;
  return rc;
}

std::vector<Record> Flatten(const AlgorithmResult& r) {
  std::vector<Record> all;
  for (const auto& p : r.partitions) {
    all.insert(all.end(), p.begin(), p.end());
  }
  return all;
}

class RandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomSweep, AllInvariantsHold) {
  Xoshiro256 rng(0xC0DED + static_cast<std::uint64_t>(GetParam()));
  const RandomConfig rc = Draw(rng);
  const SortConfig& config = rc.sort;
  SCOPED_TRACE(::testing::Message()
               << "K=" << config.num_nodes << " r=" << config.redundancy
               << " records=" << config.num_records
               << " dist=" << static_cast<int>(config.distribution)
               << " part=" << static_cast<int>(config.partitioner)
               << " codegen=" << static_cast<int>(config.codegen_mode)
               << " seed=" << config.seed);

  const AlgorithmResult coded = RunCodedTeraSort(config);
  const AlgorithmResult plain = RunTeraSort(config);

  // 1. Conservation.
  ASSERT_EQ(coded.total_output_records(), config.num_records);
  ASSERT_EQ(plain.total_output_records(), config.num_records);

  // 2. Sorted permutation, via TeraValidate.
  const RecordChecksum expected = ChecksumOfInput(
      TeraGen(config.seed, config.distribution), config.num_records);
  const ValidationReport coded_report =
      ValidatePartitions(coded.partitions, expected);
  EXPECT_TRUE(coded_report.valid) << coded_report.error;
  const ValidationReport plain_report =
      ValidatePartitions(plain.partitions, expected);
  EXPECT_TRUE(plain_report.valid) << plain_report.error;

  // 3. Algorithm agreement.
  if (rc.compare_with_plain) {
    EXPECT_EQ(coded.partitions, plain.partitions);
  } else {
    EXPECT_EQ(Flatten(coded), Flatten(plain));
  }

  // 4. Combinatorial traffic identities.
  const int K = config.num_nodes;
  const int r = config.redundancy;
  const auto shuffle = coded.traffic.at(stage::kShuffle);
  if (r < K) {
    EXPECT_EQ(shuffle.mcast_msgs, Binomial(K, r + 1) *
                                      static_cast<std::uint64_t>(r + 1));
    EXPECT_EQ(coded.traffic.at(stage::kCodeGen).comm_creations,
              Binomial(K, r + 1));
  } else {
    EXPECT_EQ(shuffle.transmitted_bytes(), 0u);
  }
  EXPECT_EQ(shuffle.unicast_msgs, 0u);
  EXPECT_EQ(plain.traffic.at(stage::kShuffle).unicast_msgs,
            static_cast<std::uint64_t>(K) * (K - 1));

  // 5. Work identities.
  const NodeWork coded_work = coded.total_work();
  EXPECT_EQ(coded_work.map_bytes,
            config.total_bytes() * static_cast<std::uint64_t>(r));
  EXPECT_EQ(coded_work.reduce_bytes, config.total_bytes());
  EXPECT_EQ(coded_work.map_files,
            static_cast<std::uint64_t>(K) * Binomial(K - 1, r - 1));
  if (r < K) {
    EXPECT_EQ(coded_work.codec.packets_encoded,
              Binomial(K, r + 1) * static_cast<std::uint64_t>(r + 1));
    EXPECT_EQ(coded_work.codec.packets_decoded,
              coded_work.codec.packets_encoded *
                  static_cast<std::uint64_t>(r));
  }

  // 6. Transport hygiene: nothing left in flight.
  // (Checked inside Run*TeraSort; reaching here means it held.)
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSweep, ::testing::Range(0, 30));

}  // namespace
}  // namespace cts
