// Tests for the extended simmpi collectives (sendrecv, allgather,
// scatter, allreduce) and the distributed sampled partitioner built on
// them.
#include <gtest/gtest.h>

#include <functional>
#include <thread>

#include "codedterasort/coded_terasort.h"
#include "driver/partition_util.h"
#include "keyvalue/recordio.h"
#include "simmpi/comm.h"
#include "simmpi/world.h"
#include "terasort/terasort.h"

namespace cts {
namespace {

void RunNodes(simmpi::World& world,
              const std::function<void(simmpi::Comm&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(world.num_nodes()));
  for (NodeId n = 0; n < world.num_nodes(); ++n) {
    threads.emplace_back([&, n] {
      try {
        simmpi::Comm comm = simmpi::Comm::World(world, n);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(n)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

TEST(Collectives, SendrecvExchangesSymmetrically) {
  simmpi::World world(2);
  RunNodes(world, [&](simmpi::Comm& comm) {
    Buffer mine;
    mine.write_i32(comm.rank() * 100);
    Buffer theirs = comm.sendrecv(1 - comm.rank(), 5, mine);
    EXPECT_EQ(theirs.read_i32(), (1 - comm.rank()) * 100);
  });
  EXPECT_EQ(world.pending_messages(), 0u);
}

TEST(Collectives, AllgatherDeliversEveryPayloadInRankOrder) {
  constexpr int K = 5;
  simmpi::World world(K);
  RunNodes(world, [&](simmpi::Comm& comm) {
    Buffer mine;
    mine.write_i32(comm.rank() * comm.rank());
    auto all = comm.allgather(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(K));
    for (int m = 0; m < K; ++m) {
      Buffer b = all[static_cast<std::size_t>(m)].Clone();
      EXPECT_EQ(b.read_i32(), m * m);
    }
  });
}

TEST(Collectives, AllgatherIsAccountedAsDataPlane) {
  constexpr int K = 4;
  simmpi::World world(K);
  world.stats().set_stage("AG");
  RunNodes(world, [&](simmpi::Comm& comm) {
    Buffer mine;
    mine.resize(100);
    (void)comm.allgather(mine);
  });
  const auto s = world.stats().stage("AG");
  EXPECT_EQ(s.unicast_msgs, static_cast<std::uint64_t>(K) * (K - 1));
  EXPECT_EQ(s.unicast_bytes, static_cast<std::uint64_t>(K) * (K - 1) * 100);
}

TEST(Collectives, ScatterDistributesParts) {
  constexpr int K = 4;
  simmpi::World world(K);
  RunNodes(world, [&](simmpi::Comm& comm) {
    std::vector<Buffer> parts;
    if (comm.rank() == 2) {
      for (int m = 0; m < K; ++m) {
        Buffer b;
        b.write_i32(m + 1000);
        parts.push_back(std::move(b));
      }
    }
    Buffer mine = comm.scatter(2, std::move(parts));
    EXPECT_EQ(mine.read_i32(), comm.rank() + 1000);
  });
}

TEST(Collectives, ScatterRejectsWrongPartCount) {
  simmpi::World world(2);
  RunNodes(world, [&](simmpi::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<Buffer> parts(1);  // must be comm.size() == 2
      EXPECT_THROW((void)comm.scatter(0, std::move(parts)), CheckError);
      // Unblock rank 1 with a correct scatter.
      std::vector<Buffer> good(2);
      (void)comm.scatter(0, std::move(good));
    } else {
      (void)comm.scatter(0, {});
    }
  });
}

TEST(Collectives, AllreduceSumsAcrossMembers) {
  constexpr int K = 6;
  simmpi::World world(K);
  RunNodes(world, [&](simmpi::Comm& comm) {
    const std::uint64_t total =
        comm.allreduce_sum(static_cast<std::uint64_t>(comm.rank() + 1));
    EXPECT_EQ(total, 21u);  // 1+2+...+6
  });
}

TEST(Collectives, WorkOnSubCommunicators) {
  constexpr int K = 6;
  simmpi::World world(K);
  RunNodes(world, [&](simmpi::Comm& comm) {
    auto half = comm.split(comm.rank() % 2, comm.rank());
    ASSERT_TRUE(half.has_value());
    const std::uint64_t total = half->allreduce_sum(1);
    EXPECT_EQ(total, 3u);
  });
}

// ---- Distributed sampled partitioner ----

TEST(DistributedSampling, AllNodesDeriveIdenticalSplitters) {
  constexpr int K = 4;
  simmpi::World world(K);
  std::vector<std::vector<Key>> splitters(K);
  const TeraGen gen(11, KeyDistribution::kSkewed);
  RunNodes(world, [&](simmpi::Comm& comm) {
    // Node n owns records [n*1000, (n+1)*1000).
    const std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges = {
        {static_cast<std::uint64_t>(comm.rank()) * 1000, 1000}};
    const SampledPartitioner part =
        BuildDistributedSampledPartitioner(comm, gen, ranges, 200);
    splitters[static_cast<std::size_t>(comm.rank())] = part.splitters();
  });
  for (int n = 1; n < K; ++n) {
    EXPECT_EQ(splitters[static_cast<std::size_t>(n)], splitters[0]);
  }
}

TEST(DistributedSampling, BalancesSkewedSort) {
  SortConfig config;
  config.num_nodes = 6;
  config.num_records = 12000;
  config.distribution = KeyDistribution::kSkewed;
  config.partitioner = PartitionerKind::kDistributedSampled;
  config.sample_size = 500;
  const AlgorithmResult result = RunTeraSort(config);
  // Sorted permutation of the input...
  std::vector<Record> all;
  for (const auto& p : result.partitions) {
    all.insert(all.end(), p.begin(), p.end());
  }
  const auto input = TeraGen(config.seed, config.distribution)
                         .generate(0, config.num_records);
  EXPECT_TRUE(IsSortedPermutationOf(input, all));
  // ...with every reducer within 2x of fair share despite the skew.
  for (const auto& p : result.partitions) {
    EXPECT_LT(p.size(), config.num_records / 6 * 2);
  }
}

TEST(DistributedSampling, CodedSortAgreesWithPlainSort) {
  // Both algorithms sample from the SAME record multiset (every record
  // is on some node in both placements), but with different per-node
  // layouts; outputs must still be the identical sorted dataset even
  // though partition boundaries may differ.
  SortConfig config;
  config.num_nodes = 5;
  config.num_records = 5000;
  config.distribution = KeyDistribution::kSkewed;
  config.partitioner = PartitionerKind::kDistributedSampled;
  const AlgorithmResult plain = RunTeraSort(config);
  config.redundancy = 2;
  const AlgorithmResult coded = RunCodedTeraSort(config);
  auto flatten = [](const AlgorithmResult& r) {
    std::vector<Record> all;
    for (const auto& p : r.partitions) {
      all.insert(all.end(), p.begin(), p.end());
    }
    return all;
  };
  EXPECT_EQ(flatten(plain), flatten(coded));
}

TEST(DistributedSampling, MakePartitionerRefusesIt) {
  SortConfig config;
  config.partitioner = PartitionerKind::kDistributedSampled;
  EXPECT_THROW((void)MakePartitioner(config), CheckError);
}

}  // namespace
}  // namespace cts
