// Tests for the driver layer: cluster harness, stage runner,
// recorder, and partitioner construction.
#include <gtest/gtest.h>

#include <atomic>

#include "common/check.h"
#include "driver/cluster.h"
#include "driver/partition_util.h"
#include "keyvalue/teragen.h"

namespace cts {
namespace {

TEST(Cluster, RunsOneThreadPerNode) {
  simmpi::World world(6);
  RunRecorder recorder(6);
  std::atomic<int> ran{0};
  RunOnCluster(world, recorder, [&](simmpi::Comm& comm, RunRecorder&) {
    EXPECT_EQ(comm.size(), 6);
    ++ran;
  });
  EXPECT_EQ(ran.load(), 6);
}

TEST(Cluster, RethrowsNodeFailure) {
  simmpi::World world(3);
  RunRecorder recorder(3);
  EXPECT_THROW(
      RunOnCluster(world, recorder,
                   [&](simmpi::Comm& comm, RunRecorder&) {
                     // All nodes fail before any communication, so no
                     // peer blocks on a missing message.
                     CTS_CHECK_MSG(false, "injected failure on node "
                                              << comm.my_global());
                   }),
      CheckError);
}

TEST(Cluster, StageRunnerLabelsTrafficPerStage) {
  simmpi::World world(2);
  RunRecorder recorder(2);
  RunOnCluster(world, recorder, [&](simmpi::Comm& comm, RunRecorder& rec) {
    StageRunner stages(comm, rec);
    Buffer b;
    b.resize(64);
    stages.run("first", [&] {
      if (comm.rank() == 0) {
        comm.send(1, 0, b);
      } else {
        (void)comm.recv(0, 0);
      }
    });
    stages.run("second", [&] {
      if (comm.rank() == 1) {
        comm.send(0, 0, b);
        comm.send(0, 1, b);
      } else {
        (void)comm.recv(1, 0);
        (void)comm.recv(1, 1);
      }
    });
  });
  EXPECT_EQ(world.stats().stage("first").unicast_msgs, 1u);
  EXPECT_EQ(world.stats().stage("second").unicast_msgs, 2u);
}

TEST(Cluster, StageRunnerRecordsWallPerNode) {
  simmpi::World world(3);
  RunRecorder recorder(3);
  RunOnCluster(world, recorder, [&](simmpi::Comm& comm, RunRecorder& rec) {
    StageRunner stages(comm, rec);
    stages.run("work", [&] {});
    stages.run("more", [&] {});
  });
  const auto wall = recorder.wall_max();
  ASSERT_TRUE(wall.count("work"));
  ASSERT_TRUE(wall.count("more"));
  EXPECT_GE(wall.at("work"), 0.0);
}

TEST(Recorder, CollectsPartitionsAndWork) {
  RunRecorder recorder(2);
  NodeWork w0;
  w0.map_bytes = 100;
  recorder.set_work(0, w0);
  NodeWork w1;
  w1.map_bytes = 200;
  recorder.set_work(1, w1);
  recorder.set_partition(1, {Record{}});
  EXPECT_EQ(recorder.work()[0].map_bytes, 100u);
  EXPECT_EQ(recorder.work()[1].map_bytes, 200u);
  auto partitions = recorder.take_partitions();
  EXPECT_TRUE(partitions[0].empty());
  EXPECT_EQ(partitions[1].size(), 1u);
}

TEST(NodeWorkAccumulation, SumsAllFields) {
  NodeWork a;
  a.map_bytes = 1;
  a.map_files = 2;
  a.pack_bytes = 3;
  a.unpack_bytes = 4;
  a.reduce_bytes = 5;
  a.codec.packets_encoded = 6;
  NodeWork b = a;
  b += a;
  EXPECT_EQ(b.map_bytes, 2u);
  EXPECT_EQ(b.map_files, 4u);
  EXPECT_EQ(b.pack_bytes, 6u);
  EXPECT_EQ(b.unpack_bytes, 8u);
  EXPECT_EQ(b.reduce_bytes, 10u);
  EXPECT_EQ(b.codec.packets_encoded, 12u);
}

TEST(PartitionUtil, RangeByDefault) {
  SortConfig config;
  config.num_nodes = 5;
  const auto part = MakePartitioner(config);
  EXPECT_EQ(part->num_partitions(), 5);
  EXPECT_EQ(part->partition(MakeKey(0)), 0);
}

TEST(PartitionUtil, SampledIsDeterministicAcrossCalls) {
  SortConfig config;
  config.num_nodes = 4;
  config.num_records = 10000;
  config.partitioner = PartitionerKind::kSampled;
  config.distribution = KeyDistribution::kSkewed;
  const auto a = MakePartitioner(config);
  const auto b = MakePartitioner(config);
  const TeraGen gen(config.seed, config.distribution);
  for (const auto& rec : gen.generate(0, 500)) {
    EXPECT_EQ(a->partition(rec.key), b->partition(rec.key));
  }
}

TEST(PartitionUtil, SampledHandlesTinyInputs) {
  SortConfig config;
  config.num_nodes = 3;
  config.num_records = 2;  // fewer records than sample or partitions
  config.partitioner = PartitionerKind::kSampled;
  const auto part = MakePartitioner(config);
  EXPECT_EQ(part->num_partitions(), 3);
}

TEST(AlgorithmResult, TotalsAndAggregates) {
  AlgorithmResult result;
  result.partitions = {{Record{}, Record{}}, {Record{}}};
  NodeWork w;
  w.reduce_bytes = 7;
  result.work = {w, w, w};
  EXPECT_EQ(result.total_output_records(), 3u);
  EXPECT_EQ(result.total_work().reduce_bytes, 21u);
}

}  // namespace
}  // namespace cts
