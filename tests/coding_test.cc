// Tests for src/coding: placement, segmentation and the XOR codec,
// including the paper's worked examples (Figs. 4-7).
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "coding/codec.h"
#include "coding/placement.h"
#include "coding/segments.h"
#include "common/check.h"
#include "common/random.h"

namespace cts {
namespace {

TEST(Placement, PaperFig4Example) {
  // K=4, r=2 (paper Fig. 4): 6 files; F{2,3} on nodes 2 and 3 (1-based)
  // = mask {1,2} here; each node stores C(3,1)=3 files.
  const Placement p = Placement::Create(4, 2);
  EXPECT_EQ(p.num_files(), 6);
  EXPECT_EQ(p.files_per_node(), 3);
  const FileId f23 = p.file_of(NodesToMask({1, 2}));
  EXPECT_EQ(p.file_nodes(f23), NodesToMask({1, 2}));
  // Node 2 (1-based) = node 1 here has files {0,1},{1,2},{1,3}.
  std::set<NodeMask> node1_files;
  for (const FileId f : p.files_on_node(1)) {
    node1_files.insert(p.file_nodes(f));
  }
  EXPECT_EQ(node1_files,
            (std::set<NodeMask>{NodesToMask({0, 1}), NodesToMask({1, 2}),
                                NodesToMask({1, 3})}));
}

TEST(Placement, CountsMatchBinomials) {
  for (int K : {4, 6, 10}) {
    for (int r = 1; r <= K; ++r) {
      const Placement p = Placement::Create(K, r);
      EXPECT_EQ(p.num_files(), static_cast<int>(Binomial(K, r)));
      EXPECT_EQ(p.files_per_node(), static_cast<int>(Binomial(K - 1, r - 1)));
      for (NodeId n = 0; n < K; ++n) {
        EXPECT_EQ(p.files_on_node(n).size(), Binomial(K - 1, r - 1));
      }
      if (r < K) {
        EXPECT_EQ(p.multicast_groups().size(), Binomial(K, r + 1));
      } else {
        EXPECT_TRUE(p.multicast_groups().empty());
      }
    }
  }
}

TEST(Placement, EveryFileOnExactlyRNodes) {
  const Placement p = Placement::Create(6, 3);
  for (FileId f = 0; f < p.num_files(); ++f) {
    EXPECT_EQ(Popcount(p.file_nodes(f)), 3);
  }
}

TEST(Placement, FileOfIsInverseOfFileNodes) {
  const Placement p = Placement::Create(7, 2);
  for (FileId f = 0; f < p.num_files(); ++f) {
    EXPECT_EQ(p.file_of(p.file_nodes(f)), f);
  }
  EXPECT_THROW(p.file_of(NodesToMask({0, 1, 2})), CheckError);  // wrong size
}

TEST(Placement, GroupsOfNodeCount) {
  const Placement p = Placement::Create(8, 3);
  for (NodeId n = 0; n < 8; ++n) {
    const auto groups = p.groups_of_node(n);
    EXPECT_EQ(groups.size(), Binomial(7, 3));
    for (const NodeMask g : groups) {
      EXPECT_TRUE(Contains(g, n));
      EXPECT_EQ(Popcount(g), 4);
    }
  }
}

TEST(Placement, SplitRecordsIsEvenAndExact) {
  const Placement p = Placement::Create(5, 2);  // 10 files
  const auto ranges = p.SplitRecords(1003);
  std::uint64_t total = 0;
  std::uint64_t next_offset = 0;
  for (std::size_t f = 0; f < ranges.count.size(); ++f) {
    EXPECT_EQ(ranges.offset[f], next_offset);
    EXPECT_GE(ranges.count[f], 100u);
    EXPECT_LE(ranges.count[f], 101u);
    next_offset += ranges.count[f];
    total += ranges.count[f];
  }
  EXPECT_EQ(total, 1003u);
}

TEST(Placement, SplitRecordsFewerRecordsThanFiles) {
  const Placement p = Placement::Create(6, 3);  // 20 files
  const auto ranges = p.SplitRecords(7);
  const std::uint64_t total =
      std::accumulate(ranges.count.begin(), ranges.count.end(),
                      std::uint64_t{0});
  EXPECT_EQ(total, 7u);
}

TEST(Placement, RejectsInvalidParameters) {
  EXPECT_THROW(Placement::Create(4, 0), CheckError);
  EXPECT_THROW(Placement::Create(4, 5), CheckError);
  EXPECT_THROW(Placement::Create(0, 1), CheckError);
}

TEST(Segments, EvenSplitCoversValue) {
  for (std::uint64_t len : {0ULL, 1ULL, 7ULL, 100ULL, 101ULL, 12345ULL}) {
    for (int r : {1, 2, 3, 5, 8}) {
      std::uint64_t covered = 0;
      std::uint64_t expected_offset = 0;
      for (int pos = 0; pos < r; ++pos) {
        const SegmentSpan s = SegmentOf(len, r, pos);
        EXPECT_EQ(s.offset, expected_offset);
        expected_offset += s.length;
        covered += s.length;
      }
      EXPECT_EQ(covered, len) << "len=" << len << " r=" << r;
    }
  }
}

TEST(Segments, NearEqualLengths) {
  const int r = 3;
  for (std::uint64_t len : {9ULL, 10ULL, 11ULL}) {
    std::uint64_t min_len = len, max_len = 0;
    for (int pos = 0; pos < r; ++pos) {
      const SegmentSpan s = SegmentOf(len, r, pos);
      min_len = std::min(min_len, s.length);
      max_len = std::max(max_len, s.length);
    }
    EXPECT_LE(max_len - min_len, 1u);
  }
}

TEST(Segments, PositionIsAscendingMemberIndex) {
  const NodeMask mask = NodesToMask({1, 4, 6});
  EXPECT_EQ(SegmentPosition(mask, 1), 0);
  EXPECT_EQ(SegmentPosition(mask, 4), 1);
  EXPECT_EQ(SegmentPosition(mask, 6), 2);
  EXPECT_THROW(SegmentPosition(mask, 2), CheckError);
}

// ---- Codec fixtures ----

// Deterministic fake intermediate values: IV for (target, file) has a
// size depending on both, filled from a keyed RNG stream.
class FakeIvStore {
 public:
  FakeIvStore(int K, int r, std::uint64_t seed = 99, bool ragged = true)
      : seed_(seed) {
    const Placement p = Placement::Create(K, r);
    for (FileId f = 0; f < p.num_files(); ++f) {
      const NodeMask mask = p.file_nodes(f);
      for (NodeId t = 0; t < K; ++t) {
        if (Contains(mask, t)) continue;  // only kept IVs matter here
        std::uint64_t s = Mix64(seed_ ^ (static_cast<std::uint64_t>(t) << 32 ^
                                         static_cast<std::uint64_t>(f)));
        // Ragged sizes exercise the zero-padding path.
        const std::size_t size =
            ragged ? 40 + (s % 50) : 64;
        std::vector<std::uint8_t> bytes(size);
        for (auto& b : bytes) b = static_cast<std::uint8_t>(SplitMix64(s));
        store_[{t, mask}] = std::move(bytes);
      }
    }
  }

  IvAccess access() const {
    return [this](NodeId t, NodeMask file) -> std::span<const std::uint8_t> {
      const auto it = store_.find({t, file});
      CTS_CHECK(it != store_.end());
      return it->second;
    };
  }

  const std::vector<std::uint8_t>& value(NodeId t, NodeMask file) const {
    return store_.at({t, file});
  }

 private:
  std::uint64_t seed_;
  std::map<std::pair<NodeId, NodeMask>, std::vector<std::uint8_t>> store_;
};

// End-to-end codec property for one group: every member encodes, every
// member decodes every other member's packet, and the merged segments
// equal the wanted intermediate value byte-for-byte.
void CheckGroupRoundTrip(NodeMask group, const FakeIvStore& store) {
  const auto members = MaskToNodes(group);
  const int r = static_cast<int>(members.size()) - 1;
  std::map<NodeId, CodedPacket> packets;
  CodecStats stats;
  for (const NodeId u : members) {
    packets[u] = EncodePacket(group, u, store.access(), &stats);
  }
  EXPECT_EQ(stats.packets_encoded, members.size());
  for (const NodeId k : members) {
    std::vector<DecodedSegment> segments;
    for (const NodeId u : members) {
      if (u == k) continue;
      segments.push_back(
          DecodePacket(group, k, u, packets.at(u), store.access(), &stats));
    }
    ASSERT_EQ(segments.size(), static_cast<std::size_t>(r));
    const auto merged = MergeSegments(segments);
    EXPECT_EQ(merged, store.value(k, WithoutNode(group, k)))
        << "node " << k << " in group " << group;
  }
}

class CodecRoundTrip : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CodecRoundTrip, AllGroupsAllMembers) {
  const auto [K, r] = GetParam();
  const FakeIvStore store(K, r);
  const Placement p = Placement::Create(K, r);
  for (const NodeMask g : p.multicast_groups()) {
    CheckGroupRoundTrip(g, store);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodecRoundTrip,
    ::testing::Values(std::pair{3, 2}, std::pair{4, 2}, std::pair{4, 3},
                      std::pair{5, 2}, std::pair{5, 4}, std::pair{6, 3},
                      std::pair{6, 5}, std::pair{7, 2}, std::pair{8, 5},
                      std::pair{6, 1}),
    [](const auto& info) {
      return "K" + std::to_string(info.param.first) + "r" +
             std::to_string(info.param.second);
    });

TEST(Codec, PaperFig6Fig7Example) {
  // Paper Figs. 6-7: group M = {1,2,3} (0-based {0,1,2}), r = 2. Each
  // node holds the IVs of the two files it shares with another member
  // and decodes the one it misses.
  const NodeMask group = NodesToMask({0, 1, 2});
  const FakeIvStore store(3, 2);
  CheckGroupRoundTrip(group, store);
}

TEST(Codec, UniformSizesNeedNoPadding) {
  const FakeIvStore store(5, 2, /*seed=*/7, /*ragged=*/false);
  const Placement p = Placement::Create(5, 2);
  for (const NodeMask g : p.multicast_groups()) {
    CheckGroupRoundTrip(g, store);
  }
}

TEST(Codec, PacketPayloadIsMaxSegmentLength) {
  const NodeMask group = NodesToMask({0, 1, 2});
  const FakeIvStore store(3, 2);
  const CodedPacket packet = EncodePacket(group, 0, store.access());
  // Constituents: segment of IV(1, {0,2}) and segment of IV(2, {0,1}),
  // both at node 0's position.
  std::size_t max_len = 0;
  for (const auto& [t, file] :
       std::vector<std::pair<NodeId, NodeMask>>{{1, NodesToMask({0, 2})},
                                                {2, NodesToMask({0, 1})}}) {
    const auto& value = store.value(t, file);
    const SegmentSpan s =
        SegmentOf(value.size(), 2, SegmentPosition(file, 0));
    max_len = std::max(max_len, static_cast<std::size_t>(s.length));
  }
  EXPECT_EQ(packet.payload.size(), max_len);
  EXPECT_EQ(packet.iv_lengths.size(), 2u);
}

TEST(Codec, WireFormatRoundTrip) {
  const FakeIvStore store(4, 2);
  const NodeMask group = NodesToMask({0, 1, 3});
  const CodedPacket packet = EncodePacket(group, 1, store.access());
  Buffer wire;
  packet.serialize(wire);
  EXPECT_EQ(wire.size(), packet.wire_size());
  const CodedPacket restored = CodedPacket::deserialize(wire);
  EXPECT_EQ(restored.iv_lengths, packet.iv_lengths);
  EXPECT_EQ(restored.payload, packet.payload);
}

TEST(Codec, StatsCountXorWork) {
  const FakeIvStore store(3, 2);
  const NodeMask group = NodesToMask({0, 1, 2});
  CodecStats stats;
  const CodedPacket packet = EncodePacket(group, 0, store.access(), &stats);
  EXPECT_EQ(stats.packets_encoded, 1u);
  EXPECT_GT(stats.encode_xor_bytes, 0u);
  DecodedSegment seg =
      DecodePacket(group, 1, 0, packet, store.access(), &stats);
  EXPECT_EQ(stats.packets_decoded, 1u);
  EXPECT_EQ(stats.decoded_bytes, seg.span.length);
  EXPECT_GT(stats.decode_xor_bytes, 0u);
}

TEST(Codec, EncodeRejectsNonMember) {
  const FakeIvStore store(4, 2);
  EXPECT_THROW(
      EncodePacket(NodesToMask({0, 1, 2}), /*self=*/3, store.access()),
      CheckError);
}

TEST(Codec, DecodeRejectsBadParticipants) {
  const FakeIvStore store(4, 2);
  const NodeMask group = NodesToMask({0, 1, 2});
  const CodedPacket packet = EncodePacket(group, 0, store.access());
  EXPECT_THROW(DecodePacket(group, 3, 0, packet, store.access()),
               CheckError);
  EXPECT_THROW(DecodePacket(group, 1, 1, packet, store.access()),
               CheckError);
}

TEST(Codec, DecodeDetectsCorruptedSideInformation) {
  // If a node's local IV disagrees with what the sender used, the
  // header length check or the padding-residue check must fire.
  const NodeMask group = NodesToMask({0, 1, 2});
  const FakeIvStore good(3, 2, /*seed=*/1);
  const FakeIvStore bad(3, 2, /*seed=*/2);  // different sizes/content
  const CodedPacket packet = EncodePacket(group, 0, good.access());
  EXPECT_THROW(DecodePacket(group, 1, 0, packet, bad.access()), CheckError);
}

TEST(Codec, MergeRejectsGaps) {
  DecodedSegment a{{0, 4}, {1, 2, 3, 4}};
  DecodedSegment b{{6, 2}, {7, 8}};  // bytes 4..6 missing
  const std::vector<DecodedSegment> segs{a, b};
  EXPECT_THROW(MergeSegments(segs), CheckError);
}

TEST(Codec, MergeAssemblesOutOfOrder) {
  DecodedSegment a{{4, 4}, {5, 6, 7, 8}};
  DecodedSegment b{{0, 4}, {1, 2, 3, 4}};
  const std::vector<DecodedSegment> segs{a, b};
  EXPECT_EQ(MergeSegments(segs),
            (std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(Codec, EmptyIvsProduceEmptyPackets) {
  // All-empty intermediate values (e.g. a partition with no records in
  // some file) must round-trip as zero-length segments.
  const int K = 4, r = 2;
  const Placement p = Placement::Create(K, r);
  std::map<std::pair<NodeId, NodeMask>, std::vector<std::uint8_t>> store;
  for (FileId f = 0; f < p.num_files(); ++f) {
    for (NodeId t = 0; t < K; ++t) {
      if (!Contains(p.file_nodes(f), t)) {
        store[{t, p.file_nodes(f)}] = {};
      }
    }
  }
  const IvAccess access =
      [&](NodeId t, NodeMask file) -> std::span<const std::uint8_t> {
    return store.at({t, file});
  };
  for (const NodeMask g : p.multicast_groups()) {
    for (const NodeId u : MaskToNodes(g)) {
      const CodedPacket packet = EncodePacket(g, u, access);
      EXPECT_TRUE(packet.payload.empty());
      for (const NodeId k : MaskToNodes(g)) {
        if (k == u) continue;
        const DecodedSegment seg = DecodePacket(g, k, u, packet, access);
        EXPECT_EQ(seg.span.length, 0u);
      }
    }
  }
}

}  // namespace
}  // namespace cts
