// Tests for the simmpi substrate: mailboxes, send/recv, collectives,
// communicator splits, and traffic accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/check.h"
#include "simmpi/comm.h"
#include "simmpi/mailbox.h"
#include "simmpi/world.h"

namespace cts::simmpi {
namespace {

// Runs fn(node) on one thread per node of a world and joins them,
// re-throwing the first per-node failure.
void RunNodes(World& world, const std::function<void(NodeId)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(world.num_nodes()));
  for (NodeId n = 0; n < world.num_nodes(); ++n) {
    threads.emplace_back([&, n] {
      try {
        fn(n);
      } catch (...) {
        errors[static_cast<std::size_t>(n)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

Buffer BufferOf(std::initializer_list<std::uint8_t> bytes) {
  Buffer b;
  b.write_bytes(std::vector<std::uint8_t>(bytes));
  return b;
}

TEST(Mailbox, FifoPerKey) {
  Mailbox mb;
  mb.deliver(0, 1, 7, BufferOf({1}));
  mb.deliver(0, 1, 7, BufferOf({2}));
  EXPECT_EQ(mb.pending(), 2u);
  EXPECT_EQ(mb.receive(0, 1, 7).data()[0], 1);
  EXPECT_EQ(mb.receive(0, 1, 7).data()[0], 2);
  EXPECT_EQ(mb.pending(), 0u);
}

TEST(Mailbox, KeysAreIndependent) {
  Mailbox mb;
  mb.deliver(0, 1, 7, BufferOf({1}));
  mb.deliver(0, 2, 7, BufferOf({2}));
  mb.deliver(1, 1, 7, BufferOf({3}));
  mb.deliver(0, 1, 8, BufferOf({4}));
  EXPECT_EQ(mb.receive(0, 1, 8).data()[0], 4);
  EXPECT_EQ(mb.receive(1, 1, 7).data()[0], 3);
  EXPECT_EQ(mb.receive(0, 2, 7).data()[0], 2);
  EXPECT_EQ(mb.receive(0, 1, 7).data()[0], 1);
}

TEST(Mailbox, ReceiveBlocksUntilDelivery) {
  Mailbox mb;
  std::atomic<bool> received{false};
  std::thread receiver([&] {
    (void)mb.receive(0, 5, 1);
    received = true;
  });
  EXPECT_FALSE(received.load());
  mb.deliver(0, 5, 1, BufferOf({9}));
  receiver.join();
  EXPECT_TRUE(received.load());
}

TEST(World, RejectsBadSizes) {
  EXPECT_THROW(World{0}, CheckError);
  // The transport is mask-free, so worlds larger than kMaxNodes are
  // legal (live TeraSort runs at K~100; only coded placements cap).
  EXPECT_NO_THROW(World{kMaxNodes});
  EXPECT_NO_THROW(World{kMaxNodes + 1});
}

TEST(Comm, WorldCommRanksMatchNodeIds) {
  World world(4);
  const Comm c = Comm::World(world, 2);
  EXPECT_EQ(c.rank(), 2);
  EXPECT_EQ(c.size(), 4);
  EXPECT_EQ(c.my_global(), 2);
  EXPECT_EQ(c.global(3), 3);
  EXPECT_EQ(c.rank_of_global(1), 1);
  EXPECT_EQ(c.rank_of_global(99), -1);
}

TEST(Comm, SendRecvMovesPayload) {
  World world(2);
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    if (n == 0) {
      Buffer b;
      b.write_u32(0xfeedu);
      c.send(1, 3, b);
    } else {
      Buffer got = c.recv(0, 3);
      EXPECT_EQ(got.read_u32(), 0xfeedu);
    }
  });
  EXPECT_EQ(world.pending_messages(), 0u);
}

TEST(Comm, SendToSelfIsAnError) {
  World world(2);
  Comm c = Comm::World(world, 0);
  Buffer b;
  EXPECT_THROW(c.send(0, 1, b), CheckError);
  EXPECT_THROW((void)c.recv(0, 1), CheckError);
}

TEST(Comm, NegativeUserTagRejected) {
  World world(2);
  Comm c = Comm::World(world, 0);
  Buffer b;
  EXPECT_THROW(c.send(1, -1, b), CheckError);
}

TEST(Comm, ManyToOneOrderedPerSource) {
  constexpr int K = 6;
  World world(K);
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    if (n == 0) {
      for (int src = 1; src < K; ++src) {
        Buffer first = c.recv(src, 1);
        Buffer second = c.recv(src, 1);
        EXPECT_EQ(first.read_i32(), src * 10);
        EXPECT_EQ(second.read_i32(), src * 10 + 1);
      }
    } else {
      Buffer b1, b2;
      b1.write_i32(n * 10);
      b2.write_i32(n * 10 + 1);
      c.send(0, 1, b1);
      c.send(0, 1, b2);
    }
  });
}

TEST(Comm, BcastDeliversToAll) {
  constexpr int K = 5;
  World world(K);
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    Buffer payload;
    if (n == 2) payload.write_u64(777);
    c.bcast(2, payload);
    payload.rewind();
    EXPECT_EQ(payload.read_u64(), 777u);
  });
}

TEST(Comm, BcastOnSingletonCommIsNoop) {
  World world(1);
  Comm c = Comm::World(world, 0);
  Buffer payload;
  payload.write_u8(1);
  EXPECT_NO_THROW(c.bcast(0, payload));
  EXPECT_EQ(payload.size(), 1u);
}

TEST(Comm, BarrierSynchronizes) {
  constexpr int K = 8;
  World world(K);
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    ++before;
    c.barrier();
    if (before.load() != K) violated = true;
    c.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST(Comm, GatherCollectsInRankOrder) {
  constexpr int K = 4;
  World world(K);
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    Buffer mine;
    mine.write_i32(n * n);
    const auto all = c.gather(1, mine);
    if (n == 1) {
      ASSERT_EQ(all.size(), 4u);
      for (int i = 0; i < K; ++i) {
        Buffer copy = all[static_cast<std::size_t>(i)].Clone();
        EXPECT_EQ(copy.read_i32(), i * i);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Comm, SplitFormsColorGroups) {
  constexpr int K = 6;
  World world(K);
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    // Even nodes -> color 0, odd -> color 1.
    auto sub = c.split(n % 2, /*key=*/n);
    ASSERT_TRUE(sub.has_value());
    EXPECT_EQ(sub->size(), 3);
    // Members are the same-parity nodes in ascending order.
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(sub->global(i), 2 * i + (n % 2));
    }
    // Communication within the subgroup works.
    Buffer payload;
    if (sub->rank() == 0) payload.write_i32(n % 2);
    sub->bcast(0, payload);
    payload.rewind();
    EXPECT_EQ(payload.read_i32(), n % 2);
  });
}

TEST(Comm, SplitUndefinedColorYieldsNullopt) {
  constexpr int K = 4;
  World world(K);
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    auto sub = c.split(n == 0 ? 0 : -1, 0);
    EXPECT_EQ(sub.has_value(), n == 0);
    if (sub) {
      EXPECT_EQ(sub->size(), 1);
    }
  });
}

TEST(Comm, SplitKeyControlsRankOrder) {
  constexpr int K = 3;
  World world(K);
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    // Reverse rank order via descending keys.
    auto sub = c.split(0, /*key=*/K - n);
    ASSERT_TRUE(sub.has_value());
    EXPECT_EQ(sub->rank(), K - 1 - n);
  });
}

TEST(Comm, RepeatedSplitsAreIndependent) {
  constexpr int K = 4;
  World world(K);
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    for (int round = 0; round < 10; ++round) {
      auto sub = c.split(n < 2 ? 0 : 1, n);
      ASSERT_TRUE(sub.has_value());
      EXPECT_EQ(sub->size(), 2);
      Buffer token;
      if (sub->rank() == 0) token.write_i32(round);
      sub->bcast(0, token);
      token.rewind();
      EXPECT_EQ(token.read_i32(), round);
    }
  });
}

TEST(Comm, NestedSplitOfSubgroup) {
  constexpr int K = 8;
  World world(K);
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    auto half = c.split(n / 4, n);  // two groups of 4
    ASSERT_TRUE(half.has_value());
    auto quarter = half->split(half->rank() / 2, half->rank());
    ASSERT_TRUE(quarter.has_value());
    EXPECT_EQ(quarter->size(), 2);
  });
}

TEST(Traffic, SendRecordsUnicastUnderCurrentStage) {
  World world(2);
  world.stats().set_stage("Shuffle");
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    if (n == 0) {
      Buffer b;
      b.resize(1000);
      c.send(1, 1, b);
    } else {
      (void)c.recv(0, 1);
    }
  });
  const auto s = world.stats().stage("Shuffle");
  EXPECT_EQ(s.unicast_msgs, 1u);
  EXPECT_EQ(s.unicast_bytes, 1000u);
  EXPECT_EQ(s.mcast_msgs, 0u);
  EXPECT_EQ(s.transmitted_bytes(), 1000u);
}

TEST(Traffic, BcastRecordsOneMulticastWithFanout) {
  constexpr int K = 5;
  World world(K);
  world.stats().set_stage("MulticastShuffle");
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    Buffer payload;
    if (n == 0) payload.resize(600);
    c.bcast(0, payload);
  });
  const auto s = world.stats().stage("MulticastShuffle");
  EXPECT_EQ(s.mcast_msgs, 1u);
  EXPECT_EQ(s.mcast_bytes, 600u);
  EXPECT_EQ(s.mcast_recipient_bytes, 600u * (K - 1));
  EXPECT_EQ(s.unicast_msgs, 0u);  // no control pollution
  EXPECT_EQ(s.transmitted_bytes(), 600u);
}

TEST(Traffic, BarrierAndGatherAreUnaccounted) {
  constexpr int K = 4;
  World world(K);
  world.stats().set_stage("ControlOnly");
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    c.barrier();
    Buffer b;
    b.resize(100);
    (void)c.gather(0, b);
    c.barrier();
  });
  const auto s = world.stats().stage("ControlOnly");
  EXPECT_EQ(s.unicast_msgs, 0u);
  EXPECT_EQ(s.unicast_bytes, 0u);
  EXPECT_EQ(s.mcast_msgs, 0u);
}

TEST(Traffic, SplitRecordsCommCreation) {
  constexpr int K = 4;
  World world(K);
  world.stats().set_stage("CodeGen");
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    (void)c.split(n % 2, n);  // creates 2 communicators
  });
  EXPECT_EQ(world.stats().stage("CodeGen").comm_creations, 2u);
}

TEST(Traffic, StagesAccumulateIndependently) {
  World world(2);
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    Buffer b;
    b.resize(10);
    world.stats().set_stage("A");
    c.barrier();
    if (n == 0) {
      c.send(1, 1, b);
    } else {
      (void)c.recv(0, 1);
    }
    c.barrier();
    world.stats().set_stage("B");
    c.barrier();
    if (n == 1) {
      c.send(0, 1, b);
      c.send(0, 2, b);
    } else {
      (void)c.recv(1, 1);
      (void)c.recv(1, 2);
    }
  });
  EXPECT_EQ(world.stats().stage("A").unicast_msgs, 1u);
  EXPECT_EQ(world.stats().stage("B").unicast_msgs, 2u);
  EXPECT_EQ(world.stats().total().unicast_msgs, 3u);
  EXPECT_EQ(world.stats().total().unicast_bytes, 30u);
}

TEST(Traffic, ResetClearsEverything) {
  World world(2);
  world.stats().set_stage("X");
  world.stats().record_unicast(5);
  world.stats().reset();
  EXPECT_EQ(world.stats().total().unicast_bytes, 0u);
  EXPECT_TRUE(world.stats().stage_names().empty());
}

// Stress: all-to-all exchange with many tags, verifying no message is
// lost or cross-delivered under thread contention.
TEST(Stress, AllToAllExchange) {
  constexpr int K = 8;
  constexpr int kRounds = 20;
  World world(K);
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    for (int round = 0; round < kRounds; ++round) {
      for (int dst = 0; dst < K; ++dst) {
        if (dst == n) continue;
        Buffer b;
        b.write_i32(n);
        b.write_i32(dst);
        b.write_i32(round);
        c.send(dst, round, b);
      }
      for (int src = 0; src < K; ++src) {
        if (src == n) continue;
        Buffer b = c.recv(src, round);
        EXPECT_EQ(b.read_i32(), src);
        EXPECT_EQ(b.read_i32(), n);
        EXPECT_EQ(b.read_i32(), round);
      }
    }
  });
  EXPECT_EQ(world.pending_messages(), 0u);
}

}  // namespace
}  // namespace cts::simmpi
