// Golden-schema test for the bench --json artifacts: JsonReport's
// output must stay machine-parseable (CI archives it and
// tools/bench_trend.py diffs consecutive runs), so the schema checker
// in bench/bench_common.h validates what JsonReport writes and rejects
// everything that would break the pipeline.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "bench/bench_common.h"

namespace cts::bench {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// A JsonReport writing through the real --json=path flag path; the
// file it produces must satisfy its own schema, required keys
// included.
TEST(BenchJsonSchema, JsonReportOutputValidates) {
  const std::string path =
      ::testing::TempDir() + "/bench_json_schema_roundtrip.json";
  const std::string flag = "--json=" + path;
  char arg0[] = "bench_json_test";
  std::string flag_copy = flag;
  char* argv[] = {arg0, flag_copy.data()};
  JsonReport json("demo", 2, argv);
  ASSERT_TRUE(json.enabled());
  json.add("terasort/total_s", 12.5);
  json.add("coded_r3/total_s", 7.25);
  json.add("regimes/coded_wins", 1.0);
  ASSERT_TRUE(json.write());

  const std::string content = ReadFile(path);
  EXPECT_EQ(CheckBenchJsonSchema(content), "");
  EXPECT_EQ(CheckBenchJsonSchema(
                content, {"terasort/total_s", "coded_r3/total_s"}),
            "");
  // A key the artifact does not carry is reported by name.
  const std::string err =
      CheckBenchJsonSchema(content, {"missing/total_s"});
  EXPECT_NE(err.find("missing/total_s"), std::string::npos) << err;
  std::remove(path.c_str());
}

TEST(BenchJsonSchema, NonFiniteMetricsSerializeAsNull) {
  const std::string path =
      ::testing::TempDir() + "/bench_json_schema_null.json";
  const std::string flag = "--json=" + path;
  char arg0[] = "bench_json_test";
  std::string flag_copy = flag;
  char* argv[] = {arg0, flag_copy.data()};
  JsonReport json("demo", 2, argv);
  json.add("inf_metric", std::numeric_limits<double>::infinity());
  ASSERT_TRUE(json.write());
  const std::string content = ReadFile(path);
  EXPECT_NE(content.find("null"), std::string::npos);
  EXPECT_EQ(CheckBenchJsonSchema(content, {"inf_metric"}), "");
  std::remove(path.c_str());
}

TEST(BenchJsonSchema, AcceptsTheDocumentedShapeDirectly) {
  EXPECT_EQ(CheckBenchJsonSchema(
                "{\n  \"bench\": \"scenarios\",\n"
                "  \"a/total_s\": 1.5,\n  \"b\": null,\n"
                "  \"c\": 1e-3\n}\n"),
            "");
  EXPECT_EQ(CheckBenchJsonSchema("{\"bench\":\"x\"}"), "");
}

TEST(BenchJsonSchema, RejectsSchemaViolations) {
  // Not an object.
  EXPECT_NE(CheckBenchJsonSchema("[]"), "");
  // Missing the bench name.
  EXPECT_NE(CheckBenchJsonSchema("{\"a\": 1}"), "");
  // bench must be a string.
  EXPECT_NE(CheckBenchJsonSchema("{\"bench\": 3}"), "");
  // Metrics must be numbers or null.
  EXPECT_NE(CheckBenchJsonSchema("{\"bench\": \"x\", \"a\": \"str\"}"), "");
  EXPECT_NE(CheckBenchJsonSchema("{\"bench\": \"x\", \"a\": true}"), "");
  // Duplicate keys would make the artifact ambiguous.
  EXPECT_NE(
      CheckBenchJsonSchema("{\"bench\": \"x\", \"a\": 1, \"a\": 2}"), "");
  // Truncated / trailing garbage.
  EXPECT_NE(CheckBenchJsonSchema("{\"bench\": \"x\""), "");
  EXPECT_NE(CheckBenchJsonSchema("{\"bench\": \"x\"} extra"), "");
  // Unquoted key.
  EXPECT_NE(CheckBenchJsonSchema("{bench: \"x\"}"), "");
}

}  // namespace
}  // namespace cts::bench
