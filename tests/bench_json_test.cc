// Golden-schema test for the bench --json artifacts: JsonReport's
// output must stay machine-parseable (CI archives it and
// tools/bench_trend.py diffs consecutive runs), so the schema checker
// in bench/bench_common.h validates what JsonReport writes and rejects
// everything that would break the pipeline.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "bench/bench_common.h"
#include "obs/metrics.h"

namespace cts::bench {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// A JsonReport writing through the real --json=path flag path; the
// file it produces must satisfy its own schema, required keys
// included.
TEST(BenchJsonSchema, JsonReportOutputValidates) {
  const std::string path =
      ::testing::TempDir() + "/bench_json_schema_roundtrip.json";
  const std::string flag = "--json=" + path;
  char arg0[] = "bench_json_test";
  std::string flag_copy = flag;
  char* argv[] = {arg0, flag_copy.data()};
  JsonReport json("demo", 2, argv);
  ASSERT_TRUE(json.enabled());
  json.add("terasort/total_s", 12.5);
  json.add("coded_r3/total_s", 7.25);
  json.add("regimes/coded_wins", 1.0);
  ASSERT_TRUE(json.write());

  const std::string content = ReadFile(path);
  EXPECT_EQ(CheckBenchJsonSchema(content), "");
  EXPECT_EQ(CheckBenchJsonSchema(
                content, {"terasort/total_s", "coded_r3/total_s"}),
            "");
  // A key the artifact does not carry is reported by name.
  const std::string err =
      CheckBenchJsonSchema(content, {"missing/total_s"});
  EXPECT_NE(err.find("missing/total_s"), std::string::npos) << err;
  std::remove(path.c_str());
}

TEST(BenchJsonSchema, NonFiniteMetricsSerializeAsNull) {
  const std::string path =
      ::testing::TempDir() + "/bench_json_schema_null.json";
  const std::string flag = "--json=" + path;
  char arg0[] = "bench_json_test";
  std::string flag_copy = flag;
  char* argv[] = {arg0, flag_copy.data()};
  JsonReport json("demo", 2, argv);
  json.add("inf_metric", std::numeric_limits<double>::infinity());
  ASSERT_TRUE(json.write());
  const std::string content = ReadFile(path);
  EXPECT_NE(content.find("null"), std::string::npos);
  EXPECT_EQ(CheckBenchJsonSchema(content, {"inf_metric"}), "");
  std::remove(path.c_str());
}

TEST(BenchJsonSchema, AcceptsTheDocumentedShapeDirectly) {
  EXPECT_EQ(CheckBenchJsonSchema(
                "{\n  \"bench\": \"scenarios\",\n"
                "  \"a/total_s\": 1.5,\n  \"b\": null,\n"
                "  \"c\": 1e-3\n}\n"),
            "");
  EXPECT_EQ(CheckBenchJsonSchema("{\"bench\":\"x\"}"), "");
}

// The one nesting exception: the "metrics" key carries the
// obs::MetricRegistry snapshot as a flat numeric object.
TEST(BenchJsonSchema, AcceptsTheNestedMetricsObject) {
  EXPECT_EQ(CheckBenchJsonSchema(
                "{\n  \"bench\": \"scenarios\",\n  \"a/total_s\": 1.5,\n"
                "  \"metrics\": {\n"
                "    \"simmpi/Shuffle/unicast_bytes\": 4096,\n"
                "    \"job/cache_hits\": 16,\n    \"odd\": null\n  }\n}\n"),
            "");
  // Empty nested object is fine too.
  EXPECT_EQ(CheckBenchJsonSchema(
                "{\"bench\": \"x\", \"metrics\": {}}"),
            "");
  // Nesting anywhere else is rejected...
  EXPECT_NE(CheckBenchJsonSchema(
                "{\"bench\": \"x\", \"other\": {\"a\": 1}}"),
            "");
  // ...as are non-numeric registry values, duplicate registry keys,
  // non-finite values, and a second level of nesting.
  EXPECT_NE(CheckBenchJsonSchema(
                "{\"bench\": \"x\", \"metrics\": {\"a\": \"str\"}}"),
            "");
  EXPECT_NE(CheckBenchJsonSchema(
                "{\"bench\": \"x\", \"metrics\": {\"a\": 1, \"a\": 2}}"),
            "");
  EXPECT_NE(CheckBenchJsonSchema(
                "{\"bench\": \"x\", \"metrics\": {\"a\": inf}}"),
            "");
  EXPECT_NE(CheckBenchJsonSchema(
                "{\"bench\": \"x\", \"metrics\": {\"a\": {\"b\": 1}}}"),
            "");
}

// A JsonReport written while the process-wide registry is non-empty
// embeds the snapshot under "metrics", and the artifact still
// satisfies its own schema.
TEST(BenchJsonSchema, JsonReportEmbedsTheRegistrySnapshot) {
  obs::MetricRegistry::Global().counter("test/embedded_counter").add(3);
  const std::string path =
      ::testing::TempDir() + "/bench_json_schema_registry.json";
  JsonReport json("demo", path);
  json.add("a/total_s", 1.0);
  ASSERT_TRUE(json.write());
  const std::string content = ReadFile(path);
  EXPECT_EQ(CheckBenchJsonSchema(content, {"a/total_s"}), "");
  EXPECT_NE(content.find("\"metrics\": {"), std::string::npos) << content;
  EXPECT_NE(content.find("\"test/embedded_counter\": 3"), std::string::npos)
      << content;
  std::remove(path.c_str());
}

TEST(BenchJsonSchema, RejectsSchemaViolations) {
  // Not an object.
  EXPECT_NE(CheckBenchJsonSchema("[]"), "");
  // Missing the bench name.
  EXPECT_NE(CheckBenchJsonSchema("{\"a\": 1}"), "");
  // bench must be a string.
  EXPECT_NE(CheckBenchJsonSchema("{\"bench\": 3}"), "");
  // Metrics must be numbers or null.
  EXPECT_NE(CheckBenchJsonSchema("{\"bench\": \"x\", \"a\": \"str\"}"), "");
  EXPECT_NE(CheckBenchJsonSchema("{\"bench\": \"x\", \"a\": true}"), "");
  // Duplicate keys would make the artifact ambiguous.
  EXPECT_NE(
      CheckBenchJsonSchema("{\"bench\": \"x\", \"a\": 1, \"a\": 2}"), "");
  // Truncated / trailing garbage.
  EXPECT_NE(CheckBenchJsonSchema("{\"bench\": \"x\""), "");
  EXPECT_NE(CheckBenchJsonSchema("{\"bench\": \"x\"} extra"), "");
  // Unquoted key.
  EXPECT_NE(CheckBenchJsonSchema("{bench: \"x\"}"), "");
}

}  // namespace
}  // namespace cts::bench
