// Scale-out regression suite: the live harness well past the old
// K = 32 mask cap.
//
//  * Plain TeraSort executes end-to-end at K = 100 (mask-free split,
//    sharded TrafficStats, arena-backed shuffle payloads) and leaks no
//    mailbox state.
//  * The sharded transport keeps exact counters and a valid merged
//    transmission log under many nodes x many keys of contention
//    (runs under the TSan CI job).
//  * ShuffleSync::kOverlapped moves byte-identical per-stage traffic
//    to the barrier schedule — the TrafficStats::set_stage audit
//    pinned as a regression test.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "codedterasort/coded_terasort.h"
#include "gtest/gtest.h"
#include "keyvalue/recordio.h"
#include "terasort/terasort.h"

namespace cts {
namespace {

void ExpectGloballySorted(const AlgorithmResult& result) {
  const Record* prev = nullptr;
  for (const auto& partition : result.partitions) {
    EXPECT_TRUE(IsSorted(partition));
    if (!partition.empty()) {
      if (prev != nullptr) {
        EXPECT_FALSE(RecordLess(partition.front(), *prev));
      }
      prev = &partition.back();
    }
  }
}

TEST(ScaleOut, TeraSortCompletesLiveAtK100) {
  SortConfig config;
  config.num_nodes = 100;
  config.num_records = 20000;
  config.shuffle_sync = ShuffleSync::kOverlapped;
  // RunTeraSort itself asserts World::pending_messages() == 0 after the
  // run — the K = 100 mailbox leak check.
  const AlgorithmResult result = RunTeraSort(config);
  EXPECT_EQ(result.total_output_records(), config.num_records);
  ExpectGloballySorted(result);
  const simmpi::ChannelCounters shuffle = result.traffic.at(stage::kShuffle);
  EXPECT_EQ(shuffle.unicast_msgs, std::uint64_t{100 * 99});
  ASSERT_EQ(result.shuffle_node_traffic.size(), std::size_t{100});
}

TEST(ScaleOut, TeraSortBarrierScheduleAlsoRunsAtK100) {
  SortConfig config;
  config.num_nodes = 100;
  config.num_records = 10000;
  config.shuffle_sync = ShuffleSync::kBarrier;
  const AlgorithmResult result = RunTeraSort(config);
  EXPECT_EQ(result.total_output_records(), config.num_records);
  ExpectGloballySorted(result);
}

// Many nodes x many keys hammering one TrafficStats and one Mailbox:
// exact aggregate counters, exact per-node totals, and a merged
// transmission log that still satisfies the simnet seq contract
// (unique, contiguous from 0, per-sender monotone in program order).
TEST(ScaleOut, ShardedTransportKeepsExactCountsUnderContention) {
  constexpr int K = 48;
  constexpr int kRounds = 6;
  constexpr std::uint64_t kPayloadBytes = 12;
  simmpi::World world(K);

  std::vector<std::thread> threads;
  threads.reserve(K);
  for (NodeId n = 0; n < K; ++n) {
    threads.emplace_back([&world, n] {
      simmpi::Comm c = simmpi::Comm::World(world, n);
      for (int round = 0; round < kRounds; ++round) {
        std::vector<simmpi::Request> recvs;
        recvs.reserve(K - 1);
        for (int src = 0; src < K; ++src) {
          if (src == n) continue;
          recvs.push_back(c.irecv(src, round));
        }
        for (int dst = 0; dst < K; ++dst) {
          if (dst == n) continue;
          Buffer b;
          b.write_i32(n);
          b.write_i32(dst);
          b.write_i32(round);
          (void)c.isend(dst, round, b);
        }
        std::size_t i = 0;
        for (int src = 0; src < K; ++src) {
          if (src == n) continue;
          Buffer b = simmpi::Comm::wait(recvs[i++]);
          EXPECT_EQ(b.read_i32(), src);
          EXPECT_EQ(b.read_i32(), n);
          EXPECT_EQ(b.read_i32(), round);
        }
        c.barrier();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(world.pending_messages(), std::size_t{0});

  const std::uint64_t expected_msgs =
      std::uint64_t{K} * (K - 1) * kRounds;
  const simmpi::ChannelCounters total = world.stats().total();
  EXPECT_EQ(total.unicast_msgs, expected_msgs);
  EXPECT_EQ(total.unicast_bytes, expected_msgs * kPayloadBytes);

  const auto per_node = world.stats().per_node("");
  ASSERT_EQ(per_node.size(), std::size_t{K});
  for (const auto& nt : per_node) {
    EXPECT_EQ(nt.tx_bytes, std::uint64_t{K - 1} * kRounds * kPayloadBytes);
    EXPECT_EQ(nt.rx_bytes, std::uint64_t{K - 1} * kRounds * kPayloadBytes);
  }

  const simnet::TransmissionLog log = world.stats().transmission_log("");
  ASSERT_EQ(log.size(), expected_msgs);
  std::vector<std::uint64_t> last_seq(K, 0);
  std::vector<bool> seen(K, false);
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].seq, i);  // sorted, unique, contiguous from 0
    const auto src = static_cast<std::size_t>(log[i].src);
    if (seen[src]) {
      EXPECT_GT(log[i].seq, last_seq[src]);
    }
    last_seq[src] = log[i].seq;
    seen[src] = true;
  }
}

// Satellite of the set_stage audit (see simmpi/traffic.h): nonblocking
// sends account at initiation inside the stage body, so the overlapped
// schedules must charge exactly the bytes the barrier schedules do, to
// exactly the same stages.
void ExpectSameStageTraffic(const AlgorithmResult& barrier,
                            const AlgorithmResult& overlapped) {
  ASSERT_EQ(barrier.stage_order, overlapped.stage_order);
  for (const auto& [name, a] : barrier.traffic) {
    SCOPED_TRACE(name);
    const auto it = overlapped.traffic.find(name);
    ASSERT_NE(it, overlapped.traffic.end());
    const simmpi::ChannelCounters& b = it->second;
    EXPECT_EQ(a.unicast_msgs, b.unicast_msgs);
    EXPECT_EQ(a.unicast_bytes, b.unicast_bytes);
    EXPECT_EQ(a.mcast_msgs, b.mcast_msgs);
    EXPECT_EQ(a.mcast_bytes, b.mcast_bytes);
    EXPECT_EQ(a.mcast_recipient_bytes, b.mcast_recipient_bytes);
    EXPECT_EQ(a.comm_creations, b.comm_creations);
  }
  EXPECT_EQ(barrier.traffic.size(), overlapped.traffic.size());
  ASSERT_EQ(barrier.shuffle_node_traffic.size(),
            overlapped.shuffle_node_traffic.size());
  for (std::size_t k = 0; k < barrier.shuffle_node_traffic.size(); ++k) {
    EXPECT_EQ(barrier.shuffle_node_traffic[k].tx_bytes,
              overlapped.shuffle_node_traffic[k].tx_bytes);
    EXPECT_EQ(barrier.shuffle_node_traffic[k].rx_bytes,
              overlapped.shuffle_node_traffic[k].rx_bytes);
  }
}

TEST(ScaleOut, OverlappedShuffleTrafficMatchesBarrierPerStage) {
  {
    SortConfig config;
    config.num_nodes = 10;
    config.num_records = 5000;
    config.shuffle_sync = ShuffleSync::kBarrier;
    const AlgorithmResult barrier = RunTeraSort(config);
    config.shuffle_sync = ShuffleSync::kOverlapped;
    const AlgorithmResult overlapped = RunTeraSort(config);
    ExpectSameStageTraffic(barrier, overlapped);
  }
  {
    SortConfig config;
    config.num_nodes = 8;
    config.redundancy = 3;
    config.num_records = 5000;
    config.codegen_mode = CodeGenMode::kBatched;
    config.shuffle_sync = ShuffleSync::kBarrier;
    const AlgorithmResult barrier = RunCodedTeraSort(config);
    config.shuffle_sync = ShuffleSync::kOverlapped;
    const AlgorithmResult overlapped = RunCodedTeraSort(config);
    ExpectSameStageTraffic(barrier, overlapped);
  }
}

}  // namespace
}  // namespace cts
