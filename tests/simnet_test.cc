// Tests for the discrete-event schedule simulator and its agreement
// with the analytics closed forms on real shuffle logs.
#include <gtest/gtest.h>

#include "analytics/report.h"
#include "codedterasort/coded_terasort.h"
#include "simnet/schedule.h"
#include "terasort/terasort.h"

namespace cts::simnet {
namespace {

LinkModel UnitLink() {
  LinkModel link;
  link.bytes_per_sec = 1.0;  // 1 byte/s: durations equal byte counts
  link.multicast_log_coeff = 0.0;
  return link;
}

TEST(LinkModel, TxAppliesMulticastPenaltyRxDoesNot) {
  LinkModel link;
  link.bytes_per_sec = 100.0;
  link.multicast_log_coeff = 0.5;
  const Transmission unicast{0, {1}, 100};
  EXPECT_DOUBLE_EQ(link.tx_seconds(unicast), 1.0);
  EXPECT_DOUBLE_EQ(link.rx_seconds(unicast), 1.0);
  const Transmission mcast{0, {1, 2, 3, 4}, 100};
  EXPECT_DOUBLE_EQ(link.tx_seconds(mcast), 1.0 + 0.5 * 2.0);  // log2(4)=2
  EXPECT_DOUBLE_EQ(link.rx_seconds(mcast), 1.0);
}

TEST(Serial, MakespanIsSumOfDurations) {
  const TransmissionLog log{{0, {1}, 10}, {1, {0}, 20}, {0, {2}, 5}};
  EXPECT_DOUBLE_EQ(SerialMakespan(log, UnitLink()), 35.0);
  EXPECT_DOUBLE_EQ(SerialMakespan({}, UnitLink()), 0.0);
}

TEST(Parallel, DisjointTransfersOverlapCompletely) {
  // 0->1 and 2->3 share no links: makespan = max, not sum.
  const TransmissionLog log{{0, {1}, 10}, {2, {3}, 30}};
  EXPECT_DOUBLE_EQ(ParallelMakespan(log, UnitLink(), 4, true), 30.0);
  EXPECT_DOUBLE_EQ(ParallelMakespan(log, UnitLink(), 4, false), 30.0);
}

TEST(Parallel, SharedSenderSerializes) {
  const TransmissionLog log{{0, {1}, 10}, {0, {2}, 10}};
  EXPECT_DOUBLE_EQ(ParallelMakespan(log, UnitLink(), 3, true), 20.0);
}

TEST(Parallel, SharedReceiverSerializes) {
  const TransmissionLog log{{0, {2}, 10}, {1, {2}, 10}};
  EXPECT_DOUBLE_EQ(ParallelMakespan(log, UnitLink(), 3, true), 20.0);
}

TEST(Parallel, HalfDuplexSerializesOpposingDirections) {
  // 0->1 then 1->0: full duplex overlaps after the first finishes...
  // actually 1 must receive before sending in list order; half duplex
  // gives 20, full duplex also 20 here (1's send waits for its recv in
  // list order? no — list order only gates resource availability).
  const TransmissionLog log{{0, {1}, 10}, {1, {0}, 10}};
  // Full duplex: 1's uplink and 0's downlink are free at t=0, but 1's
  // downlink is busy until 10 — independent resources, so the second
  // transfer runs [0,10] too.
  EXPECT_DOUBLE_EQ(ParallelMakespan(log, UnitLink(), 2, true), 10.0);
  // Half duplex: node links are shared, so the transfers serialize.
  EXPECT_DOUBLE_EQ(ParallelMakespan(log, UnitLink(), 2, false), 20.0);
}

TEST(Parallel, MulticastOccupiesAllReceivers) {
  const TransmissionLog log{{0, {1, 2}, 10}, {3, {2}, 10}};
  // The second transfer shares receiver 2's downlink.
  EXPECT_DOUBLE_EQ(ParallelMakespan(log, UnitLink(), 4, true), 20.0);
}

TEST(Parallel, NeverBeatsTheLinkBound) {
  const TransmissionLog log{{0, {1}, 7},  {1, {2}, 13}, {2, {0}, 5},
                            {0, {2}, 11}, {1, {0}, 3},  {2, {1}, 9}};
  for (const bool fd : {true, false}) {
    const double makespan = ParallelMakespan(log, UnitLink(), 3, fd);
    const double bound = ParallelLinkBound(log, UnitLink(), 3, fd);
    EXPECT_GE(makespan + 1e-12, bound);
    EXPECT_LE(makespan, SerialMakespan(log, UnitLink()) + 1e-12);
  }
}

// ---- Replay edge cases ----

TEST(Replay, EmptyLogIsZeroEverywhere) {
  for (const Discipline d :
       {Discipline::kSerial, Discipline::kParallelHalfDuplex,
        Discipline::kParallelFullDuplex}) {
    for (const ReplayOrder o : {ReplayOrder::kLogOrder,
                                ReplayOrder::kPerSender}) {
      EXPECT_DOUBLE_EQ(ReplayMakespan({}, UnitLink(), 4, d, o), 0.0);
    }
  }
}

TEST(Replay, SingleNodeWorldHasNothingToSend) {
  // A 1-node world can log no transmissions (src == dst is invalid);
  // every discipline agrees on an empty makespan.
  for (const Discipline d :
       {Discipline::kSerial, Discipline::kParallelHalfDuplex,
        Discipline::kParallelFullDuplex}) {
    EXPECT_DOUBLE_EQ(ReplayMakespan({}, UnitLink(), 1, d), 0.0);
  }
}

TEST(Replay, MulticastFanoutOnePenaltyVanishes) {
  LinkModel link;
  link.bytes_per_sec = 1.0;
  link.multicast_log_coeff = 10.0;  // huge coeff must not matter
  const Transmission fanout1{0, {1}, 25};
  EXPECT_FALSE(fanout1.is_multicast());
  EXPECT_DOUBLE_EQ(link.tx_seconds(fanout1), 25.0);
  EXPECT_DOUBLE_EQ(link.tx_seconds(fanout1), link.rx_seconds(fanout1));
  const TransmissionLog log{fanout1};
  for (const Discipline d :
       {Discipline::kSerial, Discipline::kParallelHalfDuplex,
        Discipline::kParallelFullDuplex}) {
    EXPECT_DOUBLE_EQ(ReplayMakespan(log, link, 2, d), 25.0);
  }
}

TEST(Replay, SingleSenderSerialEqualsParallel) {
  // All traffic leaves one node: its uplink serializes everything, so
  // the shared-medium sum and the per-node-link replays coincide,
  // under both initiation orders.
  const TransmissionLog log{
      {0, {1}, 10, 0}, {0, {2}, 20, 1}, {0, {3}, 5, 2}, {0, {1}, 15, 3}};
  const double serial = ReplayMakespan(log, UnitLink(), 4,
                                       Discipline::kSerial);
  EXPECT_DOUBLE_EQ(serial, 50.0);
  for (const Discipline d : {Discipline::kParallelHalfDuplex,
                             Discipline::kParallelFullDuplex}) {
    for (const ReplayOrder o : {ReplayOrder::kLogOrder,
                                ReplayOrder::kPerSender}) {
      EXPECT_DOUBLE_EQ(ReplayMakespan(log, UnitLink(), 4, d, o), serial);
    }
  }
}

TEST(Parallel, RejectsOutOfRangeNodes) {
  const TransmissionLog log{{0, {5}, 10}};
  EXPECT_THROW(ParallelMakespan(log, UnitLink(), 3, true), CheckError);
  EXPECT_THROW(ParallelLinkBound(log, UnitLink(), 3, true), CheckError);
}

// ---- Cross-validation against real shuffle logs ----

TEST(CrossValidation, SerialReplayMatchesAnalyticsTeraSort) {
  SortConfig config;
  config.num_nodes = 6;
  config.num_records = 6000;
  simmpi::World world(config.num_nodes);
  RunRecorder recorder(config.num_nodes);
  RunOnCluster(world, recorder, [&](simmpi::Comm& comm, RunRecorder& rec) {
    TeraSortNode(comm, rec, config);
  });
  const auto log = world.stats().transmission_log(stage::kShuffle);
  EXPECT_EQ(log.size(), 6u * 5u);

  const CostModel model;
  LinkModel link;
  link.bytes_per_sec = model.effective_link_rate();
  link.multicast_log_coeff = model.multicast_log_coeff;
  const double replay = SerialMakespan(log, link);
  const double closed =
      model.unicast_seconds(static_cast<double>(
          world.stats().stage(stage::kShuffle).unicast_bytes));
  EXPECT_NEAR(replay, closed, closed * 1e-9);
}

TEST(CrossValidation, SerialReplayMatchesAnalyticsCoded) {
  SortConfig config;
  config.num_nodes = 6;
  config.redundancy = 2;
  config.num_records = 6000;
  simmpi::World world(config.num_nodes);
  RunRecorder recorder(config.num_nodes);
  RunOnCluster(world, recorder, [&](simmpi::Comm& comm, RunRecorder& rec) {
    CodedTeraSortNode(comm, rec, config);
  });
  const auto log = world.stats().transmission_log(stage::kShuffle);
  EXPECT_EQ(log.size(), Binomial(6, 3) * 3);
  for (const auto& t : log) {
    EXPECT_EQ(t.dsts.size(), 2u);  // every packet reaches r receivers
  }

  const CostModel model;
  LinkModel link;
  link.bytes_per_sec = model.effective_link_rate();
  link.multicast_log_coeff = model.multicast_log_coeff;
  const double replay = SerialMakespan(log, link);
  const auto counters = world.stats().stage(stage::kShuffle);
  const double closed = model.multicast_seconds(
      static_cast<double>(counters.mcast_bytes), 2.0);
  EXPECT_NEAR(replay, closed, closed * 1e-9);
}

TEST(CrossValidation, ParallelReplayBoundedByClosedForms) {
  // Event-driven parallel makespan must lie between the link bound
  // (analytics' parallel closed form) and the serial sum.
  SortConfig config;
  config.num_nodes = 8;
  config.num_records = 8000;
  config.distribution = KeyDistribution::kBalanced;
  simmpi::World world(config.num_nodes);
  RunRecorder recorder(config.num_nodes);
  RunOnCluster(world, recorder, [&](simmpi::Comm& comm, RunRecorder& rec) {
    TeraSortNode(comm, rec, config);
  });
  const auto log = world.stats().transmission_log(stage::kShuffle);
  const LinkModel link;  // defaults
  for (const bool fd : {true, false}) {
    const double makespan = ParallelMakespan(log, link, 8, fd);
    EXPECT_GE(makespan + 1e-12, ParallelLinkBound(log, link, 8, fd));
    EXPECT_LE(makespan, SerialMakespan(log, link) + 1e-12);
  }
  // TeraSort's serial-by-sender order parallelizes poorly as-is (node
  // 0 sends everything first), but still beats the serial medium.
  EXPECT_LT(ParallelMakespan(log, link, 8, true),
            SerialMakespan(log, link) * 0.8);
}

}  // namespace
}  // namespace cts::simnet
