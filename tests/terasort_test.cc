// End-to-end tests of the baseline TeraSort implementation.
#include <gtest/gtest.h>

#include <algorithm>

#include "analytics/loads.h"
#include "keyvalue/recordio.h"
#include "keyvalue/teragen.h"
#include "terasort/terasort.h"

namespace cts {
namespace {

// Flattens per-node partitions in node order.
std::vector<Record> Concatenate(const AlgorithmResult& result) {
  std::vector<Record> all;
  for (const auto& p : result.partitions) {
    all.insert(all.end(), p.begin(), p.end());
  }
  return all;
}

std::vector<Record> ExpectedSorted(const SortConfig& config) {
  auto recs =
      TeraGen(config.seed, config.distribution).generate(0, config.num_records);
  std::sort(recs.begin(), recs.end(), RecordLess);
  return recs;
}

TEST(TeraSort, SortsUniformData) {
  SortConfig config;
  config.num_nodes = 4;
  config.num_records = 4000;
  const AlgorithmResult result = RunTeraSort(config);
  EXPECT_EQ(result.algorithm, "TeraSort");
  EXPECT_EQ(Concatenate(result), ExpectedSorted(config));
}

TEST(TeraSort, EachPartitionIsSortedAndOrderedAcrossNodes) {
  SortConfig config;
  config.num_nodes = 5;
  config.num_records = 5000;
  const AlgorithmResult result = RunTeraSort(config);
  for (const auto& p : result.partitions) {
    EXPECT_TRUE(IsSorted(p));
  }
  // Last key of partition k precedes first key of partition k+1.
  for (std::size_t k = 0; k + 1 < result.partitions.size(); ++k) {
    const auto& cur = result.partitions[k];
    const auto& next = result.partitions[k + 1];
    if (cur.empty() || next.empty()) continue;
    EXPECT_LE(CompareKeys(cur.back().key, next.front().key), 0);
  }
}

TEST(TeraSort, SingleNodeDegeneratesToLocalSort) {
  SortConfig config;
  config.num_nodes = 1;
  config.num_records = 1000;
  const AlgorithmResult result = RunTeraSort(config);
  EXPECT_EQ(Concatenate(result), ExpectedSorted(config));
  // No shuffle traffic at all.
  const auto it = result.traffic.find(stage::kShuffle);
  ASSERT_NE(it, result.traffic.end());
  EXPECT_EQ(it->second.unicast_bytes, 0u);
}

TEST(TeraSort, ShuffleTrafficMatchesLoadFormula) {
  // With uniform keys, the shuffled payload fraction approaches
  // 1 - 1/K (paper eq. (2) with r = 1). Message count is exactly
  // K*(K-1): each node unicasts one value to every other node.
  SortConfig config;
  config.num_nodes = 8;
  config.num_records = 16000;
  const AlgorithmResult result = RunTeraSort(config);
  const auto shuffle = result.traffic.at(stage::kShuffle);
  EXPECT_EQ(shuffle.unicast_msgs, 8u * 7u);
  EXPECT_EQ(shuffle.mcast_msgs, 0u);
  const double payload_fraction =
      static_cast<double>(shuffle.unicast_bytes) /
      static_cast<double>(config.total_bytes());
  EXPECT_NEAR(payload_fraction, TeraSortLoad(8), 0.02);
}

TEST(TeraSort, WorkCountersAreConsistent) {
  SortConfig config;
  config.num_nodes = 4;
  config.num_records = 4000;
  const AlgorithmResult result = RunTeraSort(config);
  ASSERT_EQ(result.work.size(), 4u);
  const NodeWork total = result.total_work();
  // Every record is hashed exactly once and sorted exactly once.
  EXPECT_EQ(total.map_bytes, config.total_bytes());
  EXPECT_EQ(total.reduce_bytes, config.total_bytes());
  EXPECT_EQ(total.map_files, 4u);
  // Pack bytes equal shuffled payload bytes; unpack equals pack.
  EXPECT_EQ(total.pack_bytes, result.traffic.at(stage::kShuffle).unicast_bytes);
  EXPECT_EQ(total.unpack_bytes, total.pack_bytes);
  // TeraSort never touches the codec.
  EXPECT_EQ(total.codec.packets_encoded, 0u);
  EXPECT_EQ(total.codec.packets_decoded, 0u);
}

TEST(TeraSort, WallTimesRecordedForEveryStage) {
  SortConfig config;
  config.num_nodes = 3;
  config.num_records = 900;
  const AlgorithmResult result = RunTeraSort(config);
  for (const char* s : {stage::kMap, stage::kPack, stage::kShuffle,
                        stage::kUnpack, stage::kReduce}) {
    ASSERT_TRUE(result.wall_seconds.count(s)) << s;
    EXPECT_GE(result.wall_seconds.at(s), 0.0);
  }
  EXPECT_FALSE(result.wall_seconds.count(stage::kCodeGen));
}

TEST(TeraSort, DeterministicAcrossRuns) {
  SortConfig config;
  config.num_nodes = 4;
  config.num_records = 2000;
  const AlgorithmResult a = RunTeraSort(config);
  const AlgorithmResult b = RunTeraSort(config);
  EXPECT_EQ(Concatenate(a), Concatenate(b));
  EXPECT_EQ(a.traffic.at(stage::kShuffle).unicast_bytes,
            b.traffic.at(stage::kShuffle).unicast_bytes);
}

TEST(TeraSort, HandlesRecordCountNotDivisibleByNodes) {
  SortConfig config;
  config.num_nodes = 7;
  config.num_records = 1009;  // prime
  const AlgorithmResult result = RunTeraSort(config);
  EXPECT_EQ(Concatenate(result), ExpectedSorted(config));
}

TEST(TeraSort, HandlesTinyInputs) {
  SortConfig config;
  config.num_nodes = 4;
  config.num_records = 3;  // fewer records than nodes
  const AlgorithmResult result = RunTeraSort(config);
  EXPECT_EQ(result.total_output_records(), 3u);
  EXPECT_EQ(Concatenate(result), ExpectedSorted(config));
}

TEST(TeraSort, HandlesEmptyInput) {
  SortConfig config;
  config.num_nodes = 3;
  config.num_records = 0;
  const AlgorithmResult result = RunTeraSort(config);
  EXPECT_EQ(result.total_output_records(), 0u);
}

class TeraSortDistributions
    : public ::testing::TestWithParam<KeyDistribution> {};

TEST_P(TeraSortDistributions, SortsCorrectlyUnderSkewWithSampledPartitioner) {
  SortConfig config;
  config.num_nodes = 4;
  config.num_records = 4000;
  config.distribution = GetParam();
  config.partitioner = PartitionerKind::kSampled;
  const AlgorithmResult result = RunTeraSort(config);
  EXPECT_EQ(Concatenate(result), ExpectedSorted(config));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TeraSortDistributions,
    ::testing::Values(KeyDistribution::kUniform, KeyDistribution::kSorted,
                      KeyDistribution::kReverseSorted,
                      KeyDistribution::kSkewed,
                      KeyDistribution::kFewDistinct),
    [](const auto& info) {
      switch (info.param) {
        case KeyDistribution::kUniform: return "Uniform";
        case KeyDistribution::kSorted: return "Sorted";
        case KeyDistribution::kReverseSorted: return "ReverseSorted";
        case KeyDistribution::kSkewed: return "Skewed";
        case KeyDistribution::kFewDistinct: return "FewDistinct";
        case KeyDistribution::kBalanced: return "Balanced";
      }
      return "Unknown";
    });

TEST(TeraSort, SampledPartitionerBalancesSkew) {
  SortConfig skewed;
  skewed.num_nodes = 8;
  skewed.num_records = 16000;
  skewed.distribution = KeyDistribution::kSkewed;

  SortConfig sampled = skewed;
  sampled.partitioner = PartitionerKind::kSampled;
  sampled.sample_size = 4000;

  const AlgorithmResult range_run = RunTeraSort(skewed);
  const AlgorithmResult sampled_run = RunTeraSort(sampled);

  auto imbalance = [](const AlgorithmResult& r) {
    std::size_t mx = 0;
    for (const auto& p : r.partitions) mx = std::max(mx, p.size());
    return static_cast<double>(mx) /
           (static_cast<double>(r.total_output_records()) /
            static_cast<double>(r.partitions.size()));
  };
  EXPECT_GT(imbalance(range_run), 2.0);   // range partitioner collapses
  EXPECT_LT(imbalance(sampled_run), 1.5); // sampler restores balance
}

}  // namespace
}  // namespace cts
