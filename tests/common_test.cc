// Unit tests for src/common: Buffer serialization, checks, RNG, units.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "common/units.h"

namespace cts {
namespace {

TEST(Check, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(CTS_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(CTS_CHECK_EQ(3, 3));
  EXPECT_NO_THROW(CTS_CHECK_LT(1, 2));
}

TEST(Check, FailingCheckThrowsCheckError) {
  EXPECT_THROW(CTS_CHECK(false), CheckError);
  EXPECT_THROW(CTS_CHECK_EQ(1, 2), CheckError);
  EXPECT_THROW(CTS_CHECK_MSG(false, "context " << 42), CheckError);
}

TEST(Check, MessageContainsExpressionAndOperands) {
  try {
    CTS_CHECK_EQ(2 + 2, 5);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2"), std::string::npos);
    EXPECT_NE(what.find("lhs=4"), std::string::npos);
    EXPECT_NE(what.find("rhs=5"), std::string::npos);
  }
}

TEST(Buffer, ScalarRoundTrip) {
  Buffer b;
  b.write_u8(0xab);
  b.write_u32(0xdeadbeefu);
  b.write_u64(0x0123456789abcdefULL);
  b.write_i32(-42);
  b.write_i64(-1234567890123LL);
  b.write_f64(3.25);

  EXPECT_EQ(b.read_u8(), 0xab);
  EXPECT_EQ(b.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(b.read_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(b.read_i32(), -42);
  EXPECT_EQ(b.read_i64(), -1234567890123LL);
  EXPECT_EQ(b.read_f64(), 3.25);
  EXPECT_EQ(b.remaining(), 0u);
}

TEST(Buffer, LittleEndianLayout) {
  Buffer b;
  b.write_u32(0x01020304u);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b.data()[0], 0x04);
  EXPECT_EQ(b.data()[3], 0x01);
}

TEST(Buffer, StringAndBlobRoundTrip) {
  Buffer b;
  b.write_string("hello terasort");
  const std::vector<std::uint8_t> blob{1, 2, 3, 0, 255};
  b.write_blob(blob);
  EXPECT_EQ(b.read_string(), "hello terasort");
  EXPECT_EQ(b.read_blob(), blob);
}

TEST(Buffer, EmptyStringAndBlob) {
  Buffer b;
  b.write_string("");
  b.write_blob({});
  EXPECT_EQ(b.read_string(), "");
  EXPECT_TRUE(b.read_blob().empty());
}

TEST(Buffer, UnderrunThrows) {
  Buffer b;
  b.write_u8(1);
  (void)b.read_u8();
  EXPECT_THROW((void)b.read_u8(), CheckError);
  EXPECT_THROW((void)b.read_u32(), CheckError);
}

TEST(Buffer, RewindAndSeek) {
  Buffer b;
  b.write_u32(7);
  b.write_u32(9);
  EXPECT_EQ(b.read_u32(), 7u);
  b.rewind();
  EXPECT_EQ(b.read_u32(), 7u);
  b.seek(4);
  EXPECT_EQ(b.read_u32(), 9u);
  EXPECT_THROW(b.seek(100), CheckError);
}

TEST(Buffer, CloneIsDeepAndPreservesCursor) {
  Buffer b;
  b.write_u32(1);
  b.write_u32(2);
  (void)b.read_u32();
  Buffer c = b.Clone();
  EXPECT_EQ(c.read_u32(), 2u);
  EXPECT_EQ(b.read_u32(), 2u);  // original cursor unaffected by clone's
}

TEST(Buffer, ReadViewIsZeroCopyWindow) {
  Buffer b;
  const std::vector<std::uint8_t> data{10, 20, 30, 40};
  b.write_bytes(data);
  const auto v = b.read_view(2);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 20);
  EXPECT_EQ(b.remaining(), 2u);
}

TEST(Buffer, TakeStealsBytes) {
  Buffer b;
  b.write_u8(5);
  const auto bytes = b.take();
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_EQ(b.size(), 0u);
}

TEST(Random, SplitMixIsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(SplitMix64(s1), SplitMix64(s2) + 1);  // streams advanced equally
}

TEST(Random, Mix64SpreadsNearbyInputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Random, XoshiroDeterministicPerSeed) {
  Xoshiro256 a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool all_equal = true;
  Xoshiro256 a2(7);
  for (int i = 0; i < 100; ++i) {
    if (a2() != c()) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(Random, BelowStaysInRange) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Random, BelowIsRoughlyUniform) {
  Xoshiro256 rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Random, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Stopwatch, ElapsedIsMonotonic) {
  Stopwatch w;
  const double t1 = w.elapsed();
  const double t2 = w.elapsed();
  EXPECT_GE(t2, t1);
  EXPECT_GE(t1, 0.0);
}

TEST(Stopwatch, AccumulatorSums) {
  Accumulator acc;
  acc.start();
  acc.stop();
  acc.start();
  acc.stop();
  EXPECT_GE(acc.total(), 0.0);
  acc.reset();
  EXPECT_EQ(acc.total(), 0.0);
}

TEST(Units, HumanBytes) {
  EXPECT_EQ(HumanBytes(12e9), "12.00 GB");
  EXPECT_EQ(HumanBytes(750e6), "750.00 MB");
  EXPECT_EQ(HumanBytes(1500), "1.50 kB");
  EXPECT_EQ(HumanBytes(17), "17 B");
}

TEST(Units, HumanRate) {
  EXPECT_EQ(HumanRate(100 * kMbps), "100.0 Mbps");
  EXPECT_EQ(HumanRate(12.5e6), "100.0 Mbps");  // 12.5 MB/s == 100 Mbps
}

TEST(Units, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(945.72), "945.72 s");
  EXPECT_EQ(HumanSeconds(0.0025), "2.50 ms");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t("demo");
  t.set_header({"stage", "sec"});
  t.add_row({"Map", "1.86"});
  t.add_row({"Shuffle", "945.72"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("Shuffle"), std::string::npos);
  EXPECT_NE(s.find("945.72"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t("bad");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(2.0, 0), "2");
}

}  // namespace
}  // namespace cts
