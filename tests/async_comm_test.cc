// Tests for the nonblocking simmpi layer: isend/irecv/ibcast_recv
// Requests, wait/waitall/test completion, FIFO matching, self-sends,
// initiation-time traffic accounting, and shutdown leak detection of
// posted-but-unmatched receives.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "common/check.h"
#include "simmpi/comm.h"
#include "simmpi/mailbox.h"
#include "simmpi/world.h"

namespace cts::simmpi {
namespace {

// Runs fn(node) on one thread per node of a world and joins them,
// re-throwing the first per-node failure.
void RunNodes(World& world, const std::function<void(NodeId)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(world.num_nodes()));
  for (NodeId n = 0; n < world.num_nodes(); ++n) {
    threads.emplace_back([&, n] {
      try {
        fn(n);
      } catch (...) {
        errors[static_cast<std::size_t>(n)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

Buffer BufferOfI32(std::int32_t v) {
  Buffer b;
  b.write_i32(v);
  return b;
}

TEST(AsyncComm, IsendCompletesImmediately) {
  World world(2);
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    if (n == 0) {
      Request req = c.isend(1, 1, BufferOfI32(42));
      EXPECT_TRUE(req.done());  // eager-buffered: complete at initiation
      EXPECT_TRUE(c.wait(req).empty());
    } else {
      EXPECT_EQ(c.recv(0, 1).read_i32(), 42);
    }
  });
  EXPECT_EQ(world.pending_messages(), 0u);
}

TEST(AsyncComm, IrecvMatchesBlockingSend) {
  World world(2);
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    if (n == 0) {
      c.send(1, 7, BufferOfI32(1234));
    } else {
      Request req = c.irecv(0, 7);
      EXPECT_EQ(c.wait(req).read_i32(), 1234);
    }
  });
  EXPECT_EQ(world.pending_messages(), 0u);
}

// MPI's non-overtaking guarantee carries over: two isends on the same
// (source, tag, comm) key complete two irecvs posted for that key in
// sending order, regardless of wait order.
TEST(AsyncComm, FifoOrderingPerKey) {
  constexpr int kMessages = 16;
  World world(2);
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    if (n == 0) {
      for (int i = 0; i < kMessages; ++i) {
        (void)c.isend(1, 3, BufferOfI32(i));
      }
    } else {
      std::vector<Request> reqs;
      reqs.reserve(kMessages);
      for (int i = 0; i < kMessages; ++i) reqs.push_back(c.irecv(0, 3));
      // Wait in reverse posting order: message order must still be
      // FIFO in POSTING order, not wait order.
      std::vector<std::int32_t> got(kMessages, -1);
      for (int i = kMessages - 1; i >= 0; --i) {
        got[static_cast<std::size_t>(i)] =
            c.wait(reqs[static_cast<std::size_t>(i)]).read_i32();
      }
      for (int i = 0; i < kMessages; ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
      }
    }
  });
  EXPECT_EQ(world.pending_messages(), 0u);
}

// Messages with distinct tags match their irecvs regardless of the
// order sends and receives were issued in.
TEST(AsyncComm, OutOfOrderTagMatching) {
  World world(2);
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    if (n == 0) {
      (void)c.isend(1, 10, BufferOfI32(100));
      (void)c.isend(1, 20, BufferOfI32(200));
      (void)c.isend(1, 30, BufferOfI32(300));
    } else {
      // Post receives for the tags in reverse order; each matches its
      // tag, not arrival order.
      Request r30 = c.irecv(0, 30);
      Request r20 = c.irecv(0, 20);
      Request r10 = c.irecv(0, 10);
      EXPECT_EQ(c.wait(r30).read_i32(), 300);
      EXPECT_EQ(c.wait(r10).read_i32(), 100);
      EXPECT_EQ(c.wait(r20).read_i32(), 200);
    }
  });
  EXPECT_EQ(world.pending_messages(), 0u);
}

TEST(AsyncComm, WaitallReturnsAllInRequestOrder) {
  constexpr int K = 6;
  World world(K);
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    std::vector<Request> reqs;
    for (int src = 0; src < K; ++src) {
      if (src == n) continue;
      reqs.push_back(c.irecv(src, 5));
    }
    for (int dst = 0; dst < K; ++dst) {
      if (dst == n) continue;
      reqs.push_back(c.isend(dst, 5, BufferOfI32(n * 100)));
    }
    std::vector<Buffer> msgs = c.waitall(reqs);
    ASSERT_EQ(msgs.size(), 2u * (K - 1));
    std::size_t i = 0;
    for (int src = 0; src < K; ++src) {
      if (src == n) continue;
      EXPECT_EQ(msgs[i++].read_i32(), src * 100);
    }
    for (; i < msgs.size(); ++i) EXPECT_TRUE(msgs[i].empty());  // sends
  });
  EXPECT_EQ(world.pending_messages(), 0u);
}

// Unlike the blocking pair (where send-to-self throws), the
// nonblocking pair supports self-messaging: isend is eager, so
// isend(self) + irecv(self) cannot deadlock.
TEST(AsyncComm, SelfSendCompletes) {
  World world(1);
  Comm c = Comm::World(world, 0);
  Request send = c.isend(0, 4, BufferOfI32(7));
  EXPECT_TRUE(send.done());
  Request recv = c.irecv(0, 4);
  EXPECT_EQ(c.wait(recv).read_i32(), 7);
  EXPECT_EQ(world.pending_messages(), 0u);
}

// Self-sends are loopback and must not pollute the network load
// measurements; remote isends account at initiation.
TEST(AsyncComm, TrafficAccountedAtInitiationAndNotForLoopback) {
  World world(2);
  world.stats().set_stage("Shuffle");
  Comm c = Comm::World(world, 0);
  Buffer big;
  big.resize(500);
  (void)c.isend(0, 1, big);  // loopback: unaccounted
  EXPECT_EQ(world.stats().stage("Shuffle").unicast_msgs, 0u);
  (void)c.isend(1, 1, big);  // remote: accounted before any recv exists
  const auto s = world.stats().stage("Shuffle");
  EXPECT_EQ(s.unicast_msgs, 1u);
  EXPECT_EQ(s.unicast_bytes, 500u);
  // Drain so shutdown hygiene holds.
  Request self_recv = c.irecv(0, 1);
  (void)c.wait(self_recv);
  Comm peer = Comm::World(world, 1);
  (void)peer.recv(0, 1);
  EXPECT_EQ(world.pending_messages(), 0u);
}

TEST(AsyncComm, TestPollsWithoutBlocking) {
  World world(2);
  Comm receiver = Comm::World(world, 1);
  Request req = receiver.irecv(0, 9);
  EXPECT_FALSE(receiver.test(req));  // nothing sent yet
  EXPECT_FALSE(receiver.test(req));
  Comm sender = Comm::World(world, 0);
  (void)sender.isend(1, 9, BufferOfI32(55));
  EXPECT_TRUE(receiver.test(req));
  EXPECT_TRUE(req.done());
  EXPECT_EQ(receiver.wait(req).read_i32(), 55);  // returns without blocking
  EXPECT_EQ(world.pending_messages(), 0u);
}

// ibcast_recv overlaps multicast rounds: every root transmits before
// any receiver drains.
TEST(AsyncComm, IbcastRecvOverlapsRoots) {
  constexpr int K = 3;
  World world(K);
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    std::vector<std::pair<NodeId, Request>> recvs;
    for (int root = 0; root < K; ++root) {
      if (root == n) continue;
      recvs.emplace_back(root, c.ibcast_recv(root));
    }
    Buffer mine = BufferOfI32(n * 11);
    c.bcast(n, mine);  // every node is a root once; no turn-taking
    for (auto& [root, req] : recvs) {
      EXPECT_EQ(c.wait(req).read_i32(), root * 11);
    }
  });
  EXPECT_EQ(world.pending_messages(), 0u);
}

// Regression: a receive that was posted but never matched by a send
// must be visible at shutdown — World::pending_messages() counts
// still-posted receives alongside queued messages, so neither leaked
// messages nor leaked requests pass the hygiene checks silently.
TEST(AsyncComm, UnmatchedPostedIrecvDetectedAtShutdown) {
  World world(2);
  Comm c = Comm::World(world, 1);
  {
    Request req = c.irecv(0, 2);  // never matched, never completed
    EXPECT_FALSE(req.done());
    EXPECT_EQ(world.pending_messages(), 1u);
  }
  // Destroying the abandoned request does NOT absolve it.
  EXPECT_EQ(world.pending_messages(), 1u);
}

TEST(AsyncComm, MatchedButUnwaitedPairStillDetected) {
  World world(2);
  Comm sender = Comm::World(world, 0);
  Comm receiver = Comm::World(world, 1);
  (void)sender.isend(1, 2, BufferOfI32(1));
  Request req = receiver.irecv(0, 2);
  // Message queued AND receive still posted: both count.
  EXPECT_EQ(world.pending_messages(), 2u);
  (void)receiver.wait(req);
  EXPECT_EQ(world.pending_messages(), 0u);
}

// A moved-from Request is a null handle: it cannot double-claim the
// ticket or double-retire the posted-recv counter.
TEST(AsyncComm, MoveResetsSourceRequest) {
  World world(2);
  Comm sender = Comm::World(world, 0);
  Comm receiver = Comm::World(world, 1);
  (void)sender.isend(1, 6, BufferOfI32(9));
  Request a = receiver.irecv(0, 6);
  Request b = std::move(a);
  EXPECT_TRUE(a.null());  // NOLINT(bugprone-use-after-move): the point
  EXPECT_THROW((void)Comm::wait(a), CheckError);
  EXPECT_THROW((void)Comm::test(a), CheckError);
  EXPECT_EQ(Comm::wait(b).read_i32(), 9);
  EXPECT_EQ(world.pending_messages(), 0u);
}

TEST(AsyncComm, NegativeUserTagRejected) {
  World world(2);
  Comm c = Comm::World(world, 0);
  Buffer b;
  EXPECT_THROW((void)c.isend(1, -1, b), CheckError);
  EXPECT_THROW((void)c.irecv(1, -3), CheckError);
}

// Stress: overlapped all-to-all with interleaved isend/irecv across
// many tags under real thread contention.
TEST(AsyncComm, StressOverlappedAllToAll) {
  constexpr int K = 8;
  constexpr int kRounds = 20;
  World world(K);
  RunNodes(world, [&](NodeId n) {
    Comm c = Comm::World(world, n);
    for (int round = 0; round < kRounds; ++round) {
      std::vector<Request> recvs;
      for (int src = 0; src < K; ++src) {
        if (src == n) continue;
        recvs.push_back(c.irecv(src, round));
      }
      for (int dst = 0; dst < K; ++dst) {
        if (dst == n) continue;
        Buffer b;
        b.write_i32(n);
        b.write_i32(round);
        (void)c.isend(dst, round, b);
      }
      std::size_t i = 0;
      for (int src = 0; src < K; ++src) {
        if (src == n) continue;
        Buffer b = c.wait(recvs[i++]);
        EXPECT_EQ(b.read_i32(), src);
        EXPECT_EQ(b.read_i32(), round);
      }
    }
  });
  EXPECT_EQ(world.pending_messages(), 0u);
}

}  // namespace
}  // namespace cts::simmpi
