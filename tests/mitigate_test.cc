// Tests for the straggler-mitigation layer (src/mitigate): the
// ApplyPolicy arithmetic on synthetic stage views, the scenario-engine
// wiring (speculation and K-of-N coded Map under fail-stop outages),
// and the live path — a real injected delay in driver::StageRunner
// measured by a live run and recovered by the same policy code.
#include <gtest/gtest.h>

#include <algorithm>

#include "codedterasort/coded_terasort.h"
#include "mitigate/policy.h"
#include "simscen/engine.h"
#include "terasort/terasort.h"

namespace cts::mitigate {
namespace {

using simscen::ClusterProfile;
using simscen::ReplayScenario;
using simscen::Scenario;
using simscen::ScenarioOutcome;
using simscen::ScenarioRun;
using simscen::StageKind;
using simscen::StragglerKind;
using simscen::Topology;

StageView View(std::vector<double> ends, int coded_tolerance = 0) {
  StageView v;
  v.start = 0;
  v.node_end = std::move(ends);
  v.coded_tolerance = coded_tolerance;
  return v;
}

// ---- ParsePolicy ----

TEST(ParsePolicy, AcceptsTheFlagSyntax) {
  ASSERT_TRUE(ParsePolicy("none").has_value());
  EXPECT_EQ(ParsePolicy("none")->kind, PolicyKind::kNone);
  EXPECT_EQ(ParsePolicy("")->kind, PolicyKind::kNone);
  ASSERT_TRUE(ParsePolicy("coded").has_value());
  EXPECT_EQ(ParsePolicy("coded")->kind, PolicyKind::kCodedMap);
  ASSERT_TRUE(ParsePolicy("spec").has_value());
  EXPECT_EQ(ParsePolicy("spec")->kind, PolicyKind::kSpeculative);
  const auto custom = ParsePolicy("spec:0.75:2.5");
  ASSERT_TRUE(custom.has_value());
  EXPECT_DOUBLE_EQ(custom->quantile, 0.75);
  EXPECT_DOUBLE_EQ(custom->trigger, 2.5);
}

TEST(ParsePolicy, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParsePolicy("bogus").has_value());
  EXPECT_FALSE(ParsePolicy("spec:0.5").has_value());       // missing trigger
  EXPECT_FALSE(ParsePolicy("spec:2:1.5").has_value());     // quantile > 1
  EXPECT_FALSE(ParsePolicy("spec:0.5:0.5").has_value());   // trigger < 1
  EXPECT_FALSE(ParsePolicy("spec:0.5:abc").has_value());
  EXPECT_FALSE(ParsePolicy("coded:3").has_value());
}

TEST(ParsePolicy, NamesRoundTrip) {
  EXPECT_STREQ(PolicyName(PolicyKind::kNone), "none");
  EXPECT_STREQ(PolicyName(PolicyKind::kSpeculative), "spec");
  EXPECT_STREQ(PolicyName(PolicyKind::kCodedMap), "coded");
}

// ---- ApplyPolicy: kNone ----

TEST(ApplyPolicy, NoneWaitsForTheSlowest) {
  const StageMitigation m =
      ApplyPolicy(MitigationPolicy::None(), View({10, 30, 20}));
  EXPECT_DOUBLE_EQ(m.end, 30.0);
  EXPECT_DOUBLE_EQ(m.unmitigated_end, 30.0);
  EXPECT_DOUBLE_EQ(m.wasted_seconds, 0.0);
  EXPECT_EQ(m.speculative_copies, 0);
  EXPECT_EQ(m.abandoned_nodes, 0);
}

// ---- ApplyPolicy: kCodedMap ----

TEST(ApplyPolicy, CodedMapReleasesAtKMinusToleranceCompletions) {
  // tolerance 1 (r = 2): barrier releases at the 3rd of 4 completions.
  const StageMitigation m = ApplyPolicy(
      MitigationPolicy::CodedMap(), View({10, 11, 12, 40}, /*tol=*/1));
  EXPECT_DOUBLE_EQ(m.end, 12.0);
  EXPECT_DOUBLE_EQ(m.unmitigated_end, 40.0);
  EXPECT_EQ(m.abandoned_nodes, 1);
  EXPECT_DOUBLE_EQ(m.node_end[3], 12.0);  // straggler stops at the barrier
  EXPECT_DOUBLE_EQ(m.wasted_seconds, 12.0);  // its burnt partial work
}

TEST(ApplyPolicy, CodedMapWithoutReplicationDegeneratesToNone) {
  const StageMitigation m =
      ApplyPolicy(MitigationPolicy::CodedMap(), View({10, 11, 40}, /*tol=*/0));
  EXPECT_DOUBLE_EQ(m.end, 40.0);
  EXPECT_EQ(m.abandoned_nodes, 0);
  EXPECT_DOUBLE_EQ(m.wasted_seconds, 0.0);
}

TEST(ApplyPolicy, CodedMapToleranceIsCappedAtKMinus1) {
  // tolerance >= K would abandon everyone; it must clamp to K-1 so the
  // fastest node's completion still gates the barrier.
  const StageMitigation m =
      ApplyPolicy(MitigationPolicy::CodedMap(), View({7, 20, 30}, /*tol=*/5));
  EXPECT_DOUBLE_EQ(m.end, 7.0);
  EXPECT_EQ(m.abandoned_nodes, 2);
}

TEST(ApplyPolicy, CodedMapWasteUsesBusySecondsCallback) {
  // A dead node burnt no compute while offline: abandoning it charges
  // only what the callback reports.
  StageView v = View({5, 6, 100}, /*tol=*/1);
  v.busy_seconds = [](NodeId node, double t) {
    return node == 2 ? 1.5 : t;  // node 2 was offline almost throughout
  };
  const StageMitigation m = ApplyPolicy(MitigationPolicy::CodedMap(), v);
  EXPECT_DOUBLE_EQ(m.end, 6.0);
  EXPECT_DOUBLE_EQ(m.wasted_seconds, 1.5);
}

// ---- ApplyPolicy: kSpeculative ----

StageView SpecView(std::vector<double> ends, double backup_duration) {
  StageView v = View(std::move(ends));
  v.backup_end = [backup_duration](NodeId, NodeId, double at) {
    return at + backup_duration;
  };
  return v;
}

TEST(ApplyPolicy, SpeculativeBackupWins) {
  // K=4, quantile 0.5 -> t_q = 2nd completion = 11; trigger 1.5 ->
  // 16.5. Node 3 (end 100) gets a backup on node 0 (fastest helper)
  // launched at 16.5 taking 12 s -> done 28.5, beating the original.
  const StageMitigation m = ApplyPolicy(MitigationPolicy::Speculative(),
                                        SpecView({10, 11, 12, 100}, 12.0));
  EXPECT_EQ(m.speculative_copies, 1);
  EXPECT_DOUBLE_EQ(m.node_end[3], 28.5);
  EXPECT_DOUBLE_EQ(m.node_end[0], 28.5);  // helper busy until the win
  EXPECT_DOUBLE_EQ(m.end, 28.5);
  EXPECT_DOUBLE_EQ(m.unmitigated_end, 100.0);
  // The victim's whole burnt run (it aborts at 28.5) is waste.
  EXPECT_DOUBLE_EQ(m.wasted_seconds, 28.5);
}

TEST(ApplyPolicy, SpeculativeOriginalWins) {
  // Same trigger (16.5); the original finishes at 20 before the
  // backup (16.5 + 12 = 28.5) -> the backup's 3.5 s of compute by
  // then is waste and the stage ends at 20.
  const StageMitigation m = ApplyPolicy(MitigationPolicy::Speculative(),
                                        SpecView({10, 11, 12, 20}, 12.0));
  EXPECT_EQ(m.speculative_copies, 1);
  EXPECT_DOUBLE_EQ(m.node_end[3], 20.0);
  EXPECT_DOUBLE_EQ(m.end, 20.0);
  EXPECT_DOUBLE_EQ(m.wasted_seconds, 3.5);
}

TEST(ApplyPolicy, SpeculativeWithoutFinishedHelpersDoesNothing) {
  // Everyone is past the trigger: no helper has finished, so no
  // backup can launch and the stage degrades to the plain barrier.
  StageView v = SpecView({100, 100, 100, 100}, 1.0);
  const StageMitigation m =
      ApplyPolicy(MitigationPolicy::Speculative(/*quantile=*/0.25,
                                                /*trigger=*/1.0),
                  v);
  // trigger fires at 100 (1.0 x the first completion); nobody is late.
  EXPECT_EQ(m.speculative_copies, 0);
  EXPECT_DOUBLE_EQ(m.end, 100.0);
  EXPECT_DOUBLE_EQ(m.wasted_seconds, 0.0);
}

TEST(ApplyPolicy, SpeculativeHandlesMoreVictimsThanHelpers) {
  // One helper, two victims: only the slowest victim gets the backup.
  const StageMitigation m = ApplyPolicy(
      MitigationPolicy::Speculative(/*quantile=*/0.25, /*trigger=*/1.5),
      SpecView({10, 80, 100}, 5.0));
  // t_q = 10, trigger = 15; victims 1 and 2, helper 0. The slowest
  // (node 2) pairs with the helper: backup done at 20.
  EXPECT_EQ(m.speculative_copies, 1);
  EXPECT_DOUBLE_EQ(m.node_end[2], 20.0);
  EXPECT_DOUBLE_EQ(m.node_end[1], 80.0);  // unmitigated victim
  EXPECT_DOUBLE_EQ(m.end, 80.0);
}

// ---- Scenario-engine wiring ----

// Synthetic coded run: K=4, r=2, one 10 s Map and one 4 s Reduce.
ScenarioRun SyntheticCodedRun() {
  ScenarioRun run;
  run.algorithm = "synthetic-coded";
  run.num_nodes = 4;
  run.redundancy = 2;
  run.stages.push_back(
      {stage::kMap, StageKind::kCompute, {10, 10, 10, 10}});
  run.stages.push_back(
      {stage::kReduce, StageKind::kCompute, {4, 4, 4, 4}});
  return run;
}

Scenario FailStopScenario(int num_nodes, NodeId node, double fail_at,
                          double recovery) {
  Scenario s;
  s.cluster = ClusterProfile::Homogeneous(num_nodes);
  s.topology = Topology::SingleRack(num_nodes);
  s.cluster.straggler.kind = StragglerKind::kFailStop;
  s.cluster.straggler.node = node;
  s.cluster.straggler.fail_at = fail_at;
  s.cluster.straggler.recovery = recovery;
  return s;
}

TEST(ReplayMitigated, ShortOutageCodedMapWinsOutright) {
  const ScenarioRun run = SyntheticCodedRun();
  // Node 0 dies 2 s into the 10 s Map and is back at 14 — in time for
  // the Reduce, so the K-of-N Map barrier is the only thing waiting.
  Scenario s = FailStopScenario(4, 0, 2.0, 12.0);

  const ScenarioOutcome none = ReplayScenario(run, s);
  // Map: node 0 works [0,2], offline [2,14], finishes at 22.
  EXPECT_DOUBLE_EQ(none.spans[0].end, 22.0);
  EXPECT_DOUBLE_EQ(none.makespan, 26.0);
  EXPECT_DOUBLE_EQ(none.wasted_seconds, 0.0);

  // Speculation triggers at 1.5 x 10 = 15, but the backup (15 + 10 =
  // 25) loses to the recovering original (22): no speedup, and the
  // aborted backup's 7 s are charged as waste.
  s.mitigation = MitigationPolicy::Speculative();
  const ScenarioOutcome spec = ReplayScenario(run, s);
  EXPECT_DOUBLE_EQ(spec.spans[0].end, 22.0);
  EXPECT_EQ(spec.spans[0].speculative_copies, 1);
  EXPECT_DOUBLE_EQ(spec.spans[0].wasted_seconds, 7.0);
  EXPECT_DOUBLE_EQ(spec.makespan, none.makespan);

  // The r=2 placement covers node 0's files elsewhere: the Map
  // barrier releases at the 3rd completion (10 s) with node 0's 2 s
  // of pre-outage compute as waste; the node is back (at 14) partway
  // through the Reduce it cannot be dropped from.
  s.mitigation = MitigationPolicy::CodedMap();
  const ScenarioOutcome coded = ReplayScenario(run, s);
  EXPECT_DOUBLE_EQ(coded.spans[0].end, 10.0);
  EXPECT_EQ(coded.spans[0].abandoned_nodes, 1);
  EXPECT_DOUBLE_EQ(coded.spans[0].wasted_seconds, 2.0);
  EXPECT_DOUBLE_EQ(coded.spans[1].end, 18.0);  // 14 + 4, began offline
  EXPECT_EQ(coded.spans[1].abandoned_nodes, 0);

  EXPECT_LT(coded.makespan, spec.makespan);
  EXPECT_LT(coded.makespan, none.makespan);
}

TEST(ReplayMitigated, LongOutageFlipsTheWinnerToSpeculation) {
  // Node 0 is gone for 50 s: the coded Map releases early but the
  // Reduce barrier still waits for the dead node, while speculation
  // also re-executes the Reduce share — the policy crossover the
  // bench sweep exposes.
  const ScenarioRun run = SyntheticCodedRun();
  Scenario s = FailStopScenario(4, 0, 2.0, 50.0);

  const ScenarioOutcome none = ReplayScenario(run, s);
  EXPECT_DOUBLE_EQ(none.makespan, 64.0);

  s.mitigation = MitigationPolicy::CodedMap();
  const ScenarioOutcome coded = ReplayScenario(run, s);
  EXPECT_DOUBLE_EQ(coded.spans[0].end, 10.0);  // Map released early
  EXPECT_DOUBLE_EQ(coded.makespan, 56.0);      // Reduce waits for 52 + 4

  s.mitigation = MitigationPolicy::Speculative();
  const ScenarioOutcome spec = ReplayScenario(run, s);
  EXPECT_DOUBLE_EQ(spec.spans[0].end, 25.0);  // Map backup wins at 15+10
  EXPECT_DOUBLE_EQ(spec.spans[1].end, 35.0);  // Reduce backup at 31+4
  EXPECT_DOUBLE_EQ(spec.makespan, 35.0);

  EXPECT_LT(spec.makespan, coded.makespan);
  EXPECT_LT(coded.makespan, none.makespan);
}

TEST(ReplayMitigated, HealthyClusterIsUntouchedByEitherPolicy) {
  const ScenarioRun run = SyntheticCodedRun();
  Scenario s;
  s.cluster = ClusterProfile::Homogeneous(4);
  s.topology = Topology::SingleRack(4);

  const double baseline = ReplayScenario(run, s).makespan;
  for (const MitigationPolicy& p :
       {MitigationPolicy::Speculative(), MitigationPolicy::CodedMap()}) {
    s.mitigation = p;
    const ScenarioOutcome out = ReplayScenario(run, s);
    EXPECT_DOUBLE_EQ(out.makespan, baseline);
    EXPECT_DOUBLE_EQ(out.wasted_seconds, 0.0);
  }
}

TEST(ReplayMitigated, SpeculationHelpsTheUncodedRunCodedPolicyCannot) {
  ScenarioRun run = SyntheticCodedRun();
  run.redundancy = 1;  // plain TeraSort: no replicated inputs
  Scenario s = FailStopScenario(4, 0, 2.0, 50.0);

  const double none = ReplayScenario(run, s).makespan;
  s.mitigation = MitigationPolicy::CodedMap();
  const double coded = ReplayScenario(run, s).makespan;
  s.mitigation = MitigationPolicy::Speculative();
  const double spec = ReplayScenario(run, s).makespan;

  EXPECT_DOUBLE_EQ(coded, none);  // tolerance r-1 = 0
  EXPECT_LT(spec, none);
}

TEST(ReplayMitigated, ManyStragglersFlipTheWinnerToSpeculation) {
  // r=2 tolerates one straggler; slow down two nodes and speculation
  // (which backs up every late node it has helpers for) wins — the
  // crossover the bench sweep surfaces.
  ScenarioRun run = SyntheticCodedRun();
  Scenario s;
  s.cluster = ClusterProfile::Homogeneous(4);
  s.topology = Topology::SingleRack(4);
  s.cluster.speed = {1.0, 1.0, 0.1, 0.1};  // two 10x-slow nodes

  s.mitigation = MitigationPolicy::CodedMap();
  const double coded = ReplayScenario(run, s).makespan;
  s.mitigation = MitigationPolicy::Speculative();
  const double spec = ReplayScenario(run, s).makespan;
  EXPECT_LT(spec, coded);
}

// ---- Live path: injected delay measured by a real run ----

TEST(LiveMitigation, InjectedDelayShowsUpInMeasuredEvents) {
  SortConfig config;
  config.num_nodes = 4;
  config.num_records = 4000;
  config.injected_delays.push_back({stage::kMap, /*node=*/1, 0.2});
  const AlgorithmResult result = RunTeraSort(config);

  double map_on_node1 = 0;
  for (const auto& e : result.compute_events) {
    if (e.stage == stage::kMap && e.node == 1) map_on_node1 += e.seconds();
  }
  EXPECT_GE(map_on_node1, 0.2);
  EXPECT_GE(result.wall_seconds.at(stage::kMap), 0.2);
}

TEST(LiveMitigation, PoliciesEvaluateOnTheMeasuredRun) {
  // A live CodedTeraSort run with a real straggler injected into one
  // node's Map; the measured ComputeEvents feed the same ReplayScenario
  // path the synthetic sweeps use, and both policies recover the
  // straggler at executed scale.
  SortConfig config;
  config.num_nodes = 4;
  config.redundancy = 2;
  config.num_records = 4000;
  config.injected_delays.push_back({stage::kMap, /*node=*/1, 0.2});
  const AlgorithmResult result = RunCodedTeraSort(config);

  const ScenarioRun run = simscen::BuildScenarioRunFromEvents(
      result.algorithm, config.num_nodes, result.stage_order,
      result.compute_events, result.shuffle_log, config.redundancy);

  Scenario s;
  s.cluster = ClusterProfile::Homogeneous(config.num_nodes);
  s.topology = Topology::SingleRack(config.num_nodes);
  const double none = ReplayScenario(run, s).makespan;

  s.mitigation = MitigationPolicy::CodedMap();
  const ScenarioOutcome coded = ReplayScenario(run, s);
  s.mitigation = MitigationPolicy::Speculative();
  const ScenarioOutcome spec = ReplayScenario(run, s);

  // The injected 0.2 s dwarfs the real ~ms-scale compute, so both
  // policies must recover most of it.
  EXPECT_LT(coded.makespan, none - 0.1);
  EXPECT_LT(spec.makespan, none - 0.1);
  EXPECT_GT(coded.wasted_seconds, 0.0);
}

}  // namespace
}  // namespace cts::mitigate
