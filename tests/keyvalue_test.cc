// Unit + property tests for src/keyvalue: records, TeraGen,
// partitioners, record IO.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/check.h"
#include "keyvalue/partitioner.h"
#include "keyvalue/record.h"
#include "keyvalue/recordio.h"
#include "keyvalue/teragen.h"

namespace cts {
namespace {

TEST(Record, SizeIs100Bytes) {
  EXPECT_EQ(sizeof(Record), 100u);
  EXPECT_EQ(kRecordBytes, 100u);
}

TEST(Record, KeyComparisonIsBigEndianInteger) {
  const Key a = MakeKey(5);
  const Key b = MakeKey(6);
  const Key c = MakeKey(0x0100000000000000ULL);
  EXPECT_TRUE(KeyLess(a, b));
  EXPECT_FALSE(KeyLess(b, a));
  EXPECT_TRUE(KeyLess(b, c));
  EXPECT_EQ(CompareKeys(a, a), 0);
}

TEST(Record, KeyPrefixRoundTrip) {
  const std::uint64_t p = 0x0123456789abcdefULL;
  EXPECT_EQ(KeyPrefix(MakeKey(p)), p);
  EXPECT_EQ(KeyPrefix(MakeKey(0)), 0u);
  EXPECT_EQ(KeyPrefix(MakeKey(~std::uint64_t{0})), ~std::uint64_t{0});
}

TEST(Record, SuffixBreaksTiesWithoutChangingPrefix) {
  const Key a = MakeKey(7, 1);
  const Key b = MakeKey(7, 2);
  EXPECT_EQ(KeyPrefix(a), KeyPrefix(b));
  EXPECT_TRUE(KeyLess(a, b));
}

TEST(Record, RecordLessOrdersByKeyThenValue) {
  Record r1{}, r2{};
  r1.key = MakeKey(1);
  r2.key = MakeKey(2);
  EXPECT_TRUE(RecordLess(r1, r2));
  r2.key = r1.key;
  r1.value.fill(1);
  r2.value.fill(2);
  EXPECT_TRUE(RecordLess(r1, r2));
  EXPECT_FALSE(RecordLess(r2, r1));
}

TEST(TeraGen, DeterministicPerSeedAndIndex) {
  const TeraGen gen1(42), gen2(42), gen3(43);
  EXPECT_EQ(gen1.record(0), gen2.record(0));
  EXPECT_EQ(gen1.record(999), gen2.record(999));
  EXPECT_FALSE(gen1.record(0) == gen3.record(0));
  EXPECT_FALSE(gen1.record(0) == gen1.record(1));
}

TEST(TeraGen, GenerateMatchesPointQueries) {
  const TeraGen gen(7);
  const auto batch = gen.generate(100, 50);
  ASSERT_EQ(batch.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(batch[i], gen.record(100 + i));
  }
}

TEST(TeraGen, ValueEmbedsRowId) {
  const TeraGen gen(1);
  const Record r = gen.record(0x0102030405060708ULL);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(r.value[static_cast<std::size_t>(i)], i + 1);
  }
}

TEST(TeraGen, ValueFillerIsPrintable) {
  const TeraGen gen(1);
  const Record r = gen.record(12345);
  for (std::size_t i = 8; i < kValueBytes; ++i) {
    EXPECT_GE(r.value[i], 'A');
    EXPECT_LE(r.value[i], 'A' + 15);
  }
}

TEST(TeraGen, UniformKeysSpreadAcrossDomain) {
  const TeraGen gen(42);
  const auto recs = gen.generate(0, 20000);
  // Bucket the prefixes into 16 ranges; expect rough uniformity.
  int counts[16] = {};
  for (const auto& r : recs) ++counts[KeyPrefix(r.key) >> 60];
  for (int c : counts) {
    EXPECT_GT(c, 20000 / 16 * 0.8);
    EXPECT_LT(c, 20000 / 16 * 1.2);
  }
}

TEST(TeraGen, SortedDistributionIsSorted) {
  const TeraGen gen(42, KeyDistribution::kSorted);
  const auto recs = gen.generate(0, 1000);
  EXPECT_TRUE(IsSorted(recs));
}

TEST(TeraGen, ReverseSortedIsDescending) {
  const TeraGen gen(42, KeyDistribution::kReverseSorted);
  const auto recs = gen.generate(0, 1000);
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_FALSE(KeyLess(recs[i - 1].key, recs[i].key));
  }
}

TEST(TeraGen, SkewedConcentratesLow) {
  const TeraGen gen(42, KeyDistribution::kSkewed);
  const auto recs = gen.generate(0, 10000);
  std::size_t low_half = 0;
  for (const auto& r : recs) {
    if (KeyPrefix(r.key) < (std::uint64_t{1} << 63)) ++low_half;
  }
  // u^4 < 1/2 iff u < 0.84, so ~84% of keys land in the low half.
  EXPECT_GT(low_half, recs.size() * 3 / 4);
}

TEST(TeraGen, BalancedSpreadsEveryContiguousRangeEvenly) {
  const TeraGen gen(42, KeyDistribution::kBalanced);
  const RangePartitioner part(7);
  // Any contiguous index window of n records puts n/K ± O(1) keys in
  // each partition — that is the low-discrepancy property the exact
  // load-identity tests rely on.
  for (const std::uint64_t start : {0ULL, 131ULL, 9999ULL}) {
    std::vector<int> counts(7, 0);
    const std::uint64_t n = 700;
    for (const auto& r : gen.generate(start, n)) {
      ++counts[static_cast<std::size_t>(part.partition(r.key))];
    }
    for (int c : counts) {
      EXPECT_GE(c, 97);
      EXPECT_LE(c, 103);
    }
  }
}

TEST(TeraGen, BalancedKeysAreDistinct) {
  const TeraGen gen(42, KeyDistribution::kBalanced);
  const auto recs = gen.generate(0, 4096);
  std::vector<std::uint64_t> prefixes;
  prefixes.reserve(recs.size());
  for (const auto& r : recs) prefixes.push_back(KeyPrefix(r.key));
  std::sort(prefixes.begin(), prefixes.end());
  EXPECT_EQ(std::adjacent_find(prefixes.begin(), prefixes.end()),
            prefixes.end());
}

TEST(TeraGen, FewDistinctHasAtMost256Keys) {
  const TeraGen gen(42, KeyDistribution::kFewDistinct);
  const auto recs = gen.generate(0, 5000);
  std::map<std::uint64_t, int> prefixes;
  for (const auto& r : recs) ++prefixes[KeyPrefix(r.key)];
  EXPECT_LE(prefixes.size(), 256u);
  EXPECT_GT(prefixes.size(), 100u);  // should still be diverse
}

TEST(RangePartitioner, CoversAllPartitions) {
  const RangePartitioner part(4);
  EXPECT_EQ(part.num_partitions(), 4);
  EXPECT_EQ(part.partition(MakeKey(0)), 0);
  EXPECT_EQ(part.partition(MakeKey(~std::uint64_t{0})), 3);
}

TEST(RangePartitioner, BoundariesAreConsistentWithLookup) {
  const RangePartitioner part(7);
  for (PartitionId p = 0; p < 7; ++p) {
    const std::uint64_t lo = part.boundary(p);
    EXPECT_EQ(part.partition(MakeKey(lo)), p) << "p=" << p;
    if (lo > 0) {
      EXPECT_EQ(part.partition(MakeKey(lo - 1)), p - 1) << "p=" << p;
    }
  }
}

TEST(RangePartitioner, MonotoneInKey) {
  const RangePartitioner part(5);
  PartitionId prev = 0;
  for (std::uint64_t x = 0; x < 1000; ++x) {
    const std::uint64_t prefix = x * 0x0041893475134ULL;  // increasing
    const PartitionId p = part.partition(MakeKey(prefix));
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(RangePartitioner, UniformKeysBalance) {
  const RangePartitioner part(16);
  const TeraGen gen(3);
  std::vector<int> counts(16, 0);
  for (const auto& r : gen.generate(0, 32000)) {
    ++counts[static_cast<std::size_t>(part.partition(r.key))];
  }
  for (int c : counts) {
    EXPECT_GT(c, 2000 * 0.85);
    EXPECT_LT(c, 2000 * 1.15);
  }
}

TEST(RangePartitioner, SinglePartitionTakesEverything) {
  const RangePartitioner part(1);
  EXPECT_EQ(part.partition(MakeKey(0)), 0);
  EXPECT_EQ(part.partition(MakeKey(~std::uint64_t{0})), 0);
}

TEST(SampledPartitioner, SplittersPartitionTheDomain) {
  const SampledPartitioner part({MakeKey(100), MakeKey(200)});
  EXPECT_EQ(part.num_partitions(), 3);
  EXPECT_EQ(part.partition(MakeKey(50)), 0);
  EXPECT_EQ(part.partition(MakeKey(100)), 1);  // splitter owned by right
  EXPECT_EQ(part.partition(MakeKey(150)), 1);
  EXPECT_EQ(part.partition(MakeKey(200)), 2);
  EXPECT_EQ(part.partition(MakeKey(999)), 2);
}

TEST(SampledPartitioner, RejectsDescendingSplitters) {
  EXPECT_THROW(SampledPartitioner({MakeKey(5), MakeKey(3)}), CheckError);
}

TEST(SampledPartitioner, FromSampleBalancesSkewedData) {
  const TeraGen gen(11, KeyDistribution::kSkewed);
  const auto recs = gen.generate(0, 20000);
  std::vector<Key> sample;
  for (std::size_t i = 0; i < recs.size(); i += 10) {
    sample.push_back(recs[i].key);
  }
  const auto part = SampledPartitioner::FromSample(sample, 8);
  std::vector<int> counts(8, 0);
  for (const auto& r : recs) {
    ++counts[static_cast<std::size_t>(part.partition(r.key))];
  }
  // A RangePartitioner would put ~84% in the low half; the sampled one
  // must keep every reducer within 2x of fair share.
  for (int c : counts) {
    EXPECT_GT(c, 20000 / 8 / 2);
    EXPECT_LT(c, 20000 / 8 * 2);
  }
}

TEST(Partitioner, SerializeRoundTripRange) {
  const RangePartitioner part(9);
  Buffer b;
  part.serialize(b);
  const auto restored = Partitioner::Deserialize(b);
  EXPECT_EQ(restored->num_partitions(), 9);
  for (std::uint64_t x : {0ULL, 123ULL << 40, ~0ULL}) {
    EXPECT_EQ(restored->partition(MakeKey(x)), part.partition(MakeKey(x)));
  }
}

TEST(Partitioner, SerializeRoundTripSampled) {
  const SampledPartitioner part({MakeKey(10), MakeKey(20), MakeKey(30)});
  Buffer b;
  part.serialize(b);
  const auto restored = Partitioner::Deserialize(b);
  EXPECT_EQ(restored->num_partitions(), 4);
  for (std::uint64_t x : {5ULL, 10ULL, 15ULL, 25ULL, 35ULL}) {
    EXPECT_EQ(restored->partition(MakeKey(x)), part.partition(MakeKey(x)));
  }
}

TEST(RecordIO, PackUnpackRoundTrip) {
  const TeraGen gen(5);
  const auto recs = gen.generate(0, 257);
  Buffer b;
  const std::size_t written = PackRecords(recs, b);
  EXPECT_EQ(written, PackedSize(recs.size()));
  const auto restored = UnpackRecords(b);
  EXPECT_EQ(restored, recs);
}

TEST(RecordIO, EmptyListRoundTrip) {
  Buffer b;
  PackRecords({}, b);
  EXPECT_TRUE(UnpackRecords(b).empty());
}

TEST(RecordIO, MultipleListsInOneBuffer) {
  const TeraGen gen(5);
  const auto a = gen.generate(0, 10);
  const auto c = gen.generate(10, 20);
  Buffer b;
  PackRecords(a, b);
  PackRecords(c, b);
  EXPECT_EQ(UnpackRecords(b), a);
  EXPECT_EQ(UnpackRecords(b), c);
}

TEST(RecordIO, UnpackIntoAppends) {
  const TeraGen gen(5);
  const auto a = gen.generate(0, 5);
  const auto c = gen.generate(5, 5);
  Buffer b;
  PackRecords(a, b);
  PackRecords(c, b);
  std::vector<Record> merged;
  UnpackRecordsInto(b, merged);
  UnpackRecordsInto(b, merged);
  ASSERT_EQ(merged.size(), 10u);
  EXPECT_EQ(merged[0], a[0]);
  EXPECT_EQ(merged[9], c[4]);
}

TEST(RecordIO, TruncatedBufferThrows) {
  Buffer b;
  b.write_u64(100);  // claims 100 records, provides none
  EXPECT_THROW(UnpackRecords(b), CheckError);
}

TEST(RecordIO, IsSortedPermutationDetectsReordering) {
  const TeraGen gen(5);
  auto recs = gen.generate(0, 100);
  auto sorted = recs;
  std::sort(sorted.begin(), sorted.end(), RecordLess);
  EXPECT_TRUE(IsSortedPermutationOf(recs, sorted));
  EXPECT_FALSE(IsSortedPermutationOf(recs, recs) && !IsSorted(recs));
  // Tampering with one record breaks the permutation property.
  sorted[0].value[0] ^= 0xff;
  EXPECT_FALSE(IsSortedPermutationOf(recs, sorted));
}

TEST(RecordIO, IsSortedPermutationRejectsSizeMismatch) {
  const TeraGen gen(5);
  const auto recs = gen.generate(0, 10);
  auto sorted = gen.generate(0, 9);
  std::sort(sorted.begin(), sorted.end(), RecordLess);
  EXPECT_FALSE(IsSortedPermutationOf(recs, sorted));
}

}  // namespace
}  // namespace cts
