// Tests for the determinism checker (src/check): vector-clock race
// analysis on synthetic and captured transport logs — including the
// injected wildcard-style matching race that proves the detector is
// not vacuous — and the DPOR-style ordering exploration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "check/check.h"
#include "check/explore.h"
#include "check/race.h"
#include "job/job.h"
#include "simmpi/eventlog.h"
#include "simscen/netsim.h"
#include "simscen/scenario.h"

namespace cts::check {
namespace {

using simmpi::TransportEvent;
using simmpi::TransportEventKind;
using simmpi::TransportLog;

// Builds synthetic logs with explicit stamps (one global order).
class LogBuilder {
 public:
  LogBuilder& send(NodeId performer, NodeId dst, std::int32_t tag,
                   std::uint64_t index) {
    return add(TransportEventKind::kSend, performer, dst, performer, tag,
               index);
  }
  LogBuilder& post(NodeId performer, NodeId src, std::int32_t tag,
                   std::uint64_t index) {
    return add(TransportEventKind::kPost, performer, performer, src, tag,
               index);
  }
  // A posting performed away from the owning mailbox — synthetic only
  // (live posts always run on the owner), for the kRecvRecv case.
  LogBuilder& post_at(NodeId performer, NodeId dst, NodeId src,
                      std::int32_t tag, std::uint64_t index) {
    return add(TransportEventKind::kPost, performer, dst, src, tag, index);
  }
  LogBuilder& match(NodeId performer, NodeId src, std::int32_t tag,
                    std::uint64_t index) {
    return add(TransportEventKind::kMatch, performer, performer, src, tag,
               index);
  }
  const TransportLog& log() const { return log_; }

 private:
  LogBuilder& add(TransportEventKind kind, NodeId performer, NodeId dst,
                  NodeId src, std::int32_t tag, std::uint64_t index) {
    TransportEvent e;
    e.kind = kind;
    e.performer = performer;
    e.dst = dst;
    e.src = src;
    e.comm = 0;
    e.tag = tag;
    e.index = index;
    e.bytes = 8;
    e.stamp = next_stamp_++;
    log_.push_back(e);
    return *this;
  }

  TransportLog log_;
  std::uint64_t next_stamp_ = 1;
};

// ---- Race analysis ----

TEST(AnalyzeTransport, EmptyLogIsNotACertificate) {
  const RaceReport rep = AnalyzeTransport({}, 4);
  EXPECT_EQ(rep.events, 0u);
  EXPECT_FALSE(rep.certified());
}

TEST(AnalyzeTransport, PingPongCertifies) {
  LogBuilder b;
  b.send(0, 1, 7, 0);   // 0 -> 1
  b.post(1, 0, 7, 0);
  b.match(1, 0, 7, 0);
  b.send(1, 0, 9, 0);   // reply, ordered after the match
  b.post(0, 1, 9, 0);
  b.match(0, 1, 9, 0);
  const RaceReport rep = AnalyzeTransport(b.log(), 2);
  EXPECT_TRUE(rep.certified());
  EXPECT_EQ(rep.events, 6u);
  EXPECT_EQ(rep.sends, 2u);
  EXPECT_EQ(rep.hb_edges, 2u);
  EXPECT_EQ(rep.keys, 2u);
  EXPECT_NE(Summarize(rep).find("determinism certificate"),
            std::string::npos);
}

// The injected matching race: two sends from different performers with
// no happens-before path between them, visible to a wildcard receive.
// Under MPI posting-order semantics either send could have matched the
// first posted receive — the detector must say so. This is the
// non-vacuity regression: a detector that never fires proves nothing.
TEST(AnalyzeTransport, InjectedWildcardRaceIsDetected) {
  LogBuilder b;
  b.send(1, 0, 7, 0);  // 1 -> 0, concurrent with ...
  b.send(2, 0, 7, 0);  // ... 2 -> 0 on the same (dst, tag)
  // Wildcard posts: either source may bind to either ticket.
  b.post(0, simmpi::kAnySource, 7, 0);
  b.post(0, simmpi::kAnySource, 7, 1);
  b.match(0, 1, 7, 0);
  b.match(0, 2, 7, 0);
  const RaceReport rep = AnalyzeTransport(b.log(), 3);
  ASSERT_EQ(rep.races.size(), 1u);
  EXPECT_FALSE(rep.certified());
  const MatchingRace& race = rep.races.front();
  EXPECT_EQ(race.kind, MatchingRace::Kind::kSendSend);
  EXPECT_EQ(race.a.stamp, 1u);
  EXPECT_EQ(race.b.stamp, 2u);

  // Both witnesses are complete linearizations over the same stamps.
  ASSERT_EQ(race.witness_recorded.size(), b.log().size());
  ASSERT_EQ(race.witness_flipped.size(), b.log().size());
  auto sorted = [](std::vector<std::uint64_t> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(race.witness_recorded), sorted(race.witness_flipped));
  auto pos = [](const std::vector<std::uint64_t>& v, std::uint64_t s) {
    return std::find(v.begin(), v.end(), s) - v.begin();
  };
  // The recorded witness realizes a before b; the flipped one b
  // before a — the pair of schedules that makes the race a race.
  EXPECT_LT(pos(race.witness_recorded, race.a.stamp),
            pos(race.witness_recorded, race.b.stamp));
  EXPECT_GT(pos(race.witness_flipped, race.a.stamp),
            pos(race.witness_flipped, race.b.stamp));
  EXPECT_NE(Summarize(rep).find("matching race"), std::string::npos);
}

TEST(AnalyzeTransport, RelayOrderingSuppressesTheRace) {
  // Same two sends to a wildcard receiver, but now a relay chain
  // orders them: 1 -> 0 is matched, 0 -> 2 tells node 2, and only
  // then does 2 -> 0 send. Happens-before fixes the match order, so
  // no race.
  LogBuilder b;
  b.send(1, 0, 7, 0);
  b.post(0, simmpi::kAnySource, 7, 0);
  b.match(0, 1, 7, 0);
  b.send(0, 2, 9, 0);  // relay: after the first match in 0's program
  b.post(2, 0, 9, 0);
  b.match(2, 0, 9, 0);
  b.send(2, 0, 7, 0);  // ordered after the relay arrived
  b.post(0, simmpi::kAnySource, 7, 1);
  b.match(0, 2, 7, 0);
  const RaceReport rep = AnalyzeTransport(b.log(), 3);
  EXPECT_TRUE(rep.certified()) << Summarize(rep);
}

TEST(AnalyzeTransport, ConcurrentPostsOnOneKeyAreARecvRecvRace) {
  // Two receive postings for the same named key with no ordering
  // between the posting threads: the tickets could have been drawn in
  // either order.
  LogBuilder b;
  b.post(0, 1, 7, 0);
  b.post_at(2, 0, 1, 7, 1);  // a different performer, unordered w.r.t. 0
  const RaceReport rep = AnalyzeTransport(b.log(), 3);
  ASSERT_FALSE(rep.races.empty());
  EXPECT_EQ(rep.races.front().kind, MatchingRace::Kind::kRecvRecv);
}

TEST(AnalyzeTransport, LiveTeraSortRunCertifies) {
  // The real thing: capture a K=4 run's transport stream and certify
  // it. Live mailboxes always name their source and drain per-key in
  // ticket order, so the recorded schedule must be the unique
  // linearization.
  simmpi::TransportRecorder::RequestCapture(true);
  job::RunCache cache;
  SortConfig config;
  config.num_nodes = 4;
  config.num_records = 2000;
  const auto run = cache.Get("terasort", config);
  ASSERT_FALSE(run->transport_events.empty());
  const RaceReport rep =
      AnalyzeTransport(run->transport_events, config.num_nodes);
  EXPECT_TRUE(rep.certified()) << Summarize(rep);
  EXPECT_GT(rep.sends, 0u);
  EXPECT_EQ(rep.matches, rep.hb_edges);  // every match redeems a send
}

// ---- Ordering exploration ----

simscen::Topology UnitRack(int num_nodes) {
  simscen::Topology t = simscen::Topology::SingleRack(num_nodes);
  t.access_bytes_per_sec = 1.0;
  t.multicast_log_coeff = 0.0;
  return t;
}

TEST(ExploreOrderings, ThreeWayTieCertifies) {
  simnet::TransmissionLog log;
  log.push_back({0, {1}, 500, 0});
  log.push_back({2, {3}, 500, 1});
  log.push_back({4, {5}, 500, 2});
  const ExploreReport rep = ExploreOrderings(
      log, UnitRack(6), simnet::Discipline::kParallelFullDuplex,
      simnet::ReplayOrder::kLogOrder, {}, {});
  EXPECT_TRUE(rep.certified());
  EXPECT_DOUBLE_EQ(rep.baseline_makespan, 500.0);
  EXPECT_GE(rep.decision_points, 1u);
  EXPECT_EQ(rep.max_tie_width, 3u);
  // Disjoint flows: the tie permutations are independence-pruned, and
  // the leftover budget re-runs them as bitwise validation.
  EXPECT_GT(rep.branches_pruned, 0u);
  EXPECT_GT(rep.branches_validated, 0u);
  EXPECT_GT(rep.orderings_explored, 0u);
}

TEST(ExploreOrderings, OutageRequeueCertifiesUnderAnyTiming) {
  simnet::TransmissionLog log;
  log.push_back({0, {1}, 1000, 0});
  log.push_back({1, {2}, 1000, 1});
  simscen::LinkOutage outage;
  outage.node = 1;
  outage.start = 200;
  outage.end = 300;
  const ExploreReport rep = ExploreOrderings(
      log, UnitRack(4), simnet::Discipline::kParallelFullDuplex,
      simnet::ReplayOrder::kLogOrder, outage, {});
  EXPECT_TRUE(rep.certified());
  EXPECT_GE(rep.decision_points, 1u);
  EXPECT_GT(rep.orderings_explored, 0u);
}

TEST(ExploreOrderings, SerialDisciplineCertifiesTrivially) {
  simnet::TransmissionLog log;
  log.push_back({0, {1}, 100, 0});
  log.push_back({2, {3}, 100, 1});
  const ExploreReport rep = ExploreOrderings(
      log, UnitRack(4), simnet::Discipline::kSerial,
      simnet::ReplayOrder::kLogOrder, {}, {});
  EXPECT_TRUE(rep.certified());
  EXPECT_EQ(rep.decision_points, 0u);
}

// ---- CheckJob end-to-end ----

TEST(CheckJob, CertifiesASmallCellWithOutages) {
  job::RunCache cache;
  job::JobSpec spec;
  spec.algorithm = "terasort";
  spec.config.num_nodes = 4;
  spec.config.num_records = 2000;
  simscen::Scenario scenario = simscen::Scenario::Baseline(4);
  scenario.discipline = simnet::Discipline::kParallelFullDuplex;
  spec.scenario = scenario;

  CheckOptions opts;
  opts.ordering_budget = 40;
  opts.outages.push_back({/*node=*/0, /*start_frac=*/0.25,
                          /*dur_frac=*/0.25});

  const CheckReport rep = CheckJob(spec, cache, opts);
  EXPECT_TRUE(rep.certified()) << Summarize(rep);
  EXPECT_TRUE(rep.transport_captured);
  EXPECT_TRUE(rep.races.certified());
  EXPECT_GT(rep.baseline_makespan, 0.0);
  ASSERT_EQ(rep.cells.size(), 2u);
  EXPECT_EQ(rep.cells[0].label, "no-outage");
  EXPECT_GT(rep.orderings_explored(), 0u);
  EXPECT_EQ(rep.invariant_violations(), 0u);
  EXPECT_EQ(cache.executions(), 1);
}

}  // namespace
}  // namespace cts::check
