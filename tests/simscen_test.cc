// Tests for the scenario engine: topology/cluster-profile semantics,
// the degenerate-scenario cross-check against simnet::ReplayMakespan
// (homogeneous single rack, no contention — 1e-9 relative agreement),
// and straggler / oversubscription behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analytics/report.h"
#include "common/random.h"
#include "cmr/cmr.h"
#include "codedterasort/coded_terasort.h"
#include "driver/cluster.h"
#include "simnet/schedule.h"
#include "simscen/engine.h"
#include "simscen/netsim.h"
#include "simscen/scenario.h"
#include "terasort/terasort.h"

namespace cts::simscen {
namespace {

using simnet::Discipline;
using simnet::LinkModel;
using simnet::ReplayOrder;
using simnet::Transmission;
using simnet::TransmissionLog;

// Unit-rate single rack: durations equal byte counts.
Topology UnitRack(int num_nodes) {
  Topology t = Topology::SingleRack(num_nodes);
  t.access_bytes_per_sec = 1.0;
  t.multicast_log_coeff = 0.0;
  return t;
}

constexpr Discipline kAllDisciplines[] = {
    Discipline::kSerial, Discipline::kParallelHalfDuplex,
    Discipline::kParallelFullDuplex};
constexpr ReplayOrder kAllOrders[] = {ReplayOrder::kLogOrder,
                                      ReplayOrder::kPerSender};

// ---- Topology & ClusterProfile semantics ----

TEST(Topology, RackAssignmentAndCoreCrossing) {
  Topology t = Topology::Oversubscribed(/*num_nodes=*/6, /*nodes_per_rack=*/2,
                                        /*factor=*/3.0);
  EXPECT_EQ(t.rack_of(0), 0);
  EXPECT_EQ(t.rack_of(1), 0);
  EXPECT_EQ(t.rack_of(2), 1);
  EXPECT_EQ(t.rack_of(5), 2);
  EXPECT_TRUE(t.core_is_finite());
  EXPECT_DOUBLE_EQ(t.core_bytes_per_sec, 6.0 * t.access_bytes_per_sec / 3.0);
  EXPECT_FALSE(t.crosses_core(Transmission{0, {1}, 10}));
  EXPECT_TRUE(t.crosses_core(Transmission{0, {2}, 10}));
  EXPECT_TRUE(t.crosses_core(Transmission{0, {1, 4}, 10}));  // one remote dst
}

TEST(Topology, SingleRackNeverCrossesCore) {
  const Topology t = Topology::SingleRack(4);
  EXPECT_FALSE(t.core_is_finite());
  EXPECT_FALSE(t.crosses_core(Transmission{0, {1, 2, 3}, 10}));
}

TEST(ClusterProfile, SlowNodeStretchesOnlyThatNode) {
  ClusterProfile p = ClusterProfile::Homogeneous(4);
  p.straggler.kind = StragglerKind::kSlowNode;
  p.straggler.node = 2;
  p.straggler.slowdown = 3.0;
  EXPECT_DOUBLE_EQ(p.compute_seconds(0, 0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(p.compute_seconds(2, 0, 10.0), 30.0);
}

TEST(ClusterProfile, SpeedMultipliersDivideDurations) {
  ClusterProfile p;
  p.speed = {1.0, 0.5, 2.0};
  EXPECT_DOUBLE_EQ(p.compute_seconds(1, 0, 10.0), 20.0);
  EXPECT_DOUBLE_EQ(p.compute_seconds(2, 0, 10.0), 5.0);
}

TEST(ClusterProfile, ShiftedExpIsDeterministicAndAtLeastShift) {
  ClusterProfile p = ClusterProfile::Homogeneous(4);
  p.straggler.kind = StragglerKind::kShiftedExp;
  p.straggler.shift = 1.0;
  p.straggler.mean = 0.5;
  p.straggler.seed = 7;
  double sum = 0;
  for (int n = 0; n < 4; ++n) {
    for (int s = 0; s < 3; ++s) {
      const double f = p.straggler_factor(n, s);
      EXPECT_GE(f, 1.0);
      EXPECT_DOUBLE_EQ(f, p.straggler_factor(n, s));  // reproducible
      sum += f;
    }
  }
  // Distinct (node, stage) pairs draw distinct factors.
  EXPECT_NE(p.straggler_factor(0, 0), p.straggler_factor(1, 0));
  EXPECT_NE(p.straggler_factor(0, 0), p.straggler_factor(0, 1));
  // Mean factor should be near shift + mean (loose, 12 draws).
  EXPECT_NEAR(sum / 12.0, 1.5, 0.75);
}

// ---- Degenerate network replay: single rack == simnet ----

void ExpectDegenerateMatch(const TransmissionLog& log, int num_nodes) {
  const Topology topo = Topology::SingleRack(num_nodes);
  const LinkModel link;  // defaults — same constants as the topology
  for (const Discipline d : kAllDisciplines) {
    for (const ReplayOrder o : kAllOrders) {
      const double expect = simnet::ReplayMakespan(log, link, num_nodes, d, o);
      const double got = NetMakespan(log, topo, d, o);
      EXPECT_NEAR(got, expect, expect * 1e-9)
          << "discipline=" << static_cast<int>(d)
          << " order=" << static_cast<int>(o);
    }
  }
}

TEST(NetMakespan, EmptyLogIsZero) {
  for (const Discipline d : kAllDisciplines) {
    for (const ReplayOrder o : kAllOrders) {
      EXPECT_DOUBLE_EQ(NetMakespan({}, UnitRack(3), d, o), 0.0);
    }
  }
}

TEST(NetMakespan, SyntheticUnicastsMatchSimnet) {
  TransmissionLog log{{0, {1}, 10, 0}, {0, {2}, 20, 1}, {1, {2}, 5, 2},
                      {2, {0}, 7, 3},  {3, {1}, 9, 4},  {1, {3}, 11, 5}};
  ExpectDegenerateMatch(log, 4);
}

TEST(NetMakespan, SyntheticMulticastsMatchSimnet) {
  TransmissionLog log{{0, {1, 2, 3}, 12, 0},
                      {1, {0, 2}, 8, 1},
                      {3, {0, 1}, 10, 2},
                      {2, {3}, 6, 3}};
  ExpectDegenerateMatch(log, 4);
}

TEST(NetMakespan, LaterEntryMustWaitForBlockedPredecessorsLink) {
  // The per-link FIFO property that distinguishes simnet's list
  // schedule from eager admission: B (0->2) is blocked on 0's uplink
  // until A finishes, and E (3->2), although its links are idle at
  // t=0, must not overtake B on 2's downlink.
  const TransmissionLog log{{0, {1}, 10, 0}, {0, {2}, 10, 1}, {3, {2}, 10, 2}};
  const Topology topo = UnitRack(4);
  LinkModel unit;
  unit.bytes_per_sec = 1.0;
  unit.multicast_log_coeff = 0.0;
  const double expect = simnet::ReplayMakespan(
      log, unit, 4, Discipline::kParallelFullDuplex, ReplayOrder::kLogOrder);
  EXPECT_DOUBLE_EQ(expect, 30.0);  // A [0,10], B [10,20], E [20,30]
  EXPECT_DOUBLE_EQ(NetMakespan(log, topo, Discipline::kParallelFullDuplex,
                               ReplayOrder::kLogOrder),
                   30.0);
  // Per-sender order lets E's sender initiate independently: E [0,10],
  // B [10,20].
  EXPECT_DOUBLE_EQ(NetMakespan(log, topo, Discipline::kParallelFullDuplex,
                               ReplayOrder::kPerSender),
                   20.0);
}

TEST(NetMakespan, MulticastReleasesReceiversBeforeSenderTail) {
  // Fanout-2 multicast with coeff 1 streams 2x its payload on the
  // sender's uplink; a follow-up unicast into one of its receivers may
  // start at the receiver-release time (t=10), not the sender-tail
  // time (t=20) — matching simnet's rx_end vs tx_end split.
  Topology topo = UnitRack(3);
  topo.multicast_log_coeff = 1.0;  // penalty = 1 + log2(2) = 2
  const TransmissionLog log{{0, {1, 2}, 10, 0}, {1, {2}, 10, 1}};
  LinkModel link;
  link.bytes_per_sec = 1.0;
  link.multicast_log_coeff = 1.0;
  const double expect = simnet::ReplayMakespan(
      log, link, 3, Discipline::kParallelFullDuplex, ReplayOrder::kLogOrder);
  EXPECT_DOUBLE_EQ(expect, 20.0);  // mcast tx [0,20]; unicast [10,20]
  EXPECT_DOUBLE_EQ(NetMakespan(log, topo, Discipline::kParallelFullDuplex,
                               ReplayOrder::kLogOrder),
                   20.0);
}

TEST(NetMakespan, RealTeraSortLogsMatchSimnet) {
  for (const ShuffleSync sync :
       {ShuffleSync::kBarrier, ShuffleSync::kOverlapped}) {
    SortConfig config;
    config.num_nodes = 6;
    config.num_records = 6000;
    config.shuffle_sync = sync;
    const AlgorithmResult result = RunTeraSort(config);
    ExpectDegenerateMatch(result.shuffle_log, config.num_nodes);
  }
}

TEST(NetMakespan, RealCodedTeraSortLogsMatchSimnet) {
  for (const ShuffleSync sync :
       {ShuffleSync::kBarrier, ShuffleSync::kOverlapped}) {
    SortConfig config;
    config.num_nodes = 6;
    config.redundancy = 2;
    config.num_records = 6000;
    config.shuffle_sync = sync;
    const AlgorithmResult result = RunCodedTeraSort(config);
    ExpectDegenerateMatch(result.shuffle_log, config.num_nodes);
  }
}

// ---- Straggler-sampler golden regression values ----
//
// The scenario sweeps publish numbers derived from these samplers; a
// silent change to the ClusterProfile RNG (seeding, mixing, the
// shifted-exponential transform) would shift every published cell.
// These constants were produced by the shipped implementation — a
// mismatch means the sampler changed, not that the test is stale.

TEST(StragglerSamplers, ShiftedExpMatchesGoldenValues) {
  ClusterProfile p = ClusterProfile::Homogeneous(4);
  p.straggler.kind = StragglerKind::kShiftedExp;
  p.straggler.shift = 1.0;
  p.straggler.mean = 0.5;
  p.straggler.seed = 2017;
  const struct {
    NodeId node;
    int stage;
    double factor;
  } golden[] = {
      {0, 0, 2.4843404255324195}, {0, 1, 1.2776713779528857},
      {1, 0, 1.3586403296308975}, {1, 1, 1.365690649062504},
      {2, 0, 1.7091230016346275}, {2, 1, 1.6057415058511517},
  };
  for (const auto& g : golden) {
    EXPECT_NEAR(p.straggler_factor(g.node, g.stage), g.factor,
                g.factor * 1e-12)
        << "node " << g.node << " stage " << g.stage;
  }
  // Parameters and seed feed the draw.
  p.straggler.seed = 7;
  p.straggler.shift = 2.0;
  p.straggler.mean = 1.5;
  EXPECT_NEAR(p.straggler_factor(1, 3), 3.3508073399655709,
              3.3508073399655709 * 1e-12);
}

TEST(StragglerSamplers, SlowNodeAndFailStopAreExact) {
  ClusterProfile p = ClusterProfile::Homogeneous(3);
  p.straggler.kind = StragglerKind::kSlowNode;
  p.straggler.node = 1;
  p.straggler.slowdown = 7.5;
  EXPECT_DOUBLE_EQ(p.straggler_factor(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(p.straggler_factor(1, 0), 7.5);
  EXPECT_DOUBLE_EQ(p.straggler_factor(1, 5), 7.5);  // stage-independent
  // Fail-stop is a time window applied by the engine, never a rate.
  p.straggler.kind = StragglerKind::kFailStop;
  p.straggler.fail_at = 1.0;
  p.straggler.recovery = 100.0;
  EXPECT_DOUBLE_EQ(p.straggler_factor(1, 0), 1.0);
}

// ---- NetMakespan properties over randomized topologies ----
//
// Two invariants over ~200 random (log, topology) pairs and every
// discipline/order:
//   * byte conservation — every payload byte in the log is delivered,
//     and no flow outlives the reported makespan;
//   * monotonicity in link rates — doubling every rate exactly halves
//     the makespan (time is inverse-linear when the whole fabric
//     scales), and widening one resource never hurts.

simnet::TransmissionLog RandomLog(Xoshiro256& rng, int n) {
  TransmissionLog log;
  const int m = 1 + static_cast<int>(rng.below(24));
  for (int i = 0; i < m; ++i) {
    Transmission t;
    t.src = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    const int fanout =
        1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n - 1)));
    for (int d = 0; d < n && static_cast<int>(t.dsts.size()) < fanout; ++d) {
      if (d != t.src && rng.below(2) == 0) {
        t.dsts.push_back(d);
      }
    }
    if (t.dsts.empty()) {
      t.dsts.push_back(t.src == 0 ? 1 : 0);
    }
    t.bytes = 1 + rng.below(1000);
    t.seq = static_cast<std::uint64_t>(i);
    log.push_back(std::move(t));
  }
  return log;
}

Topology RandomTopology(Xoshiro256& rng, int n) {
  Topology t;
  t.num_nodes = n;
  t.nodes_per_rack = 1 + static_cast<int>(rng.below(
                             static_cast<std::uint64_t>(n)));
  t.access_bytes_per_sec = 0.5 + 4.0 * rng.uniform();
  t.core_bytes_per_sec = rng.below(2) == 0
                             ? std::numeric_limits<double>::infinity()
                             : 0.3 + 4.0 * rng.uniform();
  t.multicast_log_coeff = rng.below(2) == 0 ? 0.0 : rng.uniform();
  return t;
}

TEST(NetMakespanProperty, ConservesBytesAndIsMonotoneInLinkRates) {
  Xoshiro256 rng(20260729);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 2 + static_cast<int>(rng.below(7));
    const TransmissionLog log = RandomLog(rng, n);
    const Topology topo = RandomTopology(rng, n);
    double total_bytes = 0;
    for (const auto& t : log) {
      total_bytes += static_cast<double>(t.bytes);
    }

    for (const Discipline d : kAllDisciplines) {
      for (const ReplayOrder o : kAllOrders) {
        NetReplayStats stats;
        const double makespan = NetMakespan(log, topo, d, o, {}, &stats);
        ASSERT_GT(makespan, 0.0);

        // Byte conservation: everything in the log was delivered and
        // every flow finished within the makespan.
        EXPECT_DOUBLE_EQ(stats.delivered_payload_bytes, total_bytes);
        ASSERT_EQ(stats.flow_end.size(), log.size());
        for (const double e : stats.flow_end) {
          EXPECT_GT(e, 0.0);
          EXPECT_LE(e, makespan * (1 + 1e-12));
        }

        // Scaling the whole fabric by 2 exactly halves the makespan
        // (admission decisions are scale-free; rates divide by powers
        // of two exactly).
        Topology twice = topo;
        twice.access_bytes_per_sec *= 2.0;
        twice.core_bytes_per_sec *= 2.0;
        EXPECT_NEAR(NetMakespan(log, twice, d, o), makespan / 2.0,
                    makespan * 1e-12);

        // Widening a single resource never hurts.
        Topology wider_core = topo;
        wider_core.core_bytes_per_sec *= 4.0;
        EXPECT_LE(NetMakespan(log, wider_core, d, o),
                  makespan * (1 + 1e-9));
        Topology wider_access = topo;
        wider_access.access_bytes_per_sec *= 2.0;
        EXPECT_LE(NetMakespan(log, wider_access, d, o),
                  makespan * (1 + 1e-9));
      }
    }
  }
}

// ---- Per-rack uplink/downlink pipes (the generalized multi-pipe
// ---- water-filling path) ----

Topology RandomRackPipeTopology(Xoshiro256& rng, int n) {
  Topology t = RandomTopology(rng, n);
  // Asymmetric pipes: up and down drawn independently, each
  // occasionally left infinite (mixed finite/infinite bookkeeping),
  // but at least one finite so the water-filling path is exercised.
  if (rng.below(4) != 0) {
    t.rack_uplink_bytes_per_sec = 0.4 + 4.0 * rng.uniform();
  }
  if (rng.below(4) != 0) {
    t.rack_downlink_bytes_per_sec = 0.4 + 4.0 * rng.uniform();
  }
  if (!t.rack_pipes_finite()) {
    t.rack_downlink_bytes_per_sec = 0.4 + 4.0 * rng.uniform();
  }
  if (rng.below(2) == 0) t.rack_aware_multicast = true;
  return t;
}

TEST(RackPipeProperty, ConservesBytesAndIsMonotoneInPipeRates) {
  Xoshiro256 rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 2 + static_cast<int>(rng.below(7));
    const TransmissionLog log = RandomLog(rng, n);
    const Topology topo = RandomRackPipeTopology(rng, n);
    double total_bytes = 0;
    for (const auto& t : log) {
      total_bytes += static_cast<double>(t.bytes);
    }

    for (const Discipline d : kAllDisciplines) {
      for (const ReplayOrder o : kAllOrders) {
        NetReplayStats stats;
        const double makespan = NetMakespan(log, topo, d, o, {}, &stats);
        ASSERT_GT(makespan, 0.0);

        // Byte conservation survives the pipe constraints.
        EXPECT_DOUBLE_EQ(stats.delivered_payload_bytes, total_bytes);
        ASSERT_EQ(stats.flow_end.size(), log.size());
        for (const double e : stats.flow_end) {
          EXPECT_GT(e, 0.0);
          EXPECT_LE(e, makespan * (1 + 1e-12));
        }

        // Scaling the whole fabric (access, core and both rack pipes)
        // by 2 exactly halves the makespan.
        Topology twice = topo;
        twice.access_bytes_per_sec *= 2.0;
        twice.core_bytes_per_sec *= 2.0;
        twice.rack_uplink_bytes_per_sec *= 2.0;
        twice.rack_downlink_bytes_per_sec *= 2.0;
        EXPECT_NEAR(NetMakespan(log, twice, d, o), makespan / 2.0,
                    makespan * 1e-12);

        // Widening one pipe never hurts — and removing both entirely
        // (back to the shared-core-only fabric) never hurts either.
        Topology wider_up = topo;
        wider_up.rack_uplink_bytes_per_sec *= 4.0;
        EXPECT_LE(NetMakespan(log, wider_up, d, o), makespan * (1 + 1e-9));
        Topology wider_down = topo;
        wider_down.rack_downlink_bytes_per_sec *= 4.0;
        EXPECT_LE(NetMakespan(log, wider_down, d, o),
                  makespan * (1 + 1e-9));
        Topology no_pipes = topo;
        no_pipes.rack_uplink_bytes_per_sec =
            std::numeric_limits<double>::infinity();
        no_pipes.rack_downlink_bytes_per_sec =
            std::numeric_limits<double>::infinity();
        EXPECT_LE(NetMakespan(log, no_pipes, d, o), makespan * (1 + 1e-9));
      }
    }
  }
}

TEST(RackPipeProperty, InfinitePipesAreBitForBitTheSharedCorePath) {
  // Explicitly-infinite rack pipes must not change a single bit of the
  // shared-core replay (rack_pipes_finite() gates the generalized
  // path off), and effectively-unconstrained *finite* pipes — which do
  // run the water-filling arithmetic — must land within 1e-9.
  Xoshiro256 rng(20260809);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = 2 + static_cast<int>(rng.below(7));
    const TransmissionLog log = RandomLog(rng, n);
    const Topology topo = RandomTopology(rng, n);

    Topology infinite = topo;
    infinite.rack_uplink_bytes_per_sec =
        std::numeric_limits<double>::infinity();
    infinite.rack_downlink_bytes_per_sec =
        std::numeric_limits<double>::infinity();
    Topology huge = topo;
    huge.rack_uplink_bytes_per_sec = 1e12;
    huge.rack_downlink_bytes_per_sec = 1e12;

    for (const Discipline d : kAllDisciplines) {
      for (const ReplayOrder o : kAllOrders) {
        NetReplayStats base_stats;
        const double base = NetMakespan(log, topo, d, o, {}, &base_stats);

        NetReplayStats inf_stats;
        const double with_inf =
            NetMakespan(log, infinite, d, o, {}, &inf_stats);
        EXPECT_EQ(with_inf, base);
        ASSERT_EQ(inf_stats.flow_end.size(), base_stats.flow_end.size());
        for (std::size_t i = 0; i < base_stats.flow_end.size(); ++i) {
          EXPECT_EQ(inf_stats.flow_end[i], base_stats.flow_end[i]);
        }

        const double with_huge = NetMakespan(log, huge, d, o);
        EXPECT_NEAR(with_huge, base, base * 1e-9);
      }
    }
  }
}

// Unit-access two-rack fabric ({0,1} | {2,3}), infinite core, so only
// the configured rack pipe constrains. Durations equal byte counts
// divided by the binding rate.
Topology TwoRackPipes(double up, double down) {
  Topology t;
  t.num_nodes = 4;
  t.nodes_per_rack = 2;
  t.access_bytes_per_sec = 1.0;
  t.multicast_log_coeff = 0.0;
  t.rack_uplink_bytes_per_sec = up;
  t.rack_downlink_bytes_per_sec = down;
  return t;
}

constexpr double kInfRate = std::numeric_limits<double>::infinity();

TEST(RackPipes, UplinkIsSharedByFlowsLeavingTheRack) {
  const Topology topo = TwoRackPipes(/*up=*/0.5, /*down=*/kInfRate);
  // One 10 B crossing flow: capped by rack 0's 0.5 B/s uplink.
  EXPECT_DOUBLE_EQ(NetMakespan({{0, {2}, 10, 0}}, topo,
                               Discipline::kParallelFullDuplex,
                               ReplayOrder::kLogOrder),
                   20.0);
  // Two concurrent flows out of rack 0 share its uplink: 0.25 each.
  EXPECT_DOUBLE_EQ(NetMakespan({{0, {2}, 10, 0}, {1, {3}, 10, 1}}, topo,
                               Discipline::kParallelFullDuplex,
                               ReplayOrder::kLogOrder),
                   40.0);
  // Opposite directions use different uplinks: no sharing.
  EXPECT_DOUBLE_EQ(NetMakespan({{0, {2}, 10, 0}, {3, {1}, 10, 1}}, topo,
                               Discipline::kParallelFullDuplex,
                               ReplayOrder::kLogOrder),
                   20.0);
}

TEST(RackPipes, DownlinkIsSharedByFlowsEnteringTheRack) {
  const Topology topo = TwoRackPipes(/*up=*/kInfRate, /*down=*/0.5);
  // Both flows enter rack 1: its downlink is the shared bottleneck.
  EXPECT_DOUBLE_EQ(NetMakespan({{0, {2}, 10, 0}, {1, {3}, 10, 1}}, topo,
                               Discipline::kParallelFullDuplex,
                               ReplayOrder::kLogOrder),
                   40.0);
  // Opposite directions enter different racks: no sharing.
  EXPECT_DOUBLE_EQ(NetMakespan({{0, {2}, 10, 0}, {3, {1}, 10, 1}}, topo,
                               Discipline::kParallelFullDuplex,
                               ReplayOrder::kLogOrder),
                   20.0);
}

TEST(RackPipes, RackAwareMulticastPutsOneCopyOnTheDownlink) {
  // A fanout-2 multicast into rack 1: the rack-oblivious sender pushes
  // two copies through the 0.5 B/s downlink (effective 0.25 B/s); with
  // rack-aware multicast the rack switch replicates, one copy, 0.5.
  const TransmissionLog log{{0, {2, 3}, 10, 0}};
  Topology topo = TwoRackPipes(/*up=*/kInfRate, /*down=*/0.5);
  for (const Discipline d : kAllDisciplines) {
    EXPECT_DOUBLE_EQ(
        NetMakespan(log, topo, d, ReplayOrder::kLogOrder), 40.0);
  }
  topo.rack_aware_multicast = true;
  for (const Discipline d : kAllDisciplines) {
    EXPECT_DOUBLE_EQ(
        NetMakespan(log, topo, d, ReplayOrder::kLogOrder), 20.0);
  }
}

TEST(RackPipes, CrossRackBytesCountsCopiesEnteringOtherRacks) {
  Topology topo = TwoRackPipes(kInfRate, kInfRate);
  const TransmissionLog log{
      {0, {1}, 10, 0},        // rack-local: free
      {0, {2}, 100, 1},       // one copy across
      {0, {2, 3}, 1000, 2},   // two copies across (per receiver)
      {2, {0, 3}, 10000, 3},  // one across (dst 3 is rack-local)
  };
  EXPECT_DOUBLE_EQ(CrossRackBytes(log, topo), 100 + 2000 + 10000);
  // Rack-aware multicast ships one copy per destination rack.
  topo.rack_aware_multicast = true;
  EXPECT_DOUBLE_EQ(CrossRackBytes(log, topo), 100 + 1000 + 10000);
  // A single rack never crosses.
  EXPECT_DOUBLE_EQ(CrossRackBytes(log, Topology::SingleRack(4)), 0.0);
}

// ---- Network-stage outages (fail-stop during the shuffle) ----

TEST(NetMakespanOutage, InFlightTransferLosesProgressAndRestartsAfter) {
  // 10 B at rate 1 from node 0 to node 1; node 1 dies at t=5 with the
  // transfer halfway. The 5 delivered-so-far bytes are lost and the
  // whole payload retransmits once the node is back at t=20.
  const TransmissionLog log{{0, {1}, 10, 0}};
  LinkOutage outage{/*node=*/1, /*start=*/5.0, /*end=*/20.0};
  for (const Discipline d :
       {Discipline::kParallelFullDuplex, Discipline::kParallelHalfDuplex}) {
    for (const ReplayOrder o : kAllOrders) {
      NetReplayStats stats;
      const double makespan =
          NetMakespan(log, UnitRack(3), d, o, outage, &stats);
      EXPECT_DOUBLE_EQ(makespan, 30.0) << static_cast<int>(d);
      ASSERT_EQ(stats.flow_end.size(), 1u);
      EXPECT_GE(stats.flow_end[0], outage.end);  // finishes after window
      EXPECT_DOUBLE_EQ(stats.delivered_payload_bytes, 10.0);
    }
  }
}

TEST(NetMakespanOutage, FollowersOvertakeTheRequeuedTransfer) {
  // A (0->1) is in flight when node 1 dies at t=5; re-queuing releases
  // node 0's uplink, so B (0->2) — otherwise FIFO-blocked behind A —
  // runs during the outage. A retransmits at t=50.
  const TransmissionLog log{{0, {1}, 10, 0}, {0, {2}, 10, 1}};
  LinkOutage outage{/*node=*/1, /*start=*/5.0, /*end=*/50.0};
  for (const ReplayOrder o : kAllOrders) {
    NetReplayStats stats;
    const double makespan = NetMakespan(
        log, UnitRack(3), Discipline::kParallelFullDuplex, o, outage, &stats);
    EXPECT_DOUBLE_EQ(makespan, 60.0);
    EXPECT_DOUBLE_EQ(stats.flow_end[0], 60.0);  // A: restarted at 50
    EXPECT_DOUBLE_EQ(stats.flow_end[1], 15.0);  // B: overtook during outage
    EXPECT_GE(stats.flow_end[0], outage.end);
    EXPECT_DOUBLE_EQ(stats.delivered_payload_bytes, 20.0);
  }
}

TEST(NetMakespanOutage, TransferToDeadNodeWaitsOutTheWindow) {
  // The outage covers the stage start: nothing touching node 1 can be
  // admitted until it lifts.
  const TransmissionLog log{{0, {1}, 10, 0}};
  LinkOutage outage{/*node=*/1, /*start=*/0.0, /*end=*/12.0};
  for (const Discipline d :
       {Discipline::kParallelFullDuplex, Discipline::kParallelHalfDuplex}) {
    const double makespan = NetMakespan(log, UnitRack(2), d,
                                        ReplayOrder::kLogOrder, outage);
    EXPECT_DOUBLE_EQ(makespan, 22.0);
  }
}

TEST(NetMakespanOutage, MulticastWithOneDeadReceiverRetransmits) {
  // A fanout-2 multicast is in flight when one receiver dies: the
  // whole payload re-queues and both receivers get it after the
  // window (the replay treats a transmission as atomic).
  const TransmissionLog log{{0, {1, 2}, 10, 0}};
  LinkOutage outage{/*node=*/2, /*start=*/4.0, /*end=*/25.0};
  NetReplayStats stats;
  const double makespan =
      NetMakespan(log, UnitRack(3), Discipline::kParallelFullDuplex,
                  ReplayOrder::kLogOrder, outage, &stats);
  EXPECT_DOUBLE_EQ(makespan, 35.0);
  EXPECT_GE(stats.flow_end[0], outage.end);
  EXPECT_DOUBLE_EQ(stats.delivered_payload_bytes, 10.0);
}

TEST(NetMakespanOutage, SerialMediumRestartsTheInterruptedTransfer) {
  // Serial discipline, unit rate: the first transfer (0->1) overlaps
  // the outage of node 0 and restarts at its end; the second holds
  // the medium behind it (the paper's one-at-a-time program order).
  const TransmissionLog log{{0, {1}, 10, 0}, {2, {1}, 5, 1}};
  LinkOutage outage{/*node=*/0, /*start=*/5.0, /*end=*/12.0};
  NetReplayStats stats;
  const double makespan =
      NetMakespan(log, UnitRack(3), Discipline::kSerial,
                  ReplayOrder::kLogOrder, outage, &stats);
  EXPECT_DOUBLE_EQ(stats.flow_end[0], 22.0);  // 12 + 10
  EXPECT_DOUBLE_EQ(stats.flow_end[1], 27.0);
  EXPECT_DOUBLE_EQ(makespan, 27.0);
}

TEST(NetMakespanOutage, WindowOutsideTheStageIsANoop) {
  const TransmissionLog log{{0, {1}, 10, 0}, {1, {0}, 10, 1}};
  for (const Discipline d : kAllDisciplines) {
    const double base =
        NetMakespan(log, UnitRack(2), d, ReplayOrder::kLogOrder);
    // Already over when the stage starts (active() is false)...
    EXPECT_DOUBLE_EQ(
        NetMakespan(log, UnitRack(2), d, ReplayOrder::kLogOrder,
                    LinkOutage{0, -10.0, 0.0}),
        base);
    // ...or strikes long after the last byte.
    EXPECT_DOUBLE_EQ(
        NetMakespan(log, UnitRack(2), d, ReplayOrder::kLogOrder,
                    LinkOutage{0, 1000.0, 2000.0}),
        base);
    // A node not in the log is irrelevant however the window falls.
    EXPECT_DOUBLE_EQ(
        NetMakespan(log, UnitRack(3), d, ReplayOrder::kLogOrder,
                    LinkOutage{2, 0.0, 1000.0}),
        base);
  }
}

TEST(ReplayScenario, FailStopDuringShuffleFreezesLinksAndRequeues) {
  // Synthetic run: 2 s of Map, then a 10 B shuffle transfer 0->1 at
  // unit rate. Node 1 dies at absolute t=4 (2 s into the shuffle, the
  // transfer in flight) and recovers at t=14: the transfer restarts
  // and the shuffle stage stretches from 10 s to 22 s.
  ScenarioRun run;
  run.algorithm = "synthetic";
  run.num_nodes = 2;
  run.stages.push_back({stage::kMap, StageKind::kCompute, {2.0, 2.0}});
  run.stages.push_back({stage::kShuffle, StageKind::kNetwork, {}});
  run.shuffle_log = {{0, {1}, 10, 0}};

  Scenario s;
  s.cluster = ClusterProfile::Homogeneous(2);
  s.topology = UnitRack(2);
  s.discipline = Discipline::kParallelFullDuplex;

  const ScenarioOutcome base = ReplayScenario(run, s);
  EXPECT_DOUBLE_EQ(base.spans[1].end, 12.0);

  s.cluster.straggler.kind = StragglerKind::kFailStop;
  s.cluster.straggler.node = 1;
  s.cluster.straggler.fail_at = 4.0;
  s.cluster.straggler.recovery = 10.0;
  const ScenarioOutcome out = ReplayScenario(run, s);
  // Stage-local: outage [2, 12); transfer restarts at 12, done at 22.
  EXPECT_DOUBLE_EQ(out.spans[1].end, 24.0);
  EXPECT_DOUBLE_EQ(out.makespan, 24.0);
}

// ---- Oversubscribed core ----

TEST(NetMakespan, CrossRackFlowsShareTheCore) {
  // Two racks of two; both 10-byte flows cross and the 1 B/s core
  // halves their rates: makespan 20 instead of the uncontended 10.
  Topology topo = Topology::Oversubscribed(4, 2, 4.0);
  topo.access_bytes_per_sec = 1.0;
  topo.core_bytes_per_sec = 1.0;
  topo.multicast_log_coeff = 0.0;
  const TransmissionLog log{{0, {2}, 10, 0}, {1, {3}, 10, 1}};
  EXPECT_DOUBLE_EQ(NetMakespan(log, topo, Discipline::kParallelFullDuplex,
                               ReplayOrder::kLogOrder),
                   20.0);
  // An in-rack flow is unaffected by the congested core.
  const TransmissionLog local{{0, {1}, 10, 0}};
  EXPECT_DOUBLE_EQ(NetMakespan(local, topo, Discipline::kParallelFullDuplex,
                               ReplayOrder::kLogOrder),
                   10.0);
}

TEST(NetMakespan, OversubscriptionIsMonotone) {
  SortConfig config;
  config.num_nodes = 6;
  config.num_records = 6000;
  const AlgorithmResult result = RunTeraSort(config);
  double prev = NetMakespan(result.shuffle_log,
                            Topology::SingleRack(config.num_nodes),
                            Discipline::kParallelFullDuplex,
                            ReplayOrder::kLogOrder);
  for (const double factor : {1.0, 4.0, 16.0}) {
    const Topology topo =
        Topology::Oversubscribed(config.num_nodes, 2, factor);
    const double t = NetMakespan(result.shuffle_log, topo,
                                 Discipline::kParallelFullDuplex,
                                 ReplayOrder::kLogOrder);
    EXPECT_GE(t + 1e-12, prev);
    prev = t;
  }
}

TEST(NetMakespan, SerialRateLimitedByCongestedCore) {
  Topology topo = Topology::Oversubscribed(4, 2, 1.0);
  topo.access_bytes_per_sec = 2.0;
  topo.core_bytes_per_sec = 1.0;
  topo.multicast_log_coeff = 0.0;
  // In-rack at 2 B/s (5 s), cross-rack at 1 B/s (10 s): serial sum.
  const TransmissionLog log{{0, {1}, 10, 0}, {0, {2}, 10, 1}};
  EXPECT_DOUBLE_EQ(
      NetMakespan(log, topo, Discipline::kSerial, ReplayOrder::kLogOrder),
      15.0);
}

// ---- Full-run scenario replay ----

AlgorithmResult SmallTeraSort() {
  SortConfig config;
  config.num_nodes = 6;
  config.num_records = 6000;
  config.distribution = KeyDistribution::kBalanced;
  return RunTeraSort(config);
}

AlgorithmResult SmallCoded() {
  SortConfig config;
  config.num_nodes = 6;
  config.redundancy = 2;
  config.num_records = 6000;
  config.distribution = KeyDistribution::kBalanced;
  return RunCodedTeraSort(config);
}

Scenario DegenerateScenario(int num_nodes, Discipline d, ReplayOrder o) {
  Scenario s;
  s.cluster = ClusterProfile::Homogeneous(num_nodes);
  s.topology = Topology::SingleRack(num_nodes);
  s.discipline = d;
  s.order = o;
  return s;
}

TEST(ReplayScenario, DegenerateMatchesAnalyticsBreakdown) {
  const CostModel model;
  const RunScale scale = PaperScale(6000, 600000);
  for (const AlgorithmResult& result : {SmallTeraSort(), SmallCoded()}) {
    const StageBreakdown closed =
        SimulateRun(result, model, scale, ShuffleSchedule::kSerial);
    const ScenarioOutcome out = ReplayScenario(
        result, model, scale,
        DegenerateScenario(result.config.num_nodes, Discipline::kSerial,
                           ReplayOrder::kLogOrder));
    // Compute stages must agree with the closed-form max-over-nodes.
    for (const char* name : {stage::kMap, stage::kPack, stage::kEncode,
                             stage::kUnpack, stage::kDecode, stage::kReduce,
                             stage::kCodeGen}) {
      const double expect = closed.stage(name);
      const double got = out.breakdown().stage(name);
      EXPECT_NEAR(got, expect, expect * 1e-9 + 1e-12) << name;
    }
    // The serial shuffle must agree with the replayed closed pipeline.
    const double shuffle_expect = ReplayShuffleSeconds(
        result, model, scale, ShuffleSchedule::kSerial);
    EXPECT_NEAR(out.breakdown().stage(stage::kShuffle), shuffle_expect,
                shuffle_expect * 1e-9);
    // Makespan is the sum of barrier-synchronized spans.
    double sum = 0;
    for (const auto& span : out.spans) sum += span.seconds();
    EXPECT_NEAR(out.makespan, sum, sum * 1e-9);
  }
}

TEST(ReplayScenario, DegenerateParallelShuffleMatchesReplayMakespan) {
  const CostModel model;
  const RunScale scale = PaperScale(6000, 600000);
  const AlgorithmResult result = SmallCoded();
  for (const Discipline d :
       {Discipline::kParallelHalfDuplex, Discipline::kParallelFullDuplex}) {
    for (const ReplayOrder o : kAllOrders) {
      const ScenarioOutcome out = ReplayScenario(
          result, model, scale,
          DegenerateScenario(result.config.num_nodes, d, o));
      const ShuffleSchedule sched = d == Discipline::kParallelFullDuplex
                                        ? ShuffleSchedule::kParallelFullDuplex
                                        : ShuffleSchedule::kParallelHalfDuplex;
      const double expect =
          ReplayShuffleSeconds(result, model, scale, sched, o);
      EXPECT_NEAR(out.breakdown().stage(stage::kShuffle), expect,
                  expect * 1e-9);
    }
  }
}

TEST(ReplayScenario, SlowNodeStretchesMapAndTotal) {
  const CostModel model;
  const RunScale scale = PaperScale(6000, 600000);
  const AlgorithmResult result = SmallCoded();
  const Scenario base = DegenerateScenario(6, Discipline::kSerial,
                                           ReplayOrder::kLogOrder);
  Scenario straggled = base;
  straggled.cluster.straggler.kind = StragglerKind::kSlowNode;
  straggled.cluster.straggler.node = 0;
  straggled.cluster.straggler.slowdown = 4.0;

  const ScenarioOutcome b = ReplayScenario(result, model, scale, base);
  const ScenarioOutcome s = ReplayScenario(result, model, scale, straggled);
  EXPECT_GT(s.makespan, b.makespan);
  // The balanced workload spreads Map evenly, so the slow node
  // dominates and the Map span stretches by ~the full slowdown.
  EXPECT_NEAR(s.breakdown().stage(stage::kMap),
              4.0 * b.breakdown().stage(stage::kMap),
              b.breakdown().stage(stage::kMap) * 0.1);
  // The network stage is unaffected.
  EXPECT_DOUBLE_EQ(s.breakdown().stage(stage::kShuffle),
                   b.breakdown().stage(stage::kShuffle));
}

TEST(ReplayScenario, FailStopOutageDelaysExactlyRecovery) {
  // Synthetic two-stage run: node 1 computes 10 s per stage; an outage
  // window inside stage A pushes its completion (and everything after
  // the barrier) out by the recovery time.
  ScenarioRun run;
  run.algorithm = "synthetic";
  run.num_nodes = 2;
  run.stages.push_back({"A", StageKind::kCompute, {4.0, 10.0}});
  run.stages.push_back({"B", StageKind::kCompute, {10.0, 2.0}});

  Scenario s;
  s.cluster = ClusterProfile::Homogeneous(2);
  s.topology = Topology::SingleRack(2);
  s.cluster.straggler.kind = StragglerKind::kFailStop;
  s.cluster.straggler.node = 1;
  s.cluster.straggler.fail_at = 5.0;
  s.cluster.straggler.recovery = 7.0;

  const ScenarioOutcome out = ReplayScenario(run, s);
  // Stage A: node 1 works [0,5], offline [5,12], finishes at 17.
  EXPECT_DOUBLE_EQ(out.spans[0].end, 17.0);
  // Stage B starts after the barrier and after the outage: plain 10 s.
  EXPECT_DOUBLE_EQ(out.spans[1].end, 27.0);
  EXPECT_DOUBLE_EQ(out.makespan, 27.0);

  // A node that begins a stage mid-outage waits for recovery first.
  s.cluster.straggler.fail_at = 0.0;
  s.cluster.straggler.recovery = 3.0;
  const ScenarioOutcome out2 = ReplayScenario(run, s);
  EXPECT_DOUBLE_EQ(out2.spans[0].end, 13.0);  // starts at 3, +10
}

TEST(ReplayScenario, CmrEventsReplayThroughTheSameEngine) {
  cmr::CmrConfig config;
  config.num_nodes = 4;
  config.redundancy = 2;
  config.mode = cmr::ShuffleMode::kCoded;
  const auto app = cmr::MakeGrepApp("map", 40);
  const cmr::CmrResult result = cmr::RunCmr(*app, config);
  ASSERT_FALSE(result.stage_order.empty());
  ASSERT_FALSE(result.compute_events.empty());

  const ScenarioRun run = BuildScenarioRunFromEvents(
      "CMR-Grep", config.num_nodes, result.stage_order,
      result.compute_events, result.shuffle_log);
  ASSERT_EQ(run.stages.size(), result.stage_order.size());

  Scenario base = DegenerateScenario(4, Discipline::kParallelFullDuplex,
                                     ReplayOrder::kLogOrder);
  const ScenarioOutcome b = ReplayScenario(run, base);
  EXPECT_GT(b.makespan, 0.0);

  Scenario slow = base;
  slow.cluster.straggler.kind = StragglerKind::kSlowNode;
  slow.cluster.straggler.node = 1;
  slow.cluster.straggler.slowdown = 10.0;
  EXPECT_GT(ReplayScenario(run, slow).makespan, b.makespan);
}

TEST(ReplayScenario, OverlappedCmrStragglerStillStretchesPipelinedStage) {
  // The overlapped uncoded CMR engine merges Map into the Shuffle
  // stage (pipelined). The stage is network-priced, but its measured
  // per-node compute must still respond to a straggler: the stage
  // ends when both the transfers and the slowest node are done.
  cmr::CmrConfig config;
  config.num_nodes = 4;
  config.redundancy = 2;
  config.mode = cmr::ShuffleMode::kUncoded;
  config.sync = ShuffleSync::kOverlapped;
  const auto app = cmr::MakeGrepApp("map", 40);
  const cmr::CmrResult result = cmr::RunCmr(*app, config);

  const ScenarioRun run = BuildScenarioRunFromEvents(
      "CMR-Grep-overlapped", config.num_nodes, result.stage_order,
      result.compute_events, result.shuffle_log);
  const auto shuffle_stage =
      std::find_if(run.stages.begin(), run.stages.end(),
                   [](const ScenarioRun::Stage& s) {
                     return s.name == stage::kShuffle;
                   });
  ASSERT_NE(shuffle_stage, run.stages.end());
  ASSERT_EQ(shuffle_stage->kind, StageKind::kNetwork);
  ASSERT_FALSE(shuffle_stage->node_seconds.empty());  // pipelined compute

  Scenario base = DegenerateScenario(4, Discipline::kParallelFullDuplex,
                                     ReplayOrder::kLogOrder);
  const double baseline = ReplayScenario(run, base).makespan;
  Scenario slow = base;
  slow.cluster.straggler.kind = StragglerKind::kSlowNode;
  slow.cluster.straggler.node = 0;
  // Enormous slowdown: the compute leg must dominate the stage even
  // though the stage is network-priced.
  slow.cluster.straggler.slowdown = 1e6;
  EXPECT_GT(ReplayScenario(run, slow).makespan, baseline * 10);
}

TEST(ReplayScenario, OversubscribedCoreFlipsTheWinner) {
  // The headline scenario: on a non-blocking full-duplex fabric the
  // parallel shuffle drains fast and TeraSort's r=1 Map wins; on a
  // heavily oversubscribed core, CodedTeraSort's smaller cross-rack
  // footprint wins.
  const CostModel model;
  const RunScale scale = PaperScale(6000, 2400000);
  const AlgorithmResult ts = SmallTeraSort();
  const AlgorithmResult cts = SmallCoded();

  Scenario fast = DegenerateScenario(6, Discipline::kParallelFullDuplex,
                                     ReplayOrder::kPerSender);
  const double ts_fast = ReplayScenario(ts, model, scale, fast).makespan;
  const double cts_fast = ReplayScenario(cts, model, scale, fast).makespan;

  Scenario congested = fast;
  congested.topology = Topology::Oversubscribed(6, 2, 64.0);
  const double ts_slow = ReplayScenario(ts, model, scale, congested).makespan;
  const double cts_slow =
      ReplayScenario(cts, model, scale, congested).makespan;

  // Congestion must hurt TeraSort (bigger cross-rack footprint) more.
  EXPECT_GT(ts_slow / ts_fast, cts_slow / cts_fast);
}

// ---- Ordering-hook seam ----

// Forces one fixed permutation of the first multi-candidate decision
// batch; every later decision stays canonical.
class FirstDecisionPermutationHook : public OrderingHook {
 public:
  explicit FirstDecisionPermutationHook(std::vector<std::size_t> perm)
      : perm_(std::move(perm)) {}

  std::vector<std::size_t> Choose(const OrderingDecision& d) override {
    ++decisions_;
    if (decisions_ > 1) return d.candidates;
    widths_.push_back(d.candidates.size());
    std::vector<std::size_t> out;
    for (const std::size_t p : perm_) out.push_back(d.candidates.at(p));
    return out;
  }

  int decisions() const { return decisions_; }
  const std::vector<std::size_t>& widths() const { return widths_; }

 private:
  const std::vector<std::size_t> perm_;
  int decisions_ = 0;
  std::vector<std::size_t> widths_;
};

TEST(NetMakespan, TieOrderPermutationInvariance) {
  // Three disjoint equal-size unicasts on a unit-rate rack: all three
  // complete at the same instant, so the DES faces one genuine
  // three-way completion tie. Whatever order the batch is processed
  // in, the replay must be bit-for-bit identical — makespan, per-flow
  // completion times, and delivered bytes.
  const Topology topo = UnitRack(6);
  TransmissionLog log;
  log.push_back({0, {1}, 500, 0});
  log.push_back({2, {3}, 500, 1});
  log.push_back({4, {5}, 500, 2});

  NetReplayStats canonical;
  const double base = NetMakespan(log, topo, Discipline::kParallelFullDuplex,
                                  ReplayOrder::kLogOrder, {}, &canonical);
  EXPECT_DOUBLE_EQ(base, 500.0);

  std::vector<std::size_t> perm = {0, 1, 2};
  int permutations = 0;
  do {
    FirstDecisionPermutationHook hook(perm);
    NetReplayStats stats;
    const double m =
        NetMakespan(log, topo, Discipline::kParallelFullDuplex,
                    ReplayOrder::kLogOrder, {}, &stats, &hook);
    ASSERT_GE(hook.decisions(), 1) << "no simultaneous-event batch seen";
    ASSERT_EQ(hook.widths().front(), 3u) << "expected a three-way tie";
    // Bitwise, not approximate: tie order must not leak into results.
    EXPECT_EQ(m, base);
    EXPECT_EQ(stats.flow_end, canonical.flow_end);
    EXPECT_EQ(stats.flow_start, canonical.flow_start);
    EXPECT_EQ(stats.delivered_payload_bytes,
              canonical.delivered_payload_bytes);
    ++permutations;
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_EQ(permutations, 6);
}

TEST(NetMakespan, HookReceivesOutageRequeueDecisions) {
  // Full duplex: node 1 both receives (0 -> 1) and transmits (1 -> 2)
  // when the outage freezes it, so the requeue batch holds two flows.
  const Topology topo = UnitRack(4);
  TransmissionLog log;
  log.push_back({0, {1}, 1000, 0});
  log.push_back({1, {2}, 1000, 1});

  LinkOutage outage;
  outage.node = 1;
  outage.start = 200;
  outage.end = 300;

  class CountingHook : public OrderingHook {
   public:
    std::vector<std::size_t> Choose(const OrderingDecision& d) override {
      if (d.kind == OrderingDecision::Kind::kOutageRequeue) {
        requeue_widths.push_back(d.candidates.size());
      }
      return d.candidates;
    }
    std::vector<std::size_t> requeue_widths;
  } hook;

  NetReplayStats stats;
  NetMakespan(log, topo, Discipline::kParallelFullDuplex,
              ReplayOrder::kLogOrder, outage, &stats, &hook);
  ASSERT_EQ(hook.requeue_widths.size(), 1u);
  EXPECT_EQ(hook.requeue_widths.front(), 2u);
  EXPECT_EQ(stats.delivered_payload_bytes, 2000.0);
}

}  // namespace
}  // namespace cts::simscen
