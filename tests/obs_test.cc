// The observability layer (src/obs): MetricRegistry semantics
// (handles, snapshots, reset, concurrent exactness) and the
// Chrome-trace builders — structural validity via ValidateTrace, exact
// shuffle byte conservation against TrafficStats for both the live and
// the DES builders, and the baseline DES replay degenerating to the
// live trace's span set.
#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "codedterasort/coded_terasort.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "simscen/engine.h"
#include "terasort/terasort.h"

namespace cts::obs {
namespace {

SortConfig SmallConfig(int K, int r) {
  SortConfig config;
  config.num_nodes = K;
  config.redundancy = r;
  config.num_records = 20000;
  config.seed = 2017;
  return config;
}

TEST(MetricRegistry, CountersGaugesHistograms) {
  MetricRegistry reg;
  Counter& c = reg.counter("t/events");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // The same name resolves to the same handle.
  EXPECT_EQ(&reg.counter("t/events"), &c);

  Gauge& g = reg.gauge("t/depth");
  g.set(3.5);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);

  Histogram& h = reg.histogram("t/latency");
  h.record(1.0);
  h.record(3.0);
  h.record(100.0);
  h.record(-5.0);  // dropped
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // Quantiles are geometric bucket midpoints (upper bound / sqrt 2):
  // the median sample 3 lives in [2, 4) -> 2*sqrt(2), the top sample
  // 100 in [64, 128) -> 64*sqrt(2). With only 3 samples the p99 rank
  // (0.99 * (n-1)) still lands on the median.
  const double sqrt2 = std::sqrt(2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.0 / sqrt2);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 4.0 / sqrt2);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 128.0 / sqrt2);
  // The estimate brackets the true sample within sqrt(2) either way.
  EXPECT_GE(h.quantile(0.5), 3.0 / sqrt2);
  EXPECT_LE(h.quantile(0.5), 3.0 * sqrt2);
  // Out-of-range q clamps instead of computing a negative (or
  // overflowing) rank: q < 0 is the minimum bucket, q > 1 the maximum.
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(7.0), h.quantile(1.0));
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0 / sqrt2);  // sample 1 in [1, 2)
}

TEST(MetricRegistry, SnapshotExpandsAndResetKeepsHandles) {
  MetricRegistry reg;
  Counter& c = reg.counter("t/count");
  c.add(7);
  reg.gauge("t/gauge").set(1.25);
  reg.histogram("t/quiet");             // never recorded: not in snapshot
  reg.histogram("t/hist").record(10.0);

  const auto snap = reg.Snapshot();
  EXPECT_DOUBLE_EQ(snap.at("t/count"), 7.0);
  EXPECT_DOUBLE_EQ(snap.at("t/gauge"), 1.25);
  EXPECT_DOUBLE_EQ(snap.at("t/hist/count"), 1.0);
  EXPECT_DOUBLE_EQ(snap.at("t/hist/sum"), 10.0);
  EXPECT_DOUBLE_EQ(snap.at("t/hist/max"), 10.0);
  EXPECT_TRUE(snap.count("t/hist/p50"));
  EXPECT_TRUE(snap.count("t/hist/p99"));
  EXPECT_FALSE(snap.count("t/quiet/count"));
  EXPECT_EQ(reg.size(), 4u);

  // Reset zeroes values but never invalidates handles.
  reg.Reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);
  EXPECT_DOUBLE_EQ(reg.Snapshot().at("t/count"), 2.0);
}

TEST(MetricRegistry, ConcurrentCountersAreExact) {
  MetricRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kAdds = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Handle resolved once, then relaxed adds — the hot-path idiom.
      Counter& c = reg.counter("t/contended");
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("t/contended").value(),
            static_cast<std::uint64_t>(kThreads) * kAdds);
}

// The flight recorder and the run ledger both snapshot registries into
// results, so Snapshot() must be a pure function of the operations
// applied: identical maps regardless of the order names were
// registered in (the stripes are hash-sharded maps) and regardless of
// thread interleaving. The workload is chosen to commute exactly —
// counter adds are integers, histogram samples are powers of two (so
// double sums are exact in any order), and each thread owns its gauge.
TEST(MetricRegistry, SnapshotIsDeterministicAcrossOrdersAndThreads) {
  constexpr int kThreads = 8;
  constexpr int kOps = 3600;  // multiple of the 12 counter names

  std::vector<std::string> names;
  for (int i = 0; i < 12; ++i) {
    names.push_back("det/counter_" + std::to_string(i));
  }

  const auto run_workload = [&](MetricRegistry& reg,
                                const std::vector<std::string>& order) {
    for (const std::string& name : order) reg.counter(name);
    reg.histogram("det/hist");
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&reg, &names, t] {
        Gauge& own = reg.gauge("det/gauge_" + std::to_string(t));
        Histogram& h = reg.histogram("det/hist");
        for (int i = 0; i < kOps; ++i) {
          reg.counter(names[(t + i) % names.size()]).add(1 + t);
          h.record(static_cast<double>(1 << (i % 8)));
          own.set(static_cast<double>(t) + 0.5);
        }
      });
    }
    for (auto& th : threads) th.join();
    return reg.Snapshot();
  };

  // Two deterministic shuffles of the registration order.
  std::vector<std::string> shuffled(names.rbegin(), names.rend());
  std::rotate(shuffled.begin(), shuffled.begin() + 5, shuffled.end());

  MetricRegistry a, b, c;
  const auto snap_a = run_workload(a, names);
  const auto snap_b = run_workload(b, shuffled);
  const auto snap_c = run_workload(c, names);  // fresh interleaving
  EXPECT_EQ(snap_a, snap_b);
  EXPECT_EQ(snap_a, snap_c);

  // And the values are the exact closed-form totals, not merely
  // mutually consistent: each name gets kOps/12 adds of (1+t) from
  // each thread; each thread records kOps/8 samples of each power
  // 1..128.
  const double adds_per_name_per_thread = kOps / 12.0;
  double expected_counter = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_counter += adds_per_name_per_thread * (1 + t);
  }
  for (const std::string& name : names) {
    EXPECT_EQ(snap_a.at(name), expected_counter) << name;
  }
  EXPECT_EQ(snap_a.at("det/hist/count"), 1.0 * kThreads * kOps);
  EXPECT_EQ(snap_a.at("det/hist/sum"), kThreads * (kOps / 8.0) * 255);
  EXPECT_EQ(snap_a.at("det/hist/max"), 128.0);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap_a.at("det/gauge_" + std::to_string(t)), t + 0.5);
  }
}

TEST(Trace, ValidateCatchesOverlapsAndBadFlows) {
  {
    Trace t;
    t.add_complete(0, 0, "parent", cat::kStage, 0.0, 1.0);
    t.add_complete(0, 0, "child", cat::kStage, 0.2, 0.8);
    t.add_complete(0, 0, "sibling", cat::kStage, 0.8, 1.0);
    t.add_complete(0, 1, "other-track", cat::kStage, 0.5, 2.0);
    t.add_flow(0, 0, 1, 0.3, 0.6);
    t.add_instant(0, 0, "mark", 0.4);
    EXPECT_EQ(ValidateTrace(t), "");
  }
  {
    // Straddling spans on one track violate the stack discipline.
    Trace t;
    t.add_complete(0, 0, "a", cat::kStage, 0.0, 1.0);
    t.add_complete(0, 0, "b", cat::kStage, 0.5, 1.5);
    EXPECT_NE(ValidateTrace(t), "");
  }
  {
    // A flow that finishes before it starts.
    Trace t;
    t.add_flow(0, 0, 1, 5.0, 1.0);
    EXPECT_NE(ValidateTrace(t), "");
  }
  {
    Trace t;
    t.add_complete(0, 0, "nan", cat::kStage, 0.0,
                   std::numeric_limits<double>::quiet_NaN());
    EXPECT_NE(ValidateTrace(t), "");
  }
}

TEST(Trace, MergeKeepsFlowIdsUniqueAndSumsBytesPerPid) {
  Trace a;
  a.add_complete(0, 0, "tx", cat::kShuffle, 0.0, 1.0, {{"bytes", 100.0}});
  a.add_flow(0, 0, 1, 0.0, 1.0);
  a.set_meta("a/bytes", 100.0);
  Trace b;
  b.add_complete(1, 0, "tx", cat::kShuffle, 0.0, 1.0, {{"bytes", 50.0}});
  b.add_flow(1, 0, 1, 0.0, 1.0);
  a.Merge(b);
  EXPECT_EQ(ValidateTrace(a), "");  // would flag duplicated flow ids
  EXPECT_DOUBLE_EQ(a.ShuffleBytes(0), 100.0);
  EXPECT_DOUBLE_EQ(a.ShuffleBytes(1), 50.0);
  EXPECT_DOUBLE_EQ(a.meta().at("a/bytes"), 100.0);
}

TEST(Trace, WriteJsonShape) {
  Trace t;
  t.set_process_name(0, "demo");
  t.set_track_name(0, 0, "node 0");
  // A byte total near 2^40 must round-trip as an exact integer, not
  // drift through scientific notation.
  t.set_meta("demo/shuffle_payload_bytes", 1099511627776.0);
  t.add_complete(0, 0, "Map", cat::kStage, 0.0, 0.5);
  t.add_instant(0, 0, "mark", 0.25);
  t.add_flow(0, 0, 0, 0.1, 0.2);
  std::ostringstream out;
  t.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(json.find("\"demo/shuffle_payload_bytes\": 1099511627776"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // ts/dur are microseconds: the 0.5 s Map span becomes dur 500000.
  EXPECT_NE(json.find("\"dur\":500000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

// The measured shuffle payload, straight from TrafficStats.
std::uint64_t ShuffleTrafficBytes(const AlgorithmResult& result) {
  const auto it = result.traffic.find(stage::kShuffle);
  return it == result.traffic.end() ? 0 : it->second.transmitted_bytes();
}

// Byte-count sums stay far below 2^53, so double sums are exact and
// the conservation checks below use EXPECT_EQ, not a tolerance.
TEST(LiveTrace, ValidAndByteConserving) {
  const AlgorithmResult terasort = RunTeraSort(SmallConfig(8, 1));
  const AlgorithmResult coded = RunCodedTeraSort(SmallConfig(8, 3));

  Trace trace = BuildLiveTrace(terasort, /*pid=*/0);
  trace.Merge(BuildLiveTrace(coded, /*pid=*/1));
  EXPECT_EQ(ValidateTrace(trace), "");

  EXPECT_EQ(trace.ShuffleBytes(0),
            static_cast<double>(ShuffleTrafficBytes(terasort)));
  EXPECT_EQ(trace.ShuffleBytes(1),
            static_cast<double>(ShuffleTrafficBytes(coded)));

  // One stage span per ComputeEvent, one flow arrow per
  // (transmission, receiver).
  std::size_t stage_spans = 0;
  std::size_t flow_starts = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.pid != 1) continue;
    if (e.phase == 'X' && e.category == cat::kStage) ++stage_spans;
    if (e.phase == 's') ++flow_starts;
  }
  EXPECT_EQ(stage_spans, coded.compute_events.size());
  std::size_t expected_arrows = 0;
  for (const auto& t : coded.shuffle_log) expected_arrows += t.dsts.size();
  EXPECT_EQ(flow_starts, expected_arrows);
}

TEST(ScenarioTrace, ValidByteConservingWithOutageMarks) {
  const SortConfig config = SmallConfig(8, 3);
  const AlgorithmResult result = RunCodedTeraSort(config);
  const simscen::ScenarioRun run = simscen::BuildScenarioRunFromEvents(
      result.algorithm, config.num_nodes, result.stage_order,
      result.compute_events, result.shuffle_log, config.redundancy);

  simscen::Scenario scenario = simscen::Scenario::Baseline(config.num_nodes);
  scenario.cluster.straggler.kind = simscen::StragglerKind::kFailStop;
  scenario.cluster.straggler.node = 2;
  scenario.cluster.straggler.fail_at = 0.001;
  scenario.cluster.straggler.recovery = 0.005;
  const simscen::ScenarioOutcome outcome =
      simscen::ReplayScenario(run, scenario);

  const Trace trace = BuildScenarioTrace(run, outcome, scenario);
  EXPECT_EQ(ValidateTrace(trace), "");

  std::uint64_t log_bytes = 0;
  for (const auto& t : run.shuffle_log) log_bytes += t.bytes;
  EXPECT_EQ(trace.ShuffleBytes(0), static_cast<double>(log_bytes));
  EXPECT_EQ(static_cast<std::uint64_t>(trace.ShuffleBytes(0)),
            ShuffleTrafficBytes(result));

  // The outage window shows up as instants on the failed node's track.
  int outage_marks = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.phase == 'i' &&
        (e.name == "outage-start" || e.name == "outage-end")) {
      EXPECT_EQ(e.tid, 2);
      ++outage_marks;
    }
  }
  EXPECT_EQ(outage_marks, 2);

  // The synthetic cluster track carries one barrier span per stage.
  std::set<std::string> cluster_stages;
  for (const TraceEvent& e : trace.events()) {
    if (e.phase == 'X' && e.tid == config.num_nodes &&
        e.category == cat::kStage) {
      cluster_stages.insert(e.name);
    }
  }
  EXPECT_EQ(cluster_stages.size(), result.stage_order.size());
}

// (tid, stage) pairs of the positive-duration per-node stage spans —
// the comparable core of a trace (the DES's measured times are
// barrier-aligned, so times are not comparable, but the span *set*
// must match).
std::multiset<std::pair<int, std::string>> NodeStageSpans(const Trace& trace,
                                                          int K) {
  std::multiset<std::pair<int, std::string>> spans;
  for (const TraceEvent& e : trace.events()) {
    if (e.phase == 'X' && e.category == cat::kStage && e.tid < K &&
        e.dur_seconds > 0) {
      spans.insert({e.tid, e.name});
    }
  }
  return spans;
}

// A baseline DES replay of the measured events must degenerate to the
// same per-node span set the live trace shows: same nodes, same
// stages, nothing invented or dropped by the replay.
TEST(ScenarioTrace, BaselineDegeneratesToLiveSpanSet) {
  const SortConfig config = SmallConfig(8, 1);
  const AlgorithmResult result = RunTeraSort(config);

  const Trace live = BuildLiveTrace(result);

  const simscen::ScenarioRun run = simscen::BuildScenarioRunFromEvents(
      result.algorithm, config.num_nodes, result.stage_order,
      result.compute_events, result.shuffle_log, config.redundancy);
  const simscen::Scenario baseline =
      simscen::Scenario::Baseline(config.num_nodes);
  const simscen::ScenarioOutcome outcome =
      simscen::ReplayScenario(run, baseline);
  const Trace des = BuildScenarioTrace(run, outcome, baseline);

  EXPECT_EQ(ValidateTrace(live), "");
  EXPECT_EQ(ValidateTrace(des), "");
  EXPECT_EQ(NodeStageSpans(live, config.num_nodes),
            NodeStageSpans(des, config.num_nodes));
  // And both conserve the same shuffle payload.
  EXPECT_EQ(live.ShuffleBytes(0), des.ShuffleBytes(0));
}

}  // namespace
}  // namespace cts::obs
