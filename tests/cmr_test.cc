// Tests for the generic Coded MapReduce engine and its bundled apps
// (Grep, WordCount): coded and uncoded shuffles must produce identical
// outputs, and measured communication loads must match eq. (2).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "analytics/loads.h"
#include "cmr/cmr.h"
#include "coding/placement.h"

namespace cts::cmr {
namespace {

CmrConfig Config(int K, int r, ShuffleMode mode) {
  CmrConfig c;
  c.num_nodes = K;
  c.redundancy = r;
  c.mode = mode;
  c.seed = 99;
  return c;
}

// Reference: run the app sequentially (single pass over all files).
std::vector<std::string> SequentialReference(const CmrApp& app, int K, int r,
                                             std::uint64_t seed) {
  const Placement placement = Placement::Create(K, r);
  std::vector<std::vector<std::vector<std::uint8_t>>> ivs(
      static_cast<std::size_t>(K));
  for (auto& v : ivs) v.resize(static_cast<std::size_t>(placement.num_files()));
  for (FileId f = 0; f < placement.num_files(); ++f) {
    auto mapped = app.map(app.make_file(f, seed), K);
    for (int q = 0; q < K; ++q) {
      ivs[static_cast<std::size_t>(q)][static_cast<std::size_t>(f)] =
          std::move(mapped[static_cast<std::size_t>(q)]);
    }
  }
  std::vector<std::string> outputs;
  outputs.reserve(static_cast<std::size_t>(K));
  for (int q = 0; q < K; ++q) {
    outputs.push_back(app.reduce(q, ivs[static_cast<std::size_t>(q)]));
  }
  return outputs;
}

class CmrModes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CmrModes, GrepMatchesSequentialReferenceBothModes) {
  const auto [K, r] = GetParam();
  const auto app = MakeGrepApp("needle", /*records_per_file=*/60);
  const auto expected = SequentialReference(*app, K, r, 99);
  for (const ShuffleMode mode :
       {ShuffleMode::kUncoded, ShuffleMode::kCoded}) {
    const CmrResult result = RunCmr(*app, Config(K, r, mode));
    EXPECT_EQ(result.outputs, expected)
        << "mode=" << (mode == ShuffleMode::kCoded ? "coded" : "uncoded");
  }
}

TEST_P(CmrModes, WordCountMatchesSequentialReferenceBothModes) {
  const auto [K, r] = GetParam();
  const auto app = MakeWordCountApp(/*records_per_file=*/60);
  const auto expected = SequentialReference(*app, K, r, 99);
  for (const ShuffleMode mode :
       {ShuffleMode::kUncoded, ShuffleMode::kCoded}) {
    const CmrResult result = RunCmr(*app, Config(K, r, mode));
    EXPECT_EQ(result.outputs, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CmrModes,
    ::testing::Values(std::pair{3, 1}, std::pair{3, 2}, std::pair{4, 2},
                      std::pair{5, 2}, std::pair{5, 3}, std::pair{6, 4}),
    [](const auto& info) {
      return "K" + std::to_string(info.param.first) + "r" +
             std::to_string(info.param.second);
    });

TEST(Cmr, WordCountTotalsAreConserved) {
  const auto app = MakeWordCountApp(100);
  const CmrResult coded = RunCmr(*app, Config(4, 2, ShuffleMode::kCoded));
  // Sum of all reducer counts must equal total words generated.
  std::uint64_t counted = 0;
  for (const auto& out : coded.outputs) {
    std::istringstream is(out);
    std::string word;
    std::uint64_t n;
    while (is >> word >> n) counted += n;
  }
  std::uint64_t generated = 0;
  const Placement p = Placement::Create(4, 2);
  for (FileId f = 0; f < p.num_files(); ++f) {
    for (const auto& line : app->make_file(f, 99)) {
      std::istringstream is(line);
      std::string w;
      while (is >> w) ++generated;
    }
  }
  EXPECT_EQ(counted, generated);
}

TEST(Cmr, MeasuredLoadsMatchEquation2) {
  // The engine's measured payload loads are the paper's Fig. 2
  // points: uncoded = 1 - r/K, coded = (1/r)(1 - r/K). Grep IVs grow
  // with input size (unlike WordCount tallies, which saturate at the
  // dictionary size), so segment padding noise stays small.
  const int K = 6;
  const auto app = MakeGrepApp("e", /*records_per_file=*/600);
  for (int r = 1; r <= 4; ++r) {
    // Padding overhead grows with r (max of r ragged segments) and
    // shrinks with segment size; at r=4 segments are ~40 lines, so
    // allow a wider band there.
    const double pad_tol = r <= 3 ? 0.12 : 0.18;
    const CmrResult uncoded =
        RunCmr(*app, Config(K, r, ShuffleMode::kUncoded));
    // Unicast payloads carry no padding or headers; the ~1% residue is
    // hash-routing variance (which reducers land inside each holder
    // set). The exact identity under balanced loads is asserted in
    // CodedTeraSort.ShuffleBytesMatchCodedLoadFormula.
    EXPECT_NEAR(uncoded.measured_payload_load(), UncodedLoad(K, r),
                UncodedLoad(K, r) * 0.01)
        << "r=" << r;
    const CmrResult coded = RunCmr(*app, Config(K, r, ShuffleMode::kCoded));
    // Coded payloads additionally pad ragged segments to the longest
    // constituent per packet (paper footnote 3).
    EXPECT_NEAR(coded.measured_payload_load(), CodedLoad(K, r),
                CodedLoad(K, r) * pad_tol + 1e-9)
        << "r=" << r;
    // The measured coding gain approaches r.
    EXPECT_NEAR(uncoded.measured_payload_load() /
                    coded.measured_payload_load(),
                static_cast<double>(r), pad_tol * r)
        << "r=" << r;
  }
}

TEST(Cmr, CodedShuffleUsesOnlyMulticast) {
  const auto app = MakeGrepApp("map", 50);
  const CmrResult coded = RunCmr(*app, Config(5, 2, ShuffleMode::kCoded));
  const auto shuffle = coded.traffic.at(stage::kShuffle);
  EXPECT_EQ(shuffle.unicast_msgs, 0u);
  EXPECT_EQ(shuffle.mcast_msgs, Binomial(5, 3) * 3);
  const CmrResult uncoded = RunCmr(*app, Config(5, 2, ShuffleMode::kUncoded));
  EXPECT_EQ(uncoded.traffic.at(stage::kShuffle).mcast_msgs, 0u);
}

TEST(Cmr, RedundancyKIsShuffleFree) {
  const auto app = MakeWordCountApp(40);
  const CmrResult result = RunCmr(*app, Config(4, 4, ShuffleMode::kCoded));
  EXPECT_EQ(result.traffic.at(stage::kShuffle).transmitted_bytes(), 0u);
  EXPECT_EQ(result.outputs, SequentialReference(*app, 4, 4, 99));
}

TEST(Cmr, GrepFindsOnlyMatchingLines) {
  const auto app = MakeGrepApp("needle", 100);
  const CmrResult result = RunCmr(*app, Config(4, 2, ShuffleMode::kCoded));
  std::size_t lines = 0;
  for (const auto& out : result.outputs) {
    std::istringstream is(out);
    std::string line;
    while (std::getline(is, line)) {
      EXPECT_NE(line.find("needle"), std::string::npos);
      ++lines;
    }
  }
  EXPECT_GT(lines, 0u);  // the dictionary contains "needle"
}

TEST_P(CmrModes, SelfJoinMatchesSequentialReferenceBothModes) {
  const auto [K, r] = GetParam();
  const auto app = MakeSelfJoinApp(/*records_per_file=*/40, /*key_space=*/16);
  const auto expected = SequentialReference(*app, K, r, 99);
  for (const ShuffleMode mode :
       {ShuffleMode::kUncoded, ShuffleMode::kCoded}) {
    const CmrResult result = RunCmr(*app, Config(K, r, mode));
    EXPECT_EQ(result.outputs, expected);
  }
}

TEST_P(CmrModes, InvertedIndexMatchesSequentialReferenceBothModes) {
  const auto [K, r] = GetParam();
  const auto app = MakeInvertedIndexApp(/*records_per_file=*/40);
  const auto expected = SequentialReference(*app, K, r, 99);
  for (const ShuffleMode mode :
       {ShuffleMode::kUncoded, ShuffleMode::kCoded}) {
    const CmrResult result = RunCmr(*app, Config(K, r, mode));
    EXPECT_EQ(result.outputs, expected);
  }
}

TEST(Cmr, SelfJoinPairsShareTheirKey) {
  const auto app = MakeSelfJoinApp(60, 8);
  const CmrResult result = RunCmr(*app, Config(4, 2, ShuffleMode::kCoded));
  std::size_t pairs = 0;
  for (const auto& out : result.outputs) {
    std::istringstream is(out);
    std::string key, a, b;
    while (is >> key >> a >> b) {
      EXPECT_EQ(key[0], 'k');
      EXPECT_EQ(a[0], 'v');
      EXPECT_EQ(b[0], 'v');
      ++pairs;
    }
  }
  // 6 files x 60 records over 8 keys: plenty of collisions.
  EXPECT_GT(pairs, 100u);
}

TEST(Cmr, SelfJoinKeysRouteToOneReducer) {
  const auto app = MakeSelfJoinApp(60, 8);
  const CmrResult result = RunCmr(*app, Config(4, 2, ShuffleMode::kCoded));
  std::map<std::string, std::set<int>> key_reducers;
  for (int q = 0; q < 4; ++q) {
    std::istringstream is(result.outputs[static_cast<std::size_t>(q)]);
    std::string key, a, b;
    while (is >> key >> a >> b) key_reducers[key].insert(q);
  }
  for (const auto& [key, reducers] : key_reducers) {
    EXPECT_EQ(reducers.size(), 1u) << key;
  }
}

TEST(Cmr, InvertedIndexPostingsContainTheWord) {
  const auto app = MakeInvertedIndexApp(80);
  const CmrResult result = RunCmr(*app, Config(4, 2, ShuffleMode::kCoded));
  std::size_t words = 0;
  for (const auto& out : result.outputs) {
    std::istringstream is(out);
    std::string line;
    while (std::getline(is, line)) {
      const auto colon = line.find(':');
      ASSERT_NE(colon, std::string::npos);
      EXPECT_GT(line.size(), colon + 1);  // at least one doc id
      ++words;
    }
  }
  // The generator's dictionary has 18 words; all should appear.
  EXPECT_EQ(words, 18u);
}

TEST(Cmr, DeterministicAcrossRuns) {
  const auto app = MakeWordCountApp(50);
  const CmrResult a = RunCmr(*app, Config(4, 2, ShuffleMode::kCoded));
  const CmrResult b = RunCmr(*app, Config(4, 2, ShuffleMode::kCoded));
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.total_iv_bytes, b.total_iv_bytes);
  EXPECT_EQ(a.traffic.at(stage::kShuffle).transmitted_bytes(),
            b.traffic.at(stage::kShuffle).transmitted_bytes());
}

}  // namespace
}  // namespace cts::cmr
