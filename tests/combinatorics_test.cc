// Unit + property tests for src/combinatorics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "combinatorics/subsets.h"
#include "common/check.h"

namespace cts {
namespace {

TEST(Binomial, SmallValues) {
  EXPECT_EQ(Binomial(0, 0), 1u);
  EXPECT_EQ(Binomial(4, 2), 6u);
  EXPECT_EQ(Binomial(5, 0), 1u);
  EXPECT_EQ(Binomial(5, 5), 1u);
  EXPECT_EQ(Binomial(5, 6), 0u);
  EXPECT_EQ(Binomial(5, -1), 0u);
}

TEST(Binomial, PaperValues) {
  // Values the paper quotes or implies in Section V.
  EXPECT_EQ(Binomial(16, 3), 560u);   // N files at K=16, r=3
  EXPECT_EQ(Binomial(16, 4), 1820u);  // multicast groups at K=16, r=3
  EXPECT_EQ(Binomial(16, 6), 8008u);  // multicast groups at K=16, r=5
  EXPECT_EQ(Binomial(20, 4), 4845u);  // K=20, r=3
  EXPECT_EQ(Binomial(20, 6), 38760u); // K=20, r=5
  EXPECT_EQ(Binomial(15, 2), 105u);   // files per node at K=16, r=3
}

TEST(Binomial, PascalIdentity) {
  for (int n = 1; n <= 30; ++n) {
    for (int k = 1; k <= n; ++k) {
      EXPECT_EQ(Binomial(n, k), Binomial(n - 1, k - 1) + Binomial(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Subsets, FirstSubsetHasLowBits) {
  EXPECT_EQ(FirstSubset(0), 0u);
  EXPECT_EQ(FirstSubset(1), 0b1u);
  EXPECT_EQ(FirstSubset(3), 0b111u);
}

TEST(Subsets, MaskHelpers) {
  NodeMask m = NodesToMask({0, 2, 5});
  EXPECT_TRUE(Contains(m, 0));
  EXPECT_FALSE(Contains(m, 1));
  EXPECT_TRUE(Contains(m, 5));
  EXPECT_EQ(Popcount(m), 3);
  EXPECT_EQ(WithoutNode(m, 2), NodesToMask({0, 5}));
  EXPECT_EQ(WithNode(m, 1), NodesToMask({0, 1, 2, 5}));
  EXPECT_EQ(MaskToNodes(m), (std::vector<NodeId>{0, 2, 5}));
}

TEST(Subsets, NodesToMaskRejectsDuplicates) {
  EXPECT_THROW(NodesToMask({1, 1}), CheckError);
}

TEST(Subsets, AllSubsetsCountsAndOrder) {
  const auto subsets = AllSubsets(5, 2);
  EXPECT_EQ(subsets.size(), 10u);
  EXPECT_TRUE(std::is_sorted(subsets.begin(), subsets.end()));
  for (NodeMask m : subsets) EXPECT_EQ(Popcount(m), 2);
  // Distinctness.
  std::set<NodeMask> unique(subsets.begin(), subsets.end());
  EXPECT_EQ(unique.size(), subsets.size());
}

TEST(Subsets, AllSubsetsEdgeCases) {
  EXPECT_EQ(AllSubsets(4, 0), (std::vector<NodeMask>{0u}));
  EXPECT_EQ(AllSubsets(4, 4), (std::vector<NodeMask>{0b1111u}));
  EXPECT_EQ(AllSubsets(1, 1), (std::vector<NodeMask>{0b1u}));
}

TEST(Subsets, Paper4Choose2Example) {
  // Paper Section IV-A: K=4, r=2 yields files F{1,2}, F{1,3}, F{2,3},
  // F{1,4}, F{2,4}, F{3,4} (0-based here), 6 files total.
  const auto subsets = AllSubsets(4, 2);
  ASSERT_EQ(subsets.size(), 6u);
  EXPECT_EQ(subsets[0], NodesToMask({0, 1}));
  EXPECT_EQ(subsets[1], NodesToMask({0, 2}));
  EXPECT_EQ(subsets[2], NodesToMask({1, 2}));
  EXPECT_EQ(subsets[3], NodesToMask({0, 3}));
  EXPECT_EQ(subsets[4], NodesToMask({1, 3}));
  EXPECT_EQ(subsets[5], NodesToMask({2, 3}));
}

TEST(Subsets, SubsetsContainingNode) {
  const auto with2 = SubsetsContaining(5, 3, 2);
  EXPECT_EQ(with2.size(), Binomial(4, 2));
  for (NodeMask m : with2) {
    EXPECT_TRUE(Contains(m, 2));
    EXPECT_EQ(Popcount(m), 3);
  }
}

// Property: ColexRank and ColexUnrank are inverse bijections over all
// (K, r) pairs in a sweep.
class ColexBijection : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ColexBijection, RankUnrankRoundTrip) {
  const auto [K, r] = GetParam();
  const auto subsets = AllSubsets(K, r);
  for (std::uint64_t rank = 0; rank < subsets.size(); ++rank) {
    EXPECT_EQ(ColexRank(subsets[rank]), rank);
    EXPECT_EQ(ColexUnrank(K, r, rank), subsets[rank]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ColexBijection,
    ::testing::Values(std::pair{4, 2}, std::pair{5, 1}, std::pair{5, 5},
                      std::pair{8, 3}, std::pair{10, 4}, std::pair{12, 2},
                      std::pair{16, 3}, std::pair{16, 5}, std::pair{20, 3},
                      std::pair{13, 6}),
    [](const auto& info) {
      return "K" + std::to_string(info.param.first) + "r" +
             std::to_string(info.param.second);
    });

TEST(Colex, UnrankRejectsOutOfRange) {
  EXPECT_THROW(ColexUnrank(4, 2, 6), CheckError);
}

// Structured-redundancy invariant the placement relies on: every
// r-subset of nodes shares exactly one file, i.e. the subsets are
// distinct and cover all C(K, r) possibilities.
TEST(Subsets, EveryRSubsetAppearsExactlyOnce) {
  const int K = 7, r = 3;
  const auto subsets = AllSubsets(K, r);
  std::set<NodeMask> seen(subsets.begin(), subsets.end());
  EXPECT_EQ(seen.size(), Binomial(K, r));
  // Each node appears in exactly C(K-1, r-1) subsets.
  for (NodeId n = 0; n < K; ++n) {
    std::size_t count = 0;
    for (NodeMask m : subsets) {
      if (Contains(m, n)) ++count;
    }
    EXPECT_EQ(count, Binomial(K - 1, r - 1));
  }
}

TEST(Subsets, GospersHackMatchesNaiveEnumeration) {
  const int K = 10, r = 4;
  std::vector<NodeMask> naive;
  for (NodeMask m = 0; m < (NodeMask{1} << K); ++m) {
    if (Popcount(m) == r) naive.push_back(m);
  }
  EXPECT_EQ(AllSubsets(K, r), naive);
}

TEST(Subsets, FullWidthUniverse) {
  // K = kMaxNodes (64) exercises the shift-overflow guard paths: the
  // limit mask (NodeMask{1} << K) - 1 would be UB at K = 64, so the
  // guard must saturate to ~NodeMask{0} exactly at kNodeMaskBits.
  const auto subsets = AllSubsets(kMaxNodes, kMaxNodes - 1);
  EXPECT_EQ(subsets.size(), static_cast<std::size_t>(kMaxNodes));
  const auto all = AllSubsets(kMaxNodes, kMaxNodes);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], ~NodeMask{0});
  EXPECT_EQ(FirstSubset(kMaxNodes), ~NodeMask{0});
}

TEST(Subsets, MidWidthUniverseStaysInsideK) {
  // Regression for the stale 32-bit guard: with NodeMask widened to 64
  // bits, a literal (K >= 32) limit check saturated the universe for
  // 32 < K < 64 and enumerated subsets with members >= K.
  for (int K : {33, 40, 63}) {
    const auto subsets = AllSubsets(K, K - 1);
    EXPECT_EQ(subsets.size(), static_cast<std::size_t>(K)) << "K=" << K;
    const NodeMask universe = (NodeMask{1} << K) - 1;
    for (NodeMask m : subsets) {
      EXPECT_EQ(m & ~universe, 0u) << "K=" << K << " mask=" << m;
    }
    EXPECT_EQ(subsets.back(), universe & ~NodeMask{1});
  }
  EXPECT_EQ(AllSubsets(40, 2).size(), Binomial(40, 2));
}

TEST(Colex, RoundTripAtMaskWidthBoundary) {
  // K = 63 and K = 64 with r near K: rank/unrank must survive masks
  // whose top bit is set (the NodeMask{1} << K shift edge).
  for (int K : {63, 64}) {
    for (int r : {1, K - 1, K}) {
      const auto subsets = AllSubsets(K, r);
      // Spot-check first, last and a middle rank (full sweeps at K=63
      // r=1 are cheap; r=K-1 has only K entries).
      for (std::uint64_t rank :
           {std::uint64_t{0}, subsets.size() / 2, subsets.size() - 1}) {
        EXPECT_EQ(ColexRank(subsets[rank]), rank) << "K=" << K << " r=" << r;
        EXPECT_EQ(ColexUnrank(K, r, rank), subsets[rank])
            << "K=" << K << " r=" << r;
      }
    }
  }
  // The full universe at K = 64 is the all-ones mask; its rank is 0.
  EXPECT_EQ(ColexRank(~NodeMask{0}), 0u);
  EXPECT_EQ(ColexUnrank(64, 64, 0), ~NodeMask{0});
}

TEST(Binomial, BinomialOrReportsOverflowWithoutAborting) {
  std::uint64_t out = 12345;
  EXPECT_FALSE(BinomialOr(1000, 8, &out));  // C(1000,8) > 2^64
  EXPECT_EQ(out, 12345u);                   // untouched on overflow
  EXPECT_TRUE(BinomialOr(1000, 3, &out));
  EXPECT_EQ(out, 166167000u);
  EXPECT_TRUE(BinomialOr(64, 32, &out));  // largest C(64, k) fits
  EXPECT_EQ(out, 1832624140942590534u);
  EXPECT_TRUE(BinomialOr(5, 7, &out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(BinomialOr(5, -1, &out));
  EXPECT_EQ(out, 0u);
  EXPECT_THROW(Binomial(1000, 8), CheckError);
}

}  // namespace
}  // namespace cts
