// The unified Job API (src/job): registry round-trip against the
// direct Run* entry points, JobMatrix memoization (one live execution
// per distinct (algorithm, SortConfig) key), the shared scenario-spec
// parser, and the bench-JSON schema of JobResult::metrics.
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "bench/bench_common.h"
#include "cmr/cmr.h"
#include "codedterasort/coded_terasort.h"
#include "job/job.h"
#include "job/matrix.h"
#include "job/parse.h"
#include "job/registry.h"
#include "terasort/terasort.h"

namespace cts::job {
namespace {

SortConfig SmallConfig(int r) {
  SortConfig config;
  config.num_nodes = 4;
  config.redundancy = r;
  config.num_records = 20000;
  config.seed = 2017;
  return config;
}

TEST(Registry, BuiltinsAreRegistered) {
  const auto names = Names();
  for (const std::string expected : {"terasort", "coded", "cmr"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  ASSERT_NE(Find("terasort"), nullptr);
  EXPECT_TRUE(Find("terasort")->priced);
  EXPECT_TRUE(Find("terasort")->sorts);
  ASSERT_NE(Find("cmr"), nullptr);
  EXPECT_FALSE(Find("cmr")->priced);
  EXPECT_FALSE(Find("cmr")->sorts);
  EXPECT_FALSE(Find("coded")->knobs.empty());
  EXPECT_EQ(Find("no-such-algorithm"), nullptr);
}

TEST(Registry, SuggestsCloseNames) {
  EXPECT_EQ(SuggestName("terasor"), "terasort");
  EXPECT_EQ(SuggestName("codedd"), "coded");
  EXPECT_EQ(SuggestName("cmr2"), "cmr");
  EXPECT_EQ(SuggestName("mapreduce-framework"), "");
}

// Every registered sorting algorithm, run through the Job API at K=4,
// must yield the very counters its direct entry point produces — the
// registry is routing, not reinterpretation.
TEST(Registry, RoundTripMatchesDirectCalls) {
  {
    const SortConfig config = SmallConfig(1);
    JobSpec spec;
    spec.algorithm = "terasort";
    spec.config = config;
    spec.backend = Backend::kLive;
    const JobResult via_job = RunJob(spec);
    const AlgorithmResult direct = RunTeraSort(config);
    ASSERT_NE(via_job.execution, nullptr);
    EXPECT_EQ(via_job.algorithm, direct.algorithm);
    EXPECT_EQ(via_job.execution->total_output_records(),
              direct.total_output_records());
    const NodeWork a = via_job.execution->total_work();
    const NodeWork b = direct.total_work();
    EXPECT_EQ(a.map_bytes, b.map_bytes);
    EXPECT_EQ(a.pack_bytes, b.pack_bytes);
    EXPECT_EQ(a.unpack_bytes, b.unpack_bytes);
    EXPECT_EQ(a.reduce_bytes, b.reduce_bytes);
    EXPECT_EQ(via_job.execution->stage_order, direct.stage_order);
    EXPECT_EQ(
        via_job.execution->traffic.at(stage::kShuffle).transmitted_bytes(),
        direct.traffic.at(stage::kShuffle).transmitted_bytes());
  }
  {
    const SortConfig config = SmallConfig(2);
    JobSpec spec;
    spec.algorithm = "coded";
    spec.config = config;
    spec.backend = Backend::kLive;
    const JobResult via_job = RunJob(spec);
    const AlgorithmResult direct = RunCodedTeraSort(config);
    EXPECT_EQ(via_job.algorithm, direct.algorithm);
    EXPECT_EQ(via_job.execution->total_output_records(),
              direct.total_output_records());
    EXPECT_EQ(via_job.execution->total_work().map_bytes,
              direct.total_work().map_bytes);
    EXPECT_EQ(via_job.execution->stage_order, direct.stage_order);
    EXPECT_EQ(
        via_job.execution->traffic.at(stage::kShuffle).transmitted_bytes(),
        direct.traffic.at(stage::kShuffle).transmitted_bytes());
  }
  {
    // CMR: the adapter must run exactly the direct RunCmr call it
    // documents (WordCount app sized by CmrRecordsPerFile).
    const SortConfig config = SmallConfig(2);
    JobSpec spec;
    spec.algorithm = "cmr";
    spec.config = config;
    spec.backend = Backend::kLive;
    const JobResult via_job = RunJob(spec);
    cmr::CmrConfig cc;
    cc.num_nodes = config.num_nodes;
    cc.redundancy = config.redundancy;
    cc.seed = config.seed;
    cc.mode = cmr::ShuffleMode::kCoded;
    const auto app = cmr::MakeWordCountApp(CmrRecordsPerFile(config));
    const cmr::CmrResult direct = cmr::RunCmr(*app, cc);
    EXPECT_EQ(via_job.execution->stage_order, direct.stage_order);
    EXPECT_EQ(
        via_job.execution->traffic.at(stage::kShuffle).transmitted_bytes(),
        direct.traffic.at(stage::kShuffle).transmitted_bytes());
    EXPECT_EQ(via_job.execution->shuffle_log.size(),
              direct.shuffle_log.size());
  }
}

// The priced backend is analytics::SimulateRun over the same measured
// counters — totals must agree exactly (both are deterministic in the
// counters).
TEST(Job, PricedBackendMatchesSimulateRun) {
  const SortConfig config = SmallConfig(2);
  JobSpec spec;
  spec.algorithm = "coded";
  spec.config = config;
  spec.backend = Backend::kPriced;
  spec.paper_records = 120'000'000;
  const JobResult result = RunJob(spec);
  EXPECT_TRUE(result.priced);
  const StageBreakdown direct =
      SimulateRun(*result.execution, CostModel{},
                  PaperScale(config.num_records, 120'000'000));
  EXPECT_DOUBLE_EQ(result.breakdown.total(), direct.total());
  EXPECT_DOUBLE_EQ(result.makespan, result.breakdown.total());
}

// The closed-form backend cannot honor a scenario; silently pricing
// an unmitigated run under a scenario label would fake a null result,
// so both RunJob and RunMatrix reject the combination loudly.
TEST(Job, PricedBackendRejectsScenarios) {
  JobSpec spec;
  spec.algorithm = "terasort";
  spec.config = SmallConfig(1);
  spec.backend = Backend::kPriced;
  spec.scenario = simscen::Scenario::Baseline(4);
  EXPECT_THROW((void)RunJob(spec), CheckError);

  JobMatrix m;
  m.backend = Backend::kPriced;
  m.algos.push_back({"terasort", "terasort", SmallConfig(1)});
  m.scenarios.push_back({"healthy", simscen::Scenario::Baseline(4)});
  EXPECT_THROW((void)RunMatrix(m), CheckError);
}

// The matrix memoizes the live execution per (algorithm, SortConfig)
// key: scenarios × policies are replays of one measured run, and a
// duplicate algorithm entry under a different label costs nothing.
TEST(Matrix, MemoizesLiveExecutionPerKey) {
  JobMatrix m;
  m.backend = Backend::kReplay;
  m.algos.push_back({"terasort", "terasort", SmallConfig(1)});
  m.algos.push_back({"coded_r2", "coded", SmallConfig(2)});
  m.algos.push_back({"terasort_again", "terasort", SmallConfig(1)});

  simscen::Scenario slow = simscen::Scenario::Baseline(4);
  slow.cluster.straggler.kind = simscen::StragglerKind::kSlowNode;
  slow.cluster.straggler.node = 0;
  slow.cluster.straggler.slowdown = 4.0;
  m.scenarios.push_back({"healthy", simscen::Scenario::Baseline(4)});
  m.scenarios.push_back({"slow4", slow});

  m.policies.push_back({"none", mitigate::MitigationPolicy::None()});
  m.policies.push_back({"spec", mitigate::MitigationPolicy::Speculative()});
  m.policies.push_back({"coded", mitigate::MitigationPolicy::CodedMap()});

  RunCache cache;
  const MatrixResults results = RunMatrix(m, cache);

  // 3 algo labels × 2 scenarios × 3 policies = 18 replayed cells, but
  // only 2 distinct (algorithm, config) keys ever hit the harness.
  // Every other cell's Get() is a cache hit — exactly cells minus
  // distinct keys, nothing double-booked by the internal
  // GetScenarioRun fetches.
  EXPECT_EQ(results.cells().size(), 18u);
  EXPECT_EQ(results.executions(), 2);
  EXPECT_EQ(cache.executions(), 2);
  EXPECT_EQ(cache.hits(), 16);

  for (const MatrixCell& cell : results.cells()) {
    EXPECT_GT(cell.result.makespan, 0.0) << cell.algo;
    ASSERT_TRUE(cell.result.outcome.has_value());
    // Every result carries the registry snapshot taken at completion,
    // including the cache accounting above.
    EXPECT_TRUE(cell.result.metrics_snapshot.count("job/cache_misses"))
        << cell.algo;
  }

  // Duplicate-label axes are rejected, and every addressed cell is
  // reachable.
  const JobResult& healthy =
      results.at("terasort", "healthy", "none");
  const JobResult& slowed = results.at("terasort", "slow4", "none");
  EXPECT_GT(slowed.makespan, healthy.makespan);
  // The straggler stretches the coded run too, and the coded-Map
  // policy claws part of it back (Map tolerance r-1 = 1).
  const JobResult& coded_none = results.at("coded_r2", "slow4", "none");
  const JobResult& coded_mitigated =
      results.at("coded_r2", "slow4", "coded");
  EXPECT_LE(coded_mitigated.makespan, coded_none.makespan);

  // Identical configs under different labels share the cached run.
  EXPECT_EQ(results.at("terasort", "healthy", "none").execution,
            results.at("terasort_again", "healthy", "none").execution);
}

TEST(Parse, StragglerSpecs) {
  std::string error;
  const auto slow = ParseStraggler("slow:0:4", 8, &error);
  ASSERT_TRUE(slow.has_value()) << error;
  EXPECT_EQ(slow->kind, simscen::StragglerKind::kSlowNode);
  EXPECT_EQ(slow->node, 0);
  EXPECT_DOUBLE_EQ(slow->slowdown, 4.0);

  const auto exp = ParseStraggler("exp:1:0.5:7", 8, &error);
  ASSERT_TRUE(exp.has_value()) << error;
  EXPECT_EQ(exp->kind, simscen::StragglerKind::kShiftedExp);
  EXPECT_EQ(exp->seed, 7u);

  // Seeds are full-range uint64 (beyond int), and overflow is rejected
  // rather than clamped.
  const auto big = ParseStraggler("exp:1:0.5:3000000000", 8, &error);
  ASSERT_TRUE(big.has_value()) << error;
  EXPECT_EQ(big->seed, 3000000000u);
  EXPECT_FALSE(
      ParseStraggler("exp:1:0.5:99999999999999999999999", 8, &error)
          .has_value());

  const auto fail = ParseStraggler("failstop:2:8:3", 8, &error);
  ASSERT_TRUE(fail.has_value()) << error;
  EXPECT_EQ(fail->kind, simscen::StragglerKind::kFailStop);
  EXPECT_EQ(fail->node, 3);

  EXPECT_FALSE(ParseStraggler("slow:9:4", 8, &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;
  EXPECT_FALSE(ParseStraggler("slow:0:0.5", 8, &error).has_value());
  EXPECT_FALSE(ParseStraggler("warp:0:2", 8, &error).has_value());
  EXPECT_FALSE(ParseStraggler("slow:1.5:2", 8, &error).has_value());
  // Non-finite fields would evade one-sided range checks and poison
  // the replay; the parser rejects them outright.
  EXPECT_FALSE(ParseStraggler("slow:0:inf", 8, &error).has_value());
  EXPECT_FALSE(ParseStraggler("slow:nan:4", 8, &error).has_value());
  EXPECT_FALSE(ParseStraggler("exp:nan:0.5", 8, &error).has_value());
}

TEST(Parse, TopologyAndScenario) {
  std::string error;
  const auto topo = ParseTopology("2:16", 8, &error);
  ASSERT_TRUE(topo.has_value()) << error;
  EXPECT_EQ(topo->nodes_per_rack, 2);
  EXPECT_TRUE(topo->core_is_finite());
  EXPECT_FALSE(ParseTopology("2", 8, &error).has_value());
  EXPECT_FALSE(ParseTopology("0:16", 8, &error).has_value());

  ScenarioSpec spec;
  spec.topology = "2:16";
  spec.straggler = "slow:0:4";
  spec.mitigate = "spec:0.5:2";
  spec.discipline = "full";
  spec.order = "per-sender";
  const auto scenario = ParseScenario(spec, 8, &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->discipline, simnet::Discipline::kParallelFullDuplex);
  EXPECT_EQ(scenario->order, simnet::ReplayOrder::kPerSender);
  EXPECT_EQ(scenario->mitigation.kind, mitigate::PolicyKind::kSpeculative);
  EXPECT_DOUBLE_EQ(scenario->mitigation.trigger, 2.0);
  EXPECT_EQ(scenario->cluster.straggler.kind,
            simscen::StragglerKind::kSlowNode);

  spec.mitigate = "bogus";
  EXPECT_FALSE(ParseScenario(spec, 8, &error).has_value());
}

TEST(Parse, InjectDelay) {
  std::string error;
  const auto d = ParseInjectDelay("Map:1:0.25", 8, &error);
  ASSERT_TRUE(d.has_value()) << error;
  EXPECT_EQ(d->stage, stage::kMap);
  EXPECT_EQ(d->node, 1);
  EXPECT_DOUBLE_EQ(d->seconds, 0.25);
  EXPECT_FALSE(ParseInjectDelay("Mapp:1:0.25", 8, &error).has_value());
  EXPECT_FALSE(ParseInjectDelay("Map:8:0.25", 8, &error).has_value());
  EXPECT_FALSE(ParseInjectDelay("Map:1", 8, &error).has_value());
}

// JobResult::metrics must flatten into the bench JSON schema
// (bench/bench_common.h) — the contract the ctsort --json artifact
// and the CI job-smoke validation rely on.
TEST(JobJson, MetricsSatisfyBenchSchema) {
  const SortConfig config = SmallConfig(2);
  JobSpec spec;
  spec.algorithm = "coded";
  spec.config = config;
  spec.backend = Backend::kReplay;
  simscen::Scenario scenario = simscen::Scenario::Baseline(4);
  scenario.cluster.straggler.kind = simscen::StragglerKind::kSlowNode;
  scenario.cluster.straggler.node = 0;
  scenario.cluster.straggler.slowdown = 4.0;
  scenario.mitigation = mitigate::MitigationPolicy::CodedMap();
  spec.scenario = scenario;
  const JobResult result = RunJob(spec);

  const std::string path =
      ::testing::TempDir() + "/job_metrics_schema.json";
  bench::JsonReport json("job_smoke", path);
  for (const auto& [key, value] : result.metrics("coded_r2")) {
    json.add(key, value);
  }
  ASSERT_TRUE(json.write());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(bench::CheckBenchJsonSchema(
                content.str(),
                {"coded_r2/total_s", "coded_r2/wasted_s"}),
            "");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cts::job
