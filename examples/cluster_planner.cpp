// Cluster planner: given a cluster size, a dataset size, a network
// speed and per-node memory, pick the redundancy r that minimizes
// CodedTeraSort's projected completion time — the decision the paper's
// Section II model (eqs. (3)-(5)) informs, refined with the full cost
// model that also prices CodeGen, coding work, the multicast penalty,
// and the storage feasibility constraint of the paper's footnote 6
// (each node must hold r/K of the input, so r <= K*mem/input).
//
//   $ ./build/examples/cluster_planner [K] [GB] [Mbps] [node-mem-GB]
//
// Defaults: K=16, 12 GB, 100 Mbps, 7.5 GB (the paper's m3.large).
#include <cstdlib>
#include <iostream>

#include "analytics/cost_model.h"
#include "analytics/loads.h"
#include "analytics/time_model.h"
#include "combinatorics/subsets.h"
#include "common/table.h"
#include "common/units.h"

int main(int argc, char** argv) {
  using namespace cts;

  const int K = argc > 1 ? std::atoi(argv[1]) : 16;
  const double gigabytes = argc > 2 ? std::atof(argv[2]) : 12.0;
  const double mbps = argc > 3 ? std::atof(argv[3]) : 100.0;
  const double node_mem_gb = argc > 4 ? std::atof(argv[4]) : 7.5;

  CostModel model;
  model.link_bytes_per_sec = mbps * kMbps;
  const double bytes = gigabytes * kGB;
  const double per_node = bytes / K;

  std::cout << "planning for K=" << K << ", " << HumanBytes(bytes) << ", "
            << HumanRate(model.link_bytes_per_sec) << " links, "
            << node_mem_gb << " GB memory per node\n\n";

  const double t_uncoded =
      per_node / model.hash_bytes_per_sec +             // Map
      per_node / model.pack_bytes_per_sec +             // Pack
      model.unicast_seconds(bytes * TeraSortLoad(K)) +  // Shuffle
      per_node / model.unpack_bytes_per_sec +           // Unpack
      per_node / model.sort_bytes_per_sec;              // Reduce

  TextTable table("projected CodedTeraSort completion time vs r");
  table.set_header({"r", "CodeGen", "Map", "Encode+Decode", "Shuffle",
                    "Reduce", "Total", "Speedup", "feasible"});
  double best_total = t_uncoded;
  int best_r = 1;
  for (int r = 1; r <= K - 1; ++r) {
    const double codegen = model.codegen_seconds(Binomial(K, r + 1));
    const double map = r * per_node / model.hash_bytes_per_sec +
                       static_cast<double>(Binomial(K - 1, r - 1)) *
                           model.map_file_overhead_sec;
    const double needed = per_node * UncodedLoad(K, r);  // bytes to receive
    const double packets = static_cast<double>(Binomial(K - 1, r));
    const double coding =
        needed / model.encode_bytes_per_sec +  // XOR in (~= bytes XORed)
        packets * model.encode_packet_overhead_sec +
        needed / model.decode_bytes_per_sec +
        static_cast<double>(r) * packets * model.decode_packet_overhead_sec;
    const double shuffle = model.multicast_seconds(
        bytes * CodedLoad(K, r), static_cast<double>(r));
    const double reduce = per_node / model.sort_bytes_per_sec *
                          (1.0 + model.reduce_memory_penalty * (r - 1));
    const double total = codegen + map + coding + shuffle + reduce;

    // Storage feasibility (paper footnote 6): a node stores its r/K
    // share of the input plus roughly its partition + coding buffers.
    const double resident = per_node * r + 2.0 * per_node;
    const bool feasible = resident <= node_mem_gb * kGB;
    if (feasible && total < best_total) {
      best_total = total;
      best_r = r;
    }
    table.add_row({std::to_string(r), TextTable::Num(codegen),
                   TextTable::Num(map), TextTable::Num(coding),
                   TextTable::Num(shuffle), TextTable::Num(reduce),
                   TextTable::Num(total),
                   TextTable::Num(t_uncoded / total, 2) + "x",
                   feasible ? "yes" : "no (memory)"});
  }
  table.render(std::cout);

  const MapReduceTimes naive{
      .map = per_node / model.hash_bytes_per_sec,
      .shuffle = model.unicast_seconds(bytes * TeraSortLoad(K)),
      .reduce = per_node / model.sort_bytes_per_sec};
  std::cout << "\nplain TeraSort projection: " << TextTable::Num(t_uncoded)
            << " s\n";
  std::cout << "recommended r (best feasible): " << best_r << " -> "
            << TextTable::Num(best_total) << " s ("
            << TextTable::Num(t_uncoded / best_total, 2) << "x)\n";
  std::cout << "eq. (5) alone would suggest r* = "
            << OptimalRedundancy(naive, K)
            << " — optimistic, because eq. (4) ignores CodeGen, coding\n"
               "work, the multicast penalty and memory (paper Section VI,\n"
               "'Scalable Coding').\n";
  return 0;
}
