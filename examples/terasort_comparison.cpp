// Side-by-side comparison of TeraSort and CodedTeraSort on the same
// workload: per-stage wall times of the actual execution, transport
// traffic, and the paper-scale (EC2-calibrated) projection.
//
//   $ ./build/examples/terasort_comparison [K] [r] [records]
//
// Defaults: K=10, r=4, 500000 records. This is the experiment of the
// paper's Section V in miniature — run it with different r to watch
// the shuffle shrink and the Map/CodeGen overheads grow.
#include <cstdlib>
#include <iostream>

#include "analytics/report.h"
#include "codedterasort/coded_terasort.h"
#include "common/table.h"
#include "common/units.h"
#include "terasort/terasort.h"

namespace {

void PrintWallTimes(const cts::AlgorithmResult& result) {
  cts::TextTable table(result.algorithm + ": executed wall times");
  table.set_header({"stage", "wall (max over nodes)"});
  for (const char* s :
       {cts::stage::kCodeGen, cts::stage::kMap, cts::stage::kPack,
        cts::stage::kEncode, cts::stage::kShuffle, cts::stage::kUnpack,
        cts::stage::kDecode, cts::stage::kReduce}) {
    const auto it = result.wall_seconds.find(s);
    if (it == result.wall_seconds.end()) continue;
    table.add_row({s, cts::HumanSeconds(it->second)});
  }
  table.render(std::cout);
}

void PrintTraffic(const cts::AlgorithmResult& result) {
  const auto shuffle = result.traffic.at(cts::stage::kShuffle);
  std::cout << result.algorithm << " shuffle traffic: "
            << cts::HumanBytes(
                   static_cast<double>(shuffle.transmitted_bytes()))
            << " transmitted in " << shuffle.unicast_msgs << " unicasts + "
            << shuffle.mcast_msgs << " multicasts\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cts;

  SortConfig config;
  config.num_nodes = argc > 1 ? std::atoi(argv[1]) : 10;
  config.redundancy = argc > 2 ? std::atoi(argv[2]) : 4;
  config.num_records =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 500000;

  std::cout << "K=" << config.num_nodes << ", r=" << config.redundancy
            << ", " << config.num_records << " records ("
            << HumanBytes(static_cast<double>(config.total_bytes()))
            << ")\n\n";

  const AlgorithmResult plain = RunTeraSort(config);
  const AlgorithmResult coded = RunCodedTeraSort(config);

  // The two algorithms must agree exactly.
  bool equal = plain.partitions == coded.partitions;
  std::cout << "outputs identical: " << (equal ? "yes" : "NO") << "\n\n";

  PrintWallTimes(plain);
  PrintWallTimes(coded);
  std::cout << '\n';
  PrintTraffic(plain);
  PrintTraffic(coded);

  const double ratio =
      static_cast<double>(plain.traffic.at(stage::kShuffle).transmitted_bytes()) /
      static_cast<double>(coded.traffic.at(stage::kShuffle).transmitted_bytes());
  std::cout << "shuffle byte reduction: " << TextTable::Num(ratio, 2)
            << "x\n\n";

  // Paper-scale projection with the EC2-calibrated model.
  const RunScale scale{1.0};  // price the run at its executed size
  const CostModel model;
  BreakdownTable(
      "EC2-projected times at executed size (100 Mbps serial network)",
      {SimulateRun(plain, model, scale), SimulateRun(coded, model, scale)})
      .render(std::cout);
  return equal ? 0 : 1;
}
