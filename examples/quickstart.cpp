// Quickstart: sort 100,000 TeraGen records on a simulated 8-node
// cluster with CodedTeraSort (r = 3) and verify the output.
//
//   $ ./build/examples/quickstart
//
// This is the smallest end-to-end use of the public API:
//   1. describe the job with a SortConfig,
//   2. run it with RunCodedTeraSort (or RunTeraSort for the baseline),
//   3. read the sorted partitions off the result.
#include <iostream>

#include "codedterasort/coded_terasort.h"
#include "common/units.h"
#include "keyvalue/recordio.h"
#include "keyvalue/teragen.h"

int main() {
  using namespace cts;

  SortConfig config;
  config.num_nodes = 8;        // K worker nodes
  config.redundancy = 3;       // r: each input file lives on 3 nodes
  config.num_records = 100000; // 10 MB of 100-byte KV records
  config.seed = 42;

  std::cout << "Sorting " << config.num_records << " records ("
            << HumanBytes(static_cast<double>(config.total_bytes()))
            << ") on " << config.num_nodes
            << " simulated nodes with CodedTeraSort r=" << config.redundancy
            << "...\n";

  const AlgorithmResult result = RunCodedTeraSort(config);

  // partitions[k] is node k's sorted slice of the key domain; their
  // concatenation is the fully sorted dataset.
  std::vector<Record> sorted;
  for (const auto& partition : result.partitions) {
    sorted.insert(sorted.end(), partition.begin(), partition.end());
  }

  const auto input =
      TeraGen(config.seed, config.distribution).generate(0, config.num_records);
  std::cout << "output is a sorted permutation of the input: "
            << (IsSortedPermutationOf(input, sorted) ? "yes" : "NO")
            << "\n";

  std::cout << "first key prefix:  " << KeyPrefix(sorted.front().key) << "\n";
  std::cout << "last key prefix:   " << KeyPrefix(sorted.back().key) << "\n";

  const auto shuffle = result.traffic.at(stage::kShuffle);
  std::cout << "coded shuffle sent "
            << HumanBytes(static_cast<double>(shuffle.transmitted_bytes()))
            << " in " << shuffle.mcast_msgs
            << " multicast packets (each serving " << config.redundancy
            << " receivers at once)\n";
  return 0;
}
