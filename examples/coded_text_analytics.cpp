// Coded MapReduce beyond sorting (paper Section VI, first future
// direction): run Grep and WordCount through the generic CMR engine
// with both uncoded and coded shuffles, verify they agree, and report
// the measured communication loads against eq. (2).
//
//   $ ./build/examples/coded_text_analytics [K] [r]
//
// Defaults: K=6, r=3.
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "analytics/loads.h"
#include "cmr/cmr.h"
#include "common/table.h"
#include "common/units.h"

namespace {

void RunApp(const cts::cmr::CmrApp& app, int K, int r) {
  using namespace cts;
  using namespace cts::cmr;

  CmrConfig config;
  config.num_nodes = K;
  config.redundancy = r;
  config.seed = 2017;

  config.mode = ShuffleMode::kUncoded;
  const CmrResult uncoded = RunCmr(app, config);
  config.mode = ShuffleMode::kCoded;
  const CmrResult coded = RunCmr(app, config);

  std::cout << "--- " << app.name() << " ---\n";
  std::cout << "outputs identical (uncoded vs coded): "
            << (uncoded.outputs == coded.outputs ? "yes" : "NO") << "\n";

  TextTable table("communication load");
  table.set_header({"shuffle", "payload shuffled", "load", "eq. (2)"});
  table.add_row({"uncoded unicast",
                 HumanBytes(static_cast<double>(
                     uncoded.shuffled_payload_bytes)),
                 TextTable::Num(uncoded.measured_payload_load(), 4),
                 TextTable::Num(UncodedLoad(K, r), 4)});
  table.add_row({"coded multicast",
                 HumanBytes(static_cast<double>(coded.shuffled_payload_bytes)),
                 TextTable::Num(coded.measured_payload_load(), 4),
                 TextTable::Num(CodedLoad(K, r), 4)});
  table.render(std::cout);

  // A taste of the reducer outputs.
  std::istringstream first(coded.outputs.front());
  std::string line;
  int shown = 0;
  std::cout << "reducer 0 output (first lines):\n";
  while (std::getline(first, line) && shown++ < 3) {
    std::cout << "  " << line << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const int K = argc > 1 ? std::atoi(argv[1]) : 6;
  const int r = argc > 2 ? std::atoi(argv[2]) : 3;

  std::cout << "Coded MapReduce text analytics on K=" << K
            << " simulated nodes, r=" << r << "\n\n";

  const auto grep = cts::cmr::MakeGrepApp("needle", /*records_per_file=*/400);
  RunApp(*grep, K, r);

  const auto wordcount = cts::cmr::MakeWordCountApp(/*records_per_file=*/400);
  RunApp(*wordcount, K, r);

  const auto selfjoin =
      cts::cmr::MakeSelfJoinApp(/*records_per_file=*/150, /*key_space=*/32);
  RunApp(*selfjoin, K, r);

  const auto index = cts::cmr::MakeInvertedIndexApp(/*records_per_file=*/300);
  RunApp(*index, K, r);

  std::cout << "The coded shuffle moves ~" << r
            << "x fewer payload bytes for the same answers — the paper's\n"
               "thesis applied beyond sorting.\n";
  return 0;
}
