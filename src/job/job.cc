#include "job/job.h"

#include <cstdio>
#include <utility>

#include "common/check.h"
#include "job/registry.h"
#include "obs/metrics.h"
#include "simulate/simulate.h"

namespace cts::job {

namespace {

// Exact textual form of a double for cache keys (hex float: no
// rounding ambiguity between nearly-equal delay values).
std::string ExactDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

const AlgorithmInfo& FindOrDie(const std::string& name) {
  const AlgorithmInfo* info = Find(name);
  CTS_CHECK_MSG(info != nullptr, "unknown algorithm '" << name << "'");
  return *info;
}

// Aggregates the outcome's per-span mitigation accounting into the
// JobResult counters.
void FillMitigationStats(const simscen::ScenarioOutcome& outcome,
                         JobResult& result) {
  result.wasted_seconds = outcome.wasted_seconds;
  for (const simscen::StageSpan& span : outcome.spans) {
    result.speculative_copies += span.speculative_copies;
    result.abandoned_nodes += span.abandoned_nodes;
  }
}

// Prices the finished view in dollars (no-op without a pricing
// context). Egress counts the measured shuffle's rack-boundary
// crossings under the scenario topology; a priced (paper-scale) view
// scales the measured bytes to the reported workload, the same
// linear-in-records scaling every byte counter uses.
void FillDollars(const JobSpec& spec, JobResult& result) {
  if (!spec.pricing.has_value()) return;
  const DollarCost& cost = *spec.pricing;
  result.node_hours = cost.node_hours(result.makespan,
                                      spec.config.num_nodes);
  result.usd_compute =
      cost.compute_usd(result.makespan, spec.config.num_nodes);
  double cross = 0;
  if (spec.scenario.has_value() && result.execution != nullptr) {
    cross = simscen::CrossRackBytes(result.execution->shuffle_log,
                                    spec.scenario->topology);
    if (result.priced) {
      const std::uint64_t reported = spec.paper_records == 0
                                         ? spec.config.num_records
                                         : spec.paper_records;
      cross /= PaperScale(spec.config.num_records, reported).fraction;
    }
  }
  result.cross_rack_bytes = cross;
  result.usd_egress = cost.egress_usd(cross);
  result.usd = result.usd_compute + result.usd_egress;
}

}  // namespace

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kLive:
      return "live";
    case Backend::kPriced:
      return "priced";
    case Backend::kReplay:
      return "replay";
    case Backend::kSimulated:
      return "simulated";
  }
  CTS_CHECK_MSG(false, "unreachable backend");
  return "live";
}

std::string RunCache::Key(const std::string& algorithm,
                          const SortConfig& config) {
  std::string key = algorithm;
  key += "|K=" + std::to_string(config.num_nodes);
  key += "|r=" + std::to_string(config.redundancy);
  key += "|n=" + std::to_string(config.num_records);
  key += "|seed=" + std::to_string(config.seed);
  key += "|dist=" + std::to_string(static_cast<int>(config.distribution));
  key += "|part=" + std::to_string(static_cast<int>(config.partitioner));
  key += "|sample=" + std::to_string(config.sample_size);
  key += "|codegen=" + std::to_string(static_cast<int>(config.codegen_mode));
  key += "|sync=" + std::to_string(static_cast<int>(config.shuffle_sync));
  for (const InjectedDelay& d : config.injected_delays) {
    key += "|delay=" + d.stage + ":" + std::to_string(d.node) + ":" +
           ExactDouble(d.seconds);
  }
  return key;
}

std::shared_ptr<AlgorithmResult> RunCache::Find(
    const std::string& key) const {
  const auto it = runs_.find(key);
  return it == runs_.end() ? nullptr : it->second;
}

std::shared_ptr<AlgorithmResult> RunCache::Execute(
    const std::string& key, const std::string& algorithm,
    const SortConfig& config) {
  const AlgorithmInfo& info = FindOrDie(algorithm);
  ++executions_;
  auto& registry = obs::MetricRegistry::Global();
  registry.counter("job/cache_misses").add();
  // Freeze this execution's registry deltas into the cached result.
  // Some of them (stripe try_lock contention, arena hits) depend on
  // thread interleaving, so the only reproducible view is the one
  // capture made here: every later consumer of the cached run reads
  // run_metrics, never the live registry.
  const std::map<std::string, double> before = registry.Snapshot();
  auto run = std::make_shared<AlgorithmResult>(info.run(config));
  for (const auto& [name, value] : registry.Snapshot()) {
    const auto it = before.find(name);
    const double delta = it == before.end() ? value : value - it->second;
    if (delta != 0) run->run_metrics[name] = delta;
  }
  runs_.emplace(key, run);
  return run;
}

std::shared_ptr<const AlgorithmResult> RunCache::Get(
    const std::string& algorithm, const SortConfig& config) {
  const std::string key = Key(algorithm, config);
  if (auto run = Find(key)) {
    ++hits_;
    obs::MetricRegistry::Global().counter("job/cache_hits").add();
    return run;
  }
  return Execute(key, algorithm, config);
}

void RunCache::ReleasePartitions(const std::string& algorithm,
                                 const SortConfig& config) {
  const auto it = runs_.find(Key(algorithm, config));
  if (it == runs_.end()) return;
  if (!it->second->partitions.empty()) {
    obs::MetricRegistry::Global().counter("job/cache_partition_releases")
        .add();
  }
  it->second->partitions.clear();
  it->second->partitions.shrink_to_fit();
}

std::shared_ptr<const simscen::ScenarioRun> RunCache::GetScenarioRun(
    const std::string& algorithm, const SortConfig& config,
    std::uint64_t paper_records, bool from_events) {
  const AlgorithmInfo& info = FindOrDie(algorithm);
  if (!info.priced) from_events = true;  // nothing to price
  const std::uint64_t reported =
      from_events ? 0
                  : (paper_records == 0 ? config.num_records : paper_records);
  const std::string key = Key(algorithm, config) +
                          (from_events ? "|events"
                                       : "|paper=" + std::to_string(reported));
  if (const auto it = scenario_runs_.find(key); it != scenario_runs_.end()) {
    return it->second;
  }
  // Internal fetch: RunJob has already gone through Get() for this
  // cell, so counting another hit here would double-book (hits() must
  // stay "Get() calls a caller saved").
  std::shared_ptr<const AlgorithmResult> run = Find(Key(algorithm, config));
  if (run == nullptr) run = Execute(Key(algorithm, config), algorithm, config);
  std::shared_ptr<const simscen::ScenarioRun> built;
  if (from_events) {
    built = std::make_shared<simscen::ScenarioRun>(
        simscen::BuildScenarioRunFromEvents(
            run->algorithm, run->config.num_nodes, run->stage_order,
            run->compute_events, run->shuffle_log, run->config.redundancy));
  } else {
    built = std::make_shared<simscen::ScenarioRun>(simscen::BuildScenarioRun(
        *run, CostModel{}, PaperScale(config.num_records, reported)));
  }
  scenario_runs_.emplace(key, built);
  return built;
}

JobResult RunJob(const JobSpec& spec, RunCache& cache) {
  const AlgorithmInfo& info = FindOrDie(spec.algorithm);
  // kPriced/kSimulated are the closed-form backends; they have no way
  // to honor a scenario, and silently ignoring one would label an
  // unmitigated run as a scenario cell. Price scenarios with kReplay.
  CTS_CHECK_MSG(!((spec.backend == Backend::kPriced ||
                   spec.backend == Backend::kSimulated) &&
                  spec.scenario.has_value()),
                "closed-form backends ignore scenarios — use "
                "Backend::kReplay");

  JobResult result;
  result.spec = spec;

  // kSimulated deliberately bypasses the cache: RunCache::Get executes
  // the live harness on a miss, and never executing is this backend's
  // entire point.
  if (spec.backend == Backend::kSimulated) {
    result.algorithm = spec.algorithm;
    simulate::SynthesisResult synth =
        simulate::SynthesizeRun(spec.algorithm, spec.config);
    if (!synth.ok()) {
      result.error = std::move(synth.error);
      result.metrics_snapshot = obs::MetricRegistry::Global().Snapshot();
      return result;
    }
    result.execution = std::move(synth.run);
    result.algorithm = result.execution->algorithm;
    const RunScale scale = PaperScale(
        spec.config.num_records, spec.paper_records == 0
                                     ? spec.config.num_records
                                     : spec.paper_records);
    result.breakdown =
        SimulateRun(*result.execution, CostModel{}, scale, spec.schedule);
    result.priced = true;
    result.makespan = result.breakdown.total();
    result.timeline = obs::BuildLiveTimeline(*result.execution);
    FillDollars(spec, result);
    result.metrics_snapshot = obs::MetricRegistry::Global().Snapshot();
    return result;
  }

  result.execution = cache.Get(spec.algorithm, spec.config);
  result.algorithm = result.execution->algorithm;
  // The live flight-recorder series, derived purely from the cached
  // execution — a cache hit reproduces them bit for bit. Scenario
  // replays below append their DES series to the same timeline.
  result.timeline = obs::BuildLiveTimeline(*result.execution);

  switch (spec.backend) {
    case Backend::kLive:
    case Backend::kPriced: {
      if (spec.backend == Backend::kPriced && info.priced) {
        const RunScale scale = PaperScale(
            spec.config.num_records, spec.paper_records == 0
                                         ? spec.config.num_records
                                         : spec.paper_records);
        result.breakdown = SimulateRun(*result.execution, CostModel{}, scale,
                                       spec.schedule);
        result.priced = true;
      } else {
        result.breakdown = MeasuredBreakdown(*result.execution);
      }
      // kLive with a scenario: replay the measured stage boundaries
      // under it (executed scale) — the live-mitigation path.
      if (spec.backend == Backend::kLive && spec.scenario.has_value()) {
        const auto run = cache.GetScenarioRun(spec.algorithm, spec.config,
                                              /*paper_records=*/0,
                                              /*from_events=*/true);
        result.outcome =
            simscen::ReplayScenario(*run, *spec.scenario, &result.timeline);
        result.breakdown = result.outcome->breakdown();
        FillMitigationStats(*result.outcome, result);
      }
      break;
    }
    case Backend::kReplay: {
      const auto run = cache.GetScenarioRun(spec.algorithm, spec.config,
                                            spec.paper_records,
                                            /*from_events=*/!info.priced);
      const simscen::Scenario scenario =
          spec.scenario.has_value()
              ? *spec.scenario
              : simscen::Scenario::Baseline(spec.config.num_nodes);
      result.outcome =
          simscen::ReplayScenario(*run, scenario, &result.timeline);
      result.breakdown = result.outcome->breakdown();
      result.priced = info.priced;
      FillMitigationStats(*result.outcome, result);
      break;
    }
    case Backend::kSimulated:
      CTS_CHECK_MSG(false, "kSimulated returns above");
      break;
  }
  result.makespan = result.breakdown.total();
  FillDollars(spec, result);
  result.metrics_snapshot = obs::MetricRegistry::Global().Snapshot();
  return result;
}

JobResult RunJob(const JobSpec& spec) {
  RunCache cache;
  return RunJob(spec, cache);
}

std::map<std::string, double> JobResult::metrics(
    const std::string& prefix) const {
  std::map<std::string, double> out;
  for (const StageTime& s : breakdown.stages) {
    if (s.seconds != 0) out[prefix + "/" + s.name + "_s"] = s.seconds;
  }
  out[prefix + "/total_s"] = breakdown.total();
  if (outcome.has_value()) {
    out[prefix + "/wasted_s"] = wasted_seconds;
    out[prefix + "/backups"] = speculative_copies;
    out[prefix + "/abandoned"] = abandoned_nodes;
  }
  if (spec.pricing.has_value()) {
    out[prefix + "/usd"] = usd;
    out[prefix + "/usd_compute"] = usd_compute;
    out[prefix + "/usd_egress"] = usd_egress;
    out[prefix + "/node_hours"] = node_hours;
  }
  return out;
}

}  // namespace cts::job
