#include "job/registry.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

#include "cmr/cmr.h"
#include "codedterasort/coded_terasort.h"
#include "combinatorics/subsets.h"
#include "common/check.h"
#include "terasort/terasort.h"

namespace cts::job {

namespace {

std::mutex registry_mu;

std::map<std::string, AlgorithmInfo>& RegistryLocked() {
  static std::map<std::string, AlgorithmInfo> registry;
  return registry;
}

// Wraps the generic CMR engine behind the sorting-run interface: the
// SortConfig maps onto a CmrConfig (K, r, seed, shuffle sync pass
// through; r > 1 selects the coded shuffle, matching the paper's "r is
// the computation load" reading), and the result is repackaged as an
// AlgorithmResult carrying everything the replay paths consume —
// traffic, stage order, compute events and the shuffle log. CMR has no
// NodeWork counters or sorted partitions, so the entry registers with
// priced = sorts = false and scenario replays price it from the
// measured ComputeEvents (simscen::BuildScenarioRunFromEvents).
AlgorithmResult RunCmrAsJob(const SortConfig& config) {
  cmr::CmrConfig cc;
  cc.num_nodes = config.num_nodes;
  cc.redundancy = config.redundancy;
  cc.seed = config.seed;
  cc.mode = config.redundancy > 1 ? cmr::ShuffleMode::kCoded
                                  : cmr::ShuffleMode::kUncoded;
  cc.sync = config.shuffle_sync;
  cc.injected_delays = config.injected_delays;
  const auto app = cmr::MakeWordCountApp(CmrRecordsPerFile(config));
  const cmr::CmrResult run = cmr::RunCmr(*app, cc);

  AlgorithmResult result;
  result.config = config;
  result.algorithm = "CMR-" + app->name();
  result.traffic = run.traffic;
  result.shuffle_log = run.shuffle_log;
  result.transport_events = run.transport_events;
  result.stage_order = run.stage_order;
  result.compute_events = run.compute_events;
  for (const ComputeEvent& e : run.compute_events) {
    double& wall = result.wall_seconds[e.stage];
    wall = std::max(wall, e.seconds());
  }
  return result;
}

void RegisterBuiltinsLocked() {
  auto& registry = RegistryLocked();
  const auto put = [&](AlgorithmInfo info) {
    registry.emplace(info.name, std::move(info));
  };
  put({"terasort",
       "plain TeraSort (paper Section III): Map/Pack/Shuffle/Unpack/"
       "Reduce, serial unicast shuffle",
       {"nodes", "records", "seed", "dist", "partitioner", "shuffle-sync",
        "inject-delay"},
       /*priced=*/true, /*sorts=*/true,
       [](const SortConfig& c) { return RunTeraSort(c); }});
  put({"coded",
       "CodedTeraSort (paper Section IV): r-replicated Map, XOR-coded "
       "multicast shuffle",
       {"nodes", "redundancy", "records", "seed", "dist", "partitioner",
        "codegen", "shuffle-sync", "inject-delay"},
       /*priced=*/true, /*sorts=*/true,
       [](const SortConfig& c) { return RunCodedTeraSort(c); }});
  put({"cmr",
       "generic Coded MapReduce engine (paper Section II) running the "
       "bundled WordCount app; r > 1 switches to the coded shuffle",
       {"nodes", "redundancy", "records", "seed", "shuffle-sync",
        "inject-delay"},
       /*priced=*/false, /*sorts=*/false, RunCmrAsJob});
}

std::map<std::string, AlgorithmInfo>& Registry() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::lock_guard lock(registry_mu);
    RegisterBuiltinsLocked();
  });
  return RegistryLocked();
}

std::size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      row[j] = std::min({up + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = up;
    }
  }
  return row[b.size()];
}

}  // namespace

int CmrRecordsPerFile(const SortConfig& config) {
  const std::uint64_t files = Binomial(config.num_nodes, config.redundancy);
  CTS_CHECK_GT(files, std::uint64_t{0});
  const std::uint64_t per_file = config.num_records / files;
  return static_cast<int>(std::clamp<std::uint64_t>(per_file, 1, 100000));
}

void Register(AlgorithmInfo info) {
  CTS_CHECK_MSG(!info.name.empty(), "algorithm name must be non-empty");
  CTS_CHECK_MSG(static_cast<bool>(info.run),
                "algorithm '" << info.name << "' has no run function");
  auto& registry = Registry();
  std::lock_guard lock(registry_mu);
  const bool inserted = registry.emplace(info.name, std::move(info)).second;
  CTS_CHECK_MSG(inserted, "algorithm already registered");
}

const AlgorithmInfo* Find(const std::string& name) {
  auto& registry = Registry();
  std::lock_guard lock(registry_mu);
  const auto it = registry.find(name);
  return it == registry.end() ? nullptr : &it->second;
}

std::vector<std::string> Names() {
  auto& registry = Registry();
  std::lock_guard lock(registry_mu);
  std::vector<std::string> names;
  names.reserve(registry.size());
  for (const auto& [name, info] : registry) names.push_back(name);
  return names;
}

std::string SuggestName(const std::string& name) {
  std::string best;
  std::size_t best_distance = 3;  // suggest only within distance 2
  for (const std::string& candidate : Names()) {
    const std::size_t d = EditDistance(name, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

}  // namespace cts::job
