// Unified Job API: one front-end over algorithms × backends ×
// scenarios.
//
// A JobSpec fully describes one cell of the paper's experiment matrix:
// which algorithm (by registry name, job/registry.h), its SortConfig,
// how to evaluate it (Backend), and — for replay backends — the
// scenario and mitigation policy to evaluate it under. RunJob executes
// (or, given a RunCache, reuses) the one expensive thread-harness run
// and derives the requested view from it, returning a unified
// JobResult: the measured execution, a StageBreakdown, the scenario
// outcome, and redundancy/waste stats, flattenable into the bench
// JSON schema (bench/bench_common.h) via metrics().
//
// The RunCache is the reason this API exists beyond tidiness: the
// live execution is the only expensive step, and it depends only on
// (algorithm, SortConfig). Every scenario × policy × backend view is
// a cheap deterministic replay of that one measured run, so sweeps
// memoize per key instead of re-running the cluster N×M times
// (job/matrix.h drives this).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "analytics/cost_model.h"
#include "analytics/report.h"
#include "driver/run_result.h"
#include "obs/timeline.h"
#include "simscen/engine.h"

namespace cts::job {

// How a job evaluates its run.
enum class Backend {
  // Executed-scale view: the measured wall clocks as they happened on
  // the thread harness. With a scenario attached, the measured
  // per-node stage boundaries (ComputeEvents) are replayed under it —
  // the "mitigation on the measured run" path.
  kLive,
  // Paper-scale closed forms: the measured counters priced by the
  // EC2-calibrated CostModel (analytics::SimulateRun). Algorithms
  // without NodeWork counters (priced = false) fall back to kLive.
  kPriced,
  // Paper-scale discrete-event replay under a Scenario
  // (simscen::ReplayScenario); unpriced algorithms replay their
  // measured ComputeEvents at executed scale instead.
  kReplay,
  // Like kPriced, but the measured run itself is synthesized
  // arithmetically (simulate::SynthesizeRun) instead of executed on
  // the thread harness — no threads, no records, no transport. The
  // breakdown is byte-identical to kPriced wherever both can run;
  // unlike kPriced, K is bounded by 64-bit placement arithmetic
  // (K ~ 1000) rather than by live execution. Specs the synthesizer
  // cannot honor (CMR, kDistributedSampled, binomial overflow) come
  // back as JobResult::error, never a process abort.
  kSimulated,
};

const char* BackendName(Backend backend);

struct JobSpec {
  std::string algorithm = "terasort";  // registry name
  SortConfig config;
  Backend backend = Backend::kPriced;
  // kReplay / kLive-with-events: the scenario to replay under. Unset
  // on kReplay means the baseline (homogeneous cluster, single rack);
  // unset on kLive means no replay at all.
  std::optional<simscen::Scenario> scenario;
  // kPriced / kReplay: report at this paper workload (record count);
  // 0 reports at the executed scale.
  std::uint64_t paper_records = 0;
  // kPriced: closed-form shuffle discipline.
  ShuffleSchedule schedule = ShuffleSchedule::kSerial;
  // When set, the result's dollar fields are filled: the view's
  // makespan × K priced at `pricing->node_usd_per_hour`, plus the
  // run's cross-rack shuffle traffic under the scenario topology
  // (paper-scaled on priced views) at the egress rate. The matrix's
  // instance axis overrides the hourly rate per cell.
  std::optional<DollarCost> pricing;
};

// Everything one evaluated cell produces.
struct JobResult {
  JobSpec spec;
  std::string algorithm;  // display name, e.g. "CodedTeraSort"
  bool priced = false;    // whether the breakdown is paper-scale
  // Non-empty when the backend could not produce a result for this
  // spec (Backend::kSimulated only); every other field except `spec`
  // and `algorithm` is then default-valued.
  std::string error;
  // The measured run (shared with the RunCache when one was used).
  std::shared_ptr<const AlgorithmResult> execution;
  // Per-stage seconds of the requested view.
  StageBreakdown breakdown;
  // The scenario replay, when one ran.
  std::optional<simscen::ScenarioOutcome> outcome;
  double makespan = 0;  // == breakdown.total()

  // Mitigation accounting aggregated over the outcome's spans (all
  // zero without a scenario or under PolicyKind::kNone).
  double wasted_seconds = 0;
  int speculative_copies = 0;
  int abandoned_nodes = 0;

  // Dollar pricing (all zero unless spec.pricing is set): K nodes
  // held for the makespan at the hourly rate, plus cross-rack egress
  // of the measured shuffle under the scenario topology
  // (simscen::CrossRackBytes, paper-scaled on priced views).
  double node_hours = 0;
  double usd_compute = 0;
  double usd_egress = 0;
  double usd = 0;
  double cross_rack_bytes = 0;

  // Snapshot of the process-wide obs::MetricRegistry taken when the
  // job finished: transport byte/message counters, arena hit/miss, DES
  // flow accounting, cache hits — everything observable about how this
  // result was produced. Cumulative across the process (a sweep's
  // N-th result includes the first N cells).
  std::map<std::string, double> metrics_snapshot;

  // The flight-recorder series of this cell: the live series derived
  // from the (cached) execution's deterministic counters, plus — when
  // a scenario replay ran — the DES series sampled along scenario
  // time. Bitwise reproducible: rerunning the same spec through the
  // same cache yields an identical timeline (timeline_test pins it).
  obs::Timeline timeline;

  // Flat "<prefix>/<metric>" map in the bench JSON schema: one key per
  // non-zero stage plus total_s, and the mitigation stats when a
  // scenario ran.
  std::map<std::string, double> metrics(const std::string& prefix) const;
};

// Memoizes the expensive thread-harness execution per
// (algorithm, SortConfig) key, plus the paper-scale ScenarioRun
// derived from it, so N scenarios × M policies replay one measured
// run. Not thread-safe; share one per sweep.
class RunCache {
 public:
  // The cached run for (algorithm, config), executing it on miss.
  std::shared_ptr<const AlgorithmResult> Get(const std::string& algorithm,
                                             const SortConfig& config);

  // The scenario-agnostic replay input derived from the cached run,
  // memoized per (key, paper_records, from_events). `from_events`
  // replays the measured per-node stage boundaries at executed scale
  // (simscen::BuildScenarioRunFromEvents, ignores paper_records);
  // otherwise the run is cost-model priced at paper scale
  // (simscen::BuildScenarioRun; requires a priced algorithm).
  std::shared_ptr<const simscen::ScenarioRun> GetScenarioRun(
      const std::string& algorithm, const SortConfig& config,
      std::uint64_t paper_records, bool from_events);

  // Drops the sorted output records of the cached run for
  // (algorithm, config), keeping the run cached. Every replay/pricing
  // path reads only counters, logs and events, so callers that have
  // finished validating the output can release the dominant memory —
  // the full sorted dataset — before fanning out over scenarios
  // (ctsort does, right after teravalidate). No-op on a miss.
  void ReleasePartitions(const std::string& algorithm,
                         const SortConfig& config);

  // Live thread-harness executions performed (== distinct keys seen).
  int executions() const { return executions_; }
  // Get() calls served from the cache.
  int hits() const { return hits_; }

  // The memoization key: every SortConfig field an engine reads.
  static std::string Key(const std::string& algorithm,
                         const SortConfig& config);

 private:
  // The cached run for `key`, or null — no hit/miss accounting.
  // GetScenarioRun uses this for its internal fetch so hits() counts
  // exactly the Get() calls a caller saved: hits == cells - distinct
  // keys in a matrix sweep, which job_test pins.
  std::shared_ptr<AlgorithmResult> Find(const std::string& key) const;
  // Executes and caches the run for `key` (counts one execution).
  std::shared_ptr<AlgorithmResult> Execute(const std::string& key,
                                           const std::string& algorithm,
                                           const SortConfig& config);

  // Held non-const so ReleasePartitions can drop the sorted data;
  // handed out as shared_ptr<const ...> only.
  std::map<std::string, std::shared_ptr<AlgorithmResult>> runs_;
  std::map<std::string, std::shared_ptr<const simscen::ScenarioRun>>
      scenario_runs_;
  int executions_ = 0;
  int hits_ = 0;
};

// Evaluates one cell. The overload without a cache executes the run
// itself (every call pays the live execution).
JobResult RunJob(const JobSpec& spec);
JobResult RunJob(const JobSpec& spec, RunCache& cache);

}  // namespace cts::job
