#include "job/parse.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "mitigate/policy.h"

namespace cts::job {

namespace {

void SetError(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
}

// Splits "a:b:c" into fields.
std::vector<std::string> SplitColons(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t colon = s.find(':', pos);
    if (colon == std::string::npos) {
      out.push_back(s.substr(pos));
      return out;
    }
    out.push_back(s.substr(pos, colon - pos));
    pos = colon + 1;
  }
}

// Rejects non-finite input: "nan"/"inf" would sail through one-sided
// range checks (NaN compares false to everything) and poison the
// replay with non-finite factors — and casting NaN to int is UB.
bool ParseNumber(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return !s.empty() && end != nullptr && *end == '\0' &&
         std::isfinite(*out);
}

// The field must be a whole non-negative number (node ids, rack
// sizes): 1.9 must not silently become 1. Range-checked BEFORE the
// cast — double-to-int conversion outside int's range is undefined.
bool ParseWhole(const std::string& s, int* out) {
  double v = 0;
  if (!ParseNumber(s, &v)) return false;
  if (v < 0 || v > 2147483647.0) return false;
  *out = static_cast<int>(v);
  return static_cast<double>(*out) == v;
}

// Full-range uint64 fields (straggler seeds).
bool ParseU64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

}  // namespace

std::optional<simnet::Discipline> ParseDiscipline(const std::string& spec,
                                                  std::string* error) {
  if (spec.empty() || spec == "serial") return simnet::Discipline::kSerial;
  if (spec == "half") return simnet::Discipline::kParallelHalfDuplex;
  if (spec == "full") return simnet::Discipline::kParallelFullDuplex;
  SetError(error, "unknown discipline '" + spec + "' (serial | half | full)");
  return std::nullopt;
}

std::optional<simnet::ReplayOrder> ParseOrder(const std::string& spec,
                                              std::string* error) {
  if (spec.empty() || spec == "log") return simnet::ReplayOrder::kLogOrder;
  if (spec == "per-sender") return simnet::ReplayOrder::kPerSender;
  SetError(error, "unknown order '" + spec + "' (log | per-sender)");
  return std::nullopt;
}

std::optional<simscen::Topology> ParseTopology(const std::string& spec,
                                               int num_nodes,
                                               std::string* error) {
  if (spec.empty()) return simscen::Topology::SingleRack(num_nodes);
  auto fields = SplitColons(spec);
  // Optional trailing "aware": the rack switches replicate multicasts
  // locally (Topology::rack_aware_multicast).
  bool aware = false;
  if (!fields.empty() && fields.back() == "aware") {
    aware = true;
    fields.pop_back();
  }
  int per_rack = 0;
  double factor = 0;
  double up_factor = 0;
  double down_factor = 0;
  const bool ok =
      (fields.size() == 2 || fields.size() == 4) &&
      ParseWhole(fields[0], &per_rack) && ParseNumber(fields[1], &factor) &&
      (fields.size() == 2 || (ParseNumber(fields[2], &up_factor) &&
                              ParseNumber(fields[3], &down_factor)));
  if (!ok) {
    SetError(error,
             "topology expects R:F[:U:D][:aware] (nodes-per-rack : core "
             "oversubscription [: rack uplink : downlink oversubscription, "
             "0 = unconstrained])");
    return std::nullopt;
  }
  if (per_rack < 1) {
    SetError(error, "topology needs >= 1 node per rack");
    return std::nullopt;
  }
  if (factor <= 0) {
    SetError(error, "topology oversubscription must be > 0");
    return std::nullopt;
  }
  if (up_factor < 0 || down_factor < 0) {
    SetError(error,
             "topology rack-pipe factors must be >= 0 (0 = unconstrained)");
    return std::nullopt;
  }
  simscen::Topology t = simscen::Topology::RackOversubscribed(
      num_nodes, per_rack, factor, up_factor, down_factor);
  t.rack_aware_multicast = aware;
  return t;
}

std::optional<simscen::StragglerModel> ParseStraggler(const std::string& spec,
                                                      int num_nodes,
                                                      std::string* error) {
  simscen::StragglerModel m;
  if (spec.empty() || spec == "none") return m;
  const auto fields = SplitColons(spec);
  const std::string& kind = fields[0];
  int node = 0;
  if (kind == "slow" && fields.size() == 3) {
    m.kind = simscen::StragglerKind::kSlowNode;
    if (!ParseWhole(fields[1], &node) ||
        !ParseNumber(fields[2], &m.slowdown)) {
      SetError(error, "straggler slow expects slow:NODE:FACTOR");
      return std::nullopt;
    }
    m.node = node;
    if (m.slowdown < 1.0) {
      SetError(error, "straggler slowdown must be >= 1");
      return std::nullopt;
    }
  } else if (kind == "exp" && (fields.size() == 3 || fields.size() == 4)) {
    m.kind = simscen::StragglerKind::kShiftedExp;
    if (!ParseNumber(fields[1], &m.shift) ||
        !ParseNumber(fields[2], &m.mean) ||
        (fields.size() == 4 && !ParseU64(fields[3], &m.seed))) {
      SetError(error, "straggler exp expects exp:SHIFT:MEAN[:SEED]");
      return std::nullopt;
    }
    if (m.shift < 0 || m.mean < 0) {
      SetError(error, "straggler exp shift/mean must be >= 0");
      return std::nullopt;
    }
  } else if (kind == "failstop" &&
             (fields.size() == 3 || fields.size() == 4)) {
    m.kind = simscen::StragglerKind::kFailStop;
    if (!ParseNumber(fields[1], &m.fail_at) ||
        !ParseNumber(fields[2], &m.recovery) ||
        (fields.size() == 4 && !ParseWhole(fields[3], &node))) {
      SetError(error, "straggler failstop expects failstop:T:REC[:NODE]");
      return std::nullopt;
    }
    if (fields.size() == 4) m.node = node;
    if (m.fail_at < 0 || m.recovery < 0) {
      SetError(error, "straggler failstop times must be >= 0");
      return std::nullopt;
    }
  } else {
    SetError(error, "unknown straggler '" + spec +
                        "' (slow:NODE:FACTOR | exp:SHIFT:MEAN[:SEED] | "
                        "failstop:T:REC[:NODE] | none)");
    return std::nullopt;
  }
  if ((m.kind == simscen::StragglerKind::kSlowNode ||
       m.kind == simscen::StragglerKind::kFailStop) &&
      (m.node < 0 || m.node >= num_nodes)) {
    SetError(error, "straggler node " + std::to_string(m.node) +
                        " out of range for " + std::to_string(num_nodes) +
                        " nodes");
    return std::nullopt;
  }
  return m;
}

std::optional<InjectedDelay> ParseInjectDelay(const std::string& spec,
                                              int num_nodes,
                                              std::string* error) {
  const auto fields = SplitColons(spec);
  InjectedDelay d;
  int node = 0;
  if (fields.size() != 3 || !ParseWhole(fields[1], &node) ||
      !ParseNumber(fields[2], &d.seconds)) {
    SetError(error, "inject-delay expects STAGE:NODE:SECONDS");
    return std::nullopt;
  }
  d.stage = fields[0];
  d.node = node;
  // StageRunner matches the stage by exact name; a typo would silently
  // inject nothing and invalidate the experiment.
  const std::vector<std::string> known = {
      stage::kCodeGen, stage::kMap,    stage::kPack,   stage::kEncode,
      stage::kShuffle, stage::kUnpack, stage::kDecode, stage::kReduce};
  if (std::find(known.begin(), known.end(), d.stage) == known.end()) {
    std::string names;
    for (const auto& n : known) names += (names.empty() ? "" : "|") + n;
    SetError(error,
             "inject-delay stage '" + d.stage + "' is not one of " + names);
    return std::nullopt;
  }
  if (d.seconds < 0) {
    SetError(error, "inject-delay SECONDS must be >= 0");
    return std::nullopt;
  }
  if (d.node < 0 || d.node >= num_nodes) {
    SetError(error, "inject-delay node " + std::to_string(d.node) +
                        " out of range for " + std::to_string(num_nodes) +
                        " nodes");
    return std::nullopt;
  }
  return d;
}

std::optional<simscen::Scenario> ParseScenario(const ScenarioSpec& spec,
                                               int num_nodes,
                                               std::string* error) {
  simscen::Scenario s = simscen::Scenario::Baseline(num_nodes);
  const auto straggler = ParseStraggler(spec.straggler, num_nodes, error);
  if (!straggler.has_value()) return std::nullopt;
  s.cluster.straggler = *straggler;
  const auto topology = ParseTopology(spec.topology, num_nodes, error);
  if (!topology.has_value()) return std::nullopt;
  s.topology = *topology;
  const auto discipline = ParseDiscipline(spec.discipline, error);
  if (!discipline.has_value()) return std::nullopt;
  s.discipline = *discipline;
  const auto order = ParseOrder(spec.order, error);
  if (!order.has_value()) return std::nullopt;
  s.order = *order;
  const auto mitigation = mitigate::ParsePolicy(spec.mitigate);
  if (!mitigation.has_value()) {
    SetError(error, "unknown mitigation '" + spec.mitigate +
                        "' (none | spec[:QUANTILE:TRIGGER] | coded)");
    return std::nullopt;
  }
  s.mitigation = *mitigation;
  return s;
}

}  // namespace cts::job
