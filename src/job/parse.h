// Shared textual-spec parsing for scenario-shaped flags.
//
// ctsort and the bench harnesses all describe evaluation conditions in
// the same mini-language (--topology=R:F, --straggler=slow:0:4,
// --mitigate=spec:0.5:1.5, --discipline=full, --order=per-sender);
// this is the one parser, so a spec string means the same experiment
// everywhere. Each parser returns nullopt on malformed input and
// describes the problem in *error; callers decide whether that is
// fatal (ctsort) or a test failure (benches, tests).
#pragma once

#include <optional>
#include <string>

#include "driver/run_result.h"
#include "simnet/schedule.h"
#include "simscen/engine.h"

namespace cts::job {

// "serial" | "half" | "full".
std::optional<simnet::Discipline> ParseDiscipline(const std::string& spec,
                                                  std::string* error);

// "log" | "per-sender".
std::optional<simnet::ReplayOrder> ParseOrder(const std::string& spec,
                                              std::string* error);

// "R:F[:U:D][:aware]" — nodes-per-rack : core oversubscription
// factor, optionally followed by per-rack uplink/downlink
// oversubscription factors (0 = that pipe stays unconstrained) and a
// literal "aware" enabling rack-aware multicast
// (Topology::rack_aware_multicast). Empty spec is a single rack.
std::optional<simscen::Topology> ParseTopology(const std::string& spec,
                                               int num_nodes,
                                               std::string* error);

// "none" | "slow:NODE:FACTOR" | "exp:SHIFT:MEAN[:SEED]" |
// "failstop:T:REC[:NODE]"; empty spec means none. Node ranges are
// validated against num_nodes.
std::optional<simscen::StragglerModel> ParseStraggler(const std::string& spec,
                                                      int num_nodes,
                                                      std::string* error);

// "STAGE:NODE:SECONDS" with STAGE one of the canonical stage names
// (a typo'd stage would silently inject nothing).
std::optional<InjectedDelay> ParseInjectDelay(const std::string& spec,
                                              int num_nodes,
                                              std::string* error);

// The scenario-shaped flags as raw strings; empty fields take the
// documented defaults.
struct ScenarioSpec {
  std::string topology;    // --topology
  std::string straggler;   // --straggler
  std::string mitigate;    // --mitigate
  std::string discipline;  // --discipline
  std::string order;       // --order
};

// Assembles a full Scenario from the flag strings (the shared
// implementation behind ctsort --scenario and the bench sweeps).
std::optional<simscen::Scenario> ParseScenario(const ScenarioSpec& spec,
                                               int num_nodes,
                                               std::string* error);

}  // namespace cts::job
