// JobMatrix: expands axis lists into job cells and evaluates them
// through one shared RunCache.
//
// A sweep is three labelled axes — (algorithm, SortConfig) pairs,
// scenarios, mitigation policies — crossed into cells. Only the
// algorithm axis costs anything: each distinct (algorithm, SortConfig)
// executes on the thread harness exactly once, and every scenario ×
// policy cell replays that one measured run (the RunCache memoization
// the bench sweeps rely on — bench_scenarios replays 16 scenarios and
// bench_mitigation 18 scenario×policy cells off 3 executions each).
#pragma once

#include <string>
#include <vector>

#include "job/job.h"
#include "mitigate/policy.h"

namespace cts::job {

// One entry of the algorithm axis: a registry name plus the full
// SortConfig it runs with (the axis that prices the live execution).
struct AlgoAxis {
  std::string label;  // cell key, e.g. "coded_r3"
  std::string algorithm;
  SortConfig config;
};

// One entry of the scenario axis.
struct ScenarioAxis {
  std::string label;  // cell key, e.g. "slow4_over16"
  simscen::Scenario scenario;
};

// One entry of the mitigation-policy axis; the policy overwrites the
// scenario's `mitigation` field cell by cell.
struct PolicyAxis {
  std::string label;  // cell key, e.g. "spec"
  mitigate::MitigationPolicy policy;
};

// One entry of the instance-profile axis: a rentable machine type. It
// scales every node's compute speed in the replayed scenario and sets
// the hourly rate the cell's dollar fields are priced at (when the
// matrix carries a pricing context). Like scenarios and policies the
// axis is free: the live execution stays keyed by
// (algorithm, SortConfig) — an instance only reshapes the replay and
// the price.
struct InstanceAxis {
  std::string label;   // cell key, e.g. "m3.large"
  double speed = 1.0;  // compute-speed multiplier vs the calibrated node
  double usd_per_hour = 0.133;  // on-demand rate (see DollarCost)
};

struct JobMatrix {
  std::vector<AlgoAxis> algos;
  // Empty axis = one unlabelled cell: no scenario (backend default) /
  // the scenario's own mitigation / the calibrated node at the
  // pricing context's default rate.
  std::vector<ScenarioAxis> scenarios;
  std::vector<PolicyAxis> policies;
  std::vector<InstanceAxis> instances;
  Backend backend = Backend::kReplay;
  std::uint64_t paper_records = 0;  // see JobSpec::paper_records
  ShuffleSchedule schedule = ShuffleSchedule::kSerial;  // kPriced only
  // When set, every cell's dollar fields are filled (JobSpec::pricing);
  // the instance axis overrides the hourly rate per cell.
  std::optional<DollarCost> pricing;
};

// One evaluated cell, addressed by its axis labels (empty label for a
// collapsed axis).
struct MatrixCell {
  std::string algo;
  std::string scenario;
  std::string policy;
  std::string instance;
  JobResult result;
};

class MatrixResults {
 public:
  const std::vector<MatrixCell>& cells() const { return cells_; }

  // The cell at (algo, scenario, policy, instance); labels of
  // collapsed axes default to "". Dies on an unknown address (a typo'd
  // label must not silently price the wrong cell).
  const JobResult& at(const std::string& algo,
                      const std::string& scenario = "",
                      const std::string& policy = "",
                      const std::string& instance = "") const;

  int executions() const { return executions_; }  // live harness runs
  int replays() const { return static_cast<int>(cells_.size()); }

 private:
  friend MatrixResults RunMatrix(const JobMatrix&, RunCache&);
  std::vector<MatrixCell> cells_;
  int executions_ = 0;
};

// Expands and evaluates the matrix. The overload taking a RunCache
// shares executions with other sweeps (and exposes the instrumented
// counters); the other uses a private cache. Each execution's sorted
// partitions are released after its first cell (no matrix view reads
// them); use RunJob directly when the sorted output itself is needed.
MatrixResults RunMatrix(const JobMatrix& matrix, RunCache& cache);
MatrixResults RunMatrix(const JobMatrix& matrix);

}  // namespace cts::job
