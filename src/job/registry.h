// Algorithm registry: the one place that knows how to execute "an
// algorithm" on the thread-per-node harness.
//
// The paper's experiment matrix is {TeraSort, CodedTeraSort, CMR} ×
// configuration × evaluation condition, but the engines expose three
// unrelated entry points (RunTeraSort / RunCodedTeraSort / RunCmr).
// The registry puts them behind one name-indexed interface so the Job
// API (job/job.h), ctsort and the bench matrix can iterate algorithms
// programmatically — `--algo=each`, sweeps over registry names, and
// later ROADMAP items (placement search, K≈100 sharding) all go
// through here instead of hand-wiring per-algorithm branches.
//
// The built-in algorithms register themselves on first registry
// access (a lazy central registration, deliberately not per-TU static
// initializers: the subsystem libraries are static archives, and a
// binary that references only the registry must still see all three).
// Tests and future engines can Register() additional entries.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "driver/run_result.h"

namespace cts::job {

// One algorithm as the Job API sees it.
struct AlgorithmInfo {
  std::string name;         // registry key, e.g. "terasort"
  std::string description;  // one-liner for --list-algos
  // SortConfig knobs the engine honors (documentation for
  // --list-algos; everything else is accepted and ignored, exactly as
  // the direct Run* entry points behave).
  std::vector<std::string> knobs;
  // True when the run carries NodeWork counters the CostModel can
  // price at paper scale (terasort/coded). False for engines priced
  // from measured ComputeEvents only (CMR).
  bool priced = true;
  // True when the run fills AlgorithmResult::partitions with sorted
  // records TeraValidate can check.
  bool sorts = true;
  // Executes one measured run.
  std::function<AlgorithmResult(const SortConfig&)> run;
};

// Registers an algorithm. The name must be new — replacing a
// registered algorithm would silently change what every sweep means.
void Register(AlgorithmInfo info);

// nullptr when `name` is not registered.
const AlgorithmInfo* Find(const std::string& name);

// Registered names, sorted.
std::vector<std::string> Names();

// Closest registered name to a misspelling (edit distance <= 2, ties
// broken alphabetically); empty when nothing is close.
std::string SuggestName(const std::string& name);

// The CMR adapter sizes its text workload so that total record count
// tracks SortConfig::num_records across the C(K, r) files; exposed so
// tests can reproduce the exact direct RunCmr call the adapter makes.
int CmrRecordsPerFile(const SortConfig& config);

}  // namespace cts::job
