#include "job/matrix.h"

#include <set>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"

namespace cts::job {

namespace {

template <typename Axis>
void CheckLabelsUnique(const std::vector<Axis>& axis, const char* what) {
  std::set<std::string> seen;
  for (const auto& entry : axis) {
    CTS_CHECK_MSG(seen.insert(entry.label).second,
                  "duplicate " << what << " label '" << entry.label << "'");
  }
}

}  // namespace

const JobResult& MatrixResults::at(const std::string& algo,
                                   const std::string& scenario,
                                   const std::string& policy,
                                   const std::string& instance) const {
  for (const MatrixCell& cell : cells_) {
    if (cell.algo == algo && cell.scenario == scenario &&
        cell.policy == policy && cell.instance == instance) {
      return cell.result;
    }
  }
  CTS_CHECK_MSG(false, "no matrix cell (" << algo << ", " << scenario << ", "
                                          << policy << ", " << instance
                                          << ")");
  return cells_.front().result;  // unreachable
}

MatrixResults RunMatrix(const JobMatrix& matrix, RunCache& cache) {
  CTS_CHECK_MSG(!matrix.algos.empty(), "JobMatrix needs an algorithm axis");
  // The closed-form backend cannot honor scenarios (RunJob rejects the
  // combination per cell); fail at matrix level with the fix spelled
  // out rather than on the first expanded cell.
  CTS_CHECK_MSG(!(matrix.backend == Backend::kPriced &&
                  (!matrix.scenarios.empty() || !matrix.policies.empty() ||
                   !matrix.instances.empty())),
                "a kPriced JobMatrix cannot carry scenario/policy/instance "
                "axes — use Backend::kReplay");
  CheckLabelsUnique(matrix.algos, "algorithm");
  CheckLabelsUnique(matrix.scenarios, "scenario");
  CheckLabelsUnique(matrix.policies, "policy");
  CheckLabelsUnique(matrix.instances, "instance");

  // Collapsed axes expand to one unlabelled entry so the cell loop is
  // uniform; has_scenario distinguishes "no scenario axis" from an
  // explicitly baseline scenario.
  struct ScenarioCell {
    std::string label;
    simscen::Scenario scenario;
    bool present = false;
  };
  std::vector<ScenarioCell> scenarios;
  if (matrix.scenarios.empty()) {
    scenarios.push_back({});
  } else {
    for (const ScenarioAxis& s : matrix.scenarios) {
      scenarios.push_back({s.label, s.scenario, true});
    }
  }
  struct PolicyCell {
    std::string label;
    mitigate::MitigationPolicy policy;
    bool present = false;
  };
  std::vector<PolicyCell> policies;
  if (matrix.policies.empty()) {
    policies.push_back({});
  } else {
    for (const PolicyAxis& p : matrix.policies) {
      policies.push_back({p.label, p.policy, true});
    }
  }
  struct InstanceCell {
    std::string label;
    InstanceAxis axis;
    bool present = false;
  };
  std::vector<InstanceCell> instances;
  if (matrix.instances.empty()) {
    instances.push_back({});
  } else {
    for (const InstanceAxis& i : matrix.instances) {
      instances.push_back({i.label, i, true});
    }
  }

  const int executions_before = cache.executions();
  MatrixResults results;
  for (const InstanceCell& instance : instances) {
    for (const ScenarioCell& scenario : scenarios) {
      for (const PolicyCell& policy : policies) {
        for (const AlgoAxis& algo : matrix.algos) {
        JobSpec spec;
        spec.algorithm = algo.algorithm;
        spec.config = algo.config;
        spec.backend = matrix.backend;
        spec.paper_records = matrix.paper_records;
        spec.schedule = matrix.schedule;
        spec.pricing = matrix.pricing;
        if (scenario.present) spec.scenario = scenario.scenario;
        if (policy.present) {
          if (!spec.scenario.has_value()) {
            spec.scenario =
                simscen::Scenario::Baseline(algo.config.num_nodes);
          }
          spec.scenario->mitigation = policy.policy;
        }
        if (instance.present) {
          // The instance reshapes the replayed cluster (every node's
          // speed scales by the machine type's multiplier) and the
          // hourly rate the cell is priced at.
          if (!spec.scenario.has_value()) {
            spec.scenario =
                simscen::Scenario::Baseline(algo.config.num_nodes);
          }
          auto& speed = spec.scenario->cluster.speed;
          if (speed.empty()) {
            speed.assign(static_cast<std::size_t>(algo.config.num_nodes),
                         1.0);
          }
          for (double& s : speed) s *= instance.axis.speed;
          if (spec.pricing.has_value()) {
            spec.pricing->node_usd_per_hour = instance.axis.usd_per_hour;
          }
        }
        const int before = cache.executions();
        results.cells_.push_back({algo.label, scenario.label, policy.label,
                                  instance.label, RunJob(spec, cache)});
        // Cells executed vs replayed: a cell that did not grow the
        // cache's execution count was served entirely from memoized
        // state (the run and/or its derived ScenarioRun).
        auto& registry = obs::MetricRegistry::Global();
        if (cache.executions() > before) {
          registry.counter("job/matrix_cells_executed").add();
        } else {
          registry.counter("job/matrix_cells_replayed").add();
        }
        // No matrix view reads the sorted output — cells consume
        // counters, logs and events only — so drop each execution's
        // partitions (the dominant memory) rather than pinning every
        // dataset in the cache for the whole sweep. Callers that need
        // the sorted records run RunJob directly.
        cache.ReleasePartitions(algo.algorithm, algo.config);
        }
      }
    }
  }
  results.executions_ = cache.executions() - executions_before;
  return results;
}

MatrixResults RunMatrix(const JobMatrix& matrix) {
  RunCache cache;
  return RunMatrix(matrix, cache);
}

}  // namespace cts::job
