// Live-path timeline construction: logical ticks over the
// deterministic byproducts of a finished run. See timeline.h for the
// series contract.

#include "obs/timeline.h"

#include <algorithm>
#include <vector>

#include "driver/run_result.h"

namespace cts::obs {

Timeline BuildLiveTimeline(const AlgorithmResult& result) {
  Timeline tl;

  // Stage-barrier ticks: tick s is the end of the s-th stage in
  // execution order; the series carry the cumulative transport bytes
  // and message count once that stage's traffic is on the wire.
  // Virtual time is the tick index itself — the live path has no
  // deterministic clock, the barrier sequence *is* its time axis.
  double cum_bytes = 0;
  double cum_msgs = 0;
  tl.Sample("live/stage_bytes/bytes", 0, 0);
  tl.Sample("live/stage_msgs", 0, 0);
  for (std::size_t s = 0; s < result.stage_order.size(); ++s) {
    const auto it = result.traffic.find(result.stage_order[s]);
    if (it != result.traffic.end()) {
      cum_bytes += static_cast<double>(it->second.transmitted_bytes());
      cum_msgs += static_cast<double>(it->second.unicast_msgs +
                                      it->second.mcast_msgs);
    }
    tl.Sample("live/stage_bytes/bytes", static_cast<double>(s + 1),
              cum_bytes);
    tl.Sample("live/stage_msgs", static_cast<double>(s + 1), cum_msgs);
  }

  // Shuffle-round ticks: the transmission log in seq order, one round
  // per K transmissions (every sender fires once per round under both
  // sync modes). Cumulative bytes in flight plus the per-round burst.
  if (!result.shuffle_log.empty() && result.config.num_nodes > 0) {
    simnet::TransmissionLog log = result.shuffle_log;
    std::sort(log.begin(), log.end(),
              [](const simnet::Transmission& a,
                 const simnet::Transmission& b) { return a.seq < b.seq; });
    const std::size_t per_round =
        static_cast<std::size_t>(result.config.num_nodes);
    double cum = 0;
    double round_bytes = 0;
    std::size_t round = 0;
    tl.Sample("live/shuffle_bytes/bytes", 0, 0);
    for (std::size_t i = 0; i < log.size(); ++i) {
      cum += static_cast<double>(log[i].bytes);
      round_bytes += static_cast<double>(log[i].bytes);
      const bool round_end =
          (i + 1) % per_round == 0 || i + 1 == log.size();
      if (round_end) {
        ++round;
        tl.Sample("live/shuffle_bytes/bytes",
                  static_cast<double>(round), cum);
        tl.Sample("live/shuffle_round_bytes/bytes",
                  static_cast<double>(round), round_bytes);
        round_bytes = 0;
      }
    }
  }

  // End-of-run tick: values frozen into the cached result by
  // RunCache::Execute (run_metrics deltas). These are the quantities
  // that would *not* be reproducible if read live — arena hit counts
  // and stripe try_lock contention depend on thread interleaving —
  // so the timeline only ever sees the captured copy.
  const auto metric = [&](const char* name) -> double {
    auto it = result.run_metrics.find(name);
    return it == result.run_metrics.end() ? 0 : it->second;
  };
  const double hits = metric("simmpi/arena_hits");
  const double misses = metric("simmpi/arena_misses");
  const double end_tick =
      static_cast<double>(result.stage_order.size());
  if (hits + misses > 0) {
    tl.Sample("live/arena_hit_rate", end_tick, hits / (hits + misses));
  }
  tl.Sample("live/stripe_contention", end_tick,
            metric("simmpi/stripe_lock_contention"));

  return tl;
}

}  // namespace cts::obs
