#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <tuple>
#include <utility>

#include "common/check.h"

namespace cts::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteNumber(std::ostream& out, double v) {
  // otherData carries byte totals that must round-trip exactly; %.17g
  // preserves every double and prints integers without an exponent
  // for the magnitudes traces contain.
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out << buf;
}

void WriteArgs(std::ostream& out,
               const std::map<std::string, double>& args) {
  out << "\"args\":{";
  bool first = true;
  for (const auto& [k, v] : args) {
    if (!first) out << ",";
    first = false;
    out << '"' << JsonEscape(k) << "\":";
    WriteNumber(out, v);
  }
  out << "}";
}

}  // namespace

void Trace::set_process_name(int pid, const std::string& name) {
  process_names_[pid] = name;
}

void Trace::set_track_name(int pid, int tid, const std::string& name) {
  track_names_[{pid, tid}] = name;
}

void Trace::set_meta(const std::string& key, double value) {
  meta_[key] = value;
}

void Trace::add_complete(int pid, int tid, const std::string& name,
                         const std::string& category, double start_seconds,
                         double end_seconds,
                         std::map<std::string, double> args) {
  TraceEvent e;
  e.phase = 'X';
  e.name = name;
  e.category = category;
  e.pid = pid;
  e.tid = tid;
  e.ts_seconds = start_seconds;
  e.dur_seconds = end_seconds - start_seconds;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void Trace::add_instant(int pid, int tid, const std::string& name,
                        double ts_seconds,
                        std::map<std::string, double> args) {
  TraceEvent e;
  e.phase = 'i';
  e.name = name;
  e.category = cat::kMark;
  e.pid = pid;
  e.tid = tid;
  e.ts_seconds = ts_seconds;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void Trace::add_flow(int pid, int src_tid, int dst_tid, double start_seconds,
                     double end_seconds) {
  const std::uint64_t id = next_flow_id_++;
  TraceEvent s;
  s.phase = 's';
  s.name = "shuffle";
  s.category = cat::kFlow;
  s.pid = pid;
  s.tid = src_tid;
  s.ts_seconds = start_seconds;
  s.flow_id = id;
  events_.push_back(std::move(s));
  TraceEvent f = events_.back();
  f.phase = 'f';
  f.tid = dst_tid;
  f.ts_seconds = end_seconds;
  events_.push_back(std::move(f));
}

void Trace::add_counter(int pid, int tid, const std::string& name,
                        double ts_seconds, double value) {
  TraceEvent e;
  e.phase = 'C';
  e.name = name;
  e.category = cat::kCounter;
  e.pid = pid;
  e.tid = tid;
  e.ts_seconds = ts_seconds;
  e.args = {{"value", value}};
  events_.push_back(std::move(e));
}

void Trace::Merge(const Trace& other) {
  for (TraceEvent e : other.events_) {
    // Re-id the flow pairs so merged traces keep ids unique. Pairs are
    // adjacent by construction ('s' immediately followed by its 'f').
    if (e.phase == 's') e.flow_id += next_flow_id_;
    if (e.phase == 'f') e.flow_id += next_flow_id_;
    events_.push_back(std::move(e));
  }
  next_flow_id_ += other.next_flow_id_;
  for (const auto& [pid, name] : other.process_names_) {
    process_names_[pid] = name;
  }
  for (const auto& [key, name] : other.track_names_) {
    track_names_[key] = name;
  }
  for (const auto& [k, v] : other.meta_) meta_[k] = v;
}

void Trace::WriteJson(std::ostream& out) const {
  out << "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {";
  bool first = true;
  for (const auto& [k, v] : meta_) {
    if (!first) out << ",";
    first = false;
    out << "\n  \"" << JsonEscape(k) << "\": ";
    WriteNumber(out, v);
  }
  out << "\n},\n\"traceEvents\": [\n";
  first = true;
  const auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  for (const auto& [pid, name] : process_names_) {
    sep();
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":\"" << JsonEscape(name) << "\"}}";
  }
  for (const auto& [key, name] : track_names_) {
    sep();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
        << ",\"tid\":" << key.second << ",\"args\":{\"name\":\""
        << JsonEscape(name) << "\"}}";
  }
  for (const TraceEvent& e : events_) {
    sep();
    out << "{\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\""
        << JsonEscape(e.category) << "\",\"ph\":\"" << e.phase
        << "\",\"pid\":" << e.pid << ",\"tid\":" << e.tid << ",\"ts\":";
    WriteNumber(out, e.ts_seconds * 1e6);
    if (e.phase == 'X') {
      out << ",\"dur\":";
      WriteNumber(out, e.dur_seconds * 1e6);
    }
    if (e.phase == 's' || e.phase == 'f') {
      out << ",\"id\":" << e.flow_id;
      if (e.phase == 'f') out << ",\"bp\":\"e\"";
    }
    if (e.phase == 'i') out << ",\"s\":\"t\"";
    if (!e.args.empty()) {
      out << ",";
      WriteArgs(out, e.args);
    }
    out << "}";
  }
  out << "\n]\n}\n";
}

double Trace::ShuffleBytes(int pid) const {
  double total = 0;
  for (const TraceEvent& e : events_) {
    if (e.phase != 'X' || e.pid != pid || e.category != cat::kShuffle) {
      continue;
    }
    const auto it = e.args.find("bytes");
    if (it != e.args.end()) total += it->second;
  }
  return total;
}

std::string ValidateTrace(const Trace& trace) {
  double max_ts = 1.0;
  for (const TraceEvent& e : trace.events()) {
    if (!std::isfinite(e.ts_seconds) || !std::isfinite(e.dur_seconds)) {
      return "non-finite time on event '" + e.name + "'";
    }
    if (e.phase == 'X' && e.dur_seconds < 0) {
      return "negative duration on span '" + e.name + "'";
    }
    max_ts = std::max(max_ts, std::abs(e.ts_seconds) + e.dur_seconds);
  }
  const double eps = 1e-9 * max_ts;

  // Span nesting: per track, complete events must form a stack
  // discipline (a child is fully inside its parent; siblings do not
  // overlap). Sorting by (start asc, duration desc) visits parents
  // before their children.
  std::map<std::pair<int, int>, std::vector<const TraceEvent*>> tracks;
  for (const TraceEvent& e : trace.events()) {
    if (e.phase == 'X') tracks[{e.pid, e.tid}].push_back(&e);
  }
  for (auto& [key, spans] : tracks) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       if (a->ts_seconds != b->ts_seconds) {
                         return a->ts_seconds < b->ts_seconds;
                       }
                       return a->dur_seconds > b->dur_seconds;
                     });
    std::vector<double> open_ends;
    for (const TraceEvent* e : spans) {
      const double start = e->ts_seconds;
      const double end = start + e->dur_seconds;
      while (!open_ends.empty() && start >= open_ends.back() - eps) {
        open_ends.pop_back();
      }
      if (!open_ends.empty() && end > open_ends.back() + eps) {
        return "overlapping spans on pid " + std::to_string(key.first) +
               " tid " + std::to_string(key.second) + " at span '" +
               e->name + "'";
      }
      open_ends.push_back(end);
    }
  }

  // Flow pairing: every id has exactly one 's' and one 'f', in order.
  struct Pair {
    int starts = 0;
    int finishes = 0;
    double s_ts = kInf;
    double f_ts = -kInf;
  };
  std::map<std::uint64_t, Pair> flows;
  for (const TraceEvent& e : trace.events()) {
    if (e.phase == 's') {
      auto& p = flows[e.flow_id];
      ++p.starts;
      p.s_ts = e.ts_seconds;
    } else if (e.phase == 'f') {
      auto& p = flows[e.flow_id];
      ++p.finishes;
      p.f_ts = e.ts_seconds;
    }
  }
  for (const auto& [id, p] : flows) {
    if (p.starts != 1 || p.finishes != 1) {
      return "flow id " + std::to_string(id) + " has " +
             std::to_string(p.starts) + " starts / " +
             std::to_string(p.finishes) + " finishes";
    }
    if (p.s_ts > p.f_ts + eps) {
      return "flow id " + std::to_string(id) + " finishes before it starts";
    }
  }

  // Counter tracks: series named per the timeline key grammar, finite
  // numeric args, nondecreasing ts per (pid, tid, name) series — the
  // same rules tools/trace_check.py enforces on exported files.
  std::map<std::tuple<int, int, std::string>, double> counter_last_ts;
  for (const TraceEvent& e : trace.events()) {
    if (e.phase != 'C') continue;
    if (!ValidTimelineKey(e.name)) {
      return "counter series '" + e.name +
             "' violates <subsystem>/<name>[/unit]";
    }
    if (e.args.empty()) {
      return "counter sample of '" + e.name + "' carries no args";
    }
    for (const auto& [k, v] : e.args) {
      if (!std::isfinite(v)) {
        return "non-finite counter value in series '" + e.name + "'";
      }
    }
    auto [it, fresh] = counter_last_ts.try_emplace(
        std::tuple(e.pid, e.tid, e.name), e.ts_seconds);
    if (!fresh) {
      if (e.ts_seconds < it->second - eps) {
        return "counter series '" + e.name + "' time went backwards";
      }
      it->second = std::max(it->second, e.ts_seconds);
    }
  }
  return "";
}

namespace {

// Lays one sender's transmissions out inside [window_start,
// window_end] proportionally to bytes (evenly when the sender moved
// zero bytes), emitting a shuffle slice and per-receiver flow arrows
// for each. Slice boundaries are computed from cumulative byte
// fractions, so consecutive slices share boundaries exactly and the
// last is clamped to the window end — nesting inside the sender's
// Shuffle span is exact, not approximate.
void LayOutSenderSlices(Trace& trace, int pid, NodeId sender,
                        const std::vector<const simnet::Transmission*>& txs,
                        double window_start, double window_end) {
  if (txs.empty()) return;
  double total = 0;
  for (const auto* t : txs) total += static_cast<double>(t->bytes);
  const double width = std::max(0.0, window_end - window_start);
  const double count = static_cast<double>(txs.size());
  double cum = 0;
  double prev_frac = 0;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const simnet::Transmission& t = *txs[i];
    cum += static_cast<double>(t.bytes);
    const double frac =
        total > 0 ? cum / total : static_cast<double>(i + 1) / count;
    const double start = window_start + width * prev_frac;
    double end = window_start + width * frac;
    end = std::min(end, window_end);
    prev_frac = frac;
    trace.add_complete(
        pid, sender, t.is_multicast() ? "mcast" : "tx", cat::kShuffle,
        start, end,
        {{"bytes", static_cast<double>(t.bytes)},
         {"seq", static_cast<double>(t.seq)},
         {"receivers", static_cast<double>(t.dsts.size())}});
    for (const NodeId d : t.dsts) {
      trace.add_flow(pid, sender, d, start, end);
    }
  }
}

}  // namespace

Trace BuildLiveTrace(const AlgorithmResult& result, int pid,
                     const std::string& process_name) {
  Trace trace;
  const int K = result.config.num_nodes;
  trace.set_process_name(
      pid, process_name.empty() ? result.algorithm : process_name);
  for (int n = 0; n < K; ++n) {
    trace.set_track_name(pid, n, "node " + std::to_string(n));
  }

  // Measured stage spans, one per ComputeEvent.
  for (const auto& e : result.compute_events) {
    trace.add_complete(pid, e.node, e.stage, cat::kStage, e.start_seconds,
                       e.end_seconds);
  }

  // Each sender's Shuffle window (every engine records exactly one
  // Shuffle event per node; CMR's pipelined Map+Shuffle is labeled
  // Shuffle too). The global window is the fallback for a sender with
  // transmissions but no recorded Shuffle span (hand-built results).
  std::vector<double> win_start(static_cast<std::size_t>(K), kInf);
  std::vector<double> win_end(static_cast<std::size_t>(K), -kInf);
  double glob_start = kInf;
  double glob_end = -kInf;
  for (const auto& e : result.compute_events) {
    if (e.stage != stage::kShuffle) continue;
    const auto n = static_cast<std::size_t>(e.node);
    win_start[n] = std::min(win_start[n], e.start_seconds);
    win_end[n] = std::max(win_end[n], e.end_seconds);
    glob_start = std::min(glob_start, e.start_seconds);
    glob_end = std::max(glob_end, e.end_seconds);
  }
  if (glob_start > glob_end) {
    glob_start = 0;
    glob_end = 1;
  }

  std::vector<std::vector<const simnet::Transmission*>> per_sender(
      static_cast<std::size_t>(K));
  for (const auto& t : result.shuffle_log) {
    CTS_CHECK_GE(t.src, 0);
    CTS_CHECK_LT(t.src, K);
    per_sender[static_cast<std::size_t>(t.src)].push_back(&t);
  }
  for (int s = 0; s < K; ++s) {
    auto& txs = per_sender[static_cast<std::size_t>(s)];
    // Within one sender, seq order is program order.
    std::stable_sort(txs.begin(), txs.end(),
                     [](const simnet::Transmission* a,
                        const simnet::Transmission* b) {
                       return a->seq < b->seq;
                     });
    const std::size_t si = static_cast<std::size_t>(s);
    const bool has_window = win_start[si] <= win_end[si];
    LayOutSenderSlices(trace, pid, s, txs,
                       has_window ? win_start[si] : glob_start,
                       has_window ? win_end[si] : glob_end);
  }
  return trace;
}

Trace BuildScenarioTrace(const simscen::ScenarioRun& run,
                         const simscen::ScenarioOutcome& outcome,
                         const simscen::Scenario& scenario, int pid,
                         const std::string& process_name) {
  Trace trace;
  const int K = run.num_nodes;
  const int cluster_tid = K;
  trace.set_process_name(pid, process_name.empty()
                                  ? run.algorithm + " (scenario)"
                                  : process_name);
  for (int n = 0; n < K; ++n) {
    trace.set_track_name(pid, n, "node " + std::to_string(n));
  }
  trace.set_track_name(pid, cluster_tid, "cluster");

  for (const auto& span : outcome.spans) {
    // Barrier-to-barrier stage span on the cluster track, carrying the
    // mitigation accounting.
    std::map<std::string, double> args;
    if (span.wasted_seconds > 0) args["wasted_seconds"] = span.wasted_seconds;
    if (span.speculative_copies > 0) {
      args["speculative_copies"] = span.speculative_copies;
    }
    if (span.abandoned_nodes > 0) {
      args["abandoned_nodes"] = span.abandoned_nodes;
    }
    if (span.unmitigated_end > span.end) {
      args["mitigation_saved_seconds"] = span.unmitigated_end - span.end;
    }
    trace.add_complete(pid, cluster_tid, span.name, cat::kStage, span.start,
                       span.end, std::move(args));

    // Per-node completion spans (zero-duration stages stay invisible).
    for (std::size_t n = 0; n < span.node_end.size(); ++n) {
      if (span.node_end[n] > span.start) {
        trace.add_complete(pid, static_cast<int>(n), span.name, cat::kStage,
                           span.start, span.node_end[n]);
      }
    }

    if (span.trigger_at >= 0 && span.speculative_copies > 0) {
      trace.add_instant(
          pid, cluster_tid, "speculation-trigger", span.trigger_at,
          {{"copies", static_cast<double>(span.speculative_copies)}});
    }
    if (span.abandoned_nodes > 0 && span.speculative_copies == 0) {
      trace.add_instant(
          pid, cluster_tid, "coded-abandon", span.end,
          {{"abandoned", static_cast<double>(span.abandoned_nodes)}});
    }
  }

  // Shuffle flows at the times the flow DES scheduled them
  // (ReplayScenario records them in scenario seconds, aligned with
  // run.shuffle_log).
  const std::size_t n_flows =
      std::min(outcome.shuffle_flows.size(), run.shuffle_log.size());
  for (std::size_t i = 0; i < n_flows; ++i) {
    const simnet::Transmission& t = run.shuffle_log[i];
    const auto& f = outcome.shuffle_flows[i];
    trace.add_complete(
        pid, t.src, t.is_multicast() ? "mcast" : "tx", cat::kShuffle,
        f.start, f.end,
        {{"bytes", static_cast<double>(t.bytes)},
         {"seq", static_cast<double>(t.seq)},
         {"receivers", static_cast<double>(t.dsts.size())}});
    for (const NodeId d : t.dsts) {
      trace.add_flow(pid, t.src, d, f.start, f.end);
    }
  }

  // Outage onset/recovery instants on the failed node's track.
  const simscen::StragglerModel& strag = scenario.cluster.straggler;
  if (strag.kind == simscen::StragglerKind::kFailStop &&
      strag.recovery > 0 && strag.node >= 0 && strag.node < K) {
    trace.add_instant(pid, strag.node, "outage-start", strag.fail_at);
    trace.add_instant(pid, strag.node, "outage-end",
                      strag.fail_at + strag.recovery);
  }
  return trace;
}

void AppendTimelineCounters(const Timeline& timeline, Trace& trace,
                            int pid, int tid) {
  if (timeline.empty()) return;
  trace.set_track_name(pid, tid, "counters");
  for (const auto& [key, samples] : timeline.series()) {
    for (const TimelineSample& s : samples) {
      trace.add_counter(pid, tid, key, s.t, s.value);
    }
  }
}

}  // namespace cts::obs
