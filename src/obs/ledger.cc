#include "obs/ledger.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace cts::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteStringMap(std::ostringstream& out,
                    const std::map<std::string, std::string>& m) {
  out << '{';
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) out << ',';
    first = false;
    out << '"' << JsonEscape(k) << "\":\"" << JsonEscape(v) << '"';
  }
  out << '}';
}

// Minimal scanner for the exact shape SerializeEntry writes: a
// one-level object of string -> (string | object of string->string).
// Arbitrary JSON string escapes are honored so round-trips survive
// hostile axis values; anything structurally richer is rejected.
class Scanner {
 public:
  explicit Scanner(const std::string& s) : s_(s) {}

  bool Fail(const std::string& why, std::string* error) {
    if (error != nullptr) {
      *error = why + " at offset " + std::to_string(i_);
    }
    return false;
  }

  void SkipWs() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  bool Expect(char c, std::string* error) {
    SkipWs();
    if (i_ >= s_.size() || s_[i_] != c) {
      return Fail(std::string("expected '") + c + "'", error);
    }
    ++i_;
    return true;
  }

  bool Peek(char c) {
    SkipWs();
    return i_ < s_.size() && s_[i_] == c;
  }

  bool AtEnd() {
    SkipWs();
    return i_ >= s_.size();
  }

  bool ParseString(std::string* out, std::string* error) {
    if (!Expect('"', error)) return false;
    out->clear();
    while (i_ < s_.size() && s_[i_] != '"') {
      char c = s_[i_++];
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (i_ >= s_.size()) return Fail("dangling escape", error);
      const char e = s_[i_++];
      switch (e) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'n':
          *out += '\n';
          break;
        case 't':
          *out += '\t';
          break;
        case 'r':
          *out += '\r';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'u': {
          if (i_ + 4 > s_.size()) return Fail("short \\u escape", error);
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s_[i_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape", error);
            }
          }
          // The writer only escapes control characters; keep the
          // reader equally narrow (no surrogate pairs).
          if (code > 0x7f) return Fail("non-ASCII \\u escape", error);
          *out += static_cast<char>(code);
          break;
        }
        default:
          return Fail("unknown escape", error);
      }
    }
    if (i_ >= s_.size()) return Fail("unterminated string", error);
    ++i_;  // closing quote
    return true;
  }

  bool ParseStringMap(std::map<std::string, std::string>* out,
                      std::string* error) {
    if (!Expect('{', error)) return false;
    out->clear();
    if (Peek('}')) {
      ++i_;
      return true;
    }
    while (true) {
      std::string key, value;
      if (!ParseString(&key, error)) return false;
      if (!Expect(':', error)) return false;
      if (!ParseString(&value, error)) return false;
      if (out->count(key) != 0) return Fail("duplicate key", error);
      (*out)[key] = value;
      if (Peek(',')) {
        ++i_;
        continue;
      }
      return Expect('}', error);
    }
  }

 private:
  const std::string& s_;
  std::size_t i_ = 0;
};

}  // namespace

std::uint64_t Fingerprint64(const std::string& s) {
  return FnvMix(kFnvOffset, s.data(), s.size());
}

std::string HexDigest(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string HexFloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

const char* CodeVersion() {
#ifdef CTS_CODE_VERSION
  return CTS_CODE_VERSION;
#else
  return "unknown";
#endif
}

void DigestTimeline(const Timeline& tl, LedgerEntry& entry) {
  for (const auto& [key, samples] : tl.series()) {
    (void)samples;
    entry.timeline[key] = HexDigest(tl.SeriesDigest(key));
  }
}

std::string SerializeEntry(const LedgerEntry& entry) {
  std::ostringstream out;
  out << "{\"bench\":\"" << JsonEscape(entry.bench) << "\",\"run\":\""
      << JsonEscape(entry.run) << "\",\"fingerprint\":\""
      << JsonEscape(entry.fingerprint) << "\",\"code_version\":\""
      << JsonEscape(entry.code_version) << "\",\"axes\":";
  WriteStringMap(out, entry.axes);
  out << ",\"values\":{";
  bool first = true;
  for (const auto& [k, v] : entry.values) {
    if (!first) out << ',';
    first = false;
    out << '"' << JsonEscape(k) << "\":\"" << HexFloat(v) << '"';
  }
  out << "},\"timeline\":";
  WriteStringMap(out, entry.timeline);
  out << '}';
  return out.str();
}

bool ParseEntry(const std::string& line, LedgerEntry* out,
                std::string* error) {
  *out = LedgerEntry{};
  Scanner sc(line);
  if (!sc.Expect('{', error)) return false;
  if (sc.Peek('}')) {
    return sc.Fail("empty ledger entry", error);
  }
  while (true) {
    std::string key;
    if (!sc.ParseString(&key, error)) return false;
    if (!sc.Expect(':', error)) return false;
    if (key == "bench") {
      if (!sc.ParseString(&out->bench, error)) return false;
    } else if (key == "run") {
      if (!sc.ParseString(&out->run, error)) return false;
    } else if (key == "fingerprint") {
      if (!sc.ParseString(&out->fingerprint, error)) return false;
    } else if (key == "code_version") {
      if (!sc.ParseString(&out->code_version, error)) return false;
    } else if (key == "axes") {
      if (!sc.ParseStringMap(&out->axes, error)) return false;
    } else if (key == "timeline") {
      if (!sc.ParseStringMap(&out->timeline, error)) return false;
    } else if (key == "values") {
      std::map<std::string, std::string> raw;
      if (!sc.ParseStringMap(&raw, error)) return false;
      for (const auto& [k, v] : raw) {
        char* end = nullptr;
        const double d = std::strtod(v.c_str(), &end);
        if (end == v.c_str() || *end != '\0') {
          return sc.Fail("unparsable value for '" + k + "'", error);
        }
        out->values[k] = d;
      }
    } else {
      return sc.Fail("unknown ledger key '" + key + "'", error);
    }
    if (sc.Peek(',')) {
      if (!sc.Expect(',', error)) return false;
      continue;
    }
    break;
  }
  if (!sc.Expect('}', error)) return false;
  if (!sc.AtEnd()) return sc.Fail("trailing content", error);
  return true;
}

bool AppendEntry(const std::string& path, const LedgerEntry& entry) {
  std::ofstream out(path, std::ios::app);
  if (!out) return false;
  out << SerializeEntry(entry) << '\n';
  return static_cast<bool>(out);
}

std::vector<LedgerEntry> ReadLedger(const std::string& path,
                                    std::string* error) {
  std::vector<LedgerEntry> entries;
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open ledger '" + path + "'";
    return entries;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    LedgerEntry e;
    std::string perr;
    if (!ParseEntry(line, &e, &perr)) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(lineno) + ": " + perr;
      }
      return entries;
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace cts::obs
