// Span-based tracer: converts a finished run into Chrome trace_event
// JSON (the format chrome://tracing and Perfetto load natively).
//
// Two builders cover the two execution worlds:
//
//   * BuildLiveTrace   — a live thread-per-node run: one track per
//     node carrying the measured ComputeEvent spans, with the merged
//     seq-ordered transmission log laid out as "tx"/"mcast" slices
//     inside each sender's Shuffle span (proportional to bytes, so
//     the slice widths visualize the sender's byte mix) and a flow
//     arrow from every transmission to each receiver's track.
//   * BuildScenarioTrace — a DES replay (simscen::ReplayScenario):
//     per-node stage spans from the ScenarioOutcome, a synthetic
//     "cluster" track with the barrier-to-barrier stage spans and
//     their mitigation accounting, per-flow shuffle slices at the
//     times the flow simulation actually scheduled them, and instant
//     events marking outage onset/recovery and speculation triggers.
//
// Byte conservation is the tracer's core invariant: the sum of the
// "bytes" args over a trace's shuffle slices equals the run's
// TrafficStats shuffle total exactly (both builders copy
// Transmission::bytes through untouched — no repricing). Tests and
// tools/trace_check.py verify it against the totals embedded in
// otherData.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "driver/run_result.h"
#include "obs/timeline.h"
#include "simscen/engine.h"

namespace cts::obs {

// Event categories used by the builders (and filterable in Perfetto).
namespace cat {
inline constexpr const char* kStage = "stage";      // compute spans
inline constexpr const char* kShuffle = "shuffle";  // transmission slices
inline constexpr const char* kFlow = "flow";        // src -> dst arrows
inline constexpr const char* kMark = "mark";        // outages, triggers
inline constexpr const char* kCounter = "counter";  // timeline series
}  // namespace cat

// One trace_event entry. Times are kept in seconds until WriteJson,
// which emits the microseconds the format requires.
struct TraceEvent {
  char phase = 'X';  // 'X' complete, 'i' instant, 's'/'f' flow pair,
                     // 'C' counter sample
  std::string name;
  std::string category;
  int pid = 0;
  int tid = 0;
  double ts_seconds = 0;
  double dur_seconds = 0;        // complete events only
  std::uint64_t flow_id = 0;     // 's'/'f' binding id
  std::map<std::string, double> args;
};

// An in-memory trace: events plus track naming metadata and a flat
// otherData map (where ctsort records the per-algorithm TrafficStats
// totals the checker compares the flow sums against).
class Trace {
 public:
  void set_process_name(int pid, const std::string& name);
  void set_track_name(int pid, int tid, const std::string& name);
  void set_meta(const std::string& key, double value);

  void add_complete(int pid, int tid, const std::string& name,
                    const std::string& category, double start_seconds,
                    double end_seconds,
                    std::map<std::string, double> args = {});
  void add_instant(int pid, int tid, const std::string& name,
                   double ts_seconds,
                   std::map<std::string, double> args = {});
  // A flow arrow: phase 's' on the source track at `start_seconds`,
  // phase 'f' on the destination track at `end_seconds`, bound by a
  // fresh id.
  void add_flow(int pid, int src_tid, int dst_tid, double start_seconds,
                double end_seconds);
  // One counter sample ("ph":"C"): Perfetto renders the samples of a
  // (pid, name) pair as a stepped area series. The value rides in
  // args under "value".
  void add_counter(int pid, int tid, const std::string& name,
                   double ts_seconds, double value);

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::map<int, std::string>& process_names() const {
    return process_names_;
  }
  const std::map<std::pair<int, int>, std::string>& track_names() const {
    return track_names_;
  }
  const std::map<std::string, double>& meta() const { return meta_; }

  // Appends another trace's events and metadata (use distinct pids so
  // per-algorithm traces merge into one multi-process file).
  void Merge(const Trace& other);

  // Serializes to the Chrome trace_event JSON object form:
  //   {"traceEvents": [...], "otherData": {...}}
  // ts/dur in microseconds, metadata ('M') events emitted first.
  void WriteJson(std::ostream& out) const;

  // Sum of the "bytes" args over this pid's shuffle slices — the trace
  // side of the byte-conservation invariant.
  double ShuffleBytes(int pid) const;

 private:
  std::vector<TraceEvent> events_;
  std::map<int, std::string> process_names_;
  std::map<std::pair<int, int>, std::string> track_names_;
  std::map<std::string, double> meta_;
  std::uint64_t next_flow_id_ = 1;
};

// Structural validation: finite non-negative times, well-formed span
// nesting per track (complete events form a stack discipline up to
// 1 ns tolerance), every flow id used by exactly one 's'/'f' pair with
// start <= finish. Returns "" when valid, else a description of the
// first violation. Exercised by tests and mirrored in Python by
// tools/trace_check.py for CI artifacts.
std::string ValidateTrace(const Trace& trace);

// Live run -> trace. One track per node; `pid` distinguishes
// algorithms when several traces are merged into one file. The process
// name defaults to result.algorithm.
Trace BuildLiveTrace(const AlgorithmResult& result, int pid = 0,
                     const std::string& process_name = "");

// DES replay -> trace. `run`/`outcome` must be the pair that went
// through simscen::ReplayScenario; `scenario` supplies the outage
// window for the instant events. The process name defaults to
// "<algorithm> (scenario)".
Trace BuildScenarioTrace(const simscen::ScenarioRun& run,
                         const simscen::ScenarioOutcome& outcome,
                         const simscen::Scenario& scenario, int pid = 0,
                         const std::string& process_name = "");

// Exports every timeline series as counter events on one dedicated
// track of `pid` (named "counters"), one trace_event per sample, in
// key order then sample order — so identical timelines serialize to
// identical counter tracks. tid should sit past the node tracks
// (builders use K for "cluster"; K + 1 is the convention here).
void AppendTimelineCounters(const Timeline& timeline, Trace& trace,
                            int pid, int tid);

}  // namespace cts::obs
