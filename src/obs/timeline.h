// Timeline: a deterministic flight recorder for metric time series.
//
// Where MetricRegistry::Snapshot() answers "how much, by the end of
// the run", a Timeline answers "when": it records (t, value) samples
// of named series along *virtual* time — the DES samples at sim-time
// tick boundaries (netsim's TimelineProbe), the live path at logical
// barriers (stage index, shuffle round). No clock is ever read:
// every sample is a pure function of the run's inputs, so two
// executions of the same JobSpec produce bitwise-identical series
// (a ctest invariant in timeline_test) and the wallclock/rand rules
// in tools/repo_lint.py apply to the sampling paths unchanged.
//
// Series are keyed by the grammar
//
//   <subsystem>/<name>[/<unit>]
//
// (lowercase subsystem, e.g. des/inflight_flows,
// live/shuffle_bytes/bytes) — enforced by Validate() here, by the
// `timelinekey` rule in repo_lint.py at the call-site level, and by
// tools/trace_check.py on exported counter tracks.
//
// Consumers:
//   * obs::AppendTimelineCounters (trace.h) exports each series as a
//     Chrome-trace counter track ("ph":"C").
//   * bench::JsonReport::add_timeline embeds sample counts, final
//     values and digests as the "timeline" block of bench JSON.
//   * the run ledger (ledger.h) stores per-series FNV digests so
//     ctstat can detect timeline drift without storing every sample.
//
// Header-only on purpose, like metrics.h: simscen sits *below*
// cts_obs in the link order (cts_obs links cts_simscen for the trace
// builders), so the DES can only see obs headers that need no
// obs translation unit. BuildLiveTimeline, which needs
// driver/run_result.h, lives in timeline.cc inside cts_obs.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace cts {
struct AlgorithmResult;
}  // namespace cts

namespace cts::obs {

// One sample of one series: virtual time (seconds in the owning
// run's clock) and the metric value at that instant.
struct TimelineSample {
  double t = 0;
  double value = 0;

  friend bool operator==(const TimelineSample& a, const TimelineSample& b) {
    // Bitwise, not numeric: the determinism invariant is "same bits",
    // and under == alone -0.0 would alias 0.0 and NaN never match.
    std::uint64_t ab = 0, bb = 0, at = 0, bt = 0;
    std::memcpy(&at, &a.t, 8);
    std::memcpy(&bt, &b.t, 8);
    std::memcpy(&ab, &a.value, 8);
    std::memcpy(&bb, &b.value, 8);
    return at == bt && ab == bb;
  }
};

// True when `key` matches <subsystem>/<name>[/<unit>]: a lowercase
// [a-z][a-z0-9_]* subsystem followed by one or two [A-Za-z0-9_.+-]+
// segments. Deliberately a subset of the bench-JSON key charset, so a
// timeline key is always a legal bench/ledger key too.
inline bool ValidTimelineKey(const std::string& key) {
  std::vector<std::string> segs(1);
  for (char c : key) {
    if (c == '/') {
      segs.emplace_back();
    } else {
      segs.back().push_back(c);
    }
  }
  if (segs.size() < 2 || segs.size() > 3) return false;
  const std::string& sub = segs[0];
  if (sub.empty() || !(sub[0] >= 'a' && sub[0] <= 'z')) return false;
  for (char c : sub) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  for (std::size_t i = 1; i < segs.size(); ++i) {
    if (segs[i].empty()) return false;
    for (char c : segs[i]) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                      c == '+' || c == '-';
      if (!ok) return false;
    }
  }
  return true;
}

// FNV-1a 64-bit — the digest primitive for series and whole
// timelines. Stable across platforms because it only ever consumes
// explicit byte sequences (key characters and IEEE-754 bit patterns).
inline std::uint64_t FnvMix(std::uint64_t h, const void* data,
                            std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;

// The recorder. Sample() appends; series are ordered by key and
// samples by insertion (callers sample along nondecreasing virtual
// time — Validate checks it).
class Timeline {
 public:
  void Sample(const std::string& key, double t, double value) {
    series_[key].push_back(TimelineSample{t, value});
  }

  const std::map<std::string, std::vector<TimelineSample>>& series() const {
    return series_;
  }
  bool empty() const { return series_.empty(); }

  std::size_t total_samples() const {
    std::size_t n = 0;
    for (const auto& [key, samples] : series_) n += samples.size();
    return n;
  }

  // Appends the other timeline's samples series-by-series (same key
  // -> concatenated, which is only meaningful when the two cover
  // disjoint, ordered time ranges — Validate() still applies).
  void Merge(const Timeline& other) {
    for (const auto& [key, samples] : other.series_) {
      auto& dst = series_[key];
      dst.insert(dst.end(), samples.begin(), samples.end());
    }
  }

  // FNV-1a over the key bytes then every sample's (t, value) bit
  // patterns. Equal digests <=> bitwise-equal series (up to hash
  // collision); the ledger stores these instead of the raw samples.
  std::uint64_t SeriesDigest(const std::string& key) const {
    std::uint64_t h = FnvMix(kFnvOffset, key.data(), key.size());
    auto it = series_.find(key);
    if (it == series_.end()) return h;
    for (const TimelineSample& s : it->second) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &s.t, 8);
      h = FnvMix(h, &bits, 8);
      std::memcpy(&bits, &s.value, 8);
      h = FnvMix(h, &bits, 8);
    }
    return h;
  }

  // Digest of the whole timeline: series digests folded in key order
  // (the map iteration order, so registration order never matters).
  std::uint64_t Digest() const {
    std::uint64_t h = kFnvOffset;
    for (const auto& [key, samples] : series_) {
      const std::uint64_t sd = SeriesDigest(key);
      h = FnvMix(h, &sd, 8);
    }
    return h;
  }

  // "" when every key matches the grammar and every series has
  // finite values along nondecreasing finite time; otherwise a
  // description of the first violation.
  std::string Validate() const {
    for (const auto& [key, samples] : series_) {
      if (!ValidTimelineKey(key)) {
        return "timeline key '" + key +
               "' violates <subsystem>/<name>[/unit]";
      }
      double prev = -std::numeric_limits<double>::infinity();
      for (const TimelineSample& s : samples) {
        if (!std::isfinite(s.t) || !std::isfinite(s.value)) {
          return "non-finite sample in series '" + key + "'";
        }
        if (s.t < prev) {
          return "series '" + key + "' time went backwards";
        }
        prev = s.t;
      }
    }
    return "";
  }

  friend bool operator==(const Timeline& a, const Timeline& b) {
    return a.series_ == b.series_;
  }

 private:
  std::map<std::string, std::vector<TimelineSample>> series_;
};

// Live run -> timeline, defined in timeline.cc (needs
// driver/run_result.h). Ticks are logical — stage index and shuffle
// round — and every value comes from the run's deterministic
// counters (traffic, transmission log, run_metrics), so the series
// are bitwise reproducible across reruns of the same cached
// execution:
//   live/stage_bytes/bytes    cumulative transport bytes per stage tick
//   live/stage_msgs           cumulative transport messages per stage tick
//   live/shuffle_bytes/bytes  cumulative shuffle bytes per round tick
//   live/shuffle_round_bytes/bytes  bytes moved in each round
//   live/arena_hit_rate       arena hits/(hits+misses) at run end
//   live/stripe_contention    frozen try_lock contention count at run end
Timeline BuildLiveTimeline(const AlgorithmResult& result);

}  // namespace cts::obs
