// The run ledger: an append-only on-disk JSONL record of evaluated
// runs — the first durable artifact on the ROADMAP's path from the
// in-memory RunCache to a persistent, multi-tenant job service.
//
// One line per recorded run:
//
//   {"bench":"ctsort","run":"terasort","fingerprint":"9e10…",
//    "code_version":"3fd0885","axes":{"K":"16","backend":"priced"},
//    "values":{"terasort/total_s":"0x1.9f…p+9"},
//    "timeline":{"des/inflight_flows":"c0ffee…"}}
//
// Design rules:
//   * Exactness. Every double is serialized as a C hex float ("%a"),
//     so write -> read -> re-emit reproduces each value bit for bit
//     (ledger_test pins it; Python reads them via float.fromhex).
//     JSON numbers would round through decimal; strings of hex floats
//     do not.
//   * Canonical form. Maps serialize in key order with no
//     discretionary whitespace, so equal entries serialize to equal
//     bytes — diffing two ledger lines is diffing two runs.
//   * Append-only. AppendEntry opens O_APPEND-style and writes one
//     line; concurrent writers interleave whole lines, and a reader
//     can always take the latest entry per fingerprint as "current".
//   * Identity. `fingerprint` is FNV-1a over whatever spec identity
//     string the producer chose (ctsort uses the RunCache key plus
//     backend/scenario axes) — entries with equal fingerprints are
//     comparable runs of the same cell; `code_version` (the
//     CTS_CODE_VERSION compile definition, the git revision in CI)
//     tells releases apart. Timeline series are stored as per-series
//     digests, enough for ctstat to flag drift without replaying.
//
// tools/ctstat queries ledgers (list / filter / compare / --check);
// bench/bench_common.h writes entries behind --ledger=FILE.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/timeline.h"

namespace cts::obs {

struct LedgerEntry {
  std::string bench;         // producing tool or bench binary
  std::string run;           // row label within the bench (axis "run")
  std::string fingerprint;   // 16 lowercase hex chars (Fingerprint64)
  std::string code_version;  // CodeVersion() at write time
  // Spec axes as strings (K, r, backend, scenario, …): the filterable
  // identity of the cell, beyond the fingerprint hash.
  std::map<std::string, std::string> axes;
  // Recorded metrics — breakdown seconds, registry snapshot entries,
  // dollar costs. Exact doubles (hex-float on disk).
  std::map<std::string, double> values;
  // Timeline series key -> 16-hex FNV digest of the series.
  std::map<std::string, std::string> timeline;

  friend bool operator==(const LedgerEntry& a, const LedgerEntry& b) {
    return a.bench == b.bench && a.run == b.run &&
           a.fingerprint == b.fingerprint &&
           a.code_version == b.code_version && a.axes == b.axes &&
           a.values == b.values && a.timeline == b.timeline;
  }
};

// FNV-1a 64 of a spec identity string (same primitive the timeline
// digests use), and its canonical 16-char lowercase hex form.
std::uint64_t Fingerprint64(const std::string& s);
std::string HexDigest(std::uint64_t h);

// Exact textual double: C hex float ("%a"), bit-for-bit reversible
// via strtod / Python float.fromhex.
std::string HexFloat(double v);

// The compiled-in code identity (CTS_CODE_VERSION, "unknown" outside
// a stamped build).
const char* CodeVersion();

// Fills entry.timeline with the per-series digests of `tl`.
void DigestTimeline(const Timeline& tl, LedgerEntry& entry);

// Canonical one-line JSON (no trailing newline).
std::string SerializeEntry(const LedgerEntry& entry);

// Parses one ledger line. Returns false (and sets *error) on
// malformed input; recognizes exactly the subset SerializeEntry
// writes plus arbitrary JSON string escapes.
bool ParseEntry(const std::string& line, LedgerEntry* out,
                std::string* error);

// Appends one line to `path` (creating the file), returning false on
// I/O failure.
bool AppendEntry(const std::string& path, const LedgerEntry& entry);

// All entries of a ledger file in file order. Malformed lines abort
// the read: *error names the line, and the entries parsed so far are
// returned.
std::vector<LedgerEntry> ReadLedger(const std::string& path,
                                    std::string* error);

}  // namespace cts::obs
