// MetricRegistry: named counters, gauges and histograms shared by
// every subsystem that wants to be observable.
//
// The registry is the "new columns are cheap" substrate the ROADMAP's
// fleet-planner and job-service items ask for: a component registers a
// metric once (a stable slash-separated name, see the naming
// convention below), mutates it through a handle, and every consumer —
// ctsort --metrics, the bench --json artifacts, JobResult snapshots —
// reads the same flat name -> value map without knowing who produced
// it.
//
// Concurrency: the registry itself is lock-striped like
// simmpi::TrafficStats (the name -> handle map is sharded by name
// hash, each stripe with its own mutex), and the handles are lock-free
// — counters and histogram buckets are relaxed atomics, gauges a
// single atomic double. Registration (the striped map lookup) is the
// only mutex-taking operation; hot paths resolve their handles once
// and then mutate through them. Metrics are always on — there is no
// compiled-out build — so every handle operation is deliberately a
// handful of relaxed atomic instructions, cheap enough for the
// transport hot path (the bench_micro trend gate enforces this).
//
// Naming convention (enforced by style, not code):
//   <subsystem>/<object>[/<stage>]/<metric>
//   e.g. simmpi/Shuffle/unicast_bytes, job/cache_hits,
//        simscen/flows_requeued
// Names never end in "_s" or "total_s": those suffixes belong to the
// makespan metrics the bench trend gate watches, and a registry key
// must not be mistaken for one.
//
// Snapshots flatten to std::map<std::string, double>: counters by
// value, gauges by last set, histograms expanded to
// <name>/count, <name>/sum, <name>/max and <name>/p50-p99 bucket
// upper-bound estimates. The map plugs directly into
// bench::JsonReport (which embeds it under the artifact's "metrics"
// key) and JobResult::metrics_snapshot.
//
// Header-only on purpose: the registry sits below every subsystem
// (transport, DES, cache, driver), so it must not drag a link-time
// dependency into cts_common-adjacent libraries.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cts::obs {

// Monotonic event count. add() is a relaxed atomic increment; readers
// see a value that is exact once the writers are quiescent (the same
// contract TrafficStats aggregation has).
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-write-wins instantaneous value (pool depths, configuration
// echoes, derived ratios).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0); }

 private:
  std::atomic<double> value_{0};
};

// Power-of-two-bucketed histogram of non-negative samples. record() is
// two relaxed atomic adds plus a CAS loop for the running sum — no
// locks, so concurrent recorders never serialize. Quantiles are
// geometric-midpoint bucket estimates (within sqrt 2 of the true
// value), which is all an observability readout needs.
class Histogram {
 public:
  // Buckets: [0, 1), [1, 2), [2, 4), ... doubling up to 2^62, plus a
  // final overflow bucket. Samples are scaled by the caller (record
  // seconds as microseconds, bytes as bytes) to land in range.
  static constexpr int kBuckets = 64;

  void record(double sample) {
    if (!(sample >= 0)) return;  // negatives and NaN are dropped
    buckets_[bucket_of(sample)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Relaxed CAS accumulation: double has no fetch_add until C++20's
    // is optional; the loop is short and contention-tolerant.
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + sample,
                                       std::memory_order_relaxed)) {
    }
    double mx = max_.load(std::memory_order_relaxed);
    while (sample > mx && !max_.compare_exchange_weak(
                              mx, sample, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }

  // Geometric midpoint (upper bound / sqrt 2) of the bucket containing
  // the q-quantile sample — the estimate with the smallest worst-case
  // relative error (sqrt 2, vs 2x for the upper bound) given only the
  // bucket. 0 when empty; q is clamped to [0, 1] — casting a negative
  // rank to uint64_t would be undefined.
  double quantile(double q) const {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    q = std::min(std::max(q, 0.0), 1.0);
    const std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += buckets_[b].load(std::memory_order_relaxed);
      if (seen > rank) return upper_bound(b) / kSqrt2;
    }
    return upper_bound(kBuckets - 1) / kSqrt2;
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr double kSqrt2 = 1.4142135623730951;

  static int bucket_of(double sample) {
    if (sample < 1.0) return 0;
    const int e = std::ilogb(sample);  // floor(log2) for finite >= 1
    return std::min(e + 1, kBuckets - 1);
  }
  static double upper_bound(int bucket) {
    return bucket >= kBuckets - 1
               ? std::ldexp(1.0, kBuckets - 1)
               : std::ldexp(1.0, bucket);  // bucket b covers [2^(b-1), 2^b)
  }

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> max_{0};
};

// The registry: stable handles keyed by name. Handles live as long as
// the registry (values are node-owned unique_ptrs; Reset() zeroes
// values but never invalidates handles, so cached pointers in hot
// paths survive test-scoped resets).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // The process-wide default registry. Components default to it so
  // observability needs no plumbing through every constructor; tests
  // that need isolation construct their own and pass it explicitly.
  static MetricRegistry& Global() {
    static MetricRegistry* g = new MetricRegistry();  // never destroyed
    return *g;
  }

  Counter& counter(const std::string& name) {
    return get_or_create(name, Kind::kCounter).counter_or_die(name);
  }
  Gauge& gauge(const std::string& name) {
    return get_or_create(name, Kind::kGauge).gauge_or_die(name);
  }
  Histogram& histogram(const std::string& name) {
    return get_or_create(name, Kind::kHistogram).histogram_or_die(name);
  }

  // Flat name -> value view of everything registered. Counters report
  // their value, gauges their last set, histograms expand to
  // /count, /sum, /max, /p50, /p99 (skipped entirely while empty so
  // quiet histograms don't spam snapshots).
  std::map<std::string, double> Snapshot() const {
    std::map<std::string, double> out;
    for (const Stripe& s : stripes_) {
      std::lock_guard lock(s.mu);
      for (const auto& [name, m] : s.metrics) {
        switch (m->kind) {
          case Kind::kCounter:
            out[name] = static_cast<double>(m->counter.value());
            break;
          case Kind::kGauge:
            out[name] = m->gauge.value();
            break;
          case Kind::kHistogram:
            if (m->histogram.count() == 0) break;
            out[name + "/count"] =
                static_cast<double>(m->histogram.count());
            out[name + "/sum"] = m->histogram.sum();
            out[name + "/max"] = m->histogram.max();
            out[name + "/p50"] = m->histogram.quantile(0.5);
            out[name + "/p99"] = m->histogram.quantile(0.99);
            break;
        }
      }
    }
    return out;
  }

  // Zeroes every value, keeping registrations (and outstanding
  // handles) intact. Call between runs to scope a snapshot.
  void Reset() {
    for (Stripe& s : stripes_) {
      std::lock_guard lock(s.mu);
      for (auto& [name, m] : s.metrics) {
        switch (m->kind) {
          case Kind::kCounter:
            m->counter.reset();
            break;
          case Kind::kGauge:
            m->gauge.reset();
            break;
          case Kind::kHistogram:
            m->histogram.reset();
            break;
        }
      }
    }
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Stripe& s : stripes_) {
      std::lock_guard lock(s.mu);
      n += s.metrics.size();
    }
    return n;
  }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Metric {
    explicit Metric(Kind k) : kind(k) {}
    const Kind kind;
    Counter counter;
    Gauge gauge;
    Histogram histogram;

    Counter& counter_or_die(const std::string& name) {
      check_kind(Kind::kCounter, name);
      return counter;
    }
    Gauge& gauge_or_die(const std::string& name) {
      check_kind(Kind::kGauge, name);
      return gauge;
    }
    Histogram& histogram_or_die(const std::string& name) {
      check_kind(Kind::kHistogram, name);
      return histogram;
    }
    void check_kind(Kind want, const std::string& name) const {
      if (kind != want) {
        // Re-registering a name as a different kind is a programming
        // error; abort with the offending name rather than silently
        // aliasing two meanings onto one key.
        std::fprintf(stderr, "MetricRegistry: '%s' registered twice with "
                             "different kinds\n", name.c_str());
        std::abort();
      }
    }
  };

  // Stripe count mirrors TrafficStats: enough that concurrent
  // registrations rarely collide, small enough that Snapshot stays a
  // trivial sweep.
  static constexpr std::size_t kStripes = 16;

  struct Stripe {
    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Metric>> metrics;
  };

  // Get-or-create: the first registration fixes the kind, *_or_die
  // aborts on a mismatched re-registration.
  Metric& get_or_create(const std::string& name, Kind kind) {
    Stripe& s = stripes_[std::hash<std::string>{}(name) % kStripes];
    std::lock_guard lock(s.mu);
    auto& slot = s.metrics[name];
    if (!slot) slot = std::make_unique<Metric>(kind);
    return *slot;
  }

  Stripe stripes_[kStripes];
};

}  // namespace cts::obs
