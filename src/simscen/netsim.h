// Topology-aware discrete-event replay of a transmission log.
//
// Generalizes simnet::ReplayMakespan from identical per-node links to
// a rack Topology with an oversubscribed core:
//
//   * Access links are exclusive, as in simnet: a node transmits one
//     flow and receives one flow at a time (one combined under a
//     half-duplex discipline). Under ReplayOrder::kLogOrder each link
//     serves its transmissions in per-link FIFO order of the log —
//     provably the same schedule simnet's list scheduler produces;
//     under kPerSender only each sender's program order constrains,
//     with ties broken by sender id exactly as simnet does.
//   * The core is a fluid shared resource: all concurrently active
//     cross-rack flows share its capacity by progressive-filling
//     max-min (each flow additionally capped by its access links),
//     recomputed at every flow arrival/departure — the simgrid-style
//     bandwidth-sharing step.
//
// A multicast transmission is a flow whose sender streams
// bytes × (1 + coeff·log2(fanout)) — the application-layer multicast
// penalty — while each receiver's downlink is held only until the
// payload `bytes` have flowed; the sender's uplink (and the core, for
// cross-rack flows) carries the stream to the end. With an infinite
// core and the default access rate this reproduces
// simnet::ReplayMakespan bit-for-bit modulo floating-point event
// accumulation (tests assert 1e-9 relative agreement).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/timeline.h"
#include "simnet/schedule.h"
#include "simnet/transmission_log.h"
#include "simscen/scenario.h"

namespace cts::simscen {

// A fail-stop outage as the network sees it: `node`'s links are frozen
// during [start, end) (times on the replay clock; start may be
// negative for an outage already in progress when the stage begins).
// Transfers in flight on those links when the outage hits lose their
// progress and are re-queued — they retransmit once the node is back
// and their links come free again. Transfers not yet started that
// touch the node simply cannot be admitted during the window.
struct LinkOutage {
  NodeId node = -1;
  double start = 0;
  double end = 0;

  bool active() const { return node >= 0 && end > start && end > 0; }
  bool covers(double t) const { return active() && t >= start && t < end; }
};

// A point where the DES's processing order is not forced by event
// times: several flows cross a rate threshold at the same instant
// (kCompletionTie — the `cand <= t_next` batch in FlowSim::Run), or an
// outage re-queues several in-flight flows at once (kOutageRequeue —
// their order at the back of the link queues). `candidates` holds the
// flow indices (positions in the replayed log) in the canonical order
// the simulator would process them.
struct OrderingDecision {
  enum class Kind { kCompletionTie, kOutageRequeue };
  Kind kind = Kind::kCompletionTie;
  double time = 0;
  std::vector<std::size_t> candidates;
};

// Exploration seam for the DPOR-style ordering explorer (src/check):
// NetMakespan consults the hook at every decision with >= 2 candidates
// and processes them in the returned order, which must be a
// permutation of `d.candidates`. A null hook keeps the canonical order
// — bit-for-bit the historical behaviour, at the cost of one branch
// per event batch.
class OrderingHook {
 public:
  virtual ~OrderingHook() = default;
  virtual std::vector<std::size_t> Choose(const OrderingDecision& d) = 0;
};

// Optional per-flow detail of one replay, for tests, invariants and
// the tracer (obs::BuildScenarioTrace).
struct NetReplayStats {
  // Completion time of log entry i (payload at every receiver AND the
  // sender's multicast stream tail drained).
  std::vector<double> flow_end;
  // Time log entry i first went on the wire (its first admission; the
  // serial discipline reports the time the medium was granted, after
  // any outage restart).
  std::vector<double> flow_start;
  // Σ t.bytes over flows whose payload reached all receivers; a
  // completed replay conserves bytes (== sum over the log).
  double delivered_payload_bytes = 0;
  // DES accounting, mirrored into the obs::MetricRegistry by
  // NetMakespan: admissions (initial + re-admissions after an
  // outage), outage re-queues, and max-min core-share recomputations.
  std::uint64_t flows_started = 0;
  std::uint64_t flows_requeued = 0;
  std::uint64_t maxmin_recomputations = 0;
};

// Flight-recorder hookup for NetMakespan: when `timeline` is set the
// replay samples three series at fixed sim-time tick intervals —
//   des/inflight_flows     flows admitted and not yet drained
//   des/requeue_depth      outage victims waiting for re-admission
//   des/link_utilization   busy access links / all access links
// Ticks live on the replay's own virtual clock (never wall-clock);
// each sample lands in the timeline at t0 + scale * t_log, so the
// scenario engine can place a network stage's series in scenario
// seconds (scale = shuffle_correction). interval <= 0 picks the
// default: the log's serialized duration / 256.
struct TimelineProbe {
  obs::Timeline* timeline = nullptr;
  double t0 = 0;        // scenario time of replay-clock zero
  double scale = 1.0;   // replay seconds -> timeline seconds
  double interval = 0;  // tick spacing in replay seconds (0 = auto)
};

// Makespan of `log` replayed on `topology` under a network discipline
// and initiation order. Discipline::kSerial prices the paper's shared
// medium: one transmission at a time, each at the minimum rate along
// its path (access, and core if cross-rack); `order` is ignored there.
// `outage` freezes one node's links for a window (see LinkOutage);
// `stats`, if non-null, receives per-flow completion times. `hook`, if
// non-null, chooses the processing order at every OrderingDecision
// (parallel disciplines only; kSerial has no simultaneous events).
double NetMakespan(const simnet::TransmissionLog& log,
                   const Topology& topology,
                   simnet::Discipline discipline,
                   simnet::ReplayOrder order = simnet::ReplayOrder::kLogOrder,
                   const LinkOutage& outage = {},
                   NetReplayStats* stats = nullptr,
                   OrderingHook* hook = nullptr,
                   const TimelineProbe& probe = {});

}  // namespace cts::simscen
