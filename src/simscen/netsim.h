// Topology-aware discrete-event replay of a transmission log.
//
// Generalizes simnet::ReplayMakespan from identical per-node links to
// a rack Topology with an oversubscribed core:
//
//   * Access links are exclusive, as in simnet: a node transmits one
//     flow and receives one flow at a time (one combined under a
//     half-duplex discipline). Under ReplayOrder::kLogOrder each link
//     serves its transmissions in per-link FIFO order of the log —
//     provably the same schedule simnet's list scheduler produces;
//     under kPerSender only each sender's program order constrains,
//     with ties broken by sender id exactly as simnet does.
//   * The core is a fluid shared resource: all concurrently active
//     cross-rack flows share its capacity by progressive-filling
//     max-min (each flow additionally capped by its access links),
//     recomputed at every flow arrival/departure — the simgrid-style
//     bandwidth-sharing step.
//
// A multicast transmission is a flow whose sender streams
// bytes × (1 + coeff·log2(fanout)) — the application-layer multicast
// penalty — while each receiver's downlink is held only until the
// payload `bytes` have flowed; the sender's uplink (and the core, for
// cross-rack flows) carries the stream to the end. With an infinite
// core and the default access rate this reproduces
// simnet::ReplayMakespan bit-for-bit modulo floating-point event
// accumulation (tests assert 1e-9 relative agreement).
#pragma once

#include "simnet/schedule.h"
#include "simnet/transmission_log.h"
#include "simscen/scenario.h"

namespace cts::simscen {

// Makespan of `log` replayed on `topology` under a network discipline
// and initiation order. Discipline::kSerial prices the paper's shared
// medium: one transmission at a time, each at the minimum rate along
// its path (access, and core if cross-rack); `order` is ignored there.
double NetMakespan(const simnet::TransmissionLog& log,
                   const Topology& topology,
                   simnet::Discipline discipline,
                   simnet::ReplayOrder order = simnet::ReplayOrder::kLogOrder);

}  // namespace cts::simscen
