// Scenario descriptions for discrete-event replay of a full run.
//
// The paper prices every run on a homogeneous cluster with identical
// per-node links, yet Coded TeraSort's central tradeoff — pay r× more
// Map compute to cut Shuffle traffic — flips sign exactly when nodes
// are heterogeneous, links are oversubscribed, or a straggler
// stretches the redundant Map phase. A Scenario bundles the two
// orthogonal knobs the engine (simscen/engine.h) replays a run under:
//
//   * ClusterProfile — per-node compute-speed multipliers plus a
//     pluggable straggler model (deterministic slow node,
//     shifted-exponential per-stage factors, fail-stop outage);
//   * Topology — racks with per-node access links and an
//     oversubscribed core shared max-min among concurrent cross-rack
//     flows (simscen/netsim.h).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "simnet/transmission_log.h"

namespace cts::simscen {

// How a scenario perturbs per-node compute durations.
enum class StragglerKind {
  kNone,
  // One designated node runs all compute `slowdown`× slower — the
  // deterministic worst case of a degraded VM.
  kSlowNode,
  // Every (node, stage) pair draws an independent multiplicative
  // factor `shift + Exp(mean)` — the classic shifted-exponential
  // straggler model of the coded-computation literature. Deterministic
  // in `seed`.
  kShiftedExp,
  // One node halts at absolute scenario time `fail_at` and is offline
  // for `recovery` seconds; compute in flight on that node during the
  // outage window is suspended and resumes afterwards. (The outage
  // applies to compute phases; the barrier-synchronous protocol makes
  // every later stage on every node wait for it.)
  kFailStop,
};

struct StragglerModel {
  StragglerKind kind = StragglerKind::kNone;
  NodeId node = 0;        // target of kSlowNode / kFailStop
  double slowdown = 2.0;  // kSlowNode compute-time multiplier (>= 1)
  double shift = 1.0;     // kShiftedExp factor = shift + Exp(mean)
  double mean = 0.5;      // kShiftedExp mean of the exponential part
  double fail_at = 0.0;   // kFailStop outage start (scenario seconds)
  double recovery = 0.0;  // kFailStop outage length (seconds)
  std::uint64_t seed = 2017;  // kShiftedExp determinism
};

// Per-node compute capability. Baseline durations are divided by the
// node's speed multiplier, then stretched by the straggler model.
struct ClusterProfile {
  // speed[n] = node n's compute-speed multiplier (1.0 = calibrated
  // testbed node; 0.5 = half speed). Empty means all 1.0.
  std::vector<double> speed;
  StragglerModel straggler;

  static ClusterProfile Homogeneous(int num_nodes);

  double speed_of(NodeId node) const;

  // Multiplicative stretch the straggler model applies to node
  // `node`'s compute in stage `stage_index` (>= its program's first
  // stage = 0). kFailStop returns 1.0 — the outage is a time window,
  // applied by the engine, not a rate change.
  double straggler_factor(NodeId node, int stage_index) const;

  // Baseline compute seconds -> scenario seconds for one (node,
  // stage), before fail-stop outage accounting.
  double compute_seconds(NodeId node, int stage_index,
                         double baseline_seconds) const {
    return baseline_seconds / speed_of(node) *
           straggler_factor(node, stage_index);
  }
};

// Rack-structured network: every node owns a full-duplex (or, under a
// half-duplex discipline, shared) access link of `access_bytes_per_sec`
// into its rack switch; each rack's switch reaches the core through a
// finite uplink pipe (traffic leaving the rack) and downlink pipe
// (traffic entering it), and racks interconnect through one core pipe
// of `core_bytes_per_sec` that every cross-rack flow traverses. All
// three inter-rack pipes are fluid resources shared max-min among the
// flows crossing them; each defaults to infinity, and with all of them
// infinite the fabric is non-blocking and the replay degenerates to
// simnet::ReplayMakespan's per-node-link model.
struct Topology {
  int num_nodes = 0;
  // Nodes per rack; <= 0 or >= num_nodes means a single rack. Rack of
  // node n is n / nodes_per_rack.
  int nodes_per_rack = 0;
  double access_bytes_per_sec = kPaperLinkBytesPerSec * kTcpEfficiency;
  double core_bytes_per_sec = std::numeric_limits<double>::infinity();
  // Per-rack switch-to-core pipes, shared by every flow leaving
  // (uplink) or entering (downlink) the rack. Infinite = the
  // pre-rack-pipe model where only the core constrains cross-rack
  // traffic.
  double rack_uplink_bytes_per_sec = std::numeric_limits<double>::infinity();
  double rack_downlink_bytes_per_sec =
      std::numeric_limits<double>::infinity();
  // Sender-side penalty coefficient for application-layer multicast,
  // identical in role to simnet::LinkModel::multicast_log_coeff.
  double multicast_log_coeff = kMulticastLogCoeff;
  // Rack-aware application-layer multicast: the sender emits one copy
  // per destination *rack* (the rack switch replicates locally), so
  // the sender-side fanout penalty counts distinct destination racks
  // and a destination rack's downlink carries the payload once no
  // matter how many of its nodes receive. Off by default — the
  // paper's transport replicates per receiver at the sender, and the
  // degenerate-replay equalities are pinned against that model.
  bool rack_aware_multicast = false;

  static Topology SingleRack(int num_nodes);

  // `factor`:1 oversubscription: the core pipe carries
  // num_nodes * access / factor. factor = 1 is a non-blocking fabric
  // expressed with a finite core; larger factors starve cross-rack
  // traffic.
  static Topology Oversubscribed(int num_nodes, int nodes_per_rack,
                                 double factor);

  // Per-rack oversubscription: on top of Oversubscribed(...)'s shared
  // core, each rack's uplink (downlink) pipe carries
  // nodes_per_rack * access / up_factor (down_factor). A factor <= 0
  // leaves that pipe infinite.
  static Topology RackOversubscribed(int num_nodes, int nodes_per_rack,
                                     double core_factor, double up_factor,
                                     double down_factor);

  int rack_of(NodeId node) const;
  int num_racks() const;

  // True if the transmission reaches at least one node outside the
  // sender's rack (and therefore traverses the core).
  bool crosses_core(const simnet::Transmission& t) const;

  // Sender-side multicast stream penalty (the application-layer copy
  // count folded into a unicast-rate multiplier). Under
  // rack_aware_multicast the fanout is the number of distinct racks
  // the transmission reaches (its own rack's switch counts once);
  // otherwise it is the receiver count — the exact floating-point
  // expression of simnet::LinkModel::tx_seconds, so degenerate
  // replays stay bit-stable.
  double multicast_penalty(const simnet::Transmission& t) const;

  bool core_is_finite() const {
    return core_bytes_per_sec < std::numeric_limits<double>::infinity();
  }
  // True if either per-rack pipe constrains (the flow DES only takes
  // its generalized multi-pipe path when this is set, keeping the
  // shared-core arithmetic bit-for-bit otherwise).
  bool rack_pipes_finite() const {
    return rack_uplink_bytes_per_sec <
               std::numeric_limits<double>::infinity() ||
           rack_downlink_bytes_per_sec <
               std::numeric_limits<double>::infinity();
  }
};

// Payload bytes that cross a rack boundary under this topology — the
// traffic a cloud bills as inter-AZ egress (analytics::DollarCost).
// Each transmission contributes bytes × (copies entering other racks):
// one copy per cross-rack receiver, or one per distinct destination
// rack under rack_aware_multicast.
double CrossRackBytes(const simnet::TransmissionLog& log,
                      const Topology& topology);

}  // namespace cts::simscen
