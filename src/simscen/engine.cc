#include "simscen/engine.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace cts::simscen {

namespace {

// Completion time of `dur` seconds of work started at `start` on a
// node that is offline during [fail_at, fail_at + recovery): work in
// flight suspends and resumes after the outage.
double EndWithOutage(double start, double dur, double fail_at,
                     double recovery) {
  const double end = start + dur;
  if (recovery <= 0) return end;
  if (end <= fail_at) return end;                   // finished before
  if (start >= fail_at + recovery) return end;      // started after
  if (start >= fail_at) return fail_at + recovery + dur;  // began offline
  return end + recovery;                            // crossed the outage
}

std::vector<double> PerNode(const AlgorithmResult& result,
                            double (CostModel::*price)(const NodeWork&,
                                                       const RunScale&)
                                const,
                            const CostModel& model, const RunScale& scale) {
  std::vector<double> out;
  out.reserve(result.work.size());
  for (const auto& w : result.work) out.push_back((model.*price)(w, scale));
  return out;
}

}  // namespace

StageBreakdown ScenarioOutcome::breakdown() const {
  StageBreakdown b;
  b.algorithm = algorithm;
  for (const auto& span : spans) b.stages.push_back({span.name, span.seconds()});
  b.wasted_seconds = wasted_seconds;
  return b;
}

ScenarioRun BuildScenarioRun(const AlgorithmResult& result,
                             const CostModel& model, const RunScale& scale) {
  ScenarioRun run;
  run.algorithm = result.algorithm;
  run.num_nodes = result.config.num_nodes;
  run.redundancy = std::max(result.config.redundancy, 1);
  run.shuffle_log = result.shuffle_log;
  run.shuffle_correction = ComputeShuffleScaling(result, model, scale).correction;

  // Engines populate stage_order; results built by hand (tests) fall
  // back to the canonical sequence, skipping stages with no work.
  std::vector<std::string> order = result.stage_order;
  if (order.empty()) {
    order = {stage::kCodeGen, stage::kMap,    stage::kPack,
             stage::kEncode,  stage::kShuffle, stage::kUnpack,
             stage::kDecode,  stage::kReduce};
  }

  const int r = std::max(result.config.redundancy, 1);
  for (const std::string& name : order) {
    ScenarioRun::Stage st;
    st.name = name;
    if (name == stage::kShuffle) {
      st.kind = StageKind::kNetwork;
    } else if (name == stage::kCodeGen) {
      st.kind = StageKind::kCollective;
      const auto it = result.traffic.find(stage::kCodeGen);
      const double sec =
          it == result.traffic.end()
              ? 0.0
              : model.codegen_seconds(it->second.comm_creations,
                                      result.config.codegen_mode);
      st.node_seconds.assign(static_cast<std::size_t>(run.num_nodes), sec);
    } else {
      st.kind = StageKind::kCompute;
      if (name == stage::kMap) {
        st.node_seconds = PerNode(result, &CostModel::map_seconds, model, scale);
      } else if (name == stage::kPack) {
        st.node_seconds = PerNode(result, &CostModel::pack_seconds, model, scale);
      } else if (name == stage::kEncode) {
        st.node_seconds =
            PerNode(result, &CostModel::encode_seconds, model, scale);
      } else if (name == stage::kUnpack) {
        st.node_seconds =
            PerNode(result, &CostModel::unpack_seconds, model, scale);
      } else if (name == stage::kDecode) {
        st.node_seconds =
            PerNode(result, &CostModel::decode_seconds, model, scale);
      } else if (name == stage::kReduce) {
        st.node_seconds.reserve(result.work.size());
        for (const auto& w : result.work) {
          st.node_seconds.push_back(model.reduce_seconds(w, scale, r));
        }
      }
      // Unknown stage names replay as zero-cost barriers.
    }
    run.stages.push_back(std::move(st));
  }
  return run;
}

ScenarioRun BuildScenarioRunFromEvents(
    const std::string& algorithm, int num_nodes,
    const std::vector<std::string>& stage_order, const ComputeLog& events,
    simnet::TransmissionLog shuffle_log, int redundancy) {
  CTS_CHECK_GE(num_nodes, 1);
  ScenarioRun run;
  run.algorithm = algorithm;
  run.num_nodes = num_nodes;
  run.redundancy = std::max(redundancy, 1);
  run.shuffle_log = std::move(shuffle_log);

  std::map<std::string, std::vector<double>> per_stage;
  for (const auto& e : events) {
    auto& v = per_stage[e.stage];
    v.resize(static_cast<std::size_t>(num_nodes), 0.0);
    CTS_CHECK_GE(e.node, 0);
    CTS_CHECK_LT(e.node, num_nodes);
    // A node may enter a stage several times; durations accumulate.
    v[static_cast<std::size_t>(e.node)] += e.seconds();
  }

  for (const std::string& name : stage_order) {
    ScenarioRun::Stage st;
    st.name = name;
    st.kind = name == stage::kShuffle ? StageKind::kNetwork
                                      : StageKind::kCompute;
    const auto it = per_stage.find(name);
    if (it != per_stage.end()) st.node_seconds = it->second;
    run.stages.push_back(std::move(st));
  }
  return run;
}

ScenarioOutcome ReplayScenario(const ScenarioRun& run,
                               const Scenario& scenario,
                               obs::Timeline* timeline) {
  CTS_CHECK_GE(run.num_nodes, 1);
  CTS_CHECK_EQ(scenario.topology.num_nodes, run.num_nodes);
  CTS_CHECK_GT(run.shuffle_correction, 0.0);
  const StragglerModel& strag = scenario.cluster.straggler;
  const bool fail_stop = strag.kind == StragglerKind::kFailStop;
  const mitigate::MitigationPolicy& policy = scenario.mitigation;

  ScenarioOutcome out;
  out.algorithm = run.algorithm;
  double now = 0;
  int stage_index = 0;
  for (const auto& st : run.stages) {
    StageSpan span;
    span.name = st.name;
    span.start = now;
    span.node_end.assign(static_cast<std::size_t>(run.num_nodes), now);

    if (st.kind == StageKind::kNetwork) {
      // The shuffle is barrier-delimited: every flow becomes eligible
      // at the stage start, so the stage contributes one replayed
      // makespan. A pipelined stage (CMR's overlapped Map+Shuffle)
      // also carries per-node compute that runs concurrently with the
      // transfers: the stage ends when both the network and the
      // slowest (possibly straggling) node are done. Sorting runs
      // leave node_seconds empty here, so the degenerate replay is a
      // pure NetMakespan.
      //
      // A fail-stop outage overlapping the stage freezes the failed
      // node's links: its in-flight transfers are re-queued and
      // retransmit after the window (simscen/netsim.h). The replay
      // clock runs in measured-log seconds, scenario seconds are
      // log seconds x shuffle_correction, so the outage window maps
      // into log time by the inverse factor.
      LinkOutage outage;
      if (fail_stop && strag.recovery > 0) {
        outage.node = strag.node;
        outage.start = (strag.fail_at - now) / run.shuffle_correction;
        outage.end = (strag.fail_at + strag.recovery - now) /
                     run.shuffle_correction;
      }
      NetReplayStats net_stats;
      // The probe maps replay-clock samples onto the scenario
      // timeline: the stage starts at `now` and one replay second is
      // shuffle_correction scenario seconds.
      TimelineProbe probe;
      probe.timeline = timeline;
      probe.t0 = now;
      probe.scale = run.shuffle_correction;
      const double net = NetMakespan(run.shuffle_log, scenario.topology,
                                     scenario.discipline, scenario.order,
                                     outage, &net_stats, nullptr, probe) *
                         run.shuffle_correction;
      // Per-flow wire times in scenario seconds, for the tracer. Only
      // the first network stage fills them (runs have one Shuffle).
      if (out.shuffle_flows.empty() && !net_stats.flow_end.empty()) {
        out.shuffle_flows.reserve(net_stats.flow_end.size());
        for (std::size_t i = 0; i < net_stats.flow_end.size(); ++i) {
          ScenarioOutcome::FlowSpan f;
          f.start = now + net_stats.flow_start[i] * run.shuffle_correction;
          f.end = now + net_stats.flow_end[i] * run.shuffle_correction;
          out.shuffle_flows.push_back(f);
        }
      }
      double stage_end = now + net;
      for (int n = 0; n < run.num_nodes; ++n) {
        const std::size_t ni = static_cast<std::size_t>(n);
        const double base =
            ni < st.node_seconds.size() ? st.node_seconds[ni] : 0.0;
        const double dur =
            scenario.cluster.compute_seconds(n, stage_index, base);
        double end = now + dur;
        if (fail_stop && n == strag.node) {
          end = EndWithOutage(now, dur, strag.fail_at, strag.recovery);
        }
        span.node_end[ni] = std::max(now + net, end);
        stage_end = std::max(stage_end, end);
      }
      span.end = stage_end;
      span.unmitigated_end = stage_end;
    } else {
      double stage_end = now;
      for (int n = 0; n < run.num_nodes; ++n) {
        const std::size_t ni = static_cast<std::size_t>(n);
        double base =
            ni < st.node_seconds.size() ? st.node_seconds[ni] : 0.0;
        double dur = base;
        if (st.kind == StageKind::kCompute) {
          dur = scenario.cluster.compute_seconds(n, stage_index, base);
        }
        double end = now + dur;
        if (fail_stop && n == strag.node) {
          end = EndWithOutage(now, dur, strag.fail_at, strag.recovery);
        }
        span.node_end[ni] = end;
        stage_end = std::max(stage_end, end);
      }
      span.end = stage_end;
      span.unmitigated_end = stage_end;

      // Mitigation applies to per-node compute stages only: a
      // collective is latency-bound and identical on every node, and
      // the network stage has no whole-node unit of work a backup
      // could re-execute.
      if (st.kind == StageKind::kCompute &&
          policy.kind != mitigate::PolicyKind::kNone) {
        mitigate::StageView view;
        view.start = now;
        view.node_end = span.node_end;
        // The K-of-N coded completion exploits the C(K, r) placement:
        // every Map input lives on r nodes, so the Map barrier may
        // abandon up to r-1 stragglers. Other stages operate on
        // unreplicated intermediate state.
        if (st.name == stage::kMap) {
          view.coded_tolerance =
              std::min(run.redundancy - 1, run.num_nodes - 1);
        }
        // A backup re-executes the victim's input share. Its cost is
        // estimated from the median per-node baseline, not the
        // victim's own: on event-built runs the victim's measured
        // duration is polluted by the very straggle being mitigated,
        // while shares themselves are balanced by construction.
        std::vector<double> bases(static_cast<std::size_t>(run.num_nodes),
                                  0.0);
        for (std::size_t ni = 0;
             ni < bases.size() && ni < st.node_seconds.size(); ++ni) {
          bases[ni] = st.node_seconds[ni];
        }
        std::vector<double> sorted_bases = bases;
        std::sort(sorted_bases.begin(), sorted_bases.end());
        const double median_base =
            sorted_bases[sorted_bases.size() / 2];
        view.backup_end = [&](NodeId /*victim*/, NodeId helper, double at) {
          const double dur = scenario.cluster.compute_seconds(
              helper, stage_index, median_base);
          if (fail_stop && helper == strag.node) {
            return EndWithOutage(at, dur, strag.fail_at, strag.recovery);
          }
          return at + dur;
        };
        view.busy_seconds = [&](NodeId node, double t) {
          double busy = std::max(0.0, t - now);
          if (fail_stop && node == strag.node) {
            const double o0 = std::max(strag.fail_at, now);
            const double o1 = std::min(strag.fail_at + strag.recovery, t);
            busy -= std::max(0.0, o1 - o0);
          }
          return std::max(0.0, busy);
        };
        const mitigate::StageMitigation sm =
            mitigate::ApplyPolicy(policy, view);
        span.node_end = sm.node_end;
        span.end = sm.end;
        span.wasted_seconds = sm.wasted_seconds;
        span.speculative_copies = sm.speculative_copies;
        span.abandoned_nodes = sm.abandoned_nodes;
        span.trigger_at = sm.trigger_at;
      }
    }
    now = span.end;
    out.wasted_seconds += span.wasted_seconds;
    out.spans.push_back(std::move(span));
    ++stage_index;
  }
  out.makespan = now;
  return out;
}

ScenarioOutcome ReplayScenario(const AlgorithmResult& result,
                               const CostModel& model, const RunScale& scale,
                               const Scenario& scenario,
                               obs::Timeline* timeline) {
  return ReplayScenario(BuildScenarioRun(result, model, scale), scenario,
                        timeline);
}

}  // namespace cts::simscen
