#include "simscen/netsim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"

namespace cts::simscen {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool Touches(const simnet::Transmission& t, NodeId node) {
  if (t.src == node) return true;
  for (const NodeId d : t.dsts) {
    if (d == node) return true;
  }
  return false;
}

// One transmission in flight. The flow streams `stream_total` bytes
// from the sender's uplink; each receiver's downlink is released once
// `payload` bytes have flowed, the uplink (and core share) when the
// whole stream has.
struct Flow {
  const simnet::Transmission* t = nullptr;
  double payload = 0;       // bytes each receiver must see
  double stream_total = 0;  // payload * multicast penalty (sender side)
  bool crossing = false;    // traverses the core
  bool touches_outage = false;

  int up_res = -1;
  std::vector<int> down_res;  // deduplicated

  // Fluid inter-rack pipes the flow's stream crosses (core + source
  // rack uplink, held until the stream tail is done) and the
  // destination-rack downlink shares (held until the payload is
  // delivered). The weight is how many concurrent copies of the
  // stream the pipe carries for this flow: #receivers in the rack, or
  // 1 under rack-aware multicast. Populated only on the generalized
  // multi-pipe path (Topology::rack_pipes_finite()).
  std::vector<std::pair<int, double>> pipes_stream;
  std::vector<std::pair<int, double>> pipes_payload;

  bool admitted = false;
  bool receivers_released = false;
  bool done = false;
  double first_admit = -1;  // first time on the wire (-1: never admitted)

  // Piecewise-linear progress: sent(t) = seg_sent + rate * (t -
  // seg_start) while the allocated rate is unchanged. The segment is
  // only reset when the rate actually changes, so a flow whose rate
  // never varies completes at admit_time + total/rate in one floating
  // addition — the same arithmetic simnet uses.
  double rate = 0;
  double seg_start = 0;
  double seg_sent = 0;

  double sent_at(double now) const {
    return seg_sent + rate * (now - seg_start);
  }
  double next_threshold() const {
    return receivers_released ? stream_total : payload;
  }
};

// Exclusive access-link state: FIFO queue of flow indices in log order
// (kLogOrder) plus a plain occupancy flag (kPerSender). Re-queued
// outage victims append to the queue, so followers overtake them.
struct Resource {
  std::vector<std::size_t> queue;  // log-order users (kLogOrder)
  std::size_t head = 0;            // first unreleased user
  bool occupied = false;           // kPerSender occupancy
};

class FlowSim {
 public:
  FlowSim(const simnet::TransmissionLog& log, const Topology& topo,
          bool full_duplex, simnet::ReplayOrder order,
          const LinkOutage& outage, OrderingHook* hook)
      : log_(log), topo_(topo), full_duplex_(full_duplex), order_(order),
        outage_(outage), hook_(hook) {
    const int n = topo.num_nodes;
    CTS_CHECK_GE(n, 1);
    CTS_CHECK_GT(topo.access_bytes_per_sec, 0.0);
    CTS_CHECK_GT(topo.core_bytes_per_sec, 0.0);
    resources_.resize(full_duplex ? 2 * static_cast<std::size_t>(n)
                                  : static_cast<std::size_t>(n));

    // The generalized multi-pipe path exists only when a per-rack pipe
    // actually constrains; otherwise Reallocate keeps the original
    // shared-core arithmetic so degenerate replays are bit-for-bit.
    use_pipes_ = topo.rack_pipes_finite();
    int core_pipe = -1;
    int up_base = -1;
    int down_base = -1;
    if (use_pipes_) {
      const int racks = topo.num_racks();
      if (topo.core_is_finite()) {
        core_pipe = static_cast<int>(pipe_cap_.size());
        pipe_cap_.push_back(topo.core_bytes_per_sec);
      }
      if (topo.rack_uplink_bytes_per_sec < kInf) {
        CTS_CHECK_GT(topo.rack_uplink_bytes_per_sec, 0.0);
        up_base = static_cast<int>(pipe_cap_.size());
        pipe_cap_.insert(pipe_cap_.end(), static_cast<std::size_t>(racks),
                         topo.rack_uplink_bytes_per_sec);
      }
      if (topo.rack_downlink_bytes_per_sec < kInf) {
        CTS_CHECK_GT(topo.rack_downlink_bytes_per_sec, 0.0);
        down_base = static_cast<int>(pipe_cap_.size());
        pipe_cap_.insert(pipe_cap_.end(), static_cast<std::size_t>(racks),
                         topo.rack_downlink_bytes_per_sec);
      }
    }

    flows_.reserve(log.size());
    for (const auto& t : log) {
      CTS_CHECK_GE(t.src, 0);
      CTS_CHECK_LT(t.src, n);
      Flow f;
      f.t = &t;
      f.payload = static_cast<double>(t.bytes);
      f.stream_total =
          static_cast<double>(t.bytes) * topo.multicast_penalty(t);
      f.crossing = topo.crosses_core(t);
      f.touches_outage = outage_.active() && Touches(t, outage_.node);
      f.up_res = up_of(t.src);
      for (const NodeId d : t.dsts) {
        CTS_CHECK_GE(d, 0);
        CTS_CHECK_LT(d, n);
        CTS_CHECK_NE(d, t.src);
        f.down_res.push_back(down_of(d));
      }
      std::sort(f.down_res.begin(), f.down_res.end());
      f.down_res.erase(std::unique(f.down_res.begin(), f.down_res.end()),
                       f.down_res.end());
      if (use_pipes_ && f.crossing) {
        const int src_rack = topo.rack_of(t.src);
        if (core_pipe >= 0) f.pipes_stream.push_back({core_pipe, 1.0});
        if (up_base >= 0) {
          f.pipes_stream.push_back({up_base + src_rack, 1.0});
        }
        if (down_base >= 0) {
          // Copies entering each destination rack: one per receiver
          // there, or one total when the rack switch replicates
          // (rack-aware multicast).
          std::map<int, double> copies;
          for (const NodeId d : t.dsts) {
            const int r = topo.rack_of(d);
            if (r != src_rack) copies[r] += 1.0;
          }
          for (const auto& [rack, count] : copies) {
            f.pipes_payload.push_back(
                {down_base + rack,
                 topo.rack_aware_multicast ? 1.0 : count});
          }
        }
      }
      flows_.push_back(std::move(f));
    }

    if (order_ == simnet::ReplayOrder::kLogOrder) {
      for (std::size_t i = 0; i < flows_.size(); ++i) {
        for (const int r : needed(flows_[i])) {
          resources_[static_cast<std::size_t>(r)].queue.push_back(i);
        }
      }
    } else {
      // Per-sender FIFO in seq order (a sender's seq order is its
      // program order), mirroring simnet::ParallelPerSenderMakespan.
      sender_queue_.resize(static_cast<std::size_t>(n));
      for (std::size_t i = 0; i < flows_.size(); ++i) {
        sender_queue_[static_cast<std::size_t>(flows_[i].t->src)]
            .push_back(i);
      }
      for (auto& q : sender_queue_) {
        std::sort(q.begin(), q.end(), [&](std::size_t a, std::size_t b) {
          return log_[a].seq < log_[b].seq;
        });
      }
      sender_head_.assign(static_cast<std::size_t>(n), 0);
    }
  }

  double Run(NetReplayStats* stats, const TimelineProbe& probe) {
    if (stats != nullptr) {
      stats->flow_end.assign(flows_.size(), 0.0);
      stats->flow_start.assign(flows_.size(), 0.0);
    }
    double now = 0;
    double makespan = 0;
    std::size_t remaining = flows_.size();

    // Flight-recorder ticks: fixed steps of the replay clock, derived
    // from the log itself (serialized duration / 256 by default) — a
    // pure function of the inputs, so two replays tick identically.
    double dt = 0;
    double next_tick = 0;
    if (probe.timeline != nullptr) {
      double span_bytes = 0;
      for (const Flow& f : flows_) span_bytes += f.stream_total;
      dt = probe.interval > 0
               ? probe.interval
               : span_bytes / topo_.access_bytes_per_sec / 256.0;
    }
    const bool sampling = probe.timeline != nullptr && dt > 0;
    const auto sample_at = [&](double t) {
      double inflight = 0;
      double requeue_depth = 0;
      std::vector<char> busy(resources_.size(), 0);
      for (const Flow& f : flows_) {
        if (f.done) continue;
        if (f.admitted) {
          inflight += 1;
          busy[static_cast<std::size_t>(f.up_res)] = 1;
          if (!f.receivers_released) {
            for (const int r : f.down_res) {
              busy[static_cast<std::size_t>(r)] = 1;
            }
          }
        } else if (f.first_admit >= 0) {
          // Admitted once, knocked back by the outage, not yet back on
          // the wire: the re-queue backlog.
          requeue_depth += 1;
        }
      }
      double busy_links = 0;
      for (const char b : busy) busy_links += b;
      const double ts = probe.t0 + probe.scale * t;
      probe.timeline->Sample("des/inflight_flows", ts, inflight);
      probe.timeline->Sample("des/requeue_depth", ts, requeue_depth);
      probe.timeline->Sample(
          "des/link_utilization", ts,
          busy_links / static_cast<double>(resources_.size()));
    };

    ProcessOutage(now);
    Admit(now);
    Reallocate(now);
    if (sampling) {
      sample_at(0.0);
      next_tick = dt;
    }
    while (remaining > 0) {
      // Earliest next threshold crossing among active flows, plus the
      // outage window edges (a blocked system only moves again when
      // the outage starts releasing flows or ends re-admitting them).
      double t_next = kInf;
      for (const Flow& f : flows_) {
        if (!f.admitted || f.done) continue;
        CTS_CHECK_GT(f.rate, 0.0);
        const double cand =
            f.seg_start + (f.next_threshold() - f.seg_sent) / f.rate;
        t_next = std::min(t_next, cand);
      }
      if (outage_.active()) {
        if (!outage_hit_ && outage_.start > now) {
          t_next = std::min(t_next, outage_.start);
        } else if (outage_.end > now) {
          t_next = std::min(t_next, outage_.end);
        }
      }
      CTS_CHECK_LT(t_next, kInf);
      // Rates are piecewise-constant between events, so the state at
      // every tick in (now, t_next] is the state right now — emit the
      // due ticks before the batch mutates it.
      if (sampling) {
        while (next_tick <= t_next) {
          sample_at(next_tick);
          next_tick += dt;
        }
      }
      now = std::max(now, t_next);

      // Collect every flow whose candidate equals the event time (ties
      // come from identical arithmetic and compare equal), then let
      // the ordering hook pick a processing order — the DPOR seam.
      // Batch members never change each other's candidate time
      // (Release touches resources, not rates; Admit/Reallocate run
      // after the batch), so collect-then-process with the canonical
      // ascending order is the historical behaviour bit-for-bit.
      tie_.clear();
      for (std::size_t i = 0; i < flows_.size(); ++i) {
        const Flow& f = flows_[i];
        if (!f.admitted || f.done) continue;
        const double cand =
            f.seg_start + (f.next_threshold() - f.seg_sent) / f.rate;
        if (cand > t_next) continue;
        tie_.push_back(i);
      }
      for (const std::size_t i :
           ChooseOrder(OrderingDecision::Kind::kCompletionTie, t_next,
                       tie_)) {
        Flow& f = flows_[i];
        // Snap progress to the threshold (no drift).
        f.seg_sent = f.next_threshold();
        f.seg_start = t_next;
        if (!f.receivers_released) {
          f.receivers_released = true;
          for (const int r : f.down_res) Release(r);
          if (stats != nullptr) stats->delivered_payload_bytes += f.payload;
        }
        if (f.receivers_released && f.seg_sent >= f.stream_total) {
          f.done = true;
          Release(f.up_res);
          makespan = std::max(makespan, t_next);
          if (stats != nullptr) {
            stats->flow_end[i] = t_next;
            stats->flow_start[i] = std::max(f.first_admit, 0.0);
          }
          --remaining;
        }
      }
      ProcessOutage(now);
      Admit(now);
      Reallocate(now);
    }
    if (sampling) sample_at(makespan);  // the drained end state
    if (stats != nullptr) {
      stats->flows_started = admissions_;
      stats->flows_requeued = requeued_;
      stats->maxmin_recomputations = maxmin_recomputations_;
    }
    return makespan;
  }

 private:
  int up_of(NodeId n) const {
    return full_duplex_ ? 2 * n : n;
  }
  int down_of(NodeId n) const {
    return full_duplex_ ? 2 * n + 1 : n;
  }

  // The exclusive resources a flow needs to make progress from its
  // current state: the uplink always; the receiver downlinks only
  // until the payload has been delivered (a re-queued tail must not
  // wait for downlinks it already released).
  std::vector<int> needed(const Flow& f) const {
    std::vector<int> rs;
    rs.push_back(f.up_res);
    if (!f.receivers_released) {
      rs.insert(rs.end(), f.down_res.begin(), f.down_res.end());
    }
    return rs;
  }

  void Release(int r) {
    Resource& res = resources_[static_cast<std::size_t>(r)];
    if (order_ == simnet::ReplayOrder::kLogOrder) {
      ++res.head;
    } else {
      res.occupied = false;
    }
  }

  bool InOutage(double now) const {
    return outage_.covers(now);
  }

  // At the moment the outage starts, every in-flight flow touching the
  // failed node loses its progress and is re-queued: its links are
  // released (followers may overtake) and it re-enters at the back of
  // the queues it still needs. Payload already delivered stays
  // delivered — only the undelivered part retransmits.
  void ProcessOutage(double now) {
    if (outage_hit_ || !outage_.active() || now < outage_.start) return;
    outage_hit_ = true;
    if (now >= outage_.end) return;  // zero-length window inside a step
    // The victims' re-queue order decides who re-enters each link
    // queue first once the outage lifts — a real scheduling freedom
    // (unlike completion ties, alternative orders may legally change
    // the makespan), so it is the second hook decision kind.
    tie_.clear();
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      const Flow& f = flows_[i];
      if (f.admitted && !f.done && f.touches_outage) tie_.push_back(i);
    }
    for (const std::size_t i :
         ChooseOrder(OrderingDecision::Kind::kOutageRequeue, now, tie_)) {
      Flow& f = flows_[i];
      for (const int r : needed(f)) {
        Release(r);
        if (order_ == simnet::ReplayOrder::kLogOrder) {
          resources_[static_cast<std::size_t>(r)].queue.push_back(i);
        }
      }
      if (order_ != simnet::ReplayOrder::kLogOrder) {
        // Retry in the sender's queue once the outage lifts.
        sender_queue_[static_cast<std::size_t>(f.t->src)].push_back(i);
      }
      ++requeued_;
      f.admitted = false;
      f.rate = 0;
      f.seg_start = now;
      f.seg_sent = f.receivers_released ? f.payload : 0.0;
    }
  }

  // The hook-or-canonical processing order for one decision batch.
  // Returns `canonical` untouched (no copy) when no hook is installed
  // or the batch has a single member.
  const std::vector<std::size_t>& ChooseOrder(
      OrderingDecision::Kind kind, double time,
      const std::vector<std::size_t>& canonical) {
    if (hook_ == nullptr || canonical.size() < 2) return canonical;
    chosen_ = hook_->Choose(OrderingDecision{kind, time, canonical});
    std::vector<std::size_t> got = chosen_;
    std::sort(got.begin(), got.end());
    std::vector<std::size_t> want = canonical;
    std::sort(want.begin(), want.end());
    CTS_CHECK_MSG(got == want,
                  "OrderingHook returned a non-permutation of the "
                  "candidate batch");
    return chosen_;
  }

  bool Admissible(std::size_t i, double now) const {
    const Flow& f = flows_[i];
    if (f.touches_outage && InOutage(now)) return false;
    for (const int r : needed(f)) {
      const Resource& res = resources_[static_cast<std::size_t>(r)];
      if (order_ == simnet::ReplayOrder::kLogOrder) {
        // Admissible only when this flow is the earliest unreleased
        // user of every link it needs — per-link FIFO in log order,
        // which reproduces simnet's list schedule (an earlier log
        // entry holds or reserves the link until it releases it).
        if (res.head >= res.queue.size() || res.queue[res.head] != i) {
          return false;
        }
      } else {
        if (res.occupied) return false;
      }
    }
    return true;
  }

  void AdmitFlow(std::size_t i, double now) {
    Flow& f = flows_[i];
    f.admitted = true;
    ++admissions_;
    if (f.first_admit < 0) f.first_admit = now;
    f.seg_start = now;
    f.seg_sent = f.receivers_released ? f.payload : 0.0;
    f.rate = 0;  // assigned by Reallocate before any event math
    if (order_ != simnet::ReplayOrder::kLogOrder) {
      for (const int r : needed(f)) {
        resources_[static_cast<std::size_t>(r)].occupied = true;
      }
    }
  }

  void Admit(double now) {
    if (order_ == simnet::ReplayOrder::kLogOrder) {
      // Admissions cannot enable other admissions (queues pop on
      // release only), so one pass in log order suffices.
      for (std::size_t i = 0; i < flows_.size(); ++i) {
        if (!flows_[i].admitted && !flows_[i].done && Admissible(i, now)) {
          AdmitFlow(i, now);
        }
      }
    } else {
      // Sender-id order breaks simultaneous ties exactly like the
      // greedy in simnet::ParallelPerSenderMakespan.
      for (std::size_t n = 0; n < sender_queue_.size(); ++n) {
        while (sender_head_[n] < sender_queue_[n].size()) {
          const std::size_t i = sender_queue_[n][sender_head_[n]];
          if (flows_[i].admitted || flows_[i].done) {
            ++sender_head_[n];  // stale entry from a pre-outage pass
            continue;
          }
          if (!Admissible(i, now)) break;
          AdmitFlow(i, now);
          ++sender_head_[n];
        }
      }
    }
  }

  // Max-min rates: every flow is capped by the access links it still
  // holds (exclusive, so the cap is the raw link rate); concurrent
  // cross-rack flows then share the core by progressive filling. A
  // flow's segment is reset only if its rate actually changes.
  void Reallocate(double now) {
    if (use_pipes_) {
      ReallocatePipes(now);
      return;
    }
    struct Entry {
      Flow* f;
      double cap;
    };
    std::vector<Entry> crossing;
    for (Flow& f : flows_) {
      if (!f.admitted || f.done) continue;
      double cap = topo_.access_bytes_per_sec;
      // Released downlinks no longer constrain the stream tail; the
      // uplink always does. With a uniform access rate the min is the
      // access rate either way.
      if (f.crossing && topo_.core_is_finite()) {
        crossing.push_back({&f, cap});
      } else {
        SetRate(f, cap, now);
      }
    }
    if (crossing.empty()) return;
    ++maxmin_recomputations_;
    // Progressive filling of the single shared core pipe: repeatedly
    // grant the lowest-capped flow min(cap, equal share of what
    // remains).
    std::sort(crossing.begin(), crossing.end(),
              [](const Entry& a, const Entry& b) { return a.cap < b.cap; });
    double remaining = topo_.core_bytes_per_sec;
    std::size_t left = crossing.size();
    for (Entry& e : crossing) {
      const double level = remaining / static_cast<double>(left);
      const double r = std::min(e.cap, level);
      SetRate(*e.f, r, now);
      remaining -= r;
      --left;
    }
  }

  // Weighted max-min over the inter-rack pipes (core + per-rack
  // uplink/downlink), by water-filling: every unfixed flow's rate
  // rises together; whichever constraint binds first — a flow's
  // access-link cap, or a pipe whose remaining capacity is exhausted
  // by the weights still on it — fixes the flows it limits at the
  // water level, returns their shares, and the level keeps rising for
  // the rest. A flow's share of a pipe is its weight × rate (a
  // multicast entering a rack with w receivers puts w copies on that
  // rack's downlink), which is exactly where locality shows up in the
  // planner's price. Only taken when a rack pipe is finite; the
  // shared-core path above keeps its original arithmetic so the
  // infinite-pipe replay stays bit-for-bit.
  void ReallocatePipes(double now) {
    struct Entry {
      Flow* f;
      double cap;
      bool payload_live;  // downlink shares still held
      bool fixed = false;
      double limit = 0;
    };
    std::vector<Entry> entries;
    for (Flow& f : flows_) {
      if (!f.admitted || f.done) continue;
      const bool payload_live =
          !f.receivers_released && !f.pipes_payload.empty();
      if (f.pipes_stream.empty() && !payload_live) {
        SetRate(f, topo_.access_bytes_per_sec, now);
        continue;
      }
      entries.push_back({&f, topo_.access_bytes_per_sec, payload_live});
    }
    if (entries.empty()) return;
    ++maxmin_recomputations_;

    std::vector<double> rem(pipe_cap_);
    std::vector<double> weight(pipe_cap_.size(), 0.0);
    const auto each_pipe = [](const Entry& e, auto&& fn) {
      for (const auto& [p, w] : e.f->pipes_stream) fn(p, w);
      if (e.payload_live) {
        for (const auto& [p, w] : e.f->pipes_payload) fn(p, w);
      }
    };
    for (const Entry& e : entries) {
      each_pipe(e, [&](int p, double w) {
        weight[static_cast<std::size_t>(p)] += w;
      });
    }

    std::size_t unfixed = entries.size();
    while (unfixed > 0) {
      // The rate each unfixed flow could reach if only its own
      // constraints existed; the lowest of these is where the water
      // level binds next, and every flow at that limit fixes there.
      double level = kInf;
      for (Entry& e : entries) {
        if (e.fixed) continue;
        e.limit = e.cap;
        each_pipe(e, [&](int p, double w) {
          (void)w;
          const auto i = static_cast<std::size_t>(p);
          if (weight[i] > 0) e.limit = std::min(e.limit, rem[i] / weight[i]);
        });
        level = std::min(level, e.limit);
      }
      CTS_CHECK_GT(level, 0.0);
      for (Entry& e : entries) {
        if (e.fixed || e.limit > level) continue;
        e.fixed = true;
        --unfixed;
        SetRate(*e.f, level, now);
        each_pipe(e, [&](int p, double w) {
          const auto i = static_cast<std::size_t>(p);
          rem[i] = std::max(rem[i] - w * level, 0.0);
          weight[i] -= w;
        });
      }
    }
  }

  void SetRate(Flow& f, double rate, double now) {
    CTS_CHECK_GT(rate, 0.0);
    if (f.rate == rate) return;
    f.seg_sent = f.sent_at(now);
    f.seg_start = now;
    f.rate = rate;
  }

  const simnet::TransmissionLog& log_;
  const Topology& topo_;
  const bool full_duplex_;
  const simnet::ReplayOrder order_;
  const LinkOutage outage_;
  OrderingHook* const hook_;
  std::vector<std::size_t> tie_;     // reused decision-batch buffer
  std::vector<std::size_t> chosen_;  // hook-returned order buffer
  bool use_pipes_ = false;
  std::vector<double> pipe_cap_;  // core, then per-rack up, then down
  bool outage_hit_ = false;
  std::uint64_t admissions_ = 0;
  std::uint64_t requeued_ = 0;
  std::uint64_t maxmin_recomputations_ = 0;
  std::vector<Flow> flows_;
  std::vector<Resource> resources_;
  std::vector<std::vector<std::size_t>> sender_queue_;
  std::vector<std::size_t> sender_head_;
};

double SerialNetMakespan(const simnet::TransmissionLog& log,
                         const Topology& topo, const LinkOutage& outage,
                         NetReplayStats* stats,
                         const TimelineProbe& probe) {
  if (stats != nullptr) {
    stats->flow_end.assign(log.size(), 0.0);
    stats->flow_start.assign(log.size(), 0.0);
  }

  // Same tick derivation as the parallel path: serialized duration of
  // the whole log over 256 steps. On the shared medium at most one
  // transmission is in flight, so the series read 0/1 in-flight, the
  // restart backlog, and the fraction of node links the current
  // transmission occupies.
  double dt = 0;
  double next_tick = 0;
  if (probe.timeline != nullptr) {
    double span_bytes = 0;
    for (const auto& t : log) {
      span_bytes += static_cast<double>(t.bytes) * topo.multicast_penalty(t);
    }
    dt = probe.interval > 0
             ? probe.interval
             : span_bytes / topo.access_bytes_per_sec / 256.0;
  }
  const bool sampling = probe.timeline != nullptr && dt > 0;
  const auto sample = [&](double t, double inflight, double requeue_depth,
                          double utilization) {
    const double ts = probe.t0 + probe.scale * t;
    probe.timeline->Sample("des/inflight_flows", ts, inflight);
    probe.timeline->Sample("des/requeue_depth", ts, requeue_depth);
    probe.timeline->Sample("des/link_utilization", ts, utilization);
  };

  double now = 0;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto& t = log[i];
    double rate = topo.access_bytes_per_sec;
    if (topo.crosses_core(t)) {
      rate = std::min(rate, topo.core_bytes_per_sec);
      // A lone transmission still squeezes through the rack pipes: the
      // source rack's uplink once, the heaviest destination rack's
      // downlink at one copy per receiver there (one total when the
      // rack switch replicates). min against infinity is the identity,
      // so pipe-free topologies keep the original arithmetic.
      rate = std::min(rate, topo.rack_uplink_bytes_per_sec);
      if (topo.rack_downlink_bytes_per_sec < kInf) {
        const int src_rack = topo.rack_of(t.src);
        std::map<int, double> copies;
        for (const NodeId d : t.dsts) {
          const int r = topo.rack_of(d);
          if (r != src_rack) copies[r] += 1.0;
        }
        for (const auto& [rack, count] : copies) {
          (void)rack;
          const double w = topo.rack_aware_multicast ? 1.0 : count;
          rate = std::min(rate, topo.rack_downlink_bytes_per_sec / w);
        }
      }
    }
    CTS_CHECK_GT(rate, 0.0);
    const double dur =
        static_cast<double>(t.bytes) * topo.multicast_penalty(t) / rate;
    double start = now;
    double end = now + dur;
    // The shared medium serves one transmission at a time in log
    // order; a transmission touching the failed node that would
    // overlap the outage window loses its progress and restarts
    // (holding the medium — program order) once the node is back.
    const bool restarted = outage.active() && Touches(t, outage.node) &&
                           now < outage.end && end > outage.start;
    if (restarted) {
      start = outage.end;
      end = outage.end + dur;
    }
    if (sampling) {
      // Ticks inside the restart wait see an idle medium with the
      // victim queued; ticks inside [start, end] see it transmitting.
      while (next_tick < start) {
        sample(next_tick, 0, 1, 0);
        next_tick += dt;
      }
      std::vector<NodeId> dsts(t.dsts);
      std::sort(dsts.begin(), dsts.end());
      dsts.erase(std::unique(dsts.begin(), dsts.end()), dsts.end());
      const double links = 1.0 + static_cast<double>(dsts.size());
      const double utilization =
          std::min(1.0, links / static_cast<double>(topo.num_nodes));
      while (next_tick <= end) {
        sample(next_tick, 1, 0, utilization);
        next_tick += dt;
      }
    }
    if (stats != nullptr) {
      stats->flow_end[i] = end;
      stats->flow_start[i] = start;
      stats->delivered_payload_bytes += static_cast<double>(t.bytes);
      ++stats->flows_started;
      if (restarted) ++stats->flows_requeued;
    }
    now = end;
  }
  if (sampling) sample(now, 0, 0, 0);  // the drained end state
  return now;
}

// Every replay feeds the process-wide registry: flow admissions,
// outage re-queues, max-min recomputations, and a histogram of flow
// service times (replay-clock microseconds). Handles are resolved
// once — the per-replay cost is three relaxed adds plus one record per
// flow, nothing on the inner event loop.
void PublishReplayMetrics(const NetReplayStats& stats) {
  auto& registry = obs::MetricRegistry::Global();
  static obs::Counter& started = registry.counter("simscen/flows_started");
  static obs::Counter& requeued = registry.counter("simscen/flows_requeued");
  static obs::Counter& recomputations =
      registry.counter("simscen/maxmin_recomputations");
  static obs::Histogram& service =
      registry.histogram("simscen/flow_microseconds");
  started.add(stats.flows_started);
  requeued.add(stats.flows_requeued);
  recomputations.add(stats.maxmin_recomputations);
  for (std::size_t i = 0; i < stats.flow_end.size(); ++i) {
    const double start =
        i < stats.flow_start.size() ? stats.flow_start[i] : 0.0;
    service.record((stats.flow_end[i] - start) * 1e6);
  }
}

}  // namespace

double NetMakespan(const simnet::TransmissionLog& log,
                   const Topology& topology, simnet::Discipline discipline,
                   simnet::ReplayOrder order, const LinkOutage& outage,
                   NetReplayStats* stats, OrderingHook* hook,
                   const TimelineProbe& probe) {
  CTS_CHECK_GE(topology.num_nodes, 1);
  NetReplayStats local;
  if (stats == nullptr) stats = &local;
  *stats = NetReplayStats{};
  if (log.empty()) return 0;
  double makespan = 0;
  switch (discipline) {
    case simnet::Discipline::kSerial:
      // One transmission at a time in program order: no simultaneous
      // events, nothing for a hook to reorder.
      makespan = SerialNetMakespan(log, topology, outage, stats, probe);
      break;
    case simnet::Discipline::kParallelHalfDuplex:
    case simnet::Discipline::kParallelFullDuplex: {
      const bool fd = discipline == simnet::Discipline::kParallelFullDuplex;
      makespan =
          FlowSim(log, topology, fd, order, outage, hook).Run(stats, probe);
      break;
    }
  }
  PublishReplayMetrics(*stats);
  return makespan;
}

}  // namespace cts::simscen
