// Full-run discrete-event scenario replay.
//
// The engine replays one measured run — the per-stage compute records
// the engines emit (driver/run_result.h) plus the shuffle's
// simnet::TransmissionLog — under a Scenario: a ClusterProfile
// (heterogeneous speeds, stragglers) and a Topology (racks, access
// links, oversubscribed core). Stages execute barrier-synchronously,
// exactly as the node programs do: a stage starts when the previous
// one has finished on every node, compute stages end when the slowest
// (possibly straggling) node does, and the shuffle stage is priced by
// the topology-aware flow replay (simscen/netsim.h).
//
// On a homogeneous single-rack profile with no contention the replay
// degenerates to the analytics closed forms and to
// simnet::ReplayMakespan (tests/simscen_test.cc asserts 1e-9 relative
// agreement), so scenario sweeps and the paper tables share one
// pricing pipeline.
#pragma once

#include <string>
#include <vector>

#include "analytics/report.h"
#include "driver/run_result.h"
#include "mitigate/policy.h"
#include "simnet/schedule.h"
#include "simscen/netsim.h"
#include "simscen/scenario.h"

namespace cts::simscen {

// One scenario: who runs it, what network carries it, and how the
// cluster reacts to stragglers (src/mitigate; kNone replays the
// paper's wait-for-the-slowest barrier).
struct Scenario {
  ClusterProfile cluster;
  Topology topology;
  simnet::Discipline discipline = simnet::Discipline::kSerial;
  simnet::ReplayOrder order = simnet::ReplayOrder::kLogOrder;
  mitigate::MitigationPolicy mitigation;

  // The do-nothing scenario: homogeneous single-rack cluster, no
  // straggler, no mitigation. Replaying under it reproduces the
  // measured run (the degenerate case the tests pin to 1e-9).
  static Scenario Baseline(int num_nodes) {
    Scenario s;
    s.cluster = ClusterProfile::Homogeneous(num_nodes);
    s.topology = Topology::SingleRack(num_nodes);
    return s;
  }
};

// How a replayed stage reacts to the scenario.
enum class StageKind {
  kCompute,     // per-node seconds; speed multipliers, stragglers and
                // fail-stop outages apply
  kCollective,  // latency-bound collective (CodeGen): the same on
                // every node, unaffected by compute speed
  kNetwork,     // priced by the transmission-log flow replay
};

// Scenario-agnostic description of one run, built from an
// AlgorithmResult (cost-model priced, paper scale) or from measured
// ComputeEvents (CMR runs, executed scale).
struct ScenarioRun {
  struct Stage {
    std::string name;
    StageKind kind = StageKind::kCompute;
    // Baseline seconds per node; empty means zero. kCollective stages
    // carry one identical value per node.
    std::vector<double> node_seconds;
  };

  std::string algorithm;
  int num_nodes = 0;
  // Computation redundancy r of the run (1 for plain TeraSort). The
  // K-of-N coded-Map mitigation derives its straggler tolerance (r-1)
  // from it: the C(K, r) placement stores every Map input on r nodes.
  int redundancy = 1;
  std::vector<Stage> stages;  // in execution order
  simnet::TransmissionLog shuffle_log;
  // Maps replayed shuffle seconds to reported scale (the analytics
  // ShuffleScaling correction; 1.0 for as-executed replays).
  double shuffle_correction = 1.0;
};

// One stage's placement on the scenario timeline.
struct StageSpan {
  std::string name;
  double start = 0;
  double end = 0;                // max over nodes (barrier)
  std::vector<double> node_end;  // per-node completion times

  // Mitigation accounting (zero under mitigate::PolicyKind::kNone).
  double unmitigated_end = 0;   // what the plain barrier would wait for
  double wasted_seconds = 0;    // losing copies + abandoned partial work
  int speculative_copies = 0;
  int abandoned_nodes = 0;
  // Absolute time the speculative trigger fired (< 0: none fired).
  double trigger_at = -1;

  double seconds() const { return end - start; }
};

struct ScenarioOutcome {
  std::string algorithm;
  std::vector<StageSpan> spans;
  double makespan = 0;
  // Total compute burnt without contributing to the output across all
  // stages (see StageSpan::wasted_seconds).
  double wasted_seconds = 0;

  // When each shuffle transmission was on the wire, in scenario
  // seconds, aligned index-for-index with the run's shuffle_log
  // (filled for the first kNetwork stage; empty for shuffle-free
  // runs). The tracer turns these into per-flow slices at the times
  // the flow DES actually scheduled them.
  struct FlowSpan {
    double start = 0;
    double end = 0;
  };
  std::vector<FlowSpan> shuffle_flows;

  // Table-1-style row for analytics::BreakdownTable.
  StageBreakdown breakdown() const;
};

// Builds a paper-scale ScenarioRun from a sorting run: compute stages
// priced per node by the calibrated CostModel, CodeGen as a
// collective, Shuffle from the transmission log with the analytics
// scaling correction.
ScenarioRun BuildScenarioRun(const AlgorithmResult& result,
                             const CostModel& model, const RunScale& scale);

// Builds an executed-scale ScenarioRun from measured stage boundaries
// (any engine that records ComputeEvents — e.g. CMR, which has no
// NodeWork counters). The stage named "Shuffle" is replayed from
// `shuffle_log` AND carries its measured per-node durations: a
// pipelined stage (CMR's overlapped Map+Shuffle) ends when both the
// network and the slowest node's compute are done, so a straggler
// stretches it even though it is network-priced. Every other stage
// replays its measured per-node durations. `redundancy` is the run's
// r (for the coded-Map mitigation tolerance; 1 if inputs are not
// replicated).
ScenarioRun BuildScenarioRunFromEvents(
    const std::string& algorithm, int num_nodes,
    const std::vector<std::string>& stage_order, const ComputeLog& events,
    simnet::TransmissionLog shuffle_log, int redundancy = 1);

// Replays `run` under `scenario`. When `timeline` is non-null the
// network stages run with a TimelineProbe attached: the DES series
// (des/inflight_flows, des/requeue_depth, des/link_utilization) land
// in the timeline in scenario seconds, aligned with the outcome's
// stage spans. The replay itself is unchanged — the probe only reads.
ScenarioOutcome ReplayScenario(const ScenarioRun& run,
                               const Scenario& scenario,
                               obs::Timeline* timeline = nullptr);

// Convenience: build + replay a sorting run at paper scale.
ScenarioOutcome ReplayScenario(const AlgorithmResult& result,
                               const CostModel& model, const RunScale& scale,
                               const Scenario& scenario,
                               obs::Timeline* timeline = nullptr);

}  // namespace cts::simscen
