#include "simscen/scenario.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"

namespace cts::simscen {

ClusterProfile ClusterProfile::Homogeneous(int num_nodes) {
  CTS_CHECK_GE(num_nodes, 1);
  ClusterProfile p;
  p.speed.assign(static_cast<std::size_t>(num_nodes), 1.0);
  return p;
}

double ClusterProfile::speed_of(NodeId node) const {
  CTS_CHECK_GE(node, 0);
  if (speed.empty()) return 1.0;
  CTS_CHECK_LT(static_cast<std::size_t>(node), speed.size());
  const double s = speed[static_cast<std::size_t>(node)];
  CTS_CHECK_GT(s, 0.0);
  return s;
}

double ClusterProfile::straggler_factor(NodeId node, int stage_index) const {
  switch (straggler.kind) {
    case StragglerKind::kNone:
    case StragglerKind::kFailStop:
      return 1.0;
    case StragglerKind::kSlowNode:
      CTS_CHECK_GE(straggler.slowdown, 1.0);
      return node == straggler.node ? straggler.slowdown : 1.0;
    case StragglerKind::kShiftedExp: {
      CTS_CHECK_GE(straggler.shift, 0.0);
      CTS_CHECK_GE(straggler.mean, 0.0);
      // Factor is a pure function of (seed, node, stage): replays are
      // reproducible and independent of evaluation order.
      Xoshiro256 rng(Mix64(straggler.seed ^
                           (static_cast<std::uint64_t>(node) << 32) ^
                           static_cast<std::uint64_t>(stage_index)));
      const double u = rng.uniform();  // [0, 1)
      return straggler.shift - straggler.mean * std::log1p(-u);
    }
  }
  CTS_CHECK_MSG(false, "unreachable straggler kind");
  return 1.0;
}

Topology Topology::SingleRack(int num_nodes) {
  CTS_CHECK_GE(num_nodes, 1);
  Topology t;
  t.num_nodes = num_nodes;
  t.nodes_per_rack = 0;
  return t;
}

Topology Topology::Oversubscribed(int num_nodes, int nodes_per_rack,
                                  double factor) {
  CTS_CHECK_GE(num_nodes, 1);
  CTS_CHECK_GE(nodes_per_rack, 1);
  CTS_CHECK_GT(factor, 0.0);
  Topology t;
  t.num_nodes = num_nodes;
  t.nodes_per_rack = nodes_per_rack;
  t.core_bytes_per_sec =
      static_cast<double>(num_nodes) * t.access_bytes_per_sec / factor;
  return t;
}

Topology Topology::RackOversubscribed(int num_nodes, int nodes_per_rack,
                                      double core_factor, double up_factor,
                                      double down_factor) {
  Topology t = Oversubscribed(num_nodes, nodes_per_rack, core_factor);
  const double rack_access =
      static_cast<double>(nodes_per_rack) * t.access_bytes_per_sec;
  if (up_factor > 0) t.rack_uplink_bytes_per_sec = rack_access / up_factor;
  if (down_factor > 0) {
    t.rack_downlink_bytes_per_sec = rack_access / down_factor;
  }
  return t;
}

int Topology::rack_of(NodeId node) const {
  CTS_CHECK_GE(node, 0);
  CTS_CHECK_LT(node, num_nodes);
  if (nodes_per_rack <= 0 || nodes_per_rack >= num_nodes) return 0;
  return node / nodes_per_rack;
}

int Topology::num_racks() const {
  if (nodes_per_rack <= 0 || nodes_per_rack >= num_nodes) return 1;
  return (num_nodes + nodes_per_rack - 1) / nodes_per_rack;
}

bool Topology::crosses_core(const simnet::Transmission& t) const {
  const int src_rack = rack_of(t.src);
  for (const NodeId d : t.dsts) {
    if (rack_of(d) != src_rack) return true;
  }
  return false;
}

double Topology::multicast_penalty(const simnet::Transmission& t) const {
  double fanout = static_cast<double>(t.dsts.size());
  if (rack_aware_multicast) {
    // Distinct racks the stream reaches; the switch fans out locally.
    std::vector<int> racks;
    racks.reserve(t.dsts.size());
    for (const NodeId d : t.dsts) racks.push_back(rack_of(d));
    std::sort(racks.begin(), racks.end());
    racks.erase(std::unique(racks.begin(), racks.end()), racks.end());
    fanout = static_cast<double>(racks.size());
  }
  return fanout > 1.0
             ? 1.0 + multicast_log_coeff * std::log2(fanout)
             : 1.0;
}

double CrossRackBytes(const simnet::TransmissionLog& log,
                      const Topology& topology) {
  double total = 0;
  for (const auto& t : log) {
    const int src_rack = topology.rack_of(t.src);
    if (topology.rack_aware_multicast) {
      std::vector<int> racks;
      for (const NodeId d : t.dsts) {
        const int r = topology.rack_of(d);
        if (r != src_rack) racks.push_back(r);
      }
      std::sort(racks.begin(), racks.end());
      racks.erase(std::unique(racks.begin(), racks.end()), racks.end());
      total += static_cast<double>(t.bytes) *
               static_cast<double>(racks.size());
    } else {
      std::size_t copies = 0;
      for (const NodeId d : t.dsts) {
        if (topology.rack_of(d) != src_rack) ++copies;
      }
      total += static_cast<double>(t.bytes) * static_cast<double>(copies);
    }
  }
  return total;
}

}  // namespace cts::simscen
