#include "check/check.h"

#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "simmpi/eventlog.h"

namespace cts::check {

namespace {

std::string OutageLabel(const OutageSpec& o) {
  std::ostringstream os;
  os << "outage n" << o.node << " @" << o.start_frac << " for "
     << o.dur_frac;
  return os.str();
}

}  // namespace

CheckReport CheckJob(const job::JobSpec& spec, job::RunCache& cache,
                     const CheckOptions& opts) {
  // Must be armed before the one live execution this cell memoizes;
  // re-arming after a cached run has already executed without capture
  // cannot recover its events (the report then says so).
  simmpi::TransportRecorder::RequestCapture(true);
  const auto run = cache.Get(spec.algorithm, spec.config);

  CheckReport rep;
  rep.algorithm = run->algorithm;
  rep.transport_captured = !run->transport_events.empty();
  if (opts.analyze_transport) {
    rep.races = AnalyzeTransport(run->transport_events,
                                 spec.config.num_nodes);
  }

  const simscen::Scenario scenario = spec.scenario.value_or(
      simscen::Scenario::Baseline(spec.config.num_nodes));
  // The executed-scale shuffle log: determinism is a property of the
  // schedule structure, not of the reported scale, so no paper-records
  // correction applies here.
  const simnet::TransmissionLog& log = run->shuffle_log;
  rep.baseline_makespan =
      simscen::NetMakespan(log, scenario.topology, scenario.discipline,
                           scenario.order);

  ExploreOptions eopts;
  eopts.budget = opts.ordering_budget;

  CheckReport::Cell base;
  base.label = "no-outage";
  base.explore = ExploreOrderings(log, scenario.topology,
                                  scenario.discipline, scenario.order,
                                  simscen::LinkOutage{}, eopts);
  rep.cells.push_back(std::move(base));

  for (const OutageSpec& o : opts.outages) {
    simscen::LinkOutage outage;
    outage.node = o.node;
    outage.start = o.start_frac * rep.baseline_makespan;
    outage.end = (o.start_frac + o.dur_frac) * rep.baseline_makespan;
    CheckReport::Cell cell;
    cell.label = OutageLabel(o);
    cell.explore = ExploreOrderings(log, scenario.topology,
                                    scenario.discipline, scenario.order,
                                    outage, eopts);
    rep.cells.push_back(std::move(cell));
  }

  auto& reg = obs::MetricRegistry::Global();
  reg.counter("check/orderings_explored").add(rep.orderings_explored());
  reg.counter("check/races_found").add(rep.races.races.size());
  reg.counter("check/invariant_violations")
      .add(rep.invariant_violations());
  for (const auto& c : rep.cells) {
    reg.counter("check/decision_points").add(c.explore.decision_points);
  }
  return rep;
}

std::string Summarize(const CheckReport& report) {
  std::ostringstream os;
  os << report.algorithm << ": " << Summarize(report.races) << "\n";
  for (const auto& c : report.cells) {
    os << "  " << c.label << ": " << c.explore.decision_points
       << " decision points (max width " << c.explore.max_tie_width
       << "), " << c.explore.orderings_explored
       << " orderings explored (" << c.explore.outage_timings
       << " outage placements), " << c.explore.branches_pruned
       << " pruned (" << c.explore.branches_validated << " validated)";
    if (c.explore.certified()) {
      os << " — certified";
    } else {
      os << " — " << c.explore.violations.size() << " VIOLATION(S): "
         << c.explore.violations.front().invariant << " ("
         << c.explore.violations.front().detail << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace cts::check
