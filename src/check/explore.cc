#include "check/explore.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace cts::check {

namespace {

using simscen::LinkOutage;
using simscen::NetReplayStats;
using simscen::OrderingDecision;
using simscen::OrderingHook;
using simscen::Topology;

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

// One recorded (or prescribed) decision: the canonical candidate batch
// the simulator offered and the order it was processed in.
struct Choice {
  OrderingDecision::Kind kind = OrderingDecision::Kind::kCompletionTie;
  double time = 0;
  std::vector<std::size_t> candidates;
  std::vector<std::size_t> order;

  bool altered() const { return order != candidates; }
};

using Script = std::vector<Choice>;

std::string RenderChoice(std::size_t depth, const Choice& c) {
  std::ostringstream os;
  os << "d" << depth << " t=" << c.time << " "
     << (c.kind == OrderingDecision::Kind::kCompletionTie ? "tie"
                                                          : "requeue")
     << " [";
  for (std::size_t i = 0; i < c.candidates.size(); ++i) {
    os << (i ? " " : "") << c.candidates[i];
  }
  os << "] -> [";
  for (std::size_t i = 0; i < c.order.size(); ++i) {
    os << (i ? " " : "") << c.order[i];
  }
  os << "]";
  return os.str();
}

// Replays a decision prefix and records the full decision trace. The
// hook is only consulted for batches of >= 2 candidates, so depths
// align across runs that share a prefix.
class ScriptedHook : public OrderingHook {
 public:
  explicit ScriptedHook(const Script* script) : script_(script) {}

  std::vector<std::size_t> Choose(const OrderingDecision& d) override {
    Choice c;
    c.kind = d.kind;
    c.time = d.time;
    c.candidates = d.candidates;
    c.order = d.candidates;
    if (script_ != nullptr && depth_ < script_->size()) {
      const Choice& want = (*script_)[depth_];
      if (want.kind == d.kind && SameSet(want.candidates, d.candidates)) {
        c.order = want.order;
      } else if (mismatch_at_ == kNone) {
        // The same choices led to a different decision structure —
        // itself a determinism violation, reported by the caller.
        mismatch_at_ = depth_;
      }
    }
    trace_.push_back(c);
    ++depth_;
    return c.order;
  }

  const Script& trace() const { return trace_; }
  std::size_t mismatch_at() const { return mismatch_at_; }

 private:
  static bool SameSet(std::vector<std::size_t> a,
                      std::vector<std::size_t> b) {
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    return a == b;
  }

  const Script* script_;
  std::size_t depth_ = 0;
  std::size_t mismatch_at_ = kNone;
  Script trace_;
};

struct RunRec {
  double makespan = 0;
  NetReplayStats stats;
  Script trace;
  std::size_t mismatch_at = kNone;
};

// A frontier entry: replay `script` (whose last entry is the one new
// alteration), then continue canonically.
struct Branch {
  Script script;
  bool tie_only = true;  // every alteration so far permutes a tie batch
  std::size_t altered_depth = 0;
};

class Explorer {
 public:
  Explorer(const simnet::TransmissionLog& log, const Topology& topo,
           simnet::Discipline discipline, simnet::ReplayOrder order,
           const LinkOutage& outage, const ExploreOptions& opts)
      : log_(log), topo_(topo), discipline_(discipline), order_(order),
        outage_(outage), opts_(opts) {
    const bool fd =
        discipline == simnet::Discipline::kParallelFullDuplex;
    total_payload_ = 0;
    feet_.reserve(log.size());
    for (const auto& t : log) {
      total_payload_ += static_cast<double>(t.bytes);
      Foot f;
      f.src = t.src;
      f.res.push_back(fd ? 2 * t.src : t.src);
      for (const NodeId d : t.dsts) f.res.push_back(fd ? 2 * d + 1 : d);
      std::sort(f.res.begin(), f.res.end());
      f.res.erase(std::unique(f.res.begin(), f.res.end()), f.res.end());
      feet_.push_back(std::move(f));
    }
  }

  ExploreReport Run() {
    ExploreReport rep;
    const RunRec base = RunOne(nullptr);
    base_ = &base;
    rep.baseline_makespan = base.makespan;
    for (const Choice& c : base.trace) {
      if (c.candidates.size() >= 2) {
        ++rep.decision_points;
        rep.max_tie_width = std::max(rep.max_tie_width,
                                     c.candidates.size());
      }
    }
    // The canonical run itself must conserve bytes and lose no flow.
    Judge(base, Branch{}, rep, /*shrinkable=*/false);

    Expand(base.trace, 0, /*tie_only=*/true);
    std::size_t runs = 0;
    std::size_t timing_i = 0;
    while (runs < opts_.budget) {
      Branch br;
      bool from_dependent = false;
      if (!stack_.empty()) {
        br = std::move(stack_.back());
        stack_.pop_back();
        from_dependent = true;
      } else if (opts_.validate_pruned && !vqueue_.empty()) {
        br = std::move(vqueue_.front());
        vqueue_.pop_front();
      } else if (outage_.active()) {
        // Frontier exhausted: spend what's left of the budget sweeping
        // the outage window across the schedule. The outage event's
        // position in the event order is an adversarial scheduling
        // choice too, and conservation + no-lost-flow must hold at
        // every placement.
        ++timing_i;
        const double dur = outage_.end - outage_.start;
        const double span = std::max(base.makespan, outage_.end);
        LinkOutage shifted = outage_;
        shifted.start = span * static_cast<double>(timing_i) /
                        static_cast<double>(opts_.budget + 1);
        shifted.end = shifted.start + dur;
        const RunRec rec = RunOne(nullptr, &shifted);
        ++runs;
        ++rep.outage_timings;
        const std::string bad = Violates(rec, /*tie_only=*/false);
        if (!bad.empty()) {
          OrderingViolation v;
          v.invariant = bad;
          std::ostringstream os;
          os << "invariant '" << bad << "' violated with the outage "
             << "shifted to [" << shifted.start << ", " << shifted.end
             << ") (delivered " << rec.stats.delivered_payload_bytes
             << " of " << total_payload_ << " bytes)";
          v.detail = os.str();
          std::ostringstream line;
          line << "outage n" << shifted.node << " moved to ["
               << shifted.start << ", " << shifted.end << ")";
          v.schedule.push_back(line.str());
          rep.violations.push_back(std::move(v));
        }
        continue;
      } else {
        break;
      }
      const RunRec rec = RunOne(&br.script);
      ++runs;
      Judge(rec, br, rep, /*shrinkable=*/true);
      if (from_dependent) {
        Expand(rec.trace, br.script.size(), br.tie_only);
      } else {
        ++rep.branches_validated;
      }
    }
    rep.orderings_explored = runs + shrink_runs_;
    base_ = nullptr;
    return rep;
  }

 private:
  struct Foot {
    NodeId src = 0;
    std::vector<int> res;  // exclusive access links (dedup, sorted)
  };

  RunRec RunOne(const Script* script,
                const LinkOutage* outage_override = nullptr) {
    ScriptedHook hook(script);
    RunRec rec;
    rec.makespan = simscen::NetMakespan(
        log_, topo_, discipline_, order_,
        outage_override != nullptr ? *outage_override : outage_,
        &rec.stats, &hook);
    rec.trace = hook.trace();
    rec.mismatch_at = hook.mismatch_at();
    return rec;
  }

  // Would processing `a` before `b` (or vice versa) fail to commute?
  // Completion ties and re-queues interact only through the exclusive
  // link state (fluid shares are recomputed after the whole batch);
  // per-sender replay adds the sender queue as a shared structure on
  // re-queues.
  bool Dependent(std::size_t a, std::size_t b,
                 OrderingDecision::Kind kind) const {
    const Foot& fa = feet_[a];
    const Foot& fb = feet_[b];
    if (kind == OrderingDecision::Kind::kOutageRequeue &&
        order_ == simnet::ReplayOrder::kPerSender && fa.src == fb.src) {
      return true;
    }
    // Sorted-merge intersection test.
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < fa.res.size() && j < fb.res.size()) {
      if (fa.res[i] == fb.res[j]) return true;
      if (fa.res[i] < fb.res[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    return false;
  }

  // Generates every single-promotion alternative of `trace` at depths
  // >= `from` (the DPOR frontier step): candidate j moves to the front
  // of its batch. Alternatives whose promoted flow is independent of
  // everything it overtakes provably commute — they go to the
  // validation queue instead of the dependent stack.
  void Expand(const Script& trace, std::size_t from, bool tie_only) {
    for (std::size_t d = from; d < trace.size(); ++d) {
      const Choice& c = trace[d];
      const std::size_t w = c.candidates.size();
      for (std::size_t j = 1; j < w; ++j) {
        Choice alt = c;
        alt.order.clear();
        alt.order.push_back(c.candidates[j]);
        for (std::size_t k = 0; k < w; ++k) {
          if (k != j) alt.order.push_back(c.candidates[k]);
        }
        bool dep = false;
        for (std::size_t k = 0; k < j && !dep; ++k) {
          dep = Dependent(c.candidates[j], c.candidates[k], c.kind);
        }
        Branch br;
        br.script.assign(trace.begin(),
                         trace.begin() + static_cast<std::ptrdiff_t>(d));
        br.script.push_back(std::move(alt));
        br.tie_only =
            tie_only && c.kind == OrderingDecision::Kind::kCompletionTie;
        br.altered_depth = d;
        if (dep) {
          if (stack_.size() < 16 * opts_.budget) {
            stack_.push_back(std::move(br));
          }
        } else {
          ++pruned_;
          if (vqueue_.size() < 16 * opts_.budget) {
            vqueue_.push_back(std::move(br));
          }
        }
      }
    }
  }

  // Names the first violated invariant, or "" when the run is clean.
  std::string Violates(const RunRec& rec, bool tie_only) const {
    if (rec.mismatch_at != kNone) return "decision_replay";
    if (rec.stats.delivered_payload_bytes != total_payload_) {
      return "byte_conservation";
    }
    if (rec.stats.flow_end.size() != log_.size()) return "lost_flow";
    for (std::size_t i = 0; i < log_.size(); ++i) {
      if (!(rec.stats.flow_end[i] > 0) && log_[i].bytes > 0) {
        return "lost_flow";
      }
    }
    if (tie_only && base_ != nullptr) {
      if (rec.makespan != base_->makespan ||
          rec.stats.flow_end != base_->stats.flow_end) {
        return "tie_invariance";
      }
    }
    return "";
  }

  void Judge(const RunRec& rec, const Branch& br, ExploreReport& rep,
             bool shrinkable) {
    const std::string bad = Violates(rec, br.tie_only);
    if (bad.empty()) return;
    Branch minimal = br;
    if (shrinkable) minimal = Shrink(br, bad);
    OrderingViolation v;
    v.invariant = bad;
    v.divergence_depth = kNone;
    for (std::size_t d = 0; d < minimal.script.size(); ++d) {
      if (!minimal.script[d].altered()) continue;
      if (v.divergence_depth == kNone) v.divergence_depth = d;
      v.schedule.push_back(RenderChoice(d, minimal.script[d]));
    }
    if (v.divergence_depth == kNone) v.divergence_depth = 0;
    std::ostringstream os;
    os << "invariant '" << bad << "' violated (makespan " << rec.makespan
       << " vs baseline " << rep.baseline_makespan << ", delivered "
       << rec.stats.delivered_payload_bytes << " of " << total_payload_
       << " bytes, " << v.schedule.size() << " altered decision(s))";
    v.detail = os.str();
    rep.violations.push_back(std::move(v));
  }

  // Minimizes a violating branch: re-run with only the first m of its
  // alterations (m growing) and keep the shortest script that still
  // violates. Linear, budget-capped; falls back to the full branch.
  Branch Shrink(const Branch& br, const std::string& invariant) {
    std::vector<std::size_t> altered;
    for (std::size_t d = 0; d < br.script.size(); ++d) {
      if (br.script[d].altered()) altered.push_back(d);
    }
    if (altered.size() <= 1) return br;
    for (std::size_t m = 1; m < altered.size(); ++m) {
      if (shrink_runs_ >= opts_.shrink_budget) break;
      Branch cand;
      cand.script.assign(
          br.script.begin(),
          br.script.begin() + static_cast<std::ptrdiff_t>(altered[m - 1] + 1));
      cand.tie_only = br.tie_only;
      cand.altered_depth = altered[m - 1];
      const RunRec rec = RunOne(&cand.script);
      ++shrink_runs_;
      if (Violates(rec, cand.tie_only) == invariant) return cand;
    }
    return br;
  }

  const simnet::TransmissionLog& log_;
  const Topology& topo_;
  const simnet::Discipline discipline_;
  const simnet::ReplayOrder order_;
  const LinkOutage outage_;
  const ExploreOptions opts_;
  double total_payload_ = 0;
  std::vector<Foot> feet_;
  const RunRec* base_ = nullptr;
  std::vector<Branch> stack_;
  std::deque<Branch> vqueue_;
  std::size_t pruned_ = 0;
  std::size_t shrink_runs_ = 0;

 public:
  std::size_t pruned() const { return pruned_; }
};

}  // namespace

ExploreReport ExploreOrderings(const simnet::TransmissionLog& log,
                               const simscen::Topology& topology,
                               simnet::Discipline discipline,
                               simnet::ReplayOrder order,
                               const simscen::LinkOutage& outage,
                               const ExploreOptions& opts) {
  Explorer explorer(log, topology, discipline, order, outage, opts);
  ExploreReport rep = explorer.Run();
  rep.branches_pruned = explorer.pruned();
  return rep;
}

}  // namespace cts::check
