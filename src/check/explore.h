// DPOR-style exploration of FlowSim's ordering decision space.
//
// The flow DES (simscen/netsim.h) makes two kinds of scheduling
// choices that event times do not force: the processing order of a
// simultaneous-completion batch, and the re-queue order of an outage's
// victims. The explorer drives NetMakespan through its OrderingHook
// seam in a bounded depth-first search over alternative orders —
// stateless model checking in the SimGrid DFSExplorer tradition: each
// branch replays a recorded decision prefix and promotes one candidate
// ahead of the ones canonically before it, then continues canonically.
//
// Sleep-set-style pruning: promoting a candidate over peers whose
// resource footprints it does not intersect (no shared access link or
// per-sender queue, for re-queues) provably commutes, so those
// branches are pruned from the dependent search. Because "provably"
// deserves checking, leftover budget re-runs pruned branches as
// validation — their results must be bit-for-bit identical.
//
// Invariants asserted on every explored ordering:
//   * byte conservation — delivered payload equals the log total
//     (exact: byte counts are integer-valued doubles, so the sum is
//     order-independent);
//   * no lost flow — every log entry is admitted and completes, under
//     any outage timing (leftover budget sweeps the outage window
//     across the whole schedule: the outage event's position in the
//     event order is itself an adversarial scheduling choice);
//   * tie invariance — orderings that only permute completion ties
//     reproduce the canonical makespan and per-flow completion times
//     BITWISE (outage re-queue orders are real scheduling freedom and
//     may legally change the makespan, so only the first two apply).
//
// A violation is reduced to the shortest divergent ordering: the
// smallest prefix of the violating branch's alterations that still
// trips the invariant.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "simnet/schedule.h"
#include "simnet/transmission_log.h"
#include "simscen/netsim.h"
#include "simscen/scenario.h"

namespace cts::check {

struct ExploreOptions {
  // Alternative orderings to actually run (the DFS budget; shrink and
  // validation runs draw from the same pot).
  std::size_t budget = 128;
  // Re-run pruned (independent) branches with leftover budget and
  // assert bitwise identity — a check on the pruning theory itself.
  bool validate_pruned = true;
  // Extra runs allowed to minimize a violation.
  std::size_t shrink_budget = 32;
};

struct OrderingViolation {
  std::string invariant;  // "byte_conservation", "lost_flow",
                          // "tie_invariance", "decision_replay",
                          // "pruned_branch_diverged"
  std::string detail;
  // The shortest divergent ordering, one line per altered decision:
  // "t=<time> tie|requeue [canonical] -> [processed]".
  std::vector<std::string> schedule;
  std::size_t divergence_depth = 0;  // decision index of the first alteration
};

struct ExploreReport {
  double baseline_makespan = 0;
  std::size_t decision_points = 0;  // baseline decisions with >= 2 candidates
  std::size_t max_tie_width = 0;    // largest candidate batch seen
  std::size_t orderings_explored = 0;  // alternative schedules run
  std::size_t branches_pruned = 0;     // independence-pruned branches
  std::size_t branches_validated = 0;  // pruned branches re-run as checks
  std::size_t outage_timings = 0;      // shifted-outage placements checked
  std::vector<OrderingViolation> violations;

  bool certified() const { return violations.empty(); }
};

// Explores alternative DES orderings of `log` on `topology` under the
// given discipline/order/outage. Serial discipline has no simultaneous
// events; the report then certifies trivially with 0 decision points.
ExploreReport ExploreOrderings(const simnet::TransmissionLog& log,
                               const simscen::Topology& topology,
                               simnet::Discipline discipline,
                               simnet::ReplayOrder order,
                               const simscen::LinkOutage& outage,
                               const ExploreOptions& opts = {});

}  // namespace cts::check
