// Happens-before matching-race detection over a transport event log.
//
// Input: the merged, stamp-ordered send/post/match stream a
// TransportRecorder captured (simmpi/eventlog.h) — or a hand-built
// synthetic log (tests, the injected-race regression). The analysis
// rebuilds vector clocks from two edge sources:
//
//   * program order: events by the same performer, in stamp order
//     (each node program is one thread);
//   * message edges: the kSend that delivered arrival index i on a key
//     happens-before the kMatch that redeemed ticket i on that key
//     (posting-order matching pairs them exactly).
//
// Collectives need no special casing: barriers, bcasts and gathers all
// flow through mailbox deliveries on reserved negative tags, so their
// synchronization arrives as ordinary message edges.
//
// A *matching race* is a pair of operations on one match key whose
// order the happens-before relation does not fix, i.e. the recorded
// schedule is not the unique linearization:
//
//   * kSendSend — two concurrent sends on the same (dst, comm, src,
//     tag) key (or, with a wildcard post, on the same (dst, comm, tag)
//     from different sources): MPI matching may bind either to the
//     earlier posted receive.
//   * kRecvRecv — two concurrent receive postings on one key: the
//     tickets could have been drawn in either order.
//
// Because live Mailbox keys always name their source and each key's
// sends/posts come from a single performer thread, a real run should
// certify — AnalyzeTransport then reports the determinism certificate
// (0 races: the recorded schedule is the unique linearization modulo
// commuting independent operations). The wildcard path
// (src == simmpi::kAnySource) exists so the detector is testably
// non-vacuous.
//
// On a race the report carries the minimal racy pair (earliest by
// stamp) plus two witness schedules: complete linearizations of the
// happens-before partial order that realize the pair in both orders.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "simmpi/eventlog.h"

namespace cts::check {

struct MatchingRace {
  enum class Kind { kSendSend, kRecvRecv };
  Kind kind = Kind::kSendSend;
  simmpi::TransportEvent a;  // earlier by stamp
  simmpi::TransportEvent b;
  std::string description;
  // Linearizations (event stamps in schedule order) consistent with
  // happens-before: `witness_recorded` realizes a before b (the
  // recorded outcome), `witness_flipped` realizes b before a. Filled
  // for the first race found (the minimal pair).
  std::vector<std::uint64_t> witness_recorded;
  std::vector<std::uint64_t> witness_flipped;
};

struct RaceReport {
  std::size_t events = 0;
  std::size_t sends = 0;
  std::size_t posts = 0;
  std::size_t matches = 0;
  std::size_t keys = 0;        // distinct match keys observed
  std::size_t hb_edges = 0;    // message edges (send -> match)
  std::vector<MatchingRace> races;

  // True when the analysis ran over a non-empty log and found the
  // recorded schedule to be the unique linearization.
  bool certified() const { return events > 0 && races.empty(); }
};

// Analyzes a transport log. `num_nodes` bounds the vector-clock width;
// performers and endpoints must be < num_nodes (kAnySource excepted).
RaceReport AnalyzeTransport(const simmpi::TransportLog& log, int num_nodes);

// Renders a one-line human summary ("determinism certificate: ..." or
// the minimal racy pair).
std::string Summarize(const RaceReport& report);

}  // namespace cts::check
