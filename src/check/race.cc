#include "check/race.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "common/check.h"

namespace cts::check {

namespace {

using simmpi::CommId;
using simmpi::Tag;
using simmpi::TransportEvent;
using simmpi::TransportEventKind;
using simmpi::TransportLog;

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

// Full match key: (destination mailbox, communicator, source, tag).
using MatchKey = std::tuple<NodeId, CommId, NodeId, Tag>;
// Wildcard-compatible key: a post with src == kAnySource matches sends
// from every source on (destination, communicator, tag).
using AnyKey = std::tuple<NodeId, CommId, Tag>;

MatchKey KeyOf(const TransportEvent& e) {
  return {e.dst, e.comm, e.src, e.tag};
}

const char* KindName(TransportEventKind k) {
  switch (k) {
    case TransportEventKind::kSend: return "send";
    case TransportEventKind::kPost: return "post";
    case TransportEventKind::kMatch: return "match";
  }
  return "?";
}

std::string Describe(const TransportEvent& e) {
  std::ostringstream os;
  os << KindName(e.kind) << "#" << e.stamp << " by n" << e.performer
     << " on (dst=n" << e.dst << ", comm=" << e.comm << ", src=";
  if (e.src == simmpi::kAnySource) {
    os << "ANY";
  } else {
    os << "n" << e.src;
  }
  os << ", tag=" << e.tag << ", idx=" << e.index << ")";
  return os.str();
}

// The whole analysis state for one log, so the witness builder can
// reuse the edge structure the vector-clock pass derived.
class Analysis {
 public:
  Analysis(const TransportLog& input, int num_nodes)
      : width_(static_cast<std::size_t>(num_nodes)) {
    log_ = input;
    std::sort(log_.begin(), log_.end(),
              [](const TransportEvent& a, const TransportEvent& b) {
                return a.stamp < b.stamp;
              });
  }

  RaceReport Run() {
    RaceReport rep;
    rep.events = log_.size();
    if (log_.empty()) return rep;
    ComputeClocks(rep);
    FindRaces(rep);
    if (!rep.races.empty()) BuildWitnesses(rep.races.front());
    return rep;
  }

 private:
  // One vector-clock pass in stamp order: program order advances each
  // performer's clock; every resolvable match joins the clock of the
  // send whose arrival index its ticket redeems.
  void ComputeClocks(RaceReport& rep) {
    vc_.assign(log_.size(), {});
    match_src_.assign(log_.size(), kNone);
    std::map<std::tuple<NodeId, CommId, NodeId, Tag, std::uint64_t>,
             std::size_t>
        send_at;
    std::vector<std::vector<std::uint64_t>> clock(
        width_, std::vector<std::uint64_t>(width_, 0));
    std::set<MatchKey> keys;
    for (std::size_t i = 0; i < log_.size(); ++i) {
      const TransportEvent& e = log_[i];
      CTS_CHECK_GE(e.performer, 0);
      CTS_CHECK_LT(e.performer, static_cast<NodeId>(width_));
      auto& c = clock[static_cast<std::size_t>(e.performer)];
      switch (e.kind) {
        case TransportEventKind::kSend:
          ++rep.sends;
          send_at[{e.dst, e.comm, e.src, e.tag, e.index}] = i;
          sends_by_key_[KeyOf(e)].push_back(i);
          sends_by_any_[{e.dst, e.comm, e.tag}].push_back(i);
          keys.insert(KeyOf(e));
          break;
        case TransportEventKind::kPost:
          ++rep.posts;
          posts_by_key_[KeyOf(e)].push_back(i);
          if (e.src == simmpi::kAnySource) {
            wildcard_posts_[{e.dst, e.comm, e.tag}].push_back(i);
          }
          keys.insert(KeyOf(e));
          break;
        case TransportEventKind::kMatch: {
          ++rep.matches;
          const auto it =
              send_at.find({e.dst, e.comm, e.src, e.tag, e.index});
          if (it != send_at.end()) {
            match_src_[i] = it->second;
            ++rep.hb_edges;
            const auto& sv = vc_[it->second];
            for (std::size_t k = 0; k < width_; ++k) {
              c[k] = std::max(c[k], sv[k]);
            }
          }
          break;
        }
      }
      c[static_cast<std::size_t>(e.performer)] += 1;
      vc_[i] = c;
    }
    rep.keys = keys.size();
  }

  // x happens-before y (assumes stamp(x) < stamp(y)) iff y's clock has
  // absorbed x's tick of x's performer component.
  bool HappensBefore(std::size_t x, std::size_t y) const {
    const auto p = static_cast<std::size_t>(log_[x].performer);
    return vc_[y][p] >= vc_[x][p];
  }

  bool Concurrent(std::size_t x, std::size_t y) const {
    if (log_[x].stamp > log_[y].stamp) std::swap(x, y);
    return !HappensBefore(x, y);
  }

  void AddRace(RaceReport& rep, MatchingRace::Kind kind, std::size_t x,
               std::size_t y, const std::string& why) {
    if (log_[x].stamp > log_[y].stamp) std::swap(x, y);
    MatchingRace race;
    race.kind = kind;
    race.a = log_[x];
    race.b = log_[y];
    race.description =
        why + ": " + Describe(log_[x]) + "  ||  " + Describe(log_[y]);
    rep.races.push_back(std::move(race));
  }

  void FindRaces(RaceReport& rep) {
    // Sends on one fully named key must form a happens-before chain in
    // arrival order; a concurrent consecutive pair means the arrival
    // indices — and hence which posted receive each send feeds — could
    // have come out the other way. Consecutive pairs suffice: chained
    // orderings compose transitively.
    for (auto& [key, sends] : sends_by_key_) {
      SortByIndex(sends);
      for (std::size_t j = 0; j + 1 < sends.size(); ++j) {
        if (Concurrent(sends[j], sends[j + 1])) {
          AddRace(rep, MatchingRace::Kind::kSendSend, sends[j],
                  sends[j + 1],
                  "concurrent sends on one match key");
        }
      }
    }
    // Receive postings on one key likewise: two concurrent posts could
    // have drawn their tickets in either order.
    for (auto& [key, posts] : posts_by_key_) {
      SortByIndex(posts);
      for (std::size_t j = 0; j + 1 < posts.size(); ++j) {
        if (Concurrent(posts[j], posts[j + 1])) {
          AddRace(rep, MatchingRace::Kind::kRecvRecv, posts[j],
                  posts[j + 1],
                  "concurrent receive postings on one match key");
        }
      }
    }
    // A wildcard post widens the candidate set to every source on
    // (dst, comm, tag): any two concurrent sends there are ambiguous,
    // whatever their named keys. Pairwise, because sends of different
    // sources carry no per-key arrival order to chain through.
    for (auto& [key, posts] : wildcard_posts_) {
      (void)posts;
      const auto it = sends_by_any_.find(key);
      if (it == sends_by_any_.end()) continue;
      const auto& sends = it->second;
      for (std::size_t x = 0; x < sends.size(); ++x) {
        for (std::size_t y = x + 1; y < sends.size(); ++y) {
          if (log_[sends[x]].src == log_[sends[y]].src) continue;
          if (Concurrent(sends[x], sends[y])) {
            AddRace(rep, MatchingRace::Kind::kSendSend, sends[x],
                    sends[y],
                    "concurrent sends visible to a wildcard receive");
          }
        }
      }
    }
    std::sort(rep.races.begin(), rep.races.end(),
              [](const MatchingRace& a, const MatchingRace& b) {
                return std::max(a.a.stamp, a.b.stamp) <
                       std::max(b.a.stamp, b.b.stamp);
              });
  }

  void SortByIndex(std::vector<std::size_t>& events) const {
    std::sort(events.begin(), events.end(),
              [this](std::size_t a, std::size_t b) {
                return log_[a].index < log_[b].index;
              });
  }

  // Two complete linearizations of the happens-before partial order
  // for the minimal racy pair: the recorded schedule (min-stamp
  // greedy) and one where the pair commutes (the earlier event is
  // deferred until the later one has been scheduled — always possible,
  // the pair being concurrent).
  void BuildWitnesses(MatchingRace& race) {
    std::size_t a_pos = kNone;
    std::size_t b_pos = kNone;
    for (std::size_t i = 0; i < log_.size(); ++i) {
      if (log_[i].stamp == race.a.stamp) a_pos = i;
      if (log_[i].stamp == race.b.stamp) b_pos = i;
    }
    CTS_CHECK(a_pos != kNone && b_pos != kNone);

    std::vector<std::vector<std::size_t>> adj(log_.size());
    std::vector<int> indeg(log_.size(), 0);
    std::vector<std::size_t> last(width_, kNone);
    for (std::size_t i = 0; i < log_.size(); ++i) {
      const auto p = static_cast<std::size_t>(log_[i].performer);
      if (last[p] != kNone) {
        adj[last[p]].push_back(i);
        ++indeg[i];
      }
      last[p] = i;
      if (match_src_[i] != kNone) {
        adj[match_src_[i]].push_back(i);
        ++indeg[i];
      }
    }

    const auto linearize = [&](std::size_t defer, std::size_t until) {
      std::vector<std::uint64_t> out;
      out.reserve(log_.size());
      std::vector<int> deg = indeg;
      std::set<std::pair<std::uint64_t, std::size_t>> ready;
      for (std::size_t i = 0; i < log_.size(); ++i) {
        if (deg[i] == 0) ready.insert({log_[i].stamp, i});
      }
      bool until_done = until == kNone;
      while (!ready.empty()) {
        auto it = ready.begin();
        if (!until_done && it->second == defer) {
          ++it;
          // `until` never depends on `defer` (they are concurrent), so
          // some other event is always schedulable first.
          CTS_CHECK(it != ready.end());
        }
        const std::size_t i = it->second;
        ready.erase(it);
        out.push_back(log_[i].stamp);
        if (i == until) until_done = true;
        for (const std::size_t j : adj[i]) {
          if (--deg[j] == 0) ready.insert({log_[j].stamp, j});
        }
      }
      CTS_CHECK_EQ(out.size(), log_.size());
      return out;
    };
    race.witness_recorded = linearize(kNone, kNone);
    race.witness_flipped = linearize(a_pos, b_pos);
  }

  const std::size_t width_;
  TransportLog log_;
  std::vector<std::vector<std::uint64_t>> vc_;
  std::vector<std::size_t> match_src_;
  std::map<MatchKey, std::vector<std::size_t>> sends_by_key_;
  std::map<MatchKey, std::vector<std::size_t>> posts_by_key_;
  std::map<AnyKey, std::vector<std::size_t>> sends_by_any_;
  std::map<AnyKey, std::vector<std::size_t>> wildcard_posts_;
};

}  // namespace

RaceReport AnalyzeTransport(const simmpi::TransportLog& log,
                            int num_nodes) {
  CTS_CHECK_GE(num_nodes, 1);
  return Analysis(log, num_nodes).Run();
}

std::string Summarize(const RaceReport& report) {
  std::ostringstream os;
  if (report.events == 0) {
    os << "transport: no events captured (capture off or no run)";
  } else if (report.certified()) {
    os << "determinism certificate: " << report.events << " events, "
       << report.keys << " match keys, " << report.hb_edges
       << " message edges — the recorded schedule is the unique "
          "linearization";
  } else {
    os << report.races.size() << " matching race(s); minimal pair: "
       << report.races.front().description;
  }
  return os.str();
}

}  // namespace cts::check
