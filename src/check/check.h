// CheckJob: the one-call determinism check for a job cell.
//
// Runs (or reuses, via the RunCache) the live thread-harness execution
// for a JobSpec with transport capture armed, then runs both analyses
// over it:
//
//   * the happens-before matching-race detection (check/race.h) on the
//     captured send/post/match stream;
//   * the DPOR-style ordering exploration (check/explore.h) on the
//     run's shuffle transmission log under the spec's scenario network
//     — once without an outage and once per requested OutageSpec.
//
// Outage windows are given as fractions of the cell's canonical
// no-outage makespan, so one grid flag spans configurations whose
// absolute makespans differ by orders of magnitude.
//
// Counters check/orderings_explored, check/races_found,
// check/invariant_violations and check/decision_points are published
// to the process obs::MetricRegistry.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "check/explore.h"
#include "check/race.h"
#include "job/job.h"

namespace cts::check {

// An outage parameterized relative to the cell's baseline makespan M:
// `node`'s links freeze during [start_frac*M, (start_frac+dur_frac)*M).
struct OutageSpec {
  NodeId node = 0;
  double start_frac = 0.25;
  double dur_frac = 0.25;
};

struct CheckOptions {
  // Per-cell DES exploration budget (ExploreOptions::budget).
  std::size_t ordering_budget = 128;
  // Outage timings to explore, each a separate cell on top of the
  // always-run no-outage cell.
  std::vector<OutageSpec> outages;
  // Skip the transport race analysis (the explore cells still run);
  // grids dedup the analysis per (algorithm, config) key this way.
  bool analyze_transport = true;
};

struct CheckReport {
  struct Cell {
    std::string label;  // "no-outage" or "outage n0 @0.25 for 0.25"
    ExploreReport explore;
  };

  std::string algorithm;
  bool transport_captured = false;  // events > 0 in the analyzed log
  RaceReport races;
  double baseline_makespan = 0;  // canonical no-outage DES makespan
  std::vector<Cell> cells;

  std::size_t orderings_explored() const {
    std::size_t n = 0;
    for (const auto& c : cells) n += c.explore.orderings_explored;
    return n;
  }
  std::size_t invariant_violations() const {
    std::size_t n = 0;
    for (const auto& c : cells) n += c.explore.violations.size();
    return n;
  }
  bool certified() const {
    return races.races.empty() && invariant_violations() == 0;
  }
};

// Checks one job cell. Arms transport capture (process-global; stays
// armed), fetches the cell's live run through `cache`, analyzes it.
// The network (topology/discipline/order) comes from spec.scenario,
// defaulting to simscen::Scenario::Baseline. The serial discipline has
// no ordering freedom, so specs using it get trivially-certified
// explore cells (0 decision points).
CheckReport CheckJob(const job::JobSpec& spec, job::RunCache& cache,
                     const CheckOptions& opts = {});

// Renders the report as human-readable lines (one per analysis/cell).
std::string Summarize(const CheckReport& report);

}  // namespace cts::check
