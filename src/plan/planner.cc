#include "plan/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <set>

#include "common/check.h"
#include "job/matrix.h"
#include "job/parse.h"
#include "job/registry.h"
#include "mitigate/policy.h"
#include "obs/metrics.h"

namespace cts::plan {

namespace {

// Axis entries are user input (CLI flag lists); a repeated spec must
// not abort deep inside RunMatrix's duplicate-label check.
template <typename T>
std::vector<T> Dedupe(const std::vector<T>& in) {
  std::vector<T> out;
  std::set<T> seen;
  for (const T& v : in) {
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

bool HonorsRedundancy(const std::string& algorithm) {
  const job::AlgorithmInfo* info = job::Find(algorithm);
  if (info == nullptr) return true;  // unknown name fails later, loudly
  return std::find(info->knobs.begin(), info->knobs.end(), "redundancy") !=
         info->knobs.end();
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string PlanRow::label() const {
  return algorithm + "@K" + std::to_string(num_nodes) + "/" + topology +
         "/" + policy + "/" + instance;
}

double SampleQuantile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  std::sort(values.begin(), values.end());
  // Nearest-rank: the smallest value with at least ceil(q*n) samples
  // at or below it; q = 0 is the minimum.
  const double n = static_cast<double>(values.size());
  std::size_t rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank < 1) rank = 1;
  if (rank > values.size()) rank = values.size();
  return values[rank - 1];
}

PlanResult RunPlan(const PlanAxes& axes, const PlanQuery& query,
                   job::RunCache& cache) {
  PlanResult result;
  result.quantile = query.quantile;
  const auto fail = [&result](std::string msg) {
    result.error = std::move(msg);
    return result;
  };

  const std::vector<std::string> algorithms = Dedupe(axes.algorithms);
  const std::vector<int> redundancies = Dedupe(axes.redundancies);
  const std::vector<int> node_counts = Dedupe(axes.node_counts);
  std::vector<std::string> topologies = Dedupe(axes.topologies);
  std::vector<std::string> stragglers = Dedupe(axes.stragglers);
  std::vector<std::string> policies = Dedupe(axes.policies);
  std::vector<InstanceProfile> instances = axes.instances;
  if (query.sort_key != "usd" && query.sort_key != "makespan" &&
      query.sort_key != "egress") {
    return fail("unknown sort key '" + query.sort_key +
                "' (usd | makespan | egress)");
  }
  if (algorithms.empty()) return fail("plan needs at least one algorithm");
  if (redundancies.empty()) return fail("plan needs a redundancy axis");
  if (node_counts.empty()) return fail("plan needs a node-count axis");
  if (topologies.empty()) topologies.push_back("");
  if (stragglers.empty()) stragglers.push_back("none");
  if (policies.empty()) policies.push_back("none");
  if (instances.empty()) instances.push_back(InstanceProfile{});

  std::string parse_error;
  const auto discipline = job::ParseDiscipline(axes.discipline, &parse_error);
  if (!discipline.has_value()) return fail(parse_error);
  const auto order = job::ParseOrder(axes.order, &parse_error);
  if (!order.has_value()) return fail(parse_error);

  const auto topo_label = [](const std::string& spec) {
    return spec.empty() ? std::string("flat") : spec;
  };
  const auto spec_label = [](const std::string& spec) {
    return spec.empty() ? std::string("none") : spec;
  };

  // One JobMatrix per K: the replay engine checks a scenario's
  // topology against the run's node count, so K is the outermost
  // expansion, not a scenario label.
  for (const int num_nodes : node_counts) {
    if (num_nodes < 2) return fail("plan needs >= 2 nodes per cluster");
    job::JobMatrix matrix;
    matrix.backend = job::Backend::kReplay;
    matrix.paper_records = axes.paper_records;
    matrix.pricing = axes.cost;

    for (const std::string& algorithm : algorithms) {
      if (HonorsRedundancy(algorithm)) {
        for (const int r : redundancies) {
          if (r < 1 || r > num_nodes - 1) continue;  // no C(K, r) placement
          job::AlgoAxis axis;
          axis.label = algorithm + "_r" + std::to_string(r);
          axis.algorithm = algorithm;
          axis.config.num_nodes = num_nodes;
          axis.config.redundancy = r;
          axis.config.num_records = axes.records;
          axis.config.seed = axes.seed;
          matrix.algos.push_back(std::move(axis));
        }
      } else {
        job::AlgoAxis axis;
        axis.label = algorithm;
        axis.algorithm = algorithm;
        axis.config.num_nodes = num_nodes;
        axis.config.redundancy = 1;
        axis.config.num_records = axes.records;
        axis.config.seed = axes.seed;
        matrix.algos.push_back(std::move(axis));
      }
    }
    if (matrix.algos.empty()) {
      return fail("no (algorithm, r) candidate fits K = " +
                  std::to_string(num_nodes));
    }

    for (const std::string& topo_spec : topologies) {
      const auto topology =
          job::ParseTopology(topo_spec, num_nodes, &parse_error);
      if (!topology.has_value()) return fail(parse_error);
      for (const std::string& straggler_spec : stragglers) {
        const auto straggler =
            job::ParseStraggler(straggler_spec, num_nodes, &parse_error);
        if (!straggler.has_value()) return fail(parse_error);
        job::ScenarioAxis axis;
        axis.label = topo_label(topo_spec) + "|" + spec_label(straggler_spec);
        axis.scenario = simscen::Scenario::Baseline(num_nodes);
        axis.scenario.topology = *topology;
        axis.scenario.cluster.straggler = *straggler;
        axis.scenario.discipline = *discipline;
        axis.scenario.order = *order;
        matrix.scenarios.push_back(std::move(axis));
      }
    }
    for (const std::string& policy_spec : policies) {
      const auto policy = mitigate::ParsePolicy(policy_spec);
      if (!policy.has_value()) {
        return fail("unknown mitigation '" + policy_spec +
                    "' (none | spec[:QUANTILE:TRIGGER] | coded)");
      }
      matrix.policies.push_back({spec_label(policy_spec), *policy});
    }
    for (const InstanceProfile& instance : instances) {
      if (instance.speed <= 0 || instance.usd_per_hour < 0) {
        return fail("instance '" + instance.name +
                    "' needs speed > 0 and a non-negative rate");
      }
      matrix.instances.push_back(
          {instance.name, instance.speed, instance.usd_per_hour});
    }

    const job::MatrixResults results = job::RunMatrix(matrix, cache);
    result.cells += results.replays();
    result.executions += results.executions();

    // Aggregate each architecture over the straggler set: the SLO is a
    // statement about the tail of that distribution, and the row is
    // priced at its quantile — the capacity you must budget, not the
    // lucky mean.
    for (const InstanceProfile& instance : instances) {
      DollarCost cost = axes.cost;
      cost.node_usd_per_hour = instance.usd_per_hour;
      for (const std::string& topo_spec : topologies) {
        for (const std::string& policy_spec : policies) {
          for (const job::AlgoAxis& algo : matrix.algos) {
            PlanRow row;
            row.algorithm = algo.label;
            row.redundancy = algo.config.redundancy;
            row.num_nodes = num_nodes;
            row.topology = topo_label(topo_spec);
            row.policy = spec_label(policy_spec);
            row.instance = instance.name;
            std::vector<double> makespans;
            double cross_rack_bytes = 0;
            for (const std::string& straggler_spec : stragglers) {
              const job::JobResult& cell = results.at(
                  algo.label,
                  row.topology + "|" + spec_label(straggler_spec),
                  row.policy, instance.name);
              makespans.push_back(cell.makespan);
              cross_rack_bytes = cell.cross_rack_bytes;
            }
            row.scenarios = static_cast<int>(makespans.size());
            double sum = 0;
            for (const double m : makespans) {
              sum += m;
              row.worst_makespan = std::max(row.worst_makespan, m);
            }
            row.mean_makespan = sum / static_cast<double>(makespans.size());
            row.quantile_makespan =
                SampleQuantile(makespans, query.quantile);
            row.node_hours =
                cost.node_hours(row.quantile_makespan, num_nodes);
            row.usd_compute =
                cost.compute_usd(row.quantile_makespan, num_nodes);
            row.usd_egress = cost.egress_usd(cross_rack_bytes);
            row.usd = row.usd_compute + row.usd_egress;
            row.cross_rack_gb = cross_rack_bytes / 1e9;
            row.meets_slo = row.quantile_makespan <= query.slo_seconds;
            if (row.usd > query.max_usd) continue;
            if (query.meets_only && !row.meets_slo) continue;
            result.rows.push_back(std::move(row));
          }
        }
      }
    }
  }

  const auto by_key = [&query](const PlanRow& a, const PlanRow& b) {
    double ka = a.usd;
    double kb = b.usd;
    if (query.sort_key == "makespan") {
      ka = a.quantile_makespan;
      kb = b.quantile_makespan;
    } else if (query.sort_key == "egress") {
      ka = a.usd_egress;
      kb = b.usd_egress;
    }
    if (ka != kb) return ka < kb;
    return a.label() < b.label();  // deterministic on ties
  };
  std::stable_sort(result.rows.begin(), result.rows.end(), by_key);

  // Winner: cheapest row meeting the SLO (tie broken by label — the
  // fixed-seed grid test pins this determinism).
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const PlanRow& row = result.rows[i];
    if (!row.meets_slo) continue;
    if (result.winner < 0 ||
        row.usd < result.rows[static_cast<std::size_t>(result.winner)].usd ||
        (row.usd ==
             result.rows[static_cast<std::size_t>(result.winner)].usd &&
         row.label() <
             result.rows[static_cast<std::size_t>(result.winner)].label())) {
      result.winner = static_cast<int>(i);
    }
  }

  obs::MetricRegistry::Global()
      .counter("plan/rows")
      .add(static_cast<std::uint64_t>(result.rows.size()));
  obs::MetricRegistry::Global()
      .counter("plan/cells")
      .add(static_cast<std::uint64_t>(result.cells));
  return result;
}

void WriteCsv(const PlanResult& result, std::ostream& out) {
  out << "algorithm,r,K,topology,policy,instance,scenarios,mean_s,"
      << "q" << FormatDouble(result.quantile * 100) << "_s,worst_s,"
      << "node_hours,usd_compute,usd_egress,usd,cross_rack_gb,meets_slo\n";
  for (const PlanRow& row : result.rows) {
    out << row.algorithm << ',' << row.redundancy << ',' << row.num_nodes
        << ',' << row.topology << ',' << row.policy << ',' << row.instance
        << ',' << row.scenarios << ',' << FormatDouble(row.mean_makespan)
        << ',' << FormatDouble(row.quantile_makespan) << ','
        << FormatDouble(row.worst_makespan) << ','
        << FormatDouble(row.node_hours) << ','
        << FormatDouble(row.usd_compute) << ','
        << FormatDouble(row.usd_egress) << ',' << FormatDouble(row.usd)
        << ',' << FormatDouble(row.cross_rack_gb) << ','
        << (row.meets_slo ? 1 : 0) << '\n';
  }
}

std::map<std::string, double> PlanMetrics(const PlanResult& result) {
  std::map<std::string, double> out;
  out["plan/cells"] = result.cells;
  out["plan/executions"] = result.executions;
  out["plan/rows"] = static_cast<double>(result.rows.size());
  out["plan/quantile"] = result.quantile;
  if (const PlanRow* winner = result.winner_row()) {
    out["winner/usd"] = winner->usd;
    out["winner/makespan"] = winner->quantile_makespan;
    out["winner/node_hours"] = winner->node_hours;
  }
  for (const PlanRow& row : result.rows) {
    out[row.label() + "/usd"] = row.usd;
    out[row.label() + "/makespan"] = row.quantile_makespan;
  }
  return out;
}

}  // namespace cts::plan
