// Fleet planner: dollar-priced architecture search with SLOs.
//
// The paper's tables answer "which (algorithm, r, K) is fastest on one
// fixed testbed"; the production question is "which configuration is
// *cheapest* while its tail makespan still meets an SLO under the
// straggler scenarios we plan for". PlanAxes spans the architecture
// space — algorithm × redundancy × K × rack topology × mitigation
// policy × instance profile — and RunPlan expands it into per-K
// JobMatrix sweeps over one shared RunCache, so the whole search costs
// one live execution per distinct (algorithm, SortConfig) and every
// other cell is a memoized discrete-event replay (job/matrix.h).
//
// Each architecture is evaluated against the full straggler scenario
// set; its row reports the mean / q-quantile / worst makespan over
// that set and is priced in dollars (analytics::DollarCost) at the
// quantile: node-hours × the instance's on-demand rate, plus
// cross-rack egress of the shuffle under the row's topology. The query
// then answers "cheapest row whose q-quantile makespan meets SLO S" —
// the ctplan CLI (tools/ctplan.cpp) wraps this in CSV / bench-schema
// JSON output.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "analytics/cost_model.h"
#include "job/job.h"

namespace cts::plan {

// One rentable machine type (the planner's instance axis). `speed`
// scales every node's compute relative to the calibrated testbed
// node; `usd_per_hour` is its on-demand rate.
struct InstanceProfile {
  std::string name = "m3.large";
  double speed = 1.0;
  double usd_per_hour = 0.133;
};

// The architecture space to search. Topology / straggler / policy
// entries are textual specs in the shared mini-language (job/parse.h:
// "R:F[:U:D][:aware]", "slow:NODE:FACTOR" | "exp:…" | "failstop:…",
// "none" | "spec[:Q:T]" | "coded"), parsed per K so one axes object
// spans several cluster sizes. An empty axis collapses to its
// default: single rack, no straggler, no mitigation, the calibrated
// m3.large.
struct PlanAxes {
  std::vector<std::string> algorithms = {"terasort", "coded"};
  std::vector<int> redundancies = {3};
  std::vector<int> node_counts = {16};
  std::vector<std::string> topologies;  // "" = single rack
  std::vector<std::string> stragglers;  // the SLO scenario set
  std::vector<std::string> policies;
  std::vector<InstanceProfile> instances;

  std::uint64_t records = 200000;  // executed workload per run
  std::uint64_t seed = 2017;
  std::uint64_t paper_records = 0;  // report at this scale (0 = executed)
  std::string discipline = "serial";  // job/parse.h spec
  std::string order = "log";
  DollarCost cost;  // egress + default hourly rates
};

// The question asked of the expanded matrix.
struct PlanQuery {
  // The SLO: the q-quantile makespan over the straggler set must not
  // exceed this many seconds. Infinity = every row meets it.
  double slo_seconds = std::numeric_limits<double>::infinity();
  double quantile = 0.99;
  // Row order of PlanResult::rows: "usd" | "makespan" | "egress".
  std::string sort_key = "usd";
  // Drop rows dearer than this before picking the winner.
  double max_usd = std::numeric_limits<double>::infinity();
  // Keep only rows meeting the SLO in the output.
  bool meets_only = false;
};

// One candidate architecture, aggregated over the straggler set.
struct PlanRow {
  std::string algorithm;  // algo-axis label, e.g. "coded_r3"
  int redundancy = 1;
  int num_nodes = 0;
  std::string topology;  // axis labels ("flat" / "none" for defaults)
  std::string policy;
  std::string instance;

  int scenarios = 0;  // straggler samples aggregated
  double mean_makespan = 0;
  double quantile_makespan = 0;  // nearest-rank at the query quantile
  double worst_makespan = 0;

  // Priced at the quantile makespan (the capacity you must budget to
  // meet the SLO, not the lucky mean).
  double node_hours = 0;
  double usd_compute = 0;
  double usd_egress = 0;
  double usd = 0;
  double cross_rack_gb = 0;
  bool meets_slo = false;

  // "algo@K/topology/policy/instance" — the row's address in logs,
  // CSV and the JSON metric keys.
  std::string label() const;
};

struct PlanResult {
  std::vector<PlanRow> rows;  // sorted by the query's sort_key
  int cells = 0;              // matrix cells evaluated
  int executions = 0;         // live harness runs (RunCache misses)
  int winner = -1;            // index into rows; -1 = nothing meets
  double quantile = 0.99;     // echoed from the query
  std::string error;          // non-empty: axes failed to parse

  const PlanRow* winner_row() const {
    return winner < 0 ? nullptr : &rows[static_cast<std::size_t>(winner)];
  }
};

// Expands and evaluates the search. All live executions go through
// `cache`, so consecutive plans (and their caller's other sweeps)
// share runs; RunPlan performs at most one execution per distinct
// (algorithm, SortConfig) key — the acceptance invariant plan_test
// pins via RunCache::executions().
PlanResult RunPlan(const PlanAxes& axes, const PlanQuery& query,
                   job::RunCache& cache);

// Nearest-rank sample quantile (q clamped to [0, 1]); 0 on empty.
double SampleQuantile(std::vector<double> values, double q);

// The rows as sortable/filterable CSV (header + one line per row,
// the cloud_calc exemplar shape).
void WriteCsv(const PlanResult& result, std::ostream& out);

// Flat bench-schema metrics ("plan/cells", "plan/executions",
// "winner/usd", plus per-row usd / quantile makespan under the row
// label) for bench_common.h's JsonReport.
std::map<std::string, double> PlanMetrics(const PlanResult& result);

}  // namespace cts::plan
