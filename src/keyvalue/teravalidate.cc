#include "keyvalue/teravalidate.h"

#include <sstream>

#include "common/random.h"

namespace cts {

namespace {

// Keyed hash of a full record; both XOR- and sum-accumulating the
// same hash makes pair swaps and duplications visible.
std::uint64_t HashRecord(const Record& record) {
  std::uint64_t h = 0x7265636f72642121ULL;  // "record!!"
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&record);
  for (std::size_t i = 0; i < kRecordBytes; i += 8) {
    std::uint64_t chunk = 0;
    for (std::size_t j = 0; j < 8 && i + j < kRecordBytes; ++j) {
      chunk |= static_cast<std::uint64_t>(bytes[i + j]) << (8 * j);
    }
    h = Mix64(h ^ chunk);
  }
  return h;
}

}  // namespace

void RecordChecksum::add(const Record& record) {
  const std::uint64_t h = HashRecord(record);
  xor_hash ^= h;
  sum_hash += h;
  ++count;
}

void RecordChecksum::merge(const RecordChecksum& other) {
  xor_hash ^= other.xor_hash;
  sum_hash += other.sum_hash;
  count += other.count;
}

RecordChecksum ChecksumOfInput(const TeraGen& gen, std::uint64_t count) {
  RecordChecksum sum;
  for (std::uint64_t i = 0; i < count; ++i) sum.add(gen.record(i));
  return sum;
}

RecordChecksum ChecksumOfRecords(std::span<const Record> records) {
  RecordChecksum sum;
  for (const Record& r : records) sum.add(r);
  return sum;
}

ValidationReport ValidatePartitions(
    std::span<const std::vector<Record>> partitions,
    const RecordChecksum& expected) {
  RecordChecksum actual;
  const Record* previous = nullptr;
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    for (std::size_t i = 0; i < partitions[p].size(); ++i) {
      const Record& rec = partitions[p][i];
      if (previous != nullptr && RecordLess(rec, *previous)) {
        std::ostringstream os;
        os << "order violation at partition " << p << " index " << i;
        return ValidationReport::Fail(os.str());
      }
      previous = &rec;
      actual.add(rec);
    }
  }
  if (actual.count != expected.count) {
    std::ostringstream os;
    os << "record count mismatch: got " << actual.count << ", expected "
       << expected.count;
    return ValidationReport::Fail(os.str());
  }
  if (!(actual == expected)) {
    return ValidationReport::Fail(
        "checksum mismatch: output is not a permutation of the input");
  }
  return ValidationReport::Ok();
}

}  // namespace cts
