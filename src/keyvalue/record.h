// The TeraSort record type.
//
// The paper (and Hadoop TeraGen) uses 100-byte records: a 10-byte key
// and a 90-byte value. Keys are unsigned 10-byte integers compared
// big-endian (so raw memcmp gives the standard integer ordering the
// paper sorts by).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <span>

namespace cts {

inline constexpr std::size_t kKeyBytes = 10;
inline constexpr std::size_t kValueBytes = 90;
inline constexpr std::size_t kRecordBytes = kKeyBytes + kValueBytes;

using Key = std::array<std::uint8_t, kKeyBytes>;
using Value = std::array<std::uint8_t, kValueBytes>;

// A fixed-size key-value pair. Trivially copyable so intermediate
// values serialize as flat memcpy (the Pack stage) and sort moves are
// cheap 100-byte copies, as in the paper's C++ implementation.
struct Record {
  Key key;
  Value value;

  friend bool operator==(const Record& a, const Record& b) {
    return std::memcmp(&a, &b, sizeof(Record)) == 0;
  }
};

static_assert(sizeof(Record) == kRecordBytes,
              "Record must pack to exactly 100 bytes");

// Key ordering: big-endian unsigned integer comparison == memcmp.
inline int CompareKeys(const Key& a, const Key& b) {
  return std::memcmp(a.data(), b.data(), kKeyBytes);
}

inline bool KeyLess(const Key& a, const Key& b) {
  return CompareKeys(a, b) < 0;
}

// Sorting comparator. TeraSort orders by key; value is a tiebreaker so
// that the fully-sorted output is unique and cross-implementation
// comparisons (coded vs uncoded vs std::sort) are exact.
inline bool RecordLess(const Record& a, const Record& b) {
  const int c = CompareKeys(a.key, b.key);
  if (c != 0) return c < 0;
  return std::memcmp(a.value.data(), b.value.data(), kValueBytes) < 0;
}

// The top 8 bytes of the key as a u64; enough resolution to partition
// the key domain (collisions beyond 64 bits land in the same range).
inline std::uint64_t KeyPrefix(const Key& key) {
  std::uint64_t p = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    p = (p << 8) | key[i];
  }
  return p;
}

// Writes a u64 into the top 8 bytes of a key (remaining bytes given).
inline Key MakeKey(std::uint64_t prefix, std::uint16_t suffix = 0) {
  Key k{};
  for (int i = 7; i >= 0; --i) {
    k[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(prefix);
    prefix >>= 8;
  }
  k[8] = static_cast<std::uint8_t>(suffix >> 8);
  k[9] = static_cast<std::uint8_t>(suffix);
  return k;
}

}  // namespace cts
