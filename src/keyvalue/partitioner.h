// Key-domain partitioning.
//
// Both algorithms split the key domain P into K ordered partitions
// P_1 < P_2 < ... < P_K; node k reduces (sorts) partition k. Two
// partitioners are provided:
//
//  * RangePartitioner — splits the 2^64-prefix key space into K equal
//    ranges analytically. Exactly balanced for the uniform TeraGen
//    workload (the paper's setting).
//  * SampledPartitioner — Hadoop TotalOrderPartitioner-style: picks
//    K-1 splitter keys from a sample so that arbitrary (skewed)
//    distributions still yield balanced reducers.
//
// Partition lookup must be identical on every node, so partitioners are
// value types that the coordinator constructs once and serializes into
// each node's configuration.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/buffer.h"
#include "common/types.h"
#include "keyvalue/record.h"

namespace cts {

// Interface: maps a key to the partition (== reducer node) owning it.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual PartitionId partition(const Key& key) const = 0;
  virtual int num_partitions() const = 0;

  // Wire round-trip so the coordinator can ship one partitioner to all
  // nodes (mirrors Hadoop distributing the partition file).
  virtual void serialize(Buffer& out) const = 0;

  // Factory from a buffer written by any serialize() implementation.
  static std::unique_ptr<Partitioner> Deserialize(Buffer& in);
};

// Equal 2^64-prefix ranges: partition(key) = floor(prefix(key) * K / 2^64).
class RangePartitioner final : public Partitioner {
 public:
  explicit RangePartitioner(int num_partitions);

  PartitionId partition(const Key& key) const override;
  int num_partitions() const override { return k_; }
  void serialize(Buffer& out) const override;

  // Smallest key prefix belonging to partition p (inclusive lower
  // boundary); boundary(0) == 0.
  std::uint64_t boundary(PartitionId p) const;

 private:
  int k_;
};

// Splitter-based partitioner: partition p owns keys in
// [splitter[p-1], splitter[p]) with sentinel ends.
class SampledPartitioner final : public Partitioner {
 public:
  // Builds from explicit splitters (must be strictly... weakly
  // ascending; K = splitters.size() + 1).
  explicit SampledPartitioner(std::vector<Key> splitters);

  // Builds K-partition splitters from a sample of keys by taking
  // evenly spaced order statistics (the sample is copied and sorted).
  static SampledPartitioner FromSample(std::span<const Key> sample,
                                       int num_partitions);

  PartitionId partition(const Key& key) const override;
  int num_partitions() const override {
    return static_cast<int>(splitters_.size()) + 1;
  }
  void serialize(Buffer& out) const override;

  const std::vector<Key>& splitters() const { return splitters_; }

 private:
  std::vector<Key> splitters_;
};

}  // namespace cts
