// Deterministic TeraGen-equivalent input generator.
//
// The paper sorts 12 GB of data "generated from TeraGen in the standard
// Hadoop package": 120 M records of 10-byte key + 90-byte value with
// uniform random keys. We do not have Hadoop, so this module generates
// an equivalent workload: record i is a pure function of (seed, i), so
// any sub-range can be generated independently (which is how the
// coordinator materializes per-file inputs without building the whole
// dataset), and the same seed always produces the same data.
//
// Additional distributions exercise the partitioners and the sort under
// skew (used by tests and ablation benches, not by the paper's tables).
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "keyvalue/record.h"

namespace cts {

enum class KeyDistribution {
  kUniform,        // TeraGen-like uniform random keys (paper workload)
  kSorted,         // already-sorted keys (best case for shuffle skew)
  kReverseSorted,  // descending keys
  kSkewed,         // heavy concentration in the low key range (u^4)
  kFewDistinct,    // only 256 distinct keys — stresses ties
  kBalanced,       // low-discrepancy Weyl sequence: every contiguous
                   // index range spreads near-perfectly evenly over the
                   // key domain (used by exact load-identity tests,
                   // where multinomial sampling noise must not pollute
                   // padding/traffic accounting)
};

// Stateless, seekable record generator.
class TeraGen {
 public:
  explicit TeraGen(std::uint64_t seed,
                   KeyDistribution dist = KeyDistribution::kUniform)
      : seed_(seed), dist_(dist) {}

  // The i-th record of the stream. Pure function of (seed, dist, i).
  Record record(std::uint64_t index) const;

  // Records [start, start+count).
  std::vector<Record> generate(std::uint64_t start,
                               std::uint64_t count) const;

  std::uint64_t seed() const { return seed_; }
  KeyDistribution distribution() const { return dist_; }

 private:
  std::uint64_t seed_;
  KeyDistribution dist_;
};

}  // namespace cts
