#include "keyvalue/partitioner.h"

#include <algorithm>

#include "common/check.h"

namespace cts {

namespace {

// Wire tags distinguishing partitioner kinds in Deserialize().
constexpr std::uint8_t kTagRange = 1;
constexpr std::uint8_t kTagSampled = 2;

}  // namespace

std::unique_ptr<Partitioner> Partitioner::Deserialize(Buffer& in) {
  const std::uint8_t tag = in.read_u8();
  switch (tag) {
    case kTagRange: {
      const int k = in.read_i32();
      return std::make_unique<RangePartitioner>(k);
    }
    case kTagSampled: {
      const auto n = static_cast<std::size_t>(in.read_u64());
      std::vector<Key> splitters(n);
      for (auto& s : splitters) in.read_bytes(std::span<std::uint8_t>(s));
      return std::make_unique<SampledPartitioner>(std::move(splitters));
    }
    default:
      CTS_CHECK_MSG(false, "unknown partitioner tag " << int{tag});
      return nullptr;
  }
}

RangePartitioner::RangePartitioner(int num_partitions) : k_(num_partitions) {
  CTS_CHECK_GE(k_, 1);
}

PartitionId RangePartitioner::partition(const Key& key) const {
  // floor(prefix * K / 2^64) via 128-bit multiply: monotone in the key
  // and exactly covers [0, K).
  const unsigned __int128 wide =
      static_cast<unsigned __int128>(KeyPrefix(key)) *
      static_cast<unsigned __int128>(k_);
  return static_cast<PartitionId>(wide >> 64);
}

std::uint64_t RangePartitioner::boundary(PartitionId p) const {
  CTS_CHECK_GE(p, 0);
  CTS_CHECK_LT(p, k_);
  // Smallest x with floor(x * K / 2^64) == p, i.e. ceil(p * 2^64 / K).
  const unsigned __int128 numer =
      static_cast<unsigned __int128>(p) << 64;
  const auto k = static_cast<unsigned __int128>(k_);
  return static_cast<std::uint64_t>((numer + k - 1) / k);
}

void RangePartitioner::serialize(Buffer& out) const {
  out.write_u8(kTagRange);
  out.write_i32(k_);
}

SampledPartitioner::SampledPartitioner(std::vector<Key> splitters)
    : splitters_(std::move(splitters)) {
  for (std::size_t i = 1; i < splitters_.size(); ++i) {
    CTS_CHECK_MSG(CompareKeys(splitters_[i - 1], splitters_[i]) <= 0,
                  "splitters must be ascending");
  }
}

SampledPartitioner SampledPartitioner::FromSample(
    std::span<const Key> sample, int num_partitions) {
  CTS_CHECK_GE(num_partitions, 1);
  CTS_CHECK_MSG(!sample.empty() || num_partitions == 1,
                "cannot derive splitters from an empty sample");
  std::vector<Key> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end(), KeyLess);
  std::vector<Key> splitters;
  splitters.reserve(static_cast<std::size_t>(num_partitions) - 1);
  for (int p = 1; p < num_partitions; ++p) {
    // Evenly spaced order statistics, as Hadoop's input sampler does.
    const std::size_t idx =
        (sorted.size() * static_cast<std::size_t>(p)) /
        static_cast<std::size_t>(num_partitions);
    splitters.push_back(sorted[std::min(idx, sorted.size() - 1)]);
  }
  return SampledPartitioner(std::move(splitters));
}

PartitionId SampledPartitioner::partition(const Key& key) const {
  // Partition p owns [splitter[p-1], splitter[p]): the first splitter
  // strictly greater than `key` identifies the partition.
  const auto it = std::upper_bound(splitters_.begin(), splitters_.end(),
                                   key, KeyLess);
  return static_cast<PartitionId>(it - splitters_.begin());
}

void SampledPartitioner::serialize(Buffer& out) const {
  out.write_u8(kTagSampled);
  out.write_u64(splitters_.size());
  for (const Key& s : splitters_) {
    out.write_bytes(std::span<const std::uint8_t>(s));
  }
}

}  // namespace cts
