// TeraValidate — the standard companion of TeraGen/TeraSort in the
// Hadoop benchmark suite, reimplemented for this library.
//
// Validates a distributed sort output without materializing the whole
// dataset in one place: each partition is checked locally (sorted,
// within its key range), partition boundaries are checked pairwise,
// and a global XOR-checksum over records proves the output is a
// permutation of the input (content-complete, nothing lost, nothing
// duplicated, nothing altered) when compared with the checksum of the
// generated input stream.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "keyvalue/record.h"
#include "keyvalue/teragen.h"

namespace cts {

// Order- and split-insensitive fingerprint of a record multiset:
// XOR/sum of a keyed hash per record. Collision-resistant enough for
// validation (128 bits of accumulated structure).
struct RecordChecksum {
  std::uint64_t xor_hash = 0;
  std::uint64_t sum_hash = 0;
  std::uint64_t count = 0;

  void add(const Record& record);
  void merge(const RecordChecksum& other);

  friend bool operator==(const RecordChecksum&,
                         const RecordChecksum&) = default;
};

// Checksum of TeraGen's records [0, count) — the reference the sorted
// output must reproduce.
RecordChecksum ChecksumOfInput(const TeraGen& gen, std::uint64_t count);

// Checksum of an arbitrary record span.
RecordChecksum ChecksumOfRecords(std::span<const Record> records);

// Validation verdict with a human-readable reason on failure.
struct ValidationReport {
  bool valid = true;
  std::string error;  // empty when valid

  static ValidationReport Ok() { return {}; }
  static ValidationReport Fail(std::string reason) {
    return {false, std::move(reason)};
  }
};

// Validates partitioned sort output:
//  * every partition is internally sorted,
//  * partitions are globally ordered (max key of partition k is <= min
//    key of partition k+1),
//  * the multiset checksum matches `expected`.
ValidationReport ValidatePartitions(
    std::span<const std::vector<Record>> partitions,
    const RecordChecksum& expected);

}  // namespace cts
