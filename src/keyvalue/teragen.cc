#include "keyvalue/teragen.h"

#include <cmath>

namespace cts {

namespace {

// Per-record 64-bit stream: h(seed, index, lane). Independent lanes let
// key and value bytes come from decorrelated streams.
std::uint64_t RecordHash(std::uint64_t seed, std::uint64_t index,
                         std::uint64_t lane) {
  return Mix64(seed ^ Mix64(index * 0x9e3779b97f4a7c15ULL + lane));
}

}  // namespace

Record TeraGen::record(std::uint64_t index) const {
  Record rec{};

  // --- Key ---
  const std::uint64_t h = RecordHash(seed_, index, /*lane=*/0);
  std::uint64_t prefix = 0;
  switch (dist_) {
    case KeyDistribution::kUniform:
      prefix = h;
      break;
    case KeyDistribution::kSorted:
      prefix = index;
      break;
    case KeyDistribution::kReverseSorted:
      prefix = ~index;
      break;
    case KeyDistribution::kSkewed: {
      // u^4 pushes mass toward the low end of the key domain; the
      // highest-keyed partition ends up nearly empty.
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      const double skewed = u * u * u * u;
      prefix = static_cast<std::uint64_t>(
          skewed * 18446744073709549568.0);  // ~2^64, rounds below max
      break;
    }
    case KeyDistribution::kFewDistinct:
      prefix = (h & 0xffu) << 56;
      break;
    case KeyDistribution::kBalanced:
      // Weyl sequence with the golden-ratio multiplier (odd, hence a
      // bijection on 2^64): consecutive indices land maximally far
      // apart, so any contiguous range of n indices puts n/K ± O(1)
      // keys into each of K equal key ranges.
      prefix = index * 0x9e3779b97f4a7c15ULL;
      break;
  }
  // Low 2 key bytes disambiguate records sharing a prefix.
  const auto suffix = static_cast<std::uint16_t>(RecordHash(seed_, index, 1));
  rec.key = MakeKey(prefix, suffix);

  // --- Value ---
  // Hadoop TeraGen writes the row id followed by printable filler; we
  // keep that shape: 8 bytes of big-endian row id, then pseudo-random
  // printable ASCII so values differ record-to-record.
  for (int i = 0; i < 8; ++i) {
    rec.value[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(index >> (8 * (7 - i)));
  }
  std::uint64_t vstream = RecordHash(seed_, index, /*lane=*/2);
  for (std::size_t i = 8; i < kValueBytes; ++i) {
    if (i % 8 == 0) {
      vstream = RecordHash(seed_, index, /*lane=*/2 + i / 8);
    }
    rec.value[i] = static_cast<std::uint8_t>('A' + (vstream & 0x0f));
    vstream >>= 4;
  }
  return rec;
}

std::vector<Record> TeraGen::generate(std::uint64_t start,
                                      std::uint64_t count) const {
  std::vector<Record> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(record(start + i));
  }
  return out;
}

}  // namespace cts
