// Record serialization (the Pack/Unpack stages).
//
// The paper's TeraSort implementation adds explicit Pack/Unpack stages:
// Pack serializes each intermediate value into one contiguous memory
// array so a single TCP flow carries it (one MPI_Send per intermediate
// value), and Unpack deserializes received bytes back into a KV list.
// The wire format is a u64 record count followed by the flat 100-byte
// records.
#pragma once

#include <span>
#include <vector>

#include "common/buffer.h"
#include "keyvalue/record.h"

namespace cts {

// Serializes records into `out` (appending). Returns bytes written.
std::size_t PackRecords(std::span<const Record> records, Buffer& out);

// Deserializes one packed record list from `in`'s cursor.
std::vector<Record> UnpackRecords(Buffer& in);

// Appends one packed record list from `in`'s cursor into `out`
// (avoids an intermediate vector when merging many shuffle payloads).
void UnpackRecordsInto(Buffer& in, std::vector<Record>& out);

// Size in bytes that PackRecords will produce for n records.
inline std::size_t PackedSize(std::size_t n) {
  return sizeof(std::uint64_t) + n * kRecordBytes;
}

// ---- Validation helpers (used by tests and examples) ----

// True iff records are sorted by RecordLess.
bool IsSorted(std::span<const Record> records);

// True iff `sorted` is a permutation of `input` and sorted. Both
// arguments are copied and canonicalized internally; sizes up to a few
// million records are fine.
bool IsSortedPermutationOf(std::span<const Record> input,
                           std::span<const Record> sorted);

}  // namespace cts
