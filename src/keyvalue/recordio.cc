#include "keyvalue/recordio.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace cts {

std::size_t PackRecords(std::span<const Record> records, Buffer& out) {
  const std::size_t before = out.size();
  out.write_u64(records.size());
  if (!records.empty()) {
    out.write_bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(records.data()),
        records.size() * kRecordBytes));
  }
  return out.size() - before;
}

std::vector<Record> UnpackRecords(Buffer& in) {
  std::vector<Record> out;
  UnpackRecordsInto(in, out);
  return out;
}

void UnpackRecordsInto(Buffer& in, std::vector<Record>& out) {
  const std::uint64_t n = in.read_u64();
  CTS_CHECK_MSG(n * kRecordBytes <= in.remaining(),
                "truncated record list: " << n << " records but only "
                                          << in.remaining() << " bytes");
  const std::size_t old = out.size();
  out.resize(old + n);
  if (n > 0) {
    const auto view = in.read_view(n * kRecordBytes);
    std::memcpy(out.data() + old, view.data(), view.size());
  }
}

bool IsSorted(std::span<const Record> records) {
  return std::is_sorted(records.begin(), records.end(), RecordLess);
}

bool IsSortedPermutationOf(std::span<const Record> input,
                           std::span<const Record> sorted) {
  if (input.size() != sorted.size()) return false;
  if (!IsSorted(sorted)) return false;
  std::vector<Record> expected(input.begin(), input.end());
  std::sort(expected.begin(), expected.end(), RecordLess);
  return std::equal(expected.begin(), expected.end(), sorted.begin(),
                    sorted.end());
}

}  // namespace cts
