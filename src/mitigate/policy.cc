#include "mitigate/policy.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/check.h"

namespace cts::mitigate {

namespace {

double BusySeconds(const StageView& view, NodeId node, double t) {
  if (view.busy_seconds) return view.busy_seconds(node, t);
  return std::max(0.0, t - view.start);
}

StageMitigation Unmitigated(const StageView& view) {
  StageMitigation m;
  m.node_end = view.node_end;
  m.unmitigated_end = view.start;
  for (const double e : view.node_end) {
    m.unmitigated_end = std::max(m.unmitigated_end, e);
  }
  m.end = m.unmitigated_end;
  return m;
}

// K-of-N coded completion: the barrier releases at the
// (K - tolerance)-th completion; nodes still running are abandoned
// (they stop and rejoin at the barrier), their partial compute charged
// as waste.
StageMitigation ApplyCodedMap(const StageView& view) {
  StageMitigation m = Unmitigated(view);
  const int K = static_cast<int>(view.node_end.size());
  const int tol = std::min(view.coded_tolerance, K - 1);
  if (tol <= 0) return m;

  std::vector<double> sorted = view.node_end;
  std::sort(sorted.begin(), sorted.end());
  const double release = sorted[static_cast<std::size_t>(K - 1 - tol)];

  m.end = std::max(view.start, release);
  m.wasted_seconds = 0;
  for (std::size_t n = 0; n < m.node_end.size(); ++n) {
    if (m.node_end[n] > m.end) {
      ++m.abandoned_nodes;
      m.wasted_seconds +=
          BusySeconds(view, static_cast<NodeId>(n), m.end);
      m.node_end[n] = m.end;
    }
  }
  return m;
}

// Speculative re-execution. Trigger time is observable at run time:
// once ceil(quantile * K) nodes have finished (at t_q), nodes still
// running at start + trigger * (t_q - start) each get a backup on a
// distinct finished node (fastest finishers first). Whichever copy
// finishes first wins; the loser's compute is waste.
StageMitigation ApplySpeculative(const MitigationPolicy& policy,
                                 const StageView& view) {
  StageMitigation m = Unmitigated(view);
  const std::size_t K = view.node_end.size();
  if (K < 2 || !view.backup_end) return m;
  CTS_CHECK_GT(policy.quantile, 0.0);
  CTS_CHECK_LE(policy.quantile, 1.0);
  CTS_CHECK_GE(policy.trigger, 1.0);

  std::vector<double> sorted = view.node_end;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t q_rank = std::min(
      K - 1, static_cast<std::size_t>(
                 std::ceil(policy.quantile * static_cast<double>(K))) -
                 1);
  const double t_q = sorted[q_rank];
  const double trigger_time =
      view.start + policy.trigger * (t_q - view.start);

  // Helpers: nodes finished by the trigger, fastest first, one backup
  // each. Victims: nodes still running, slowest first (the worst
  // straggler gets the fastest helper).
  std::vector<NodeId> helpers;
  std::vector<NodeId> victims;
  for (std::size_t n = 0; n < K; ++n) {
    (view.node_end[n] <= trigger_time ? helpers : victims)
        .push_back(static_cast<NodeId>(n));
  }
  if (victims.empty() || helpers.empty()) return m;
  m.trigger_at = trigger_time;
  std::sort(helpers.begin(), helpers.end(), [&](NodeId a, NodeId b) {
    return view.node_end[static_cast<std::size_t>(a)] <
           view.node_end[static_cast<std::size_t>(b)];
  });
  std::sort(victims.begin(), victims.end(), [&](NodeId a, NodeId b) {
    return view.node_end[static_cast<std::size_t>(a)] >
           view.node_end[static_cast<std::size_t>(b)];
  });

  double stage_end = view.start;
  const std::size_t pairs = std::min(victims.size(), helpers.size());
  for (std::size_t i = 0; i < pairs; ++i) {
    const NodeId v = victims[i];
    const NodeId h = helpers[i];
    const std::size_t vi = static_cast<std::size_t>(v);
    const std::size_t hi = static_cast<std::size_t>(h);
    const double launch = std::max(trigger_time, view.node_end[hi]);
    const double backup = view.backup_end(v, h, launch);
    CTS_CHECK_GE(backup, launch);
    const double winner = std::min(view.node_end[vi], backup);
    ++m.speculative_copies;
    if (backup < view.node_end[vi]) {
      // Backup wins: the victim aborts at `winner`; everything it
      // burnt is waste.
      m.wasted_seconds += BusySeconds(view, v, winner);
    } else {
      // Original wins: the backup's compute (helper is healthy, so
      // wall time is busy time) is waste.
      m.wasted_seconds += std::max(0.0, winner - launch);
    }
    m.node_end[vi] = winner;
    // The helper stays busy with the backup until a copy wins.
    m.node_end[hi] = std::max(view.node_end[hi], winner);
  }
  for (const double e : m.node_end) stage_end = std::max(stage_end, e);
  m.end = stage_end;
  return m;
}

}  // namespace

MitigationPolicy MitigationPolicy::Speculative(double quantile,
                                               double trigger) {
  MitigationPolicy p;
  p.kind = PolicyKind::kSpeculative;
  p.quantile = quantile;
  p.trigger = trigger;
  return p;
}

MitigationPolicy MitigationPolicy::CodedMap() {
  MitigationPolicy p;
  p.kind = PolicyKind::kCodedMap;
  return p;
}

const char* PolicyName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNone:
      return "none";
    case PolicyKind::kSpeculative:
      return "spec";
    case PolicyKind::kCodedMap:
      return "coded";
  }
  CTS_CHECK_MSG(false, "unreachable policy kind");
  return "none";
}

std::optional<MitigationPolicy> ParsePolicy(const std::string& spec) {
  if (spec.empty() || spec == "none") return MitigationPolicy::None();
  if (spec == "coded") return MitigationPolicy::CodedMap();
  if (spec == "spec") return MitigationPolicy::Speculative();
  if (spec.rfind("spec:", 0) == 0) {
    const std::string rest = spec.substr(5);
    const std::size_t colon = rest.find(':');
    if (colon == std::string::npos) return std::nullopt;
    char* end = nullptr;
    const double quantile = std::strtod(rest.c_str(), &end);
    if (end != rest.c_str() + colon) return std::nullopt;
    const std::string trig = rest.substr(colon + 1);
    end = nullptr;
    const double trigger = std::strtod(trig.c_str(), &end);
    if (trig.empty() || end == nullptr || *end != '\0') return std::nullopt;
    if (quantile <= 0 || quantile > 1 || trigger < 1) return std::nullopt;
    return MitigationPolicy::Speculative(quantile, trigger);
  }
  return std::nullopt;
}

StageMitigation ApplyPolicy(const MitigationPolicy& policy,
                            const StageView& view) {
  CTS_CHECK_GE(view.node_end.size(), std::size_t{1});
  switch (policy.kind) {
    case PolicyKind::kNone:
      return Unmitigated(view);
    case PolicyKind::kCodedMap:
      return ApplyCodedMap(view);
    case PolicyKind::kSpeculative:
      return ApplySpeculative(policy, view);
  }
  CTS_CHECK_MSG(false, "unreachable policy kind");
  return Unmitigated(view);
}

}  // namespace cts::mitigate
