// Straggler mitigation policies (paper Section VI + [11]-style coded
// computation).
//
// The scenario engine (src/simscen) *prices* stragglers; this layer
// *acts* on them. A MitigationPolicy decides, per barrier-delimited
// compute stage, how the cluster reacts to nodes that have not
// finished:
//
//   * kNone        — the paper's protocol: the barrier waits for the
//                    slowest node.
//   * kSpeculative — classic speculative re-execution: once `quantile`
//                    of the nodes have finished, any node still running
//                    past `trigger`x that completion time gets a backup
//                    copy of its whole stage work launched on an
//                    already-finished node; the stage takes whichever
//                    copy finishes first and the loser's compute is
//                    charged as waste.
//   * kCodedMap    — K-of-N coded completion: the C(K, r) placement
//                    (coding/placement.h) stores every input file on r
//                    nodes, so every file has a finished holder as soon
//                    as at most r-1 nodes are still running. The Map
//                    barrier releases at the (K-r+1)-th completion and
//                    the stragglers' unfinished work is abandoned (their
//                    partial compute is charged as waste). Stages
//                    without replicated inputs get tolerance 0 and
//                    degenerate to kNone.
//
// ApplyPolicy is a pure function of a StageView — per-node completion
// times plus pricing callbacks — so the same arithmetic evaluates a
// policy on a synthetic scenario replay (simscen::ReplayScenario) and
// on the measured ComputeEvents a live driver::StageRunner run records.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace cts::mitigate {

enum class PolicyKind {
  kNone,
  kSpeculative,
  kCodedMap,
};

struct MitigationPolicy {
  PolicyKind kind = PolicyKind::kNone;
  // kSpeculative: the trigger fires at
  //   stage_start + trigger * (t_q - stage_start)
  // where t_q is the time the ceil(quantile * K)-th node finishes —
  // both observable at run time (no oracle knowledge of stragglers).
  double quantile = 0.5;
  double trigger = 1.5;

  static MitigationPolicy None() { return {}; }
  static MitigationPolicy Speculative(double quantile = 0.5,
                                      double trigger = 1.5);
  static MitigationPolicy CodedMap();
};

// Short identifier used in tables, JSON keys and flags: "none",
// "spec", "coded".
const char* PolicyName(PolicyKind kind);

// Parses the ctsort/bench flag syntax:
//   none | spec[:QUANTILE:TRIGGER] | coded
// Returns nullopt on malformed input.
std::optional<MitigationPolicy> ParsePolicy(const std::string& spec);

// One barrier-delimited compute stage as a policy sees it.
struct StageView {
  double start = 0;  // absolute stage start (barrier release)
  // Unmitigated absolute completion time per node, outages included.
  std::vector<double> node_end;
  // Stragglers the K-of-N coded completion may abandon in this stage:
  // r-1 for the Map stage of an r-replicated run, 0 elsewhere.
  int coded_tolerance = 0;
  // Absolute completion time of a backup copy of `victim`'s whole
  // stage work executed by `helper`, launched at absolute time `at`.
  // Unset disables speculation (no way to price a backup).
  std::function<double(NodeId victim, NodeId helper, double at)> backup_end;
  // Compute seconds `node` actually burns in [start, t] — excludes
  // fail-stop outage windows, so abandoning a dead node charges no
  // waste for the time it was offline. Unset means t - start.
  std::function<double(NodeId node, double t)> busy_seconds;
};

// What a policy did to one stage.
struct StageMitigation {
  std::vector<double> node_end;  // mitigated per-node completion
  double end = 0;                // mitigated barrier time
  double unmitigated_end = 0;    // what kNone would have waited for
  // Compute seconds burnt without contributing to the output: losing
  // speculative copies, and partial work of abandoned stragglers.
  double wasted_seconds = 0;
  int speculative_copies = 0;  // backups launched (kSpeculative)
  int abandoned_nodes = 0;     // stragglers dropped (kCodedMap)
  // Absolute time the speculative trigger fired (< 0 when no trigger
  // fired: kNone, kCodedMap, or nothing left to back up). The tracer
  // marks it as an instant event.
  double trigger_at = -1;
};

StageMitigation ApplyPolicy(const MitigationPolicy& policy,
                            const StageView& view);

}  // namespace cts::mitigate
