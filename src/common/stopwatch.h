// Wall-clock stage timing. Both sorting algorithms report a per-stage
// breakdown; the driver pairs these wall times with model-derived
// simulated times (see analytics/cost_model.h).
#pragma once

#include <chrono>

namespace cts {

// Monotonic stopwatch measuring seconds as double.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last restart().
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates wall time across start/stop segments (e.g. a stage that a
// node enters and leaves several times).
class Accumulator {
 public:
  void start() { watch_.restart(); }
  void stop() { total_ += watch_.elapsed(); }
  double total() const { return total_; }
  void reset() { total_ = 0.0; }

 private:
  Stopwatch watch_;
  double total_ = 0.0;
};

}  // namespace cts
