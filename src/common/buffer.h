// Byte buffer with cursored reads/writes, used for intermediate-value
// serialization (the Pack/Unpack stages of TeraSort and the packet
// framing of CodedTeraSort).
//
// The layout written by the Writer methods is little-endian and
// self-describing only to the extent callers make it so; the terasort
// and coding modules define explicit wire formats on top of this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace cts {

// Growable byte array with an explicit read cursor. Writes always
// append; reads consume from the cursor. A Buffer is cheap to move and
// deliberately not copyable implicitly (use Clone()) so accidental
// copies of multi-megabyte shuffle payloads show up in review.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  Buffer(Buffer&&) noexcept = default;
  Buffer& operator=(Buffer&&) noexcept = default;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  // Explicit deep copy.
  Buffer Clone() const {
    Buffer b(bytes_);
    b.cursor_ = cursor_;
    return b;
  }

  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  const std::uint8_t* data() const { return bytes_.data(); }
  std::uint8_t* data() { return bytes_.data(); }
  std::span<const std::uint8_t> span() const { return bytes_; }
  std::span<std::uint8_t> mutable_span() { return bytes_; }

  void reserve(std::size_t n) { bytes_.reserve(n); }
  void clear() {
    bytes_.clear();
    cursor_ = 0;
  }
  void resize(std::size_t n) { bytes_.resize(n); }

  // ---- Writing (appends at the end) ----

  void write_bytes(std::span<const std::uint8_t> src) {
    bytes_.insert(bytes_.end(), src.begin(), src.end());
  }

  void write_u8(std::uint8_t v) { bytes_.push_back(v); }

  void write_u32(std::uint32_t v) { write_le(v); }
  void write_u64(std::uint64_t v) { write_le(v); }
  void write_i32(std::int32_t v) { write_le(static_cast<std::uint32_t>(v)); }
  void write_i64(std::int64_t v) { write_le(static_cast<std::uint64_t>(v)); }
  void write_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    write_le(bits);
  }

  // Length-prefixed string / blob.
  void write_string(const std::string& s) {
    write_u64(s.size());
    write_bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }
  void write_blob(std::span<const std::uint8_t> b) {
    write_u64(b.size());
    write_bytes(b);
  }

  // ---- Reading (consumes from the cursor) ----

  std::size_t remaining() const { return bytes_.size() - cursor_; }
  std::size_t cursor() const { return cursor_; }
  void rewind() { cursor_ = 0; }
  void seek(std::size_t pos) {
    CTS_CHECK_LE(pos, bytes_.size());
    cursor_ = pos;
  }

  void read_bytes(std::span<std::uint8_t> dst) {
    CTS_CHECK_MSG(dst.size() <= remaining(),
                  "buffer underrun: want " << dst.size() << " have "
                                           << remaining());
    std::memcpy(dst.data(), bytes_.data() + cursor_, dst.size());
    cursor_ += dst.size();
  }

  // Zero-copy view of the next n bytes; the view is invalidated by any
  // mutation of the buffer.
  std::span<const std::uint8_t> read_view(std::size_t n) {
    CTS_CHECK_LE(n, remaining());
    std::span<const std::uint8_t> v(bytes_.data() + cursor_, n);
    cursor_ += n;
    return v;
  }

  std::uint8_t read_u8() {
    CTS_CHECK_GE(remaining(), std::size_t{1});
    return bytes_[cursor_++];
  }

  std::uint32_t read_u32() { return read_le<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_le<std::uint64_t>(); }
  std::int32_t read_i32() {
    return static_cast<std::int32_t>(read_le<std::uint32_t>());
  }
  std::int64_t read_i64() {
    return static_cast<std::int64_t>(read_le<std::uint64_t>());
  }
  double read_f64() {
    std::uint64_t bits = read_le<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string read_string() {
    const std::size_t n = read_u64();
    CTS_CHECK_LE(n, remaining());
    std::string s(reinterpret_cast<const char*>(bytes_.data() + cursor_), n);
    cursor_ += n;
    return s;
  }
  std::vector<std::uint8_t> read_blob() {
    const std::size_t n = read_u64();
    CTS_CHECK_LE(n, remaining());
    std::vector<std::uint8_t> b(bytes_.begin() + static_cast<long>(cursor_),
                                bytes_.begin() +
                                    static_cast<long>(cursor_ + n));
    cursor_ += n;
    return b;
  }

  // Steals the underlying byte vector (resets the buffer).
  std::vector<std::uint8_t> take() {
    cursor_ = 0;
    return std::move(bytes_);
  }

  bool operator==(const Buffer& other) const { return bytes_ == other.bytes_; }

 private:
  template <typename T>
  void write_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  template <typename T>
  T read_le() {
    CTS_CHECK_GE(remaining(), sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(bytes_[cursor_ + i]) << (8 * i);
    }
    cursor_ += sizeof(T);
    return v;
  }

  std::vector<std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

// Thread-local free list of payload byte vectors for the shuffle hot
// path. At K~100 every message the transport moves allocates a payload
// copy (Comm::deliver) that the receiver frees right after consuming
// it; recycling the backing vectors removes that churn. The pool is
// per-thread and lock-free: a node thread both sends (acquire) and
// receives (release) in roughly equal measure during a shuffle, so the
// pools balance without cross-thread traffic.
class BufferArena {
 public:
  // The calling thread's arena.
  static BufferArena& Local() {
    thread_local BufferArena arena;
    return arena;
  }

  // An empty vector with capacity >= capacity_hint, reusing a pooled
  // backing store when one is available.
  std::vector<std::uint8_t> acquire(std::size_t capacity_hint) {
    std::vector<std::uint8_t> v;
    if (!pool_.empty()) {
      v = std::move(pool_.back());
      pool_.pop_back();
      v.clear();
      ++hits_;
    } else {
      ++misses_;
    }
    v.reserve(capacity_hint);
    return v;
  }

  // Returns a backing store to the pool. Bounded in count and per-entry
  // capacity so a burst of jumbo payloads cannot pin memory forever.
  void release(std::vector<std::uint8_t> bytes) {
    if (pool_.size() >= kMaxPooled || bytes.capacity() > kMaxPooledCapacity) {
      return;  // drop: freed by the vector destructor
    }
    pool_.push_back(std::move(bytes));
  }

  std::size_t pooled() const { return pool_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  static constexpr std::size_t kMaxPooled = 256;
  static constexpr std::size_t kMaxPooledCapacity = std::size_t{8} << 20;

  std::vector<std::vector<std::uint8_t>> pool_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace cts
