// Plain-text table formatting for the benchmark harnesses. Each table
// bench prints the same rows the paper reports, so the output format
// matters: fixed-width columns, right-aligned numerics, a title line.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"

namespace cts {

// Builds and renders a fixed-width text table.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header) {
    header_ = std::move(header);
  }

  void add_row(std::vector<std::string> row) {
    if (!header_.empty()) CTS_CHECK_EQ(row.size(), header_.size());
    rows_.push_back(std::move(row));
  }

  // Convenience: format a double with fixed precision.
  static std::string Num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void render(std::ostream& os) const {
    std::vector<std::size_t> width(columns(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (row[i].size() > width[i]) width[i] = row[i].size();
      }
    };
    if (!header_.empty()) widen(header_);
    for (const auto& r : rows_) widen(r);

    os << "== " << title_ << " ==\n";
    auto line = [&] {
      for (std::size_t i = 0; i < width.size(); ++i) {
        os << '+' << std::string(width[i] + 2, '-');
      }
      os << "+\n";
    };
    auto emit = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        os << "| " << std::setw(static_cast<int>(width[i])) << row[i] << ' ';
      }
      os << "|\n";
    };
    line();
    if (!header_.empty()) {
      emit(header_);
      line();
    }
    for (const auto& r : rows_) emit(r);
    line();
  }

  std::string to_string() const {
    std::ostringstream os;
    render(os);
    return os.str();
  }

 private:
  std::size_t columns() const {
    if (!header_.empty()) return header_.size();
    std::size_t c = 0;
    for (const auto& r : rows_) c = std::max(c, r.size());
    return c;
  }

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cts
