#include "common/units.h"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace cts {

namespace {

std::string WithUnit(double value, const char* unit, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value << ' ' << unit;
  return os.str();
}

}  // namespace

std::string HumanBytes(double bytes) {
  const double b = std::abs(bytes);
  if (b >= kGB) return WithUnit(bytes / kGB, "GB", 2);
  if (b >= kMB) return WithUnit(bytes / kMB, "MB", 2);
  if (b >= kKB) return WithUnit(bytes / kKB, "kB", 2);
  return WithUnit(bytes, "B", 0);
}

std::string HumanRate(double bytes_per_second) {
  const double bits = bytes_per_second * 8.0;
  if (bits >= 1e9) return WithUnit(bits / 1e9, "Gbps", 2);
  if (bits >= 1e6) return WithUnit(bits / 1e6, "Mbps", 1);
  if (bits >= 1e3) return WithUnit(bits / 1e3, "kbps", 1);
  return WithUnit(bits, "bps", 0);
}

std::string HumanSeconds(double seconds) {
  const double s = std::abs(seconds);
  if (s >= 1.0) return WithUnit(seconds, "s", 2);
  if (s >= 1e-3) return WithUnit(seconds * 1e3, "ms", 2);
  if (s >= 1e-6) return WithUnit(seconds * 1e6, "us", 2);
  return WithUnit(seconds * 1e9, "ns", 0);
}

}  // namespace cts
