// Byte-count and rate units, plus human-readable formatting used by the
// bench harnesses and reports.
#pragma once

#include <cstdint>
#include <string>

namespace cts {

inline constexpr double kKB = 1000.0;
inline constexpr double kMB = 1000.0 * 1000.0;
inline constexpr double kGB = 1000.0 * 1000.0 * 1000.0;

// Network rates are quoted in bits/s in the paper (100 Mbps links).
inline constexpr double kMbps = 1000.0 * 1000.0 / 8.0;  // bytes per second

// Paper-testbed link defaults, shared by the analytics cost model and
// the simnet/simscen replay engines so the calibration cannot drift
// between the closed forms and the discrete-event simulators.
//
// 100 Mbps tc-limited NICs (paper Section V-B).
inline constexpr double kPaperLinkBytesPerSec = 100 * kMbps;
// Effective TCP goodput fraction: Table I moves 11.25 GB serially in
// 945.72 s => 11.90 MB/s on a 12.5 MB/s link => 0.95.
inline constexpr double kTcpEfficiency = 0.95;
// MPI_Bcast fan-out penalty coefficient: multicasting to `f` receivers
// costs (1 + coeff*log2(f)) x the unicast time of the same bytes.
// Calibrated from Table II (see analytics/cost_model.h).
inline constexpr double kMulticastLogCoeff = 0.32;

// "12.0 GB", "750.0 MB", "1.3 kB", "17 B".
std::string HumanBytes(double bytes);

// "100.0 Mbps" from a rate in bytes/second.
std::string HumanRate(double bytes_per_second);

// "945.72 s", "85 ms", "120 us".
std::string HumanSeconds(double seconds);

}  // namespace cts
