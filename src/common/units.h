// Byte-count and rate units, plus human-readable formatting used by the
// bench harnesses and reports.
#pragma once

#include <cstdint>
#include <string>

namespace cts {

inline constexpr double kKB = 1000.0;
inline constexpr double kMB = 1000.0 * 1000.0;
inline constexpr double kGB = 1000.0 * 1000.0 * 1000.0;

// Network rates are quoted in bits/s in the paper (100 Mbps links).
inline constexpr double kMbps = 1000.0 * 1000.0 / 8.0;  // bytes per second

// "12.0 GB", "750.0 MB", "1.3 kB", "17 B".
std::string HumanBytes(double bytes);

// "100.0 Mbps" from a rate in bytes/second.
std::string HumanRate(double bytes_per_second);

// "945.72 s", "85 ms", "120 us".
std::string HumanSeconds(double seconds);

}  // namespace cts
