// Invariant checking for the coded-terasort libraries.
//
// CTS_CHECK is always-on (release builds included): distributed-sorting
// invariants (placement coverage, decode consistency, partition ownership)
// are cheap relative to the data volumes they guard, and a silent
// violation would corrupt sorted output. Failures throw cts::CheckError
// carrying the failing expression and location so tests can assert on
// them and drivers can surface them per node.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cts {

// Error thrown when a CTS_CHECK invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace internal {

// Stream-style message builder used by the CTS_CHECK macro family; the
// destructor of the macro expansion never runs — FailCheck always throws.
[[noreturn]] inline void FailCheck(const char* expr, const char* file,
                                   int line, const std::string& msg) {
  std::ostringstream os;
  os << "CTS_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace internal
}  // namespace cts

// Always-on invariant check. Usage: CTS_CHECK(a == b);
#define CTS_CHECK(expr)                                               \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::cts::internal::FailCheck(#expr, __FILE__, __LINE__, "");      \
    }                                                                 \
  } while (0)

// Invariant check with a streamed context message.
// Usage: CTS_CHECK_MSG(a == b, "node " << k << " mismatched");
#define CTS_CHECK_MSG(expr, stream_expr)                              \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream cts_check_os_;                               \
      cts_check_os_ << stream_expr;                                   \
      ::cts::internal::FailCheck(#expr, __FILE__, __LINE__,           \
                                 cts_check_os_.str());                \
    }                                                                 \
  } while (0)

// Binary comparison checks that print both operands on failure.
#define CTS_CHECK_OP(op, a, b)                                        \
  do {                                                                \
    auto&& cts_a_ = (a);                                              \
    auto&& cts_b_ = (b);                                              \
    if (!(cts_a_ op cts_b_)) {                                        \
      std::ostringstream cts_check_os_;                               \
      cts_check_os_ << "lhs=" << cts_a_ << " rhs=" << cts_b_;         \
      ::cts::internal::FailCheck(#a " " #op " " #b, __FILE__,         \
                                 __LINE__, cts_check_os_.str());      \
    }                                                                 \
  } while (0)

#define CTS_CHECK_EQ(a, b) CTS_CHECK_OP(==, a, b)
#define CTS_CHECK_NE(a, b) CTS_CHECK_OP(!=, a, b)
#define CTS_CHECK_LT(a, b) CTS_CHECK_OP(<, a, b)
#define CTS_CHECK_LE(a, b) CTS_CHECK_OP(<=, a, b)
#define CTS_CHECK_GT(a, b) CTS_CHECK_OP(>, a, b)
#define CTS_CHECK_GE(a, b) CTS_CHECK_OP(>=, a, b)
