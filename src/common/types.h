// Shared scalar types and small constants for the coded-terasort
// libraries.
#pragma once

#include <cstdint>

namespace cts {

// Index of a worker node in the cluster, 0-based. The paper uses
// 1-based node labels K = {1, ..., K}; all code here is 0-based and the
// docs note the shift where a paper figure is reproduced verbatim.
using NodeId = int;

// Index of a key-domain partition (== reducer index). Partition p is
// reduced by node p in both TeraSort and CodedTeraSort.
using PartitionId = int;

// Index of an input file. For TeraSort files are 0..K-1; for
// CodedTeraSort files are colex ranks of r-subsets, 0..C(K,r)-1.
using FileId = int;

// Bitmask over nodes; bit k set means node k is a member. Subsets of
// up to kMaxNodes nodes fit in one mask; the live harness and the
// priced-only scale backend both run clusters larger than kMaxNodes,
// but coded placements (which are mask-indexed) cap at kMaxNodes.
using NodeMask = std::uint64_t;

// Width of NodeMask in bits. Every "shift by K" guard must key off
// this, not a literal, so widening the mask cannot silently leave a
// stale boundary behind (the old 32-bit guard bug).
inline constexpr int kNodeMaskBits = 64;
static_assert(sizeof(NodeMask) * 8 == kNodeMaskBits,
              "kNodeMaskBits must match the NodeMask type width");

inline constexpr int kMaxNodes = kNodeMaskBits;

}  // namespace cts
