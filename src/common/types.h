// Shared scalar types and small constants for the coded-terasort
// libraries.
#pragma once

#include <cstdint>

namespace cts {

// Index of a worker node in the cluster, 0-based. The paper uses
// 1-based node labels K = {1, ..., K}; all code here is 0-based and the
// docs note the shift where a paper figure is reproduced verbatim.
using NodeId = int;

// Index of a key-domain partition (== reducer index). Partition p is
// reduced by node p in both TeraSort and CodedTeraSort.
using PartitionId = int;

// Index of an input file. For TeraSort files are 0..K-1; for
// CodedTeraSort files are colex ranks of r-subsets, 0..C(K,r)-1.
using FileId = int;

// Bitmask over nodes; bit k set means node k is a member. The library
// supports at most kMaxNodes nodes so a subset always fits in 32 bits.
using NodeMask = std::uint32_t;

inline constexpr int kMaxNodes = 32;

}  // namespace cts
