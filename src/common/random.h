// Deterministic pseudo-random number generation.
//
// All data generation in this repo (TeraGen records, property-test
// inputs, workload skews) flows through these generators so every run is
// reproducible from a single 64-bit seed. splitmix64 is used for seeding
// and for per-record keyed generation (TeraGen-style "record i is a pure
// function of (seed, i)"); xoshiro256** is the general-purpose stream
// generator.
#pragma once

#include <array>
#include <cstdint>

namespace cts {

// One splitmix64 step: maps any 64-bit value to a well-mixed 64-bit
// value. Suitable as a keyed hash for deterministic record generation.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless mix of a single value (e.g. hash of a record index).
inline std::uint64_t Mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return SplitMix64(s);
}

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
// implementation, re-typed). Fast, high-quality, 2^256-1 period.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eedc0dedULL) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, n) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t n) {
    if (n == 0) return 0;
    unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * n;
    std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>((*this)()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_;
};

}  // namespace cts
