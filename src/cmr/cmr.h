// Generic Coded MapReduce engine (paper Section II, and the "Beyond
// Sorting Algorithms" future direction of Section VI).
//
// The engine distributes an arbitrary MapReduce application over K
// nodes with computation load r:
//
//   * files are the N = C(K, r) structured-redundant units of
//     Placement (r = 1 gives the classic one-file-per-node layout);
//   * Map turns a file into K serialized intermediate values, one per
//     reducer (reducer q is hosted on node q, Q = K as in TeraSort);
//   * Shuffle is either UNCODED — the lowest-id holder of each file
//     unicasts every needed intermediate value — or CODED — the same
//     Algorithm 1/2 XOR multicast used by CodedTeraSort;
//   * Reduce folds the N intermediate values of reducer q (in FileId
//     order) into the final output.
//
// The two shuffles move exactly the loads of paper eq. (2):
// L_uncoded = 1 - r/K and L_coded = (1/r)(1 - r/K) (bench_fig2
// verifies this equality on measured traffic).
//
// Shuffle sequencing (ShuffleSync in CmrConfig): kBarrier runs the
// paper's synchronous stage-after-stage protocol. kOverlapped is the
// asynchronous-execution extension (paper Section VI): the uncoded
// engine pipelines Map with Shuffle — a node starts transmitting a
// file's intermediate values (nonblocking isend) as soon as that file
// is mapped, with receives posted before mapping begins — and the
// coded engine posts all multicast packets of the round before
// draining receives. Overlap never changes the bytes on the wire
// (loads are byte-identical; tests/property_test.cc asserts this);
// it only changes the initiation ORDER, which the transmission-log
// replay (simnet::ReplayMakespan) prices under parallel links.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "driver/run_result.h"
#include "simmpi/eventlog.h"
#include "simmpi/traffic.h"

namespace cts::cmr {

// A MapReduce application. Implementations must be deterministic: the
// engine calls make_file on every node holding the file and relies on
// identical bytes.
class CmrApp {
 public:
  virtual ~CmrApp() = default;

  virtual std::string name() const = 0;

  // The raw records of file `file` (workload generation; the paper's
  // input files pre-placed on workers).
  virtual std::vector<std::string> make_file(FileId file,
                                             std::uint64_t seed) const = 0;

  // Maps a file's records to one serialized intermediate value per
  // reducer. Returned vector has exactly num_reducers entries.
  virtual std::vector<std::vector<std::uint8_t>> map(
      const std::vector<std::string>& records, int num_reducers) const = 0;

  // Folds the per-file intermediate values of one reducer (in FileId
  // order, one entry per file) into the reducer's output.
  virtual std::string reduce(
      int reducer,
      const std::vector<std::vector<std::uint8_t>>& values) const = 0;
};

enum class ShuffleMode { kUncoded, kCoded };

struct CmrConfig {
  int num_nodes = 4;   // K (== number of reducers Q)
  int redundancy = 1;  // r
  std::uint64_t seed = 7;
  ShuffleMode mode = ShuffleMode::kUncoded;
  // Barrier-synchronous stages (the paper) or the pipelined
  // map/shuffle overlap on nonblocking sends (Section VI extension).
  ShuffleSync sync = ShuffleSync::kBarrier;
  // Live straggler injection (tests / demos; see driver/run_result.h).
  std::vector<InjectedDelay> injected_delays;
};

struct CmrResult {
  CmrConfig config;
  // outputs[q] = reducer q's result.
  std::vector<std::string> outputs;
  // Per-stage transport counters ("Map"/"Shuffle"/"Reduce").
  std::map<std::string, simmpi::ChannelCounters> traffic;
  // Sum over (file, reducer) of intermediate-value bytes — the Q*N
  // normalizer of the communication load.
  std::uint64_t total_iv_bytes = 0;
  // Pure intermediate-value payload shuffled (no packet headers):
  // uncoded = IV bytes unicast, coded = XOR-packet payload bytes.
  std::uint64_t shuffled_payload_bytes = 0;
  // Ordered shuffle transmissions (true initiation order), for
  // discrete-event replay by simnet::ReplayMakespan.
  simnet::TransmissionLog shuffle_log;

  // Transport events for happens-before analysis (empty unless capture
  // was requested; see AlgorithmResult::transport_events).
  simmpi::TransportLog transport_events;

  // Stage names in execution order and per-node stage boundaries at
  // executed scale; the scenario engine replays these (CMR has no
  // NodeWork counters, so its compute phases are priced from the
  // measured boundaries).
  std::vector<std::string> stage_order;
  ComputeLog compute_events;

  // Measured communication load on the wire (includes packet framing):
  // transmitted bytes / total IV bytes (the paper's L).
  double measured_load() const;

  // Load on payloads only — matches eq. (2) exactly up to zero-padding
  // of ragged segments.
  double measured_payload_load() const;
};

// Runs the app distributedly on a fresh simulated cluster.
CmrResult RunCmr(const CmrApp& app, const CmrConfig& config);

// ---- Bundled applications ----

// Grep: emits every record containing `pattern`, routed to a reducer
// by record hash; reducers return matches joined by '\n'.
std::unique_ptr<CmrApp> MakeGrepApp(std::string pattern,
                                    int records_per_file = 200);

// WordCount: words routed by hash; reducers return "word count" lines
// sorted by word.
std::unique_ptr<CmrApp> MakeWordCountApp(int records_per_file = 200);

// SelfJoin (named in the paper's Sections I and VI): records are
// "key value" pairs; the join emits every ordered pair of distinct
// values sharing a key, routed by key hash. Reducers return
// "key valueA valueB" lines.
std::unique_ptr<CmrApp> MakeSelfJoinApp(int records_per_file = 100,
                                        int key_space = 64);

// Inverted index (the RankedInvertedIndex workload family of [6]):
// each record is a document line; reducers return "word: doc doc ..."
// postings sorted by word, documents ascending.
std::unique_ptr<CmrApp> MakeInvertedIndexApp(int records_per_file = 100);

}  // namespace cts::cmr
