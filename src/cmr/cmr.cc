#include "cmr/cmr.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>

#include "coding/codec.h"
#include "coding/placement.h"
#include "common/buffer.h"
#include "common/check.h"
#include "common/random.h"
#include "driver/cluster.h"
#include "simmpi/comm.h"
#include "simmpi/multicast_round.h"
#include "simmpi/world.h"

namespace cts::cmr {

namespace {

constexpr simmpi::Tag kTagBase = 0;

// FNV-1a: stable, platform-independent routing hash (std::hash is not
// specified across implementations).
std::uint64_t StableHash(std::string_view s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

NodeId MinMember(NodeMask mask) {
  CTS_CHECK_NE(mask, NodeMask{0});
  return std::countr_zero(mask);
}

}  // namespace

double CmrResult::measured_load() const {
  CTS_CHECK_GT(total_iv_bytes, std::uint64_t{0});
  const auto it = traffic.find(stage::kShuffle);
  if (it == traffic.end()) return 0;
  return static_cast<double>(it->second.transmitted_bytes()) /
         static_cast<double>(total_iv_bytes);
}

double CmrResult::measured_payload_load() const {
  CTS_CHECK_GT(total_iv_bytes, std::uint64_t{0});
  return static_cast<double>(shuffled_payload_bytes) /
         static_cast<double>(total_iv_bytes);
}

CmrResult RunCmr(const CmrApp& app, const CmrConfig& config) {
  const int K = config.num_nodes;
  const int r = config.redundancy;
  const Placement placement = Placement::Create(K, r);
  const int N = placement.num_files();

  simmpi::World world(K);
  RunRecorder recorder(K);
  std::mutex out_mu;
  std::vector<std::string> outputs(static_cast<std::size_t>(K));
  std::atomic<std::uint64_t> total_iv_bytes{0};
  std::atomic<std::uint64_t> payload_bytes{0};

  const auto program = [&](simmpi::Comm& comm, RunRecorder& rec) {
    const NodeId self = comm.my_global();
    StageRunner stages(comm, rec, &config.injected_delays);
    using IvKey = std::pair<NodeId, FileId>;

    // ---- CodeGen (coded mode only) ----
    std::map<NodeMask, simmpi::Comm> groups;
    if (config.mode == ShuffleMode::kCoded) {
      stages.run(stage::kCodeGen, [&] {
        for (const NodeMask g : placement.multicast_groups()) {
          auto sub = comm.split(Contains(g, self) ? 0 : -1, self);
          if (sub.has_value()) groups.emplace(g, std::move(*sub));
        }
      });
    }

    // ---- Map ----
    // own_ivs[f] = I^self_f for files this node holds; kept[t][f] =
    // serialized I^t_f this node retains for the shuffle. The body is
    // shared between the barrier-synchronous Map stage and the
    // pipelined map/shuffle overlap; `on_file_mapped` (may be null)
    // fires after each file's values are stored.
    std::map<FileId, std::vector<std::uint8_t>> own_ivs;
    std::map<IvKey, std::vector<std::uint8_t>> kept;
    const auto map_files =
        [&](const std::function<void(FileId)>& on_file_mapped) {
          for (const FileId f : placement.files_on_node(self)) {
            const NodeMask mask = placement.file_nodes(f);
            const auto records = app.make_file(f, config.seed);
            auto ivs = app.map(records, K);
            CTS_CHECK_EQ(static_cast<int>(ivs.size()), K);
            // The lowest-id holder accounts the Q*N normalizer once.
            if (MinMember(mask) == self) {
              std::uint64_t bytes = 0;
              for (const auto& iv : ivs) bytes += iv.size();
              total_iv_bytes.fetch_add(bytes);
            }
            for (int t = 0; t < K; ++t) {
              auto& iv = ivs[static_cast<std::size_t>(t)];
              if (t == self) {
                own_ivs.emplace(f, std::move(iv));
              } else if (!Contains(mask, t)) {
                kept.emplace(IvKey{t, f}, std::move(iv));
              }
            }
            if (on_file_mapped) on_file_mapped(f);
          }
        };

    // The uncoded sends of one mapped file (lowest holder only).
    // `post` transmits one intermediate value to one target rank.
    const auto send_file_ivs =
        [&](FileId f,
            const std::function<void(NodeId, simmpi::Tag,
                                     const std::vector<std::uint8_t>&)>&
                post) {
          const NodeMask mask = placement.file_nodes(f);
          if (MinMember(mask) != self) return;
          for (NodeId t = 0; t < K; ++t) {
            if (Contains(mask, t) || t == self) continue;
            const auto& iv = kept.at(IvKey{t, f});
            payload_bytes.fetch_add(iv.size());
            post(t, kTagBase + f, iv);
          }
        };

    std::map<FileId, std::vector<std::uint8_t>> received;
    const bool overlapped = config.sync == ShuffleSync::kOverlapped;

    if (config.mode == ShuffleMode::kUncoded && overlapped) {
      // ---- Pipelined Map+Shuffle (one merged stage, labeled Shuffle
      // so the traffic lands where the load accounting expects it;
      // Map itself generates no traffic) ----
      // Receives are posted before mapping begins; each file's values
      // go on the wire the moment the file is mapped.
      stages.run(stage::kShuffle, [&] {
        std::vector<std::pair<FileId, simmpi::Request>> recvs;
        for (FileId f = 0; f < N; ++f) {
          const NodeMask mask = placement.file_nodes(f);
          if (Contains(mask, self)) continue;
          recvs.emplace_back(
              f, comm.irecv(comm.rank_of_global(MinMember(mask)),
                            kTagBase + f));
        }
        map_files([&](FileId f) {
          send_file_ivs(f, [&](NodeId t, simmpi::Tag tag,
                               const std::vector<std::uint8_t>& iv) {
            (void)comm.isend(t, tag, iv);
          });
        });
        for (auto& [f, req] : recvs) {
          received.emplace(f, comm.wait(req).take());
        }
      });
    } else {
      stages.run(stage::kMap, [&] { map_files(nullptr); });

      // ---- Shuffle ----
      // Either plain unicast (lowest holder sends each needed IV) or
      // the Algorithm 1/2 coded multicast. Received values are keyed
      // by file.
      stages.run(stage::kShuffle, [&] {
        if (config.mode == ShuffleMode::kUncoded) {
          for (NodeId sender = 0; sender < K; ++sender) {
            for (FileId f = 0; f < N; ++f) {
              const NodeMask mask = placement.file_nodes(f);
              if (MinMember(mask) != sender) continue;
              if (sender == self) {
                send_file_ivs(f, [&](NodeId t, simmpi::Tag tag,
                                     const std::vector<std::uint8_t>& iv) {
                  comm.send(t, tag, iv);
                });
              } else if (!Contains(mask, self)) {
                Buffer payload = comm.recv(sender, kTagBase + f);
                received.emplace(f, payload.take());
              }
            }
          }
        } else {
          // Coded: encode, multicast, decode (same codec as
          // CodedTeraSort; stage split is not needed here because the
          // generic engine reports loads, not stage times).
          const IvAccess iv_access =
              [&](NodeId target,
                  NodeMask file) -> std::span<const std::uint8_t> {
            return kept.at(IvKey{target, placement.file_of(file)});
          };
          std::map<NodeMask, Buffer> outgoing;
          for (const auto& [g, gc] : groups) {
            const CodedPacket packet = EncodePacket(g, self, iv_access);
            payload_bytes.fetch_add(packet.payload.size());
            Buffer wire;
            packet.serialize(wire);
            outgoing.emplace(g, std::move(wire));
          }
          std::map<std::pair<NodeMask, NodeId>, Buffer> incoming =
              simmpi::MulticastRound(groups, outgoing, overlapped);
          for (const auto& [g, gc] : groups) {
            std::vector<DecodedSegment> segments;
            for (const NodeId sender : MaskToNodes(WithoutNode(g, self))) {
              Buffer& wire = incoming.at({g, sender});
              const CodedPacket packet = CodedPacket::deserialize(wire);
              segments.push_back(
                  DecodePacket(g, self, sender, packet, iv_access));
            }
            received.emplace(placement.file_of(WithoutNode(g, self)),
                             MergeSegments(segments));
          }
        }
      });
    }

    // ---- Reduce ----
    stages.run(stage::kReduce, [&] {
      std::vector<std::vector<std::uint8_t>> values;
      values.reserve(static_cast<std::size_t>(N));
      for (FileId f = 0; f < N; ++f) {
        if (const auto own = own_ivs.find(f); own != own_ivs.end()) {
          values.push_back(std::move(own->second));
        } else {
          const auto got = received.find(f);
          CTS_CHECK_MSG(got != received.end(),
                        "reducer " << self << " missing IV of file " << f);
          values.push_back(std::move(got->second));
        }
      }
      std::string out = app.reduce(self, values);
      std::lock_guard lock(out_mu);
      outputs[static_cast<std::size_t>(self)] = std::move(out);
    });
  };

  RunOnCluster(world, recorder, program);

  CmrResult result;
  result.config = config;
  result.outputs = std::move(outputs);
  for (const auto& name : world.stats().stage_names()) {
    result.traffic[name] = world.stats().stage(name);
  }
  result.total_iv_bytes = total_iv_bytes.load();
  result.shuffled_payload_bytes = payload_bytes.load();
  result.shuffle_log = world.stats().transmission_log(stage::kShuffle);
  result.transport_events = world.transport_log();
  result.stage_order = recorder.stage_order();
  result.compute_events = recorder.compute_events();
  CTS_CHECK_EQ(world.pending_messages(), std::size_t{0});
  return result;
}

// ---- Grep ----

namespace {

// Small dictionary for deterministic text generation.
constexpr const char* kWords[] = {
    "map",    "reduce",  "shuffle", "sort",   "coded",  "packet",
    "node",   "cluster", "spark",   "hadoop", "stream", "kernel",
    "matrix", "vector",  "graph",   "index",  "needle", "gradient",
};
constexpr std::size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

std::vector<std::string> MakeTextFile(FileId file, std::uint64_t seed,
                                      int records) {
  Xoshiro256 rng(Mix64(seed ^ (0x9e37ULL + static_cast<std::uint64_t>(file))));
  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(records));
  for (int i = 0; i < records; ++i) {
    std::ostringstream line;
    const int words = 4 + static_cast<int>(rng.below(5));
    for (int w = 0; w < words; ++w) {
      if (w > 0) line << ' ';
      line << kWords[rng.below(kNumWords)];
    }
    lines.push_back(line.str());
  }
  return lines;
}

class GrepApp final : public CmrApp {
 public:
  GrepApp(std::string pattern, int records_per_file)
      : pattern_(std::move(pattern)), records_per_file_(records_per_file) {}

  std::string name() const override { return "Grep(" + pattern_ + ")"; }

  std::vector<std::string> make_file(FileId file,
                                     std::uint64_t seed) const override {
    return MakeTextFile(file, seed, records_per_file_);
  }

  std::vector<std::vector<std::uint8_t>> map(
      const std::vector<std::string>& records,
      int num_reducers) const override {
    std::vector<Buffer> per_reducer(static_cast<std::size_t>(num_reducers));
    for (const std::string& record : records) {
      if (record.find(pattern_) == std::string::npos) continue;
      const auto q = static_cast<std::size_t>(
          StableHash(record) % static_cast<std::uint64_t>(num_reducers));
      per_reducer[q].write_string(record);
    }
    std::vector<std::vector<std::uint8_t>> out;
    out.reserve(per_reducer.size());
    for (auto& b : per_reducer) out.push_back(b.take());
    return out;
  }

  std::string reduce(
      int /*reducer*/,
      const std::vector<std::vector<std::uint8_t>>& values) const override {
    std::ostringstream os;
    for (const auto& blob : values) {
      Buffer b{std::vector<std::uint8_t>(blob)};
      while (b.remaining() > 0) os << b.read_string() << '\n';
    }
    return os.str();
  }

 private:
  std::string pattern_;
  int records_per_file_;
};

// ---- WordCount ----

class WordCountApp final : public CmrApp {
 public:
  explicit WordCountApp(int records_per_file)
      : records_per_file_(records_per_file) {}

  std::string name() const override { return "WordCount"; }

  std::vector<std::string> make_file(FileId file,
                                     std::uint64_t seed) const override {
    return MakeTextFile(file, seed, records_per_file_);
  }

  std::vector<std::vector<std::uint8_t>> map(
      const std::vector<std::string>& records,
      int num_reducers) const override {
    // Combiner-style local tally, then (word, count) pairs per reducer.
    std::vector<std::map<std::string, std::uint64_t>> tallies(
        static_cast<std::size_t>(num_reducers));
    for (const std::string& record : records) {
      std::istringstream is(record);
      std::string word;
      while (is >> word) {
        const auto q = static_cast<std::size_t>(
            StableHash(word) % static_cast<std::uint64_t>(num_reducers));
        ++tallies[q][word];
      }
    }
    std::vector<std::vector<std::uint8_t>> out;
    out.reserve(tallies.size());
    for (const auto& tally : tallies) {
      Buffer b;
      for (const auto& [word, count] : tally) {
        b.write_string(word);
        b.write_u64(count);
      }
      out.push_back(b.take());
    }
    return out;
  }

  std::string reduce(
      int /*reducer*/,
      const std::vector<std::vector<std::uint8_t>>& values) const override {
    std::map<std::string, std::uint64_t> counts;
    for (const auto& blob : values) {
      Buffer b{std::vector<std::uint8_t>(blob)};
      while (b.remaining() > 0) {
        const std::string word = b.read_string();
        counts[word] += b.read_u64();
      }
    }
    std::ostringstream os;
    for (const auto& [word, count] : counts) {
      os << word << ' ' << count << '\n';
    }
    return os.str();
  }

 private:
  int records_per_file_;
};

// ---- SelfJoin ----

class SelfJoinApp final : public CmrApp {
 public:
  SelfJoinApp(int records_per_file, int key_space)
      : records_per_file_(records_per_file), key_space_(key_space) {}

  std::string name() const override { return "SelfJoin"; }

  // Records "k<id> v<n>": keys from a small space so collisions (and
  // hence join output) actually occur.
  std::vector<std::string> make_file(FileId file,
                                     std::uint64_t seed) const override {
    Xoshiro256 rng(Mix64(seed ^ (0x5e1fULL + static_cast<std::uint64_t>(file))));
    std::vector<std::string> records;
    records.reserve(static_cast<std::size_t>(records_per_file_));
    for (int i = 0; i < records_per_file_; ++i) {
      std::ostringstream os;
      os << 'k' << rng.below(static_cast<std::uint64_t>(key_space_)) << ' '
         << 'v' << rng.below(1000);
      records.push_back(os.str());
    }
    return records;
  }

  std::vector<std::vector<std::uint8_t>> map(
      const std::vector<std::string>& records,
      int num_reducers) const override {
    std::vector<Buffer> per_reducer(static_cast<std::size_t>(num_reducers));
    for (const std::string& record : records) {
      const std::size_t space = record.find(' ');
      CTS_CHECK_NE(space, std::string::npos);
      const std::string key = record.substr(0, space);
      const auto q = static_cast<std::size_t>(
          StableHash(key) % static_cast<std::uint64_t>(num_reducers));
      per_reducer[q].write_string(record);
    }
    std::vector<std::vector<std::uint8_t>> out;
    out.reserve(per_reducer.size());
    for (auto& b : per_reducer) out.push_back(b.take());
    return out;
  }

  std::string reduce(
      int /*reducer*/,
      const std::vector<std::vector<std::uint8_t>>& values) const override {
    // Group values by key (values kept in arrival order: file order,
    // then record order — deterministic across shuffles).
    std::map<std::string, std::vector<std::string>> by_key;
    for (const auto& blob : values) {
      Buffer b{std::vector<std::uint8_t>(blob)};
      while (b.remaining() > 0) {
        const std::string record = b.read_string();
        const std::size_t space = record.find(' ');
        by_key[record.substr(0, space)].push_back(record.substr(space + 1));
      }
    }
    std::ostringstream os;
    for (const auto& [key, vals] : by_key) {
      for (std::size_t i = 0; i < vals.size(); ++i) {
        for (std::size_t j = i + 1; j < vals.size(); ++j) {
          os << key << ' ' << vals[i] << ' ' << vals[j] << '\n';
        }
      }
    }
    return os.str();
  }

 private:
  int records_per_file_;
  int key_space_;
};

// ---- Inverted index ----

class InvertedIndexApp final : public CmrApp {
 public:
  explicit InvertedIndexApp(int records_per_file)
      : records_per_file_(records_per_file) {}

  std::string name() const override { return "InvertedIndex"; }

  std::vector<std::string> make_file(FileId file,
                                     std::uint64_t seed) const override {
    return MakeTextFile(file, seed, records_per_file_);
  }

  std::vector<std::vector<std::uint8_t>> map(
      const std::vector<std::string>& records,
      int num_reducers) const override {
    // Document id = hash of the full line (stable across the nodes
    // that map the same file). Postings are (word -> set of doc ids).
    std::vector<std::map<std::string, std::set<std::uint64_t>>> postings(
        static_cast<std::size_t>(num_reducers));
    for (const std::string& record : records) {
      const std::uint64_t doc = StableHash(record) >> 32;  // short id
      std::istringstream is(record);
      std::string word;
      while (is >> word) {
        const auto q = static_cast<std::size_t>(
            StableHash(word) % static_cast<std::uint64_t>(num_reducers));
        postings[q][word].insert(doc);
      }
    }
    std::vector<std::vector<std::uint8_t>> out;
    out.reserve(postings.size());
    for (const auto& tally : postings) {
      Buffer b;
      for (const auto& [word, docs] : tally) {
        b.write_string(word);
        b.write_u64(docs.size());
        for (const std::uint64_t d : docs) b.write_u64(d);
      }
      out.push_back(b.take());
    }
    return out;
  }

  std::string reduce(
      int /*reducer*/,
      const std::vector<std::vector<std::uint8_t>>& values) const override {
    std::map<std::string, std::set<std::uint64_t>> merged;
    for (const auto& blob : values) {
      Buffer b{std::vector<std::uint8_t>(blob)};
      while (b.remaining() > 0) {
        const std::string word = b.read_string();
        const std::uint64_t n = b.read_u64();
        auto& docs = merged[word];
        for (std::uint64_t i = 0; i < n; ++i) docs.insert(b.read_u64());
      }
    }
    std::ostringstream os;
    for (const auto& [word, docs] : merged) {
      os << word << ':';
      for (const std::uint64_t d : docs) os << ' ' << d;
      os << '\n';
    }
    return os.str();
  }

 private:
  int records_per_file_;
};

}  // namespace

std::unique_ptr<CmrApp> MakeGrepApp(std::string pattern,
                                    int records_per_file) {
  return std::make_unique<GrepApp>(std::move(pattern), records_per_file);
}

std::unique_ptr<CmrApp> MakeWordCountApp(int records_per_file) {
  return std::make_unique<WordCountApp>(records_per_file);
}

std::unique_ptr<CmrApp> MakeSelfJoinApp(int records_per_file,
                                        int key_space) {
  return std::make_unique<SelfJoinApp>(records_per_file, key_space);
}

std::unique_ptr<CmrApp> MakeInvertedIndexApp(int records_per_file) {
  return std::make_unique<InvertedIndexApp>(records_per_file);
}

}  // namespace cts::cmr
