// Node-subset combinatorics.
//
// CodedTeraSort identifies an input file with an r-subset S of the K
// nodes (the file F_S is placed on every node in S), and a multicast
// group with an (r+1)-subset M. This module represents subsets as
// NodeMask node bitmasks (kNodeMaskBits wide) and provides:
//   * binomial coefficients C(n, k),
//   * enumeration of all size-r subsets in colexicographic order
//     (Gosper's hack), which doubles as a dense FileId <-> subset
//     bijection via colex (un)ranking,
//   * mask <-> node-list conversions.
//
// Colex order of masks coincides with ascending numeric order of the
// masks themselves, so FileId assignment is stable and independent of
// how a subset was produced.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace cts {

// C(n, k) as exact 64-bit arithmetic. Valid for the ranges the coded
// engines use (results < 2^64); CTS_CHECK-aborts on overflow. Planner
// arithmetic at K ~ 1000 must use BinomialOr instead.
std::uint64_t Binomial(int n, int k);

// Non-aborting Binomial: writes C(n, k) to *out and returns true, or
// returns false (leaving *out untouched) when the value would
// overflow 64 bits — e.g. C(1000, 8). Scale backends turn that into a
// structured error instead of a process abort.
bool BinomialOr(int n, int k, std::uint64_t* out);

// Smallest mask with r bits set: {0, 1, ..., r-1}.
inline NodeMask FirstSubset(int r) {
  return r == 0 ? NodeMask{0}
                : (r >= kNodeMaskBits ? ~NodeMask{0}
                                      : ((NodeMask{1} << r) - 1));
}

// Gosper's hack: the next mask with the same popcount, in ascending
// numeric (= colex) order. Precondition: mask != 0.
inline NodeMask NextSubsetSameSize(NodeMask mask) {
  // Lowest set bit via unsigned wraparound (no signed cast, which
  // would be UB-adjacent at the top bit after the 64-bit widening).
  const NodeMask c = mask & (NodeMask{0} - mask);
  const NodeMask rr = mask + c;
  return (((rr ^ mask) >> 2) / c) | rr;
}

inline int Popcount(NodeMask mask) { return std::popcount(mask); }

inline bool Contains(NodeMask mask, NodeId node) {
  return (mask >> node) & NodeMask{1};
}

inline NodeMask WithNode(NodeMask mask, NodeId node) {
  return mask | (NodeMask{1} << node);
}

inline NodeMask WithoutNode(NodeMask mask, NodeId node) {
  return mask & ~(NodeMask{1} << node);
}

// All size-r subsets of {0..K-1} in colex order. Size = C(K, r).
std::vector<NodeMask> AllSubsets(int K, int r);

// All size-r subsets of {0..K-1} that contain `node`, in colex order.
// Size = C(K-1, r-1).
std::vector<NodeMask> SubsetsContaining(int K, int r, NodeId node);

// Colex rank of `mask` among all masks of equal popcount: the number of
// same-size masks that are numerically smaller. Inverse of ColexUnrank.
std::uint64_t ColexRank(NodeMask mask);

// The rank-th (0-based) size-r subset of {0..K-1} in colex order.
NodeMask ColexUnrank(int K, int r, std::uint64_t rank);

// Ascending list of member nodes of `mask`.
std::vector<NodeId> MaskToNodes(NodeMask mask);

// Mask from a list of distinct node ids (order-insensitive).
NodeMask NodesToMask(const std::vector<NodeId>& nodes);

}  // namespace cts
