#include "combinatorics/subsets.h"

#include <numeric>

namespace cts {

std::uint64_t Binomial(int n, int k) {
  std::uint64_t result = 0;
  CTS_CHECK_MSG(BinomialOr(n, k, &result),
                "Binomial overflow at C(" << n << "," << k << ")");
  return result;
}

bool BinomialOr(int n, int k, std::uint64_t* out) {
  CTS_CHECK_GE(n, 0);
  if (k < 0 || k > n) {
    *out = 0;
    return true;
  }
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    // result * (n - k + i) / i is exact at every step because the
    // product of i consecutive integers is divisible by i!. Cancel the
    // divisor BEFORE multiplying: the raw product result * num can
    // overflow even when C(n, k) itself fits (C(63,31) * 64 > 2^64 >
    // C(64,32)), so reduce num/i by gcd, then the residual divisor
    // against result. Exactness forces the divisor to 1 afterwards, so
    // the checked product equals C(n-k+i, i) and the overflow test has
    // no false positives.
    std::uint64_t num = static_cast<std::uint64_t>(n - k + i);
    std::uint64_t den = static_cast<std::uint64_t>(i);
    std::uint64_t g = std::gcd(num, den);
    num /= g;
    den /= g;
    g = std::gcd(result, den);
    result /= g;
    den /= g;
    CTS_CHECK_EQ(den, std::uint64_t{1});
    if (result > ~std::uint64_t{0} / num) return false;
    result *= num;
  }
  *out = result;
  return true;
}

std::vector<NodeMask> AllSubsets(int K, int r) {
  CTS_CHECK_GE(K, 0);
  CTS_CHECK_LE(K, kMaxNodes);
  CTS_CHECK_GE(r, 0);
  CTS_CHECK_LE(r, K);
  std::vector<NodeMask> out;
  out.reserve(Binomial(K, r));
  if (r == 0) {
    out.push_back(NodeMask{0});
    return out;
  }
  // Key the full-mask case off the mask width, not a literal: with a
  // 64-bit NodeMask, (K >= 32) would wrongly saturate the limit for
  // 32 < K < 64 and enumerate subsets outside the K-node universe.
  const NodeMask limit =
      (K >= kNodeMaskBits) ? ~NodeMask{0} : ((NodeMask{1} << K) - 1);
  for (NodeMask m = FirstSubset(r); m <= limit;
       m = NextSubsetSameSize(m)) {
    out.push_back(m);
    // Gosper's hack overflows toward larger masks; stop once the next
    // mask would exceed the K-node universe (also guards m == limit).
    if (m == limit || NextSubsetSameSize(m) < m) break;
  }
  CTS_CHECK_EQ(out.size(), Binomial(K, r));
  return out;
}

std::vector<NodeMask> SubsetsContaining(int K, int r, NodeId node) {
  CTS_CHECK_GE(node, 0);
  CTS_CHECK_LT(node, K);
  CTS_CHECK_GE(r, 1);
  std::vector<NodeMask> out;
  out.reserve(Binomial(K - 1, r - 1));
  for (NodeMask m : AllSubsets(K, r)) {
    if (Contains(m, node)) out.push_back(m);
  }
  CTS_CHECK_EQ(out.size(), Binomial(K - 1, r - 1));
  return out;
}

std::uint64_t ColexRank(NodeMask mask) {
  // rank = sum over the i-th smallest member b_i (i = 1..r, ascending)
  // of C(b_i, i).
  std::uint64_t rank = 0;
  int i = 1;
  NodeMask m = mask;
  while (m != 0) {
    const int bit = std::countr_zero(m);
    rank += Binomial(bit, i);
    ++i;
    m &= m - 1;
  }
  return rank;
}

NodeMask ColexUnrank(int K, int r, std::uint64_t rank) {
  CTS_CHECK_LT(rank, Binomial(K, r));
  NodeMask mask = 0;
  std::uint64_t remaining = rank;
  // Choose members from the largest down: the r-th (largest) member is
  // the greatest b with C(b, r) <= remaining.
  int bound = K - 1;
  for (int i = r; i >= 1; --i) {
    int b = bound;
    while (Binomial(b, i) > remaining) --b;
    mask = WithNode(mask, b);
    remaining -= Binomial(b, i);
    bound = b - 1;
  }
  CTS_CHECK_EQ(ColexRank(mask), rank);
  return mask;
}

std::vector<NodeId> MaskToNodes(NodeMask mask) {
  std::vector<NodeId> nodes;
  nodes.reserve(Popcount(mask));
  NodeMask m = mask;
  while (m != 0) {
    nodes.push_back(std::countr_zero(m));
    m &= m - 1;
  }
  return nodes;
}

NodeMask NodesToMask(const std::vector<NodeId>& nodes) {
  NodeMask mask = 0;
  for (NodeId n : nodes) {
    CTS_CHECK_GE(n, 0);
    CTS_CHECK_LT(n, kMaxNodes);
    CTS_CHECK_MSG(!Contains(mask, n), "duplicate node " << n);
    mask = WithNode(mask, n);
  }
  return mask;
}

}  // namespace cts
