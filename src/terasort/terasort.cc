#include "terasort/terasort.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "coding/placement.h"
#include "common/check.h"
#include "driver/partition_util.h"
#include "keyvalue/recordio.h"
#include "keyvalue/teragen.h"

namespace cts {

namespace {

constexpr simmpi::Tag kTagShuffle = 0;

}  // namespace

void TeraSortNode(simmpi::Comm& comm, RunRecorder& recorder,
                  const SortConfig& config) {
  const int K = config.num_nodes;
  CTS_CHECK_EQ(comm.size(), K);
  const NodeId self = comm.my_global();

  // File placement: the r = 1 degenerate placement puts file k on node
  // k. Computed directly (not via Placement, whose masks cap at
  // kMaxNodes) so plain TeraSort scales to K ~ 100 live nodes.
  const RecordRange my_range =
      SplitRange(config.num_records, static_cast<std::uint64_t>(K),
                 static_cast<std::uint64_t>(self));
  const TeraGen gen(config.seed, config.distribution);

  // kDistributedSampled replaces the coordinator's partition file with
  // Hadoop-style collective sampling (collective on the world comm).
  std::unique_ptr<Partitioner> partitioner;
  if (config.partitioner == PartitionerKind::kDistributedSampled) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> local{
        {my_range.offset, my_range.count}};
    partitioner = std::make_unique<SampledPartitioner>(
        BuildDistributedSampledPartitioner(comm, gen, local,
                                           config.sample_size));
  } else {
    partitioner = MakePartitioner(config);
  }

  StageRunner stages(comm, recorder, &config.injected_delays);
  NodeWork work;

  // Hash outputs: intermediate value I^j_{self} per partition j.
  std::vector<std::vector<Record>> hashed(static_cast<std::size_t>(K));
  // Serialized outgoing values, one per other node.
  std::vector<Buffer> packed(static_cast<std::size_t>(K));
  // Raw shuffle payloads received from other nodes.
  std::vector<Buffer> received(static_cast<std::size_t>(K));

  // ---- Map ----
  stages.run(stage::kMap, [&] {
    const auto records = gen.generate(my_range.offset, my_range.count);
    for (const Record& rec : records) {
      const PartitionId p = partitioner->partition(rec.key);
      hashed[static_cast<std::size_t>(p)].push_back(rec);
    }
    work.map_bytes += records.size() * kRecordBytes;
    work.map_files += 1;
  });

  // ---- Pack ----
  stages.run(stage::kPack, [&] {
    for (int j = 0; j < K; ++j) {
      if (j == self) continue;
      work.pack_bytes += PackRecords(hashed[static_cast<std::size_t>(j)],
                                     packed[static_cast<std::size_t>(j)]);
    }
  });

  // ---- Shuffle ----
  // kBarrier: serial unicast, sender 0 first (paper Fig. 9(a)) — the
  // blocking receives sequence the senders so one transfer occupies
  // the shared medium at a time.
  // kOverlapped: every node posts its K-1 receives, fires all K-1
  // sends nonblocking, then drains — all senders initiate
  // concurrently, which parallel links can overlap.
  stages.run(stage::kShuffle, [&] {
    if (config.shuffle_sync == ShuffleSync::kOverlapped) {
      std::vector<simmpi::Request> recvs;
      recvs.reserve(static_cast<std::size_t>(K) - 1);
      for (int sender = 0; sender < K; ++sender) {
        if (sender == self) continue;
        recvs.push_back(comm.irecv(sender, kTagShuffle));
      }
      for (int j = 0; j < K; ++j) {
        if (j == self) continue;
        (void)comm.isend(j, kTagShuffle, packed[static_cast<std::size_t>(j)]);
      }
      std::size_t i = 0;
      for (int sender = 0; sender < K; ++sender) {
        if (sender == self) continue;
        received[static_cast<std::size_t>(sender)] = comm.wait(recvs[i++]);
      }
      return;
    }
    for (int sender = 0; sender < K; ++sender) {
      if (sender == self) {
        for (int j = 0; j < K; ++j) {
          if (j == self) continue;
          comm.send(j, kTagShuffle, packed[static_cast<std::size_t>(j)]);
        }
      } else {
        received[static_cast<std::size_t>(sender)] =
            comm.recv(sender, kTagShuffle);
      }
    }
  });

  // ---- Unpack ----
  std::vector<Record> pool;
  stages.run(stage::kUnpack, [&] {
    for (int sender = 0; sender < K; ++sender) {
      if (sender == self) continue;
      auto& buf = received[static_cast<std::size_t>(sender)];
      work.unpack_bytes += buf.size();
      UnpackRecordsInto(buf, pool);
      // Shuffle payloads are arena-backed (Comm::deliver); hand the
      // storage back now that the records are unpacked.
      BufferArena::Local().release(buf.take());
    }
  });

  // ---- Reduce ----
  stages.run(stage::kReduce, [&] {
    auto& own = hashed[static_cast<std::size_t>(self)];
    pool.insert(pool.end(), own.begin(), own.end());
    std::sort(pool.begin(), pool.end(), RecordLess);
    work.reduce_bytes += pool.size() * kRecordBytes;
    // Partition-ownership invariant: everything this node reduced must
    // belong to its key range.
    for (const Record& rec : pool) {
      CTS_CHECK_MSG(partitioner->partition(rec.key) == self,
                    "record outside partition " << self);
    }
  });

  recorder.set_partition(self, std::move(pool));
  recorder.set_work(self, work);
}

AlgorithmResult RunTeraSort(const SortConfig& config) {
  simmpi::World world(config.num_nodes);
  RunRecorder recorder(config.num_nodes);
  RunOnCluster(world, recorder, [&](simmpi::Comm& comm, RunRecorder& rec) {
    TeraSortNode(comm, rec, config);
  });

  AlgorithmResult result;
  result.config = config;
  result.config.redundancy = 1;
  result.algorithm = "TeraSort";
  result.partitions = recorder.take_partitions();
  result.work = recorder.work();
  result.wall_seconds = recorder.wall_max();
  result.stage_order = recorder.stage_order();
  result.compute_events = recorder.compute_events();
  for (const auto& name : world.stats().stage_names()) {
    result.traffic[name] = world.stats().stage(name);
  }
  result.shuffle_node_traffic = world.stats().per_node(stage::kShuffle);
  result.shuffle_log = world.stats().transmission_log(stage::kShuffle);
  result.transport_events = world.transport_log();
  CTS_CHECK_EQ(result.total_output_records(), config.num_records);
  CTS_CHECK_EQ(world.pending_messages(), std::size_t{0});
  return result;
}

}  // namespace cts
