// Baseline TeraSort (paper Section III).
//
// Five stages, exactly as the paper's C++/Open MPI implementation:
//
//   Map     — node k hashes every KV pair of its single input file
//             F_{k} into the K key-domain partitions.
//   Pack    — each intermediate value I^j_{k} (j != k) is serialized
//             into one contiguous array so a single flow carries it.
//   Shuffle — serial unicast: node 0 sends its K-1 intermediate values
//             back-to-back, then node 1, ... (paper Fig. 9(a)).
//   Unpack  — received arrays are deserialized into KV lists.
//   Reduce  — node k sorts partition P_k locally (std::sort).
//
// The input file of node k is generated in place from the deterministic
// TeraGen stream (the paper's coordinator pre-places files on workers'
// local disks; generation stands in for local-disk load).
#pragma once

#include "driver/cluster.h"
#include "driver/run_result.h"
#include "simmpi/comm.h"

namespace cts {

// The TeraSort node program. Runs inside a cluster node thread; fills
// `recorder` with this node's partition, work counters and stage walls.
void TeraSortNode(simmpi::Comm& world_comm, RunRecorder& recorder,
                  const SortConfig& config);

// Convenience driver: executes TeraSort on a fresh simulated cluster
// and returns the assembled result (validated for record conservation).
AlgorithmResult RunTeraSort(const SortConfig& config);

}  // namespace cts
