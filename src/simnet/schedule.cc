#include "simnet/schedule.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace cts::simnet {

double LinkModel::tx_seconds(const Transmission& t) const {
  CTS_CHECK_GT(bytes_per_sec, 0.0);
  const double fanout = static_cast<double>(t.dsts.size());
  const double penalty =
      fanout > 1.0 ? 1.0 + multicast_log_coeff * std::log2(fanout) : 1.0;
  return static_cast<double>(t.bytes) * penalty / bytes_per_sec;
}

double LinkModel::rx_seconds(const Transmission& t) const {
  return static_cast<double>(t.bytes) / bytes_per_sec;
}

double SerialMakespan(const TransmissionLog& log, const LinkModel& link) {
  double total = 0;
  for (const Transmission& t : log) total += link.tx_seconds(t);
  return total;
}

double ParallelMakespan(const TransmissionLog& log, const LinkModel& link,
                        int num_nodes, bool full_duplex) {
  CTS_CHECK_GE(num_nodes, 1);
  // free_up[n] / free_down[n]: earliest time node n's uplink /
  // downlink is available. Half duplex aliases them.
  std::vector<double> free_up(static_cast<std::size_t>(num_nodes), 0.0);
  std::vector<double> free_down(static_cast<std::size_t>(num_nodes), 0.0);

  auto up = [&](NodeId n) -> double& {
    CTS_CHECK_LT(n, num_nodes);
    return free_up[static_cast<std::size_t>(n)];
  };
  auto down = [&](NodeId n) -> double& {
    CTS_CHECK_LT(n, num_nodes);
    return full_duplex ? free_down[static_cast<std::size_t>(n)]
                       : free_up[static_cast<std::size_t>(n)];
  };

  double makespan = 0;
  for (const Transmission& t : log) {
    // List scheduling in log order: start when the sender's uplink and
    // every receiver's downlink are simultaneously free.
    double start = up(t.src);
    for (const NodeId d : t.dsts) start = std::max(start, down(d));
    const double tx_end = start + link.tx_seconds(t);
    const double rx_end = start + link.rx_seconds(t);
    up(t.src) = tx_end;
    for (const NodeId d : t.dsts) down(d) = std::max(down(d), rx_end);
    makespan = std::max(makespan, std::max(tx_end, rx_end));
  }
  return makespan;
}

double ParallelLinkBound(const TransmissionLog& log, const LinkModel& link,
                         int num_nodes, bool full_duplex) {
  CTS_CHECK_GE(num_nodes, 1);
  std::vector<double> tx(static_cast<std::size_t>(num_nodes), 0.0);
  std::vector<double> rx(static_cast<std::size_t>(num_nodes), 0.0);
  for (const Transmission& t : log) {
    CTS_CHECK_LT(t.src, num_nodes);
    tx[static_cast<std::size_t>(t.src)] += link.tx_seconds(t);
    for (const NodeId d : t.dsts) {
      CTS_CHECK_LT(d, num_nodes);
      rx[static_cast<std::size_t>(d)] += link.rx_seconds(t);
    }
  }
  double bound = 0;
  for (int n = 0; n < num_nodes; ++n) {
    const double t = tx[static_cast<std::size_t>(n)];
    const double r = rx[static_cast<std::size_t>(n)];
    bound = std::max(bound, full_duplex ? std::max(t, r) : t + r);
  }
  return bound;
}

}  // namespace cts::simnet
