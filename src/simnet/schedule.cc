#include "simnet/schedule.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace cts::simnet {

double LinkModel::tx_seconds(const Transmission& t) const {
  CTS_CHECK_GT(bytes_per_sec, 0.0);
  const double fanout = static_cast<double>(t.dsts.size());
  const double penalty =
      fanout > 1.0 ? 1.0 + multicast_log_coeff * std::log2(fanout) : 1.0;
  return static_cast<double>(t.bytes) * penalty / bytes_per_sec;
}

double LinkModel::rx_seconds(const Transmission& t) const {
  return static_cast<double>(t.bytes) / bytes_per_sec;
}

double SerialMakespan(const TransmissionLog& log, const LinkModel& link) {
  double total = 0;
  for (const Transmission& t : log) total += link.tx_seconds(t);
  return total;
}

namespace {

// Link-availability state shared by the parallel replays. Half duplex
// aliases a node's downlink onto its uplink.
class LinkState {
 public:
  LinkState(int num_nodes, bool full_duplex)
      : num_nodes_(num_nodes),
        full_duplex_(full_duplex),
        free_up_(static_cast<std::size_t>(num_nodes), 0.0),
        free_down_(static_cast<std::size_t>(num_nodes), 0.0) {}

  double& up(NodeId n) {
    CTS_CHECK_GE(n, 0);
    CTS_CHECK_LT(n, num_nodes_);
    return free_up_[static_cast<std::size_t>(n)];
  }
  double& down(NodeId n) {
    CTS_CHECK_GE(n, 0);
    CTS_CHECK_LT(n, num_nodes_);
    return full_duplex_ ? free_down_[static_cast<std::size_t>(n)]
                        : free_up_[static_cast<std::size_t>(n)];
  }

  // Earliest time `t` could start: sender's uplink and every
  // receiver's downlink simultaneously free.
  double earliest_start(const Transmission& t) {
    double start = up(t.src);
    for (const NodeId d : t.dsts) start = std::max(start, down(d));
    return start;
  }

  // Occupies the links for `t` starting at `start`; returns the
  // latest completion across the involved links.
  double schedule(const Transmission& t, double start,
                  const LinkModel& link) {
    const double tx_end = start + link.tx_seconds(t);
    const double rx_end = start + link.rx_seconds(t);
    up(t.src) = tx_end;
    for (const NodeId d : t.dsts) down(d) = std::max(down(d), rx_end);
    return std::max(tx_end, rx_end);
  }

 private:
  int num_nodes_;
  bool full_duplex_;
  std::vector<double> free_up_;
  std::vector<double> free_down_;
};

// List scheduling in global log order: a transmission starts as soon
// as its links are free, but never reorders past its predecessors.
double ParallelLogOrderMakespan(const TransmissionLog& log,
                                const LinkModel& link, int num_nodes,
                                bool full_duplex) {
  LinkState state(num_nodes, full_duplex);
  double makespan = 0;
  for (const Transmission& t : log) {
    const double start = state.earliest_start(t);
    makespan = std::max(makespan, state.schedule(t, start, link));
  }
  return makespan;
}

// Greedy event-driven scheduling constrained only by each sender's
// program order: among every sender's next pending transmission, the
// one that can start earliest goes first (ties broken by sender id,
// then seq — deterministic).
double ParallelPerSenderMakespan(const TransmissionLog& log,
                                 const LinkModel& link, int num_nodes,
                                 bool full_duplex) {
  LinkState state(num_nodes, full_duplex);
  // Per-sender FIFO of log indices in initiation (seq) order — a
  // sender's seq order is its program order. Sorting by seq rather
  // than trusting vector positions keeps the replay correct for a
  // stage log a caller filtered or reordered before replaying; it
  // does NOT make mixing different stages' logs valid (their seqs
  // restart at 0 and would interleave arbitrarily).
  std::vector<std::vector<std::size_t>> queue(
      static_cast<std::size_t>(num_nodes));
  for (std::size_t i = 0; i < log.size(); ++i) {
    const NodeId src = log[i].src;
    CTS_CHECK_GE(src, 0);
    CTS_CHECK_LT(src, num_nodes);
    queue[static_cast<std::size_t>(src)].push_back(i);
  }
  for (auto& q : queue) {
    std::sort(q.begin(), q.end(), [&](std::size_t a, std::size_t b) {
      return log[a].seq < log[b].seq;
    });
  }
  std::vector<std::size_t> head(static_cast<std::size_t>(num_nodes), 0);

  double makespan = 0;
  std::size_t scheduled = 0;
  while (scheduled < log.size()) {
    int best = -1;
    double best_start = 0;
    for (int n = 0; n < num_nodes; ++n) {
      const auto& q = queue[static_cast<std::size_t>(n)];
      if (head[static_cast<std::size_t>(n)] >= q.size()) continue;
      const Transmission& t = log[q[head[static_cast<std::size_t>(n)]]];
      const double start = state.earliest_start(t);
      if (best < 0 || start < best_start) {
        best = n;
        best_start = start;
      }
    }
    CTS_CHECK_GE(best, 0);
    const Transmission& t =
        log[queue[static_cast<std::size_t>(best)]
                 [head[static_cast<std::size_t>(best)]++]];
    makespan = std::max(makespan, state.schedule(t, best_start, link));
    ++scheduled;
  }
  return makespan;
}

}  // namespace

double ParallelMakespan(const TransmissionLog& log, const LinkModel& link,
                        int num_nodes, bool full_duplex) {
  CTS_CHECK_GE(num_nodes, 1);
  return ParallelLogOrderMakespan(log, link, num_nodes, full_duplex);
}

double ReplayMakespan(const TransmissionLog& log, const LinkModel& link,
                      int num_nodes, Discipline discipline,
                      ReplayOrder order) {
  CTS_CHECK_GE(num_nodes, 1);
  switch (discipline) {
    case Discipline::kSerial:
      return SerialMakespan(log, link);
    case Discipline::kParallelHalfDuplex:
    case Discipline::kParallelFullDuplex: {
      const bool fd = discipline == Discipline::kParallelFullDuplex;
      return order == ReplayOrder::kLogOrder
                 ? ParallelLogOrderMakespan(log, link, num_nodes, fd)
                 : ParallelPerSenderMakespan(log, link, num_nodes, fd);
    }
  }
  CTS_CHECK_MSG(false, "unreachable discipline");
  return 0;
}

double ParallelLinkBound(const TransmissionLog& log, const LinkModel& link,
                         int num_nodes, bool full_duplex) {
  CTS_CHECK_GE(num_nodes, 1);
  std::vector<double> tx(static_cast<std::size_t>(num_nodes), 0.0);
  std::vector<double> rx(static_cast<std::size_t>(num_nodes), 0.0);
  for (const Transmission& t : log) {
    CTS_CHECK_LT(t.src, num_nodes);
    tx[static_cast<std::size_t>(t.src)] += link.tx_seconds(t);
    for (const NodeId d : t.dsts) {
      CTS_CHECK_LT(d, num_nodes);
      rx[static_cast<std::size_t>(d)] += link.rx_seconds(t);
    }
  }
  double bound = 0;
  for (int n = 0; n < num_nodes; ++n) {
    const double t = tx[static_cast<std::size_t>(n)];
    const double r = rx[static_cast<std::size_t>(n)];
    bound = std::max(bound, full_duplex ? std::max(t, r) : t + r);
  }
  return bound;
}

}  // namespace cts::simnet
