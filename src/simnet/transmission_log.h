// Ordered log of every shuffle transmission.
//
// The analytics cost model prices shuffles with closed forms (serial:
// sum of transmissions; parallel: per-node link occupancy). The simnet
// module provides an independent check: the transport logs each
// transmission in initiation order, and a discrete-event simulator
// (schedule.h) replays the log under a network discipline to produce a
// makespan. Tests assert the closed forms and the event simulation
// agree where they must, and the bench harness uses the simulator for
// schedules where closed forms are only bounds.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace cts::simnet {

// One transmission: a unicast has a single destination; an
// application-layer multicast lists all receivers of the single
// logical transmission.
//
// `seq` is the global initiation index within the stage (assigned
// under the traffic-stats lock at the instant the send hits the
// transport), and equals the entry's position in the stage's log.
// This makes initiation order an explicit attribute of each entry —
// a barrier-synchronous run records the paper's sender-serial order,
// an overlapped run records the true interleaved order — so a
// replay can recover it even if a caller filters or reorders a
// stage's log before replaying (seqs are unique within a stage; logs
// of DIFFERENT stages must not be mixed, their seqs restart at 0).
// Within one sender, seq order IS program order (a node thread
// initiates its sends sequentially), which is what the per-sender
// replay discipline relies on.
struct Transmission {
  NodeId src = 0;
  std::vector<NodeId> dsts;
  std::uint64_t bytes = 0;
  std::uint64_t seq = 0;

  bool is_multicast() const { return dsts.size() > 1; }
};

using TransmissionLog = std::vector<Transmission>;

}  // namespace cts::simnet
