// Discrete-event replay of a transmission log under a network
// discipline.
//
// Disciplines:
//  * Serial — the paper's setup: one transmission at a time on a
//    shared medium, in log order. Makespan = sum of durations (the
//    closed form; provided for cross-validation).
//  * Parallel — every node has its own link(s); transmissions are
//    list-scheduled in log order: a transfer starts as soon as the
//    sender's uplink and every receiver's downlink are free, and
//    occupies them for its duration. Full duplex gives tx and rx
//    independent links; half duplex shares one link per node.
//
// A multicast occupies the sender's uplink once for
// bytes * (1 + coeff*log2(fanout)) / rate (the application-layer
// multicast penalty) and each receiver's downlink for bytes / rate.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "simnet/transmission_log.h"

namespace cts::simnet {

struct LinkModel {
  // 100 Mbps at TCP efficiency (shared constants: common/units.h).
  double bytes_per_sec = kPaperLinkBytesPerSec * kTcpEfficiency;
  // Sender-side penalty factor for multicasting to `fanout` receivers.
  double multicast_log_coeff = kMulticastLogCoeff;

  double tx_seconds(const Transmission& t) const;
  double rx_seconds(const Transmission& t) const;
};

// Network discipline a log is replayed under.
enum class Discipline {
  kSerial,            // shared medium, one transmission at a time
  kParallelHalfDuplex,  // per-node links; tx and rx share one link
  kParallelFullDuplex,  // per-node links; tx and rx independent
};

// What constrains the order in which queued transmissions may start:
enum class ReplayOrder {
  // Global recorded order: transmission i+1 may not start before
  // transmission i has started. This reproduces the engine's actual
  // initiation sequence — the paper's sender-serial order for a
  // barrier-synchronous run, the racy interleaving for an overlapped
  // one.
  kLogOrder,
  // Only each sender's program order constrains: a sender's own
  // transmissions start in seq order, but independent senders are
  // free to start whenever their links allow. This prices a fully
  // asynchronous initiation of the same traffic, and is deterministic
  // for overlapped runs (per-sender order is program order, while the
  // global interleaving is a thread race).
  kPerSender,
};

// Makespan of the log executed one transmission at a time (shared
// medium), i.e. the sum of sender-side durations.
double SerialMakespan(const TransmissionLog& log, const LinkModel& link);

// Makespan of the log executed with per-node links, list-scheduled in
// log order. `num_nodes` bounds the node ids appearing in the log.
double ParallelMakespan(const TransmissionLog& log, const LinkModel& link,
                        int num_nodes, bool full_duplex);

// Unified replay: prices `log` under a discipline and an initiation
// order, distinguishing the serial, overlapped-half-duplex and
// overlapped-full-duplex executions of the same traffic.
// Discipline::kSerial ignores `order` (a sum is order-free).
double ReplayMakespan(const TransmissionLog& log, const LinkModel& link,
                      int num_nodes, Discipline discipline,
                      ReplayOrder order = ReplayOrder::kLogOrder);

// Lower bound for any parallel schedule: the busiest single link's
// total occupancy (matches analytics' parallel closed form).
double ParallelLinkBound(const TransmissionLog& log, const LinkModel& link,
                         int num_nodes, bool full_duplex);

}  // namespace cts::simnet
