// Discrete-event replay of a transmission log under a network
// discipline.
//
// Disciplines:
//  * Serial — the paper's setup: one transmission at a time on a
//    shared medium, in log order. Makespan = sum of durations (the
//    closed form; provided for cross-validation).
//  * Parallel — every node has its own link(s); transmissions are
//    list-scheduled in log order: a transfer starts as soon as the
//    sender's uplink and every receiver's downlink are free, and
//    occupies them for its duration. Full duplex gives tx and rx
//    independent links; half duplex shares one link per node.
//
// A multicast occupies the sender's uplink once for
// bytes * (1 + coeff*log2(fanout)) / rate (the application-layer
// multicast penalty) and each receiver's downlink for bytes / rate.
#pragma once

#include <cstdint>

#include "simnet/transmission_log.h"

namespace cts::simnet {

struct LinkModel {
  double bytes_per_sec = 12.5e6 * 0.95;  // 100 Mbps at TCP efficiency
  // Sender-side penalty factor for multicasting to `fanout` receivers.
  double multicast_log_coeff = 0.32;

  double tx_seconds(const Transmission& t) const;
  double rx_seconds(const Transmission& t) const;
};

// Makespan of the log executed one transmission at a time (shared
// medium), i.e. the sum of sender-side durations.
double SerialMakespan(const TransmissionLog& log, const LinkModel& link);

// Makespan of the log executed with per-node links, list-scheduled in
// log order. `num_nodes` bounds the node ids appearing in the log.
double ParallelMakespan(const TransmissionLog& log, const LinkModel& link,
                        int num_nodes, bool full_duplex);

// Lower bound for any parallel schedule: the busiest single link's
// total occupancy (matches analytics' parallel closed form).
double ParallelLinkBound(const TransmissionLog& log, const LinkModel& link,
                         int num_nodes, bool full_duplex);

}  // namespace cts::simnet
