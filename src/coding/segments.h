// Intermediate-value segmentation (paper eq. (7)).
//
// Within a multicast group M, the intermediate value I^t_{M\{t}} —
// needed by node t and known to all r nodes of F = M\{t} — is "evenly
// and arbitrarily split into r segments {I^t_F,k : k in F}". We fix the
// "arbitrarily" deterministically: segments are indexed by the members
// of F in ascending node order, and segment j of an L-byte value is the
// byte range [floor(L*j/r), floor(L*(j+1)/r)), so all segments differ
// in length by at most one byte.
#pragma once

#include <cstdint>

#include "combinatorics/subsets.h"
#include "common/check.h"
#include "common/types.h"

namespace cts {

// Byte range of one segment within a serialized intermediate value.
struct SegmentSpan {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

// Span of the `position`-th of `r` segments of a `total_length`-byte
// value (position in [0, r)).
inline SegmentSpan SegmentOf(std::uint64_t total_length, int r,
                             int position) {
  CTS_CHECK_GE(r, 1);
  CTS_CHECK_GE(position, 0);
  CTS_CHECK_LT(position, r);
  const std::uint64_t begin =
      total_length * static_cast<std::uint64_t>(position) /
      static_cast<std::uint64_t>(r);
  const std::uint64_t end =
      total_length * static_cast<std::uint64_t>(position + 1) /
      static_cast<std::uint64_t>(r);
  return {begin, end - begin};
}

// Position of `node` within the ascending member order of `mask`
// (i.e. the segment index assigned to `node` for values of file
// `mask`). Precondition: node is a member.
inline int SegmentPosition(NodeMask mask, NodeId node) {
  CTS_CHECK_MSG(Contains(mask, node),
                "node " << node << " not in mask " << mask);
  const NodeMask below = mask & ((NodeMask{1} << node) - 1);
  return Popcount(below);
}

}  // namespace cts
