#include "coding/codec.h"

#include <algorithm>

#include "common/check.h"

namespace cts {

namespace {

// XOR `src` into `dst[0 .. src.size())`. dst must be long enough.
void XorInto(std::span<std::uint8_t> dst,
             std::span<const std::uint8_t> src) {
  CTS_CHECK_GE(dst.size(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] ^= src[i];
}

}  // namespace

void CodedPacket::serialize(Buffer& out) const {
  out.write_u32(static_cast<std::uint32_t>(iv_lengths.size()));
  for (std::uint64_t len : iv_lengths) out.write_u64(len);
  out.write_u64(payload.size());
  out.write_bytes(payload);
}

CodedPacket CodedPacket::deserialize(Buffer& in) {
  CodedPacket p;
  const std::uint32_t count = in.read_u32();
  p.iv_lengths.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    p.iv_lengths.push_back(in.read_u64());
  }
  const std::uint64_t payload_size = in.read_u64();
  p.payload.resize(payload_size);
  in.read_bytes(p.payload);
  return p;
}

CodedPacket EncodePacket(NodeMask group, NodeId self, const IvAccess& iv,
                         CodecStats* stats) {
  CTS_CHECK_MSG(Contains(group, self),
                "encoder node " << self << " not in group " << group);
  const int r = Popcount(group) - 1;
  CTS_CHECK_GE(r, 1);

  const std::vector<NodeId> others = MaskToNodes(WithoutNode(group, self));

  CodedPacket packet;
  packet.iv_lengths.reserve(others.size());

  // First pass: collect constituent segments and the padded length.
  struct Constituent {
    std::span<const std::uint8_t> segment;
  };
  std::vector<Constituent> constituents;
  constituents.reserve(others.size());
  std::size_t max_len = 0;
  for (NodeId t : others) {
    const NodeMask file = WithoutNode(group, t);  // F = M \ {t}
    const std::span<const std::uint8_t> value = iv(t, file);
    packet.iv_lengths.push_back(value.size());
    const SegmentSpan span =
        SegmentOf(value.size(), r, SegmentPosition(file, self));
    constituents.push_back(
        {value.subspan(span.offset, span.length)});
    max_len = std::max(max_len, static_cast<std::size_t>(span.length));
  }

  // Zero-padded XOR (paper footnote 3: "all segments are zero-padded to
  // the length of the longest one").
  packet.payload.assign(max_len, 0);
  for (const Constituent& c : constituents) {
    XorInto(packet.payload, c.segment);
    if (stats != nullptr) stats->encode_xor_bytes += c.segment.size();
  }
  if (stats != nullptr) {
    ++stats->packets_encoded;
    stats->encode_payload_bytes += packet.payload.size();
  }
  return packet;
}

DecodedSegment DecodePacket(NodeMask group, NodeId self, NodeId sender,
                            const CodedPacket& packet, const IvAccess& iv,
                            CodecStats* stats) {
  CTS_CHECK_MSG(Contains(group, self) && Contains(group, sender),
                "decode members outside group " << group);
  CTS_CHECK_NE(self, sender);
  const int r = Popcount(group) - 1;
  const std::vector<NodeId> senders_targets =
      MaskToNodes(WithoutNode(group, sender));  // t values, ascending
  CTS_CHECK_EQ(packet.iv_lengths.size(), senders_targets.size());

  // My wanted value is I^self_{M\{self}}; its length travels in the
  // packet header at my position among the sender's targets.
  const auto self_it = std::find(senders_targets.begin(),
                                 senders_targets.end(), self);
  CTS_CHECK(self_it != senders_targets.end());
  const std::size_t self_idx =
      static_cast<std::size_t>(self_it - senders_targets.begin());
  const std::uint64_t my_value_len = packet.iv_lengths[self_idx];
  const NodeMask my_file = WithoutNode(group, self);
  const SegmentSpan wanted =
      SegmentOf(my_value_len, r, SegmentPosition(my_file, sender));

  // Cancel the r-1 segments I know (paper eq. (10)).
  std::vector<std::uint8_t> work(packet.payload);
  for (std::size_t i = 0; i < senders_targets.size(); ++i) {
    const NodeId t = senders_targets[i];
    if (t == self) continue;
    const NodeMask file = WithoutNode(group, t);
    const std::span<const std::uint8_t> value = iv(t, file);
    CTS_CHECK_MSG(value.size() == packet.iv_lengths[i],
                  "side-information length mismatch for target "
                      << t << ": have " << value.size() << " header says "
                      << packet.iv_lengths[i]);
    const SegmentSpan span =
        SegmentOf(value.size(), r, SegmentPosition(file, sender));
    XorInto(work, value.subspan(span.offset, span.length));
    if (stats != nullptr) stats->decode_xor_bytes += span.length;
  }

  // After cancellation only my segment remains; anything beyond its
  // length must be residual zero padding, or the codec is inconsistent.
  CTS_CHECK_GE(work.size(), wanted.length);
  for (std::size_t i = wanted.length; i < work.size(); ++i) {
    CTS_CHECK_MSG(work[i] == 0,
                  "nonzero padding residue at byte "
                      << i << " decoding packet from " << sender);
  }
  work.resize(wanted.length);

  if (stats != nullptr) {
    ++stats->packets_decoded;
    stats->decoded_bytes += wanted.length;
  }
  return DecodedSegment{wanted, std::move(work)};
}

std::vector<std::uint8_t> MergeSegments(
    std::span<const DecodedSegment> segments) {
  std::uint64_t total = 0;
  for (const auto& s : segments) {
    CTS_CHECK_EQ(s.bytes.size(), s.span.length);
    total = std::max(total, s.span.offset + s.span.length);
  }
  std::vector<std::uint8_t> value(total, 0);
  std::uint64_t covered = 0;
  for (const auto& s : segments) {
    std::copy(s.bytes.begin(), s.bytes.end(),
              value.begin() + static_cast<long>(s.span.offset));
    covered += s.span.length;
  }
  // Segments of one value are disjoint and cover it exactly.
  CTS_CHECK_MSG(covered == total, "segments cover " << covered << " of "
                                                    << total << " bytes");
  return value;
}

}  // namespace cts
