// The coded-shuffle XOR codec: Encoding (paper Algorithm 1) and
// Decoding (paper Algorithm 2).
//
// Within a multicast group M of r+1 nodes, node u transmits one coded
// packet
//
//     E_{M,u} = XOR over t in M\{u} of  I^t_{M\{t}},u
//
// i.e. the XOR of the u-indexed segments of the r intermediate values
// that the *other* members need, each of which u knows from its own Map
// work (u mapped file M\{t} for every t != u). Segments are zero-padded
// to the longest constituent. A receiver k cancels the r-1 segments it
// also knows and is left with I^k_{M\{k}},u — one segment of the value
// it needs; the r packets it receives in M reassemble the whole value.
//
// The packet carries a small header with the byte length of every
// constituent intermediate value. The receiver needs the length of its
// own wanted value (which it does not know) to strip the zero padding;
// the sender knows all constituents, so the header is the natural
// place. Header overhead is 8r + O(1) bytes per packet and is included
// in all traffic accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "coding/segments.h"
#include "common/buffer.h"
#include "common/types.h"

namespace cts {

// Read access to a node's mapped intermediate values: returns the
// serialized bytes of I^target_file (the KV pairs of file `file` whose
// keys fall in partition `target`). The codec only calls this for
// values the node is guaranteed to hold after its Map stage.
using IvAccess =
    std::function<std::span<const std::uint8_t>(NodeId target, NodeMask file)>;

// One coded multicast packet (wire format: u32 count, count u64
// lengths, u64 payload size, payload bytes).
struct CodedPacket {
  // Length of I^t_{M\{t}} for each t in M\{sender}, ascending t. The
  // receiver k finds its own entry to learn |I^k_{M\{k}}|.
  std::vector<std::uint64_t> iv_lengths;
  // XOR of the zero-padded segments; length == longest segment.
  std::vector<std::uint8_t> payload;

  void serialize(Buffer& out) const;
  static CodedPacket deserialize(Buffer& in);

  // Bytes this packet occupies on the wire.
  std::size_t wire_size() const {
    return sizeof(std::uint32_t) +
           iv_lengths.size() * sizeof(std::uint64_t) +
           sizeof(std::uint64_t) + payload.size();
  }
};

// Counters the cost model consumes (XOR work and packet handling).
struct CodecStats {
  std::uint64_t packets_encoded = 0;
  std::uint64_t encode_xor_bytes = 0;  // input bytes XORed into packets
  // Coded payload produced (sum of packet payload sizes, excluding the
  // wire header). The simulated-time report scales this with the data
  // size while header bytes — whose count is combinatorial in (K, r),
  // not proportional to data — stay fixed.
  std::uint64_t encode_payload_bytes = 0;
  std::uint64_t packets_decoded = 0;
  std::uint64_t decode_xor_bytes = 0;  // side-information bytes cancelled
  std::uint64_t decoded_bytes = 0;     // useful segment bytes recovered

  CodecStats& operator+=(const CodecStats& o) {
    packets_encoded += o.packets_encoded;
    encode_xor_bytes += o.encode_xor_bytes;
    encode_payload_bytes += o.encode_payload_bytes;
    packets_decoded += o.packets_decoded;
    decode_xor_bytes += o.decode_xor_bytes;
    decoded_bytes += o.decoded_bytes;
    return *this;
  }
};

// Algorithm 1 for one group: builds E_{M,self}. `group` must contain
// `self` and have at least 2 members.
CodedPacket EncodePacket(NodeMask group, NodeId self, const IvAccess& iv,
                         CodecStats* stats = nullptr);

// One decoded segment of the receiver's wanted value I^self_{M\{self}}.
struct DecodedSegment {
  SegmentSpan span;                 // where it lands within the value
  std::vector<std::uint8_t> bytes;  // exactly span.length bytes
};

// Algorithm 2 for one packet: node `self` decodes the packet multicast
// by `sender` within `group`, cancelling segments via `iv`.
DecodedSegment DecodePacket(NodeMask group, NodeId self, NodeId sender,
                            const CodedPacket& packet, const IvAccess& iv,
                            CodecStats* stats = nullptr);

// Merges the r segments recovered in a group (any order) into the full
// serialized value I^self_{M\{self}}. Checks exact coverage.
std::vector<std::uint8_t> MergeSegments(
    std::span<const DecodedSegment> segments);

}  // namespace cts
