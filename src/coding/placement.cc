#include "coding/placement.h"

#include "common/check.h"

namespace cts {

Placement Placement::Create(int K, int r) { return Placement(K, r); }

Placement::Placement(int K, int r) : k_(K), r_(r) {
  CTS_CHECK_GE(K, 1);
  CTS_CHECK_LE(K, kMaxNodes);
  CTS_CHECK_GE(r, 1);
  CTS_CHECK_LE(r, K);
  files_ = AllSubsets(K, r);
  node_files_.resize(static_cast<std::size_t>(K));
  for (FileId f = 0; f < static_cast<FileId>(files_.size()); ++f) {
    for (NodeId n : MaskToNodes(files_[static_cast<std::size_t>(f)])) {
      node_files_[static_cast<std::size_t>(n)].push_back(f);
    }
  }
  for (const auto& nf : node_files_) {
    CTS_CHECK_EQ(nf.size(), Binomial(K - 1, r - 1));
  }
  if (r < K) groups_ = AllSubsets(K, r + 1);
}

int Placement::files_per_node() const {
  return static_cast<int>(Binomial(k_ - 1, r_ - 1));
}

NodeMask Placement::file_nodes(FileId f) const {
  CTS_CHECK_GE(f, 0);
  CTS_CHECK_LT(f, num_files());
  return files_[static_cast<std::size_t>(f)];
}

FileId Placement::file_of(NodeMask mask) const {
  CTS_CHECK_EQ(Popcount(mask), r_);
  const auto rank = ColexRank(mask);
  CTS_CHECK_LT(rank, files_.size());
  CTS_CHECK_EQ(files_[rank], mask);
  return static_cast<FileId>(rank);
}

const std::vector<FileId>& Placement::files_on_node(NodeId node) const {
  CTS_CHECK_GE(node, 0);
  CTS_CHECK_LT(node, k_);
  return node_files_[static_cast<std::size_t>(node)];
}

std::vector<NodeMask> Placement::groups_of_node(NodeId node) const {
  CTS_CHECK_GE(node, 0);
  CTS_CHECK_LT(node, k_);
  std::vector<NodeMask> out;
  out.reserve(Binomial(k_ - 1, r_));
  for (NodeMask g : groups_) {
    if (Contains(g, node)) out.push_back(g);
  }
  return out;
}

Placement::FileRanges Placement::SplitRecords(std::uint64_t total) const {
  const auto n = static_cast<std::uint64_t>(num_files());
  FileRanges ranges;
  ranges.offset.reserve(n);
  ranges.count.reserve(n);
  std::uint64_t cursor = 0;
  for (std::uint64_t f = 0; f < n; ++f) {
    const RecordRange range = SplitRange(total, n, f);
    CTS_CHECK_EQ(range.offset, cursor);
    ranges.offset.push_back(range.offset);
    ranges.count.push_back(range.count);
    cursor += range.count;
  }
  CTS_CHECK_EQ(cursor, total);
  return ranges;
}

}  // namespace cts
