// Structured redundant file placement (paper Section IV-A).
//
// For a redundancy parameter r, the input is split into N = C(K, r)
// files; file F_S is identified with an r-subset S of nodes and placed
// on every node of S. Every node stores C(K-1, r-1) files and every
// r-subset of nodes shares exactly one file — the structure that the
// coded shuffle exploits.
//
// FileIds are colex ranks of the subset masks, so placement is a pure
// function of (K, r) and identical on every node with no coordination.
// TeraSort's placement is the degenerate r = 1 case (file k on node k).
#pragma once

#include <cstdint>
#include <vector>

#include "combinatorics/subsets.h"
#include "common/types.h"

namespace cts {

// Even split of `total` records over `num_files` files: file f holds
// records [offset, offset + count), the first (total % num_files)
// files getting one extra record (the paper splits "evenly"). A free
// function rather than a Placement method because the mask-free
// TeraSort split must work past kMaxNodes, where no Placement can be
// constructed.
struct RecordRange {
  std::uint64_t offset = 0;
  std::uint64_t count = 0;
};
inline RecordRange SplitRange(std::uint64_t total, std::uint64_t num_files,
                              std::uint64_t f) {
  const std::uint64_t base = total / num_files;
  const std::uint64_t extra = total % num_files;
  return {f * base + (f < extra ? f : extra), base + (f < extra ? 1 : 0)};
}

class Placement {
 public:
  // Builds the placement for K nodes with redundancy r (1 <= r <= K).
  static Placement Create(int K, int r);

  int num_nodes() const { return k_; }
  int redundancy() const { return r_; }
  int num_files() const { return static_cast<int>(files_.size()); }

  // Files stored per node: C(K-1, r-1).
  int files_per_node() const;

  // The node subset storing file f.
  NodeMask file_nodes(FileId f) const;

  // The file shared by exactly the nodes in `mask` (|mask| must be r).
  FileId file_of(NodeMask mask) const;

  // Ascending list of files stored on `node`; size == files_per_node().
  const std::vector<FileId>& files_on_node(NodeId node) const;

  // All multicast groups: the C(K, r+1) node subsets of size r+1, in
  // colex order (empty when r == K). Group g's communicator handles the
  // coded exchange among its members (paper Section IV-C/D).
  const std::vector<NodeMask>& multicast_groups() const { return groups_; }

  // Groups containing `node`: C(K-1, r) masks.
  std::vector<NodeMask> groups_of_node(NodeId node) const;

  // Splits `total` records into per-file record counts: file f gets
  // records [offsets[f], offsets[f] + counts[f]). Files sizes differ by
  // at most one record (the paper splits "evenly").
  struct FileRanges {
    std::vector<std::uint64_t> offset;
    std::vector<std::uint64_t> count;
  };
  FileRanges SplitRecords(std::uint64_t total) const;

 private:
  Placement(int K, int r);

  int k_;
  int r_;
  std::vector<NodeMask> files_;                 // FileId -> subset
  std::vector<std::vector<FileId>> node_files_; // NodeId -> file list
  std::vector<NodeMask> groups_;                // multicast groups
};

}  // namespace cts
