// Converts a measured run into the paper-scale stage breakdown.
//
// Pipeline: the algorithms execute for real at some scale and fill an
// AlgorithmResult with exact work/traffic counters; SimulateRun prices
// those counters on the paper's testbed via the CostModel, producing
// the rows of Tables I-III. PaperScale helps the benches express "this
// run stands for 12 GB".
#pragma once

#include <string>
#include <vector>

#include "analytics/cost_model.h"
#include "common/table.h"
#include "driver/run_result.h"
#include "simnet/schedule.h"

namespace cts {

// One stage's simulated seconds.
struct StageTime {
  std::string name;
  double seconds = 0;
};

// A priced run: ordered stage times plus the total. `wasted_seconds`
// is compute burnt without contributing to the output (losing
// speculative copies, abandoned straggler work — see src/mitigate);
// it overlaps the stage times rather than adding to the total, so it
// gets its own table column.
struct StageBreakdown {
  std::string algorithm;
  std::vector<StageTime> stages;
  double wasted_seconds = 0;

  double total() const {
    double t = 0;
    for (const auto& s : stages) t += s.seconds;
    return t;
  }
  double stage(const std::string& name) const;

  // Paper-convention aggregates: Tables II-III merge serialization
  // stages into "Pack/Encode" and "Unpack/Decode" columns.
  double pack_or_encode() const;
  double unpack_or_decode() const;
  double shuffle() const;
};

// RunScale for a run of `executed` records that stands for a paper
// workload of `reported` records (e.g. 12 GB = 120e6 records).
RunScale PaperScale(std::uint64_t executed_records,
                    std::uint64_t reported_records);

// Multicast fan-out penalty and the correction factor mapping raw
// measured shuffle bytes (or replayed shuffle seconds — time is linear
// in bytes for a fixed schedule shape) to paper scale. For multicast
// runs the correction folds in the header/padding adjustment: packet
// count is combinatorial in (K, r), so header bytes and the
// zero-padding residue are charged unscaled — at paper scale both are
// <1%. Shared by the closed forms, ReplayShuffleSeconds, and the
// scenario engine (src/simscen).
struct ShuffleScaling {
  double penalty = 1.0;     // multicast fan-out factor (tx side only)
  double correction = 1.0;  // measured bytes -> paper-scale bytes
};

ShuffleScaling ComputeShuffleScaling(const AlgorithmResult& result,
                                     const CostModel& model,
                                     const RunScale& scale);

// How the shuffle stage uses the network (paper Section VI, third
// future direction — "Asynchronous Execution"):
//   kSerial           — the paper's discipline: one sender at a time on
//                       a shared medium; stage time = sum of all
//                       transmissions.
//   kParallelFullDuplex — all nodes transmit and receive concurrently
//                       on independent full-duplex links; stage time =
//                       max over nodes of max(tx, rx) occupancy.
//   kParallelHalfDuplex — concurrent, but a node's NIC carries tx + rx
//                       on one 100 Mbps budget (the tc-limited EC2
//                       setting applies one cap to each direction
//                       combined in the worst case).
enum class ShuffleSchedule {
  kSerial,
  kParallelFullDuplex,
  kParallelHalfDuplex,
};

// Prices every stage of `result` under `model` at `scale`. Handles both
// algorithms: stages the run did not execute get zero rows.
StageBreakdown SimulateRun(const AlgorithmResult& result,
                           const CostModel& model, const RunScale& scale,
                           ShuffleSchedule schedule = ShuffleSchedule::kSerial);

// Executed-scale breakdown straight from the measured wall clocks (no
// cost model): one row per executed stage, in execution order. The
// job API's kLive backend and any engine without NodeWork counters
// (e.g. CMR) report through this.
StageBreakdown MeasuredBreakdown(const AlgorithmResult& result);

// Prices the shuffle stage by discrete-event replay of the measured
// transmission log (simnet::ReplayMakespan) instead of the closed
// forms, scaled to paper bytes with the same correction the closed
// forms use. The closed forms assume perfect overlap; the replay
// respects the log's actual initiation order, so it separates what
// the paper's sender-serial ordering achieves on a parallel network
// (ShuffleSync::kBarrier logs) from what the overlapped engine
// achieves (ShuffleSync::kOverlapped logs). `order` picks the replay
// constraint — kLogOrder for the recorded global sequence,
// kPerSender for fully asynchronous initiation (deterministic for
// overlapped runs).
double ReplayShuffleSeconds(
    const AlgorithmResult& result, const CostModel& model,
    const RunScale& scale, ShuffleSchedule schedule,
    simnet::ReplayOrder order = simnet::ReplayOrder::kLogOrder);

// Same replay addressed by the simnet discipline directly (callers
// that parsed a --discipline flag need no round-trip through
// ShuffleSchedule).
double ReplayShuffleSeconds(
    const AlgorithmResult& result, const CostModel& model,
    const RunScale& scale, simnet::Discipline discipline,
    simnet::ReplayOrder order = simnet::ReplayOrder::kLogOrder);

// Renders breakdowns as a paper-style table: one row per run, columns
// CodeGen / Map / Pack-Encode / Shuffle / Unpack-Decode / Reduce /
// Wasted / Total / Speedup-vs-first-row. Wasted is the mitigation
// layer's thrown-away compute ("-" when zero).
TextTable BreakdownTable(const std::string& title,
                         const std::vector<StageBreakdown>& rows);

}  // namespace cts
