// Communication-load theory from paper Section II (and [9]).
//
// Loads are normalized by Q*N (number of output functions times number
// of inputs): L is the fraction of all intermediate values that crosses
// the network. For K nodes and computation load (redundancy) r:
//
//   no redundancy (TeraSort):      L = 1 - 1/K
//   uncoded, redundancy r:         L_uncoded(r) = 1 - r/K
//   Coded MapReduce:               L_CMR(r) = (1/r) * (1 - r/K)
//
// L_CMR matches the information-theoretic lower bound, so the r-fold
// gain over uncoded shuffling is optimal (paper eq. (2) and Fig. 2).
#pragma once

#include "common/check.h"

namespace cts {

// Fraction of intermediate values shuffled when each file is mapped on
// r nodes and values are unicast (no coding).
inline double UncodedLoad(int K, int r) {
  CTS_CHECK_GE(r, 1);
  CTS_CHECK_LE(r, K);
  return 1.0 - static_cast<double>(r) / static_cast<double>(K);
}

// Fraction shuffled by Coded MapReduce at computation load r.
inline double CodedLoad(int K, int r) {
  return UncodedLoad(K, r) / static_cast<double>(r);
}

// Load of plain TeraSort (each file mapped once).
inline double TeraSortLoad(int K) { return UncodedLoad(K, 1); }

// Multiplicative shuffle gain of coding at redundancy r (exactly r).
inline double CodingGain(int K, int r) {
  const double coded = CodedLoad(K, r);
  CTS_CHECK_GT(coded, 0.0);
  return UncodedLoad(K, r) / coded;
}

}  // namespace cts
