#include "analytics/report.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cts {

namespace {

// Max over nodes of a per-node cost.
template <typename Fn>
double MaxOverNodes(const std::vector<NodeWork>& work, Fn&& cost) {
  double mx = 0;
  for (const auto& w : work) mx = std::max(mx, cost(w));
  return mx;
}

simmpi::ChannelCounters TrafficFor(const AlgorithmResult& result,
                                   const std::string& stage) {
  const auto it = result.traffic.find(stage);
  return it == result.traffic.end() ? simmpi::ChannelCounters{}
                                    : it->second;
}

}  // namespace

double StageBreakdown::stage(const std::string& name) const {
  for (const auto& s : stages) {
    if (s.name == name) return s.seconds;
  }
  return 0;
}

double StageBreakdown::pack_or_encode() const {
  return stage(stage::kPack) + stage(stage::kEncode);
}

double StageBreakdown::unpack_or_decode() const {
  return stage(stage::kUnpack) + stage(stage::kDecode);
}

double StageBreakdown::shuffle() const { return stage(stage::kShuffle); }

RunScale PaperScale(std::uint64_t executed_records,
                    std::uint64_t reported_records) {
  CTS_CHECK_GT(executed_records, std::uint64_t{0});
  CTS_CHECK_GT(reported_records, std::uint64_t{0});
  return RunScale{static_cast<double>(executed_records) /
                  static_cast<double>(reported_records)};
}

// Declared in report.h; the header/padding rationale is documented
// there. The zero-padding residue is an artifact of per-value size
// *variance*, which shrinks as 1/sqrt(records-per-value).
ShuffleScaling ComputeShuffleScaling(const AlgorithmResult& result,
                                     const CostModel& model,
                                     const RunScale& scale) {
  const auto sh = TrafficFor(result, stage::kShuffle);
  ShuffleScaling s;
  s.correction = 1.0 / scale.fraction;
  if (sh.mcast_msgs > 0) {
    std::uint64_t payload = 0;
    std::uint64_t xor_bytes = 0;
    for (const auto& w : result.work) {
      payload += w.codec.encode_payload_bytes;
      xor_bytes += w.codec.encode_xor_bytes;
    }
    CTS_CHECK_LE(payload, sh.mcast_bytes);
    const double fanout = static_cast<double>(sh.mcast_recipient_bytes) /
                          static_cast<double>(sh.mcast_bytes);
    s.penalty = 1.0 + model.multicast_log_coeff * std::log2(fanout);
    const double ideal_payload =
        static_cast<double>(xor_bytes) / std::max(fanout, 1.0);
    const double residue =
        static_cast<double>(sh.mcast_bytes) -
        std::min(ideal_payload, static_cast<double>(sh.mcast_bytes));
    s.correction =
        (scale.bytes(static_cast<std::uint64_t>(ideal_payload)) + residue) /
        std::max(static_cast<double>(sh.mcast_bytes), 1.0);
  }
  return s;
}

namespace {

// Parallel-schedule shuffle pricing: every node's link runs
// concurrently, so the stage ends when the busiest link drains.
// `correction` maps raw measured bytes to paper-scale bytes; `penalty`
// is the multicast fan-out factor applied to transmissions only
// (receivers get plain copies).
double ParallelShuffleSeconds(const AlgorithmResult& result,
                              const CostModel& model, double correction,
                              double penalty, bool full_duplex) {
  double worst = 0;
  for (const auto& nt : result.shuffle_node_traffic) {
    const double tx = static_cast<double>(nt.tx_bytes) * correction *
                      penalty / model.effective_link_rate();
    const double rx = static_cast<double>(nt.rx_bytes) * correction /
                      model.effective_link_rate();
    worst = std::max(worst, full_duplex ? std::max(tx, rx) : tx + rx);
  }
  return worst;
}

}  // namespace

StageBreakdown SimulateRun(const AlgorithmResult& result,
                           const CostModel& model, const RunScale& scale,
                           ShuffleSchedule schedule) {
  const int r = std::max(result.config.redundancy, 1);
  StageBreakdown out;
  out.algorithm = result.algorithm;

  const auto codegen = TrafficFor(result, stage::kCodeGen);
  out.stages.push_back(
      {stage::kCodeGen,
       model.codegen_seconds(codegen.comm_creations,
                             result.config.codegen_mode)});

  out.stages.push_back(
      {stage::kMap, MaxOverNodes(result.work, [&](const NodeWork& w) {
         return model.map_seconds(w, scale);
       })});
  out.stages.push_back(
      {stage::kPack, MaxOverNodes(result.work, [&](const NodeWork& w) {
         return model.pack_seconds(w, scale);
       })});
  out.stages.push_back(
      {stage::kEncode, MaxOverNodes(result.work, [&](const NodeWork& w) {
         return model.encode_seconds(w, scale);
       })});

  // Shuffle: unicast bytes scale with data; multicast wire bytes split
  // into payload (scales with data) and per-packet headers (packet
  // count is combinatorial in (K, r) and does NOT scale — at paper
  // scale headers are negligible, and pricing them scaled would
  // overcharge small executed runs by up to tens of percent).
  {
    const auto sh = TrafficFor(result, stage::kShuffle);
    const ShuffleScaling s = ComputeShuffleScaling(result, model, scale);

    double seconds = 0;
    switch (schedule) {
      case ShuffleSchedule::kSerial:
        // The paper's discipline: one transmission at a time, so the
        // stage time is the sum over the shared medium.
        seconds = model.unicast_seconds(scale.bytes(sh.unicast_bytes)) +
                  static_cast<double>(sh.mcast_bytes) * s.correction *
                      s.penalty / model.effective_link_rate();
        break;
      case ShuffleSchedule::kParallelFullDuplex:
      case ShuffleSchedule::kParallelHalfDuplex:
        seconds = ParallelShuffleSeconds(
            result, model, s.correction, s.penalty,
            schedule == ShuffleSchedule::kParallelFullDuplex);
        break;
    }
    out.stages.push_back({stage::kShuffle, seconds});
  }

  out.stages.push_back(
      {stage::kUnpack, MaxOverNodes(result.work, [&](const NodeWork& w) {
         return model.unpack_seconds(w, scale);
       })});
  out.stages.push_back(
      {stage::kDecode, MaxOverNodes(result.work, [&](const NodeWork& w) {
         return model.decode_seconds(w, scale);
       })});
  out.stages.push_back(
      {stage::kReduce, MaxOverNodes(result.work, [&](const NodeWork& w) {
         return model.reduce_seconds(w, scale, r);
       })});
  return out;
}

StageBreakdown MeasuredBreakdown(const AlgorithmResult& result) {
  StageBreakdown out;
  out.algorithm = result.algorithm;
  for (const std::string& name : result.stage_order) {
    const auto it = result.wall_seconds.find(name);
    out.stages.push_back(
        {name, it == result.wall_seconds.end() ? 0.0 : it->second});
  }
  return out;
}

double ReplayShuffleSeconds(const AlgorithmResult& result,
                            const CostModel& model, const RunScale& scale,
                            simnet::Discipline discipline,
                            simnet::ReplayOrder order) {
  const ShuffleScaling s = ComputeShuffleScaling(result, model, scale);
  simnet::LinkModel link;
  link.bytes_per_sec = model.effective_link_rate();
  // The replay applies the fan-out penalty per transmission.
  link.multicast_log_coeff = model.multicast_log_coeff;
  // s.correction maps measured bytes to paper-scale bytes; time is
  // linear in bytes for a fixed schedule shape, so it applies to the
  // replayed seconds directly.
  return simnet::ReplayMakespan(result.shuffle_log, link,
                                result.config.num_nodes, discipline,
                                order) *
         s.correction;
}

double ReplayShuffleSeconds(const AlgorithmResult& result,
                            const CostModel& model, const RunScale& scale,
                            ShuffleSchedule schedule,
                            simnet::ReplayOrder order) {
  simnet::Discipline discipline = simnet::Discipline::kSerial;
  switch (schedule) {
    case ShuffleSchedule::kSerial:
      discipline = simnet::Discipline::kSerial;
      break;
    case ShuffleSchedule::kParallelHalfDuplex:
      discipline = simnet::Discipline::kParallelHalfDuplex;
      break;
    case ShuffleSchedule::kParallelFullDuplex:
      discipline = simnet::Discipline::kParallelFullDuplex;
      break;
  }
  return ReplayShuffleSeconds(result, model, scale, discipline, order);
}

TextTable BreakdownTable(const std::string& title,
                         const std::vector<StageBreakdown>& rows) {
  TextTable table(title);
  table.set_header({"Algorithm", "CodeGen", "Map", "Pack/Encode", "Shuffle",
                    "Unpack/Decode", "Reduce", "Wasted", "Total", "Speedup"});
  const double baseline = rows.empty() ? 0 : rows.front().total();
  for (const auto& b : rows) {
    const double total = b.total();
    std::string speedup = "-";
    if (&b != &rows.front() && total > 0) {
      speedup = TextTable::Num(baseline / total, 2) + "x";
    }
    table.add_row({
        b.algorithm,
        b.stage(stage::kCodeGen) == 0 ? "-"
                                      : TextTable::Num(b.stage(stage::kCodeGen)),
        TextTable::Num(b.stage(stage::kMap)),
        TextTable::Num(b.pack_or_encode()),
        TextTable::Num(b.shuffle()),
        TextTable::Num(b.unpack_or_decode()),
        TextTable::Num(b.stage(stage::kReduce)),
        b.wasted_seconds == 0 ? "-" : TextTable::Num(b.wasted_seconds),
        TextTable::Num(total),
        speedup,
    });
  }
  return table;
}

}  // namespace cts
