// Execution-time model from paper Section II (eqs. (3)-(5)).
//
//   T_total,MR   = Tmap + Tshuffle + Treduce                     (3)
//   T_total,CMR  ≈ r*Tmap + Tshuffle/r + Treduce                 (4)
//   r*           = floor or ceil of sqrt(Tshuffle / Tmap)
//   T*_total,CMR ≈ 2*sqrt(Tshuffle*Tmap) + Treduce               (5)
//
// Used by bench_model to reproduce the Section III-B analysis of
// Table I (shuffle is 508.5x Map; r* = 23; ~10x promised saving) and by
// the cluster-planner example to pick r for a workload.
#pragma once

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cts {

// Stage times of one uncoded MapReduce execution, in seconds.
struct MapReduceTimes {
  double map = 0;
  double shuffle = 0;
  double reduce = 0;

  double total() const { return map + shuffle + reduce; }
};

// Predicted total time of the coded execution at redundancy r (eq. 4).
inline double PredictCodedTotal(const MapReduceTimes& t, int r) {
  CTS_CHECK_GE(r, 1);
  return static_cast<double>(r) * t.map +
         t.shuffle / static_cast<double>(r) + t.reduce;
}

// The integer r in [1, K] minimizing eq. (4): the better of
// floor(sqrt(Ts/Tm)) and ceil(sqrt(Ts/Tm)), clamped to [1, K].
inline int OptimalRedundancy(const MapReduceTimes& t, int K) {
  CTS_CHECK_GE(K, 1);
  if (t.map <= 0.0) return K;  // free map work: max redundancy wins
  const double ideal = std::sqrt(t.shuffle / t.map);
  const int lo = std::clamp(static_cast<int>(std::floor(ideal)), 1, K);
  const int hi = std::clamp(static_cast<int>(std::ceil(ideal)), 1, K);
  return PredictCodedTotal(t, lo) <= PredictCodedTotal(t, hi) ? lo : hi;
}

// Best achievable coded time over real-valued r (eq. 5).
inline double PredictOptimalCodedTotal(const MapReduceTimes& t) {
  return 2.0 * std::sqrt(t.shuffle * t.map) + t.reduce;
}

// Speedup eq. (3) / eq. (4) at a given r.
inline double PredictSpeedup(const MapReduceTimes& t, int r) {
  return t.total() / PredictCodedTotal(t, r);
}

}  // namespace cts
