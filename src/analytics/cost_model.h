// EC2-calibrated cost model.
//
// The paper's testbed is a 100 Mbps-capped EC2 cluster we do not have;
// the algorithms here run for real but on an in-memory transport. This
// model converts *measured* work counters (bytes hashed, packed, XORed,
// transmitted; packets; multicast groups) into the seconds the paper's
// testbed would take, so the bench harnesses can print Tables I-III at
// paper scale.
//
// Every constant is calibrated from the paper's own numbers; the
// derivations are documented inline and verified by analytics tests and
// EXPERIMENTS.md. The *shape* of the results (who wins, crossovers,
// r/K trends) is driven entirely by the measured counters, which scale
// exactly with data size; the constants only set absolute units.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "driver/run_result.h"
#include "simmpi/traffic.h"

namespace cts {

// Scaling between the executed run and the paper-scale workload the
// report describes. Byte counts scale linearly with record count;
// packet / file / group counts are combinatorial in (K, r) and do not
// scale.
struct RunScale {
  // executed_records / reported_records; 1.0 reports the run as-is.
  double fraction = 1.0;

  double bytes(std::uint64_t measured) const {
    CTS_CHECK_GT(fraction, 0.0);
    return static_cast<double>(measured) / fraction;
  }
};

struct CostModel {
  // ---- Network ----
  // The three link constants live in common/units.h so the closed
  // forms here and the simnet/simscen replay engines share one
  // calibration.
  //
  // 100 Mbps tc-limited NICs (paper Section V-B).
  double link_bytes_per_sec = kPaperLinkBytesPerSec;
  // Effective TCP goodput fraction. Calibration: Table I shuffle moves
  // 16 nodes x 750 MB x 15/16 = 11.25 GB serially in 945.72 s
  // => 11.90 MB/s on a 12.5 MB/s link => 0.95.
  double link_efficiency = kTcpEfficiency;
  // MPI_Bcast fan-out penalty: multicasting to r receivers costs
  // (1 + coeff*log2(r)) x the unicast time of the same bytes (paper
  // Section V-C observation 2, citing [11]'s logarithmic growth).
  // Calibration: Table II r=3 coded shuffle = 412.22 s vs 274.5 s of
  // pure serial transmission => 1.50 => coeff 0.32 (r=5 gives 0.32 as
  // well within a few percent, see EXPERIMENTS.md).
  double multicast_log_coeff = kMulticastLogCoeff;

  // ---- CodeGen ----
  // Per-multicast-group MPI_Comm_split cost. Calibration: Table II
  // r=3: 6.06 s / C(16,4)=1820 groups = 3.3 ms; r=5: 23.47/8008 = 2.9;
  // Table III: 19.32/4845 = 4.0 and 140.91/38760 = 3.6. Mean ~3.5 ms.
  double group_setup_sec = 3.5e-3;
  // Per-group cost of the batched CodeGen extension: no collective per
  // group, just local plan bookkeeping (subset enumeration + group
  // bookkeeping, ~MPI_Group_incl). Assumed 0.05 ms — 70x cheaper than
  // a full MPI_Comm_split round, in line with MPI_Comm_create_group
  // microbenchmarks on small groups.
  double group_setup_batched_sec = 0.05e-3;

  // ---- Compute rates (per node) ----
  // Hashing: Table I Map = 1.86 s for 750 MB/node => 403 MB/s.
  double hash_bytes_per_sec = 403e6;
  // Per-file overhead in Map: CodedTeraSort maps C(K-1, r-1) small
  // files instead of one big one; measured Map ratios (3.2x at r=3,
  // 5.8x at r=5 versus the ideal r x) imply a per-file cost. The four
  // coded cells of Tables II-III are noisy (0.2-4 ms implied); 0.5 ms
  // keeps every cell within ~10%.
  double map_file_overhead_sec = 0.5e-3;
  // Pack: Table I 2.35 s for ~703 MB of outgoing values => 300 MB/s.
  double pack_bytes_per_sec = 300e6;
  // Unpack: Table I 0.85 s for ~703 MB received => 830 MB/s.
  double unpack_bytes_per_sec = 830e6;
  // Encode: least-squares fit of a*xor_bytes + b*packets over the four
  // coded cells of Tables II-III (5.79, 8.10, 4.89, 7.51 s) gives
  // a => 95.6 MB/s, b = 0.28 ms/packet (max residual ~23%).
  double encode_bytes_per_sec = 95.6e6;
  double encode_packet_overhead_sec = 0.28e-3;
  // Decode: same fit over (2.41, 3.69, 1.87, 3.70 s) gives 230 MB/s
  // and 0.034 ms/packet.
  double decode_bytes_per_sec = 230e6;
  double decode_packet_overhead_sec = 0.034e-3;
  // Local sort: Table I Reduce = 10.47 s for 750 MB => 71.6 MB/s.
  double sort_bytes_per_sec = 71.6e6;
  // CodedTeraSort persists extra intermediate state, slowing the local
  // sort (paper Section V-C observation 4): measured Reduce ratios are
  // 1.17-1.40 across Tables II-III; modeled as (1 + penalty*(r-1)).
  double reduce_memory_penalty = 0.09;

  // ---- Derived helpers ----

  double effective_link_rate() const {
    return link_bytes_per_sec * link_efficiency;
  }

  // Seconds to serially transmit `bytes` as unicasts.
  double unicast_seconds(double bytes) const {
    return bytes / effective_link_rate();
  }

  // Seconds to serially transmit `bytes` as multicasts with the given
  // average fan-out.
  double multicast_seconds(double bytes, double fanout) const {
    CTS_CHECK_GE(fanout, 1.0);
    const double penalty =
        1.0 + multicast_log_coeff * std::log2(fanout);
    return bytes / effective_link_rate() * penalty;
  }

  double codegen_seconds(std::uint64_t groups,
                         CodeGenMode mode = CodeGenMode::kCommSplit) const {
    const double per_group = mode == CodeGenMode::kBatched
                                 ? group_setup_batched_sec
                                 : group_setup_sec;
    return static_cast<double>(groups) * per_group;
  }

  double map_seconds(const NodeWork& w, const RunScale& scale) const {
    return scale.bytes(w.map_bytes) / hash_bytes_per_sec +
           static_cast<double>(w.map_files) * map_file_overhead_sec;
  }

  double pack_seconds(const NodeWork& w, const RunScale& scale) const {
    return scale.bytes(w.pack_bytes) / pack_bytes_per_sec;
  }

  double unpack_seconds(const NodeWork& w, const RunScale& scale) const {
    return scale.bytes(w.unpack_bytes) / unpack_bytes_per_sec;
  }

  double encode_seconds(const NodeWork& w, const RunScale& scale) const {
    return scale.bytes(w.codec.encode_xor_bytes) / encode_bytes_per_sec +
           static_cast<double>(w.codec.packets_encoded) *
               encode_packet_overhead_sec;
  }

  double decode_seconds(const NodeWork& w, const RunScale& scale) const {
    return scale.bytes(w.codec.decoded_bytes) / decode_bytes_per_sec +
           static_cast<double>(w.codec.packets_decoded) *
               decode_packet_overhead_sec;
  }

  double reduce_seconds(const NodeWork& w, const RunScale& scale,
                        int r) const {
    const double penalty =
        1.0 + reduce_memory_penalty * static_cast<double>(r - 1);
    return scale.bytes(w.reduce_bytes) / sort_bytes_per_sec * penalty;
  }

  // Shuffle time from transport counters: the paper's shuffles are
  // serial (one sender at a time), so the stage time is the sum of all
  // transmissions over the shared 100 Mbps medium.
  double shuffle_seconds(const simmpi::ChannelCounters& c,
                         const RunScale& scale) const {
    double seconds = unicast_seconds(scale.bytes(c.unicast_bytes));
    if (c.mcast_msgs > 0) {
      const double fanout =
          static_cast<double>(c.mcast_recipient_bytes) /
          static_cast<double>(c.mcast_bytes);
      seconds += multicast_seconds(scale.bytes(c.mcast_bytes), fanout);
    }
    return seconds;
  }
};

// Dollars, where CostModel above is seconds: converts a run's makespan
// and its cross-rack shuffle traffic into what the fleet would bill.
// The paper's testbed rents K nodes for the whole job (every node
// participates in every barrier-synchronous stage, so there is nothing
// to release early): compute cost = makespan × K × $/node-hour. Bytes
// that leave a rack are the cloud's metered traffic (inter-AZ /
// inter-zone transfer in EC2 terms); intra-rack traffic is free, which
// is exactly why rack-aware multicast and per-rack pipe topologies
// change a configuration's price and not just its makespan.
//
// Constant derivations (same vintage as CostModel's Section V-B
// calibration — 2017 us-east-1 on-demand pricing):
//   * node_usd_per_hour: m3.large (the 100 Mbps-class instance the
//     testbed caps down to) listed at $0.133/hour on-demand.
//   * cross_rack_usd_per_gb: inter-AZ transfer billed $0.01/GB out
//     plus $0.01/GB in => $0.02 per GB crossing a rack boundary.
// Instance profiles override node_usd_per_hour per cell (the planner's
// instance axis); the egress rate is a property of the region, not the
// instance.
struct DollarCost {
  double node_usd_per_hour = 0.133;
  double cross_rack_usd_per_gb = 0.02;

  // K nodes held for the makespan.
  double node_hours(double makespan_seconds, int num_nodes) const {
    CTS_CHECK_GE(num_nodes, 1);
    return makespan_seconds / 3600.0 * static_cast<double>(num_nodes);
  }
  double compute_usd(double makespan_seconds, int num_nodes) const {
    return node_hours(makespan_seconds, num_nodes) * node_usd_per_hour;
  }
  double egress_usd(double cross_rack_bytes) const {
    CTS_CHECK_GE(cross_rack_bytes, 0.0);
    return cross_rack_bytes / 1e9 * cross_rack_usd_per_gb;
  }
  double total_usd(double makespan_seconds, int num_nodes,
                   double cross_rack_bytes) const {
    return compute_usd(makespan_seconds, num_nodes) +
           egress_usd(cross_rack_bytes);
  }
};

}  // namespace cts
