#include "codedterasort/coded_terasort.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "coding/codec.h"
#include "coding/placement.h"
#include "common/check.h"
#include "driver/partition_util.h"
#include "keyvalue/recordio.h"
#include "keyvalue/teragen.h"
#include "simmpi/multicast_round.h"

namespace cts {

namespace {

// Key for a node's stored serialized intermediate value I^target_file.
using IvKey = std::pair<NodeId, FileId>;

}  // namespace

void CodedTeraSortNode(simmpi::Comm& comm, RunRecorder& recorder,
                       const SortConfig& config) {
  const int K = config.num_nodes;
  const int r = config.redundancy;
  CTS_CHECK_EQ(comm.size(), K);
  CTS_CHECK_GE(r, 1);
  CTS_CHECK_LE(r, K);
  const NodeId self = comm.my_global();

  const Placement placement = Placement::Create(K, r);
  const auto ranges = placement.SplitRecords(config.num_records);
  const TeraGen gen(config.seed, config.distribution);

  // kDistributedSampled replaces the coordinator's partition file with
  // Hadoop-style collective sampling (collective on the world comm).
  std::unique_ptr<Partitioner> partitioner;
  if (config.partitioner == PartitionerKind::kDistributedSampled) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> local;
    for (const FileId f : placement.files_on_node(self)) {
      const auto fi = static_cast<std::size_t>(f);
      local.emplace_back(ranges.offset[fi], ranges.count[fi]);
    }
    partitioner = std::make_unique<SampledPartitioner>(
        BuildDistributedSampledPartitioner(comm, gen, local,
                                           config.sample_size));
  } else {
    partitioner = MakePartitioner(config);
  }

  StageRunner stages(comm, recorder, &config.injected_delays);
  NodeWork work;

  // ---- CodeGen: one communicator per multicast group ----
  std::map<NodeMask, simmpi::Comm> groups;
  stages.run(stage::kCodeGen, [&] {
    switch (config.codegen_mode) {
      case CodeGenMode::kCommSplit:
        // The paper's approach: one collective split per group.
        for (const NodeMask g : placement.multicast_groups()) {
          auto sub = comm.split(Contains(g, self) ? 0 : -1, /*key=*/self);
          if (sub.has_value()) {
            CTS_CHECK_EQ(sub->size(), r + 1);
            groups.emplace(g, std::move(*sub));
          }
        }
        break;
      case CodeGenMode::kBatched:
        // Scalable-coding extension: all groups in one collective.
        groups = comm.create_groups(placement.multicast_groups());
        break;
    }
    CTS_CHECK_EQ(groups.size(),
                 r < K ? Binomial(K - 1, r) : std::uint64_t{0});
  });

  // ---- Map ----
  // KV pairs of this node's own partition, collected straight into the
  // reduce pool; and the kept intermediate values I^t_S (t not in S)
  // as record lists, serialized during Encode.
  std::vector<Record> pool;
  std::map<IvKey, std::vector<Record>> kept;
  stages.run(stage::kMap, [&] {
    std::vector<std::vector<Record>> hashed(static_cast<std::size_t>(K));
    for (const FileId f : placement.files_on_node(self)) {
      const NodeMask file_mask = placement.file_nodes(f);
      const auto fi = static_cast<std::size_t>(f);
      const auto records = gen.generate(ranges.offset[fi], ranges.count[fi]);
      for (auto& bucket : hashed) bucket.clear();
      for (const Record& rec : records) {
        const PartitionId p = partitioner->partition(rec.key);
        hashed[static_cast<std::size_t>(p)].push_back(rec);
      }
      for (int t = 0; t < K; ++t) {
        auto& bucket = hashed[static_cast<std::size_t>(t)];
        if (t == self) {
          // I^k_S: this node's own partition — straight to Reduce.
          pool.insert(pool.end(), bucket.begin(), bucket.end());
        } else if (!Contains(file_mask, t)) {
          // I^t_S for t outside S: needed for the coded shuffle.
          kept.emplace(IvKey{t, f}, std::move(bucket));
          bucket = {};
        }
        // I^t_S for t in S \ {k}: discarded — node t mapped F_S too
        // (paper Fig. 5).
      }
      work.map_bytes += records.size() * kRecordBytes;
      work.map_files += 1;
    }
  });

  // ---- Encode ----
  // Serialized intermediate values (the Encode stage owns
  // serialization in the paper's implementation), then one coded
  // packet per group this node belongs to.
  std::map<IvKey, std::vector<std::uint8_t>> serialized;
  const IvAccess iv_access =
      [&](NodeId target, NodeMask file_mask) -> std::span<const std::uint8_t> {
    const auto it =
        serialized.find(IvKey{target, placement.file_of(file_mask)});
    CTS_CHECK_MSG(it != serialized.end(),
                  "node " << self << " missing IV for target " << target
                          << " file mask " << file_mask);
    return it->second;
  };
  std::map<NodeMask, Buffer> outgoing;
  stages.run(stage::kEncode, [&] {
    for (auto& [key, records] : kept) {
      Buffer buf;
      PackRecords(records, buf);
      serialized.emplace(key, buf.take());
    }
    kept.clear();  // records now live in serialized form
    for (const auto& [g, group_comm] : groups) {
      const CodedPacket packet =
          EncodePacket(g, self, iv_access, &work.codec);
      Buffer wire;
      packet.serialize(wire);
      outgoing.emplace(g, std::move(wire));
    }
  });

  // ---- Multicast Shuffling ----
  // kBarrier: serial, groups in colex order, members in ascending
  // order within a group (paper Fig. 9(b)). kOverlapped: the whole
  // round's coded packets are posted before any receive drains. Both
  // schedules live in simmpi::MulticastRound.
  std::map<std::pair<NodeMask, NodeId>, Buffer> incoming;
  stages.run(stage::kShuffle, [&] {
    incoming = simmpi::MulticastRound(
        groups, outgoing,
        config.shuffle_sync == ShuffleSync::kOverlapped);
  });

  // ---- Decode ----
  stages.run(stage::kDecode, [&] {
    for (const auto& [g, group_comm] : groups) {
      std::vector<DecodedSegment> segments;
      segments.reserve(static_cast<std::size_t>(r));
      for (const NodeId sender : MaskToNodes(WithoutNode(g, self))) {
        Buffer& wire = incoming.at({g, sender});
        const CodedPacket packet = CodedPacket::deserialize(wire);
        // The wire buffer is arena-backed (Comm::deliver); return the
        // storage now that the packet is deserialized.
        BufferArena::Local().release(wire.take());
        segments.push_back(
            DecodePacket(g, self, sender, packet, iv_access, &work.codec));
      }
      // The r segments reassemble I^self_{g \ {self}}.
      const auto value = MergeSegments(segments);
      Buffer value_buf{std::vector<std::uint8_t>(value)};
      UnpackRecordsInto(value_buf, pool);
    }
  });

  // ---- Reduce ----
  stages.run(stage::kReduce, [&] {
    std::sort(pool.begin(), pool.end(), RecordLess);
    work.reduce_bytes += pool.size() * kRecordBytes;
    for (const Record& rec : pool) {
      CTS_CHECK_MSG(partitioner->partition(rec.key) == self,
                    "record outside partition " << self);
    }
  });

  recorder.set_partition(self, std::move(pool));
  recorder.set_work(self, work);
}

AlgorithmResult RunCodedTeraSort(const SortConfig& config) {
  simmpi::World world(config.num_nodes);
  RunRecorder recorder(config.num_nodes);
  RunOnCluster(world, recorder, [&](simmpi::Comm& comm, RunRecorder& rec) {
    CodedTeraSortNode(comm, rec, config);
  });

  AlgorithmResult result;
  result.config = config;
  result.algorithm = "CodedTeraSort";
  result.partitions = recorder.take_partitions();
  result.work = recorder.work();
  result.wall_seconds = recorder.wall_max();
  result.stage_order = recorder.stage_order();
  result.compute_events = recorder.compute_events();
  for (const auto& name : world.stats().stage_names()) {
    result.traffic[name] = world.stats().stage(name);
  }
  result.shuffle_node_traffic = world.stats().per_node(stage::kShuffle);
  result.shuffle_log = world.stats().transmission_log(stage::kShuffle);
  result.transport_events = world.transport_log();
  CTS_CHECK_EQ(result.total_output_records(), config.num_records);
  CTS_CHECK_EQ(world.pending_messages(), std::size_t{0});
  return result;
}

}  // namespace cts
