// CodedTeraSort (paper Section IV).
//
// Six stages, exactly as the paper's C++/Open MPI implementation:
//
//   CodeGen  — every node enumerates the N = C(K, r) file subsets and
//              creates the C(K, r+1) multicast-group communicators via
//              collective splits (MPI_Comm_split in the paper).
//   Map      — node k hashes every file F_S with k in S. Of the K
//              intermediate values per file it keeps only I^k_S (its
//              own partition) and {I^i_S : i not in S}; values for
//              other members of S are discarded — those nodes computed
//              them locally (paper Fig. 5).
//   Encode   — per multicast group M (|M| = r+1), node k serializes
//              the relevant values and XORs r segments into the coded
//              packet E_{M,k} (Algorithm 1).
//   Multicast Shuffling — serial multicast: groups in colex order, and
//              within each group members broadcast in ascending order
//              (paper Fig. 9(b)); each packet is MPI_Bcast to the r
//              other members.
//   Decode   — node k cancels known segments from each received packet
//              (Algorithm 2) and merges the r recovered segments per
//              group into the needed intermediate value.
//   Reduce   — node k sorts partition P_k locally (std::sort).
//
// Redundancy r must satisfy 1 <= r <= K. r = K degenerates to "every
// node maps everything" (no groups, empty shuffle); r = 1 degenerates
// to TeraSort's placement but still uses the group machinery (groups
// of size 2, where "coded" packets carry a single segment — i.e. plain
// unicast in multicast clothing).
#pragma once

#include "driver/cluster.h"
#include "driver/run_result.h"
#include "simmpi/comm.h"

namespace cts {

// The CodedTeraSort node program (config.redundancy = r).
void CodedTeraSortNode(simmpi::Comm& world_comm, RunRecorder& recorder,
                       const SortConfig& config);

// Executes CodedTeraSort on a fresh simulated cluster and returns the
// assembled result (validated for record conservation).
AlgorithmResult RunCodedTeraSort(const SortConfig& config);

}  // namespace cts
