// Transport event capture for happens-before analysis (src/check).
//
// When capture is requested, every Mailbox records the three moments
// that determine MPI matching: a message arriving on a key (kSend,
// performed by the sending thread, stamped with the arrival index it
// claimed), a receive reserving the key's next match slot (kPost,
// performed by the mailbox owner, stamped with the ticket), and a
// wait/test redeeming a ticket (kMatch). The merged, stamp-ordered
// stream is one valid linearization of the run; the race detector
// rebuilds vector clocks over it and decides whether it is the *only*
// one (a determinism certificate) or whether two concurrent sends
// could have matched a key's posted receives in either order.
//
// Cost model: capture is off by default — the hot path pays one
// pointer test and one predictable branch per transport operation
// (the bench_micro trend gate keeps this honest). When armed, events
// append under the per-performer stripe lock via the same counted
// LockStripe the traffic recorder uses; the stamp is a relaxed global
// fetch_add drawn while the mailbox lock is held, so stamps respect
// both program order and every deliver -> claim edge.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "simmpi/traffic.h"

namespace cts::simmpi {

using CommId = std::uint32_t;
using Tag = std::int32_t;

// Wildcard receive source (MPI_ANY_SOURCE analogue) in analysis
// inputs. The live transport never posts one — Mailbox keys are always
// fully named — which is exactly why real runs can certify: the
// constant exists for synthetic logs (tests, the injected-race
// regression) and for any future wildcard-receive extension.
inline constexpr NodeId kAnySource = -1;

enum class TransportEventKind : std::uint8_t {
  kSend,   // message delivered onto (dst, comm, src, tag); index = its
           // arrival slot on that key
  kPost,   // receive reserved the key's next match slot; index = ticket
  kMatch,  // a wait/test redeemed `index` (the ticket == arrival index
           // it consumes under posting-order matching)
};

struct TransportEvent {
  TransportEventKind kind = TransportEventKind::kSend;
  NodeId performer = 0;  // thread that executed the operation
  NodeId dst = 0;        // mailbox owner
  NodeId src = 0;        // key source (kAnySource on wildcard posts)
  CommId comm = 0;
  Tag tag = 0;
  std::uint64_t index = 0;  // arrival index / ticket on the key
  std::uint64_t bytes = 0;  // payload size (kSend / kMatch)
  std::uint64_t stamp = 0;  // global draw order — a valid linearization

  bool same_key(const TransportEvent& o) const {
    return dst == o.dst && comm == o.comm && src == o.src && tag == o.tag;
  }
};

using TransportLog = std::vector<TransportEvent>;

// One recorder per World, armed at construction from the process-wide
// capture request (so enabling capture never races a running cluster).
class TransportRecorder {
 public:
  // Process-wide request, read by every World constructed afterwards.
  // ctcheck and the check tests set it before executing a run.
  static void RequestCapture(bool on) {
    capture_requested().store(on, std::memory_order_relaxed);
  }
  static bool CaptureRequested() {
    return capture_requested().load(std::memory_order_relaxed);
  }

  TransportRecorder() : armed_(CaptureRequested()) {}

  bool armed() const { return armed_; }

  // Appends `ev` with a freshly drawn stamp. Callers hold the mailbox
  // lock of ev.dst, which orders each kMatch stamp after the stamp of
  // the kSend it consumes.
  void Record(TransportEvent ev) {
    ev.stamp = next_stamp_.fetch_add(1, std::memory_order_relaxed);
    Stripe& s = stripes_[static_cast<std::size_t>(
        ev.performer >= 0 ? ev.performer : 0) % kStripes];
    auto lock = LockStripe(s.mu);
    s.events.push_back(ev);
  }

  // Stripe-merged log in stamp order. Call once the cluster threads
  // have joined (the same quiescence contract TrafficStats has).
  TransportLog Snapshot() const {
    TransportLog out;
    for (const Stripe& s : stripes_) {
      auto lock = LockStripe(s.mu);
      out.insert(out.end(), s.events.begin(), s.events.end());
    }
    std::sort(out.begin(), out.end(),
              [](const TransportEvent& a, const TransportEvent& b) {
                return a.stamp < b.stamp;
              });
    return out;
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Stripe& s : stripes_) {
      auto lock = LockStripe(s.mu);
      n += s.events.size();
    }
    return n;
  }

 private:
  static std::atomic<bool>& capture_requested() {
    static std::atomic<bool> requested{false};
    return requested;
  }

  static constexpr std::size_t kStripes = 16;

  struct Stripe {
    // repo-lint: allow(mutex): per-performer stripe of the sharded
    // event buffer, taken via the counted LockStripe helper.
    mutable std::mutex mu;
    TransportLog events;
  };

  const bool armed_;
  std::atomic<std::uint64_t> next_stamp_{0};
  Stripe stripes_[kStripes];
};

}  // namespace cts::simmpi
