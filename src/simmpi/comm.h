// MPI-flavoured communicator over the in-memory transport.
//
// This is the substrate the two sorting algorithms are written against,
// mirroring the Open MPI primitives the paper's implementation used:
//
//   MPI_Send / MPI_Recv   -> Comm::send / Comm::recv  (blocking, FIFO
//                            per (source, tag, communicator))
//   MPI_Bcast             -> Comm::bcast (application-layer multicast:
//                            the root transmits once, accounting-wise,
//                            and every other member receives a copy)
//   MPI_Barrier           -> Comm::barrier
//   MPI_Comm_split        -> Comm::split (collective; color < 0 is
//                            MPI_UNDEFINED)
//   MPI_Gather             -> Comm::gather (control-plane, unaccounted)
//   MPI_Isend / MPI_Irecv  -> Comm::isend / Comm::irecv (nonblocking,
//                            returning a Request; complete with
//                            wait / waitall / test)
//
// Traffic accounting: send() records a unicast and bcast() records a
// multicast with its fan-out into World::stats() under the current
// stage label. Nonblocking sends account at INITIATION (isend is
// eager-buffered, so initiation is when the bytes hit the wire) —
// overlapped and barrier-synchronous schedules therefore measure
// byte-identical loads. Control-plane traffic (barrier tokens, gather
// of results/timings) is deliberately NOT accounted — the paper's
// tables measure shuffle payloads, not MPI control overhead.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/types.h"
#include "simmpi/world.h"

namespace cts::simmpi {

// Handle for one nonblocking operation (MPI_Request). Move-only; owned
// by the node thread that initiated it. Send requests are born
// complete (sends are eager-buffered); receive requests complete when
// wait() or a successful test() matches the message. A posted receive
// that is never completed is counted by Mailbox::pending() — and hence
// World::pending_messages() — so abandoned requests fail the shutdown
// hygiene checks instead of vanishing silently.
class Request {
 public:
  Request() = default;
  // Moves reset the source to a null handle so a moved-from Request
  // cannot double-claim its ticket or double-retire the posted-recv
  // counter (wait/test on it throw instead).
  Request(Request&& o) noexcept { *this = std::move(o); }
  Request& operator=(Request&& o) noexcept {
    if (this != &o) {
      kind_ = std::exchange(o.kind_, Kind::kNull);
      mailbox_ = std::exchange(o.mailbox_, nullptr);
      comm_ = o.comm_;
      src_ = o.src_;
      tag_ = o.tag_;
      ticket_ = o.ticket_;
      done_ = std::exchange(o.done_, false);
      payload_ = std::move(o.payload_);
    }
    return *this;
  }
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  // True once the operation finished (always true for send requests).
  bool done() const { return done_; }
  // True for a default-constructed handle that never held an op.
  bool null() const { return kind_ == Kind::kNull; }

 private:
  friend class Comm;
  enum class Kind { kNull, kSend, kRecv };

  Kind kind_ = Kind::kNull;
  class Mailbox* mailbox_ = nullptr;  // receiving mailbox (recv only)
  CommId comm_ = 0;
  NodeId src_ = -1;  // global node id of the sender (recv only)
  Tag tag_ = 0;
  std::uint64_t ticket_ = 0;  // match slot reserved at posting time
  bool done_ = false;
  Buffer payload_;  // completed receive's message
};

class Comm {
 public:
  // The world communicator for node `self` (rank == node id).
  static Comm World(class World& world, NodeId self);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_->size()); }
  CommId id() const { return id_; }

  // The world this communicator lives in (for stats and harness use).
  class World& world() const { return *world_; }

  // Global node id of a rank in this communicator.
  NodeId global(int rank) const {
    CTS_CHECK_GE(rank, 0);
    CTS_CHECK_LT(rank, size());
    return (*members_)[static_cast<std::size_t>(rank)];
  }
  NodeId my_global() const { return global(rank_); }
  const std::vector<NodeId>& members() const { return *members_; }

  // Rank of a global node id in this communicator, or -1.
  int rank_of_global(NodeId node) const;

  // ---- Point-to-point (accounted as unicast) ----
  void send(int dst_rank, Tag tag, std::span<const std::uint8_t> payload);
  void send(int dst_rank, Tag tag, const Buffer& payload) {
    send(dst_rank, tag, payload.span());
  }
  Buffer recv(int src_rank, Tag tag);

  // ---- Nonblocking point-to-point ----
  //
  // isend is eager-buffered: the payload is copied into the
  // destination mailbox and the unicast is accounted immediately (at
  // initiation), so the returned request is already complete — exactly
  // MPI_Isend under an eager protocol. Unlike the blocking pair,
  // self-sends are legal (loopback; not accounted as network traffic):
  // isend(self) + irecv(self) cannot deadlock.
  Request isend(int dst_rank, Tag tag, std::span<const std::uint8_t> payload);
  Request isend(int dst_rank, Tag tag, const Buffer& payload) {
    return isend(dst_rank, tag, payload.span());
  }

  // Posts a receive for (src_rank, tag) on this communicator. FIFO
  // matching per (source, tag, comm) is preserved: two irecvs posted
  // for the same key complete in posting order with the messages in
  // sending order. Complete with wait / waitall / test.
  Request irecv(int src_rank, Tag tag);

  // Posts the receive side of a bcast rooted at `root_rank` (the
  // root's own bcast() call already returns without waiting, so this
  // is all that is needed to overlap multicast rounds). Pairs with the
  // root calling bcast().
  Request ibcast_recv(int root_rank);

  // Blocks until `req` completes; returns the received message (an
  // empty Buffer for send requests). A request can be waited only
  // once. Static (like MPI_Wait, completion needs no communicator);
  // callable through any Comm instance.
  static Buffer wait(Request& req);

  // Waits on every request, in order; returns the messages in request
  // order (empty Buffers for sends).
  static std::vector<Buffer> waitall(std::vector<Request>& reqs);

  // Nonblocking completion probe: returns true iff the request is
  // complete (matching it if the message has arrived), after which
  // wait() returns without blocking.
  static bool test(Request& req);

  // ---- Collectives ----

  // Application-layer multicast (accounted as one multicast with
  // fan-out size()-1). At the root, `payload` is the data to send; at
  // other ranks it is overwritten with the received copy.
  void bcast(int root_rank, Buffer& payload);

  // Root half of a bcast with the accounting split out: delivers
  // `payload` to every other member WITHOUT recording a multicast.
  // Callers must account the transmission themselves — the overlapped
  // multicast round prices a whole round of these through
  // TrafficStats::record_multicast_batch in one call. Receivers pair
  // it with ibcast_recv as usual.
  void bcast_put(const Buffer& payload);

  // Synchronizes all members (token to rank 0, token back).
  void barrier();

  // Collects every member's payload at `root_rank`, in rank order.
  // Returns the full vector at the root, an empty vector elsewhere.
  // Control-plane: not accounted.
  std::vector<Buffer> gather(int root_rank, const Buffer& payload);

  // Simultaneous exchange with `peer_rank` (both sides call with the
  // same tag). Safe against head-of-line deadlock because sends are
  // eager-buffered, like MPI_Sendrecv. Accounted as unicast.
  Buffer sendrecv(int peer_rank, Tag tag, const Buffer& payload);

  // Every member ends with every member's payload, in rank order
  // (MPI_Allgather). Data-plane: accounted as unicasts.
  std::vector<Buffer> allgather(const Buffer& payload);

  // Root distributes parts[i] to rank i and returns its own part;
  // non-roots pass an empty vector and receive theirs (MPI_Scatter).
  // Data-plane: accounted as unicasts.
  Buffer scatter(int root_rank, std::vector<Buffer> parts);

  // Global sum of one u64 per member, known to all (MPI_Allreduce with
  // MPI_SUM). Accounted as unicasts of 8-byte payloads.
  std::uint64_t allreduce_sum(std::uint64_t value);

  // Collective split. Members calling with the same color >= 0 form a
  // new communicator ordered by (key, node id); color < 0 opts out and
  // yields nullopt. Every member of this communicator must call.
  std::optional<Comm> split(int color, int key);

  // Batched group creation (the "Scalable Coding" extension, paper
  // Section VI): creates one communicator per node-mask in `groups`
  // using a single collective round instead of one split per group.
  // Every member of this communicator must call with the SAME list;
  // masks are over global node ids and must be members of this comm.
  // Returns the communicators for the groups containing the caller,
  // keyed by mask; ranks are in ascending node order. Accounting: one
  // comm creation per group, under the current stage label.
  std::map<NodeMask, Comm> create_groups(const std::vector<NodeMask>& groups);

 private:
  Comm(class World* world, CommId id,
       std::shared_ptr<const std::vector<NodeId>> members, int rank)
      : world_(world), id_(id), members_(std::move(members)), rank_(rank) {}

  void deliver(int dst_rank, Tag tag, std::span<const std::uint8_t> payload);
  Request post_recv(NodeId src, Tag tag);

  static constexpr Tag kTagBcast = -1;
  static constexpr Tag kTagBarrier = -2;
  static constexpr Tag kTagGather = -3;
  // Accounted collectives use high user-space tags so they never
  // collide with algorithm point-to-point tags (small non-negative).
  static constexpr Tag kTagAllgatherUser = 0x7fff0001;
  static constexpr Tag kTagScatterUser = 0x7fff0002;

  class World* world_;
  CommId id_;
  std::shared_ptr<const std::vector<NodeId>> members_;
  int rank_;
  std::uint64_t split_epoch_ = 0;
};

}  // namespace cts::simmpi
