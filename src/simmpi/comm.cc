#include "simmpi/comm.h"

#include "combinatorics/subsets.h"

#include <algorithm>

namespace cts::simmpi {

Comm Comm::World(class World& world, NodeId self) {
  CTS_CHECK_GE(self, 0);
  CTS_CHECK_LT(self, world.num_nodes());
  auto members = std::make_shared<std::vector<NodeId>>();
  members->reserve(static_cast<std::size_t>(world.num_nodes()));
  for (NodeId n = 0; n < world.num_nodes(); ++n) members->push_back(n);
  return Comm(&world, /*id=*/0, std::move(members), /*rank=*/self);
}

int Comm::rank_of_global(NodeId node) const {
  const auto it = std::find(members_->begin(), members_->end(), node);
  if (it == members_->end()) return -1;
  return static_cast<int>(it - members_->begin());
}

void Comm::deliver(int dst_rank, Tag tag,
                   std::span<const std::uint8_t> payload) {
  // Payload copies come from the thread-local arena; consumers on the
  // shuffle hot path hand the backing store back (see
  // terasort/coded_terasort), so steady-state shuffles stop
  // allocating.
  Buffer copy(BufferArena::Local().acquire(payload.size()));
  copy.write_bytes(payload);
  world_->mailbox(global(dst_rank)).deliver(id_, my_global(), tag,
                                            std::move(copy));
}

void Comm::send(int dst_rank, Tag tag,
                std::span<const std::uint8_t> payload) {
  CTS_CHECK_MSG(dst_rank != rank_, "send to self (rank " << rank_ << ")");
  CTS_CHECK_GE(tag, 0);  // negative tags are reserved for collectives
  world_->stats().record_unicast(payload.size(), my_global(),
                                 global(dst_rank));
  deliver(dst_rank, tag, payload);
}

Buffer Comm::recv(int src_rank, Tag tag) {
  CTS_CHECK_GE(src_rank, 0);
  CTS_CHECK_LT(src_rank, size());
  CTS_CHECK_MSG(src_rank != rank_, "recv from self (rank " << rank_ << ")");
  return world_->mailbox(my_global()).receive(id_, global(src_rank), tag);
}

Request Comm::isend(int dst_rank, Tag tag,
                    std::span<const std::uint8_t> payload) {
  CTS_CHECK_GE(tag, 0);  // negative tags are reserved for collectives
  if (dst_rank != rank_) {
    // Accounted at initiation: the eager copy below is the moment the
    // bytes occupy the wire, so overlapped schedules measure the same
    // loads as blocking ones.
    world_->stats().record_unicast(payload.size(), my_global(),
                                   global(dst_rank));
  }
  // Self-sends are loopback: delivered, but never on the network.
  deliver(dst_rank, tag, payload);
  Request req;
  req.kind_ = Request::Kind::kSend;
  req.done_ = true;
  return req;
}

Request Comm::irecv(int src_rank, Tag tag) {
  CTS_CHECK_GE(src_rank, 0);
  CTS_CHECK_LT(src_rank, size());
  CTS_CHECK_GE(tag, 0);
  return post_recv(global(src_rank), tag);
}

Request Comm::ibcast_recv(int root_rank) {
  CTS_CHECK_GE(root_rank, 0);
  CTS_CHECK_LT(root_rank, size());
  CTS_CHECK_MSG(root_rank != rank_,
                "ibcast_recv at the root (rank " << rank_ << ")");
  return post_recv(global(root_rank), kTagBcast);
}

Request Comm::post_recv(NodeId src, Tag tag) {
  Request req;
  req.kind_ = Request::Kind::kRecv;
  req.mailbox_ = &world_->mailbox(my_global());
  req.comm_ = id_;
  req.src_ = src;
  req.tag_ = tag;
  // The ticket reserves the key's next match slot NOW: posted
  // receives complete in posting order (MPI matching semantics),
  // whatever order they are waited in.
  req.ticket_ = req.mailbox_->post(id_, src, tag);
  return req;
}

Buffer Comm::wait(Request& req) {
  CTS_CHECK_MSG(!req.null(), "wait on a null request");
  if (req.kind_ == Request::Kind::kSend) return Buffer{};
  if (!req.done_) {
    req.payload_ =
        req.mailbox_->claim(req.comm_, req.src_, req.tag_, req.ticket_);
    req.mailbox_->retire_recv();
    req.done_ = true;
  }
  CTS_CHECK_MSG(req.mailbox_ != nullptr, "request waited twice");
  req.mailbox_ = nullptr;  // consumed
  return std::move(req.payload_);
}

std::vector<Buffer> Comm::waitall(std::vector<Request>& reqs) {
  std::vector<Buffer> out;
  out.reserve(reqs.size());
  for (Request& req : reqs) out.push_back(wait(req));
  return out;
}

bool Comm::test(Request& req) {
  CTS_CHECK_MSG(!req.null(), "test on a null request");
  if (req.done_) return true;
  auto got =
      req.mailbox_->try_claim(req.comm_, req.src_, req.tag_, req.ticket_);
  if (!got.has_value()) return false;
  req.payload_ = std::move(*got);
  req.mailbox_->retire_recv();
  req.done_ = true;
  return true;
}

void Comm::bcast(int root_rank, Buffer& payload) {
  CTS_CHECK_GE(root_rank, 0);
  CTS_CHECK_LT(root_rank, size());
  if (size() == 1) return;
  if (rank_ == root_rank) {
    // Application-layer multicast: account a single transmission with
    // fan-out size()-1 (the serial shared channel carries it once; the
    // cost model adds the MPI_Bcast log-fanout penalty).
    std::vector<NodeId> recipients;
    recipients.reserve(static_cast<std::size_t>(size()) - 1);
    for (int m = 0; m < size(); ++m) {
      if (m != rank_) recipients.push_back(global(m));
    }
    world_->stats().record_multicast(payload.size(), size() - 1,
                                     my_global(), recipients);
    for (int m = 0; m < size(); ++m) {
      if (m == rank_) continue;
      deliver(m, kTagBcast, payload.span());
    }
  } else {
    payload = world_->mailbox(my_global())
                  .receive(id_, global(root_rank), kTagBcast);
  }
}

void Comm::bcast_put(const Buffer& payload) {
  for (int m = 0; m < size(); ++m) {
    if (m == rank_) continue;
    deliver(m, kTagBcast, payload.span());
  }
}

void Comm::barrier() {
  if (size() == 1) return;
  const Buffer token;
  if (rank_ == 0) {
    for (int m = 1; m < size(); ++m) {
      (void)world_->mailbox(my_global()).receive(id_, global(m), kTagBarrier);
    }
    for (int m = 1; m < size(); ++m) deliver(m, kTagBarrier, token.span());
  } else {
    deliver(0, kTagBarrier, token.span());
    (void)world_->mailbox(my_global()).receive(id_, global(0), kTagBarrier);
  }
}

std::vector<Buffer> Comm::gather(int root_rank, const Buffer& payload) {
  CTS_CHECK_GE(root_rank, 0);
  CTS_CHECK_LT(root_rank, size());
  std::vector<Buffer> out;
  if (rank_ == root_rank) {
    out.resize(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(rank_)] = payload.Clone();
    for (int m = 0; m < size(); ++m) {
      if (m == rank_) continue;
      out[static_cast<std::size_t>(m)] =
          world_->mailbox(my_global()).receive(id_, global(m), kTagGather);
    }
  } else {
    deliver(root_rank, kTagGather, payload.span());
  }
  return out;
}

Buffer Comm::sendrecv(int peer_rank, Tag tag, const Buffer& payload) {
  send(peer_rank, tag, payload);
  return recv(peer_rank, tag);
}

std::vector<Buffer> Comm::allgather(const Buffer& payload) {
  // Naive exchange: every member unicasts to every other member. With
  // eager-buffered sends this is deadlock-free regardless of pacing.
  std::vector<Buffer> out(static_cast<std::size_t>(size()));
  out[static_cast<std::size_t>(rank_)] = payload.Clone();
  for (int m = 0; m < size(); ++m) {
    if (m == rank_) continue;
    send(m, kTagAllgatherUser, payload);
  }
  for (int m = 0; m < size(); ++m) {
    if (m == rank_) continue;
    out[static_cast<std::size_t>(m)] = recv(m, kTagAllgatherUser);
  }
  return out;
}

Buffer Comm::scatter(int root_rank, std::vector<Buffer> parts) {
  CTS_CHECK_GE(root_rank, 0);
  CTS_CHECK_LT(root_rank, size());
  if (rank_ == root_rank) {
    CTS_CHECK_EQ(static_cast<int>(parts.size()), size());
    for (int m = 0; m < size(); ++m) {
      if (m == rank_) continue;
      send(m, kTagScatterUser, parts[static_cast<std::size_t>(m)]);
    }
    return std::move(parts[static_cast<std::size_t>(rank_)]);
  }
  CTS_CHECK_MSG(parts.empty(), "non-root scatter callers pass no parts");
  return recv(root_rank, kTagScatterUser);
}

std::uint64_t Comm::allreduce_sum(std::uint64_t value) {
  Buffer mine;
  mine.write_u64(value);
  std::uint64_t total = 0;
  for (Buffer& b : allgather(mine)) total += b.read_u64();
  return total;
}

std::map<NodeMask, Comm> Comm::create_groups(
    const std::vector<NodeMask>& groups) {
  // One collective round: rank 0 reserves a contiguous id block and
  // broadcasts the base; every member then derives every group's id
  // and membership locally. This replaces |groups| full collectives
  // with a single one — the point of the extension.
  Buffer base_msg;
  if (rank_ == 0) {
    const CommId base = world_->allocate_comm_id_block(
        static_cast<CommId>(groups.size()));
    base_msg.write_u32(base);
    world_->stats().record_comm_creation(groups.size());
  }
  bcast(0, base_msg);
  base_msg.rewind();
  const CommId base = base_msg.read_u32();

  std::map<NodeMask, Comm> mine;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const NodeMask mask = groups[i];
    CTS_CHECK_MSG((mask & ~NodesToMask(*members_)) == 0,
                  "group mask " << mask << " has non-members");
    if (!Contains(mask, my_global())) continue;
    auto members = std::make_shared<const std::vector<NodeId>>(
        MaskToNodes(mask));
    const auto it =
        std::find(members->begin(), members->end(), my_global());
    const int rank = static_cast<int>(it - members->begin());
    mine.emplace(mask, Comm(world_, base + static_cast<CommId>(i),
                            std::move(members), rank));
  }
  // Synchronize so no member races ahead and messages a group comm a
  // laggard has not constructed (harmless with mailboxes, but keeps
  // the collective contract of MPI_Comm_create_group).
  barrier();
  return mine;
}

std::optional<Comm> Comm::split(int color, int key) {
  const std::uint64_t epoch = split_epoch_++;
  const auto result = world_->split_rendezvous(id_, epoch, size(),
                                               my_global(), color, key);
  if (!result.has_value()) return std::nullopt;
  auto members =
      std::make_shared<const std::vector<NodeId>>(result->members);
  const auto it =
      std::find(members->begin(), members->end(), my_global());
  CTS_CHECK(it != members->end());
  const int rank = static_cast<int>(it - members->begin());
  return Comm(world_, result->comm_id, std::move(members), rank);
}

}  // namespace cts::simmpi
