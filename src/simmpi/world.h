// The simulated cluster: K worker nodes sharing a transport.
//
// A World replaces the paper's EC2 cluster + Open MPI runtime. It owns
// one Mailbox per node, the global TrafficStats, the communicator-id
// allocator and the rendezvous state for collective Comm::split calls.
// Node programs never touch World directly except to construct their
// world communicator (Comm::World).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "simmpi/mailbox.h"
#include "simmpi/traffic.h"

namespace cts::simmpi {

// Result of a split rendezvous for one participant: the new
// communicator's id and its member list (ordered by (key, node id)).
struct SplitResult {
  CommId comm_id = 0;
  std::vector<NodeId> members;
};

class World {
 public:
  // Not capped at kMaxNodes: the transport itself is mask-free, so
  // live clusters can exceed the coded placement limit (TeraSort runs
  // at K~100; only mask-indexed placements cap at kMaxNodes).
  explicit World(int num_nodes)
      : num_nodes_(num_nodes), stats_(num_nodes) {
    CTS_CHECK_GE(num_nodes, 1);
    mailboxes_.reserve(static_cast<std::size_t>(num_nodes));
    for (int i = 0; i < num_nodes; ++i) {
      mailboxes_.push_back(std::make_unique<Mailbox>(i, &recorder_));
    }
  }

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int num_nodes() const { return num_nodes_; }
  TrafficStats& stats() { return stats_; }
  const TrafficStats& stats() const { return stats_; }

  Mailbox& mailbox(NodeId node) {
    CTS_CHECK_GE(node, 0);
    CTS_CHECK_LT(node, num_nodes_);
    return *mailboxes_[static_cast<std::size_t>(node)];
  }

  // Messages still queued anywhere (should be 0 after clean shutdown).
  std::size_t pending_messages() const {
    std::size_t n = 0;
    for (const auto& mb : mailboxes_) n += mb->pending();
    return n;
  }

  // Transport events captured during this World's lifetime, merged in
  // stamp order — empty unless TransportRecorder::RequestCapture(true)
  // was set before construction. Call after the node threads joined.
  TransportLog transport_log() const { return recorder_.Snapshot(); }
  bool transport_capture_armed() const { return recorder_.armed(); }

  // ---- Collective split rendezvous (backs Comm::split) ----
  //
  // Every member of the parent communicator (comm, epoch) calls this
  // exactly once with its (node, color, key). The call blocks until all
  // `expected` members have arrived; the last arrival partitions the
  // entries by color, orders each group by (key, node), and allocates
  // one fresh CommId per color in ascending color order (so ids are
  // deterministic). color < 0 means "not in any group" (MPI_UNDEFINED)
  // and yields nullopt.
  std::optional<SplitResult> split_rendezvous(CommId comm,
                                              std::uint64_t epoch,
                                              int expected, NodeId node,
                                              int color, int key);

  // Allocates a fresh communicator id (world comm is id 0).
  CommId allocate_comm_id() { return next_comm_id_.fetch_add(1); }

  // Allocates `count` consecutive ids and returns the first — used by
  // the batched group-creation extension so every member can derive
  // all group ids from a single broadcast base.
  CommId allocate_comm_id_block(CommId count) {
    return next_comm_id_.fetch_add(count);
  }

 private:
  struct SplitEntry {
    NodeId node;
    int color;
    int key;
  };

  struct SplitState {
    // repo-lint: allow(mutex): cold-path rendezvous — one lock per
    // in-flight split collective, never touched by the shuffle.
    std::mutex mu;
    std::condition_variable cv;
    std::vector<SplitEntry> entries;
    bool done = false;
    int readers_left = 0;
    std::map<NodeId, SplitResult> results;  // only colored participants
  };

  std::shared_ptr<SplitState> split_state(CommId comm, std::uint64_t epoch,
                                          int expected);
  void retire_split_state(CommId comm, std::uint64_t epoch);

  int num_nodes_;
  // Declared before the mailboxes that hold pointers into it.
  TransportRecorder recorder_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  TrafficStats stats_;

  // repo-lint: allow(mutex): cold-path split-state registry, taken
  // once per collective split, never on the message path.
  std::mutex split_mu_;
  std::map<std::pair<CommId, std::uint64_t>, std::shared_ptr<SplitState>>
      splits_;
  std::atomic<CommId> next_comm_id_{1};
};

}  // namespace cts::simmpi
