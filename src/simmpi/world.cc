#include "simmpi/world.h"

#include <algorithm>
#include <atomic>

namespace cts::simmpi {

std::shared_ptr<World::SplitState> World::split_state(CommId comm,
                                                      std::uint64_t epoch,
                                                      int expected) {
  std::lock_guard lock(split_mu_);
  auto& slot = splits_[{comm, epoch}];
  if (!slot) {
    slot = std::make_shared<SplitState>();
    slot->readers_left = expected;
  }
  return slot;
}

void World::retire_split_state(CommId comm, std::uint64_t epoch) {
  std::lock_guard lock(split_mu_);
  splits_.erase({comm, epoch});
}

std::optional<SplitResult> World::split_rendezvous(CommId comm,
                                                   std::uint64_t epoch,
                                                   int expected, NodeId node,
                                                   int color, int key) {
  CTS_CHECK_GE(expected, 1);
  auto state = split_state(comm, epoch, expected);

  std::unique_lock lock(state->mu);
  state->entries.push_back({node, color, key});
  CTS_CHECK_LE(state->entries.size(), static_cast<std::size_t>(expected));

  if (state->entries.size() == static_cast<std::size_t>(expected)) {
    // Last arrival computes the partition for everyone.
    std::map<int, std::vector<SplitEntry>> by_color;
    for (const auto& e : state->entries) {
      if (e.color >= 0) by_color[e.color].push_back(e);
    }
    for (auto& [color_value, group] : by_color) {
      std::sort(group.begin(), group.end(),
                [](const SplitEntry& a, const SplitEntry& b) {
                  return std::tie(a.key, a.node) < std::tie(b.key, b.node);
                });
      const CommId new_id = allocate_comm_id();
      std::vector<NodeId> members;
      members.reserve(group.size());
      for (const auto& e : group) members.push_back(e.node);
      for (const auto& e : group) {
        state->results[e.node] = SplitResult{new_id, members};
      }
      // One communicator materialized: the CodeGen cost model charges
      // per created multicast group.
      stats_.record_comm_creation();
    }
    state->done = true;
    state->cv.notify_all();
  } else {
    state->cv.wait(lock, [&] { return state->done; });
  }

  std::optional<SplitResult> my_result;
  if (const auto it = state->results.find(node);
      it != state->results.end() && color >= 0) {
    my_result = it->second;
  }

  const bool last_reader = (--state->readers_left == 0);
  lock.unlock();
  if (last_reader) retire_split_state(comm, epoch);
  return my_result;
}

}  // namespace cts::simmpi
