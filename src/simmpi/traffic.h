// Per-stage traffic accounting.
//
// The EC2 network of the paper is replaced by an in-memory transport;
// what the cost model needs from it is exact per-stage counts of what
// *would* have crossed the 100 Mbps links: unicast payload bytes and
// message counts (TeraSort shuffle), multicast payload bytes, message
// counts and fan-out (CodedTeraSort shuffle), and communicator
// creations (CodeGen). Stages are barrier-synchronized in both
// algorithms (the paper executes stages "one after another in a
// synchronous manner"), so a single global current-stage label is
// sufficient and race-free between barriers.
//
// Scale: at K~100 every shuffle send from every node thread hits this
// object, so the counters are sharded. A stage holds kStripes stripes,
// each with its own mutex, counter block, per-node byte vector and
// transmission-log shard; a record locks only stripe (src mod
// kStripes). Readers aggregate the stripes (counter sums, element-wise
// per-node sums, log merge by seq). Seq numbers come from one per-stage
// atomic, consumed only when an entry is actually logged, so the merged
// log still satisfies the simnet contract: seqs unique per stage,
// contiguous from 0, and within one sender seq order IS program order
// (a node thread draws its seqs sequentially).
//
// set_stage contract vs. overlapped shuffles (audited): set_stage must
// be called only between stage barriers (all nodes quiescent). The
// ShuffleSync::kOverlapped paths satisfy this because nonblocking sends
// account at INITIATION (see comm.h) and every initiation happens
// inside the stage body, i.e. after StageRunner's label barrier and
// before the next stage's entry barrier — bytes initiated before a
// relabel are attributed to the initiating stage even if the matching
// wait() drains after it. The relabel itself is an atomic pointer swap,
// so a racing record (a contract violation) would still land intact on
// one side or the other, never on a torn stage.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"
#include "simnet/transmission_log.h"

namespace cts::simmpi {

// Registry counter bumped whenever a recorder finds its stripe mutex
// already held (the lock is still taken — the counter just makes
// sharding effectiveness observable). Resolved once per process; the
// uncontended fast path costs one try_lock instead of one lock.
inline obs::Counter& StripeContentionCounter() {
  static obs::Counter& c =
      obs::MetricRegistry::Global().counter("simmpi/stripe_lock_contention");
  return c;
}

// Locks `mu`, counting (but not avoiding) contention.
// repo-lint: allow(mutex): this IS the striped-lock helper — it takes
// repo-lint: allow(mutex): a stripe's mutex, it does not declare one.
inline std::unique_lock<std::mutex> LockStripe(std::mutex& mu) {
  std::unique_lock<std::mutex> lock(mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    StripeContentionCounter().add();
    lock.lock();
  }
  return lock;
}

// Per-node transmit/receive byte totals within one stage. The serial
// shuffles of the paper only need the global totals, but the
// asynchronous-execution extension (paper Section VI, third future
// direction) prices a parallel shuffle as max over nodes of per-node
// link occupancy, which needs this split.
struct NodeTraffic {
  std::uint64_t tx_bytes = 0;  // bytes this node put on its uplink
  std::uint64_t rx_bytes = 0;  // bytes delivered to this node
};

// Counters for one named stage.
struct ChannelCounters {
  std::uint64_t unicast_msgs = 0;
  std::uint64_t unicast_bytes = 0;       // payload bytes sent point-to-point
  std::uint64_t mcast_msgs = 0;          // one per MPI_Bcast-style send
  std::uint64_t mcast_bytes = 0;         // payload bytes transmitted once
  std::uint64_t mcast_recipient_bytes = 0;  // payload * number of receivers
  std::uint64_t comm_creations = 0;      // communicator-split results

  ChannelCounters& operator+=(const ChannelCounters& o) {
    unicast_msgs += o.unicast_msgs;
    unicast_bytes += o.unicast_bytes;
    mcast_msgs += o.mcast_msgs;
    mcast_bytes += o.mcast_bytes;
    mcast_recipient_bytes += o.mcast_recipient_bytes;
    comm_creations += o.comm_creations;
    return *this;
  }

  // Total bytes a serial shared channel must carry: each unicast and
  // each multicast transmission occupies the channel once.
  std::uint64_t transmitted_bytes() const {
    return unicast_bytes + mcast_bytes;
  }
};

// One logical multicast of an overlapped round, for
// record_multicast_batch: a whole round of them is priced under a
// single stripe lock and a single seq-block reservation.
struct MulticastEvent {
  std::uint64_t bytes = 0;
  NodeId src = -1;
  std::vector<NodeId> recipients;  // ascending node order
};

// Thread-safe per-stage counter registry (sharded; see file comment).
class TrafficStats {
 public:
  explicit TrafficStats(int num_nodes = 0) : num_nodes_(num_nodes) {
    current_.store(materialize("", /*named=*/false),
                   std::memory_order_release);
  }

  TrafficStats(const TrafficStats&) = delete;
  TrafficStats& operator=(const TrafficStats&) = delete;

  // Sets the label under which subsequent traffic is recorded.
  // Call only between stage barriers (all nodes quiescent) — see the
  // overlapped-shuffle audit in the file comment.
  void set_stage(const std::string& stage) {
    current_.store(materialize(stage, /*named=*/true),
                   std::memory_order_release);
  }

  std::string current_stage() const {
    return current_.load(std::memory_order_acquire)->name;
  }

  void record_unicast(std::uint64_t bytes, NodeId src = -1,
                      NodeId dst = -1) {
    Stage& s = *current_.load(std::memory_order_acquire);
    Stripe& st = s.stripe_for(src);
    const auto lock = LockStripe(st.mu);
    ++st.counters.unicast_msgs;
    st.counters.unicast_bytes += bytes;
    if (src >= 0) st.node_traffic(num_nodes_, src).tx_bytes += bytes;
    if (dst >= 0) st.node_traffic(num_nodes_, dst).rx_bytes += bytes;
    if (src >= 0 && dst >= 0) {
      st.log.push_back(
          {src, {dst}, bytes,
           s.next_seq.fetch_add(1, std::memory_order_relaxed)});
    }
  }

  void record_multicast(std::uint64_t bytes, int receivers,
                        NodeId src = -1,
                        const std::vector<NodeId>& recipients = {}) {
    Stage& s = *current_.load(std::memory_order_acquire);
    Stripe& st = s.stripe_for(src);
    const auto lock = LockStripe(st.mu);
    ++st.counters.mcast_msgs;
    st.counters.mcast_bytes += bytes;
    st.counters.mcast_recipient_bytes +=
        bytes * static_cast<std::uint64_t>(receivers);
    // One transmission occupies the sender's uplink once; each
    // recipient's downlink carries a full copy.
    if (src >= 0) st.node_traffic(num_nodes_, src).tx_bytes += bytes;
    for (const NodeId d : recipients) {
      st.node_traffic(num_nodes_, d).rx_bytes += bytes;
    }
    if (src >= 0 && !recipients.empty()) {
      st.log.push_back(
          {src, recipients, bytes,
           s.next_seq.fetch_add(1, std::memory_order_relaxed)});
    }
  }

  // Batched accounting for one sender's multicast round: every event
  // must have the SAME src (one stripe), and the per-event fan-out is
  // recipients.size(). Equivalent to calling record_multicast once per
  // event, but with a single lock acquisition and a single contiguous
  // seq block — per-sender program order is preserved because the
  // block is drawn by the sending thread itself.
  void record_multicast_batch(const std::vector<MulticastEvent>& events) {
    if (events.empty()) return;
    Stage& s = *current_.load(std::memory_order_acquire);
    const NodeId src = events.front().src;
    std::uint64_t seq =
        s.next_seq.fetch_add(events.size(), std::memory_order_relaxed);
    Stripe& st = s.stripe_for(src);
    const auto lock = LockStripe(st.mu);
    for (const MulticastEvent& e : events) {
      ++st.counters.mcast_msgs;
      st.counters.mcast_bytes += e.bytes;
      st.counters.mcast_recipient_bytes +=
          e.bytes * static_cast<std::uint64_t>(e.recipients.size());
      if (e.src >= 0) st.node_traffic(num_nodes_, e.src).tx_bytes += e.bytes;
      for (const NodeId d : e.recipients) {
        st.node_traffic(num_nodes_, d).rx_bytes += e.bytes;
      }
      if (e.src >= 0 && !e.recipients.empty()) {
        st.log.push_back({e.src, e.recipients, e.bytes, seq});
      }
      ++seq;
    }
  }

  void record_comm_creation(std::uint64_t count = 1) {
    Stage& s = *current_.load(std::memory_order_acquire);
    Stripe& st = s.stripes[0];  // creations carry no src; stripe 0
    const auto lock = LockStripe(st.mu);
    st.counters.comm_creations += count;
  }

  ChannelCounters stage(const std::string& name) const {
    std::lock_guard lock(mu_);
    const auto it = stages_.find(name);
    return it == stages_.end() ? ChannelCounters{}
                               : it->second->aggregate();
  }

  ChannelCounters total() const {
    std::lock_guard lock(mu_);
    ChannelCounters t;
    for (const auto& [name, s] : stages_) t += s->aggregate();
    return t;
  }

  std::vector<std::string> stage_names() const {
    std::lock_guard lock(mu_);
    std::vector<std::string> names;
    names.reserve(stages_.size());
    for (const auto& [name, s] : stages_) {
      // The default "" stage exists from construction so the atomic
      // current-stage pointer is never null; report it only if it was
      // explicitly set or actually absorbed traffic.
      if (!s->named && s->empty()) continue;
      names.push_back(name);
    }
    return names;
  }

  // Per-node tx/rx for one stage (empty vector if none recorded or
  // the stats were constructed without a node count).
  std::vector<NodeTraffic> per_node(const std::string& stage) const {
    std::lock_guard lock(mu_);
    const auto it = stages_.find(stage);
    return it == stages_.end() ? std::vector<NodeTraffic>{}
                               : it->second->aggregate_per_node();
  }

  // Ordered transmissions of one stage (initiation order), for
  // discrete-event replay by simnet::ParallelMakespan et al.
  simnet::TransmissionLog transmission_log(const std::string& stage) const {
    std::lock_guard lock(mu_);
    const auto it = stages_.find(stage);
    return it == stages_.end() ? simnet::TransmissionLog{}
                               : it->second->merged_log();
  }

  // Call only while no node thread is recording (same quiescence
  // requirement as set_stage).
  void reset() {
    std::lock_guard lock(mu_);
    stages_.clear();
    current_.store(materialize_locked("", /*named=*/false),
                   std::memory_order_release);
  }

 private:
  // Stripe count: enough that K~100 sender threads rarely collide on
  // one mutex, small enough that read-side aggregation stays trivial.
  static constexpr int kStripes = 32;

  struct Stripe {
    // repo-lint: allow(mutex): this IS the striped lock — one of
    // kStripes per-source shards, taken via LockStripe.
    mutable std::mutex mu;
    ChannelCounters counters;
    std::vector<NodeTraffic> per_node;
    simnet::TransmissionLog log;

    // Requires mu held.
    NodeTraffic& node_traffic(int num_nodes, NodeId node) {
      if (per_node.size() <= static_cast<std::size_t>(node)) {
        per_node.resize(
            std::max<std::size_t>(static_cast<std::size_t>(num_nodes),
                                  static_cast<std::size_t>(node) + 1));
      }
      return per_node[static_cast<std::size_t>(node)];
    }
  };

  struct Stage {
    std::string name;
    bool named = false;  // true once set_stage names this stage
    std::atomic<std::uint64_t> next_seq{0};
    Stripe stripes[kStripes];

    Stripe& stripe_for(NodeId src) {
      return stripes[src >= 0 ? src % kStripes : 0];
    }

    ChannelCounters aggregate() const {
      ChannelCounters t;
      for (const Stripe& st : stripes) {
        std::lock_guard lock(st.mu);
        t += st.counters;
      }
      return t;
    }

    bool empty() const {
      const ChannelCounters t = aggregate();
      return t.unicast_msgs == 0 && t.unicast_bytes == 0 &&
             t.mcast_msgs == 0 && t.comm_creations == 0 &&
             next_seq.load(std::memory_order_relaxed) == 0;
    }

    std::vector<NodeTraffic> aggregate_per_node() const {
      std::vector<NodeTraffic> out;
      for (const Stripe& st : stripes) {
        std::lock_guard lock(st.mu);
        if (st.per_node.size() > out.size()) out.resize(st.per_node.size());
        for (std::size_t i = 0; i < st.per_node.size(); ++i) {
          out[i].tx_bytes += st.per_node[i].tx_bytes;
          out[i].rx_bytes += st.per_node[i].rx_bytes;
        }
      }
      return out;
    }

    simnet::TransmissionLog merged_log() const {
      simnet::TransmissionLog out;
      for (const Stripe& st : stripes) {
        std::lock_guard lock(st.mu);
        out.insert(out.end(), st.log.begin(), st.log.end());
      }
      // Stable on seq: seqs are unique within a stage, but a stable
      // sort additionally guarantees the emitted log is byte-identical
      // across stripe-merge orders even if a future caller merges logs
      // with duplicate seqs — traces and trace-derived metrics must be
      // reproducible run-to-run.
      std::stable_sort(
          out.begin(), out.end(),
          [](const simnet::Transmission& a, const simnet::Transmission& b) {
            return a.seq < b.seq;
          });
      return out;
    }
  };

  Stage* materialize(const std::string& stage, bool named) {
    std::lock_guard lock(mu_);
    return materialize_locked(stage, named);
  }

  // Requires mu_ held.
  Stage* materialize_locked(const std::string& stage, bool named) {
    auto& slot = stages_[stage];
    if (!slot) {
      slot = std::make_unique<Stage>();
      slot->name = stage;
    }
    if (named) slot->named = true;
    return slot.get();
  }

  int num_nodes_;
  // repo-lint: allow(mutex): guards stages_ (the cold stage-name
  // registry), never the per-record hot path.
  mutable std::mutex mu_;
  // Stage objects are owned by stages_ and never destroyed before
  // reset(), so the lock-free pointer below cannot dangle.
  std::map<std::string, std::unique_ptr<Stage>> stages_;
  std::atomic<Stage*> current_;
};

}  // namespace cts::simmpi
