// Per-stage traffic accounting.
//
// The EC2 network of the paper is replaced by an in-memory transport;
// what the cost model needs from it is exact per-stage counts of what
// *would* have crossed the 100 Mbps links: unicast payload bytes and
// message counts (TeraSort shuffle), multicast payload bytes, message
// counts and fan-out (CodedTeraSort shuffle), and communicator
// creations (CodeGen). Stages are barrier-synchronized in both
// algorithms (the paper executes stages "one after another in a
// synchronous manner"), so a single global current-stage label is
// sufficient and race-free between barriers.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "simnet/transmission_log.h"

namespace cts::simmpi {

// Per-node transmit/receive byte totals within one stage. The serial
// shuffles of the paper only need the global totals, but the
// asynchronous-execution extension (paper Section VI, third future
// direction) prices a parallel shuffle as max over nodes of per-node
// link occupancy, which needs this split.
struct NodeTraffic {
  std::uint64_t tx_bytes = 0;  // bytes this node put on its uplink
  std::uint64_t rx_bytes = 0;  // bytes delivered to this node
};

// Counters for one named stage.
struct ChannelCounters {
  std::uint64_t unicast_msgs = 0;
  std::uint64_t unicast_bytes = 0;       // payload bytes sent point-to-point
  std::uint64_t mcast_msgs = 0;          // one per MPI_Bcast-style send
  std::uint64_t mcast_bytes = 0;         // payload bytes transmitted once
  std::uint64_t mcast_recipient_bytes = 0;  // payload * number of receivers
  std::uint64_t comm_creations = 0;      // communicator-split results

  ChannelCounters& operator+=(const ChannelCounters& o) {
    unicast_msgs += o.unicast_msgs;
    unicast_bytes += o.unicast_bytes;
    mcast_msgs += o.mcast_msgs;
    mcast_bytes += o.mcast_bytes;
    mcast_recipient_bytes += o.mcast_recipient_bytes;
    comm_creations += o.comm_creations;
    return *this;
  }

  // Total bytes a serial shared channel must carry: each unicast and
  // each multicast transmission occupies the channel once.
  std::uint64_t transmitted_bytes() const {
    return unicast_bytes + mcast_bytes;
  }
};

// Thread-safe per-stage counter registry.
class TrafficStats {
 public:
  explicit TrafficStats(int num_nodes = 0) : num_nodes_(num_nodes) {}

  // Sets the label under which subsequent traffic is recorded.
  // Call only between stage barriers (all nodes quiescent).
  void set_stage(const std::string& stage) {
    std::lock_guard lock(mu_);
    current_ = stage;
    (void)stages_[current_];  // materialize so empty stages still report
  }

  std::string current_stage() const {
    std::lock_guard lock(mu_);
    return current_;
  }

  void record_unicast(std::uint64_t bytes, NodeId src = -1,
                      NodeId dst = -1) {
    std::lock_guard lock(mu_);
    auto& c = stages_[current_];
    ++c.unicast_msgs;
    c.unicast_bytes += bytes;
    if (src >= 0) node_traffic(src).tx_bytes += bytes;
    if (dst >= 0) node_traffic(dst).rx_bytes += bytes;
    if (src >= 0 && dst >= 0) {
      auto& log = logs_[current_];
      log.push_back({src, {dst}, bytes, log.size()});
    }
  }

  void record_multicast(std::uint64_t bytes, int receivers,
                        NodeId src = -1,
                        const std::vector<NodeId>& recipients = {}) {
    std::lock_guard lock(mu_);
    auto& c = stages_[current_];
    ++c.mcast_msgs;
    c.mcast_bytes += bytes;
    c.mcast_recipient_bytes += bytes * static_cast<std::uint64_t>(receivers);
    // One transmission occupies the sender's uplink once; each
    // recipient's downlink carries a full copy.
    if (src >= 0) node_traffic(src).tx_bytes += bytes;
    for (const NodeId d : recipients) node_traffic(d).rx_bytes += bytes;
    if (src >= 0 && !recipients.empty()) {
      auto& log = logs_[current_];
      log.push_back({src, recipients, bytes, log.size()});
    }
  }

  void record_comm_creation(std::uint64_t count = 1) {
    std::lock_guard lock(mu_);
    stages_[current_].comm_creations += count;
  }

  ChannelCounters stage(const std::string& name) const {
    std::lock_guard lock(mu_);
    const auto it = stages_.find(name);
    return it == stages_.end() ? ChannelCounters{} : it->second;
  }

  ChannelCounters total() const {
    std::lock_guard lock(mu_);
    ChannelCounters t;
    for (const auto& [name, c] : stages_) t += c;
    return t;
  }

  std::vector<std::string> stage_names() const {
    std::lock_guard lock(mu_);
    std::vector<std::string> names;
    names.reserve(stages_.size());
    for (const auto& [name, c] : stages_) names.push_back(name);
    return names;
  }

  // Per-node tx/rx for one stage (empty vector if none recorded or
  // the stats were constructed without a node count).
  std::vector<NodeTraffic> per_node(const std::string& stage) const {
    std::lock_guard lock(mu_);
    const auto it = per_node_.find(stage);
    return it == per_node_.end() ? std::vector<NodeTraffic>{} : it->second;
  }

  // Ordered transmissions of one stage (initiation order), for
  // discrete-event replay by simnet::ParallelMakespan et al.
  simnet::TransmissionLog transmission_log(const std::string& stage) const {
    std::lock_guard lock(mu_);
    const auto it = logs_.find(stage);
    return it == logs_.end() ? simnet::TransmissionLog{} : it->second;
  }

  void reset() {
    std::lock_guard lock(mu_);
    stages_.clear();
    per_node_.clear();
    logs_.clear();
    current_.clear();
  }

 private:
  // Requires mu_ held.
  NodeTraffic& node_traffic(NodeId node) {
    auto& v = per_node_[current_];
    if (v.size() <= static_cast<std::size_t>(node)) {
      v.resize(std::max<std::size_t>(static_cast<std::size_t>(num_nodes_),
                                     static_cast<std::size_t>(node) + 1));
    }
    return v[static_cast<std::size_t>(node)];
  }

  int num_nodes_;
  mutable std::mutex mu_;
  std::string current_ = "";
  std::map<std::string, ChannelCounters> stages_;
  std::map<std::string, std::vector<NodeTraffic>> per_node_;
  std::map<std::string, simnet::TransmissionLog> logs_;
};

}  // namespace cts::simmpi
