// Point-to-point message transport (blocking and nonblocking fronts).
//
// One Mailbox per destination node. Messages are keyed by
// (communicator id, source node, tag) and matched FIFO per key —
// exactly MPI's non-overtaking guarantee for matching (source, tag,
// comm) triples. send() is eager-buffered (copies the payload into the
// destination mailbox and returns), which matches MPI_Send semantics
// for the message sizes the simulator moves.
//
// Matching happens in POSTING order, as in MPI: every receive — the
// blocking receive() as well as a posted irecv — takes a ticket, the
// next free slot in the key's match sequence, and the ticket claims
// the message with the same arrival index. Two irecvs posted for one
// key therefore complete with the first and second message sent on
// that key no matter which is waited first. try_claim (a non-waiting
// probe) backs Comm::test.
//
// Posted-receive tracking: every posted irecv increments a counter
// that only its completing wait/test decrements, so a receive that is
// posted but never matched shows up in pending() — and hence in
// World::pending_messages() — at shutdown, exactly like a leaked
// message would.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <tuple>

#include "common/buffer.h"
#include "common/types.h"
#include "simmpi/eventlog.h"

namespace cts::simmpi {

using CommId = std::uint32_t;
using Tag = std::int32_t;

class Mailbox {
 public:
  // `owner` is the destination node this mailbox belongs to;
  // `recorder`, when armed, captures the matching-relevant events for
  // the happens-before analysis in src/check (see simmpi/eventlog.h).
  explicit Mailbox(NodeId owner = 0, TransportRecorder* recorder = nullptr)
      : owner_(owner), recorder_(recorder) {}

  // Enqueues a message for this mailbox's owner.
  void deliver(CommId comm, NodeId src, Tag tag, Buffer payload) {
    {
      std::lock_guard lock(mu_);
      auto& state = keys_[Key{comm, src, tag}];
      record(TransportEventKind::kSend, /*performer=*/src, src, comm, tag,
             state.arrived, payload.size());
      state.msgs.emplace(state.arrived++, std::move(payload));
    }
    cv_.notify_all();
  }

  // Reserves the next match slot of the key (the posting half of an
  // irecv). The returned ticket is redeemed with claim / try_claim.
  std::uint64_t post(CommId comm, NodeId src, Tag tag) {
    std::lock_guard lock(mu_);
    posted_recvs_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t ticket = keys_[Key{comm, src, tag}].next_ticket++;
    record(TransportEventKind::kPost, owner_, src, comm, tag, ticket, 0);
    return ticket;
  }

  // Blocks until the message with arrival index `ticket` on the key
  // is present, then removes and returns it.
  Buffer claim(CommId comm, NodeId src, Tag tag, std::uint64_t ticket) {
    std::unique_lock lock(mu_);
    const Key key{comm, src, tag};
    cv_.wait(lock, [&] {
      const auto it = keys_.find(key);
      return it != keys_.end() && it->second.msgs.contains(ticket);
    });
    Buffer payload = take(key, ticket);
    record(TransportEventKind::kMatch, owner_, src, comm, tag, ticket,
           payload.size());
    return payload;
  }

  // Non-waiting claim: removes and returns the ticket's message if it
  // has already arrived, nullopt otherwise.
  std::optional<Buffer> try_claim(CommId comm, NodeId src, Tag tag,
                                  std::uint64_t ticket) {
    std::lock_guard lock(mu_);
    const Key key{comm, src, tag};
    const auto it = keys_.find(key);
    if (it == keys_.end() || !it->second.msgs.contains(ticket)) {
      return std::nullopt;
    }
    Buffer payload = take(key, ticket);
    record(TransportEventKind::kMatch, owner_, src, comm, tag, ticket,
           payload.size());
    return payload;
  }

  // Blocking receive: reserve the key's next match slot and claim it.
  Buffer receive(CommId comm, NodeId src, Tag tag) {
    std::uint64_t ticket;
    {
      std::lock_guard lock(mu_);
      ticket = keys_[Key{comm, src, tag}].next_ticket++;
      record(TransportEventKind::kPost, owner_, src, comm, tag, ticket, 0);
    }
    return claim(comm, src, tag, ticket);
  }

  // Retires a posted receive once its wait/test completed it. An
  // abandoned request is deliberately never retired so leak checks
  // see it.
  void retire_recv() {
    posted_recvs_.fetch_sub(1, std::memory_order_relaxed);
  }

  // Queued messages plus still-posted receives (for tests and
  // shutdown leak checks; both must drain to zero on a clean run).
  std::size_t pending() const {
    std::lock_guard lock(mu_);
    std::size_t n = posted_recvs_.load(std::memory_order_relaxed);
    for (const auto& [key, state] : keys_) n += state.msgs.size();
    return n;
  }

 private:
  using Key = std::tuple<CommId, NodeId, Tag>;

  // Per-key match state. `arrived` and `next_ticket` never reset while
  // the key is live; the state is reclaimed once every delivered
  // message has been claimed and no reservation is outstanding.
  struct KeyState {
    std::map<std::uint64_t, Buffer> msgs;  // arrival index -> message
    std::uint64_t arrived = 0;             // messages ever delivered
    std::uint64_t next_ticket = 0;         // match slots ever reserved
  };

  // Requires mu_ held (stamps drawn under it order every kMatch after
  // the kSend it consumes; see TransportRecorder::Record).
  void record(TransportEventKind kind, NodeId performer, NodeId src,
              CommId comm, Tag tag, std::uint64_t index,
              std::uint64_t bytes) {
    if (recorder_ == nullptr || !recorder_->armed()) return;
    TransportEvent ev;
    ev.kind = kind;
    ev.performer = performer;
    ev.dst = owner_;
    ev.src = src;
    ev.comm = comm;
    ev.tag = tag;
    ev.index = index;
    ev.bytes = bytes;
    recorder_->Record(ev);
  }

  // Requires mu_ held and the ticket's message present. Reclaims the
  // key state only when nothing is queued AND no reservation is
  // outstanding (an outstanding ticket anticipates a future arrival
  // index, which an erase would reset).
  Buffer take(const Key& key, std::uint64_t ticket) {
    const auto it = keys_.find(key);
    Buffer payload = std::move(it->second.msgs.at(ticket));
    it->second.msgs.erase(ticket);
    if (it->second.msgs.empty() &&
        it->second.next_ticket == it->second.arrived) {
      keys_.erase(it);
    }
    return payload;
  }

  const NodeId owner_ = 0;
  TransportRecorder* const recorder_ = nullptr;
  // repo-lint: allow(mutex): the transport is already sharded one
  // mailbox per destination node — this is that shard's lock.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Key, KeyState> keys_;
  std::atomic<std::size_t> posted_recvs_{0};
};

}  // namespace cts::simmpi
