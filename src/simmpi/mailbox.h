// Blocking point-to-point message transport.
//
// One Mailbox per destination node. Messages are keyed by
// (communicator id, source node, tag) and delivered FIFO per key —
// exactly MPI's non-overtaking guarantee for matching (source, tag,
// comm) triples. send() is eager-buffered (copies the payload into the
// destination mailbox and returns), which matches MPI_Send semantics
// for the message sizes the simulator moves.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <tuple>

#include "common/buffer.h"
#include "common/types.h"

namespace cts::simmpi {

using CommId = std::uint32_t;
using Tag = std::int32_t;

class Mailbox {
 public:
  // Enqueues a message for this mailbox's owner.
  void deliver(CommId comm, NodeId src, Tag tag, Buffer payload) {
    {
      std::lock_guard lock(mu_);
      queues_[Key{comm, src, tag}].push_back(std::move(payload));
    }
    cv_.notify_all();
  }

  // Blocks until a message with the exact (comm, src, tag) key arrives,
  // then removes and returns it.
  Buffer receive(CommId comm, NodeId src, Tag tag) {
    std::unique_lock lock(mu_);
    const Key key{comm, src, tag};
    cv_.wait(lock, [&] {
      const auto it = queues_.find(key);
      return it != queues_.end() && !it->second.empty();
    });
    auto it = queues_.find(key);
    Buffer payload = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) queues_.erase(it);
    return payload;
  }

  // Number of queued messages (for tests and leak checks).
  std::size_t pending() const {
    std::lock_guard lock(mu_);
    std::size_t n = 0;
    for (const auto& [key, q] : queues_) n += q.size();
    return n;
  }

 private:
  using Key = std::tuple<CommId, NodeId, Tag>;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Key, std::deque<Buffer>> queues_;
};

}  // namespace cts::simmpi
