// One full multicast shuffle round over per-group communicators,
// shared by CodedTeraSort and the coded CMR engine: every member of
// each group broadcasts its packet and collects the other members'
// packets, under either the paper's serial schedule or the overlapped
// (nonblocking) one.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/types.h"
#include "simmpi/comm.h"

namespace cts::simmpi {

// Runs the round for the calling node. `groups` holds the group
// communicators this node belongs to, keyed by node mask; outgoing[g]
// is the packet it broadcasts in group g. Returns the packets
// received, keyed by (group, sender node).
//
// Serial (overlapped = false): groups in ascending-mask order — which
// is colex order for fixed-size subsets, i.e. the paper's Fig. 9(b)
// schedule — with members broadcasting in ascending rank order; the
// blocking bcast receives force each root to wait for its turn.
// Overlapped: every member posts receives for all its groups' packets
// (ibcast_recv), fires its own multicast in every group without
// waiting for a turn, then drains — the whole round is in flight at
// once. The overlapped path accounts its whole round of sends in ONE
// TrafficStats::record_multicast_batch call (same counters and
// per-sender seq order as per-bcast accounting; one lock instead of
// C(K-1, r) per node).
inline std::map<std::pair<NodeMask, NodeId>, Buffer> MulticastRound(
    std::map<NodeMask, Comm>& groups, std::map<NodeMask, Buffer>& outgoing,
    bool overlapped) {
  std::map<std::pair<NodeMask, NodeId>, Buffer> incoming;
  if (overlapped) {
    std::vector<std::pair<std::pair<NodeMask, NodeId>, Request>> recvs;
    for (auto& [g, gc] : groups) {
      for (int root = 0; root < gc.size(); ++root) {
        if (gc.rank() == root) continue;
        recvs.emplace_back(std::pair{g, gc.global(root)},
                           gc.ibcast_recv(root));
      }
    }
    std::vector<MulticastEvent> events;
    events.reserve(groups.size());
    for (auto& [g, gc] : groups) {
      if (gc.size() <= 1) continue;  // mirror bcast's singleton no-op
      MulticastEvent e;
      e.bytes = outgoing.at(g).size();
      e.src = gc.my_global();
      e.recipients.reserve(static_cast<std::size_t>(gc.size()) - 1);
      for (int m = 0; m < gc.size(); ++m) {
        if (m != gc.rank()) e.recipients.push_back(gc.global(m));
      }
      events.push_back(std::move(e));
    }
    if (!groups.empty()) {
      groups.begin()->second.world().stats().record_multicast_batch(events);
    }
    for (auto& [g, gc] : groups) {
      if (gc.size() <= 1) continue;
      gc.bcast_put(outgoing.at(g));
    }
    for (auto& [key, req] : recvs) incoming.emplace(key, Comm::wait(req));
  } else {
    for (auto& [g, gc] : groups) {
      for (int root = 0; root < gc.size(); ++root) {
        if (gc.rank() == root) {
          gc.bcast(root, outgoing.at(g));
        } else {
          Buffer payload;
          gc.bcast(root, payload);
          incoming.emplace(std::pair{g, gc.global(root)},
                           std::move(payload));
        }
      }
    }
  }
  return incoming;
}

}  // namespace cts::simmpi
