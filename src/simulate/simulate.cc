#include "simulate/simulate.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "coding/placement.h"
#include "coding/segments.h"
#include "combinatorics/subsets.h"
#include "common/check.h"
#include "driver/partition_util.h"
#include "keyvalue/recordio.h"
#include "keyvalue/teragen.h"

namespace cts::simulate {

namespace {

using I128 = __int128;

constexpr std::uint64_t kU64Max = ~std::uint64_t{0};

SynthesisResult Err(std::string message) {
  SynthesisResult r;
  r.error = std::move(message);
  return r;
}

std::string OverflowMessage(int K, int r, const char* what) {
  std::ostringstream os;
  os << what << " overflows 64 bits at K=" << K << ", r=" << r
     << " — reduce r (or K) until the placement arithmetic fits";
  return os.str();
}

// Narrows a signed 128-bit accumulator into the u64 counter a live run
// would have held; false when the exact value cannot fit (a scale no
// execution could reach either).
bool Narrow(I128 v, std::uint64_t* out) {
  if (v < 0 || v > static_cast<I128>(kU64Max)) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

// The file owning record `i` under SplitRange(total, num_files, ·):
// the first total % num_files files hold one extra record.
std::uint64_t FileOfRecord(std::uint64_t i, std::uint64_t total,
                           std::uint64_t num_files) {
  const std::uint64_t base = total / num_files;
  const std::uint64_t extra = total % num_files;
  if (base == 0) return i;
  const std::uint64_t boundary = extra * (base + 1);
  return i < boundary ? i / (base + 1) : extra + (i - boundary) / base;
}

// Largest c in [j-1, K-1] with C(c, j) <= rem; a 64-bit overflowing
// binomial is by definition > rem. C(j-1, j) == 0, so one exists.
int LargestBinomialAtMost(int K, int j, std::uint64_t rem) {
  int lo = j - 1;
  int hi = K - 1;
  while (lo < hi) {
    const int mid = lo + (hi - lo + 1) / 2;
    std::uint64_t v = 0;
    if (BinomialOr(mid, j, &v) && v <= rem) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

// Vector twin of combinatorics ColexUnrank: ascending members of the
// rank-th r-subset of {0..K-1}. Mask-free so K is not capped at
// kNodeMaskBits. Precondition: rank < C(K, r) (and C(K, r) fits).
std::vector<int> ColexUnrankMembers(int K, int r, std::uint64_t rank) {
  std::vector<int> members(static_cast<std::size_t>(r));
  std::uint64_t rem = rank;
  for (int j = r; j >= 1; --j) {
    const int c = LargestBinomialAtMost(K, j, rem);
    members[static_cast<std::size_t>(j - 1)] = c;
    std::uint64_t v = 0;
    CTS_CHECK(BinomialOr(c, j, &v));
    rem -= v;
  }
  CTS_CHECK_EQ(rem, std::uint64_t{0});
  return members;
}

// Colex rank of an ascending member list: sum of C(member_i, i+1).
// Precondition: C(K, |members|) fits in 64 bits, so every term and the
// sum do too.
std::uint64_t ColexRankMembers(const std::vector<int>& members) {
  std::uint64_t rank = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    std::uint64_t v = 0;
    CTS_CHECK(BinomialOr(members[i], static_cast<int>(i) + 1, &v));
    rank += v;
  }
  return rank;
}

// Shared input-side checks; builds the coordinator-style partitioner.
SynthesisResult CheckedPartitioner(const SortConfig& config,
                                   std::unique_ptr<Partitioner>* out) {
  if (config.num_nodes < 1) return Err("num_nodes must be >= 1");
  if (config.partitioner == PartitionerKind::kDistributedSampled) {
    return Err(
        "kDistributedSampled derives its splitters from a live "
        "collective; the simulated backend supports kRange and "
        "kSampled");
  }
  *out = MakePartitioner(config);
  CTS_CHECK_EQ((*out)->num_partitions(), config.num_nodes);
  return SynthesisResult{};
}

std::shared_ptr<AlgorithmResult> NewRun(const SortConfig& config,
                                        const char* algorithm) {
  auto run = std::make_shared<AlgorithmResult>();
  run->config = config;
  run->algorithm = algorithm;
  run->work.resize(static_cast<std::size_t>(config.num_nodes));
  return run;
}

// ---- TeraSort ----
//
// Mask-free like the live engine (terasort.cc): node k maps the k-th
// SplitRange slice, hashes it over the partitioner, and unicasts one
// packed list to every other node. Everything follows from the K x K
// histogram n[k][j] = records of node k's slice landing in partition j.
SynthesisResult SynthesizeTeraSort(SortConfig config) {
  config.redundancy = 1;  // RunTeraSort reports the degenerate placement
  std::unique_ptr<Partitioner> partitioner;
  if (SynthesisResult bad = CheckedPartitioner(config, &partitioner);
      !bad.ok()) {
    return bad;
  }
  const int K = config.num_nodes;
  const auto ku = static_cast<std::uint64_t>(K);
  const TeraGen gen(config.seed, config.distribution);

  std::vector<std::vector<std::uint64_t>> hist(
      static_cast<std::size_t>(K),
      std::vector<std::uint64_t>(static_cast<std::size_t>(K), 0));
  for (int k = 0; k < K; ++k) {
    const RecordRange range =
        SplitRange(config.num_records, ku, static_cast<std::uint64_t>(k));
    for (std::uint64_t i = range.offset; i < range.offset + range.count;
         ++i) {
      const PartitionId p = partitioner->partition(gen.record(i).key);
      ++hist[static_cast<std::size_t>(k)][static_cast<std::size_t>(p)];
    }
  }

  auto run = NewRun(config, "TeraSort");
  simmpi::ChannelCounters shuffle;
  std::vector<simmpi::NodeTraffic> nodes(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    auto& work = run->work[static_cast<std::size_t>(k)];
    const RecordRange range =
        SplitRange(config.num_records, ku, static_cast<std::uint64_t>(k));
    work.map_bytes = range.count * kRecordBytes;
    work.map_files = 1;
    for (int j = 0; j < K; ++j) {
      if (j == k) continue;
      const std::uint64_t bytes =
          PackedSize(hist[static_cast<std::size_t>(k)]
                         [static_cast<std::size_t>(j)]);
      work.pack_bytes += bytes;
      ++shuffle.unicast_msgs;
      shuffle.unicast_bytes += bytes;
      nodes[static_cast<std::size_t>(k)].tx_bytes += bytes;
      nodes[static_cast<std::size_t>(j)].rx_bytes += bytes;
    }
  }
  for (int j = 0; j < K; ++j) {
    auto& work = run->work[static_cast<std::size_t>(j)];
    work.unpack_bytes = nodes[static_cast<std::size_t>(j)].rx_bytes;
    std::uint64_t owned = 0;
    for (int k = 0; k < K; ++k) {
      owned += hist[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)];
    }
    work.reduce_bytes = owned * kRecordBytes;
  }
  run->traffic[stage::kShuffle] = shuffle;
  if (shuffle.unicast_msgs > 0) run->shuffle_node_traffic = std::move(nodes);
  run->stage_order = {stage::kMap, stage::kPack, stage::kShuffle,
                      stage::kUnpack, stage::kReduce};
  SynthesisResult result;
  result.run = std::move(run);
  return result;
}

// ---- CodedTeraSort ----
//
// Per-node accumulators for the coded path, signed 128-bit so the
// closed-form baseline (added first) and the per-dirty-group
// corrections (exact minus baseline, either sign) compose without
// intermediate overflow; narrowed to the live run's u64 counters at
// the end.
struct CodedAcc {
  I128 encode_xor = 0;
  I128 encode_payload = 0;
  I128 decode_xor = 0;
  I128 decoded = 0;
  I128 tx = 0;
  I128 rx = 0;
};

SynthesisResult SynthesizeCoded(const SortConfig& config) {
  const int K = config.num_nodes;
  const int r = config.redundancy;
  if (K < 1) return Err("num_nodes must be >= 1");
  if (r < 1 || r > K) {
    return Err("redundancy must satisfy 1 <= r <= K for CodedTeraSort");
  }
  std::uint64_t num_files = 0;
  std::uint64_t files_per_node = 0;
  std::uint64_t num_groups = 0;       // C(K, r+1), 0 when r == K
  std::uint64_t groups_per_node = 0;  // C(K-1, r)
  if (!BinomialOr(K, r, &num_files)) {
    return Err(OverflowMessage(K, r, "the file count C(K, r)"));
  }
  CTS_CHECK(BinomialOr(K - 1, r - 1, &files_per_node));
  if (r < K) {
    if (!BinomialOr(K, r + 1, &num_groups)) {
      return Err(OverflowMessage(K, r, "the group count C(K, r+1)"));
    }
    CTS_CHECK(BinomialOr(K - 1, r, &groups_per_node));
  }
  std::unique_ptr<Partitioner> partitioner;
  if (SynthesisResult bad = CheckedPartitioner(config, &partitioner);
      !bad.ok()) {
    return bad;
  }
  const TeraGen gen(config.seed, config.distribution);

  // Closed forms of one group slot, all files empty. A group member at
  // ascending index q sees its q smaller co-members at segment
  // position q-1 of their target files and the r-q larger ones at
  // position q (removing a smaller node shifts this node's index down
  // by one). s8[p] is one segment of an empty packed value.
  const std::uint64_t empty_packed = PackedSize(0);
  std::vector<std::uint64_t> s8(static_cast<std::size_t>(r));
  for (int p = 0; p < r; ++p) {
    s8[static_cast<std::size_t>(p)] = SegmentOf(empty_packed, r, p).length;
  }
  const int slots = r + 1;
  std::vector<std::uint64_t> e8(static_cast<std::size_t>(slots));
  std::vector<std::uint64_t> p8(static_cast<std::size_t>(slots));
  std::vector<std::uint64_t> wire8(static_cast<std::size_t>(slots));
  std::uint64_t wire8_sum = 0;
  const std::uint64_t header =  // CodedPacket wire minus payload:
      4 + 8 * static_cast<std::uint64_t>(r) + 8;
  for (int q = 0; q < slots; ++q) {
    const std::uint64_t below =
        q > 0 ? s8[static_cast<std::size_t>(q - 1)] : 0;
    const std::uint64_t above = q < r ? s8[static_cast<std::size_t>(q)] : 0;
    e8[static_cast<std::size_t>(q)] =
        static_cast<std::uint64_t>(q) * below +
        static_cast<std::uint64_t>(r - q) * above;
    p8[static_cast<std::size_t>(q)] = std::max(below, above);
    wire8[static_cast<std::size_t>(q)] =
        header + p8[static_cast<std::size_t>(q)];
    wire8_sum += wire8[static_cast<std::size_t>(q)];
  }

  // Baseline: node k sits at slot q in C(k, q) * C(K-1-k, r-q) groups.
  std::vector<CodedAcc> acc(static_cast<std::size_t>(K));
  if (r < K) {
    for (int k = 0; k < K; ++k) {
      CodedAcc& a = acc[static_cast<std::size_t>(k)];
      for (int q = 0; q < slots; ++q) {
        std::uint64_t choose_below = 0;
        std::uint64_t choose_above = 0;
        const bool below_ok = BinomialOr(k, q, &choose_below);
        const bool above_ok = BinomialOr(K - 1 - k, r - q, &choose_above);
        if ((below_ok && choose_below == 0) ||
            (above_ok && choose_above == 0)) {
          continue;  // no group puts k at slot q
        }
        // Both factors nonzero: their product is bounded by
        // C(K-1, r), which fits (groups_per_node above), so neither
        // factor can have overflowed.
        CTS_CHECK(below_ok && above_ok);
        const I128 cnt = static_cast<I128>(choose_below) * choose_above;
        a.encode_xor += cnt * e8[static_cast<std::size_t>(q)];
        a.encode_payload += cnt * p8[static_cast<std::size_t>(q)];
        // Per slot, decode cancels everything the co-members' packets
        // carry for other targets: sum of their values minus what this
        // node XORed in at encode time.
        a.decode_xor +=
            cnt * (static_cast<std::uint64_t>(r) * empty_packed -
                   e8[static_cast<std::size_t>(q)]);
        a.tx += cnt * wire8[static_cast<std::size_t>(q)];
        a.rx += cnt * (wire8_sum - wire8[static_cast<std::size_t>(q)]);
      }
      a.decoded = static_cast<I128>(empty_packed) * groups_per_node;
    }
  }

  // Stream the input once. Each record lands in exactly one file
  // (FileOfRecord) and one partition; only the (file, partition) cells
  // with the partition OUTSIDE the file's node set shape the coding
  // (inside, the record either goes straight to its owner's reduce
  // pool or is a discarded duplicate), so only those become sparse
  // state. Everything else folds into per-node scalars here.
  std::map<std::uint64_t, std::map<int, std::uint64_t>> file_cells;
  std::vector<std::uint64_t> partition_records(static_cast<std::size_t>(K),
                                               0);
  std::vector<std::uint64_t> mapped_records(static_cast<std::size_t>(K), 0);
  std::uint64_t cached_rank = kU64Max;
  std::vector<int> cached_members;
  for (std::uint64_t i = 0; i < config.num_records; ++i) {
    const std::uint64_t f = FileOfRecord(i, config.num_records, num_files);
    if (f != cached_rank || cached_members.empty()) {
      cached_members = ColexUnrankMembers(K, r, f);
      cached_rank = f;
    }
    const PartitionId t = partitioner->partition(gen.record(i).key);
    ++partition_records[static_cast<std::size_t>(t)];
    for (const int m : cached_members) {
      ++mapped_records[static_cast<std::size_t>(m)];
    }
    if (!std::binary_search(cached_members.begin(), cached_members.end(),
                            t)) {
      ++file_cells[f][t];
    }
  }

  // Dirty groups: group S + {t} deviates from the all-empty baseline
  // exactly when some member's target value n[S][t] is nonzero — at
  // most one group per nonzero cell, so at most num_records of them.
  std::map<std::uint64_t, std::vector<int>> dirty;
  if (r < K) {
    for (const auto& [frank, cells] : file_cells) {
      const std::vector<int> members = ColexUnrankMembers(K, r, frank);
      for (const auto& [t, n] : cells) {
        std::vector<int> g = members;
        g.insert(std::upper_bound(g.begin(), g.end(), t), t);
        dirty.emplace(ColexRankMembers(g), std::move(g));
      }
    }
  }

  // Per dirty group: recompute every member's exact encode/decode and
  // wire contribution and replace the baseline slot values.
  std::vector<std::uint64_t> value_len(static_cast<std::size_t>(slots));
  std::vector<std::uint64_t> wire(static_cast<std::size_t>(slots));
  for (const auto& [grank, g] : dirty) {
    (void)grank;
    std::uint64_t len_sum = 0;
    for (int j = 0; j < slots; ++j) {
      // Member j's incoming value lives in file g \ {g[j]}.
      std::vector<int> file = g;
      file.erase(file.begin() + j);
      std::uint64_t n = 0;
      if (const auto fit = file_cells.find(ColexRankMembers(file));
          fit != file_cells.end()) {
        if (const auto cit = fit->second.find(g[static_cast<std::size_t>(j)]);
            cit != fit->second.end()) {
          n = cit->second;
        }
      }
      value_len[static_cast<std::size_t>(j)] = PackedSize(n);
      len_sum += value_len[static_cast<std::size_t>(j)];
    }
    std::uint64_t wire_sum = 0;
    for (int q = 0; q < slots; ++q) {
      CodedAcc& a = acc[static_cast<std::size_t>(g[static_cast<std::size_t>(q)])];
      std::uint64_t xor_bytes = 0;
      std::uint64_t payload = 0;
      for (int j = 0; j < slots; ++j) {
        if (j == q) continue;
        const int position = q - (j < q ? 1 : 0);
        const std::uint64_t seg =
            SegmentOf(value_len[static_cast<std::size_t>(j)], r, position)
                .length;
        xor_bytes += seg;
        payload = std::max(payload, seg);
      }
      wire[static_cast<std::size_t>(q)] = header + payload;
      wire_sum += wire[static_cast<std::size_t>(q)];
      a.encode_xor += static_cast<I128>(xor_bytes) -
                      e8[static_cast<std::size_t>(q)];
      a.encode_payload += static_cast<I128>(payload) -
                          p8[static_cast<std::size_t>(q)];
      a.decoded += static_cast<I128>(value_len[static_cast<std::size_t>(q)]) -
                   empty_packed;
      a.decode_xor +=
          (static_cast<I128>(len_sum) -
           value_len[static_cast<std::size_t>(q)] - xor_bytes) -
          (static_cast<I128>(static_cast<std::uint64_t>(r) * empty_packed) -
           e8[static_cast<std::size_t>(q)]);
      a.tx += static_cast<I128>(wire[static_cast<std::size_t>(q)]) -
              wire8[static_cast<std::size_t>(q)];
    }
    for (int q = 0; q < slots; ++q) {
      acc[static_cast<std::size_t>(g[static_cast<std::size_t>(q)])].rx +=
          (static_cast<I128>(wire_sum) - wire[static_cast<std::size_t>(q)]) -
          (static_cast<I128>(wire8_sum) -
           wire8[static_cast<std::size_t>(q)]);
    }
  }

  // Assemble the run.
  auto run = NewRun(config, "CodedTeraSort");
  std::vector<simmpi::NodeTraffic> nodes(static_cast<std::size_t>(K));
  I128 mcast_bytes = 0;
  const auto overflow = [&] {
    return Err(OverflowMessage(K, r, "a 64-bit traffic counter"));
  };
  for (int k = 0; k < K; ++k) {
    const CodedAcc& a = acc[static_cast<std::size_t>(k)];
    auto& work = run->work[static_cast<std::size_t>(k)];
    work.map_bytes = mapped_records[static_cast<std::size_t>(k)] *
                     kRecordBytes;
    work.map_files = files_per_node;
    work.reduce_bytes =
        partition_records[static_cast<std::size_t>(k)] * kRecordBytes;
    work.codec.packets_encoded = groups_per_node;
    work.codec.packets_decoded =
        static_cast<std::uint64_t>(r) * groups_per_node;
    if (!Narrow(a.encode_xor, &work.codec.encode_xor_bytes) ||
        !Narrow(a.encode_payload, &work.codec.encode_payload_bytes) ||
        !Narrow(a.decode_xor, &work.codec.decode_xor_bytes) ||
        !Narrow(a.decoded, &work.codec.decoded_bytes) ||
        !Narrow(a.tx, &nodes[static_cast<std::size_t>(k)].tx_bytes) ||
        !Narrow(a.rx, &nodes[static_cast<std::size_t>(k)].rx_bytes)) {
      return overflow();
    }
    mcast_bytes += a.tx;
  }
  simmpi::ChannelCounters shuffle;
  const I128 mcast_msgs = static_cast<I128>(slots) * num_groups;
  if (!Narrow(mcast_msgs, &shuffle.mcast_msgs) ||
      !Narrow(mcast_bytes, &shuffle.mcast_bytes) ||
      !Narrow(mcast_bytes * r, &shuffle.mcast_recipient_bytes)) {
    return overflow();
  }
  simmpi::ChannelCounters codegen;
  codegen.comm_creations = num_groups;  // both CodeGenModes create one
                                        // communicator per group
  run->traffic[stage::kCodeGen] = codegen;
  run->traffic[stage::kShuffle] = shuffle;
  if (shuffle.mcast_msgs > 0) run->shuffle_node_traffic = std::move(nodes);
  run->stage_order = {stage::kCodeGen, stage::kMap, stage::kEncode,
                      stage::kShuffle, stage::kDecode, stage::kReduce};
  SynthesisResult result;
  result.run = std::move(run);
  return result;
}

}  // namespace

SynthesisResult SynthesizeRun(const std::string& algorithm,
                              const SortConfig& config) {
  if (algorithm == "terasort") return SynthesizeTeraSort(config);
  if (algorithm == "coded") return SynthesizeCoded(config);
  return Err("algorithm '" + algorithm +
             "' has no synthesized pricing (supported: terasort, coded)");
}

}  // namespace cts::simulate
