// Priced-only run synthesis: the counters of a live run, without the
// run.
//
// The thread-per-node harness tops out around K ~ 100 (one OS thread
// per node, every record materialized). But Backend::kPriced never
// reads the sorted output — analytics::SimulateRun consumes only the
// per-node NodeWork counters, the Shuffle/CodeGen ChannelCounters and
// the per-node shuffle traffic. All of those are exact arithmetic
// consequences of (algorithm, SortConfig): the placement is a pure
// function of (K, r), the input is a pure function of (seed, i), and
// the codec's segment accounting is deterministic. This module
// computes them directly, so pricing scales to K ~ 1000 where
// C(K, r) files and C(K, r+1) groups exist only as binomials.
//
// Exactness contract: for any config both backends can run, the
// synthesized AlgorithmResult prices byte-identically to the measured
// one (asserted against the live kPriced backend in
// tests/simulate_test.cc). The coded path gets there without
// enumerating the C(K, r) files: all files an execution would leave
// empty contribute closed-form per-node baselines (every empty
// intermediate value still packs to PackedSize(0) bytes and still
// crosses the wire), and the at-most-num_records (file, partition)
// cells that actually hold records are streamed once and applied as
// per-group corrections on top.
//
// Scale limits are arithmetic, not structural: any C(K, r) or
// C(K, r+1) (or derived counter) that exceeds 64 bits is reported as
// a structured error via SynthesisResult::error — never a process
// abort (combinatorics BinomialOr).
#pragma once

#include <memory>
#include <string>

#include "driver/run_result.h"

namespace cts::simulate {

// A synthesized run, or the reason one could not be produced.
struct SynthesisResult {
  // Null iff error is non-empty. On success: NodeWork, Shuffle and
  // CodeGen traffic, shuffle_node_traffic and stage_order are filled
  // exactly as a live run would; partitions, wall clocks, compute
  // events and the transmission log are empty (nothing executed).
  std::shared_ptr<AlgorithmResult> run;
  std::string error;

  bool ok() const { return error.empty(); }
};

// Synthesizes the run for a registry algorithm name ("terasort" or
// "coded"). Structured errors (no abort): unknown/unpriceable
// algorithm (e.g. "cmr"), PartitionerKind::kDistributedSampled (its
// splitters depend on the live collective), redundancy out of range,
// or 64-bit binomial/counter overflow at extreme (K, r).
SynthesisResult SynthesizeRun(const std::string& algorithm,
                              const SortConfig& config);

}  // namespace cts::simulate
