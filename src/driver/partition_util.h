// Partitioner construction shared by both algorithms.
//
// In the paper the coordinator creates the key partitions and ships
// them to the workers. Here the partitioner is a deterministic function
// of the SortConfig, so every node constructs an identical copy with no
// communication (tests additionally verify the serialize/ship path).
#pragma once

#include <memory>
#include <vector>

#include "driver/run_result.h"
#include "keyvalue/partitioner.h"
#include "keyvalue/teragen.h"
#include "simmpi/comm.h"

namespace cts {

// Builds the configured partitioner with num_nodes partitions. For
// kSampled, samples `config.sample_size` evenly spaced records of the
// input stream (a deterministic stand-in for the coordinator's random
// input sample). kDistributedSampled cannot be built here — it needs
// the communicator; node programs call
// BuildDistributedSampledPartitioner instead.
std::unique_ptr<Partitioner> MakePartitioner(const SortConfig& config);

// Hadoop-style distributed sampling: every node samples keys from its
// own record ranges, the samples are allgathered, and every node
// derives identical splitters from the combined sample. Collective on
// `comm`. `local_ranges` are (offset, count) record ranges this node
// stores; `samples` is the per-node sample budget.
SampledPartitioner BuildDistributedSampledPartitioner(
    simmpi::Comm& comm, const TeraGen& gen,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& local_ranges,
    std::uint64_t samples);

}  // namespace cts
