// Cluster execution harness.
//
// Replaces the paper's coordinator + K EC2 workers: the coordinator is
// the calling thread, and each worker node is an OS thread running the
// node program against its world communicator. RunRecorder is the
// shared-memory side channel the harness (not the algorithms) uses to
// collect outputs, counters and timings — the algorithms themselves
// only communicate through simmpi.
#pragma once

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"
#include "driver/run_result.h"
#include "simmpi/comm.h"
#include "simmpi/world.h"

namespace cts {

// Thread-safe collection of per-node results during a run.
class RunRecorder {
 public:
  explicit RunRecorder(int num_nodes)
      : partitions_(static_cast<std::size_t>(num_nodes)),
        work_(static_cast<std::size_t>(num_nodes)) {}

  void record_wall(const std::string& stage, NodeId node, double seconds) {
    std::lock_guard lock(mu_);
    auto& per_node = wall_[stage];
    per_node.resize(std::max(per_node.size(),
                             static_cast<std::size_t>(node) + 1));
    per_node[static_cast<std::size_t>(node)] = seconds;
  }

  // Records one stage boundary on one node ([start, end) on the node's
  // local run clock). The first node to enter a stage also fixes the
  // stage's position in stage_order() — stages are barrier-delimited,
  // so every node sees the same sequence.
  void record_event(const std::string& stage, NodeId node, double start,
                    double end) {
    std::lock_guard lock(mu_);
    if (seen_stages_.insert(stage).second) stage_order_.push_back(stage);
    events_.push_back(ComputeEvent{stage, node, start, end});
  }

  // Stage names in first-execution order.
  std::vector<std::string> stage_order() const {
    std::lock_guard lock(mu_);
    return stage_order_;
  }

  // All recorded events, ordered by (node, start).
  ComputeLog compute_events() const {
    std::lock_guard lock(mu_);
    ComputeLog log = events_;
    std::sort(log.begin(), log.end(),
              [](const ComputeEvent& a, const ComputeEvent& b) {
                return a.node != b.node ? a.node < b.node
                                        : a.start_seconds < b.start_seconds;
              });
    return log;
  }

  void set_partition(NodeId node, std::vector<Record> records) {
    std::lock_guard lock(mu_);
    partitions_[static_cast<std::size_t>(node)] = std::move(records);
  }

  void set_work(NodeId node, const NodeWork& work) {
    std::lock_guard lock(mu_);
    work_[static_cast<std::size_t>(node)] = work;
  }

  // Max-over-nodes wall seconds per stage.
  std::map<std::string, double> wall_max() const {
    std::lock_guard lock(mu_);
    std::map<std::string, double> out;
    for (const auto& [stage, per_node] : wall_) {
      double mx = 0;
      for (double s : per_node) mx = std::max(mx, s);
      out[stage] = mx;
    }
    return out;
  }

  std::vector<std::vector<Record>> take_partitions() {
    std::lock_guard lock(mu_);
    return std::move(partitions_);
  }

  std::vector<NodeWork> work() const {
    std::lock_guard lock(mu_);
    return work_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<double>> wall_;
  std::vector<std::vector<Record>> partitions_;
  std::vector<NodeWork> work_;
  std::set<std::string> seen_stages_;
  std::vector<std::string> stage_order_;
  ComputeLog events_;
};

// Runs `program(comm, recorder)` on one thread per node of a fresh
// World and returns after all threads join. The first per-node
// exception (if any) is rethrown on the calling thread.
using NodeProgram =
    std::function<void(simmpi::Comm& world_comm, RunRecorder& recorder)>;

void RunOnCluster(simmpi::World& world, RunRecorder& recorder,
                  const NodeProgram& program);

// Scoped timer for one stage body on one node: on destruction it
// records BOTH RunRecorder entries — the wall time and the
// ComputeEvent boundary — which are meaningless apart (the scenario
// engine replays events, the tables print walls, and a stage recorded
// in one but not the other would silently diverge the two views).
// Owning the pairing here keeps the node programs unable to forget
// half of it.
class StageTimer {
 public:
  // `run_clock_start` anchors the event on the node's local run clock
  // (seconds since the node program started its StageRunner).
  StageTimer(RunRecorder& recorder, std::string stage, NodeId node,
             double run_clock_start)
      : recorder_(recorder), stage_(std::move(stage)), node_(node),
        start_(run_clock_start) {}

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  ~StageTimer() {
    const double seconds = watch_.elapsed();
    recorder_.record_wall(stage_, node_, seconds);
    recorder_.record_event(stage_, node_, start_, start_ + seconds);
  }

 private:
  RunRecorder& recorder_;
  std::string stage_;
  NodeId node_;
  double start_;
  Stopwatch watch_;
};

// Stage sequencing helper used inside node programs. Stages execute
// under a barrier-delimited protocol: everyone finishes the previous
// stage, rank 0 labels the traffic stats, everyone starts — matching
// the paper's synchronous stage-after-stage execution.
class StageRunner {
 public:
  // `injected_delays` (optional, borrowed) is the live fault-injection
  // hook: a matching entry makes this node really sleep inside the
  // stage body, so measured wall times and ComputeEvents exhibit the
  // straggler — the substrate the mitigation layer (src/mitigate) is
  // evaluated against on live runs.
  StageRunner(simmpi::Comm& world_comm, RunRecorder& recorder,
              const std::vector<InjectedDelay>* injected_delays = nullptr)
      : comm_(world_comm), recorder_(recorder),
        injected_delays_(injected_delays) {}

  template <typename Fn>
  void run(const std::string& name, Fn&& body) {
    comm_.barrier();  // previous stage fully drained
    if (comm_.rank() == 0) comm_.world().stats().set_stage(name);
    comm_.barrier();  // label visible before any traffic
    const StageTimer timer(recorder_, name, comm_.my_global(),
                           run_clock_.elapsed());
    body();
    inject_delay(name);  // inside the timer scope: the sleep is measured
  }

 private:
  void inject_delay(const std::string& name) {
    if (injected_delays_ == nullptr) return;
    for (const InjectedDelay& d : *injected_delays_) {
      if (d.stage == name && d.node == comm_.my_global() && d.seconds > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(d.seconds));
      }
    }
  }

  simmpi::Comm& comm_;
  RunRecorder& recorder_;
  const std::vector<InjectedDelay>* injected_delays_;
  // Node-local run clock anchoring ComputeEvent boundaries; starts
  // when the node program constructs its StageRunner.
  Stopwatch run_clock_;
};

}  // namespace cts
