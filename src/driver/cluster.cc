#include "driver/cluster.h"

#include <exception>
#include <thread>

#include "common/buffer.h"
#include "obs/metrics.h"

namespace cts {

namespace {

// Node threads are spawned fresh per run, so each thread-local arena's
// counters cover exactly this run; they are drained into the registry
// just before the thread exits (the arena dies with it).
void PublishArenaMetrics() {
  auto& registry = obs::MetricRegistry::Global();
  static obs::Counter& hits = registry.counter("simmpi/arena_hits");
  static obs::Counter& misses = registry.counter("simmpi/arena_misses");
  const BufferArena& arena = BufferArena::Local();
  hits.add(arena.hits());
  misses.add(arena.misses());
}

// Pull-at-end publication of the transport's per-stage counters: one
// registry write per (stage, counter) after the run, nothing on the
// per-record hot path.
void PublishTrafficMetrics(const simmpi::TrafficStats& stats) {
  auto& registry = obs::MetricRegistry::Global();
  for (const std::string& stage : stats.stage_names()) {
    const simmpi::ChannelCounters c = stats.stage(stage);
    const std::string prefix = "simmpi/" + stage + "/";
    if (c.unicast_msgs > 0) {
      registry.counter(prefix + "unicast_msgs").add(c.unicast_msgs);
      registry.counter(prefix + "unicast_bytes").add(c.unicast_bytes);
    }
    if (c.mcast_msgs > 0) {
      registry.counter(prefix + "mcast_msgs").add(c.mcast_msgs);
      registry.counter(prefix + "mcast_bytes").add(c.mcast_bytes);
      registry.counter(prefix + "mcast_recipient_bytes")
          .add(c.mcast_recipient_bytes);
    }
    if (c.comm_creations > 0) {
      registry.counter(prefix + "comm_creations").add(c.comm_creations);
    }
  }
}

}  // namespace

void RunOnCluster(simmpi::World& world, RunRecorder& recorder,
                  const NodeProgram& program) {
  const int K = world.num_nodes();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(K));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(K));

  for (NodeId node = 0; node < K; ++node) {
    threads.emplace_back([&, node] {
      try {
        simmpi::Comm comm = simmpi::Comm::World(world, node);
        program(comm, recorder);
      } catch (...) {
        errors[static_cast<std::size_t>(node)] = std::current_exception();
      }
      PublishArenaMetrics();
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  PublishTrafficMetrics(world.stats());
}

}  // namespace cts
