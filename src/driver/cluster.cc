#include "driver/cluster.h"

#include <exception>
#include <thread>

namespace cts {

void RunOnCluster(simmpi::World& world, RunRecorder& recorder,
                  const NodeProgram& program) {
  const int K = world.num_nodes();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(K));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(K));

  for (NodeId node = 0; node < K; ++node) {
    threads.emplace_back([&, node] {
      try {
        simmpi::Comm comm = simmpi::Comm::World(world, node);
        program(comm, recorder);
      } catch (...) {
        errors[static_cast<std::size_t>(node)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace cts
