// Shared configuration and result types for one distributed-sort run.
//
// Both algorithms (terasort, codedterasort) consume a SortConfig and
// produce an AlgorithmResult: the sorted per-node partitions plus
// everything the analytics layer needs to price the run on the paper's
// testbed — per-node work counters, per-stage transport counters, and
// per-stage wall times of the actual execution.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "coding/codec.h"
#include "common/types.h"
#include "keyvalue/record.h"
#include "keyvalue/teragen.h"
#include "simmpi/eventlog.h"
#include "simmpi/traffic.h"

namespace cts {

// Canonical stage names. The bench tables print them in this order;
// stages absent from a run simply report zero.
namespace stage {
inline constexpr const char* kCodeGen = "CodeGen";
inline constexpr const char* kMap = "Map";
inline constexpr const char* kPack = "Pack";
inline constexpr const char* kEncode = "Encode";
inline constexpr const char* kShuffle = "Shuffle";
inline constexpr const char* kUnpack = "Unpack";
inline constexpr const char* kDecode = "Decode";
inline constexpr const char* kReduce = "Reduce";
}  // namespace stage

enum class PartitionerKind {
  kRange,    // analytic equal ranges (paper workload: uniform keys)
  kSampled,  // splitter keys from a deterministic input sample,
             // computed identically on every node (coordinator-style)
  kDistributedSampled,  // Hadoop-style: nodes sample their own files
                        // and allgather the samples before the Map
                        // stage (exercises the collective substrate)
};

// How CodedTeraSort materializes its C(K, r+1) multicast groups
// (paper Section VI, "Scalable Coding" future direction):
enum class CodeGenMode {
  kCommSplit,  // the paper's approach: one MPI_Comm_split-style
               // collective per group — cost grows as 3.5 ms * groups
  kBatched,    // extension: a single collective reserves ids for all
               // groups and members derive memberships locally
               // (MPI_Comm_create_group-style) — per-group cost drops
               // to plan bookkeeping
};

// How the shuffle is sequenced relative to the rest of the node
// program (paper Section VI, "Asynchronous Execution"):
enum class ShuffleSync {
  kBarrier,     // the paper: barrier, then strictly ordered blocking
                // sends — one sender occupies the network at a time
  kOverlapped,  // extension: nonblocking isend/irecv; senders post all
                // transmissions up front (and, where the data flow
                // allows, while upstream stages are still running) and
                // drain receives afterwards. Moves byte-identical
                // traffic in an initiation order that parallel links
                // can actually overlap.
};

// Live fault injection: a real wall-clock delay inserted into one
// node's stage body by driver::StageRunner, so the thread-per-node
// harness can exhibit the stragglers the mitigation layer
// (src/mitigate) is evaluated against. The delay is measured like any
// other compute — it shows up in wall_seconds and ComputeEvents and
// therefore in every downstream policy evaluation.
struct InjectedDelay {
  std::string stage;
  NodeId node = 0;
  double seconds = 0;
};

// Configuration of one sorting job.
struct SortConfig {
  int num_nodes = 4;           // K
  int redundancy = 1;          // r; ignored by plain TeraSort
  std::uint64_t num_records = 100000;
  std::uint64_t seed = 2017;
  KeyDistribution distribution = KeyDistribution::kUniform;
  PartitionerKind partitioner = PartitionerKind::kRange;
  // Sample size for PartitionerKind::kSampled.
  std::uint64_t sample_size = 1000;
  // Multicast-group creation strategy (CodedTeraSort only).
  CodeGenMode codegen_mode = CodeGenMode::kCommSplit;
  // Shuffle sequencing (both algorithms).
  ShuffleSync shuffle_sync = ShuffleSync::kBarrier;
  // Live straggler injection (tests / demos; see InjectedDelay).
  std::vector<InjectedDelay> injected_delays;

  std::uint64_t total_bytes() const { return num_records * kRecordBytes; }
};

// Per-node work counters accumulated by the node programs, at the
// executed scale. The analytics CostModel converts them to paper-scale
// seconds.
struct NodeWork {
  std::uint64_t map_bytes = 0;   // input bytes hashed
  std::uint64_t map_files = 0;   // files processed in Map
  std::uint64_t pack_bytes = 0;  // bytes serialized for the shuffle
  std::uint64_t unpack_bytes = 0;
  CodecStats codec;              // XOR encode/decode counters
  std::uint64_t reduce_bytes = 0;  // bytes locally sorted

  NodeWork& operator+=(const NodeWork& o) {
    map_bytes += o.map_bytes;
    map_files += o.map_files;
    pack_bytes += o.pack_bytes;
    unpack_bytes += o.unpack_bytes;
    codec += o.codec;
    reduce_bytes += o.reduce_bytes;
    return *this;
  }
};

// One stage executed on one node, at executed scale, on the node's
// local clock (seconds since its program entered its first stage).
// StageRunner records one event per stage body per node, in per-node
// program order; the scenario engine (src/simscen) consumes the stage
// sequence to replay a run under a ClusterProfile/Topology, and the
// boundaries give CMR-style runs (which have no NodeWork counters)
// per-node compute durations.
struct ComputeEvent {
  std::string stage;
  NodeId node = 0;
  double start_seconds = 0;
  double end_seconds = 0;

  double seconds() const { return end_seconds - start_seconds; }
};

// All compute events of one run, ordered by (node, start).
using ComputeLog = std::vector<ComputeEvent>;

// Everything one run produces.
struct AlgorithmResult {
  SortConfig config;
  std::string algorithm;  // "TeraSort" or "CodedTeraSort"

  // partitions[k] = node k's sorted output (partition P_k). Their
  // concatenation in node order is the fully sorted dataset.
  std::vector<std::vector<Record>> partitions;

  // Per-node counters, indexed by NodeId.
  std::vector<NodeWork> work;

  // Per-stage transport counters (snapshot of World::stats()).
  std::map<std::string, simmpi::ChannelCounters> traffic;

  // Per-node tx/rx during the shuffle stage (indexed by NodeId; may be
  // empty for shuffle-free runs). Used by the asynchronous-execution
  // extension to price parallel shuffles.
  std::vector<simmpi::NodeTraffic> shuffle_node_traffic;

  // Ordered shuffle transmissions, for discrete-event replay
  // (simnet::SerialMakespan / ParallelMakespan).
  simnet::TransmissionLog shuffle_log;

  // Transport send/post/match events of the whole run, for the
  // happens-before race analysis (src/check). Empty unless
  // simmpi::TransportRecorder::RequestCapture(true) was set before the
  // run executed (ctcheck and the check tests do; normal runs pay only
  // the disabled-branch test).
  simmpi::TransportLog transport_events;

  // Per-stage wall seconds: max over nodes of that node's stage time
  // (the stage completes when its slowest node does).
  std::map<std::string, double> wall_seconds;

  // Stage names in first-execution order (each once). Unlike the maps
  // above, this preserves the sequence the node programs ran, which
  // the scenario engine replays stage-by-stage.
  std::vector<std::string> stage_order;

  // Per-node stage boundaries at executed scale (see ComputeEvent).
  ComputeLog compute_events;

  // Registry deltas attributed to this execution: for every metric the
  // run touched, Snapshot-after minus Snapshot-before, captured by
  // RunCache::Execute around the thread harness. Values that are
  // timing-dependent in the live process (stripe-lock contention,
  // arena hit counts) are *frozen* here, so every consumer replaying
  // this cached result — timelines, ledger entries, priced cells —
  // sees the same numbers bit for bit.
  std::map<std::string, double> run_metrics;

  std::uint64_t total_output_records() const {
    std::uint64_t n = 0;
    for (const auto& p : partitions) n += p.size();
    return n;
  }

  // Aggregate NodeWork over nodes (for whole-run sanity checks).
  NodeWork total_work() const {
    NodeWork t;
    for (const auto& w : work) t += w;
    return t;
  }
};

}  // namespace cts
