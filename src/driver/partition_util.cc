#include "driver/partition_util.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "keyvalue/teragen.h"

namespace cts {

SampledPartitioner BuildDistributedSampledPartitioner(
    simmpi::Comm& comm, const TeraGen& gen,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& local_ranges,
    std::uint64_t samples) {
  // Sample evenly across this node's local records.
  std::uint64_t local_records = 0;
  for (const auto& [offset, count] : local_ranges) local_records += count;
  Buffer mine;
  if (local_records > 0) {
    const std::uint64_t n = std::min(samples, local_records);
    const std::uint64_t stride = std::max<std::uint64_t>(
        local_records / std::max<std::uint64_t>(n, 1), 1);
    std::uint64_t picked = 0;
    std::uint64_t position = 0;  // index within the local concatenation
    for (const auto& [offset, count] : local_ranges) {
      for (std::uint64_t i = 0; i < count && picked < n; ++i, ++position) {
        if (position % stride == 0) {
          const Key key = gen.record(offset + i).key;
          mine.write_bytes(std::span<const std::uint8_t>(key));
          ++picked;
        }
      }
    }
  }
  // Combine all nodes' samples; every node sees the same multiset in
  // the same (rank) order, hence derives identical splitters.
  std::vector<Key> combined;
  for (Buffer& b : comm.allgather(mine)) {
    while (b.remaining() >= kKeyBytes) {
      Key key{};
      b.read_bytes(std::span<std::uint8_t>(key));
      combined.push_back(key);
    }
  }
  CTS_CHECK_MSG(!combined.empty() || comm.size() == 1,
                "distributed sample is empty");
  return SampledPartitioner::FromSample(combined, comm.size());
}

std::unique_ptr<Partitioner> MakePartitioner(const SortConfig& config) {
  CTS_CHECK_GE(config.num_nodes, 1);
  switch (config.partitioner) {
    case PartitionerKind::kRange:
      return std::make_unique<RangePartitioner>(config.num_nodes);
    case PartitionerKind::kDistributedSampled:
      CTS_CHECK_MSG(false,
                    "kDistributedSampled requires a communicator — node "
                    "programs build it via "
                    "BuildDistributedSampledPartitioner");
      return nullptr;
    case PartitionerKind::kSampled: {
      const TeraGen gen(config.seed, config.distribution);
      const std::uint64_t n =
          std::min(config.sample_size,
                   std::max<std::uint64_t>(config.num_records, 1));
      const std::uint64_t stride =
          std::max<std::uint64_t>(config.num_records / std::max<std::uint64_t>(n, 1), 1);
      std::vector<Key> sample;
      sample.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t index =
            std::min(i * stride, config.num_records > 0
                                     ? config.num_records - 1
                                     : 0);
        sample.push_back(gen.record(index).key);
      }
      return std::make_unique<SampledPartitioner>(
          SampledPartitioner::FromSample(sample, config.num_nodes));
    }
  }
  CTS_CHECK_MSG(false, "unknown partitioner kind");
  return nullptr;
}

}  // namespace cts
