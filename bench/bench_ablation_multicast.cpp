// Ablation: how much of the theoretical r-fold shuffle gain survives
// the application-layer multicast penalty (paper Section V-C,
// observation 3: measured shuffle gains are "slightly less than r"
// because MPI_Bcast costs grow logarithmically with fan-out).
//
// The same measured coded run is priced under different multicast
// penalty coefficients: 0 (ideal network-layer multicast), the
// calibrated 0.32, and a 2x-pessimistic 0.64; plus the degenerate
// "unicast fallback" where every coded packet is sent r times.
#include <iostream>

#include "analytics/report.h"
#include "bench/bench_common.h"
#include "codedterasort/coded_terasort.h"
#include "common/table.h"
#include "terasort/terasort.h"

int main(int argc, char** argv) {
  using namespace cts;
  using namespace cts::bench;

  JsonReport json("ablation_multicast", argc, argv);
  const int K = 16;
  const SortConfig base = BenchConfig(K, 1, 600'000);
  std::cout << "=== Ablation: multicast overhead model (K=" << K
            << ") ===\n";
  PrintRunBanner(base);

  const BenchPricing pricing = PaperPricing(base);
  const StageBreakdown baseline =
      SimulateRun(RunTeraSort(base), pricing.model, pricing.scale);
  std::cout << "TeraSort shuffle: " << TextTable::Num(baseline.shuffle())
            << " s, total: " << TextTable::Num(baseline.total()) << " s\n\n";

  TextTable table("coded shuffle under multicast penalty variants");
  table.set_header({"r", "coeff", "Shuffle", "shuffle gain", "Total",
                    "Speedup"});
  for (const int r : {3, 5}) {
    SortConfig config = base;
    config.redundancy = r;
    const AlgorithmResult result = RunCodedTeraSort(config);
    for (const double coeff : {0.0, 0.32, 0.64}) {
      CostModel model;
      model.multicast_log_coeff = coeff;
      const StageBreakdown b = SimulateRun(result, model, pricing.scale);
      json.add("r" + std::to_string(r) + "_coeff" +
                   TextTable::Num(coeff, 2) + "/total_s",
               b.total());
      table.add_row({std::to_string(r), TextTable::Num(coeff, 2),
                     TextTable::Num(b.shuffle()),
                     TextTable::Num(baseline.shuffle() / b.shuffle(), 2) + "x",
                     TextTable::Num(b.total()),
                     TextTable::Num(baseline.total() / b.total(), 2) + "x"});
    }
    // Unicast fallback: each packet unicast to its r receivers — the
    // coding gain collapses back to the uncoded-with-redundancy load.
    {
      CostModel model;
      model.multicast_log_coeff = 0.0;
      StageBreakdown b = SimulateRun(result, model, pricing.scale);
      const double shuffle_unicast = b.shuffle() * r;
      const double total =
          b.total() - b.shuffle() + shuffle_unicast;
      table.add_row({std::to_string(r), "unicast",
                     TextTable::Num(shuffle_unicast),
                     TextTable::Num(baseline.shuffle() / shuffle_unicast, 2) +
                         "x",
                     TextTable::Num(total),
                     TextTable::Num(baseline.total() / total, 2) + "x"});
    }
  }
  table.render(std::cout);
  std::cout << "\nWith coeff 0.32 the shuffle gain lands below r (the "
               "paper's\nobservation); true network-layer multicast "
               "(coeff 0) would recover\nnearly the full r-fold gain.\n";
  json.add("terasort/total_s", baseline.total());
  json.write();
  return 0;
}
